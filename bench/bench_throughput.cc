// End-to-end ingest-to-incident throughput: how many events/s does the
// full live path (tick ingest -> windowed analysis -> incident dedup ->
// log append) sustain at 1/2/4/8 analysis threads?
//
// This is the trajectory row every later scaling PR is judged against
// (stated target: 1M events/s).  The replay is the `ranomaly serve`
// steady state with production-shaped cadence (10 s ticks, 5 min
// window), so each event is analyzed in every window that slides over
// it — the events/s figure charges that full cost, not just parsing.
//
// `--json` bypasses Google Benchmark and prints one JSON object for
// tools/run_bench.sh --throughput: per-thread-count best-of-reps
// events/s, the host CPU count (thread counts beyond it time-slice one
// core and cannot speed up wall time), and a cross-thread determinism
// verdict — every thread count must produce a byte-identical incident
// stream, which the harness refuses to record otherwise.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/live.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "util/stats.h"
#include "util/time.h"
#include "workload/eventgen.h"
#include "workload/internet_scale.h"

namespace ranomaly::bench {
namespace {

using util::kMinute;
using util::kSecond;

// Staggered session resets plus a tier-1 failover over steady churn:
// distinct anomalies whose bursts rise above the churn baseline, so
// the replay produces a real incident stream to assert byte-identity
// on — not just raw ingest.  (At the largest churn sizes the per-tick
// baseline approaches the 5x spike factor and fewer bursts qualify;
// the stream stays non-empty via the tier-1 failover.)
const collector::EventStream& Workload(std::size_t churn_events) {
  static std::size_t cached_size = 0;
  static const collector::EventStream* stream = nullptr;
  if (stream == nullptr || cached_size != churn_events) {
    workload::InternetOptions options;
    options.monitored_peers = 5;
    options.prefix_count = 4000;
    options.origin_as_count = 400;
    options.seed = 7;
    const workload::SyntheticInternet internet(options);
    workload::EventStreamGenerator gen(internet, 8);
    gen.SessionReset(0, 8 * kMinute, 30 * kSecond, 5 * kSecond);
    gen.SessionReset(1, 14 * kMinute, 30 * kSecond, 5 * kSecond);
    gen.SessionReset(2, 20 * kMinute, 30 * kSecond, 5 * kSecond);
    gen.Tier1Failover(0, 1, 25 * kMinute, 15 * kSecond);
    gen.Churn(0, 30 * kMinute, churn_events);
    delete stream;
    stream = new collector::EventStream(gen.Take());
    cached_size = churn_events;
  }
  return *stream;
}

// The internet-scale table-dump + churn stream (BuildInternetScale):
// tens of thousands of ASes, 200k+ prefixes, a million-route dump.
// This is the paper-scale row — the full-table regime the Table I
// datasets live in, as opposed to Workload()'s churn-dominated replay.
const collector::EventStream& InternetWorkload(std::size_t ases,
                                               std::size_t prefixes,
                                               std::size_t peers) {
  static const collector::EventStream* stream = nullptr;
  static std::size_t cached[3] = {0, 0, 0};
  if (stream == nullptr || cached[0] != ases || cached[1] != prefixes ||
      cached[2] != peers) {
    workload::InternetScaleOptions options;
    options.as_count = ases;
    options.prefix_count = prefixes;
    options.monitored_peer_count = peers;
    std::string error;
    auto built = workload::BuildInternetScale(options, &error);
    if (!built) {
      std::fprintf(stderr, "internet workload: %s\n", error.c_str());
      std::abort();
    }
    delete stream;
    stream = new collector::EventStream(std::move(built->stream));
    cached[0] = ases;
    cached[1] = prefixes;
    cached[2] = peers;
  }
  return *stream;
}

core::LiveOptions ReplayOptions(std::size_t threads) {
  core::LiveOptions options;
  options.pipeline.threads = threads;
  options.tick = 10 * kSecond;
  options.window = 5 * kMinute;
  options.slo_target_sec = 30.0;
  return options;
}

struct RunResult {
  double seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t incidents = 0;
  std::string incident_json;  // byte-identity witness across thread counts
};

RunResult RunOnce(const collector::EventStream& stream, std::size_t threads) {
  obs::HealthRegistry health;
  core::IncidentLog incidents;
  std::atomic<bool> keep_going{true};
  core::LiveRunner runner(ReplayOptions(threads), &health, &incidents);
  const util::StageTimer timer;
  const core::LiveStats stats =
      runner.Run(stream, &keep_going, [](const core::LiveStats&) {});
  RunResult result;
  result.seconds = timer.Seconds();
  result.events = stats.events_ingested;
  result.incidents = stats.incidents;
  result.incident_json = incidents.ToJson(0);
  return result;
}

void BM_LiveThroughput(benchmark::State& state) {
  const collector::EventStream& stream = Workload(200'000);
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::uint64_t events = 0;
  std::uint64_t incidents = 0;
  for (auto _ : state) {
    const RunResult r = RunOnce(stream, threads);
    events = r.events;
    incidents = r.incidents;
    state.SetIterationTime(r.seconds);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["incidents"] = static_cast<double>(incidents);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_LiveThroughput)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

}  // namespace

// Runs the full replay `reps` times per thread count (after one warm-up
// at the first count), keeps each count's best run, and prints one JSON
// object to stdout; progress goes to stderr.  Exits non-zero if any
// thread count's incident stream differs from the 1-thread stream.
int RunJson(const collector::EventStream& stream, int reps,
            const std::vector<std::size_t>& thread_counts) {
  RunOnce(stream, thread_counts.front());  // warm caches and allocator
  std::string reference;
  bool identical = true;
  std::printf("{\"events\": %zu, \"host_cpus\": %u, \"rows\": [",
              static_cast<std::size_t>(stream.size()),
              std::thread::hardware_concurrency());
  bool first = true;
  for (const std::size_t threads : thread_counts) {
    RunResult best;
    for (int r = 0; r < reps; ++r) {
      const RunResult run = RunOnce(stream, threads);
      if (reference.empty()) reference = run.incident_json;
      if (run.incident_json != reference) identical = false;
      if (best.seconds == 0.0 || run.seconds < best.seconds) best = run;
      std::fprintf(stderr,
                   "threads %zu rep %d/%d: %.2f s, %.0f events/s, "
                   "%llu incidents\n",
                   threads, r + 1, reps, run.seconds,
                   static_cast<double>(run.events) / run.seconds,
                   static_cast<unsigned long long>(run.incidents));
    }
    std::printf(
        "%s{\"threads\": %zu, \"seconds\": %.4f, \"events_per_sec\": %.0f, "
        "\"incidents\": %llu}",
        first ? "" : ", ", threads, best.seconds,
        static_cast<double>(best.events) / best.seconds,
        static_cast<unsigned long long>(best.incidents));
    first = false;
  }
  std::printf("], \"incident_streams_identical\": %s}\n",
              identical ? "true" : "false");
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: incident streams differ across thread counts\n");
    return 1;
  }
  return 0;
}

}  // namespace ranomaly::bench

int main(int argc, char** argv) {
  std::size_t events = 200'000;
  int reps = 2;
  std::vector<std::size_t> threads = {1, 2, 4, 8};
  bool json = false;
  bool internet = false;
  std::size_t ases = 32'000;
  std::size_t prefixes = 210'000;
  std::size_t peers = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--json") {
      json = true;
    } else if (arg == "--internet") {
      internet = true;
    } else if (arg == "--ases" && i + 1 < argc) {
      ases = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--prefixes" && i + 1 < argc) {
      prefixes = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--peers" && i + 1 < argc) {
      peers = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--events" && i + 1 < argc) {
      events = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads.clear();
      for (const char* p = argv[++i]; *p != '\0';) {
        threads.push_back(static_cast<std::size_t>(std::strtoul(p, nullptr, 10)));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    }
  }
  if (json) {
    const ranomaly::collector::EventStream& stream =
        internet ? ranomaly::bench::InternetWorkload(ases, prefixes, peers)
                 : ranomaly::bench::Workload(events);
    return ranomaly::bench::RunJson(stream, reps < 1 ? 1 : reps, threads);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
