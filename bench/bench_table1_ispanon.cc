// Table I(b): execution times of TAMP and Stemming on the ISP-Anon-scale
// dataset.  Paper rows:
//
//   TAMP picture:   1500k routes 7 s | 750k 3.8 s | 150k 1.5 s
//   TAMP animation: 1k events 1.0 s | 10k 1.6 s | 100k 9.4 s | 1000k 88.5 s
//   Stemming:       214k events 32.8 s | 346k 34.1 s | 791k 35.2 s
//
// Note the paper's observation that ISP-Anon rows run slower than
// Berkeley rows at the same event counts because the underlying RIB and
// topology structures are much larger — the same holds here.
#include <benchmark/benchmark.h>

#include "table1_common.h"
#include "stemming/stemming.h"
#include "tamp/animation.h"
#include "tamp/prune.h"

namespace ranomaly::bench {
namespace {

void BM_TampPicture(benchmark::State& state) {
  const auto routes = static_cast<std::size_t>(state.range(0));
  const workload::SyntheticInternet internet = IspAnonScale(routes);
  for (auto _ : state) {
    tamp::TampGraph graph = tamp::TampGraph::FromSnapshot(internet.routes());
    tamp::PrunedGraph pruned = tamp::Prune(graph);
    benchmark::DoNotOptimize(pruned.edges.data());
  }
  state.counters["routes"] = static_cast<double>(internet.routes().size());
}
BENCHMARK(BM_TampPicture)
    ->Unit(benchmark::kMillisecond)
    ->Arg(150'000)
    ->Arg(750'000)
    ->Arg(1'500'000);

void BM_TampAnimation(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  // Animations track the full ISP RIB while replaying events.
  const workload::SyntheticInternet internet = IspAnonScale(150'000);
  const collector::EventStream events = AnimationEvents(internet, count, 17);
  for (auto _ : state) {
    state.PauseTiming();
    tamp::Animator animator(internet.routes(), tamp::AnimationOptions{});
    state.ResumeTiming();
    const auto result = animator.Play(events.events());
    benchmark::DoNotOptimize(result.frames.size());
  }
  state.counters["events"] = static_cast<double>(events.size());
  state.counters["timerange_s"] = util::ToSeconds(events.TimeRange());
}
BENCHMARK(BM_TampAnimation)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Arg(1'000'000);

void BM_Stemming(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const workload::SyntheticInternet internet = IspAnonScale(150'000);
  const collector::EventStream events = SpikeEvents(internet, count, 23);
  std::size_t components = 0;
  for (auto _ : state) {
    const auto result = stemming::Stem(events.events());
    components = result.components.size();
    benchmark::DoNotOptimize(components);
  }
  state.counters["events"] = static_cast<double>(events.size());
  state.counters["components"] = static_cast<double>(components);
  state.counters["timerange_s"] = util::ToSeconds(events.TimeRange());
}
BENCHMARK(BM_Stemming)
    ->Unit(benchmark::kMillisecond)
    ->Arg(214'000)
    ->Arg(346'000)
    ->Arg(791'000);

}  // namespace
}  // namespace ranomaly::bench

BENCHMARK_MAIN();
