// Ablation: sub-sequence counting backend (DESIGN.md decision 1).
//
// The production Stemming counts bigrams and iteratively lengthens only
// max-count survivors (exact, because counts are antitone in extension).
// The naive alternative literally counts every contiguous sub-sequence of
// every event — O(sum of path-length^2) hash updates.  Both must agree on
// the winning sub-sequence; the iterative backend should be several times
// faster and allocate far less.
#include <benchmark/benchmark.h>

#include <map>
#include <unordered_map>
#include <vector>

#include "stemming/stemming.h"
#include "workload/eventgen.h"

namespace ranomaly::bench {
namespace {

collector::EventStream MakeStream(std::size_t count) {
  workload::InternetOptions net_options;
  net_options.monitored_peers = 4;
  net_options.prefix_count = 3'000;
  net_options.origin_as_count = 400;
  net_options.seed = 71;
  const workload::SyntheticInternet internet(net_options);
  workload::EventStreamGenerator gen(internet, 72);
  gen.SessionReset(0, util::kMinute, util::kMinute, 30 * util::kSecond);
  if (count > gen.PendingEvents()) {
    gen.Churn(0, 10 * util::kMinute, count - gen.PendingEvents());
  }
  return gen.Take();
}

// The naive backend: count every contiguous sub-sequence (length >= 2)
// of every event sequence, then take (count desc, length desc).
struct VecHash {
  std::size_t operator()(const std::vector<std::uint32_t>& v) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto s : v) {
      h ^= s;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

std::pair<std::vector<std::uint32_t>, double> NaiveTop(
    std::span<const bgp::Event> events) {
  stemming::SymbolTable symbols;
  std::unordered_map<std::vector<std::uint32_t>, double, VecHash> counts;
  std::vector<std::uint32_t> seq;
  for (const bgp::Event& e : events) {
    seq.clear();
    seq.push_back(symbols.InternPeer(e.peer));
    seq.push_back(symbols.InternNexthop(e.attrs.nexthop));
    bgp::AsNumber last = 0;
    bool have_last = false;
    for (const bgp::AsNumber a : e.attrs.as_path.asns()) {
      if (have_last && a == last) continue;
      seq.push_back(symbols.InternAs(a));
      last = a;
      have_last = true;
    }
    seq.push_back(symbols.InternPrefix(e.prefix));
    for (std::size_t i = 0; i < seq.size(); ++i) {
      for (std::size_t j = i + 2; j <= seq.size(); ++j) {
        counts[std::vector<std::uint32_t>(
            seq.begin() + static_cast<std::ptrdiff_t>(i),
            seq.begin() + static_cast<std::ptrdiff_t>(j))] += 1.0;
      }
    }
  }
  std::pair<std::vector<std::uint32_t>, double> best;
  for (const auto& [sub, count] : counts) {
    if (count > best.second ||
        (count == best.second && sub.size() > best.first.size()) ||
        (count == best.second && sub.size() == best.first.size() &&
         sub < best.first)) {
      best = {sub, count};
    }
  }
  return best;
}

void BM_IterativeLengthening(benchmark::State& state) {
  const auto stream = MakeStream(static_cast<std::size_t>(state.range(0)));
  stemming::StemmingOptions options;
  options.max_components = 1;
  const auto reference = stemming::Stem(stream.events(), options);
  state.counters["top_count"] =
      reference.components.empty() ? 0 : reference.components[0].count;
  for (auto _ : state) {
    auto result = stemming::Stem(stream.events(), options);
    benchmark::DoNotOptimize(result.components.data());
  }
}
BENCHMARK(BM_IterativeLengthening)
    ->Unit(benchmark::kMillisecond)
    ->Arg(10'000)
    ->Arg(50'000);

void BM_NaiveAllSubstrings(benchmark::State& state) {
  const auto stream = MakeStream(static_cast<std::size_t>(state.range(0)));
  state.counters["top_count"] = NaiveTop(stream.events()).second;
  for (auto _ : state) {
    auto best = NaiveTop(stream.events());
    benchmark::DoNotOptimize(best.first.data());
  }
}
BENCHMARK(BM_NaiveAllSubstrings)
    ->Unit(benchmark::kMillisecond)
    ->Arg(10'000)
    ->Arg(50'000);

// Agreement check runs once at startup: the two backends must pick the
// same winner (count and length).
struct AgreementCheck {
  AgreementCheck() {
    const auto stream = MakeStream(5'000);
    stemming::StemmingOptions options;
    options.max_components = 1;
    const auto fast = stemming::Stem(stream.events(), options);
    const auto naive = NaiveTop(stream.events());
    if (fast.components.empty() ||
        fast.components[0].count != naive.second ||
        fast.components[0].top_sequence.size() != naive.first.size()) {
      std::fprintf(stderr,
                   "BACKEND DISAGREEMENT: fast=(%f,len%zu) naive=(%f,len%zu)\n",
                   fast.components.empty() ? -1.0 : fast.components[0].count,
                   fast.components.empty()
                       ? 0
                       : fast.components[0].top_sequence.size(),
                   naive.second, naive.first.size());
      std::exit(1);
    }
    std::printf("backend agreement check passed: top count %.0f, length %zu\n",
                naive.second, naive.first.size());
  }
} agreement_check;

}  // namespace
}  // namespace ranomaly::bench

BENCHMARK_MAIN();
