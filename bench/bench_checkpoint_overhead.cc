// Checkpoint-overhead benchmark: what does periodic analysis-tier
// checkpointing cost a live replay?
//
// BM_LiveReplayBare runs core::LiveRunner over a session-reset-plus-
// churn capture with durability off.  BM_LiveReplayCheckpointed runs
// the identical replay cutting an RNC1 v2 snapshot (in-flight admission
// classes, incident log, stemmer vocabulary, peer board, SLO histogram)
// every 16 ticks — the serve default.
//
// `--paired N` bypasses Google Benchmark and runs N (bare,
// checkpointed) pairs back-to-back in this one process, alternating
// which side goes first, timing each replay with a process-CPU-clock
// delta.  On a shared box, background load shifts on a multi-second
// scale and inflates both sides of an adjacent pair by the same
// factor, so the per-pair ratio cancels it; separate processes (the
// plain Google Benchmark run) can land in load regimes that differ by
// 60% and bury a few-percent effect.  tools/run_bench.sh
// --checkpoint-overhead distils the paired run into a
// `checkpoint_overhead` row in BENCH_stemming.json (budget: <= 3%,
// see docs/OBSERVABILITY.md).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <string>
#include <string_view>

#include "core/live.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "util/time.h"
#include "workload/eventgen.h"

namespace ranomaly::bench {
namespace {

using util::kMinute;
using util::kSecond;

const collector::EventStream& Workload() {
  static const collector::EventStream* stream = [] {
    workload::InternetOptions options;
    options.monitored_peers = 5;
    options.prefix_count = 600;
    options.origin_as_count = 120;
    options.seed = 7;
    const workload::SyntheticInternet internet(options);
    workload::EventStreamGenerator gen(internet, 8);
    gen.SessionReset(0, 10 * kMinute, kMinute, 20 * kSecond);
    // A busy feed (~250 events/s average): the overhead fraction is
    // checkpoint cost over replay cost per interval, and an unpaced
    // replay of a sparse feed deflates the denominator by orders of
    // magnitude relative to a paced production tick (10 s of wall).
    gen.Churn(0, 30 * kMinute, 40000);
    return new collector::EventStream(gen.Take());
  }();
  return *stream;
}

core::LiveOptions ReplayOptions() {
  core::LiveOptions options;
  options.tick = 10 * kSecond;
  options.window = 5 * kMinute;
  options.slo_target_sec = 30.0;
  return options;
}

core::LiveStats RunOnce(const core::LiveOptions& options) {
  obs::HealthRegistry health;
  core::IncidentLog incidents;
  std::atomic<bool> keep_going{true};
  core::LiveRunner runner(options, &health, &incidents);
  return runner.Run(Workload(), &keep_going,
                    [](const core::LiveStats&) {});
}

void BM_LiveReplayBare(benchmark::State& state) {
  Workload();  // force stream generation outside the timed loop
  const core::LiveOptions options = ReplayOptions();
  std::uint64_t incidents = 0;
  for (auto _ : state) {
    incidents = RunOnce(options).incidents;
  }
  state.counters["events"] = static_cast<double>(Workload().size());
  state.counters["incidents"] = static_cast<double>(incidents);
}
// Process CPU time (all threads, including the background checkpoint
// writer) is the comparison metric: it charges the full compute cost of
// snapshotting while excluding fsync sleep and — critical on a shared
// box — other tenants' CPU steal, which swamps a few-percent effect in
// wall time.
BENCHMARK(BM_LiveReplayBare)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

void BM_LiveReplayCheckpointed(benchmark::State& state) {
  Workload();  // force stream generation outside the timed loop
  core::LiveOptions options = ReplayOptions();
  const std::string path =
      (std::filesystem::temp_directory_path() /
       "ranomaly_bench_ckpt.rnc1").string();
  options.checkpoint_path = path;
  options.checkpoint_every_ticks = 16;
  std::uint64_t writes = 0;
  for (auto _ : state) {
    // Each iteration must replay from scratch: a leftover snapshot from
    // the previous iteration would be restored and skip the work.
    std::error_code ec;
    std::filesystem::remove(path, ec);
    writes = RunOnce(options).checkpoint_writes;
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(path + ".tmp", ec);
  state.counters["events"] = static_cast<double>(Workload().size());
  state.counters["checkpoint_writes"] = static_cast<double>(writes);
}
BENCHMARK(BM_LiveReplayCheckpointed)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

double ProcessCpuNs() {
  std::timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e9 +
         static_cast<double>(ts.tv_nsec);
}

}  // namespace

// Runs `pairs` regime-matched (bare, checkpointed) replay pairs and
// prints one JSON object to stdout; progress goes to stderr.
int RunPaired(int pairs) {
  Workload();  // force stream generation outside any timed region
  const core::LiveOptions bare = ReplayOptions();
  core::LiveOptions checkpointed = ReplayOptions();
  const std::string path =
      (std::filesystem::temp_directory_path() /
       "ranomaly_bench_ckpt.rnc1").string();
  checkpointed.checkpoint_path = path;
  checkpointed.checkpoint_every_ticks = 16;

  const auto run = [&](const core::LiveOptions& options) {
    // A leftover snapshot would be restored and skip the replay work.
    std::error_code ec;
    std::filesystem::remove(path, ec);
    const double start = ProcessCpuNs();
    RunOnce(options);
    return ProcessCpuNs() - start;
  };

  run(bare);  // one warm-up of each side before anything is recorded
  run(checkpointed);
  std::printf("{\"checkpoint_every_ticks\": %d, \"pairs\": [",
              checkpointed.checkpoint_every_ticks);
  for (int i = 0; i < pairs; ++i) {
    double bare_ns = 0.0;
    double checkpointed_ns = 0.0;
    // Alternate which side runs first so a monotonic load drift across
    // the ~1 s pair window biases half the pairs each way.
    if (i % 2 == 0) {
      bare_ns = run(bare);
      checkpointed_ns = run(checkpointed);
    } else {
      checkpointed_ns = run(checkpointed);
      bare_ns = run(bare);
    }
    std::printf("%s{\"bare_ns\": %.0f, \"checkpointed_ns\": %.0f}",
                i == 0 ? "" : ", ", bare_ns, checkpointed_ns);
    std::fprintf(stderr, "pair %d/%d: bare %.1f ms, checkpointed %.1f ms "
                 "(ratio %.4f)\n", i + 1, pairs, bare_ns / 1e6,
                 checkpointed_ns / 1e6, checkpointed_ns / bare_ns);
  }
  std::printf("]}\n");
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(path + ".tmp", ec);
  return 0;
}

}  // namespace ranomaly::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--paired" && i + 1 < argc) {
      return ranomaly::bench::RunPaired(std::atoi(argv[i + 1]));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
