// Figure 7: leaked routes from CalREN's peer (PCH) pull commodity
// prefixes off the CalREN-QWest path onto a 6-AS-hop path via Level3 —
// twice — and, through the community-filter interaction, make 128.32.1.3
// stop announcing them entirely, defeating the rate limiters.
#include "core/pipeline.h"
#include "scenario_common.h"
#include "tamp/animation.h"

using namespace ranomaly;
using util::kMinute;
using util::kSecond;

int main() {
  workload::BerkeleyOptions options;
  options.commodity_prefixes = 400;
  options.leak_prefixes = 120;
  auto scenario = bench::BuildConvergedBerkeley(options);
  auto& sim = *scenario.sim;
  auto& collector = *scenario.collector;
  const auto& net = scenario.net;

  const auto initial_snapshot = collector.Snapshot();
  const std::size_t baseline_events = collector.events().size();

  std::printf("=== Fig 7: peer route leak at Berkeley ===\n");
  std::printf("converged: %zu routes, %zu prefixes; leaking %zu prefixes "
              "twice\n\n",
              collector.RouteCount(), collector.PrefixCount(),
              net.leakable.size());

  const util::SimTime t0 = sim.now() + kMinute;
  InjectRouteLeak(sim, net, t0, /*leak_duration=*/3 * kMinute,
                  /*gap=*/3 * kMinute, /*cycles=*/2);

  // (b) During the leak: capture the moved state.
  sim.Run(t0 + kMinute);
  {
    std::size_t moved = 0;
    std::size_t r13_lost = 0;
    for (const bgp::Prefix& p : net.leakable) {
      bool on_leak_path = false;
      bool r13_has = false;
      for (const auto& r : collector.Snapshot()) {
        if (r.prefix != p) continue;
        if (r.attrs.as_path.Contains(10927)) on_leak_path = true;
        if (r.peer == bgp::Ipv4Addr(128, 32, 1, 3)) r13_has = true;
      }
      if (on_leak_path) ++moved;
      if (!r13_has) ++r13_lost;
    }
    std::printf("during leak:\n");
    std::printf("  prefixes moved to {11423 11422 10927 1909 195 2152 3356}: "
                "%zu/%zu\n", moved, net.leakable.size());
    std::printf("  prefixes 128.32.1.3 stopped announcing: %zu/%zu "
                "(rate limiters bypassed)\n", r13_lost, net.leakable.size());

    auto during = tamp::TampGraph::FromSnapshot(collector.Snapshot(),
                                                {.root_name = "Berkeley"});
    bench::ApplyAsNames(during, scenario.net);
    tamp::PruneOptions hier;
    hier.depth_thresholds = {0.0, 0.0, 0.0, 0.05};
    bench::WritePicture(during, hier, "fig7b_during_leak",
                        "Berkeley during the route leak");
  }

  // Let both cycles complete.
  sim.RunToQuiescence(t0 + 30 * kMinute);
  const std::size_t leak_events = collector.events().size() - baseline_events;
  std::printf("\nafter both cycles:\n");
  std::printf("  events generated: %zu (paper: a 500k-event incident at "
              "30k-prefix scale; ours is scaled down %zux)\n",
              leak_events,
              static_cast<std::size_t>(30'000 / net.leakable.size()));

  // Stemming + classification over the onset window.
  const auto window = collector.events().Window(t0 - kSecond, t0 + kMinute);
  core::Pipeline pipeline;
  const auto incidents = pipeline.AnalyzeWindow(window);
  if (incidents.empty()) {
    std::printf("  pipeline found no incident [MISMATCH]\n");
    return 1;
  }
  std::printf("  pipeline: %s\n", incidents[0].summary.c_str());

  // Animation over the full incident (Fig 7 is two snapshots of it).
  std::vector<bgp::Event> events(
      collector.events().events().begin() +
          static_cast<std::ptrdiff_t>(baseline_events),
      collector.events().events().end());
  tamp::Animator animator(initial_snapshot, tamp::AnimationOptions{});
  std::size_t frames_losing = 0;
  std::size_t frames_gaining = 0;
  const auto result = animator.Play(
      events, [&](std::size_t, const tamp::Animator::FrameStats& s) {
        frames_losing += s.edges_losing > 0 ? 1 : 0;
        frames_gaining += s.edges_gaining > 0 ? 1 : 0;
      });
  std::printf("  animation: %zu frames, %zu with losing (blue) edges, %zu "
              "with gaining (green) edges over %s\n",
              result.frames.size(), frames_losing, frames_gaining,
              util::FormatDuration(result.timerange).c_str());

  const bool ok = incidents[0].kind == core::IncidentKind::kRouteLeak &&
                  frames_losing > 0 && frames_gaining > 0;
  std::printf("\nclassified as %s (paper: leaked routes) %s\n",
              core::ToString(incidents[0].kind), ok ? "[MATCH]" : "[MISMATCH]");
  return ok ? 0 : 1;
}
