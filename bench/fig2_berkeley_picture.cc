// Figure 2: TAMP picture of Berkeley's BGP with the default 5 % pruning.
// The paper's reading: 100 % of prefixes come from CalREN, ~80 % of that
// from the commodity Internet through QWest, ~6 % from Abilene — and the
// IV-A surprise, the skewed rate-limiter split (78 % on 128.32.0.66 vs
// 5 % on 128.32.0.70).
#include "scenario_common.h"

using namespace ranomaly;

int main() {
  auto scenario = bench::BuildConvergedBerkeley();
  auto graph =
      tamp::TampGraph::FromSnapshot(scenario.collector->Snapshot(),
                                    {.root_name = "Berkeley"});
  bench::ApplyAsNames(graph, scenario.net);

  const double total = static_cast<double>(graph.UniquePrefixCount());
  std::printf("=== Fig 2: TAMP picture of Berkeley's BGP ===\n");
  std::printf("routes: %zu, unique prefixes: %zu, nexthops: %zu\n\n",
              scenario.collector->RouteCount(), graph.UniquePrefixCount(),
              scenario.collector->NexthopCount());

  const tamp::PruneOptions prune{.threshold = 0.05, .depth_thresholds = {}};
  const auto pruned = tamp::Prune(graph, prune);
  bench::PrintPrunedGraph(pruned);

  const double qwest =
      static_cast<double>(graph.EdgeWeight(tamp::AsNode(11423),
                                           tamp::AsNode(209))) / total;
  const double abilene =
      static_cast<double>(graph.EdgeWeight(tamp::AsNode(11423),
                                           tamp::AsNode(11537))) / total;
  const auto w66 =
      graph.EdgeWeight(tamp::PeerNode(bgp::Ipv4Addr(128, 32, 1, 3)),
                       tamp::NexthopNode(bgp::Ipv4Addr(128, 32, 0, 66)));
  const auto w70 =
      graph.EdgeWeight(tamp::PeerNode(bgp::Ipv4Addr(128, 32, 1, 3)),
                       tamp::NexthopNode(bgp::Ipv4Addr(128, 32, 0, 70)));

  std::printf("\npaper-vs-measured:\n");
  std::printf("  commodity via QWest : paper ~80%%   measured %4.1f%%\n",
              qwest * 100.0);
  std::printf("  Internet2 via Abilene: paper ~6%%    measured %4.1f%%\n",
              abilene * 100.0);
  std::printf("  rate-limiter split   : paper 78%%/5%% measured %4.1f%%/%4.1f%%\n",
              100.0 * static_cast<double>(w66) / total,
              100.0 * static_cast<double>(w70) / total);

  bench::WritePicture(graph, prune, "fig2_berkeley", "Berkeley's BGP (TAMP)");
  return 0;
}
