// Figure 3 + Section IV-F: the persistent MED route oscillation at
// ISP-Anon.  Core2-a/b announce and withdraw their AS2 route for
// 4.5.0.0/16 continuously; Core1-a/b flip their best path in response;
// the TAMP animation's selected edge (core1-b -> 10.3.4.5) flaps between
// carrying and not carrying the prefix, and the per-frame plot shows the
// impulse train.  Stemming finds this single prefix as the strongest
// component even on a minutes-long window (paper: it was 95 % of the
// ISP's iBGP traffic for five days).
#include <fstream>

#include "core/pipeline.h"
#include "scenario_common.h"
#include "tamp/animation.h"

using namespace ranomaly;
using util::kMillisecond;
using util::kMinute;
using util::kSecond;

int main() {
  workload::IspAnonOptions options;
  options.pop_count = 3;
  options.customers_per_pop = 3;
  options.with_flapping_customer = false;
  auto scenario = bench::BuildConvergedIspAnon(options);
  auto& sim = *scenario.sim;
  auto& collector = *scenario.collector;
  const auto& net = scenario.net;

  std::printf("=== Fig 3 / IV-F: persistent MED oscillation on %s ===\n\n",
              net.med_prefix.ToString().c_str());

  const std::size_t baseline = collector.events().size();
  const std::size_t first_event = collector.events().size();
  const util::SimTime start = sim.now() + kSecond;
  // Drive Core2's AS2 session at a 2 ms cycle for 2 simulated seconds
  // (the paper observed 10 us cycles; same dynamics, coarser clock).
  InjectMedOscillation(sim, net, start, start + 2 * kSecond,
                       2 * kMillisecond);
  sim.Run(start + 5 * kSecond);

  const std::size_t total = collector.events().size() - baseline;
  std::size_t med_events = 0;
  for (std::size_t i = baseline; i < collector.events().size(); ++i) {
    if (collector.events()[i].prefix == net.med_prefix) ++med_events;
  }
  std::printf("events during oscillation: %zu, of which %zu (%.1f%%) are "
              "the one prefix (paper: 95%% of all IBGP traffic)\n",
              total, med_events,
              100.0 * static_cast<double>(med_events) /
                  static_cast<double>(total));

  // Stemming at a short timescale still ranks it first.
  const auto window = collector.events().Window(start, sim.now());
  core::Pipeline pipeline;
  const auto incidents = pipeline.AnalyzeWindow(window);
  bool classified = false;
  if (!incidents.empty()) {
    std::printf("pipeline: %s\n", incidents[0].summary.c_str());
    classified = incidents[0].kind == core::IncidentKind::kMedOscillation;
  }

  // The Fig 3 animation: track the core1-b -> 10.3.4.5 edge.
  std::vector<bgp::Event> events(
      collector.events().events().begin() +
          static_cast<std::ptrdiff_t>(first_event),
      collector.events().events().end());
  tamp::Animator animator({}, tamp::AnimationOptions{});
  animator.TrackEdge(tamp::PeerNode(bgp::Ipv4Addr(10, 0, 0, 2)),
                     tamp::NexthopNode(bgp::Ipv4Addr(10, 3, 4, 5)));
  // Track every core->nexthop edge for the self-contained animated SVG.
  std::vector<tamp::EdgeKey> animated_edges;
  for (const bgp::Ipv4Addr core :
       {bgp::Ipv4Addr(10, 0, 0, 1), bgp::Ipv4Addr(10, 0, 0, 2),
        bgp::Ipv4Addr(10, 0, 1, 1), bgp::Ipv4Addr(10, 0, 1, 2)}) {
    for (const bgp::Ipv4Addr nexthop :
         {bgp::Ipv4Addr(10, 3, 4, 5), bgp::Ipv4Addr(10, 6, 4, 5),
          bgp::Ipv4Addr(10, 9, 1, 1)}) {
      animated_edges.push_back(
          tamp::EdgeKey{tamp::PeerNode(core), tamp::NexthopNode(nexthop)});
    }
  }
  animator.TrackEdges(animated_edges);
  std::string snapshot_svg;
  animator.Play(events, [&](std::size_t frame,
                            const tamp::Animator::FrameStats&) {
    if (frame != 500) return;
    const auto pruned = tamp::Prune(animator.graph(), {.threshold = 0.0});
    const auto layout = tamp::ComputeLayout(pruned);
    tamp::RenderOptions render;
    render.title = "MED oscillation, 4.5.0.0/16 (Fig 3)";
    snapshot_svg = tamp::RenderAnimationFrameSvg(
        pruned, layout, animator.DecorationsFor(pruned),
        static_cast<util::SimTime>(frame) * 40 * kMillisecond,
        animator.TrackedPlot(), render);
  });
  std::ofstream("fig3_med_animation.svg") << snapshot_svg;
  std::printf("wrote fig3_med_animation.svg (frame 500 snapshot)\n");

  // The replayable artifact: a SMIL-animated SVG looping the incident.
  {
    const auto pruned = tamp::Prune(animator.graph(), {.threshold = 0.0});
    std::vector<std::vector<std::size_t>> series(pruned.edges.size());
    for (std::size_t i = 0; i < pruned.edges.size(); ++i) {
      series[i] = animator.SeriesFor(tamp::EdgeKey{
          pruned.nodes[pruned.edges[i].from].id,
          pruned.nodes[pruned.edges[i].to].id});
    }
    const auto layout = tamp::ComputeLayout(pruned);
    tamp::RenderOptions render;
    render.title = "MED oscillation on 4.5.0.0/16 (looping replay)";
    std::ofstream("fig3_med_animation_loop.svg")
        << tamp::RenderAnimatedSvg(pruned, layout, series, 30.0, render);
    std::printf("wrote fig3_med_animation_loop.svg (SMIL loop; open in a "
                "browser)\n");
  }

  const auto plot = animator.TrackedPlot();
  std::size_t impulses = 0;
  for (std::size_t i = 1; i < plot.weights.size(); ++i) {
    if (plot.weights[i] != plot.weights[i - 1]) ++impulses;
  }
  std::printf("selected edge core1-b -> 10.3.4.5: %zu carry/not-carry "
              "transitions across 750 frames (paper: flapping too fast to "
              "animate)\n", impulses);

  const bool dominant = static_cast<double>(med_events) /
                            static_cast<double>(total) > 0.9;
  std::printf("\nsingle prefix dominates iBGP traffic: %s; classified "
              "med-oscillation: %s\n",
              dominant ? "YES [MATCH]" : "no [MISMATCH]",
              classified ? "YES [MATCH]" : "no [MISMATCH]");
  return dominant && classified && impulses > 10 ? 0 : 1;
}
