// Figure 9: continuous customer route flapping at ISP-Anon.  The direct
// session (next hop 1.0.0.1) drops and re-establishes about once a
// minute; each drop fails over to 3-AS-hop alternates via the NAP, each
// PoP picking its own tier-1, ~200 events and ~20 s of convergence per
// flap — continuously, for 1.5 months in the paper's capture.
#include <set>

#include "core/pipeline.h"
#include "scenario_common.h"
#include "stemming/stemming.h"

using namespace ranomaly;
using util::kMinute;
using util::kSecond;

int main() {
  workload::IspAnonOptions options;
  options.pop_count = 5;
  options.customers_per_pop = 4;
  options.prefixes_per_customer = 5;
  options.tier1_count = 5;
  options.with_med_scenario = false;
  auto scenario = bench::BuildConvergedIspAnon(options);
  auto& sim = *scenario.sim;
  auto& collector = *scenario.collector;
  const auto& net = scenario.net;

  std::printf("=== Fig 9: continuous customer route flapping ===\n");
  std::printf("customer: next hop 1.0.0.1, prefix %s, backup via NAP to %zu "
              "tier-1s\n\n",
              net.flap_prefix.ToString().c_str(), net.tier1s.size());

  // Steady state (Fig 9a): the 1-hop direct path everywhere.
  const auto* rr_best = sim.RibOf(net.core_rrs[0]).Best(net.flap_prefix);
  std::printf("(a) steady state: best path [%s], %zu AS hop(s)\n",
              rr_best->attrs.as_path.ToString().c_str(),
              rr_best->attrs.as_path.Length());

  // 20 flap cycles: down 10 s, up 50 s (once a minute, as in the paper).
  const std::size_t baseline = collector.events().size();
  const util::SimTime start = sim.now() + kMinute;
  InjectCustomerFlaps(sim, net, start, 20 * kMinute, 10 * kSecond,
                      50 * kSecond);

  // Measure one failover in detail (Fig 9b), mid-way through the first
  // 10-second down phase.
  sim.Run(start + 5 * kSecond);
  std::printf("(b) direct path down: alternates in use at the RR mesh:\n");
  std::set<std::string> alternates;
  for (const auto& r : collector.Snapshot()) {
    if (r.prefix == net.flap_prefix) {
      alternates.insert(r.attrs.as_path.ToString());
      std::printf("    %s announces [%s] (%zu AS hops)\n",
                  r.peer.ToString().c_str(),
                  r.attrs.as_path.ToString().c_str(),
                  r.attrs.as_path.Length());
    }
  }

  sim.Run(start + 21 * kMinute);
  const std::size_t flap_events = collector.events().size() - baseline;
  std::printf("\n20 flap cycles generated %zu events (~%zu events/flap; "
              "paper: ~200 at 67-RR scale, ours has %zu RRs)\n",
              flap_events, flap_events / 20, net.core_rrs.size());

  // Stemming at the long timescale: the flap prefix is the strongest
  // component even though it never spikes.
  const auto window = collector.events().Window(start, sim.now());
  const auto result = stemming::Stem(window);
  bool match = false;
  if (!result.components.empty()) {
    const auto& top = result.components[0];
    const bool is_flap_prefix =
        top.prefixes.size() >= 1 &&
        std::find(top.prefixes.begin(), top.prefixes.end(), net.flap_prefix) !=
            top.prefixes.end();
    std::printf("\nStemming top component: stem {%s}, %zu prefixes, %zu "
                "events\n",
                result.StemLabel(top).c_str(), top.prefixes.size(),
                top.event_indices.size());
    match = is_flap_prefix;
  }
  std::printf("flap prefix is the strongest correlation: %s\n",
              match ? "YES [MATCH]" : "no [MISMATCH]");
  return match && !alternates.empty() && flap_events >= 20 ? 0 : 1;
}
