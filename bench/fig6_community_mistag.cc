// Figure 6: TAMP over only the routes tagged with CENIC community
// 2152:65297.  The tag is documented to mark Los Nettos-via-LAAP routes,
// yet 68 % of the tagged prefixes turn out to come from KDDI — the
// mis-tagging CENIC later confirmed and fixed.
#include "scenario_common.h"

using namespace ranomaly;

int main() {
  auto scenario = bench::BuildConvergedBerkeley();

  // TAMP maps *any* set of routes: select the tagged subset.
  std::vector<collector::RouteEntry> tagged;
  for (const auto& r : scenario.collector->Snapshot()) {
    if (r.attrs.communities.Contains(workload::kLosNettosTag)) {
      tagged.push_back(r);
    }
  }

  auto graph = tamp::TampGraph::FromSnapshot(
      tagged, {.root_name = "Berkeley (2152:65297 routes)"});
  bench::ApplyAsNames(graph, scenario.net);

  const double total = static_cast<double>(graph.UniquePrefixCount());
  std::printf("=== Fig 6: routes tagged with community 2152:65297 ===\n");
  std::printf("tagged routes: %zu over %zu prefixes\n\n", tagged.size(),
              graph.UniquePrefixCount());

  const auto pruned = tamp::Prune(graph, {.threshold = 0.0});
  bench::PrintPrunedGraph(pruned);

  const double losnettos =
      static_cast<double>(graph.EdgeWeight(tamp::AsNode(2152),
                                           tamp::AsNode(226))) / total;
  const double kddi =
      static_cast<double>(graph.EdgeWeight(tamp::AsNode(2152),
                                           tamp::AsNode(2516))) / total;
  std::printf("\npaper-vs-measured:\n");
  std::printf("  from Los Nettos (legit): paper 32%%  measured %4.1f%%\n",
              losnettos * 100.0);
  std::printf("  from KDDI (mis-tagged) : paper 68%%  measured %4.1f%%\n",
              kddi * 100.0);

  bench::WritePicture(graph, {.threshold = 0.0}, "fig6_mistag",
                      "Routes tagged 2152:65297 (CENIC mis-tagging)");
  const bool ok = losnettos > 0.25 && losnettos < 0.40 && kddi > 0.60;
  return ok ? 0 : 1;
}
