// Serving-overhead benchmark: what does a 1 Hz Prometheus scraper cost
// the analysis pipeline?
//
// BM_AnalyzeBare runs Pipeline::Analyze on a Table-I-shaped spike
// workload with no server.  BM_AnalyzeScraped runs the identical
// analysis while an embedded HTTP server answers /metrics and /varz
// scrapes from a background client once per second — the `ranomaly
// serve` steady state.  tools/run_bench.sh --serve-overhead distils the
// pair into a `serve_overhead` row in BENCH_stemming.json (budget: <=
// 3%, see docs/OBSERVABILITY.md).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/live.h"
#include "core/pipeline.h"
#include "obs/health.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "table1_common.h"

namespace ranomaly::bench {
namespace {

const collector::EventStream& Workload() {
  static const collector::EventStream* stream = [] {
    const workload::SyntheticInternet internet = BerkeleyScale(23'000);
    return new collector::EventStream(SpikeEvents(internet, 57'000, 42));
  }();
  return *stream;
}

void BM_AnalyzeBare(benchmark::State& state) {
  const collector::EventStream& stream = Workload();
  core::PipelineOptions options;
  options.threads = 2;
  const core::Pipeline pipeline(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.Analyze(stream));
  }
  state.counters["events"] = static_cast<double>(stream.size());
}
BENCHMARK(BM_AnalyzeBare)->Unit(benchmark::kMillisecond);

void BM_AnalyzeScraped(benchmark::State& state) {
  const collector::EventStream& stream = Workload();
  core::PipelineOptions options;
  options.threads = 2;
  const core::Pipeline pipeline(options);

  obs::HealthRegistry health;
  core::IncidentLog incidents;
  obs::HttpServer server(core::MakeOpsHandler(
      &obs::MetricsRegistry::Global(), &health, &incidents,
      core::OpsInfo{"bench", 2, 30.0, 10.0, 300.0}));
  std::string error;
  if (!server.Start(0, &error)) {
    state.SkipWithError(("server start failed: " + error).c_str());
    return;
  }
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::thread scraper([&] {
    // A Prometheus scrape_interval of 1s (aggressive; default is 15s),
    // alternating the heavy endpoints.
    int i = 0;
    while (!done.load(std::memory_order_acquire)) {
      if (obs::HttpGet(server.port(), (i++ % 2) == 0 ? "/metrics" : "/varz")) {
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::seconds(1));
    }
  });

  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.Analyze(stream));
  }

  done.store(true, std::memory_order_release);
  scraper.join();
  server.Stop();
  state.counters["events"] = static_cast<double>(stream.size());
  state.counters["scrapes"] = static_cast<double>(scrapes.load());
}
BENCHMARK(BM_AnalyzeScraped)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ranomaly::bench

BENCHMARK_MAIN();
