// Serving-overhead benchmark: what does a 1 Hz Prometheus scraper cost
// the analysis pipeline?
//
// BM_AnalyzeBare runs Pipeline::Analyze on a Table-I-shaped spike
// workload with no server.  BM_AnalyzeScraped runs the identical
// analysis while an embedded HTTP server answers /metrics and /varz
// scrapes from a background client once per second — the `ranomaly
// serve` steady state.
//
// `--paired N` bypasses Google Benchmark and runs N (bare, scraped)
// analysis batches back-to-back in this one process, alternating which
// side goes first, timing each batch with a process-CPU-clock delta —
// the estimator bench_checkpoint_overhead proved out after separate
// bare/scraped processes landed in load regimes differing enough to
// report a *negative* overhead.  tools/run_bench.sh --serve-overhead
// distils the paired run into a `serve_overhead` row in
// BENCH_stemming.json (budget: <= 3%, see docs/OBSERVABILITY.md).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <string_view>
#include <thread>

#include "core/live.h"
#include "core/pipeline.h"
#include "obs/health.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "table1_common.h"

namespace ranomaly::bench {
namespace {

const collector::EventStream& Workload() {
  static const collector::EventStream* stream = [] {
    const workload::SyntheticInternet internet = BerkeleyScale(23'000);
    return new collector::EventStream(SpikeEvents(internet, 57'000, 42));
  }();
  return *stream;
}

void BM_AnalyzeBare(benchmark::State& state) {
  const collector::EventStream& stream = Workload();
  core::PipelineOptions options;
  options.threads = 2;
  const core::Pipeline pipeline(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.Analyze(stream));
  }
  state.counters["events"] = static_cast<double>(stream.size());
}
BENCHMARK(BM_AnalyzeBare)->Unit(benchmark::kMillisecond);

void BM_AnalyzeScraped(benchmark::State& state) {
  const collector::EventStream& stream = Workload();
  core::PipelineOptions options;
  options.threads = 2;
  const core::Pipeline pipeline(options);

  obs::HealthRegistry health;
  core::IncidentLog incidents;
  obs::HttpServer server(core::MakeOpsHandler(
      &obs::MetricsRegistry::Global(), &health, &incidents,
      core::OpsInfo{"bench", 2, 30.0, 10.0, 300.0}));
  std::string error;
  if (!server.Start(0, &error)) {
    state.SkipWithError(("server start failed: " + error).c_str());
    return;
  }
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::thread scraper([&] {
    // A Prometheus scrape_interval of 1s (aggressive; default is 15s),
    // alternating the heavy endpoints.
    int i = 0;
    while (!done.load(std::memory_order_acquire)) {
      if (obs::HttpGet(server.port(), (i++ % 2) == 0 ? "/metrics" : "/varz")) {
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::seconds(1));
    }
  });

  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.Analyze(stream));
  }

  done.store(true, std::memory_order_release);
  scraper.join();
  server.Stop();
  state.counters["events"] = static_cast<double>(stream.size());
  state.counters["scrapes"] = static_cast<double>(scrapes.load());
}
BENCHMARK(BM_AnalyzeScraped)->Unit(benchmark::kMillisecond);

double ProcessCpuNs() {
  std::timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e9 +
         static_cast<double>(ts.tv_nsec);
}

}  // namespace

// Runs `pairs` regime-matched (bare, scraped) analysis batches and
// prints one JSON object to stdout; progress goes to stderr.  Process
// CPU time charges the server thread's scrape handling (and the 1 Hz
// loopback client, a conservative over-count) against the analysis,
// while excluding other tenants' CPU steal — which swamps a
// few-percent effect in wall time on a shared box.
int RunPaired(int pairs) {
  const collector::EventStream& stream = Workload();
  core::PipelineOptions options;
  options.threads = 2;
  const core::Pipeline pipeline(options);

  // Calibrate the batch so each timed side runs ~2 s of analysis — long
  // enough to cover a couple of 1 Hz scrapes, short enough that load
  // regimes stay matched within a pair.
  const double calib_start = ProcessCpuNs();
  benchmark::DoNotOptimize(pipeline.Analyze(stream));
  const double analyze_ns = ProcessCpuNs() - calib_start;
  const int iters = std::max(8, static_cast<int>(2e9 / analyze_ns));

  const auto run_batch = [&] {
    const double start = ProcessCpuNs();
    for (int i = 0; i < iters; ++i) {
      benchmark::DoNotOptimize(pipeline.Analyze(stream));
    }
    return ProcessCpuNs() - start;
  };

  const auto run_scraped = [&]() -> double {
    obs::HealthRegistry health;
    core::IncidentLog incidents;
    obs::HttpServer server(core::MakeOpsHandler(
        &obs::MetricsRegistry::Global(), &health, &incidents,
        core::OpsInfo{"bench", 2, 30.0, 10.0, 300.0}));
    std::string error;
    if (!server.Start(0, &error)) {
      std::fprintf(stderr, "server start failed: %s\n", error.c_str());
      std::exit(1);
    }
    std::atomic<bool> done{false};
    std::thread scraper([&] {
      int i = 0;
      while (!done.load(std::memory_order_acquire)) {
        obs::HttpGet(server.port(), (i++ % 2) == 0 ? "/metrics" : "/varz");
        std::this_thread::sleep_for(std::chrono::seconds(1));
      }
    });
    const double ns = run_batch();
    done.store(true, std::memory_order_release);
    scraper.join();
    server.Stop();
    return ns;
  };

  run_batch();  // one warm-up of each side before anything is recorded
  run_scraped();
  std::printf("{\"iters_per_side\": %d, \"pairs\": [", iters);
  for (int i = 0; i < pairs; ++i) {
    double bare_ns = 0.0;
    double scraped_ns = 0.0;
    // Alternate which side runs first so a monotonic load drift across
    // the pair window biases half the pairs each way.
    if (i % 2 == 0) {
      bare_ns = run_batch();
      scraped_ns = run_scraped();
    } else {
      scraped_ns = run_scraped();
      bare_ns = run_batch();
    }
    std::printf("%s{\"bare_ns\": %.0f, \"scraped_ns\": %.0f}",
                i == 0 ? "" : ", ", bare_ns, scraped_ns);
    std::fprintf(stderr, "pair %d/%d: bare %.1f ms, scraped %.1f ms "
                 "(ratio %.4f)\n", i + 1, pairs, bare_ns / 1e6,
                 scraped_ns / 1e6, scraped_ns / bare_ns);
  }
  std::printf("]}\n");
  return 0;
}

}  // namespace ranomaly::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--paired" && i + 1 < argc) {
      return ranomaly::bench::RunPaired(std::atoi(argv[i + 1]));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
