// Ablation: prefix-count vs traffic-weighted Stemming (Section III-D.2).
//
// Two simultaneous incidents: a large prefix-count incident over mice and
// a small incident over elephants.  Plain Stemming ranks by event counts
// and reports the mice incident first; weighted Stemming (per-prefix
// traffic volume) promotes the elephant incident — the paper's argument
// that a short oscillation on a few elephant prefixes can slosh most of a
// network's traffic.
#include <cstdio>

#include "stemming/stemming.h"
#include "traffic/traffic.h"
#include "workload/eventgen.h"

using namespace ranomaly;
using util::kMinute;

int main() {
  workload::InternetOptions net_options;
  net_options.monitored_peers = 4;
  net_options.prefix_count = 2'000;
  net_options.origin_as_count = 200;
  net_options.seed = 55;
  const workload::SyntheticInternet internet(net_options);

  // Traffic: Zipf elephants over the prefix universe.
  traffic::FlowGenerator::Options flow_options;
  flow_options.zipf_alpha = 1.2;
  traffic::FlowGenerator flows(internet.prefixes(), flow_options, 56);
  traffic::TrafficMatrix matrix(internet.prefixes());
  for (int i = 0; i < 200'000; ++i) matrix.AddFlow(flows.Next());
  std::printf("=== Ablation: weighted Stemming (elephants vs mice) ===\n");
  std::printf("traffic skew: top 10%% of prefixes carry %.0f%% of bytes\n\n",
              matrix.VolumeShareOfTopPrefixes(0.10) * 100);

  // Incident A (mice): a tier-1 failover moving ~1/8 of all (mostly
  // cold) prefixes, thousands of events.  Incident B (elephants): a short
  // oscillation on the hottest prefix *not* touched by the failover, a
  // couple hundred events.
  // Pick the hottest prefix routed through neither the failed tier-1 (0)
  // nor the failover alternate (1), so the two incidents stay disjoint.
  const bgp::AsNumber failed_tier1 = internet.PathVia(0, 0, 0).asns().at(1);
  const bgp::AsNumber alternate_tier1 =
      internet.PathVia(1, 0, 0).asns().at(1);
  const auto by_volume = matrix.ByVolume();
  std::size_t hottest_index = internet.prefixes().size();
  for (const auto& [prefix, bytes] : by_volume) {
    bool overlaps = false;
    std::size_t index = internet.prefixes().size();
    for (std::size_t i = 0; i < internet.prefixes().size(); ++i) {
      if (internet.prefixes()[i] == prefix) index = i;
    }
    for (const auto& r : internet.routes()) {
      if (r.prefix != prefix || r.attrs.as_path.asns().size() < 2) continue;
      const bgp::AsNumber t1 = r.attrs.as_path.asns()[1];
      if (t1 == failed_tier1 || t1 == alternate_tier1) overlaps = true;
    }
    if (!overlaps) {
      hottest_index = index;
      break;
    }
  }
  const bgp::Prefix elephant = internet.prefixes().at(hottest_index);

  workload::EventStreamGenerator gen(internet, 57);
  gen.Tier1Failover(0, 1, 0, kMinute);
  gen.PrefixOscillation(hottest_index, 0, 30 * kMinute, kMinute);
  const auto stream = gen.Take();

  const auto describe = [&](const char* label,
                            const stemming::StemmingResult& result) {
    std::printf("%s\n", label);
    for (std::size_t i = 0; i < std::min<std::size_t>(3, result.components.size());
         ++i) {
      const auto& c = result.components[i];
      std::uint64_t volume = 0;
      for (const auto& p : c.prefixes) volume += matrix.VolumeOf(p);
      std::printf("  #%zu stem {%s}: %zu prefixes, %zu events, %.1f%% of "
                  "traffic\n",
                  i + 1, result.StemLabel(c).c_str(), c.prefixes.size(),
                  c.event_indices.size(),
                  100.0 * static_cast<double>(volume) /
                      static_cast<double>(matrix.TotalVolume()));
    }
  };

  const auto plain = stemming::Stem(stream.events());
  describe("prefix-count Stemming (paper's base algorithm):", plain);

  stemming::StemmingOptions weighted;
  weighted.weight_fn = [&](const bgp::Prefix& p) {
    return 1.0 + static_cast<double>(matrix.VolumeOf(p));
  };
  const auto traffic_weighted = stemming::Stem(stream.events(), weighted);
  describe("\ntraffic-weighted Stemming (Section III-D.2 extension):",
           traffic_weighted);

  // Plain ranking puts the big mice incident first; the weighted ranking
  // must promote the elephant oscillation.
  const auto contains_elephant = [&](const stemming::StemmingResult& r) {
    return !r.components.empty() &&
           std::find(r.components[0].prefixes.begin(),
                     r.components[0].prefixes.end(),
                     elephant) != r.components[0].prefixes.end();
  };
  const bool plain_first_is_elephant = contains_elephant(plain);
  const bool weighted_first_is_elephant = contains_elephant(traffic_weighted);
  std::printf("\nelephant incident ranked first: plain=%s weighted=%s\n",
              plain_first_is_elephant ? "yes" : "no [expected]",
              weighted_first_is_elephant ? "YES [MATCH]" : "no [MISMATCH]");
  return weighted_first_is_elephant && !plain_first_is_elephant ? 0 : 1;
}
