// Ablation: the pruning threshold (DESIGN.md decision 2/3).
//
// Sweeps the flat threshold from 0 % to 20 % on the Berkeley picture and
// reports graph size and whether the IV-B backdoor survives; then shows
// hierarchical pruning keeping the near-root detail at every threshold.
// The paper's 5 % default is the point where the picture stays readable
// (tens of edges) yet still shows every major artery.
#include "scenario_common.h"

using namespace ranomaly;

int main() {
  auto scenario = bench::BuildConvergedBerkeley();
  auto graph = tamp::TampGraph::FromSnapshot(scenario.collector->Snapshot(),
                                             {.root_name = "Berkeley"});
  bench::ApplyAsNames(graph, scenario.net);
  const tamp::NodeId backdoor =
      tamp::NexthopNode(bgp::Ipv4Addr(169, 229, 0, 157));

  std::printf("=== Ablation: pruning threshold ===\n");
  std::printf("unpruned graph: %zu edges\n\n", graph.EdgeCount());
  std::printf("%-12s %8s %8s %10s | %8s %8s %10s\n", "threshold", "edges",
              "nodes", "backdoor", "edges", "nodes", "backdoor");
  std::printf("%-12s %28s | %28s\n", "", "---------- flat ----------",
              "------- hierarchical ------");

  for (const double pct : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20}) {
    const auto flat = tamp::Prune(graph, {.threshold = pct});
    tamp::PruneOptions hier;
    hier.depth_thresholds = {0.0, 0.0, 0.0, 0.0, pct};
    const auto hierarchical = tamp::Prune(graph, hier);
    std::printf("%10.0f%% %8zu %8zu %10s | %8zu %8zu %10s\n", pct * 100,
                flat.edges.size(), flat.nodes.size(),
                flat.FindNode(backdoor) != tamp::PrunedGraph::npos ? "visible"
                                                                   : "pruned",
                hierarchical.edges.size(), hierarchical.nodes.size(),
                hierarchical.FindNode(backdoor) != tamp::PrunedGraph::npos
                    ? "visible"
                    : "pruned");
  }

  std::printf(
      "\nreading: flat pruning loses the 2-prefix backdoor at any useful\n"
      "threshold; hierarchical pruning keeps all in-domain elements while\n"
      "still collapsing the far topology — the paper's operator feedback.\n");
  return 0;
}
