// Ablation: Stemming window length vs detection (Section III-B's
// temporal-independence claim).
//
// The capture holds transient incidents (session resets, each a burst of
// ~1.5k events) plus a low-grade persistent flap (8 events/minute,
// forever).  On a short window the latest burst dominates the ranking;
// as the window grows, the bursts stay constant-size while the flap's
// correlation keeps accumulating until it is the strongest component —
// "these anomalies even involving just a single prefix would overwhelm
// other correlations" (paper Section III-B).
#include <cstdio>

#include "stemming/stemming.h"
#include "workload/eventgen.h"

using namespace ranomaly;
using util::kHour;
using util::kMinute;

int main() {
  workload::InternetOptions net_options;
  net_options.monitored_peers = 4;
  net_options.tier1_count = 40;    // realistic path diversity
  net_options.transit_count = 400;
  net_options.prefix_count = 800;
  net_options.origin_as_count = 400;
  net_options.seed = 61;
  const workload::SyntheticInternet internet(net_options);

  const util::SimDuration capture = 8 * kHour;
  workload::EventStreamGenerator gen(internet, 62);
  gen.Churn(0, capture, 5'000);  // light grass
  // A session reset burst every hour, rotating over the peers.
  for (int h = 0; h < 8; ++h) {
    gen.SessionReset(static_cast<std::size_t>(h) % 4,
                     h * kHour + 5 * kMinute, kMinute, 20 * util::kSecond);
  }
  // The persistent flap: all routes of one prefix, once a minute, all day.
  gen.PrefixOscillation(7, 0, capture, kMinute);
  const auto stream = gen.Take();
  const bgp::Prefix flap_prefix = internet.prefixes()[7];

  std::printf("=== Ablation: Stemming window length ===\n");
  std::printf("capture: %zu events over %s; hourly reset bursts plus a "
              "persistent flap of %s\n\n",
              stream.size(), util::FormatDuration(stream.TimeRange()).c_str(),
              flap_prefix.ToString().c_str());

  // A component "detects" the flap when the flap prefix's events dominate
  // it (>= 60 %), i.e. it is flap-shaped rather than a burst that merely
  // happens to contain the prefix.
  const auto flap_rank = [&](std::span<const bgp::Event> window,
                             const stemming::StemmingResult& result) {
    for (std::size_t i = 0; i < result.components.size(); ++i) {
      const auto& c = result.components[i];
      std::size_t flap_events = 0;
      for (const std::size_t idx : c.event_indices) {
        if (window[idx].prefix == flap_prefix) ++flap_events;
      }
      if (static_cast<double>(flap_events) >=
          0.6 * static_cast<double>(c.event_indices.size())) {
        return static_cast<int>(i) + 1;
      }
    }
    return -1;
  };

  std::printf("%-12s %10s %14s %32s %12s\n", "window", "events",
              "flap events", "top component", "flap rank");
  bool short_window_buried = false;
  bool long_window_first = false;
  for (const util::SimDuration window_len :
       {10 * kMinute, 30 * kMinute, kHour, 2 * kHour, 4 * kHour, 8 * kHour}) {
    const auto window = stream.Window(0, window_len);
    std::size_t flap_events = 0;
    for (const auto& e : window) {
      if (e.prefix == flap_prefix) ++flap_events;
    }
    const auto result = stemming::Stem(window);
    const int rank = flap_rank(window, result);
    std::printf("%-12s %10zu %14zu %32s %12s\n",
                util::FormatDuration(window_len).c_str(), window.size(),
                flap_events,
                result.components.empty()
                    ? "-"
                    : result.StemLabel(result.components[0]).c_str(),
                rank < 0 ? "buried" : std::to_string(rank).c_str());
    if (window_len <= 10 * kMinute && rank != 1) short_window_buried = true;
    if (window_len >= 8 * kHour && rank == 1) long_window_first = true;
  }

  std::printf("\nshort windows rank the burst first, long windows rank the "
              "flap first: %s\n",
              short_window_buried && long_window_first ? "YES [MATCH]"
                                                       : "no [MISMATCH]");
  return short_window_buried && long_window_first ? 0 : 1;
}
