// The arena-stemmer benchmark trajectory: the pre-arena implementation
// (kept verbatim below as `legacy`) against the flat-arena, incremental,
// optionally sharded Stem, on the Table I Berkeley stemming workloads
// (12k / 57k / 330k events), plus the thread-count curve at 330k.
//
// tools/run_bench.sh runs this binary and distils BENCH_stemming.json
// (ns/op per size, serial vs parallel, speedup) at the repo root.
//
// Before benchmarking, main() asserts that legacy and optimized agree on
// the 12k workload — the timing comparison is only meaningful if both
// sides compute the same answer.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "table1_common.h"
#include "stemming/stemming.h"
#include "util/thread_pool.h"

namespace ranomaly::bench {
namespace legacy {

// ---- verbatim copy of the pre-arena Stem (the baseline under test) ----
//
// Includes its own unordered_map-backed symbol table mirroring the
// pre-change InternPool, so the baseline measures the full before-state
// (the current InternPool is open-addressed and would flatter it).

using stemming::Component;
using stemming::StemmingOptions;
using stemming::SymbolId;
using stemming::SymbolKind;

class SymbolTable {
 public:
  SymbolId InternPeer(bgp::Ipv4Addr addr) {
    return Intern(Tag(SymbolKind::kPeer, addr.value()));
  }
  SymbolId InternNexthop(bgp::Ipv4Addr addr) {
    return Intern(Tag(SymbolKind::kNexthop, addr.value()));
  }
  SymbolId InternAs(bgp::AsNumber asn) {
    return Intern(Tag(SymbolKind::kAs, asn));
  }
  SymbolId InternPrefix(const bgp::Prefix& prefix) {
    const std::uint64_t payload =
        (static_cast<std::uint64_t>(prefix.addr().value()) << 8) |
        prefix.length();
    return Intern(Tag(SymbolKind::kPrefix, payload));
  }
  bgp::Prefix PrefixOf(SymbolId id) const {
    const std::uint64_t payload = values_[id] & 0xffffffffffULL;
    return bgp::Prefix(bgp::Ipv4Addr(static_cast<std::uint32_t>(payload >> 8)),
                       static_cast<std::uint8_t>(payload & 0xff));
  }

 private:
  static constexpr std::uint64_t Tag(SymbolKind kind, std::uint64_t payload) {
    return (static_cast<std::uint64_t>(kind) << 56) | payload;
  }
  SymbolId Intern(std::uint64_t value) {
    auto [it, inserted] =
        index_.try_emplace(value, static_cast<SymbolId>(values_.size()));
    if (inserted) values_.push_back(value);
    return it->second;
  }
  std::unordered_map<std::uint64_t, SymbolId> index_;
  std::vector<std::uint64_t> values_;
};

struct StemmingResult {
  SymbolTable symbols;
  std::vector<Component> components;
  std::size_t total_events = 0;
  double total_weight = 0.0;
  std::size_t residual_events = 0;
};

struct EncodedEvent {
  std::vector<SymbolId> seq;
  SymbolId prefix_symbol = 0;
  double weight = 1.0;
};

struct PairHash {
  std::size_t operator()(const std::pair<SymbolId, SymbolId>& p) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(p.first) << 32) | p.second);
  }
};

struct VecHash {
  std::size_t operator()(const std::vector<SymbolId>& v) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const SymbolId s : v) {
      h ^= s;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

constexpr double kCountEpsilon = 1e-9;

bool CountsEqual(double a, double b) {
  return std::fabs(a - b) <= kCountEpsilon * std::max(1.0, std::max(a, b));
}

std::optional<std::pair<std::vector<SymbolId>, double>> TopSubsequence(
    const std::vector<EncodedEvent>& events, const std::vector<bool>& active,
    double min_count) {
  std::unordered_map<std::pair<SymbolId, SymbolId>, double, PairHash> bigrams;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (!active[i]) continue;
    const auto& seq = events[i].seq;
    for (std::size_t j = 0; j + 1 < seq.size(); ++j) {
      bigrams[{seq[j], seq[j + 1]}] += events[i].weight;
    }
  }
  if (bigrams.empty()) return std::nullopt;

  double best_count = 0.0;
  for (const auto& [pair, count] : bigrams) {
    best_count = std::max(best_count, count);
  }
  if (best_count < min_count) return std::nullopt;

  std::unordered_set<std::vector<SymbolId>, VecHash> survivors;
  for (const auto& [pair, count] : bigrams) {
    if (CountsEqual(count, best_count)) {
      survivors.insert({pair.first, pair.second});
    }
  }

  std::unordered_set<std::vector<SymbolId>, VecHash> last_survivors =
      survivors;
  std::size_t k = 2;
  while (!survivors.empty()) {
    last_survivors = survivors;
    std::unordered_map<std::vector<SymbolId>, double, VecHash> extended;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (!active[i]) continue;
      const auto& seq = events[i].seq;
      if (seq.size() < k + 1) continue;
      std::vector<SymbolId> window;
      for (std::size_t j = 0; j + k < seq.size(); ++j) {
        window.assign(seq.begin() + static_cast<std::ptrdiff_t>(j),
                      seq.begin() + static_cast<std::ptrdiff_t>(j + k));
        if (!survivors.contains(window)) continue;
        window.push_back(seq[j + k]);
        extended[window] += events[i].weight;
      }
    }
    survivors.clear();
    for (const auto& [vec, count] : extended) {
      if (CountsEqual(count, best_count)) survivors.insert(vec);
    }
    ++k;
  }

  std::vector<SymbolId> best = *std::min_element(
      last_survivors.begin(), last_survivors.end());
  return std::make_pair(std::move(best), best_count);
}

bool ContainsSubsequence(const std::vector<SymbolId>& seq,
                         const std::vector<SymbolId>& sub) {
  if (sub.size() > seq.size()) return false;
  for (std::size_t j = 0; j + sub.size() <= seq.size(); ++j) {
    if (std::equal(sub.begin(), sub.end(),
                   seq.begin() + static_cast<std::ptrdiff_t>(j))) {
      return true;
    }
  }
  return false;
}

StemmingResult Stem(std::span<const bgp::Event> events,
                    const StemmingOptions& options = {}) {
  StemmingResult result;
  result.total_events = events.size();

  std::vector<EncodedEvent> encoded;
  encoded.reserve(events.size());
  for (const bgp::Event& e : events) {
    EncodedEvent ee;
    ee.seq.reserve(e.attrs.as_path.Length() + 3);
    ee.seq.push_back(result.symbols.InternPeer(e.peer));
    ee.seq.push_back(result.symbols.InternNexthop(e.attrs.nexthop));
    bgp::AsNumber last_as = 0;
    bool have_last = false;
    for (const bgp::AsNumber asn : e.attrs.as_path.asns()) {
      if (have_last && asn == last_as) continue;
      ee.seq.push_back(result.symbols.InternAs(asn));
      last_as = asn;
      have_last = true;
    }
    ee.prefix_symbol = result.symbols.InternPrefix(e.prefix);
    ee.seq.push_back(ee.prefix_symbol);
    ee.weight = options.weight_fn ? options.weight_fn(e.prefix) : 1.0;
    result.total_weight += ee.weight;
    encoded.push_back(std::move(ee));
  }

  std::vector<bool> active(encoded.size(), true);
  std::size_t active_count = encoded.size();

  while (result.components.size() < options.max_components &&
         active_count > 0) {
    const double min_count =
        std::max(options.min_count,
                 options.min_count_fraction * result.total_weight);
    auto top = TopSubsequence(encoded, active, min_count);
    if (!top) break;
    auto& [sequence, count] = *top;
    if (sequence.size() < options.min_subsequence_length) break;

    Component component;
    component.top_sequence = sequence;
    component.stem = {sequence[sequence.size() - 2], sequence.back()};
    component.count = count;

    std::unordered_set<SymbolId> prefix_symbols;
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      if (!active[i]) continue;
      if (ContainsSubsequence(encoded[i].seq, sequence)) {
        prefix_symbols.insert(encoded[i].prefix_symbol);
      }
    }
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      if (!active[i]) continue;
      if (prefix_symbols.contains(encoded[i].prefix_symbol)) {
        component.event_indices.push_back(i);
        component.event_weight += encoded[i].weight;
        active[i] = false;
        --active_count;
      }
    }
    component.prefixes.reserve(prefix_symbols.size());
    for (const SymbolId s : prefix_symbols) {
      component.prefixes.push_back(result.symbols.PrefixOf(s));
    }
    std::sort(component.prefixes.begin(), component.prefixes.end());

    result.components.push_back(std::move(component));
  }

  result.residual_events = active_count;
  return result;
}

}  // namespace legacy

namespace {

const collector::EventStream& Workload(std::size_t count) {
  // Shared across benchmark repetitions; generation is not measured.
  static std::unordered_map<std::size_t, collector::EventStream> cache;
  auto it = cache.find(count);
  if (it == cache.end()) {
    const workload::SyntheticInternet internet = BerkeleyScale(23'000);
    it = cache.emplace(count, SpikeEvents(internet, count, 9)).first;
  }
  return it->second;
}

void BM_StemmingLegacy(benchmark::State& state) {
  const auto& events = Workload(static_cast<std::size_t>(state.range(0)));
  std::size_t components = 0;
  for (auto _ : state) {
    const auto result = legacy::Stem(events.events());
    components = result.components.size();
    benchmark::DoNotOptimize(components);
  }
  state.counters["events"] = static_cast<double>(events.size());
  state.counters["components"] = static_cast<double>(components);
}
BENCHMARK(BM_StemmingLegacy)
    ->Unit(benchmark::kMillisecond)
    ->Arg(12'000)
    ->Arg(57'000)
    ->Arg(330'000);

void BM_StemmingArena(benchmark::State& state) {
  const auto& events = Workload(static_cast<std::size_t>(state.range(0)));
  std::size_t components = 0;
  for (auto _ : state) {
    const auto result = stemming::Stem(events.events());
    components = result.components.size();
    benchmark::DoNotOptimize(components);
  }
  state.counters["events"] = static_cast<double>(events.size());
  state.counters["components"] = static_cast<double>(components);
}
BENCHMARK(BM_StemmingArena)
    ->Unit(benchmark::kMillisecond)
    ->Arg(12'000)
    ->Arg(57'000)
    ->Arg(330'000);

// Thread curve on the largest row.  The shard split is fixed by input
// size, so every point computes identical bytes; only wall time moves.
void BM_StemmingArenaThreads(benchmark::State& state) {
  const auto& events = Workload(330'000);
  const auto threads = static_cast<std::size_t>(state.range(0));
  util::ThreadPool pool(threads);
  stemming::StemmingOptions options;
  options.pool = threads > 1 ? &pool : nullptr;
  std::size_t components = 0;
  for (auto _ : state) {
    const auto result = stemming::Stem(events.events(), options);
    components = result.components.size();
    benchmark::DoNotOptimize(components);
  }
  state.counters["events"] = static_cast<double>(events.size());
  state.counters["components"] = static_cast<double>(components);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_StemmingArenaThreads)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

// Both implementations must agree before their times are compared.
bool AgreementCheck() {
  const auto& events = Workload(12'000);
  const auto a = legacy::Stem(events.events());
  const auto b = stemming::Stem(events.events());
  if (a.components.size() != b.components.size() ||
      a.residual_events != b.residual_events) {
    return false;
  }
  for (std::size_t i = 0; i < a.components.size(); ++i) {
    if (a.components[i].top_sequence != b.components[i].top_sequence ||
        a.components[i].count != b.components[i].count ||
        a.components[i].event_indices != b.components[i].event_indices) {
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace ranomaly::bench

int main(int argc, char** argv) {
  if (!ranomaly::bench::AgreementCheck()) {
    std::fprintf(stderr,
                 "FATAL: legacy and arena stemming disagree; benchmark "
                 "comparison would be meaningless\n");
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
