// Shared workload builders for the Table I benchmarks.
//
// The paper's Table I measures three things on two datasets:
//   * TAMP picture construction over N routes (then pruned at 5 %),
//   * TAMP animation over N events,
//   * Stemming over real event spikes.
// We rebuild inputs with the same scale and statistical shape from the
// synthetic internet (DESIGN.md documents the substitution) and measure
// from the current state of the system, as the paper does ("we do not
// include time to rebuild the data structures").
#pragma once

#include <cstddef>
#include <cstdint>

#include "collector/event_stream.h"
#include "workload/eventgen.h"
#include "workload/internet.h"

namespace ranomaly::bench {

// A Berkeley-shaped universe scaled to carry about `routes` routes
// (paper: 23k actual; 115k and 230k scaled).
inline workload::SyntheticInternet BerkeleyScale(std::size_t routes) {
  workload::InternetOptions options;
  options.monitored_peers = 4;       // four edge routers
  options.nexthops_per_peer = 3;     // ~13 nexthops at Berkeley
  options.tier1_count = 8;
  options.transit_count = 60;
  options.origin_as_count = 800;
  options.peer_coverage = 0.95;
  options.prefix_count =
      static_cast<std::size_t>(static_cast<double>(routes) /
                               (4.0 * options.peer_coverage));
  options.local_as = 11423;
  options.seed = 1003;
  return workload::SyntheticInternet(options);
}

// An ISP-Anon-shaped universe: many more peers (the route reflector
// mesh), ~7.5 routes per prefix (paper: 1.5M routes over 200k prefixes).
inline workload::SyntheticInternet IspAnonScale(std::size_t routes) {
  workload::InternetOptions options;
  options.monitored_peers = 8;       // scaled-down RR mesh
  options.nexthops_per_peer = 8;
  options.tier1_count = 12;
  options.transit_count = 120;
  options.origin_as_count = 850;     // "850 neighbor ASes"
  options.peer_coverage = 0.95;
  options.prefix_count =
      static_cast<std::size_t>(static_cast<double>(routes) /
                               (8.0 * options.peer_coverage));
  options.local_as = 1000;
  options.seed = 2002;
  return workload::SyntheticInternet(options);
}

// An event stream of about `count` events with the mix of a busy feed:
// mostly churn, plus session resets every ~100k events (what a long
// capture actually contains).  Timestamps compress so that bigger streams
// cover longer ranges, like the paper's Timerange column.
inline collector::EventStream AnimationEvents(
    const workload::SyntheticInternet& internet, std::size_t count,
    std::uint64_t seed) {
  workload::EventStreamGenerator gen(internet, seed);
  const util::SimDuration range =
      static_cast<util::SimDuration>(count / 8) * util::kSecond;
  std::size_t produced = 0;
  util::SimTime reset_at = range / 4;
  std::size_t peer = 0;
  while (produced + 50'000 < count) {
    gen.SessionReset(peer % internet.peers().size(), reset_at,
                     util::kMinute, 30 * util::kSecond);
    produced = gen.PendingEvents();
    reset_at += range / 4;
    ++peer;
  }
  if (count > produced) gen.Churn(0, range, count - produced);
  return gen.Take();
}

// One event spike: a session reset plus surrounding churn, sized to about
// `count` events over minutes (the Stemming column's "event groups").
inline collector::EventStream SpikeEvents(
    const workload::SyntheticInternet& internet, std::size_t count,
    std::uint64_t seed) {
  workload::EventStreamGenerator gen(internet, seed);
  const util::SimDuration range = 15 * util::kMinute;
  std::size_t peer = 0;
  while (gen.PendingEvents() + internet.routes().size() / 4 < count &&
         peer < internet.peers().size()) {
    gen.SessionReset(peer, range / 3, util::kMinute, 20 * util::kSecond);
    ++peer;
  }
  if (count > gen.PendingEvents()) {
    gen.Churn(0, range, count - gen.PendingEvents());
  }
  return gen.Take();
}

}  // namespace ranomaly::bench
