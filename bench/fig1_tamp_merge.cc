// Figure 1: constructing a TAMP picture — per-router trees for routers X
// and Y and the merged graph whose NexthopA-AS1 edge weighs 4, not 6,
// because edge weights are unions of unique prefixes.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "tamp/graph.h"

namespace {

using namespace ranomaly;
using bgp::AsPath;
using bgp::Ipv4Addr;
using bgp::Prefix;
using collector::RouteEntry;

RouteEntry Route(Ipv4Addr peer, Ipv4Addr nexthop, AsPath path,
                 const char* prefix) {
  RouteEntry r;
  r.peer = peer;
  r.prefix = *Prefix::Parse(prefix);
  r.attrs.nexthop = nexthop;
  r.attrs.as_path = std::move(path);
  return r;
}

void PrintGraph(const char* title, const tamp::TampGraph& graph) {
  std::printf("%s (%zu unique prefixes, %zu routes)\n", title,
              graph.UniquePrefixCount(), graph.RouteCount());
  auto edges = graph.Edges();
  std::sort(edges.begin(), edges.end(),
            [&](const auto& a, const auto& b) {
              return graph.NodeName(a.from) + graph.NodeName(a.to) <
                     graph.NodeName(b.from) + graph.NodeName(b.to);
            });
  for (const auto& e : edges) {
    std::printf("  %-12s -> %-12s  weight %zu\n",
                graph.NodeName(e.from).c_str(), graph.NodeName(e.to).c_str(),
                e.weight);
  }
}

}  // namespace

int main() {
  const Ipv4Addr x(10, 0, 0, 1);
  const Ipv4Addr y(10, 0, 0, 2);
  const Ipv4Addr nexthop_a(10, 1, 0, 1);
  const Ipv4Addr nexthop_b(10, 1, 0, 2);

  const std::vector<RouteEntry> router_x = {
      Route(x, nexthop_a, {1}, "1.2.1.0/24"),
      Route(x, nexthop_a, {1}, "1.2.2.0/24"),
      Route(x, nexthop_a, {1, 2}, "1.2.3.0/24"),
      Route(x, nexthop_b, {3}, "1.3.1.0/24"),
  };
  const std::vector<RouteEntry> router_y = {
      Route(y, nexthop_a, {1}, "1.2.1.0/24"),
      Route(y, nexthop_a, {1}, "1.2.2.0/24"),
      Route(y, nexthop_a, {1, 2}, "1.2.4.0/24"),
  };

  std::printf("=== Fig 1: TAMP tree construction and merge ===\n\n");
  PrintGraph("(a) Router X's tree", tamp::TampGraph::FromSnapshot(router_x));
  std::printf("\n");
  PrintGraph("(b) Router Y's tree", tamp::TampGraph::FromSnapshot(router_y));
  std::printf("\n");

  std::vector<RouteEntry> combined = router_x;
  combined.insert(combined.end(), router_y.begin(), router_y.end());
  const auto merged = tamp::TampGraph::FromSnapshot(combined);
  PrintGraph("(c) Combined TAMP graph", merged);

  const auto weight =
      merged.EdgeWeight(tamp::NexthopNode(nexthop_a), tamp::AsNode(1));
  std::printf(
      "\nNexthopA-AS1 weight = %zu (paper: 4, NOT 6 — the edge carries 4 "
      "unique prefixes)\n",
      weight);
  return weight == 4 ? 0 : 1;
}
