// Figure 5: hierarchical pruning exposes two backdoor routes between
// 128.32.1.222 and AT&T via nexthop 169.229.0.157 — routes a flat 5 %
// threshold (or a "show ip bgp" dump) would bury.
#include "scenario_common.h"

using namespace ranomaly;

int main() {
  auto scenario = bench::BuildConvergedBerkeley();
  auto graph =
      tamp::TampGraph::FromSnapshot(scenario.collector->Snapshot(),
                                    {.root_name = "Berkeley"});
  bench::ApplyAsNames(graph, scenario.net);

  std::printf("=== Fig 5: hierarchical pruning exposes the backdoor ===\n\n");

  const tamp::NodeId backdoor_nh =
      tamp::NexthopNode(bgp::Ipv4Addr(169, 229, 0, 157));

  std::printf("flat 5%% threshold:\n");
  const auto flat = tamp::Prune(graph, {.threshold = 0.05});
  bench::PrintPrunedGraph(flat);
  const bool hidden = flat.FindNode(backdoor_nh) == tamp::PrunedGraph::npos;
  std::printf("  -> backdoor nexthop 169.229.0.157 visible: %s\n\n",
              hidden ? "NO (buried)" : "yes");

  std::printf("hierarchical pruning (peers/nexthops/neighbor ASes always "
              "shown, 5%% beyond):\n");
  tamp::PruneOptions hier;
  hier.depth_thresholds = {0.0, 0.0, 0.0, 0.0, 0.05};
  const auto pruned = tamp::Prune(graph, hier);
  bench::PrintPrunedGraph(pruned);
  const bool visible =
      pruned.FindNode(backdoor_nh) != tamp::PrunedGraph::npos &&
      pruned.FindNode(tamp::AsNode(7018)) != tamp::PrunedGraph::npos;
  const auto weight = graph.EdgeWeight(backdoor_nh, tamp::AsNode(7018));
  std::printf(
      "  -> backdoor 128.32.1.222 -> 169.229.0.157 -> ATT visible: %s "
      "(%zu prefixes; paper: 2)\n",
      visible ? "YES" : "no", weight);

  bench::WritePicture(graph, hier, "fig5_backdoor",
                      "Berkeley's BGP, hierarchical pruning (backdoor)");
  return hidden && visible ? 0 : 1;
}
