// Provenance-overhead benchmark: what does per-incident evidence
// capture cost a live replay?
//
// BM_LiveReplayBare runs core::LiveRunner over a session-reset-plus-
// churn capture with no provenance ledger attached.  BM_LiveReplayProv
// runs the identical replay with an obs::ProvenanceLedger wired in, so
// every detection also samples contributing raw events, snapshots the
// admission classes behind the incident's stem component, and records
// the per-stage timings — the full `explain this incident` payload.
//
// `--paired N` bypasses Google Benchmark and runs N (bare, provenance)
// pairs back-to-back in this one process, alternating which side goes
// first, timing each replay with a process-CPU-clock delta.  On a
// shared box, background load shifts on a multi-second scale and
// inflates both sides of an adjacent pair by the same factor, so the
// per-pair ratio cancels it; separate processes (the plain Google
// Benchmark run) can land in load regimes that differ by 60% and bury
// a few-percent effect.  tools/run_bench.sh --provenance-overhead
// distils the paired run into a `provenance_overhead` row in
// BENCH_stemming.json (budget: <= 3%, see docs/OBSERVABILITY.md).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <string_view>

#include "core/live.h"
#include "obs/health.h"
#include "obs/provenance.h"
#include "util/time.h"
#include "workload/eventgen.h"

namespace ranomaly::bench {
namespace {

using util::kMinute;
using util::kSecond;

const collector::EventStream& Workload() {
  static const collector::EventStream* stream = [] {
    workload::InternetOptions options;
    options.monitored_peers = 5;
    options.prefix_count = 600;
    options.origin_as_count = 120;
    options.seed = 7;
    const workload::SyntheticInternet internet(options);
    workload::EventStreamGenerator gen(internet, 8);
    gen.SessionReset(0, 10 * kMinute, kMinute, 20 * kSecond);
    // A busy feed (~250 events/s average): the overhead fraction is
    // evidence-capture cost over replay cost per detection, and an
    // unpaced replay of a sparse feed deflates the denominator by
    // orders of magnitude relative to a paced production tick.
    gen.Churn(0, 30 * kMinute, 40000);
    return new collector::EventStream(gen.Take());
  }();
  return *stream;
}

core::LiveOptions ReplayOptions() {
  core::LiveOptions options;
  options.tick = 10 * kSecond;
  options.window = 5 * kMinute;
  options.slo_target_sec = 30.0;
  return options;
}

struct ReplayResult {
  std::uint64_t incidents = 0;
  std::uint64_t evidence_records = 0;
};

ReplayResult RunOnce(const core::LiveOptions& options, bool with_ledger) {
  obs::HealthRegistry health;
  core::IncidentLog incidents;
  obs::ProvenanceLedger ledger;
  std::atomic<bool> keep_going{true};
  core::LiveRunner runner(options, &health, &incidents, nullptr,
                          with_ledger ? &ledger : nullptr);
  const core::LiveStats stats =
      runner.Run(Workload(), &keep_going, [](const core::LiveStats&) {});
  return {stats.incidents, ledger.size()};
}

void BM_LiveReplayBare(benchmark::State& state) {
  Workload();  // force stream generation outside the timed loop
  const core::LiveOptions options = ReplayOptions();
  std::uint64_t incidents = 0;
  for (auto _ : state) {
    incidents = RunOnce(options, /*with_ledger=*/false).incidents;
  }
  state.counters["events"] = static_cast<double>(Workload().size());
  state.counters["incidents"] = static_cast<double>(incidents);
}
// Process CPU time (all threads of the analysis pool) is the
// comparison metric: it charges the full compute cost of evidence
// capture while excluding — critical on a shared box — other tenants'
// CPU steal, which swamps a few-percent effect in wall time.
BENCHMARK(BM_LiveReplayBare)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

void BM_LiveReplayProvenance(benchmark::State& state) {
  Workload();  // force stream generation outside the timed loop
  const core::LiveOptions options = ReplayOptions();
  std::uint64_t records = 0;
  for (auto _ : state) {
    records = RunOnce(options, /*with_ledger=*/true).evidence_records;
  }
  state.counters["events"] = static_cast<double>(Workload().size());
  state.counters["evidence_records"] = static_cast<double>(records);
}
BENCHMARK(BM_LiveReplayProvenance)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

double ProcessCpuNs() {
  std::timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e9 +
         static_cast<double>(ts.tv_nsec);
}

}  // namespace

// Runs `pairs` regime-matched (bare, provenance) replay pairs and
// prints one JSON object to stdout; progress goes to stderr.
int RunPaired(int pairs) {
  Workload();  // force stream generation outside any timed region
  const core::LiveOptions options = ReplayOptions();

  const auto run = [&](bool with_ledger) {
    const double start = ProcessCpuNs();
    RunOnce(options, with_ledger);
    return ProcessCpuNs() - start;
  };

  run(false);  // one warm-up of each side before anything is recorded
  run(true);
  std::printf("{\"pairs\": [");
  for (int i = 0; i < pairs; ++i) {
    double bare_ns = 0.0;
    double provenance_ns = 0.0;
    // Alternate which side runs first so a monotonic load drift across
    // the ~1 s pair window biases half the pairs each way.
    if (i % 2 == 0) {
      bare_ns = run(false);
      provenance_ns = run(true);
    } else {
      provenance_ns = run(true);
      bare_ns = run(false);
    }
    std::printf("%s{\"bare_ns\": %.0f, \"provenance_ns\": %.0f}",
                i == 0 ? "" : ", ", bare_ns, provenance_ns);
    std::fprintf(stderr, "pair %d/%d: bare %.1f ms, provenance %.1f ms "
                 "(ratio %.4f)\n", i + 1, pairs, bare_ns / 1e6,
                 provenance_ns / 1e6, provenance_ns / bare_ns);
  }
  std::printf("]}\n");
  return 0;
}

}  // namespace ranomaly::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--paired" && i + 1 < argc) {
      return ranomaly::bench::RunPaired(std::atoi(argv[i + 1]));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
