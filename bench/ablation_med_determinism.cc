// Ablation: MED evaluation order (DESIGN.md decision 5, RFC 3345).
//
// The same three-cluster reflector topology is run under the three MED
// evaluation modes.  The default (sequential, order-dependent) mode —
// what deployed routers of the paper's era did — never converges: the
// preference cycle b0 <MED b1 <IGP c <IGP b0 keeps the mesh churning,
// exactly the Section IV-F pathology.  Both mitigations converge.
#include <cstdio>

#include "collector/collector.h"
#include "workload/rfc3345.h"

using namespace ranomaly;
using util::kSecond;

namespace {

struct Mode {
  const char* name;
  bool deterministic;
  bool always_compare;
};

void RunMode(const Mode& mode) {
  workload::Rfc3345Net net = workload::BuildRfc3345(mode.deterministic);
  net::Topology topo;
  for (std::size_t i = 0; i < net.topology.RouterCount(); ++i) {
    net::RouterSpec spec =
        net.topology.router(static_cast<net::RouterIndex>(i));
    spec.decision.always_compare_med = mode.always_compare;
    topo.AddRouter(std::move(spec));
  }
  for (std::size_t i = 0; i < net.topology.LinkCount(); ++i) {
    topo.AddLink(net.topology.link(static_cast<net::LinkIndex>(i)));
  }
  net::Simulator sim(std::move(topo), 1);
  collector::Collector rex;
  rex.AttachTo(sim, {net.rr1, net.rr2, net.rr3});
  net.SeedRoutes(sim);
  sim.Start();
  const bool converged = sim.RunToQuiescence(30 * kSecond);
  std::printf("  %-24s %-12s %10llu best-path changes, %8zu iBGP events "
              "in 30 simulated seconds\n",
              mode.name, converged ? "CONVERGES" : "OSCILLATES",
              static_cast<unsigned long long>(sim.stats().best_path_changes),
              rex.events().size());
}

}  // namespace

int main() {
  std::printf("=== Ablation: MED evaluation order on the RFC 3345 topology "
              "===\n\n");
  std::printf("routes for 4.5.0.0/16: AS-B med 1 (cluster 1), AS-B med 0 "
              "(cluster 2), AS-C no med (cluster 3)\n");
  std::printf("preference cycle: b0 beats b1 (MED), b1 beats c (IGP), c "
              "beats b0 (IGP)\n\n");
  RunMode({"sequential (default)", false, false});
  RunMode({"deterministic-med", true, false});
  RunMode({"always-compare-med", false, true});
  std::printf("\nreading: the paper's IV-F oscillation is not an injected\n"
              "anomaly here — it emerges from the decision process, and the\n"
              "RFC 3345 mitigations make it vanish.\n");
  return 0;
}
