// Table I(a): execution times of TAMP and Stemming on the Berkeley-scale
// dataset.  Paper rows (Pentium 4, 3.06 GHz, 2002-era code):
//
//   TAMP picture:   230k routes 1.8 s | 115k 1.6 s | 23k 0.5 s
//   TAMP animation: 1k events 0.5 s | 10k 1.1 s | 100k 9 s | 1000k 78 s
//   Stemming:       12k events 8.6 s | 57k 9.5 s | 330k 17.3 s
//
// Absolute numbers differ on modern hardware; the shape to check is that
// time grows with input size and everything stays real-time-capable.
#include <benchmark/benchmark.h>

#include "table1_common.h"
#include "stemming/stemming.h"
#include "tamp/animation.h"
#include "tamp/prune.h"

namespace ranomaly::bench {
namespace {

void BM_TampPicture(benchmark::State& state) {
  const auto routes = static_cast<std::size_t>(state.range(0));
  const workload::SyntheticInternet internet = BerkeleyScale(routes);
  for (auto _ : state) {
    tamp::TampGraph graph = tamp::TampGraph::FromSnapshot(internet.routes());
    tamp::PrunedGraph pruned = tamp::Prune(graph);  // default 5 %
    benchmark::DoNotOptimize(pruned.edges.data());
  }
  state.counters["routes"] = static_cast<double>(internet.routes().size());
}
BENCHMARK(BM_TampPicture)
    ->Unit(benchmark::kMillisecond)
    ->Arg(23'000)
    ->Arg(115'000)
    ->Arg(230'000);

void BM_TampAnimation(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const workload::SyntheticInternet internet = BerkeleyScale(23'000);
  const collector::EventStream events = AnimationEvents(internet, count, 7);
  for (auto _ : state) {
    state.PauseTiming();
    tamp::Animator animator(internet.routes(), tamp::AnimationOptions{});
    state.ResumeTiming();
    const auto result = animator.Play(events.events());
    benchmark::DoNotOptimize(result.frames.size());
  }
  state.counters["events"] = static_cast<double>(events.size());
  state.counters["timerange_s"] = util::ToSeconds(events.TimeRange());
}
BENCHMARK(BM_TampAnimation)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Arg(1'000'000);

void BM_Stemming(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const workload::SyntheticInternet internet = BerkeleyScale(23'000);
  const collector::EventStream events = SpikeEvents(internet, count, 9);
  std::size_t components = 0;
  for (auto _ : state) {
    const auto result = stemming::Stem(events.events());
    components = result.components.size();
    benchmark::DoNotOptimize(components);
  }
  state.counters["events"] = static_cast<double>(events.size());
  state.counters["components"] = static_cast<double>(components);
  state.counters["timerange_s"] = util::ToSeconds(events.TimeRange());
}
BENCHMARK(BM_Stemming)
    ->Unit(benchmark::kMillisecond)
    ->Arg(12'000)
    ->Arg(57'000)
    ->Arg(330'000);

}  // namespace
}  // namespace ranomaly::bench

BENCHMARK_MAIN();
