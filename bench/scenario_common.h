// Shared scenario drivers for the figure-regeneration binaries: build a
// network, attach the collector, converge, and hand everything back.
#pragma once

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "collector/collector.h"
#include "net/simulator.h"
#include "tamp/layout.h"
#include "tamp/prune.h"
#include "tamp/render.h"
#include "workload/berkeley.h"
#include "workload/ispanon.h"

namespace ranomaly::bench {

struct ConvergedBerkeley {
  workload::BerkeleyNet net;
  std::unique_ptr<net::Simulator> sim;
  std::unique_ptr<collector::Collector> collector;
};

inline ConvergedBerkeley BuildConvergedBerkeley(
    const workload::BerkeleyOptions& options = {}, std::uint64_t seed = 3) {
  ConvergedBerkeley out;
  out.net = workload::BuildBerkeley(options);
  out.sim = std::make_unique<net::Simulator>(out.net.topology, seed);
  out.collector = std::make_unique<collector::Collector>();
  out.collector->AttachTo(*out.sim, out.net.monitored);
  out.net.SeedRoutes(*out.sim);
  out.sim->Start();
  if (!out.sim->RunToQuiescence(10 * util::kMinute)) {
    throw std::runtime_error("Berkeley scenario failed to converge");
  }
  return out;
}

struct ConvergedIspAnon {
  workload::IspAnonNet net;
  std::unique_ptr<net::Simulator> sim;
  std::unique_ptr<collector::Collector> collector;
};

inline ConvergedIspAnon BuildConvergedIspAnon(
    const workload::IspAnonOptions& options = {}, std::uint64_t seed = 4) {
  ConvergedIspAnon out;
  out.net = workload::BuildIspAnon(options);
  out.sim = std::make_unique<net::Simulator>(out.net.topology, seed);
  out.collector = std::make_unique<collector::Collector>();
  out.collector->AttachTo(*out.sim, out.net.core_rrs);
  out.net.SeedRoutes(*out.sim);
  out.sim->Start();
  out.sim->Run(2 * util::kMinute);  // MED PoPs may legitimately oscillate
  return out;
}

// Renders a pruned view as a one-edge-per-line table, largest first.
inline void PrintPrunedGraph(const tamp::PrunedGraph& pruned) {
  auto edges = pruned.edges;
  std::sort(edges.begin(), edges.end(),
            [](const auto& a, const auto& b) { return a.weight > b.weight; });
  for (const auto& e : edges) {
    std::printf("  %-24s -> %-24s %7zu prefixes (%5.1f%%)\n",
                pruned.nodes[e.from].name.c_str(),
                pruned.nodes[e.to].name.c_str(), e.weight,
                e.fraction * 100.0);
  }
}

// Writes a TAMP picture of `graph` to <name>.svg and <name>.dot in the
// current directory; prints where they went.
inline void WritePicture(const tamp::TampGraph& graph,
                         const tamp::PruneOptions& prune_options,
                         const std::string& name, const std::string& title) {
  const auto pruned = tamp::Prune(graph, prune_options);
  const auto layout = tamp::ComputeLayout(pruned);
  tamp::RenderOptions render;
  render.title = title;
  std::ofstream svg(name + ".svg");
  svg << tamp::RenderSvg(pruned, layout, render);
  std::ofstream dot(name + ".dot");
  dot << tamp::RenderDot(pruned, render);
  std::printf("  wrote %s.svg and %s.dot\n", name.c_str(), name.c_str());
}

inline void ApplyAsNames(tamp::TampGraph& graph,
                         const workload::BerkeleyNet& net) {
  for (const auto& [asn, name] : net.AsNames()) graph.SetAsName(asn, name);
}

}  // namespace ranomaly::bench
