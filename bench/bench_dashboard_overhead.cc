// Dashboard-overhead benchmark: what does a 1 Hz dashboard poller cost
// the analysis pipeline?
//
// Both sides run Pipeline::Analyze on the Table-I-shaped spike workload
// AND feed the time-series store one sample per batch iteration (the
// `serve` steady state samples at every tick whether or not anyone is
// watching, so sampling is part of the baseline, not the overhead).
// The "polled" side additionally answers a browser-shaped client once
// per second, rotating /dashboard, /api/series?name=..., and
// /api/incidents/timeline — the request mix one open dashboard tab
// generates.
//
// `--paired N` runs N (bare, polled) batches back-to-back in this one
// process, alternating which side goes first, timing each batch with a
// process-CPU-clock delta (same estimator as bench_serve_overhead).
// tools/run_bench.sh --dashboard-overhead distils the paired run into a
// `dashboard_overhead` row in BENCH_stemming.json (budget: <= 3%, see
// docs/OBSERVABILITY.md).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <string_view>
#include <thread>

#include "core/live.h"
#include "core/pipeline.h"
#include "obs/health.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "util/time.h"
#include "table1_common.h"

namespace ranomaly::bench {
namespace {

const collector::EventStream& Workload() {
  static const collector::EventStream* stream = [] {
    const workload::SyntheticInternet internet = BerkeleyScale(23'000);
    return new collector::EventStream(SpikeEvents(internet, 57'000, 42));
  }();
  return *stream;
}

double ProcessCpuNs() {
  std::timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e9 +
         static_cast<double>(ts.tv_nsec);
}

}  // namespace

// Runs `pairs` regime-matched (bare, polled) analysis batches and
// prints one JSON object to stdout; progress goes to stderr.  Process
// CPU time charges the server thread's request handling (and the 1 Hz
// loopback client, a conservative over-count) against the analysis,
// while excluding other tenants' CPU steal.
int RunPaired(int pairs) {
  const collector::EventStream& stream = Workload();
  core::PipelineOptions options;
  options.threads = 2;
  const core::Pipeline pipeline(options);

  obs::TimeSeriesStore store;
  std::int64_t sim_now = 0;  // advances one tier-0 bucket per iteration

  // Calibrate the batch so each timed side runs ~2 s of analysis — long
  // enough to cover a couple of 1 Hz polls, short enough that load
  // regimes stay matched within a pair.
  const double calib_start = ProcessCpuNs();
  benchmark::DoNotOptimize(pipeline.Analyze(stream));
  const double analyze_ns = ProcessCpuNs() - calib_start;
  const int iters = std::max(8, static_cast<int>(2e9 / analyze_ns));

  const auto run_batch = [&] {
    const double start = ProcessCpuNs();
    for (int i = 0; i < iters; ++i) {
      benchmark::DoNotOptimize(pipeline.Analyze(stream));
      sim_now += util::kSecond;
      store.Sample(obs::MetricsRegistry::Global(), sim_now);
    }
    return ProcessCpuNs() - start;
  };

  const auto run_polled = [&]() -> double {
    obs::HealthRegistry health;
    core::IncidentLog incidents;
    obs::HttpServer server(core::MakeOpsHandler(
        &obs::MetricsRegistry::Global(), &health, &incidents,
        core::OpsInfo{"bench", 2, 30.0, 10.0, 300.0}, &store,
        /*dashboard=*/true));
    std::string error;
    if (!server.Start(0, &error)) {
      std::fprintf(stderr, "server start failed: %s\n", error.c_str());
      std::exit(1);
    }
    std::atomic<bool> done{false};
    std::thread poller([&] {
      // One open dashboard tab: the page itself (reload), then its two
      // XHR feeds, at the page's 1 Hz refresh.
      const char* kRotation[] = {
          "/dashboard",
          "/api/series?name=serve_events_ingested_total&res=1",
          "/api/incidents/timeline"};
      int i = 0;
      while (!done.load(std::memory_order_acquire)) {
        obs::HttpGet(server.port(), kRotation[i++ % 3]);
        std::this_thread::sleep_for(std::chrono::seconds(1));
      }
    });
    const double ns = run_batch();
    done.store(true, std::memory_order_release);
    poller.join();
    server.Stop();
    return ns;
  };

  run_batch();  // one warm-up of each side before anything is recorded
  run_polled();
  std::printf("{\"iters_per_side\": %d, \"pairs\": [", iters);
  for (int i = 0; i < pairs; ++i) {
    double bare_ns = 0.0;
    double polled_ns = 0.0;
    // Alternate which side runs first so a monotonic load drift across
    // the pair window biases half the pairs each way.
    if (i % 2 == 0) {
      bare_ns = run_batch();
      polled_ns = run_polled();
    } else {
      polled_ns = run_polled();
      bare_ns = run_batch();
    }
    std::printf("%s{\"bare_ns\": %.0f, \"scraped_ns\": %.0f}",
                i == 0 ? "" : ", ", bare_ns, polled_ns);
    std::fprintf(stderr, "pair %d/%d: bare %.1f ms, polled %.1f ms "
                 "(ratio %.4f)\n", i + 1, pairs, bare_ns / 1e6,
                 polled_ns / 1e6, polled_ns / bare_ns);
  }
  std::printf("]}\n");
  return 0;
}

namespace {

void BM_AnalyzeSampledBare(benchmark::State& state) {
  const collector::EventStream& stream = Workload();
  core::PipelineOptions options;
  options.threads = 2;
  const core::Pipeline pipeline(options);
  obs::TimeSeriesStore store;
  std::int64_t sim_now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.Analyze(stream));
    sim_now += util::kSecond;
    store.Sample(obs::MetricsRegistry::Global(), sim_now);
  }
  state.counters["events"] = static_cast<double>(stream.size());
}
BENCHMARK(BM_AnalyzeSampledBare)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ranomaly::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--paired" && i + 1 < argc) {
      return ranomaly::bench::RunPaired(std::atoi(argv[i + 1]));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
