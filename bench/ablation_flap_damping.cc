// Ablation: RFC 2439 route-flap damping vs the IV-E continuous customer
// flap.
//
// The paper diagnoses the flap; this ablation applies the era-standard
// operational remedy and measures it: with damping enabled on the ISP's
// session to the flapping customer, the mesh-wide event churn collapses —
// at the cost of the customer staying suppressed (unreachable via the
// direct path) between flaps.
#include <cstdio>

#include "collector/collector.h"
#include "workload/ispanon.h"

using namespace ranomaly;
using util::kMinute;
using util::kSecond;

namespace {

struct Result {
  std::size_t events = 0;
  std::uint64_t damped = 0;
  std::uint64_t reused = 0;
};

Result RunFlaps(bool with_damping) {
  workload::IspAnonOptions options;
  options.pop_count = 4;
  options.customers_per_pop = 2;
  options.with_med_scenario = false;
  workload::IspAnonNet net = workload::BuildIspAnon(options);
  if (with_damping) {
    net::LinkSpec& flap_link = net.topology.mutable_link(net.flap_link);
    flap_link.a_policy.damping.enabled = true;
    flap_link.a_policy.damping.half_life = 30 * kMinute;
  }
  net::Simulator sim(net.topology, 9);
  collector::Collector rex;
  rex.AttachTo(sim, net.core_rrs);
  net.SeedRoutes(sim);
  sim.Start();
  sim.RunToQuiescence(5 * kMinute);
  const std::size_t baseline = rex.events().size();

  InjectCustomerFlaps(sim, net, sim.now() + kMinute, 60 * kMinute,
                      10 * kSecond, 50 * kSecond);
  sim.Run(sim.now() + 62 * kMinute);

  Result r;
  r.events = rex.events().size() - baseline;
  r.damped = sim.stats().routes_damped;
  r.reused = sim.stats().routes_reused;
  return r;
}

}  // namespace

int main() {
  std::printf("=== Ablation: RFC 2439 flap damping vs the IV-E customer "
              "flap ===\n\n");
  std::printf("60 minutes of once-a-minute session flaps at the customer "
              "edge:\n\n");
  const Result off = RunFlaps(false);
  const Result on = RunFlaps(true);
  std::printf("  %-18s %10s %10s %10s\n", "damping", "events", "damped",
              "reused");
  std::printf("  %-18s %10zu %10llu %10llu\n", "disabled", off.events,
              static_cast<unsigned long long>(off.damped),
              static_cast<unsigned long long>(off.reused));
  std::printf("  %-18s %10zu %10llu %10llu\n", "enabled", on.events,
              static_cast<unsigned long long>(on.damped),
              static_cast<unsigned long long>(on.reused));

  const bool ok = on.events * 3 < off.events && on.damped > 0;
  std::printf("\nmesh churn reduced by damping: %s (x%.1f fewer events)\n",
              ok ? "YES" : "no",
              off.events == 0 ? 0.0
                              : static_cast<double>(off.events) /
                                    static_cast<double>(std::max<std::size_t>(
                                        1, on.events)));
  std::printf("note: the remedy trades churn for reachability — while\n"
              "suppressed, the direct customer path stays out of the RIB.\n");
  return ok ? 0 : 1;
}
