// Figure 8: BGP event rate at ISP-Anon over the capture.  The plot's
// punchline is that the serious problem is not in any of the spikes — it
// is the low-grade "grass", a persistent customer flap that only the
// long-window Stemming pass catches.
#include <cstdio>

#include "core/pipeline.h"
#include "table1_common.h"

using namespace ranomaly;
using util::kHour;
using util::kMinute;

int main() {
  // A day-scale stream: continuous churn grass + three session-reset
  // spikes + the low-grade single-prefix flap.
  // Path diversity matters: the real ISP-Anon feed spread its noise over
  // 850 neighbor ASes, so no single shared path segment accumulates the
  // grass into one blob.  Model that with a wide tier-1/transit fan-out.
  workload::InternetOptions net_options;
  net_options.monitored_peers = 8;
  net_options.nexthops_per_peer = 4;
  net_options.tier1_count = 40;
  net_options.transit_count = 400;
  net_options.prefix_count = 20'000;
  net_options.origin_as_count = 850;
  net_options.local_as = 1000;
  net_options.seed = 77;
  const workload::SyntheticInternet internet(net_options);

  workload::EventStreamGenerator gen(internet, 78);
  const util::SimDuration day = 24 * kHour;
  gen.Churn(0, day, 120'000);
  gen.SessionReset(1, 5 * kHour, kMinute, 30 * util::kSecond);
  gen.SessionReset(4, 13 * kHour, kMinute, 30 * util::kSecond);
  gen.SessionReset(6, 19 * kHour, kMinute, 30 * util::kSecond);
  // The killer signal hiding in the grass: one prefix flapping once a
  // minute, all day (Section IV-E's shape).
  gen.PrefixOscillation(3, 0, day, kMinute);
  const auto stream = gen.Take();

  std::printf("=== Fig 8: BGP event rate at ISP-Anon ===\n");
  std::printf("%zu events over %s\n\n", stream.size(),
              util::FormatDuration(stream.TimeRange()).c_str());

  // The rate plot, one row per 30 minutes.
  const auto rate = stream.Rate(30 * kMinute);
  std::uint64_t max_bucket = 1;
  for (const auto b : rate.buckets()) max_bucket = std::max(max_bucket, b);
  std::printf("events per 30-minute bucket (# = %llu events):\n",
              static_cast<unsigned long long>(max_bucket / 60 + 1));
  for (std::size_t i = 0; i < rate.buckets().size(); ++i) {
    const int bar = static_cast<int>(60.0 * static_cast<double>(rate.buckets()[i]) /
                                     static_cast<double>(max_bucket));
    std::printf("%5.1fh |%-60.*s| %llu\n",
                static_cast<double>(i) * 0.5, bar,
                "############################################################",
                static_cast<unsigned long long>(rate.buckets()[i]));
  }

  const auto spikes = collector::DetectSpikes(stream, 30 * kMinute, 5.0);
  std::printf("\nspikes above 5x mean: %zu (paper: a few per capture)\n",
              spikes.size());

  // The pipeline's long-window pass digs the flap out of the grass.
  core::Pipeline pipeline;
  const auto incidents = pipeline.Analyze(stream);
  std::printf("incidents found: %zu\n", incidents.size());
  bool found_flap = false;
  for (const auto& inc : incidents) {
    std::printf("  %s\n", inc.summary.c_str());
    if ((inc.kind == core::IncidentKind::kRouteFlap ||
         inc.kind == core::IncidentKind::kMedOscillation) &&
        inc.evidence.dominant_prefix_fraction >= 0.8) {
      found_flap = true;
    }
  }
  std::printf("\nlow-grade flap detected in the grass: %s (paper: 'the most "
              "serious problem is not in any of the event spikes')\n",
              found_flap ? "YES [MATCH]" : "no [MISMATCH]");
  return found_flap ? 0 : 1;
}
