// Figure 4: the ten route withdrawals during an event spike, and the
// Stemming decomposition that identifies 11423-209 as the failure
// location (8 of 10 withdrawals share it).
#include <cstdio>

#include "stemming/stemming.h"

namespace {

using namespace ranomaly;
using bgp::AsPath;
using bgp::Event;
using bgp::EventType;
using bgp::Ipv4Addr;
using bgp::Prefix;

Event W(const char* peer, const char* nexthop, AsPath path,
        const char* prefix) {
  Event e;
  e.peer = *Ipv4Addr::Parse(peer);
  e.type = EventType::kWithdraw;
  e.prefix = *Prefix::Parse(prefix);
  e.attrs.nexthop = *Ipv4Addr::Parse(nexthop);
  e.attrs.as_path = std::move(path);
  return e;
}

}  // namespace

int main() {
  // The exact ten withdrawals of the paper's Figure 4.
  const std::vector<Event> events = {
      W("128.32.1.3", "128.32.0.70", {11423, 209, 701, 1299, 5713}, "192.96.10.0/24"),
      W("128.32.1.3", "128.32.0.66", {11423, 11422, 209, 4519}, "207.191.23.0/24"),
      W("128.32.1.200", "128.32.0.90", {11423, 209, 701, 1299, 5713}, "192.96.10.0/24"),
      W("128.32.1.200", "128.32.0.90", {11423, 209, 1239, 3228, 21408}, "212.22.132.0/23"),
      W("128.32.1.3", "128.32.0.66", {11423, 209, 701, 705}, "203.14.156.0/24"),
      W("128.32.1.3", "128.32.0.66", {11423, 11422, 209, 1239, 3602}, "209.5.188.0/24"),
      W("128.32.1.3", "128.32.0.66", {11423, 209, 7018, 13606}, "12.2.41.0/24"),
      W("128.32.1.3", "128.32.0.66", {11423, 209, 7018, 13606}, "12.96.77.0/24"),
      W("128.32.1.3", "128.32.0.66", {11423, 209, 1239, 5400, 15410}, "62.80.64.0/20"),
      W("128.32.1.200", "128.32.0.90", {11423, 209, 1239, 5400, 15410}, "62.80.64.0/20"),
  };

  std::printf("=== Fig 4: route withdrawals during an event spike ===\n\n");
  for (const Event& e : events) std::printf("%s\n", e.ToString().c_str());

  const auto result = stemming::Stem(events);
  std::printf("\nStemming decomposition (%zu components):\n",
              result.components.size());
  for (std::size_t i = 0; i < result.components.size(); ++i) {
    const auto& c = result.components[i];
    std::printf(
        "  component %zu: stem {%s}, s' = [%s], count %.0f, %zu prefixes, "
        "%zu events\n",
        i + 1, result.StemLabel(c).c_str(), result.SequenceLabel(c).c_str(),
        c.count, c.prefixes.size(), c.event_indices.size());
  }

  const auto& top = result.components.at(0);
  const bool ok = result.StemLabel(top) == "AS11423 - AS209" &&
                  top.count == 8.0;
  std::printf("\nproblem location: %s (paper: the 11423-209 edge, count 8) %s\n",
              result.StemLabel(top).c_str(), ok ? "[MATCH]" : "[MISMATCH]");
  return ok ? 0 : 1;
}
