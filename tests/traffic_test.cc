#include <gtest/gtest.h>

#include <cmath>

#include "traffic/traffic.h"

namespace ranomaly::traffic {
namespace {

using bgp::Ipv4Addr;
using bgp::Prefix;

std::vector<Prefix> MakePrefixes(std::size_t n) {
  std::vector<Prefix> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Prefix(Ipv4Addr(10, static_cast<std::uint8_t>(i / 256),
                                  static_cast<std::uint8_t>(i % 256), 0),
                         24));
  }
  return out;
}

TEST(FlowGeneratorTest, FlowsLandInsideTheirPrefixes) {
  const auto prefixes = MakePrefixes(50);
  FlowGenerator gen(prefixes, {}, 1);
  for (int i = 0; i < 500; ++i) {
    const FlowRecord flow = gen.Next();
    bool covered = false;
    for (const auto& p : prefixes) covered |= p.Contains(flow.dst);
    EXPECT_TRUE(covered);
    EXPECT_GT(flow.bytes, 0u);
  }
}

TEST(FlowGeneratorTest, TimeAdvancesMonotonically) {
  FlowGenerator gen(MakePrefixes(5), {}, 2);
  util::SimTime last = 0;
  for (int i = 0; i < 100; ++i) {
    const FlowRecord flow = gen.Next();
    EXPECT_GT(flow.time, last);
    last = flow.time;
  }
}

TEST(FlowGeneratorTest, DeterministicPerSeed) {
  FlowGenerator a(MakePrefixes(20), {}, 7);
  FlowGenerator b(MakePrefixes(20), {}, 7);
  for (int i = 0; i < 50; ++i) {
    const auto fa = a.Next();
    const auto fb = b.Next();
    EXPECT_EQ(fa.dst, fb.dst);
    EXPECT_EQ(fa.bytes, fb.bytes);
  }
}

TEST(FlowGeneratorTest, EmptyPrefixesThrow) {
  EXPECT_THROW(FlowGenerator({}, {}, 1), std::invalid_argument);
}

TEST(TrafficMatrixTest, AccountsFlowsByLongestMatch) {
  const std::vector<Prefix> prefixes = {*Prefix::Parse("10.0.0.0/8"),
                                        *Prefix::Parse("10.1.0.0/16")};
  TrafficMatrix matrix(prefixes);
  FlowRecord f1{0, Ipv4Addr(10, 1, 2, 3), 100};   // inner /16
  FlowRecord f2{0, Ipv4Addr(10, 9, 2, 3), 40};    // outer /8
  FlowRecord f3{0, Ipv4Addr(99, 9, 2, 3), 7};     // unmatched
  EXPECT_TRUE(matrix.AddFlow(f1));
  EXPECT_TRUE(matrix.AddFlow(f2));
  EXPECT_FALSE(matrix.AddFlow(f3));
  EXPECT_EQ(matrix.VolumeOf(*Prefix::Parse("10.1.0.0/16")), 100u);
  EXPECT_EQ(matrix.VolumeOf(*Prefix::Parse("10.0.0.0/8")), 40u);
  EXPECT_EQ(matrix.TotalVolume(), 140u);
  EXPECT_EQ(matrix.UnmatchedBytes(), 7u);
  EXPECT_NEAR(matrix.FractionOf(*Prefix::Parse("10.1.0.0/16")), 100.0 / 140.0,
              1e-9);
}

TEST(TrafficMatrixTest, ElephantAndMicePhenomenon) {
  // Section III-D.2: with Zipf traffic, ~10% of prefixes should carry the
  // overwhelming majority of bytes.
  const auto prefixes = MakePrefixes(500);
  FlowGenerator::Options options;
  options.zipf_alpha = 1.3;
  FlowGenerator gen(prefixes, options, 3);
  TrafficMatrix matrix(prefixes);
  for (int i = 0; i < 50000; ++i) matrix.AddFlow(gen.Next());

  const double top10_share = matrix.VolumeShareOfTopPrefixes(0.10);
  EXPECT_GT(top10_share, 0.70);
  // And the bottom 90% carries the residue.
  EXPECT_LT(matrix.VolumeShareOfTopPrefixes(1.0), 1.0 + 1e-9);
  EXPECT_NEAR(matrix.VolumeShareOfTopPrefixes(1.0), 1.0, 1e-9);
}

TEST(TrafficMatrixTest, ElephantsCoverRequestedVolume) {
  const auto prefixes = MakePrefixes(100);
  FlowGenerator gen(prefixes, {}, 4);
  TrafficMatrix matrix(prefixes);
  for (int i = 0; i < 20000; ++i) matrix.AddFlow(gen.Next());

  const auto elephants = matrix.Elephants(0.8);
  EXPECT_FALSE(elephants.empty());
  EXPECT_LT(elephants.size(), prefixes.size() / 2);  // heavy skew
  std::uint64_t covered = 0;
  for (const auto& p : elephants) covered += matrix.VolumeOf(p);
  EXPECT_GE(static_cast<double>(covered),
            0.8 * static_cast<double>(matrix.TotalVolume()));
}

TEST(TrafficMatrixTest, ByVolumeSortedDescending) {
  const auto prefixes = MakePrefixes(50);
  FlowGenerator gen(prefixes, {}, 5);
  TrafficMatrix matrix(prefixes);
  for (int i = 0; i < 5000; ++i) matrix.AddFlow(gen.Next());
  const auto sorted = matrix.ByVolume();
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_GE(sorted[i - 1].second, sorted[i].second);
  }
}

TEST(LoadBalanceTest, PrefixBalanceVsByteBalanceDiffer) {
  // The Section IV-A insight: a split even in prefix counts can be wildly
  // uneven in bytes because of elephants.
  const auto prefixes = MakePrefixes(100);
  FlowGenerator::Options options;
  options.zipf_alpha = 1.4;
  FlowGenerator gen(prefixes, options, 6);
  TrafficMatrix matrix(prefixes);
  for (int i = 0; i < 40000; ++i) matrix.AddFlow(gen.Next());

  // Split A gets the 50 heaviest prefixes, split B the rest: counts are
  // 50/50, bytes are not remotely.
  const auto by_volume = matrix.ByVolume();
  std::vector<Prefix> side_a, side_b;
  for (std::size_t i = 0; i < by_volume.size(); ++i) {
    (i < 50 ? side_a : side_b).push_back(by_volume[i].first);
  }
  const LoadBalanceReport report = EvaluateSplit(matrix, side_a, side_b);
  EXPECT_NEAR(report.PrefixFractionA(), 0.5, 1e-9);
  EXPECT_GT(report.ByteFractionA(), 0.9);
}

TEST(LoadBalanceTest, ComputedSplitBeatsAddressSplit) {
  // The D.2 planner: measured-volume partition lands near 50/50 bytes
  // even though the naive address split (what Berkeley did) is far off.
  const auto prefixes = MakePrefixes(200);
  FlowGenerator::Options options;
  options.zipf_alpha = 1.3;
  FlowGenerator gen(prefixes, options, 8);
  TrafficMatrix matrix(prefixes);
  for (int i = 0; i < 60000; ++i) matrix.AddFlow(gen.Next());

  // Naive: first half of the address space vs second half.
  std::vector<bgp::Prefix> naive_a(prefixes.begin(),
                                   prefixes.begin() + 100);
  std::vector<bgp::Prefix> naive_b(prefixes.begin() + 100, prefixes.end());
  const auto naive = EvaluateSplit(matrix, naive_a, naive_b);

  const auto planned = ComputeBalancedSplit(matrix, prefixes);
  EXPECT_EQ(planned.side_a.size() + planned.side_b.size(), prefixes.size());
  EXPECT_NEAR(planned.report.ByteFractionA(), 0.5, 0.02);
  // And it is strictly better than the naive split.
  EXPECT_LT(std::abs(planned.report.ByteFractionA() - 0.5),
            std::abs(naive.ByteFractionA() - 0.5));
}

TEST(LoadBalanceTest, ComputedSplitIsDeterministic) {
  const auto prefixes = MakePrefixes(50);
  FlowGenerator gen(prefixes, {}, 9);
  TrafficMatrix matrix(prefixes);
  for (int i = 0; i < 5000; ++i) matrix.AddFlow(gen.Next());
  const auto a = ComputeBalancedSplit(matrix, prefixes);
  const auto b = ComputeBalancedSplit(matrix, prefixes);
  EXPECT_EQ(a.side_a, b.side_a);
  EXPECT_EQ(a.side_b, b.side_b);
}

TEST(LoadBalanceTest, EmptyReport) {
  TrafficMatrix matrix({*Prefix::Parse("10.0.0.0/8")});
  const LoadBalanceReport report = EvaluateSplit(matrix, {}, {});
  EXPECT_EQ(report.PrefixFractionA(), 0.0);
  EXPECT_EQ(report.ByteFractionA(), 0.0);
}

}  // namespace
}  // namespace ranomaly::traffic
