#include "obs/http_server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/live.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/provenance.h"

namespace ranomaly::obs {
namespace {

// Sends raw bytes at the server (HttpGet only speaks well-formed HTTP)
// and returns everything read until the peer closes.
std::string RawRequest(std::uint16_t port, const std::string& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

class HttpServerTest : public ::testing::Test {
 protected:
  void StartEcho() {
    server_ = std::make_unique<HttpServer>([](const HttpRequest& request) {
      HttpResponse response;
      response.body = "path=" + request.path;
      if (const auto q = request.QueryParam("q")) response.body += " q=" + *q;
      if (request.path == "/boom") throw std::runtime_error("handler bug");
      if (request.path == "/missing") response.status = 404;
      return response;
    });
    std::string error;
    ASSERT_TRUE(server_->Start(0, &error)) << error;
    ASSERT_NE(server_->port(), 0);
  }

  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpServerTest, ServesGetAndHead) {
  StartEcho();
  const auto got = HttpGet(server_->port(), "/hello");
  ASSERT_TRUE(got.has_value());
  EXPECT_NE(got->find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(got->find("path=/hello"), std::string::npos);

  const std::string head = RawRequest(
      server_->port(), "HEAD /hello HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(head.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(head.find("Content-Length:"), std::string::npos);
  // HEAD carries headers only.
  EXPECT_EQ(head.find("path=/hello"), std::string::npos);
  EXPECT_EQ(server_->requests_total(), 2u);
  EXPECT_EQ(server_->rejected_total(), 0u);
}

// HEAD must advertise the exact byte count of the body it suppresses —
// the same Content-Length the matching GET sends — and then send no
// body at all (RFC 9110 §9.3.2).  A dashboard poller that trusts HEAD
// to size a buffer would otherwise truncate or over-read.
TEST_F(HttpServerTest, HeadContentLengthMatchesSuppressedBodyExactly) {
  StartEcho();
  const std::string body = "path=/sized";  // what the echo handler returns
  const std::string head = RawRequest(
      server_->port(), "HEAD /sized HTTP/1.1\r\nHost: x\r\n\r\n");
  const std::string want =
      "Content-Length: " + std::to_string(body.size()) + "\r\n";
  EXPECT_NE(head.find(want), std::string::npos) << head;
  // Headers end the message: nothing after the blank line.
  const auto end = head.find("\r\n\r\n");
  ASSERT_NE(end, std::string::npos);
  EXPECT_EQ(head.size(), end + 4) << "HEAD response carried a body";

  // The matching GET sends the same Content-Length, followed by exactly
  // that many body bytes.
  const std::string get = RawRequest(
      server_->port(), "GET /sized HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(get.find(want), std::string::npos) << get;
  EXPECT_EQ(get.substr(get.find("\r\n\r\n") + 4), body);
}

// Every endpoint reports live state, so every response — success,
// client error, server error, even HEAD — must forbid caching.
TEST_F(HttpServerTest, EveryResponseIsMarkedNoStore) {
  StartEcho();
  for (const char* request :
       {"GET /hello HTTP/1.1\r\nHost: x\r\n\r\n",      // 200
        "HEAD /hello HTTP/1.1\r\nHost: x\r\n\r\n",     // 200 HEAD
        "GET /missing HTTP/1.1\r\nHost: x\r\n\r\n",    // 404
        "GET /boom HTTP/1.1\r\nHost: x\r\n\r\n",       // 500
        "POST / HTTP/1.1\r\nHost: x\r\n\r\n",          // 405
        "completely wrong\r\n\r\n"}) {                 // 400
    const std::string got = RawRequest(server_->port(), request);
    EXPECT_NE(got.find("Cache-Control: no-store\r\n"), std::string::npos)
        << request;
  }
}

TEST_F(HttpServerTest, DecodesQueryParameters) {
  StartEcho();
  const auto got = HttpGet(server_->port(), "/echo?q=a%20b&x=1");
  ASSERT_TRUE(got.has_value());
  EXPECT_NE(got->find("q=a b"), std::string::npos);
}

TEST_F(HttpServerTest, HandlerStatusPassesThrough) {
  StartEcho();
  const auto got = HttpGet(server_->port(), "/missing");
  ASSERT_TRUE(got.has_value());
  EXPECT_NE(got->find("404"), std::string::npos);
}

TEST_F(HttpServerTest, HandlerExceptionIs500) {
  StartEcho();
  const auto got = HttpGet(server_->port(), "/boom");
  ASSERT_TRUE(got.has_value());
  EXPECT_NE(got->find("500 Internal Server Error"), std::string::npos);
}

TEST_F(HttpServerTest, MalformedRequestLinesAreRejected) {
  StartEcho();
  // No version, garbage, relative target, bad token: all 400.
  for (const char* bad :
       {"GET /\r\n\r\n", "completely wrong\r\n\r\n",
        "GET relative HTTP/1.1\r\n\r\n", "G@T / HTTP/1.1\r\n\r\n"}) {
    const std::string got = RawRequest(server_->port(), bad);
    EXPECT_NE(got.find("400 Bad Request"), std::string::npos) << bad;
  }
  EXPECT_EQ(server_->requests_total(), 0u);
  EXPECT_GE(server_->rejected_total(), 4u);
}

TEST_F(HttpServerTest, UnsupportedMethodIs405WithAllow) {
  StartEcho();
  const std::string got =
      RawRequest(server_->port(), "POST / HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(got.find("405 Method Not Allowed"), std::string::npos);
  EXPECT_NE(got.find("Allow: GET, HEAD"), std::string::npos);
}

TEST_F(HttpServerTest, UnsupportedVersionIs505) {
  StartEcho();
  const std::string got = RawRequest(server_->port(), "GET / HTTP/2.0\r\n\r\n");
  EXPECT_NE(got.find("505"), std::string::npos);
}

TEST_F(HttpServerTest, OversizedRequestLineIs414) {
  StartEcho();
  const std::string got = RawRequest(
      server_->port(),
      "GET /" + std::string(8192, 'a') + " HTTP/1.1\r\n\r\n");
  EXPECT_NE(got.find("414"), std::string::npos);
}

TEST_F(HttpServerTest, OversizedHeaderBlockIs431) {
  StartEcho();
  std::string request = "GET / HTTP/1.1\r\n";
  request += "X-Big: " + std::string(32768, 'b') + "\r\n\r\n";
  const std::string got = RawRequest(server_->port(), request);
  EXPECT_NE(got.find("431"), std::string::npos);
}

TEST_F(HttpServerTest, TooManyHeadersIs431) {
  StartEcho();
  std::string request = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 200; ++i) {
    request += "X-H" + std::to_string(i) + ": v\r\n";
  }
  request += "\r\n";
  const std::string got = RawRequest(server_->port(), request);
  EXPECT_NE(got.find("431"), std::string::npos);
}

TEST_F(HttpServerTest, MalformedHeaderLineIs400) {
  StartEcho();
  const std::string got = RawRequest(
      server_->port(), "GET / HTTP/1.1\r\nno colon here\r\n\r\n");
  EXPECT_NE(got.find("400 Bad Request"), std::string::npos);
}

// End-to-end regression for the /incidents cursor: strtoull-style
// parsing silently accepted signs, leading whitespace, and trailing
// garbage ("-1" wrapped to 2^64-1 and hid every incident) and saturated
// on overflow.  Every malformed cursor must be a loud 400 over real
// HTTP; only pure digit strings in range pass.
TEST(OpsServerTest, IncidentsSinceRejectsMalformedCursorsOverHttp) {
  obs::HealthRegistry health;
  core::IncidentLog log;
  HttpServer server(core::MakeOpsHandler(
      &obs::MetricsRegistry::Global(), &health, &log,
      core::OpsInfo{"capture.events", 2, 30.0, 10.0, 300.0}));
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;

  for (const char* bad :
       {"since=%2B1",                     // "+1": explicit sign
        "since=-1",                       // wraps to a huge cursor
        "since=%201",                     // " 1": leading whitespace
        "since=1x",                       // trailing garbage
        "since=0x10",                     // hex is not a cursor
        "since=18446744073709551616"}) {  // 2^64: overflow
    const auto got =
        HttpGet(server.port(), std::string("/incidents?") + bad);
    ASSERT_TRUE(got.has_value()) << bad;
    EXPECT_NE(got->find("400 Bad Request"), std::string::npos) << bad;
  }
  for (const char* good :
       {"", "?since=0", "?since=7", "?since=18446744073709551615"}) {
    const auto got =
        HttpGet(server.port(), std::string("/incidents") + good);
    ASSERT_TRUE(got.has_value()) << good;
    EXPECT_NE(got->find("200 OK"), std::string::npos) << good;
  }
}

// Same contract for the dashboard timeline cursor and the evidence
// drill-down id, over real HTTP: malformed input is a loud 400,
// unknown-but-well-formed ids are 404, and pagination works end to end.
TEST(OpsServerTest, TimelineAndEvidenceGuardsHoldOverHttp) {
  obs::HealthRegistry health;
  core::IncidentLog log;
  obs::ProvenanceLedger ledger;
  {
    core::Incident inc;
    inc.stem_key = {1, 2};
    inc.stem_label = "AS1 - AS2";
    inc.summary = "test incident";
    log.Append(inc);
    log.Append(inc);
    obs::IncidentProvenance prov;
    prov.seq = 1;
    prov.stem_first = 1;
    prov.stem_second = 2;
    ledger.Attach(prov);
    prov = {};
    prov.seq = 2;
    prov.stem_first = 1;
    prov.stem_second = 2;
    ledger.Attach(std::move(prov));
  }
  HttpServer server(core::MakeOpsHandler(
      &obs::MetricsRegistry::Global(), &health, &log,
      core::OpsInfo{"capture.events", 2, 30.0, 10.0, 300.0}, nullptr, false,
      &ledger));
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;

  for (const char* bad :
       {"since=%2B1", "since=-1", "since=%201", "since=1x", "since=0x10",
        "since=18446744073709551616"}) {
    const auto got = HttpGet(server.port(),
                             std::string("/api/incidents/timeline?") + bad);
    ASSERT_TRUE(got.has_value()) << bad;
    EXPECT_NE(got->find("400 Bad Request"), std::string::npos) << bad;
  }
  const auto page =
      HttpGet(server.port(), "/api/incidents/timeline?since=1");
  ASSERT_TRUE(page.has_value());
  EXPECT_NE(page->find("200 OK"), std::string::npos);
  EXPECT_EQ(page->find("\"seq\":1,"), std::string::npos);
  EXPECT_NE(page->find("\"seq\":2,"), std::string::npos);
  EXPECT_NE(page->find("\"next_since\":2"), std::string::npos);

  const auto evidence = HttpGet(server.port(), "/api/incidents/2/evidence");
  ASSERT_TRUE(evidence.has_value());
  EXPECT_NE(evidence->find("200 OK"), std::string::npos);
  EXPECT_NE(evidence->find("\"seq\":2"), std::string::npos);
  for (const char* bad :
       {"/api/incidents/-1/evidence", "/api/incidents/2x/evidence",
        "/api/incidents/%202/evidence", "/api/incidents//evidence",
        "/api/incidents/18446744073709551616/evidence"}) {
    const auto got = HttpGet(server.port(), bad);
    ASSERT_TRUE(got.has_value()) << bad;
    // An empty id segment falls through to the catch-all 404; every
    // other malformed id is a 400 from the digits-only parser.
    EXPECT_TRUE(got->find("400 Bad Request") != std::string::npos ||
                (std::string_view(bad) == "/api/incidents//evidence" &&
                 got->find("404 Not Found") != std::string::npos))
        << bad << " -> " << *got;
  }
  const auto unknown = HttpGet(server.port(), "/api/incidents/99/evidence");
  ASSERT_TRUE(unknown.has_value());
  EXPECT_NE(unknown->find("404 Not Found"), std::string::npos);
  EXPECT_NE(unknown->find("evicted"), std::string::npos);
}

TEST_F(HttpServerTest, ConcurrentScrapesAllSucceed) {
  StartEcho();
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 20;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const auto got =
            HttpGet(server_->port(), "/scrape" + std::to_string(t));
        if (got && got->find("200 OK") != std::string::npos) ++ok;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok.load(), kThreads * kRequestsPerThread);
  EXPECT_EQ(server_->requests_total(),
            static_cast<std::uint64_t>(kThreads * kRequestsPerThread));
}

TEST_F(HttpServerTest, StopIsIdempotentAndSafeMidTraffic) {
  StartEcho();
  std::atomic<bool> done{false};
  std::thread hammer([&] {
    while (!done.load()) HttpGet(server_->port(), "/x", 200);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server_->Stop();
  server_->Stop();
  done.store(true);
  hammer.join();
  EXPECT_FALSE(server_->running());
}

TEST(HttpServerStartTest, StartFailsOnBusyPort) {
  HttpServer first([](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(first.Start(0));
  HttpServer second([](const HttpRequest&) { return HttpResponse{}; });
  std::string error;
  EXPECT_FALSE(second.Start(first.port(), &error));
  EXPECT_FALSE(error.empty());
}

TEST(HttpGetTest, FailsCleanlyWhenNothingListens) {
  HttpServer server([](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start(0));
  const std::uint16_t port = server.port();
  server.Stop();
  EXPECT_FALSE(HttpGet(port, "/", 200).has_value());
}

}  // namespace
}  // namespace ranomaly::obs
