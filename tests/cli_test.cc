#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "collector/binary_io.h"
#include "tools/cli.h"
#include "workload/eventgen.h"

namespace ranomaly::tools {
namespace {

namespace fs = std::filesystem;
using util::kMinute;

// A scratch directory per test, removed on teardown.
class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ranomaly_cli_test_" + std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  // Writes a small generated capture (text format) and returns its path.
  std::string WriteCapture() {
    workload::InternetOptions options;
    options.monitored_peers = 3;
    options.prefix_count = 300;
    options.origin_as_count = 60;
    options.seed = 7;
    const workload::SyntheticInternet internet(options);
    workload::EventStreamGenerator gen(internet, 8);
    gen.SessionReset(0, 10 * kMinute, kMinute, 20 * util::kSecond);
    gen.Churn(0, 30 * kMinute, 400);
    const auto stream = gen.Take();
    const std::string path = Path("capture.events");
    std::ofstream out(path);
    stream.SaveText(out);
    return path;
  }

  int Run(std::vector<std::string> args) {
    out_.str("");
    err_.str("");
    return RunCli(args, out_, err_);
  }

  fs::path dir_;
  std::stringstream out_;
  std::stringstream err_;
};

TEST_F(CliTest, NoArgsPrintsUsage) {
  EXPECT_EQ(Run({}), 2);
  EXPECT_NE(err_.str().find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandIsUsageError) {
  EXPECT_EQ(Run({"frobnicate"}), 2);
  EXPECT_NE(err_.str().find("unknown command"), std::string::npos);
}

TEST_F(CliTest, AnalyzeFindsTheReset) {
  const std::string capture = WriteCapture();
  EXPECT_EQ(Run({"analyze", capture}), 0);
  const std::string output = out_.str();
  EXPECT_NE(output.find("incidents:"), std::string::npos);
  EXPECT_NE(output.find("session-reset"), std::string::npos) << output;
}

TEST_F(CliTest, AnalyzeMissingFileFails) {
  EXPECT_EQ(Run({"analyze", Path("nope.events")}), 1);
  EXPECT_NE(err_.str().find("cannot open"), std::string::npos);
}

TEST_F(CliTest, PictureWritesSvgAndDot) {
  const std::string capture = WriteCapture();
  const std::string svg = Path("picture.svg");
  const std::string dot = Path("picture.dot");
  EXPECT_EQ(Run({"picture", capture, "--out", svg, "--dot", dot,
                 "--threshold", "2", "--title", "cli test"}),
            0);
  std::ifstream svg_in(svg);
  std::string svg_text((std::istreambuf_iterator<char>(svg_in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(svg_text.find("<svg"), std::string::npos);
  EXPECT_NE(svg_text.find("cli test"), std::string::npos);
  std::ifstream dot_in(dot);
  std::string dot_text((std::istreambuf_iterator<char>(dot_in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(dot_text.find("digraph tamp"), std::string::npos);
}

TEST_F(CliTest, PictureRequiresOut) {
  const std::string capture = WriteCapture();
  EXPECT_EQ(Run({"picture", capture}), 2);
  EXPECT_NE(err_.str().find("--out"), std::string::npos);
}

TEST_F(CliTest, AnimateWritesFrames) {
  const std::string capture = WriteCapture();
  const std::string frames = Path("frames");
  EXPECT_EQ(Run({"animate", capture, "--out-dir", frames, "--every", "250"}),
            0);
  std::size_t count = 0;
  for (const auto& entry : fs::directory_iterator(frames)) {
    EXPECT_EQ(entry.path().extension(), ".svg");
    ++count;
  }
  EXPECT_EQ(count, 3u);  // frames 0, 250, 500 of 750
}

TEST_F(CliTest, AnimateWritesSmilLoop) {
  const std::string capture = WriteCapture();
  const std::string frames = Path("frames");
  const std::string smil = Path("loop.svg");
  EXPECT_EQ(Run({"animate", capture, "--out-dir", frames, "--every", "750",
                 "--smil", smil}),
            0);
  std::ifstream in(smil);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("<animate attributeName=\"stroke-width\""),
            std::string::npos);
  EXPECT_NE(text.find("repeatCount=\"indefinite\""), std::string::npos);
}

TEST_F(CliTest, ConvertRoundTripsThroughBinary) {
  const std::string capture = WriteCapture();
  const std::string binary = Path("capture.bin");
  const std::string text2 = Path("capture2.events");
  EXPECT_EQ(Run({"convert", capture, binary, "--to", "binary"}), 0);
  EXPECT_EQ(Run({"convert", binary, text2, "--to", "text"}), 0);

  std::ifstream a(capture), b(text2);
  const std::string sa((std::istreambuf_iterator<char>(a)),
                       std::istreambuf_iterator<char>());
  const std::string sb((std::istreambuf_iterator<char>(b)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(sa, sb);  // text -> binary -> text is the identity

  // Binary input is auto-detected by every command.
  EXPECT_EQ(Run({"stats", binary}), 0);
  EXPECT_NE(out_.str().find("peers:     3"), std::string::npos) << out_.str();
}

TEST_F(CliTest, ConvertRejectsBadTarget) {
  const std::string capture = WriteCapture();
  EXPECT_EQ(Run({"convert", capture, Path("x"), "--to", "yaml"}), 2);
}

TEST_F(CliTest, MoasFlagsInjectedHijack) {
  // Build a stream with an established origin and a late foreign origin.
  collector::EventStream stream;
  auto announce = [&](util::SimTime t, bgp::AsNumber origin) {
    bgp::Event e;
    e.time = t;
    e.peer = bgp::Ipv4Addr(10, 0, 0, 1);
    e.type = bgp::EventType::kAnnounce;
    e.prefix = *bgp::Prefix::Parse("192.0.2.0/24");
    e.attrs.nexthop = bgp::Ipv4Addr(10, 1, 0, 1);
    e.attrs.as_path = bgp::AsPath{100, origin};
    stream.Append(e);
  };
  announce(0, 200);
  announce(60 * kMinute, 666);
  const std::string path = Path("hijack.events");
  std::ofstream out(path);
  stream.SaveText(out);
  out.close();

  EXPECT_EQ(Run({"moas", path}), 0);
  EXPECT_NE(out_.str().find("origin conflicts: 1"), std::string::npos);
  EXPECT_NE(out_.str().find("AS666"), std::string::npos);
}

TEST_F(CliTest, StatsCountsPerPeer) {
  const std::string capture = WriteCapture();
  EXPECT_EQ(Run({"stats", capture}), 0);
  const std::string output = out_.str();
  EXPECT_NE(output.find("announces:"), std::string::npos);
  EXPECT_NE(output.find("withdraws:"), std::string::npos);
  EXPECT_NE(output.find("10.0.0.1"), std::string::npos);
}

TEST_F(CliTest, StatsAnalyzeReportsStageBreakdown) {
  const std::string capture = WriteCapture();
  EXPECT_EQ(Run({"stats", capture, "--analyze"}), 0);
  const std::string output = out_.str();
  EXPECT_NE(output.find("analysis stages"), std::string::npos);
  EXPECT_NE(output.find("stemming_events_encoded_total"), std::string::npos);
  EXPECT_NE(output.find("stemming_bigram_entries_total"), std::string::npos);
  EXPECT_NE(output.find("pipeline_analyze_seconds"), std::string::npos);
  // The scaling diagnostics: pool health plus per-stage parallel
  // fractions (the pipeline wires its pool into stemming, so both
  // families accumulate during --analyze).
  EXPECT_NE(output.find("pool_threads"), std::string::npos);
  EXPECT_NE(output.find("stemming_encode_parallel_fraction"),
            std::string::npos);
  // Only the analysis slice of the registry, not the io_* counters the
  // stream load bumped.
  EXPECT_EQ(output.find("io_events_loaded_total"), std::string::npos);
}

TEST_F(CliTest, MetricsDumpsTheRegistry) {
  const std::string capture = WriteCapture();
  EXPECT_EQ(Run({"metrics", capture}), 0);
  const std::string output = out_.str();
  EXPECT_NE(output.find("pipeline_incidents_total"), std::string::npos);
  EXPECT_NE(output.find("stemming_events_encoded_total"), std::string::npos);
  EXPECT_NE(output.find("io_events_loaded_total"), std::string::npos);
}

TEST_F(CliTest, MetricsPromExposition) {
  const std::string capture = WriteCapture();
  EXPECT_EQ(Run({"metrics", capture, "--prom"}), 0);
  const std::string output = out_.str();
  EXPECT_NE(output.find("# TYPE ranomaly_pipeline_analyses_total counter"),
            std::string::npos);
  EXPECT_NE(output.find("# TYPE ranomaly_pipeline_analyze_seconds histogram"),
            std::string::npos);
  EXPECT_NE(output.find("_bucket{le=\"+Inf\"}"), std::string::npos);
  // Every non-comment line is `name{labels} value` or `name value`.
  std::istringstream lines(output);
  for (std::string line; std::getline(lines, line);) {
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.compare(0, 9, "ranomaly_"), 0) << line;
    EXPECT_NO_THROW(std::stod(line.substr(space + 1))) << line;
  }
}

TEST_F(CliTest, TraceWrapsAnalyzeAndWritesChromeJson) {
  const std::string capture = WriteCapture();
  const std::string trace = Path("trace.json");
  const std::string jsonl = Path("trace.jsonl");
  EXPECT_EQ(
      Run({"trace", "--out", trace, "--jsonl", jsonl, "--", "analyze",
           capture}),
      0);
  EXPECT_NE(out_.str().find("incidents:"), std::string::npos);
  EXPECT_NE(out_.str().find("wrote trace to"), std::string::npos);
  std::ifstream in(trace);
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Spans from every instrumented layer made it into the export.
  EXPECT_NE(json.find("cli.load_stream"), std::string::npos);
  EXPECT_NE(json.find("collector.load_text"), std::string::npos);
  EXPECT_NE(json.find("pipeline.analyze"), std::string::npos);
  EXPECT_NE(json.find("pool.parallel_for"), std::string::npos);
  EXPECT_NE(json.find("stemming.encode"), std::string::npos);
  std::ifstream jl(jsonl);
  std::string first_line;
  ASSERT_TRUE(std::getline(jl, first_line));
  EXPECT_EQ(first_line.front(), '{');
  EXPECT_EQ(first_line.back(), '}');
}

TEST_F(CliTest, TraceWithoutOutIsUsageError) {
  EXPECT_EQ(Run({"trace", "analyze", "whatever"}), 2);
  EXPECT_NE(err_.str().find("--out"), std::string::npos);
}

TEST_F(CliTest, StatsShowsMarkersAndFeedGaps) {
  collector::EventStream stream;
  const bgp::Ipv4Addr peer(10, 0, 0, 1);
  auto announce = [&](util::SimTime t) {
    bgp::Event e;
    e.time = t;
    e.peer = peer;
    e.type = bgp::EventType::kAnnounce;
    e.prefix = *bgp::Prefix::Parse("192.0.2.0/24");
    e.attrs.nexthop = bgp::Ipv4Addr(10, 1, 0, 1);
    e.attrs.as_path = bgp::AsPath{100, 200};
    stream.Append(e);
  };
  auto marker = [&](util::SimTime t, bgp::EventType type) {
    bgp::Event e;
    e.time = t;
    e.peer = peer;
    e.type = type;
    stream.Append(e);
  };
  announce(0);
  marker(kMinute, bgp::EventType::kFeedGap);
  marker(2 * kMinute, bgp::EventType::kResync);
  announce(3 * kMinute);
  marker(4 * kMinute, bgp::EventType::kFeedGap);  // never resynced

  const std::string path = Path("gaps.events");
  std::ofstream file(path);
  stream.SaveText(file);
  file.close();

  EXPECT_EQ(Run({"stats", path}), 0);
  const std::string output = out_.str();
  EXPECT_NE(output.find("markers:   3"), std::string::npos) << output;
  EXPECT_NE(output.find("M=3"), std::string::npos) << output;
  EXPECT_NE(output.find("feed gaps: 2"), std::string::npos) << output;
  EXPECT_NE(output.find("(never resynced)"), std::string::npos) << output;
}

TEST_F(CliTest, BinaryParseErrorReportsLocation) {
  // RNE1 magic followed by a count and a truncated record: the CLI should
  // surface the loader's diagnostic (reason + byte offset), not just fail.
  const std::string path = Path("corrupt.bin");
  std::ofstream file(path, std::ios::binary);
  file.write("RNE1", 4);
  const std::uint64_t count = 5;
  file.write(reinterpret_cast<const char*>(&count), sizeof(count));
  file.write("\x01\x02\x03", 3);
  file.close();

  EXPECT_EQ(Run({"stats", path}), 1);
  const std::string error = err_.str();
  EXPECT_NE(error.find("parse error"), std::string::npos) << error;
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  EXPECT_NE(error.find("at byte"), std::string::npos) << error;
}

TEST_F(CliTest, MissingOptionValueIsUsageError) {
  EXPECT_EQ(Run({"picture", "x", "--out"}), 2);
  EXPECT_NE(err_.str().find("missing value"), std::string::npos);
}

// Writes a tiny hand-rolled capture with GAP/SYNC markers for the feed
// health commands.
std::string WriteMarkerCapture(const std::string& path) {
  std::ofstream file(path);
  file << "0 A 10.0.0.1 NEXT_HOP: 10.1.0.1 ASPATH: 100 200 "
          "PREFIX: 192.0.2.0/24\n"
       << "1000000 A 10.0.0.2 NEXT_HOP: 10.1.0.2 ASPATH: 100 300 "
          "PREFIX: 198.51.100.0/24\n"
       << "60000000 GAP 10.0.0.1\n"
       << "120000000 SYNC 10.0.0.1\n"
       << "180000000 GAP 10.0.0.2\n"
       << "200000000 A 10.0.0.1 NEXT_HOP: 10.1.0.1 ASPATH: 100 200 "
          "PREFIX: 192.0.2.0/24\n";
  return path;
}

TEST_F(CliTest, PeersPrintsScoreboard) {
  const std::string capture = WriteMarkerCapture(Path("markers.events"));
  EXPECT_EQ(Run({"peers", capture}), 0);
  const std::string output = out_.str();
  EXPECT_NE(output.find("PEER"), std::string::npos) << output;
  EXPECT_NE(output.find("10.0.0.1"), std::string::npos);
  // 10.0.0.1 resynced; 10.0.0.2's gap never closed.
  EXPECT_NE(output.find("OK"), std::string::npos);
  EXPECT_NE(output.find("DEGRADED"), std::string::npos);
  EXPECT_NE(output.find("2 peers, 1 degraded"), std::string::npos) << output;
}

TEST_F(CliTest, PeersRequiresAStream) {
  EXPECT_EQ(Run({"peers"}), 2);
  EXPECT_EQ(Run({"peers", Path("missing.events")}), 1);
}

TEST_F(CliTest, ServeReplaysAndExits) {
  const std::string capture = WriteCapture();
  EXPECT_EQ(Run({"serve", capture, "--exit-after-replay", "--tick-sec", "30"}),
            0);
  const std::string output = out_.str();
  EXPECT_NE(output.find("serving on 127.0.0.1:"), std::string::npos) << output;
  EXPECT_NE(output.find("replay done:"), std::string::npos) << output;
  // The reset avalanche is in there; live replay must surface incidents.
  EXPECT_EQ(output.find(" 0 incidents"), std::string::npos) << output;
}

TEST_F(CliTest, ServeRejectsBadOptions) {
  const std::string capture = WriteMarkerCapture(Path("markers.events"));
  EXPECT_EQ(Run({"serve", capture, "--tick-sec", "0"}), 2);
  EXPECT_EQ(Run({"serve", capture, "--port", "70000"}), 2);
  EXPECT_EQ(Run({"serve"}), 2);
}

TEST_F(CliTest, TraceFinalizesAtomically) {
  const std::string capture = WriteCapture();
  const std::string trace = Path("trace.json");
  const std::string jsonl = Path("trace.jsonl");
  EXPECT_EQ(Run({"trace", "--out", trace, "--jsonl", jsonl, "--", "stats",
                 capture}),
            0);
  // The exports were renamed into place; no temp files linger.
  EXPECT_TRUE(fs::exists(trace));
  EXPECT_TRUE(fs::exists(jsonl));
  EXPECT_FALSE(fs::exists(trace + ".tmp"));
  EXPECT_FALSE(fs::exists(jsonl + ".tmp"));
}

}  // namespace
}  // namespace ranomaly::tools
