#include <gtest/gtest.h>

#include <algorithm>

#include "stemming/stemming.h"

namespace ranomaly::stemming {
namespace {

using bgp::AsPath;
using bgp::Event;
using bgp::EventType;
using bgp::Ipv4Addr;
using bgp::Prefix;

Event MakeEvent(const char* peer, const char* nexthop, AsPath path,
                const char* prefix,
                EventType type = EventType::kWithdraw,
                util::SimTime t = 0) {
  Event e;
  e.time = t;
  e.peer = *Ipv4Addr::Parse(peer);
  e.type = type;
  e.prefix = *Prefix::Parse(prefix);
  e.attrs.nexthop = *Ipv4Addr::Parse(nexthop);
  e.attrs.as_path = std::move(path);
  return e;
}

// The paper's Figure 4: ten route withdrawals during an event spike at
// Berkeley.  Eight of the ten share 11423-209; the stem must be exactly
// that pair.
std::vector<Event> Figure4Events() {
  return {
      MakeEvent("128.32.1.3", "128.32.0.70", {11423, 209, 701, 1299, 5713},
                "192.96.10.0/24"),
      MakeEvent("128.32.1.3", "128.32.0.66", {11423, 11422, 209, 4519},
                "207.191.23.0/24"),
      MakeEvent("128.32.1.200", "128.32.0.90", {11423, 209, 701, 1299, 5713},
                "192.96.10.0/24"),
      MakeEvent("128.32.1.200", "128.32.0.90", {11423, 209, 1239, 3228, 21408},
                "212.22.132.0/23"),
      MakeEvent("128.32.1.3", "128.32.0.66", {11423, 209, 701, 705},
                "203.14.156.0/24"),
      MakeEvent("128.32.1.3", "128.32.0.66", {11423, 11422, 209, 1239, 3602},
                "209.5.188.0/24"),
      MakeEvent("128.32.1.3", "128.32.0.66", {11423, 209, 7018, 13606},
                "12.2.41.0/24"),
      MakeEvent("128.32.1.3", "128.32.0.66", {11423, 209, 7018, 13606},
                "12.96.77.0/24"),
      MakeEvent("128.32.1.3", "128.32.0.66", {11423, 209, 1239, 5400, 15410},
                "62.80.64.0/20"),
      MakeEvent("128.32.1.200", "128.32.0.90", {11423, 209, 1239, 5400, 15410},
                "62.80.64.0/20"),
  };
}

TEST(StemmingTest, Figure4ExampleFindsStem11423_209) {
  const auto events = Figure4Events();
  const StemmingResult result = Stem(events);
  ASSERT_FALSE(result.components.empty());
  const Component& top = result.components[0];

  // The stem is the 11423-209 AS edge, with count 8.
  EXPECT_EQ(result.symbols.KindOf(top.stem.first), SymbolKind::kAs);
  EXPECT_EQ(result.symbols.AsOf(top.stem.first), 11423u);
  EXPECT_EQ(result.symbols.AsOf(top.stem.second), 209u);
  EXPECT_DOUBLE_EQ(top.count, 8.0);
  EXPECT_EQ(result.StemLabel(top), "AS11423 - AS209");

  // P: the prefixes on sequences containing 11423-209 (6 unique: two
  // prefixes appear from two peers).
  EXPECT_EQ(top.prefixes.size(), 6u);
  // E: all events whose prefix is in P — here 8 events.
  EXPECT_EQ(top.event_indices.size(), 8u);
}

TEST(StemmingTest, Figure4SecondComponentIsCalren2) {
  // After removing the 11423-209 component, the two 11423-11422 events
  // remain and form the next component.
  const auto events = Figure4Events();
  const StemmingResult result = Stem(events);
  ASSERT_GE(result.components.size(), 2u);
  const Component& second = result.components[1];
  // The two CalREN-2 events share peer-nexthop-11423-11422-209; the stem
  // is the last adjacent pair, 11422-209.
  EXPECT_EQ(result.symbols.AsOf(second.stem.first), 11422u);
  EXPECT_EQ(result.symbols.AsOf(second.stem.second), 209u);
  EXPECT_EQ(second.event_indices.size(), 2u);
  EXPECT_EQ(result.residual_events, 0u);
}

TEST(StemmingTest, ExtendsToLongestSharedSequence) {
  // All events share the full path 1-2-3: s' should extend through it and
  // the stem is the last adjacent pair before the (distinct) prefixes.
  std::vector<Event> events;
  for (int i = 0; i < 5; ++i) {
    events.push_back(MakeEvent("10.0.0.1", "10.1.0.1", {1, 2, 3},
                               ("10." + std::to_string(i) + ".0.0/16").c_str()));
  }
  const StemmingResult result = Stem(events);
  ASSERT_FALSE(result.components.empty());
  const Component& top = result.components[0];
  // s' = peer nexthop 1 2 3 (count 5 each; prefixes differ so the prefix
  // element cannot extend it).
  ASSERT_EQ(top.top_sequence.size(), 5u);
  EXPECT_EQ(result.symbols.KindOf(top.top_sequence[0]), SymbolKind::kPeer);
  EXPECT_EQ(result.symbols.AsOf(top.stem.first), 2u);
  EXPECT_EQ(result.symbols.AsOf(top.stem.second), 3u);
  EXPECT_DOUBLE_EQ(top.count, 5.0);
}

TEST(StemmingTest, SinglePrefixOscillationDominatesLongWindow) {
  // Section III-B: a persistent single-prefix oscillation overwhelms
  // other correlations over a long window even without a rate spike.
  std::vector<Event> events;
  util::SimTime t = 0;
  // Background: 50 distinct one-off changes.
  for (int i = 0; i < 50; ++i) {
    events.push_back(MakeEvent("10.0.0.1", "10.1.0.1",
                               {static_cast<bgp::AsNumber>(100 + i)},
                               ("20." + std::to_string(i) + ".0.0/16").c_str(),
                               EventType::kAnnounce, t));
    t += util::kMinute;
  }
  // The oscillator: one prefix flapping 200 times.
  for (int i = 0; i < 200; ++i) {
    events.push_back(MakeEvent("10.0.0.2", "10.1.0.2", {7, 8}, "4.5.0.0/16",
                               i % 2 == 0 ? EventType::kWithdraw
                                          : EventType::kAnnounce,
                               t));
    t += util::kSecond;
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.time < b.time; });

  const StemmingResult result = Stem(events);
  ASSERT_FALSE(result.components.empty());
  const Component& top = result.components[0];
  ASSERT_EQ(top.prefixes.size(), 1u);
  EXPECT_EQ(top.prefixes[0], *Prefix::Parse("4.5.0.0/16"));
  EXPECT_EQ(top.event_indices.size(), 200u);
  // The oscillator's events are ~80% of the stream — the "95% of IBGP
  // traffic from one prefix" effect of Section IV-F.
  EXPECT_GT(static_cast<double>(top.event_indices.size()) /
                static_cast<double>(events.size()),
            0.75);
}

TEST(StemmingTest, TemporalIndependenceIgnoresOrder) {
  // Shuffling event order must not change the components (correlation is
  // time-scale free).
  auto events = Figure4Events();
  const StemmingResult before = Stem(events);
  std::rotate(events.begin(), events.begin() + 5, events.end());
  const StemmingResult after = Stem(events);
  ASSERT_EQ(before.components.size(), after.components.size());
  EXPECT_EQ(before.components[0].count, after.components[0].count);
  EXPECT_EQ(before.StemLabel(before.components[0]),
            after.StemLabel(after.components[0]));
}

TEST(StemmingTest, ComponentRemovalIsExhaustive) {
  const auto events = Figure4Events();
  const StemmingResult result = Stem(events);
  std::size_t claimed = result.residual_events;
  std::vector<bool> seen(events.size(), false);
  for (const auto& c : result.components) {
    claimed += c.event_indices.size();
    for (const std::size_t idx : c.event_indices) {
      EXPECT_FALSE(seen[idx]) << "event claimed twice";
      seen[idx] = true;
    }
  }
  EXPECT_EQ(claimed, events.size());
}

TEST(StemmingTest, MaxComponentsRespected) {
  std::vector<Event> events;
  // 10 independent 3-event groups.
  for (int g = 0; g < 10; ++g) {
    const std::string peer = "10.0." + std::to_string(g) + ".1";
    const std::string nexthop = "10.1." + std::to_string(g) + ".1";
    for (int i = 0; i < 3; ++i) {
      events.push_back(MakeEvent(
          peer.c_str(), nexthop.c_str(),
          {static_cast<bgp::AsNumber>(10 + g), static_cast<bgp::AsNumber>(100 + g)},
          ("30." + std::to_string(g) + "." + std::to_string(i) + ".0/24").c_str()));
    }
  }
  StemmingOptions options;
  options.max_components = 3;
  const StemmingResult result = Stem(events, options);
  EXPECT_EQ(result.components.size(), 3u);
  EXPECT_EQ(result.residual_events, 21u);
}

TEST(StemmingTest, MinCountStopsNoise) {
  std::vector<Event> events;
  events.push_back(MakeEvent("10.0.0.1", "10.1.0.1", {1, 2}, "10.0.0.0/16"));
  events.push_back(MakeEvent("10.0.0.1", "10.1.0.1", {3, 4}, "11.0.0.0/16"));
  StemmingOptions options;
  options.min_count = 3.0;  // nothing repeats 3 times
  const StemmingResult result = Stem(events, options);
  EXPECT_TRUE(result.components.empty());
  EXPECT_EQ(result.residual_events, 2u);
}

TEST(StemmingTest, WeightedStemmingPromotesElephants) {
  // Section III-D.2: two groups, the smaller one carrying elephant
  // traffic must win under traffic weighting.
  std::vector<Event> events;
  for (int i = 0; i < 10; ++i) {
    events.push_back(MakeEvent("10.0.0.1", "10.1.0.1", {1, 2},
                               ("40.0." + std::to_string(i) + ".0/24").c_str()));
  }
  for (int i = 0; i < 4; ++i) {
    events.push_back(MakeEvent("10.0.0.2", "10.1.0.2", {3, 4},
                               ("50.0." + std::to_string(i) + ".0/24").c_str()));
  }

  const StemmingResult unweighted = Stem(events);
  ASSERT_FALSE(unweighted.components.empty());
  EXPECT_EQ(unweighted.symbols.AsOf(unweighted.components[0].stem.first), 1u);

  StemmingOptions weighted;
  weighted.weight_fn = [](const Prefix& p) {
    return p.addr().value() >> 24 == 50 ? 100.0 : 1.0;  // 50.x are elephants
  };
  const StemmingResult result = Stem(events, weighted);
  ASSERT_FALSE(result.components.empty());
  EXPECT_EQ(result.symbols.AsOf(result.components[0].stem.first), 3u);
  EXPECT_DOUBLE_EQ(result.components[0].count, 400.0);
}

TEST(StemmingTest, EmptyStream) {
  const StemmingResult result = Stem({});
  EXPECT_TRUE(result.components.empty());
  EXPECT_EQ(result.total_events, 0u);
}

TEST(StemmingTest, PrependsCollapseInSequences) {
  // AS-path prepending must not manufacture a bogus "7-7" stem.
  std::vector<Event> events;
  for (int i = 0; i < 5; ++i) {
    events.push_back(MakeEvent("10.0.0.1", "10.1.0.1", {7, 7, 7, 9},
                               ("60.0." + std::to_string(i) + ".0/24").c_str()));
  }
  const StemmingResult result = Stem(events);
  ASSERT_FALSE(result.components.empty());
  const auto& seq = result.components[0].top_sequence;
  for (std::size_t i = 1; i < seq.size(); ++i) {
    EXPECT_NE(seq[i], seq[i - 1]);
  }
}

TEST(SymbolTableTest, RoundTripsAllKinds) {
  SymbolTable table;
  const auto peer = table.InternPeer(Ipv4Addr(1, 2, 3, 4));
  const auto nh = table.InternNexthop(Ipv4Addr(1, 2, 3, 4));
  const auto as = table.InternAs(11423);
  const auto pfx = table.InternPrefix(*Prefix::Parse("4.5.0.0/16"));
  EXPECT_NE(peer, nh);  // same address, different kinds
  EXPECT_EQ(table.KindOf(peer), SymbolKind::kPeer);
  EXPECT_EQ(table.AddrOf(nh), Ipv4Addr(1, 2, 3, 4));
  EXPECT_EQ(table.AsOf(as), 11423u);
  EXPECT_EQ(table.PrefixOf(pfx), *Prefix::Parse("4.5.0.0/16"));
  EXPECT_EQ(table.Name(peer), "peer 1.2.3.4");
  EXPECT_EQ(table.Name(as), "AS11423");
  EXPECT_EQ(table.Name(pfx), "4.5.0.0/16");
  EXPECT_THROW(table.AsOf(peer), std::logic_error);
  EXPECT_THROW(table.PrefixOf(as), std::logic_error);
}

}  // namespace
}  // namespace ranomaly::stemming
