#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "stemming/stemming.h"
#include "util/thread_pool.h"
#include "workload/eventgen.h"

namespace ranomaly::stemming {
namespace {

using bgp::AsPath;
using bgp::Event;
using bgp::EventType;
using bgp::Ipv4Addr;
using bgp::Prefix;

Event MakeEvent(const char* peer, const char* nexthop, AsPath path,
                const char* prefix,
                EventType type = EventType::kWithdraw,
                util::SimTime t = 0) {
  Event e;
  e.time = t;
  e.peer = *Ipv4Addr::Parse(peer);
  e.type = type;
  e.prefix = *Prefix::Parse(prefix);
  e.attrs.nexthop = *Ipv4Addr::Parse(nexthop);
  e.attrs.as_path = std::move(path);
  return e;
}

// The paper's Figure 4: ten route withdrawals during an event spike at
// Berkeley.  Eight of the ten share 11423-209; the stem must be exactly
// that pair.
std::vector<Event> Figure4Events() {
  return {
      MakeEvent("128.32.1.3", "128.32.0.70", {11423, 209, 701, 1299, 5713},
                "192.96.10.0/24"),
      MakeEvent("128.32.1.3", "128.32.0.66", {11423, 11422, 209, 4519},
                "207.191.23.0/24"),
      MakeEvent("128.32.1.200", "128.32.0.90", {11423, 209, 701, 1299, 5713},
                "192.96.10.0/24"),
      MakeEvent("128.32.1.200", "128.32.0.90", {11423, 209, 1239, 3228, 21408},
                "212.22.132.0/23"),
      MakeEvent("128.32.1.3", "128.32.0.66", {11423, 209, 701, 705},
                "203.14.156.0/24"),
      MakeEvent("128.32.1.3", "128.32.0.66", {11423, 11422, 209, 1239, 3602},
                "209.5.188.0/24"),
      MakeEvent("128.32.1.3", "128.32.0.66", {11423, 209, 7018, 13606},
                "12.2.41.0/24"),
      MakeEvent("128.32.1.3", "128.32.0.66", {11423, 209, 7018, 13606},
                "12.96.77.0/24"),
      MakeEvent("128.32.1.3", "128.32.0.66", {11423, 209, 1239, 5400, 15410},
                "62.80.64.0/20"),
      MakeEvent("128.32.1.200", "128.32.0.90", {11423, 209, 1239, 5400, 15410},
                "62.80.64.0/20"),
  };
}

TEST(StemmingTest, Figure4ExampleFindsStem11423_209) {
  const auto events = Figure4Events();
  const StemmingResult result = Stem(events);
  ASSERT_FALSE(result.components.empty());
  const Component& top = result.components[0];

  // The stem is the 11423-209 AS edge, with count 8.
  EXPECT_EQ(result.symbols.KindOf(top.stem.first), SymbolKind::kAs);
  EXPECT_EQ(result.symbols.AsOf(top.stem.first), 11423u);
  EXPECT_EQ(result.symbols.AsOf(top.stem.second), 209u);
  EXPECT_DOUBLE_EQ(top.count, 8.0);
  EXPECT_EQ(result.StemLabel(top), "AS11423 - AS209");

  // P: the prefixes on sequences containing 11423-209 (6 unique: two
  // prefixes appear from two peers).
  EXPECT_EQ(top.prefixes.size(), 6u);
  // E: all events whose prefix is in P — here 8 events.
  EXPECT_EQ(top.event_indices.size(), 8u);
}

TEST(StemmingTest, Figure4SecondComponentIsCalren2) {
  // After removing the 11423-209 component, the two 11423-11422 events
  // remain and form the next component.
  const auto events = Figure4Events();
  const StemmingResult result = Stem(events);
  ASSERT_GE(result.components.size(), 2u);
  const Component& second = result.components[1];
  // The two CalREN-2 events share peer-nexthop-11423-11422-209; the stem
  // is the last adjacent pair, 11422-209.
  EXPECT_EQ(result.symbols.AsOf(second.stem.first), 11422u);
  EXPECT_EQ(result.symbols.AsOf(second.stem.second), 209u);
  EXPECT_EQ(second.event_indices.size(), 2u);
  EXPECT_EQ(result.residual_events, 0u);
}

TEST(StemmingTest, ExtendsToLongestSharedSequence) {
  // All events share the full path 1-2-3: s' should extend through it and
  // the stem is the last adjacent pair before the (distinct) prefixes.
  std::vector<Event> events;
  for (int i = 0; i < 5; ++i) {
    events.push_back(MakeEvent("10.0.0.1", "10.1.0.1", {1, 2, 3},
                               ("10." + std::to_string(i) + ".0.0/16").c_str()));
  }
  const StemmingResult result = Stem(events);
  ASSERT_FALSE(result.components.empty());
  const Component& top = result.components[0];
  // s' = peer nexthop 1 2 3 (count 5 each; prefixes differ so the prefix
  // element cannot extend it).
  ASSERT_EQ(top.top_sequence.size(), 5u);
  EXPECT_EQ(result.symbols.KindOf(top.top_sequence[0]), SymbolKind::kPeer);
  EXPECT_EQ(result.symbols.AsOf(top.stem.first), 2u);
  EXPECT_EQ(result.symbols.AsOf(top.stem.second), 3u);
  EXPECT_DOUBLE_EQ(top.count, 5.0);
}

TEST(StemmingTest, SinglePrefixOscillationDominatesLongWindow) {
  // Section III-B: a persistent single-prefix oscillation overwhelms
  // other correlations over a long window even without a rate spike.
  std::vector<Event> events;
  util::SimTime t = 0;
  // Background: 50 distinct one-off changes.
  for (int i = 0; i < 50; ++i) {
    events.push_back(MakeEvent("10.0.0.1", "10.1.0.1",
                               {static_cast<bgp::AsNumber>(100 + i)},
                               ("20." + std::to_string(i) + ".0.0/16").c_str(),
                               EventType::kAnnounce, t));
    t += util::kMinute;
  }
  // The oscillator: one prefix flapping 200 times.
  for (int i = 0; i < 200; ++i) {
    events.push_back(MakeEvent("10.0.0.2", "10.1.0.2", {7, 8}, "4.5.0.0/16",
                               i % 2 == 0 ? EventType::kWithdraw
                                          : EventType::kAnnounce,
                               t));
    t += util::kSecond;
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.time < b.time; });

  const StemmingResult result = Stem(events);
  ASSERT_FALSE(result.components.empty());
  const Component& top = result.components[0];
  ASSERT_EQ(top.prefixes.size(), 1u);
  EXPECT_EQ(top.prefixes[0], *Prefix::Parse("4.5.0.0/16"));
  EXPECT_EQ(top.event_indices.size(), 200u);
  // The oscillator's events are ~80% of the stream — the "95% of IBGP
  // traffic from one prefix" effect of Section IV-F.
  EXPECT_GT(static_cast<double>(top.event_indices.size()) /
                static_cast<double>(events.size()),
            0.75);
}

TEST(StemmingTest, TemporalIndependenceIgnoresOrder) {
  // Shuffling event order must not change the components (correlation is
  // time-scale free).
  auto events = Figure4Events();
  const StemmingResult before = Stem(events);
  std::rotate(events.begin(), events.begin() + 5, events.end());
  const StemmingResult after = Stem(events);
  ASSERT_EQ(before.components.size(), after.components.size());
  EXPECT_EQ(before.components[0].count, after.components[0].count);
  EXPECT_EQ(before.StemLabel(before.components[0]),
            after.StemLabel(after.components[0]));
}

TEST(StemmingTest, ComponentRemovalIsExhaustive) {
  const auto events = Figure4Events();
  const StemmingResult result = Stem(events);
  std::size_t claimed = result.residual_events;
  std::vector<bool> seen(events.size(), false);
  for (const auto& c : result.components) {
    claimed += c.event_indices.size();
    for (const std::size_t idx : c.event_indices) {
      EXPECT_FALSE(seen[idx]) << "event claimed twice";
      seen[idx] = true;
    }
  }
  EXPECT_EQ(claimed, events.size());
}

TEST(StemmingTest, MaxComponentsRespected) {
  std::vector<Event> events;
  // 10 independent 3-event groups.
  for (int g = 0; g < 10; ++g) {
    const std::string peer = "10.0." + std::to_string(g) + ".1";
    const std::string nexthop = "10.1." + std::to_string(g) + ".1";
    for (int i = 0; i < 3; ++i) {
      events.push_back(MakeEvent(
          peer.c_str(), nexthop.c_str(),
          {static_cast<bgp::AsNumber>(10 + g), static_cast<bgp::AsNumber>(100 + g)},
          ("30." + std::to_string(g) + "." + std::to_string(i) + ".0/24").c_str()));
    }
  }
  StemmingOptions options;
  options.max_components = 3;
  const StemmingResult result = Stem(events, options);
  EXPECT_EQ(result.components.size(), 3u);
  EXPECT_EQ(result.residual_events, 21u);
}

TEST(StemmingTest, MinCountStopsNoise) {
  std::vector<Event> events;
  events.push_back(MakeEvent("10.0.0.1", "10.1.0.1", {1, 2}, "10.0.0.0/16"));
  events.push_back(MakeEvent("10.0.0.1", "10.1.0.1", {3, 4}, "11.0.0.0/16"));
  StemmingOptions options;
  options.min_count = 3.0;  // nothing repeats 3 times
  const StemmingResult result = Stem(events, options);
  EXPECT_TRUE(result.components.empty());
  EXPECT_EQ(result.residual_events, 2u);
}

TEST(StemmingTest, WeightedStemmingPromotesElephants) {
  // Section III-D.2: two groups, the smaller one carrying elephant
  // traffic must win under traffic weighting.
  std::vector<Event> events;
  for (int i = 0; i < 10; ++i) {
    events.push_back(MakeEvent("10.0.0.1", "10.1.0.1", {1, 2},
                               ("40.0." + std::to_string(i) + ".0/24").c_str()));
  }
  for (int i = 0; i < 4; ++i) {
    events.push_back(MakeEvent("10.0.0.2", "10.1.0.2", {3, 4},
                               ("50.0." + std::to_string(i) + ".0/24").c_str()));
  }

  const StemmingResult unweighted = Stem(events);
  ASSERT_FALSE(unweighted.components.empty());
  EXPECT_EQ(unweighted.symbols.AsOf(unweighted.components[0].stem.first), 1u);

  StemmingOptions weighted;
  weighted.weight_fn = [](const Prefix& p) {
    return p.addr().value() >> 24 == 50 ? 100.0 : 1.0;  // 50.x are elephants
  };
  const StemmingResult result = Stem(events, weighted);
  ASSERT_FALSE(result.components.empty());
  EXPECT_EQ(result.symbols.AsOf(result.components[0].stem.first), 3u);
  EXPECT_DOUBLE_EQ(result.components[0].count, 400.0);
}

TEST(StemmingTest, EmptyStream) {
  const StemmingResult result = Stem({});
  EXPECT_TRUE(result.components.empty());
  EXPECT_EQ(result.total_events, 0u);
}

TEST(StemmingTest, PrependsCollapseInSequences) {
  // AS-path prepending must not manufacture a bogus "7-7" stem.
  std::vector<Event> events;
  for (int i = 0; i < 5; ++i) {
    events.push_back(MakeEvent("10.0.0.1", "10.1.0.1", {7, 7, 7, 9},
                               ("60.0." + std::to_string(i) + ".0/24").c_str()));
  }
  const StemmingResult result = Stem(events);
  ASSERT_FALSE(result.components.empty());
  const auto& seq = result.components[0].top_sequence;
  for (std::size_t i = 1; i < seq.size(); ++i) {
    EXPECT_NE(seq[i], seq[i - 1]);
  }
}

TEST(SymbolTableTest, RoundTripsAllKinds) {
  SymbolTable table;
  const auto peer = table.InternPeer(Ipv4Addr(1, 2, 3, 4));
  const auto nh = table.InternNexthop(Ipv4Addr(1, 2, 3, 4));
  const auto as = table.InternAs(11423);
  const auto pfx = table.InternPrefix(*Prefix::Parse("4.5.0.0/16"));
  EXPECT_NE(peer, nh);  // same address, different kinds
  EXPECT_EQ(table.KindOf(peer), SymbolKind::kPeer);
  EXPECT_EQ(table.AddrOf(nh), Ipv4Addr(1, 2, 3, 4));
  EXPECT_EQ(table.AsOf(as), 11423u);
  EXPECT_EQ(table.PrefixOf(pfx), *Prefix::Parse("4.5.0.0/16"));
  EXPECT_EQ(table.Name(peer), "peer 1.2.3.4");
  EXPECT_EQ(table.Name(as), "AS11423");
  EXPECT_EQ(table.Name(pfx), "4.5.0.0/16");
  EXPECT_THROW(table.AsOf(peer), std::logic_error);
  EXPECT_THROW(table.PrefixOf(as), std::logic_error);
}

// ---------------------------------------------------------------------------
// Equivalence suite: the arena-encoded, incrementally-counted, optionally
// sharded Stem must reproduce the original direct implementation exactly.
// `reference` below is a faithful copy of the pre-arena Stem (per-event
// SymbolId vectors, VecHash-keyed maps, full recount per iteration) kept
// as the oracle; any behavioural drift in the optimized path fails here.
// ---------------------------------------------------------------------------

namespace reference {

struct EncodedEvent {
  std::vector<SymbolId> seq;
  SymbolId prefix_symbol = 0;
  double weight = 1.0;
};

struct PairHash {
  std::size_t operator()(const std::pair<SymbolId, SymbolId>& p) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(p.first) << 32) | p.second);
  }
};

struct VecHash {
  std::size_t operator()(const std::vector<SymbolId>& v) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const SymbolId s : v) {
      h ^= s;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

constexpr double kCountEpsilon = 1e-9;

bool CountsEqual(double a, double b) {
  return std::fabs(a - b) <= kCountEpsilon * std::max(1.0, std::max(a, b));
}

std::optional<std::pair<std::vector<SymbolId>, double>> TopSubsequence(
    const std::vector<EncodedEvent>& events, const std::vector<bool>& active,
    double min_count) {
  std::unordered_map<std::pair<SymbolId, SymbolId>, double, PairHash> bigrams;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (!active[i]) continue;
    const auto& seq = events[i].seq;
    for (std::size_t j = 0; j + 1 < seq.size(); ++j) {
      bigrams[{seq[j], seq[j + 1]}] += events[i].weight;
    }
  }
  if (bigrams.empty()) return std::nullopt;

  double best_count = 0.0;
  for (const auto& [pair, count] : bigrams) {
    best_count = std::max(best_count, count);
  }
  if (best_count < min_count) return std::nullopt;

  std::unordered_set<std::vector<SymbolId>, VecHash> survivors;
  for (const auto& [pair, count] : bigrams) {
    if (CountsEqual(count, best_count)) {
      survivors.insert({pair.first, pair.second});
    }
  }

  std::unordered_set<std::vector<SymbolId>, VecHash> last_survivors =
      survivors;
  std::size_t k = 2;
  while (!survivors.empty()) {
    last_survivors = survivors;
    std::unordered_map<std::vector<SymbolId>, double, VecHash> extended;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (!active[i]) continue;
      const auto& seq = events[i].seq;
      if (seq.size() < k + 1) continue;
      std::vector<SymbolId> window;
      for (std::size_t j = 0; j + k < seq.size(); ++j) {
        window.assign(seq.begin() + static_cast<std::ptrdiff_t>(j),
                      seq.begin() + static_cast<std::ptrdiff_t>(j + k));
        if (!survivors.contains(window)) continue;
        window.push_back(seq[j + k]);
        extended[window] += events[i].weight;
      }
    }
    survivors.clear();
    for (const auto& [vec, count] : extended) {
      if (CountsEqual(count, best_count)) survivors.insert(vec);
    }
    ++k;
  }

  std::vector<SymbolId> best = *std::min_element(
      last_survivors.begin(), last_survivors.end());
  return std::make_pair(std::move(best), best_count);
}

bool ContainsSubsequence(const std::vector<SymbolId>& seq,
                         const std::vector<SymbolId>& sub) {
  if (sub.size() > seq.size()) return false;
  for (std::size_t j = 0; j + sub.size() <= seq.size(); ++j) {
    if (std::equal(sub.begin(), sub.end(),
                   seq.begin() + static_cast<std::ptrdiff_t>(j))) {
      return true;
    }
  }
  return false;
}

StemmingResult ReferenceStem(std::span<const bgp::Event> events,
                             const StemmingOptions& options = {}) {
  StemmingResult result;
  result.total_events = events.size();

  std::vector<EncodedEvent> encoded;
  encoded.reserve(events.size());
  for (const bgp::Event& e : events) {
    EncodedEvent ee;
    ee.seq.reserve(e.attrs.as_path.Length() + 3);
    ee.seq.push_back(result.symbols.InternPeer(e.peer));
    ee.seq.push_back(result.symbols.InternNexthop(e.attrs.nexthop));
    bgp::AsNumber last_as = 0;
    bool have_last = false;
    for (const bgp::AsNumber asn : e.attrs.as_path.asns()) {
      if (have_last && asn == last_as) continue;
      ee.seq.push_back(result.symbols.InternAs(asn));
      last_as = asn;
      have_last = true;
    }
    ee.prefix_symbol = result.symbols.InternPrefix(e.prefix);
    ee.seq.push_back(ee.prefix_symbol);
    ee.weight = options.weight_fn ? options.weight_fn(e.prefix) : 1.0;
    result.total_weight += ee.weight;
    encoded.push_back(std::move(ee));
  }

  std::vector<bool> active(encoded.size(), true);
  std::size_t active_count = encoded.size();

  while (result.components.size() < options.max_components &&
         active_count > 0) {
    const double min_count =
        std::max(options.min_count,
                 options.min_count_fraction * result.total_weight);
    auto top = TopSubsequence(encoded, active, min_count);
    if (!top) break;
    auto& [sequence, count] = *top;
    if (sequence.size() < options.min_subsequence_length) break;

    Component component;
    component.top_sequence = sequence;
    component.stem = {sequence[sequence.size() - 2], sequence.back()};
    component.count = count;

    std::unordered_set<SymbolId> prefix_symbols;
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      if (!active[i]) continue;
      if (ContainsSubsequence(encoded[i].seq, sequence)) {
        prefix_symbols.insert(encoded[i].prefix_symbol);
      }
    }
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      if (!active[i]) continue;
      if (prefix_symbols.contains(encoded[i].prefix_symbol)) {
        component.event_indices.push_back(i);
        component.event_weight += encoded[i].weight;
        active[i] = false;
        --active_count;
      }
    }
    component.prefixes.reserve(prefix_symbols.size());
    for (const SymbolId s : prefix_symbols) {
      component.prefixes.push_back(result.symbols.PrefixOf(s));
    }
    std::sort(component.prefixes.begin(), component.prefixes.end());

    result.components.push_back(std::move(component));
  }

  result.residual_events = active_count;
  return result;
}

}  // namespace reference

// Exact (bit-level) equality of two stemming results.  Counts are sums
// of per-event weights; for the unit-weight workloads below they are
// integers, so exact equality holds across implementations regardless of
// accumulation order, and the optimized path guarantees an accumulation
// order matching its serial self for any thread count.
void ExpectIdenticalResults(const StemmingResult& a, const StemmingResult& b) {
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.total_weight, b.total_weight);
  EXPECT_EQ(a.residual_events, b.residual_events);
  // Interning order is part of the contract: components compare by
  // SymbolId below, which only means anything if the ids name the same
  // symbols on both sides.
  ASSERT_EQ(a.symbols.size(), b.symbols.size());
  for (SymbolId id = 0; id < static_cast<SymbolId>(a.symbols.size()); ++id) {
    ASSERT_EQ(a.symbols.Raw(id), b.symbols.Raw(id)) << "symbol " << id;
  }
  ASSERT_EQ(a.components.size(), b.components.size());
  for (std::size_t i = 0; i < a.components.size(); ++i) {
    const Component& ca = a.components[i];
    const Component& cb = b.components[i];
    EXPECT_EQ(ca.top_sequence, cb.top_sequence) << "component " << i;
    EXPECT_EQ(ca.stem, cb.stem) << "component " << i;
    EXPECT_EQ(ca.count, cb.count) << "component " << i;
    EXPECT_EQ(ca.prefixes, cb.prefixes) << "component " << i;
    EXPECT_EQ(ca.event_indices, cb.event_indices) << "component " << i;
    EXPECT_EQ(ca.event_weight, cb.event_weight) << "component " << i;
  }
}

// Seeded anomaly workloads mirroring the paper's case studies.
std::vector<Event> SessionResetWorkload() {
  workload::InternetOptions opt;
  opt.monitored_peers = 4;
  opt.prefix_count = 600;
  opt.origin_as_count = 80;
  opt.seed = 11;
  const workload::SyntheticInternet internet(opt);
  workload::EventStreamGenerator gen(internet, 101);
  gen.SessionReset(1, 10 * util::kMinute, util::kMinute,
                   30 * util::kSecond);
  gen.Churn(0, 30 * util::kMinute, 500);
  return gen.Take().events();
}

std::vector<Event> RouteLeakWorkload() {
  workload::InternetOptions opt;
  opt.monitored_peers = 4;
  opt.prefix_count = 600;
  opt.origin_as_count = 80;
  opt.seed = 13;
  const workload::SyntheticInternet internet(opt);
  workload::EventStreamGenerator gen(internet, 103);
  gen.Tier1Failover(0, 1, 12 * util::kMinute, util::kMinute);
  gen.Churn(0, 30 * util::kMinute, 500);
  return gen.Take().events();
}

std::vector<Event> OscillationWorkload() {
  workload::InternetOptions opt;
  opt.monitored_peers = 4;
  opt.prefix_count = 600;
  opt.origin_as_count = 80;
  opt.seed = 17;
  const workload::SyntheticInternet internet(opt);
  workload::EventStreamGenerator gen(internet, 107);
  gen.PrefixOscillation(42, 0, 2 * util::kHour, 30 * util::kSecond);
  gen.Churn(0, 2 * util::kHour, 400);
  return gen.Take().events();
}

class StemmingEquivalenceTest
    : public ::testing::TestWithParam<std::vector<Event> (*)()> {};

TEST_P(StemmingEquivalenceTest, ArenaMatchesReferenceImplementation) {
  const std::vector<Event> events = GetParam()();
  ASSERT_FALSE(events.empty());
  StemmingOptions options;
  const StemmingResult expected = reference::ReferenceStem(events, options);
  const StemmingResult actual = Stem(events, options);
  ExpectIdenticalResults(expected, actual);
  ASSERT_FALSE(actual.components.empty());
}

TEST_P(StemmingEquivalenceTest, ThreadPoolPathMatchesSerial) {
  const std::vector<Event> events = GetParam()();
  StemmingOptions serial;
  const StemmingResult expected = Stem(events, serial);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    util::ThreadPool pool(threads);
    StemmingOptions pooled;
    pooled.pool = &pool;
    const StemmingResult actual = Stem(events, pooled);
    ExpectIdenticalResults(expected, actual);
  }
}

// Shrunken grains force every parallel stage (sharded encode dedup,
// posting/candidate scans, re-scoring, subtract-on-removal) through
// genuinely multi-chunk execution on a test-sized window.  Unweighted
// counts are integer sums, so even a different chunking must reproduce
// the default configuration exactly — and the pooled runs must match
// the identically-chunked serial run byte for byte.
StemmingOptions TinyGrainOptions() {
  StemmingOptions options;
  options.encode_shard_events = 64;
  options.scan_grain = 16;
  options.candidate_grain = 8;
  options.removal_grain = 8;
  return options;
}

TEST_P(StemmingEquivalenceTest, MultiChunkGrainsMatchDefaultConfiguration) {
  const std::vector<Event> events = GetParam()();
  const StemmingResult expected = Stem(events, StemmingOptions{});
  StemmingOptions tiny = TinyGrainOptions();
  ExpectIdenticalResults(expected, Stem(events, tiny));
  for (const std::size_t threads : {2u, 4u, 8u}) {
    util::ThreadPool pool(threads);
    tiny.pool = &pool;
    const StemmingResult actual = Stem(events, tiny);
    ExpectIdenticalResults(expected, actual);
  }
}

TEST_P(StemmingEquivalenceTest, MultiChunkWeightedIsThreadCountInvariant) {
  // With non-integer weights the chunk split fixes the accumulation
  // order, so a tiny-grain run is its own serial baseline; the pooled
  // runs must still match it to the last bit at every thread count.
  const std::vector<Event> events = GetParam()();
  const auto weight = [](const bgp::Prefix& p) {
    return 1.0 + 0.125 * static_cast<double>(p.addr().value() % 7) + 1e-3;
  };
  StemmingOptions tiny = TinyGrainOptions();
  tiny.weight_fn = weight;
  const StemmingResult expected = Stem(events, tiny);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    util::ThreadPool pool(threads);
    StemmingOptions pooled = TinyGrainOptions();
    pooled.weight_fn = weight;
    pooled.pool = &pool;
    const StemmingResult actual = Stem(events, pooled);
    ExpectIdenticalResults(expected, actual);
  }
}

TEST_P(StemmingEquivalenceTest, WeightedCountsAreThreadCountInvariant) {
  // Non-integer weights make accumulation order observable in the last
  // FP bits; the fixed shard split plus shard-order merge must keep the
  // result bit-identical for every thread count.
  const std::vector<Event> events = GetParam()();
  const auto weight = [](const bgp::Prefix& p) {
    return 1.0 + 0.125 * static_cast<double>(p.addr().value() % 7) + 1e-3;
  };
  StemmingOptions serial;
  serial.weight_fn = weight;
  const StemmingResult expected = Stem(events, serial);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    util::ThreadPool pool(threads);
    StemmingOptions pooled;
    pooled.weight_fn = weight;
    pooled.pool = &pool;
    const StemmingResult actual = Stem(events, pooled);
    ExpectIdenticalResults(expected, actual);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, StemmingEquivalenceTest,
                         ::testing::Values(&SessionResetWorkload,
                                           &RouteLeakWorkload,
                                           &OscillationWorkload),
                         [](const auto& info) {
                           switch (info.index) {
                             case 0: return "SessionReset";
                             case 1: return "RouteLeak";
                             default: return "Oscillation";
                           }
                         });

TEST(StemmingEquivalenceTest, Figure4MatchesReference) {
  const auto events = Figure4Events();
  ExpectIdenticalResults(reference::ReferenceStem(events), Stem(events));
}

}  // namespace
}  // namespace ranomaly::stemming
