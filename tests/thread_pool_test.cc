#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "util/thread_pool.h"

namespace ranomaly::util {
namespace {

TEST(ThreadPoolTest, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(),
                   [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "chunk " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<int> order;
  pool.ParallelFor(8, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // inline: no synchronization needed
  });
  std::vector<int> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ZeroChunksReturnsImmediately) {
  ThreadPool pool(3);
  bool called = false;
  pool.ParallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ChunkResultsMergeInChunkOrder) {
  // The determinism contract: callers store per-chunk results and merge
  // them by index; the outcome must not depend on scheduling.
  ThreadPool pool(4);
  constexpr std::size_t kChunks = 257;
  std::vector<std::uint64_t> partial(kChunks, 0);
  pool.ParallelFor(kChunks, [&](std::size_t i) { partial[i] = i * i; });
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kChunks; ++i) total += partial[i];
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kChunks; ++i) expected += i * i;
  EXPECT_EQ(total, expected);
}

TEST(ThreadPoolTest, BackToBackJobsDoNotLeakChunks) {
  // Generation tagging: a straggler from job N must never claim a chunk
  // of job N+1.  Exercise many short jobs to shake races out (run under
  // RANOMALY_SANITIZE=thread in CI).
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    const std::size_t chunks = 1 + static_cast<std::size_t>(round % 7);
    pool.ParallelFor(chunks, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), static_cast<int>(chunks)) << "round " << round;
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  // A stemming shard count issued from inside a parallel spike window
  // must not wait on the already-busy pool.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(4, [&](std::size_t) {
    pool.ParallelFor(8, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPoolTest, SlotsStayInRangeAndAreSequentialPerLane) {
  // The two-argument overload: every chunk sees a slot in [0, threads),
  // and chunks sharing a slot never overlap in time — that is what lets
  // callers reuse per-slot scratch without synchronization.
  ThreadPool pool(4);
  constexpr std::size_t kChunks = 500;
  std::vector<std::atomic<int>> in_flight(4);
  std::atomic<bool> overlapped{false};
  std::atomic<bool> out_of_range{false};
  pool.ParallelFor(kChunks, [&](std::size_t, std::size_t slot) {
    if (slot >= 4) {
      out_of_range.store(true);
      return;
    }
    if (in_flight[slot].fetch_add(1) != 0) overlapped.store(true);
    in_flight[slot].fetch_sub(1);
  });
  EXPECT_FALSE(out_of_range.load());
  EXPECT_FALSE(overlapped.load());
}

TEST(ThreadPoolTest, NestedSlotStaysWithinNestedPoolWidth) {
  // A nested call runs inline on a worker whose slot may exceed the
  // inner pool's width; the slot must be clamped so scratch sized to
  // the inner pool's threads() stays in range.
  ThreadPool outer(4);
  ThreadPool inner(2);
  std::atomic<bool> out_of_range{false};
  outer.ParallelFor(16, [&](std::size_t) {
    inner.ParallelFor(4, [&](std::size_t, std::size_t slot) {
      if (slot >= inner.threads()) out_of_range.store(true);
    });
  });
  EXPECT_FALSE(out_of_range.load());
}

TEST(ThreadPoolTest, ChunksForAndChunkRangeCoverItemsExactly) {
  EXPECT_EQ(ThreadPool::ChunksFor(0, 8), 0u);
  EXPECT_EQ(ThreadPool::ChunksFor(1, 8), 1u);
  EXPECT_EQ(ThreadPool::ChunksFor(8, 8), 1u);
  EXPECT_EQ(ThreadPool::ChunksFor(9, 8), 2u);
  EXPECT_EQ(ThreadPool::ChunksFor(7, 0), 7u);  // grain 0 treated as 1
  for (const std::size_t items : {1u, 7u, 8u, 9u, 63u, 64u, 65u}) {
    for (const std::size_t grain : {1u, 3u, 8u, 100u}) {
      const std::size_t chunks = ThreadPool::ChunksFor(items, grain);
      std::size_t covered = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const auto [begin, end] = ThreadPool::ChunkRange(items, grain, c);
        EXPECT_EQ(begin, covered) << items << "/" << grain << "/" << c;
        EXPECT_GT(end, begin);
        EXPECT_LE(end - begin, grain == 0 ? 1 : grain);
        covered = end;
      }
      EXPECT_EQ(covered, items) << items << "/" << grain;
    }
  }
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvironment) {
  ::setenv("RANOMALY_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3u);
  ::setenv("RANOMALY_THREADS", "0", 1);  // invalid: falls back to hardware
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  ::setenv("RANOMALY_THREADS", "9999", 1);  // clamped down
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 256u);
  ::unsetenv("RANOMALY_THREADS");
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace ranomaly::util
