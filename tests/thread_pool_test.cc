#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "util/thread_pool.h"

namespace ranomaly::util {
namespace {

TEST(ThreadPoolTest, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(),
                   [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "chunk " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<int> order;
  pool.ParallelFor(8, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // inline: no synchronization needed
  });
  std::vector<int> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ZeroChunksReturnsImmediately) {
  ThreadPool pool(3);
  bool called = false;
  pool.ParallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ChunkResultsMergeInChunkOrder) {
  // The determinism contract: callers store per-chunk results and merge
  // them by index; the outcome must not depend on scheduling.
  ThreadPool pool(4);
  constexpr std::size_t kChunks = 257;
  std::vector<std::uint64_t> partial(kChunks, 0);
  pool.ParallelFor(kChunks, [&](std::size_t i) { partial[i] = i * i; });
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kChunks; ++i) total += partial[i];
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kChunks; ++i) expected += i * i;
  EXPECT_EQ(total, expected);
}

TEST(ThreadPoolTest, BackToBackJobsDoNotLeakChunks) {
  // Generation tagging: a straggler from job N must never claim a chunk
  // of job N+1.  Exercise many short jobs to shake races out (run under
  // RANOMALY_SANITIZE=thread in CI).
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    const std::size_t chunks = 1 + static_cast<std::size_t>(round % 7);
    pool.ParallelFor(chunks, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), static_cast<int>(chunks)) << "round " << round;
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  // A stemming shard count issued from inside a parallel spike window
  // must not wait on the already-busy pool.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(4, [&](std::size_t) {
    pool.ParallelFor(8, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvironment) {
  ::setenv("RANOMALY_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3u);
  ::setenv("RANOMALY_THREADS", "0", 1);  // invalid: falls back to hardware
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  ::setenv("RANOMALY_THREADS", "9999", 1);  // clamped down
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 256u);
  ::unsetenv("RANOMALY_THREADS");
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace ranomaly::util
