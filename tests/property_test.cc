// Randomized property tests (parameterized over seeds): build random
// valley-free internetworks, run full simulations, and check the
// system-wide invariants that must hold for ANY input:
//
//   * BGP converges (Gao-Rexford safety: acyclic provider hierarchy +
//     prefer-customer economics guarantee it);
//   * every best path is AS-loop-free;
//   * the simulation is bit-for-bit deterministic per seed;
//   * the collector's stream is time-ordered, withdrawals are augmented,
//     and replaying it through the TAMP animator reproduces exactly the
//     graph built from the final RIB snapshot (event-sourcing
//     consistency);
//   * text and binary serialization round-trip the stream.
#include <gtest/gtest.h>

#include <sstream>

#include "collector/binary_io.h"
#include "collector/collector.h"
#include "net/simulator.h"
#include "tamp/animation.h"
#include "util/rng.h"

namespace ranomaly {
namespace {

using bgp::Ipv4Addr;
using bgp::Prefix;
using util::kMinute;
using util::kSecond;

struct RandomNet {
  net::Topology topo;
  std::vector<net::RouterIndex> tier1;
  std::vector<net::RouterIndex> transit;
  std::vector<net::RouterIndex> stubs;
  std::vector<net::LinkIndex> stub_links;
  std::vector<std::pair<net::RouterIndex, Prefix>> originations;
  net::RouterIndex monitored = 0;  // a transit AS's router we observe
};

RandomNet BuildRandom(std::uint64_t seed) {
  util::Rng rng(seed);
  RandomNet net;
  auto router = [&](std::string name, Ipv4Addr addr, bgp::AsNumber asn) {
    return net.topo.AddRouter(net::RouterSpec{std::move(name), addr, asn, 0,
                                              false, {}});
  };
  auto link = [&](net::RouterIndex a, net::RouterIndex b,
                  net::PeerRelation rel) {
    net::LinkSpec l;
    l.a = a;
    l.b = b;
    l.b_is_as_seen_by_a = rel;
    l.delay = util::kMillisecond;
    return net.topo.AddLink(l);
  };

  const std::size_t n_tier1 = 2 + rng.NextBelow(3);
  const std::size_t n_transit = 3 + rng.NextBelow(5);
  const std::size_t n_stub = 6 + rng.NextBelow(10);

  for (std::size_t i = 0; i < n_tier1; ++i) {
    net.tier1.push_back(router("t1-" + std::to_string(i),
                               Ipv4Addr(10, 0, static_cast<std::uint8_t>(i), 1),
                               static_cast<bgp::AsNumber>(100 + i)));
  }
  // Tier-1 clique (peers).
  for (std::size_t i = 0; i < n_tier1; ++i) {
    for (std::size_t j = i + 1; j < n_tier1; ++j) {
      link(net.tier1[i], net.tier1[j], net::PeerRelation::kPeer);
    }
  }
  // Transits: customer of 1-2 tier-1s, occasional peering between them.
  for (std::size_t i = 0; i < n_transit; ++i) {
    const auto t = router("tr-" + std::to_string(i),
                          Ipv4Addr(20, 0, static_cast<std::uint8_t>(i), 1),
                          static_cast<bgp::AsNumber>(1000 + i));
    net.transit.push_back(t);
    link(net.tier1[rng.NextBelow(n_tier1)], t, net::PeerRelation::kCustomer);
    if (rng.NextBool(0.5)) {
      link(net.tier1[rng.NextBelow(n_tier1)], t, net::PeerRelation::kCustomer);
    }
  }
  for (std::size_t i = 0; i + 1 < n_transit; ++i) {
    if (rng.NextBool(0.3)) {
      link(net.transit[i], net.transit[i + 1], net::PeerRelation::kPeer);
    }
  }
  // Stubs: customers of 1-2 transits, each originating 1-3 prefixes.
  for (std::size_t i = 0; i < n_stub; ++i) {
    const auto s = router("stub-" + std::to_string(i),
                          Ipv4Addr(30, 0, static_cast<std::uint8_t>(i), 1),
                          static_cast<bgp::AsNumber>(30000 + i));
    net.stubs.push_back(s);
    net.stub_links.push_back(
        link(net.transit[rng.NextBelow(n_transit)], s,
             net::PeerRelation::kCustomer));
    if (rng.NextBool(0.4)) {
      link(net.transit[rng.NextBelow(n_transit)], s,
           net::PeerRelation::kCustomer);
    }
    const std::size_t prefixes = 1 + rng.NextBelow(3);
    for (std::size_t k = 0; k < prefixes; ++k) {
      net.originations.emplace_back(
          s, Prefix(Ipv4Addr(40 + static_cast<std::uint8_t>(i),
                             static_cast<std::uint8_t>(k), 0, 0),
                    16));
    }
  }
  net.monitored = net.transit[rng.NextBelow(n_transit)];
  return net;
}

class RandomTopologyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTopologyTest, ConvergesWithLoopFreeValidBestPaths) {
  RandomNet rnet = BuildRandom(GetParam());
  net::Simulator sim(rnet.topo, GetParam());
  for (const auto& [router, prefix] : rnet.originations) {
    sim.Originate(router, prefix);
  }
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(30 * kMinute)) << "seed " << GetParam();

  // Every router's every best path is loop-free; tier-1s (top of the
  // hierarchy) can reach every originated prefix.
  for (std::size_t r = 0; r < rnet.topo.RouterCount(); ++r) {
    sim.RibOf(static_cast<net::RouterIndex>(r))
        .ForEach([&](const Prefix&, const auto& candidates,
                     std::optional<std::size_t> best) {
          ASSERT_TRUE(best.has_value());
          EXPECT_FALSE(candidates[*best].attrs.as_path.HasLoop());
        });
  }
  for (const net::RouterIndex t1 : rnet.tier1) {
    for (const auto& [router, prefix] : rnet.originations) {
      EXPECT_NE(sim.RibOf(t1).Best(prefix), nullptr)
          << "tier1 cannot reach " << prefix.ToString();
    }
  }
}

TEST_P(RandomTopologyTest, DeterministicPerSeed) {
  auto run = [&] {
    RandomNet rnet = BuildRandom(GetParam());
    net::Simulator sim(rnet.topo, GetParam());
    collector::Collector rex;
    rex.AttachTo(sim, {rnet.monitored});
    for (const auto& [router, prefix] : rnet.originations) {
      sim.Originate(router, prefix);
    }
    sim.Start();
    sim.RunToQuiescence(30 * kMinute);
    std::stringstream ss;
    rex.events().SaveText(ss);
    return std::make_pair(sim.stats().messages_delivered, ss.str());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST_P(RandomTopologyTest, EventSourcedTampGraphMatchesFinalSnapshot) {
  // Run with churn (stub link flaps), collect everything, then check the
  // event-sourcing invariant: initial snapshot + event replay == final
  // snapshot, as TAMP graphs.
  RandomNet rnet = BuildRandom(GetParam());
  util::Rng rng(GetParam() ^ 0xabcdef);
  net::Simulator sim(rnet.topo, GetParam());
  collector::Collector rex;
  rex.AttachTo(sim, {rnet.monitored});
  for (const auto& [router, prefix] : rnet.originations) {
    sim.Originate(router, prefix);
  }
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(30 * kMinute));
  const auto initial_snapshot = rex.Snapshot();
  const std::size_t first_churn_event = rex.events().size();

  // Churn: flap a few random stub links.
  util::SimTime t = sim.now() + kMinute;
  for (int i = 0; i < 5; ++i) {
    const auto link = rnet.stub_links[rng.NextBelow(rnet.stub_links.size())];
    sim.ScheduleLinkDown(link, t);
    sim.ScheduleLinkUp(link, t + 30 * kSecond);
    t += kMinute;
  }
  ASSERT_TRUE(sim.RunToQuiescence(t + 30 * kMinute));

  // Replay the churn events on top of the initial snapshot.
  std::vector<bgp::Event> churn(
      rex.events().events().begin() +
          static_cast<std::ptrdiff_t>(first_churn_event),
      rex.events().events().end());
  tamp::Animator animator(initial_snapshot, tamp::AnimationOptions{});
  animator.Play(churn);

  // The event-sourced graph must equal the graph of the final snapshot.
  const tamp::TampGraph from_snapshot =
      tamp::TampGraph::FromSnapshot(rex.Snapshot());
  auto expected = from_snapshot.Edges();
  auto actual = animator.graph().Edges();
  const auto order = [](const tamp::TampGraph::Edge& a,
                        const tamp::TampGraph::Edge& b) {
    return std::make_tuple(static_cast<int>(a.from.kind), a.from.key,
                           static_cast<int>(a.to.kind), a.to.key) <
           std::make_tuple(static_cast<int>(b.from.kind), b.from.key,
                           static_cast<int>(b.to.kind), b.to.key);
  };
  std::sort(expected.begin(), expected.end(), order);
  std::sort(actual.begin(), actual.end(), order);
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].from, actual[i].from);
    EXPECT_EQ(expected[i].to, actual[i].to);
    EXPECT_EQ(expected[i].weight, actual[i].weight) << "edge " << i;
  }
  EXPECT_EQ(rex.unmatched_withdrawals(), 0u);
}

TEST_P(RandomTopologyTest, StreamSerializationRoundTrips) {
  RandomNet rnet = BuildRandom(GetParam());
  net::Simulator sim(rnet.topo, GetParam());
  collector::Collector rex;
  rex.AttachTo(sim, {rnet.monitored});
  for (const auto& [router, prefix] : rnet.originations) {
    sim.Originate(router, prefix);
  }
  sim.Start();
  sim.RunToQuiescence(30 * kMinute);
  ASSERT_FALSE(rex.events().empty());

  std::stringstream text;
  rex.events().SaveText(text);
  const auto from_text = collector::EventStream::LoadText(text);
  ASSERT_TRUE(from_text);
  ASSERT_EQ(from_text->size(), rex.events().size());

  std::stringstream binary;
  ASSERT_TRUE(collector::SaveBinary(rex.events(), binary));
  const auto from_binary = collector::LoadBinary(binary);
  ASSERT_TRUE(from_binary);
  ASSERT_EQ(from_binary->size(), rex.events().size());
  for (std::size_t i = 0; i < rex.events().size(); ++i) {
    EXPECT_EQ((*from_binary)[i].attrs, rex.events()[i].attrs);
    EXPECT_EQ((*from_text)[i].prefix, rex.events()[i].prefix);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace ranomaly
