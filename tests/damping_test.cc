#include <gtest/gtest.h>

#include "collector/collector.h"
#include "net/simulator.h"

namespace ranomaly::net {
namespace {

using bgp::Ipv4Addr;
using bgp::Prefix;
using util::kMinute;
using util::kSecond;

const Prefix kP = *Prefix::Parse("1.0.0.0/22");

struct FlapFixture {
  Topology topo;
  RouterIndex isp = 0;
  RouterIndex customer = 0;
  LinkIndex link = 0;

  explicit FlapFixture(DampingConfig damping) {
    isp = topo.AddRouter(RouterSpec{"isp", Ipv4Addr(10, 0, 0, 1), 100, 0, false, {}});
    customer = topo.AddRouter(
        RouterSpec{"cust", Ipv4Addr(1, 0, 0, 1), 200, 0, false, {}});
    LinkSpec l;
    l.a = isp;
    l.b = customer;
    l.b_is_as_seen_by_a = PeerRelation::kCustomer;
    l.a_policy.damping = damping;
    link = topo.AddLink(l);
  }
};

DampingConfig DefaultDamping() {
  DampingConfig d;
  d.enabled = true;
  return d;
}

TEST(DampingTest, RepeatedFlapsSuppressTheRoute) {
  FlapFixture fx(DefaultDamping());
  Simulator sim(std::move(fx.topo));
  sim.Originate(fx.customer, kP);
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(kMinute));
  ASSERT_NE(sim.RibOf(fx.isp).Best(kP), nullptr);

  // Three quick withdraw/announce cycles push the penalty past the 2000
  // suppress threshold (decay between flaps keeps two just short of it);
  // the announcement after crossing is withheld.
  util::SimTime t = sim.now() + kSecond;
  for (int i = 0; i < 3; ++i) {
    sim.ScheduleWithdrawOrigin(t, fx.customer, kP);
    sim.ScheduleOriginate(t + kSecond, fx.customer, kP, {});
    t += 10 * kSecond;
  }
  sim.Run(t + kMinute);
  EXPECT_GE(sim.stats().routes_damped, 1u);
  EXPECT_EQ(sim.RibOf(fx.isp).Best(kP), nullptr);  // suppressed
}

TEST(DampingTest, SuppressedRouteReusedAfterDecay) {
  DampingConfig damping = DefaultDamping();
  damping.half_life = kMinute;  // fast decay for the test
  FlapFixture fx(damping);
  Simulator sim(std::move(fx.topo));
  sim.Originate(fx.customer, kP);
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(kMinute));

  util::SimTime t = sim.now() + kSecond;
  for (int i = 0; i < 3; ++i) {
    sim.ScheduleWithdrawOrigin(t, fx.customer, kP);
    sim.ScheduleOriginate(t + kSecond, fx.customer, kP, {});
    t += 5 * kSecond;
  }
  sim.Run(t + 10 * kSecond);
  ASSERT_EQ(sim.RibOf(fx.isp).Best(kP), nullptr);  // suppressed

  // Penalty ~2800 with a 1-minute half-life decays below reuse (750)
  // after ~2 half-lives; shortly after, the route must be back.
  ASSERT_TRUE(sim.RunToQuiescence(sim.now() + 5 * kMinute));
  EXPECT_NE(sim.RibOf(fx.isp).Best(kP), nullptr);
  EXPECT_GE(sim.stats().routes_reused, 1u);
}

TEST(DampingTest, SingleFlapDoesNotSuppress) {
  FlapFixture fx(DefaultDamping());
  Simulator sim(std::move(fx.topo));
  sim.Originate(fx.customer, kP);
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(kMinute));
  sim.ScheduleWithdrawOrigin(sim.now() + kSecond, fx.customer, kP);
  sim.ScheduleOriginate(sim.now() + 2 * kSecond, fx.customer, kP, {});
  ASSERT_TRUE(sim.RunToQuiescence(sim.now() + kMinute));
  EXPECT_NE(sim.RibOf(fx.isp).Best(kP), nullptr);
  EXPECT_EQ(sim.stats().routes_damped, 0u);
}

TEST(DampingTest, DisabledByDefault) {
  FlapFixture fx(DampingConfig{});  // not enabled
  Simulator sim(std::move(fx.topo));
  sim.Originate(fx.customer, kP);
  sim.Start();
  sim.RunToQuiescence(kMinute);
  util::SimTime t = sim.now() + kSecond;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleWithdrawOrigin(t, fx.customer, kP);
    sim.ScheduleOriginate(t + kSecond, fx.customer, kP, {});
    t += 5 * kSecond;
  }
  ASSERT_TRUE(sim.RunToQuiescence(t + kMinute));
  EXPECT_EQ(sim.stats().routes_damped, 0u);
  EXPECT_NE(sim.RibOf(fx.isp).Best(kP), nullptr);
}

TEST(DampingTest, PenaltyCapBoundsSuppressionTime) {
  // Hammer the route far past max_penalty; the reuse time must still be
  // bounded by decay from the cap, not unbounded accumulation.
  DampingConfig damping = DefaultDamping();
  damping.half_life = kMinute;
  FlapFixture fx(damping);
  Simulator sim(std::move(fx.topo));
  sim.Originate(fx.customer, kP);
  sim.Start();
  sim.RunToQuiescence(kMinute);
  util::SimTime t = sim.now() + kSecond;
  for (int i = 0; i < 50; ++i) {
    sim.ScheduleWithdrawOrigin(t, fx.customer, kP);
    sim.ScheduleOriginate(t + kSecond, fx.customer, kP, {});
    t += 2 * kSecond;
  }
  sim.Run(t);
  ASSERT_EQ(sim.RibOf(fx.isp).Best(kP), nullptr);
  // From the 12000 cap to 750 is log2(16) = 4 half-lives; allow slack.
  ASSERT_TRUE(sim.RunToQuiescence(sim.now() + 10 * kMinute));
  EXPECT_NE(sim.RibOf(fx.isp).Best(kP), nullptr);
}

TEST(DampingTest, DampingShieldsTheMeshFromFlapChurn) {
  // The RFC 2439 pitch applied to the paper's IV-E: with damping at the
  // edge, a flapping customer stops hammering the rest of the network.
  auto run = [](bool with_damping) {
    Topology topo;
    const auto edge = topo.AddRouter(
        RouterSpec{"edge", Ipv4Addr(10, 0, 0, 1), 100, 0, false, {}});
    // The core is a route reflector so the collector (an RR client, as
    // REX is) sees its full best-path changes.
    const auto core = topo.AddRouter(
        RouterSpec{"core", Ipv4Addr(10, 0, 0, 2), 100, 0, true, {}});
    const auto cust = topo.AddRouter(
        RouterSpec{"cust", Ipv4Addr(1, 0, 0, 1), 200, 0, false, {}});
    LinkSpec mesh;
    mesh.a = edge;
    mesh.b = core;
    mesh.b_is_as_seen_by_a = PeerRelation::kInternal;
    topo.AddLink(mesh);
    LinkSpec l;
    l.a = edge;
    l.b = cust;
    l.b_is_as_seen_by_a = PeerRelation::kCustomer;
    if (with_damping) {
      l.a_policy.damping.enabled = true;
      l.a_policy.damping.half_life = 30 * kMinute;
    }
    topo.AddLink(l);

    Simulator sim(std::move(topo));
    collector::Collector rex;
    rex.AttachTo(sim, {core});
    sim.Originate(cust, kP);
    sim.Start();
    sim.RunToQuiescence(kMinute);
    const std::size_t baseline = rex.events().size();
    util::SimTime t = sim.now() + kMinute;
    for (int i = 0; i < 30; ++i) {
      sim.ScheduleWithdrawOrigin(t, cust, kP);
      sim.ScheduleOriginate(t + 10 * kSecond, cust, kP, {});
      t += kMinute;
    }
    sim.Run(t + kMinute);
    return rex.events().size() - baseline;
  };
  const auto without = run(false);
  const auto with = run(true);
  EXPECT_GE(without, 40u);     // the mesh sees the full churn
  EXPECT_LT(with, without / 4);  // damping absorbs it at the edge
}

}  // namespace
}  // namespace ranomaly::net
