#include <gtest/gtest.h>

#include "bgp/as_path_pattern.h"
#include "net/config.h"

namespace ranomaly::bgp {
namespace {

bool Match(const char* pattern, AsPath path) {
  const auto p = AsPathPattern::Parse(pattern);
  EXPECT_TRUE(p) << pattern;
  return p && p->Matches(path);
}

TEST(AsPathPatternTest, EmptyPathPatterns) {
  // "^$": locally originated routes — THE classic export filter.
  EXPECT_TRUE(Match("^$", {}));
  EXPECT_FALSE(Match("^$", {701}));
  // ".*" matches everything, including the empty path.
  EXPECT_TRUE(Match(".*", {}));
  EXPECT_TRUE(Match(".*", {1, 2, 3}));
}

TEST(AsPathPatternTest, FirstHopAnchor) {
  // "^701_": learned directly from UUNET.
  EXPECT_TRUE(Match("^701_", {701, 5, 6}));
  EXPECT_TRUE(Match("^701_", {701}));
  EXPECT_FALSE(Match("^701_", {5, 701}));
}

TEST(AsPathPatternTest, OriginAnchor) {
  // "_3356$": originated by Level3.
  EXPECT_TRUE(Match("_3356$", {1, 2, 3356}));
  EXPECT_TRUE(Match("_3356$", {3356}));
  EXPECT_FALSE(Match("_3356$", {3356, 9}));
}

TEST(AsPathPatternTest, TransitMatch) {
  // "_666_": passes through AS666 anywhere.
  EXPECT_TRUE(Match("_666_", {1, 666, 3}));
  EXPECT_TRUE(Match("_666_", {666}));
  EXPECT_FALSE(Match("_666_", {1, 6660, 3}));  // no substring confusion
  EXPECT_FALSE(Match("_666_", {66, 6}));
}

TEST(AsPathPatternTest, AdjacentLiteralsNeedSeparator) {
  EXPECT_TRUE(Match("^11423_209", {11423, 209, 701}));
  EXPECT_FALSE(Match("^11423_209", {11423, 701, 209}));
  // Digits are consumed greedily: "701702" is ONE AS number, never 701
  // followed by 702 (which must be written "701_702").
  EXPECT_TRUE(Match("701702", {701702}));
  EXPECT_FALSE(Match("701702", {701, 702}));
  EXPECT_TRUE(Match("701_702", {701, 702}));
}

TEST(AsPathPatternTest, Quantifiers) {
  // Prepend detection: "^701_701+" = 701 prepended at least twice.
  EXPECT_TRUE(Match("^701_701+", {701, 701, 9}));
  EXPECT_TRUE(Match("^701_701+", {701, 701, 701}));
  EXPECT_FALSE(Match("^701_701+", {701, 9}));
  // Exact length two: "^._.$".
  EXPECT_TRUE(Match("^._.$", {4, 5}));
  EXPECT_FALSE(Match("^._.$", {4}));
  EXPECT_FALSE(Match("^._.$", {4, 5, 6}));
  // Optional: "^1_2?_3$".
  EXPECT_TRUE(Match("^1_2?_3$", {1, 3}));
  EXPECT_TRUE(Match("^1_2?_3$", {1, 2, 3}));
  EXPECT_FALSE(Match("^1_2?_3$", {1, 2, 2, 3}));
  // Star with backtracking: "^.*9$".
  EXPECT_TRUE(Match("^.*9$", {9}));
  EXPECT_TRUE(Match("^.*9$", {1, 9, 9}));
  EXPECT_FALSE(Match("^.*9$", {9, 1}));
}

TEST(AsPathPatternTest, UnanchoredMatchesSubPath) {
  EXPECT_TRUE(Match("209_701", {11423, 209, 701, 1299}));
  EXPECT_FALSE(Match("209_701", {11423, 701, 209}));
}

TEST(AsPathPatternTest, ParseRejectsGarbage) {
  EXPECT_FALSE(AsPathPattern::Parse("abc"));
  EXPECT_FALSE(AsPathPattern::Parse("^1$2"));      // $ not at the end
  EXPECT_FALSE(AsPathPattern::Parse("99999999999"));  // overflow
  EXPECT_FALSE(AsPathPattern::Parse("[701]"));
  EXPECT_TRUE(AsPathPattern::Parse(""));  // empty = matches everything
  EXPECT_TRUE(Match("", {1, 2}));
  EXPECT_TRUE(Match("", {}));
}

TEST(AsPathPatternTest, RedundantSeparatorsAreHarmless) {
  EXPECT_TRUE(Match("^_701__209_$", {701, 209}));
}

TEST(AsPathPatternTest, ConfigIntegration) {
  // The classic stub-AS export filter, straight from a config file.
  const char* text = R"(
route-map EXPORT-LOCAL-ONLY permit 10
 match as-path ^$
)";
  const auto config = net::RouterConfig::Parse(text);
  ASSERT_TRUE(config);
  const net::RouteMap* map = config->FindRouteMap("EXPORT-LOCAL-ONLY");
  ASSERT_NE(map, nullptr);
  PathAttributes local;  // empty AS path
  EXPECT_TRUE(map->Apply(*Prefix::Parse("10.0.0.0/8"), local, 25));
  PathAttributes transit;
  transit.as_path = AsPath{701, 3356};
  EXPECT_FALSE(map->Apply(*Prefix::Parse("10.0.0.0/8"), transit, 25));
}

TEST(AsPathPatternTest, ConfigRejectsBadPattern) {
  const char* text = "route-map M permit 10\n match as-path [x]\n";
  net::ConfigError error;
  EXPECT_FALSE(net::RouterConfig::Parse(text, &error));
  EXPECT_EQ(error.line, 2u);
}

}  // namespace
}  // namespace ranomaly::bgp
