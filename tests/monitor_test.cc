#include <gtest/gtest.h>

#include "core/monitor.h"
#include "workload/eventgen.h"

namespace ranomaly::core {
namespace {

using util::kHour;
using util::kMinute;
using util::kSecond;

workload::SyntheticInternet SmallInternet() {
  workload::InternetOptions options;
  options.monitored_peers = 3;
  options.tier1_count = 20;
  options.transit_count = 100;
  options.prefix_count = 400;
  options.origin_as_count = 100;
  options.seed = 41;
  return workload::SyntheticInternet(options);
}

TEST(RealTimeMonitorTest, AlertsOnceOnASpike) {
  const auto internet = SmallInternet();
  workload::EventStreamGenerator gen(internet, 42);
  gen.Churn(0, kHour, 200);
  gen.SessionReset(0, 30 * kMinute, kMinute, 20 * kSecond);
  const auto stream = gen.Take();

  RealTimeMonitor monitor;
  const auto alerts = monitor.Poll(stream);
  ASSERT_FALSE(alerts.empty());
  bool saw_reset = false;
  for (const auto& a : alerts) {
    saw_reset |= a.kind == IncidentKind::kSessionReset;
  }
  EXPECT_TRUE(saw_reset);

  // Re-polling with no new events raises nothing new.
  EXPECT_TRUE(monitor.Poll(stream).empty());
  EXPECT_EQ(monitor.polls(), 2u);
}

TEST(RealTimeMonitorTest, PersistentFlapDedupedAcrossPolls) {
  // A flap that spans many polls: each poll's window sees it, but the
  // operator is paged once per re-alert interval.
  const auto internet = SmallInternet();

  RealTimeMonitor::Options options;
  options.realert_interval = 2 * kHour;
  options.long_pass_every = 30 * kMinute;
  RealTimeMonitor monitor(options);

  // Build the full capture, then feed it in 30-minute slices through a
  // growing stream (as a live collector would).
  workload::EventStreamGenerator gen(internet, 43);
  gen.PrefixOscillation(5, 0, 6 * kHour, kMinute);
  gen.Churn(0, 6 * kHour, 300);
  const auto full = gen.Take();

  collector::EventStream growing;
  std::size_t fed = 0;
  std::size_t flap_alerts = 0;
  for (int slice = 1; slice <= 12; ++slice) {
    const util::SimTime until = slice * 30 * kMinute;
    while (fed < full.size() && full[fed].time < until) {
      growing.Append(full[fed]);
      ++fed;
    }
    if (growing.empty()) continue;
    for (const auto& alert : monitor.Poll(growing)) {
      if (alert.kind == IncidentKind::kRouteFlap ||
          alert.kind == IncidentKind::kMedOscillation) {
        ++flap_alerts;
      }
    }
  }
  // Over 6 hours with a 2-hour re-alert interval: about 3 pages, not 12.
  EXPECT_GE(flap_alerts, 2u);
  EXPECT_LE(flap_alerts, 5u);
  EXPECT_GT(monitor.alerts_suppressed(), 0u);
}

TEST(RealTimeMonitorTest, EmptyStreamIsQuiet) {
  RealTimeMonitor monitor;
  collector::EventStream empty;
  EXPECT_TRUE(monitor.Poll(empty).empty());
  EXPECT_EQ(monitor.alerts_raised(), 0u);
}

TEST(RealTimeMonitorTest, StreamReplacementResynchronizes) {
  const auto internet = SmallInternet();
  workload::EventStreamGenerator gen(internet, 44);
  gen.SessionReset(1, 10 * kMinute, kMinute, 20 * kSecond);
  const auto big = gen.Take();

  RealTimeMonitor monitor;
  monitor.Poll(big);
  // A shorter replacement stream (e.g. collector restart) must not crash
  // or read out of bounds.
  workload::EventStreamGenerator gen2(internet, 45);
  gen2.Churn(0, 10 * kMinute, 50);
  const auto small = gen2.Take();
  ASSERT_LT(small.size(), big.size());
  monitor.Poll(small);  // resyncs cursor
  SUCCEED();
}

}  // namespace
}  // namespace ranomaly::core
