// End-to-end integration: simulator -> collector -> spike detection ->
// Stemming -> classification -> TAMP picture/animation, plus the D.1-D.3
// correlators, exercised together the way the product pipeline runs.
#include <gtest/gtest.h>

#include <algorithm>

#include <sstream>

#include "collector/collector.h"
#include "core/correlate.h"
#include "core/pipeline.h"
#include "tamp/animation.h"
#include "tamp/render.h"
#include "workload/berkeley.h"
#include "workload/eventgen.h"

namespace ranomaly {
namespace {

using util::kMinute;
using util::kSecond;

TEST(IntegrationTest, BerkeleyLeakEndToEnd) {
  // Build, converge, inject the IV-D leak, and drive the full analysis
  // stack over the collector's stream.
  workload::BerkeleyOptions options;
  options.commodity_prefixes = 120;
  options.leak_prefixes = 30;
  workload::BerkeleyNet net = workload::BuildBerkeley(options);
  net::Simulator sim(net.topology, 11);
  collector::Collector collector;
  collector.AttachTo(sim, net.monitored);
  net.SeedRoutes(sim);
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(10 * kMinute));

  const std::size_t snapshot_events = collector.events().size();
  const auto initial_snapshot = collector.Snapshot();

  const util::SimTime t0 = sim.now() + kMinute;
  workload::InjectRouteLeak(sim, net, t0, 2 * kMinute, kMinute, 1);
  ASSERT_TRUE(sim.RunToQuiescence(t0 + 10 * kMinute));

  // 1. The pipeline finds the incident in the stream.
  core::Pipeline pipeline;
  const auto window = collector.events().Window(t0 - kSecond, t0 + kMinute);
  const auto incidents = pipeline.AnalyzeWindow(window);
  ASSERT_FALSE(incidents.empty());
  const core::Incident& incident = incidents[0];
  EXPECT_GE(incident.prefix_count, 25u);

  // 2. D.1: the component's communities correlate to the parsed configs.
  const auto r13_cfg = net::RouterConfig::Parse(net.r13_config_text);
  const auto r1200_cfg = net::RouterConfig::Parse(net.r1200_config_text);
  ASSERT_TRUE(r13_cfg && r1200_cfg);
  const std::vector<core::NamedConfig> configs = {
      {"128.32.1.3", &*r13_cfg}, {"128.32.1.200", &*r1200_cfg}};
  const auto findings = core::CorrelatePolicies(incident, window, configs);
  // The withdrawn routes carried 11423:65350, which both routers' maps
  // act on — exactly the Section III-D.1 story.
  ASSERT_FALSE(findings.empty());
  bool saw_lp80 = false;
  bool saw_lp70 = false;
  for (const auto& f : findings) {
    if (f.action.find("local-preference 80") != std::string::npos) saw_lp80 = true;
    if (f.action.find("local-preference 70") != std::string::npos) saw_lp70 = true;
  }
  EXPECT_TRUE(saw_lp80);
  EXPECT_TRUE(saw_lp70);

  // 3. D.2: weigh the incident by synthetic elephant/mice traffic.
  std::vector<bgp::Prefix> all_prefixes;
  for (const auto& r : initial_snapshot) all_prefixes.push_back(r.prefix);
  std::sort(all_prefixes.begin(), all_prefixes.end());
  all_prefixes.erase(std::unique(all_prefixes.begin(), all_prefixes.end()),
                     all_prefixes.end());
  traffic::TrafficMatrix matrix(all_prefixes);
  traffic::FlowGenerator flows(all_prefixes, {}, 13);
  for (int i = 0; i < 20000; ++i) matrix.AddFlow(flows.Next());
  const auto impact = core::AssessTrafficImpact(incident, matrix);
  EXPECT_GT(impact.bytes, 0u);
  EXPECT_GT(impact.volume_fraction, 0.0);

  // 4. D.3: a quiet IGP during the incident reports inactive.
  igp::LsaLog lsa_log;
  const auto igp_corr = core::CorrelateIgp(incident, lsa_log);
  EXPECT_FALSE(igp_corr.igp_active);

  // 5. TAMP animation over the incident window renders frames.
  std::vector<bgp::Event> events(window.begin(), window.end());
  tamp::Animator animator(initial_snapshot, tamp::AnimationOptions{});
  std::string mid_frame_svg;
  animator.Play(events, [&](std::size_t frame, const tamp::Animator::FrameStats&) {
    if (frame != 375) return;
    const auto pruned = tamp::Prune(animator.graph(),
                                    tamp::PruneOptions{.threshold = 0.02});
    const auto layout = tamp::ComputeLayout(pruned);
    mid_frame_svg = tamp::RenderAnimationFrameSvg(
        pruned, layout, animator.DecorationsFor(pruned), 0, std::nullopt);
  });
  EXPECT_NE(mid_frame_svg.find("<svg"), std::string::npos);

  // 6. Collector invariants held throughout.
  EXPECT_EQ(collector.unmatched_withdrawals(), 0u);
  EXPECT_GT(collector.events().size(), snapshot_events);
}

TEST(IntegrationTest, SyntheticScaleSmokeTest) {
  // A Table-I-shaped run at reduced scale: generate a 50k-event stream,
  // stem it, and animate it, end to end.
  workload::InternetOptions net_options;
  net_options.monitored_peers = 8;
  net_options.prefix_count = 4000;
  net_options.origin_as_count = 200;
  net_options.seed = 19;
  const workload::SyntheticInternet internet(net_options);

  workload::EventStreamGenerator gen(internet, 21);
  gen.Churn(0, 60 * kMinute, 10000);
  gen.SessionReset(2, 20 * kMinute, kMinute, 30 * kSecond);
  gen.Tier1Failover(1, 3, 40 * kMinute, kMinute);
  const auto stream = gen.Take();
  ASSERT_GT(stream.size(), 20000u);

  // Stemming over the full stream produces nonempty, disjoint components.
  const auto result = stemming::Stem(stream.events());
  ASSERT_FALSE(result.components.empty());

  // The pipeline turns them into classified incidents.
  core::Pipeline pipeline;
  const auto incidents = pipeline.Analyze(stream);
  ASSERT_FALSE(incidents.empty());
  // Both injected incidents are found and classified.
  bool saw_reset = false;
  bool saw_move = false;
  for (const auto& inc : incidents) {
    saw_reset |= inc.kind == core::IncidentKind::kSessionReset;
    saw_move |= inc.kind == core::IncidentKind::kPathChange ||
                inc.kind == core::IncidentKind::kRouteLeak;
  }
  EXPECT_TRUE(saw_reset);
  EXPECT_TRUE(saw_move);

  // Animation over the whole stream completes with 750 frames.
  tamp::Animator animator(internet.routes(), tamp::AnimationOptions{});
  const auto anim = animator.Play(stream.events());
  EXPECT_EQ(anim.frames.size(), 750u);
  EXPECT_EQ(anim.total_events, stream.size());
}

TEST(IntegrationTest, EventStreamPersistenceRoundTripsSimulatorOutput) {
  workload::BerkeleyOptions options;
  options.commodity_prefixes = 60;
  workload::BerkeleyNet net = workload::BuildBerkeley(options);
  net::Simulator sim(net.topology, 31);
  collector::Collector collector;
  collector.AttachTo(sim, net.monitored);
  net.SeedRoutes(sim);
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(10 * kMinute));

  std::stringstream ss;
  collector.events().SaveText(ss);
  const auto loaded = collector::EventStream::LoadText(ss);
  ASSERT_TRUE(loaded);
  ASSERT_EQ(loaded->size(), collector.events().size());
  for (std::size_t i = 0; i < loaded->size(); ++i) {
    EXPECT_EQ((*loaded)[i].prefix, collector.events()[i].prefix);
    EXPECT_EQ((*loaded)[i].attrs.as_path,
              collector.events()[i].attrs.as_path);
  }
}

}  // namespace
}  // namespace ranomaly
