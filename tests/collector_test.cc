#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "collector/collector.h"
#include "collector/event_stream.h"
#include "net/simulator.h"

namespace ranomaly::collector {
namespace {

using bgp::AsPath;
using bgp::Event;
using bgp::EventType;
using bgp::Ipv4Addr;
using bgp::PathAttributes;
using bgp::Prefix;
using util::kSecond;

const Prefix kP = *Prefix::Parse("192.96.10.0/24");
const Ipv4Addr kPeer(128, 32, 1, 3);

PathAttributes Attrs(AsPath path) {
  PathAttributes a;
  a.nexthop = Ipv4Addr(128, 32, 0, 66);
  a.as_path = std::move(path);
  return a;
}

TEST(CollectorTest, WithdrawalAugmentedWithOldAttributes) {
  Collector collector;
  collector.OnAnnounce(0, kPeer, kP, Attrs({11423, 209}));
  collector.OnWithdraw(kSecond, kPeer, kP);

  const auto& events = collector.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].type, EventType::kWithdraw);
  // The augmentation: the withdrawal carries the withdrawn attributes.
  EXPECT_EQ(events[1].attrs.as_path, (AsPath{11423, 209}));
  EXPECT_EQ(events[1].attrs.nexthop, Ipv4Addr(128, 32, 0, 66));
}

TEST(CollectorTest, UnmatchedWithdrawalCounted) {
  Collector collector;
  collector.OnWithdraw(0, kPeer, kP);
  EXPECT_EQ(collector.events().size(), 0u);
  EXPECT_EQ(collector.unmatched_withdrawals(), 1u);
}

TEST(CollectorTest, ImplicitReplacementKeepsSingleRoute) {
  Collector collector;
  collector.OnAnnounce(0, kPeer, kP, Attrs({1, 2}));
  collector.OnAnnounce(kSecond, kPeer, kP, Attrs({3, 4}));
  EXPECT_EQ(collector.RouteCount(), 1u);
  // Withdrawal after replacement carries the *latest* attributes.
  collector.OnWithdraw(2 * kSecond, kPeer, kP);
  EXPECT_EQ(collector.events().back().attrs.as_path, (AsPath{3, 4}));
}

TEST(CollectorTest, CountsAcrossPeers) {
  Collector collector;
  const Ipv4Addr peer2(128, 32, 1, 200);
  collector.OnAnnounce(0, kPeer, kP, Attrs({1}));
  collector.OnAnnounce(1, peer2, kP, Attrs({2}));
  collector.OnAnnounce(2, peer2, *Prefix::Parse("10.0.0.0/8"), Attrs({2}));
  EXPECT_EQ(collector.RouteCount(), 3u);   // routes
  EXPECT_EQ(collector.PrefixCount(), 2u);  // unique prefixes
  EXPECT_EQ(collector.PeerCount(), 2u);
  EXPECT_EQ(collector.NexthopCount(), 1u);
  EXPECT_EQ(collector.Snapshot().size(), 3u);
}

TEST(CollectorTest, AttachedCollectorSeesSimulatorEvents) {
  net::Topology topo;
  const auto edge = topo.AddRouter(
      net::RouterSpec{"edge", Ipv4Addr(128, 32, 1, 3), 25, 0, false, {}});
  const auto upstream = topo.AddRouter(
      net::RouterSpec{"up", Ipv4Addr(128, 32, 0, 66), 11423, 0, false, {}});
  net::LinkSpec l;
  l.a = edge;
  l.b = upstream;
  l.b_is_as_seen_by_a = net::PeerRelation::kProvider;
  const auto link = topo.AddLink(l);

  net::Simulator sim(std::move(topo));
  Collector collector;
  collector.AttachTo(sim, {edge});
  sim.Originate(upstream, kP);
  sim.Start();
  sim.RunToQuiescence(10 * kSecond);

  ASSERT_EQ(collector.events().size(), 1u);
  EXPECT_EQ(collector.events()[0].type, EventType::kAnnounce);
  EXPECT_EQ(collector.events()[0].peer, Ipv4Addr(128, 32, 1, 3));
  EXPECT_EQ(collector.events()[0].attrs.as_path, (AsPath{11423}));

  // Session loss produces an augmented withdrawal.
  sim.ScheduleLinkDown(link, sim.now() + kSecond);
  sim.RunToQuiescence(sim.now() + 10 * kSecond);
  ASSERT_EQ(collector.events().size(), 2u);
  EXPECT_EQ(collector.events()[1].type, EventType::kWithdraw);
  EXPECT_EQ(collector.events()[1].attrs.as_path, (AsPath{11423}));
  EXPECT_EQ(collector.RouteCount(), 0u);
}

TEST(CollectorTest, IbgpLearnedBestInvisibleToRex) {
  // Edge router whose best moves to an iBGP-learned route: REX sees a
  // withdrawal, not the internal alternative (the Fig 7 "128.32.1.3
  // stopped announcing" effect).
  net::Topology topo;
  const auto e1 = topo.AddRouter(
      net::RouterSpec{"e1", Ipv4Addr(1, 0, 0, 1), 25, 0, false, {}});
  const auto e2 = topo.AddRouter(
      net::RouterSpec{"e2", Ipv4Addr(1, 0, 0, 2), 25, 0, false, {}});
  const auto up1 = topo.AddRouter(
      net::RouterSpec{"up1", Ipv4Addr(2, 0, 0, 1), 100, 0, false, {}});
  const auto up2 = topo.AddRouter(
      net::RouterSpec{"up2", Ipv4Addr(3, 0, 0, 1), 100, 0, false, {}});
  net::LinkSpec mesh;
  mesh.a = e1;
  mesh.b = e2;
  mesh.b_is_as_seen_by_a = net::PeerRelation::kInternal;
  topo.AddLink(mesh);
  net::LinkSpec l1;
  l1.a = e1;
  l1.b = up1;
  l1.b_is_as_seen_by_a = net::PeerRelation::kProvider;
  const auto link1 = topo.AddLink(l1);
  net::LinkSpec l2;
  l2.a = e2;
  l2.b = up2;
  l2.b_is_as_seen_by_a = net::PeerRelation::kProvider;
  topo.AddLink(l2);

  net::Simulator sim(std::move(topo));
  Collector collector;
  collector.AttachTo(sim, {e1});
  sim.Originate(up1, kP);
  sim.Originate(up2, kP);
  sim.Start();
  sim.RunToQuiescence(10 * kSecond);

  // e1's eBGP session drops; its best becomes the iBGP route via e2.
  sim.ScheduleLinkDown(link1, sim.now() + kSecond);
  sim.RunToQuiescence(sim.now() + 10 * kSecond);
  ASSERT_NE(sim.RibOf(e1).Best(kP), nullptr);  // still has an iBGP route
  ASSERT_GE(collector.events().size(), 2u);
  EXPECT_EQ(collector.events().back().type, EventType::kWithdraw);
  EXPECT_EQ(collector.RouteCount(), 0u);  // REX's view of e1 is empty
}

// --- EventStream -----------------------------------------------------------

Event MakeEvent(util::SimTime t, EventType type = EventType::kAnnounce) {
  Event e;
  e.time = t;
  e.peer = kPeer;
  e.type = type;
  e.prefix = kP;
  e.attrs = Attrs({11423, 209});
  return e;
}

TEST(EventStreamTest, RejectsOutOfOrder) {
  EventStream stream;
  stream.Append(MakeEvent(10));
  EXPECT_THROW(stream.Append(MakeEvent(5)), std::invalid_argument);
}

TEST(EventStreamTest, TimeRangeAndWindow) {
  EventStream stream;
  for (int i = 0; i < 10; ++i) stream.Append(MakeEvent(i * kSecond));
  EXPECT_EQ(stream.TimeRange(), 9 * kSecond);
  const auto window = stream.Window(3 * kSecond, 6 * kSecond);
  ASSERT_EQ(window.size(), 3u);  // t = 3,4,5
  EXPECT_EQ(window.front().time, 3 * kSecond);
}

TEST(EventStreamTest, SaveLoadRoundTrip) {
  EventStream stream;
  stream.Append(MakeEvent(100, EventType::kAnnounce));
  stream.Append(MakeEvent(200, EventType::kWithdraw));
  std::stringstream ss;
  stream.SaveText(ss);
  const auto loaded = EventStream::LoadText(ss);
  ASSERT_TRUE(loaded);
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].time, 100);
  EXPECT_EQ((*loaded)[1].type, EventType::kWithdraw);
  EXPECT_EQ((*loaded)[1].attrs.as_path, (AsPath{11423, 209}));
}

TEST(EventStreamTest, LoadRejectsGarbage) {
  std::stringstream ss("not an event line\n");
  EXPECT_FALSE(EventStream::LoadText(ss));
}

TEST(EventStreamTest, LoadSkipsComments) {
  std::stringstream ss("# header\n\n100 A 1.2.3.4 NEXT_HOP: 1.1.1.1 ASPATH: 1 PREFIX: 10.0.0.0/8\n");
  const auto loaded = EventStream::LoadText(ss);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->size(), 1u);
}

TEST(SpikeDetectionTest, FindsBurstWindow) {
  // 1 event/sec baseline for 100s, burst of 200 events at t in [40,42).
  std::vector<util::SimTime> times;
  for (int t = 0; t < 100; ++t) times.push_back(t * kSecond);
  for (int k = 0; k < 200; ++k) {
    times.push_back(40 * kSecond + k * 10 * util::kMillisecond);
  }
  std::sort(times.begin(), times.end());
  EventStream stream;
  for (const util::SimTime t : times) stream.Append(MakeEvent(t));
  const auto spikes = DetectSpikes(stream, kSecond, 5.0);
  ASSERT_EQ(spikes.size(), 1u);
  EXPECT_EQ(spikes[0].begin, 40 * kSecond);
  EXPECT_GE(spikes[0].event_count, 200u);
}

TEST(SpikeDetectionTest, QuietStreamHasNoSpikes) {
  EventStream stream;
  for (int t = 0; t < 50; ++t) stream.Append(MakeEvent(t * kSecond));
  EXPECT_TRUE(DetectSpikes(stream, kSecond, 5.0).empty());
}

}  // namespace
}  // namespace ranomaly::collector
