// The dashboard time-series store: bucket/tier boundaries, ring
// retention, counter-reset rate derivation, histogram quantiles and
// expansion, the series cap, Export/Restore round-trips, and the
// determinism contract — /api/series bytes identical at any
// RANOMALY_THREADS setting.
#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/live.h"
#include "obs/metrics.h"
#include "util/time.h"
#include "workload/eventgen.h"

namespace ranomaly::obs {
namespace {

using util::kMinute;
using util::kSecond;

TimeSeriesOptions SmallOptions() {
  TimeSeriesOptions options;
  options.tiers = {{kSecond, 4}, {10 * kSecond, 3}};
  options.max_series = 8;
  return options;
}

TEST(TimeSeriesStoreTest, EmptyStore) {
  TimeSeriesStore store;
  EXPECT_EQ(store.series_count(), 0u);
  EXPECT_EQ(store.dropped_series(), 0u);
  EXPECT_EQ(store.last_sample(), -1);
  EXPECT_FALSE(store.SeriesJson("nope", kSecond, -1).has_value());
  const std::string list = store.ListJson();
  EXPECT_NE(list.find("\"series\":[]"), std::string::npos) << list;
  EXPECT_NE(list.find("\"last_sample_sec\":null"), std::string::npos) << list;
}

TEST(TimeSeriesStoreTest, HasTierMatchesConfiguredResolutions) {
  TimeSeriesStore store(SmallOptions());
  EXPECT_TRUE(store.HasTier(kSecond));
  EXPECT_TRUE(store.HasTier(10 * kSecond));
  EXPECT_FALSE(store.HasTier(60 * kSecond));
  EXPECT_FALSE(store.HasTier(0));
}

// Samples landing inside one bucket fold (last value wins, min/max
// widen); the next bucket starts a new point.  The coarse tier buckets
// the same observations at its own resolution.
TEST(TimeSeriesStoreTest, BucketBoundariesFoldAndSplit) {
  TimeSeriesStore store(SmallOptions());
  store.Record("g", SeriesKind::kGauge, 0, 5.0);
  store.Record("g", SeriesKind::kGauge, 999'999, 2.0);   // same 1s bucket
  store.Record("g", SeriesKind::kGauge, 1'000'000, 9.0); // next bucket
  const auto fine = store.SeriesJson("g", kSecond, -1);
  ASSERT_TRUE(fine.has_value());
  // Bucket 0 folded: value 2 (last), min 2, max 5.  Bucket 1 fresh.
  EXPECT_NE(fine->find("\"points\":[[0,2,2,5],[1,9,9,9]]"),
            std::string::npos)
      << *fine;
  const auto coarse = store.SeriesJson("g", 10 * kSecond, -1);
  ASSERT_TRUE(coarse.has_value());
  // One 10s bucket holding all three observations.
  EXPECT_NE(coarse->find("\"points\":[[0,9,2,9]]"), std::string::npos)
      << *coarse;
}

// Rings evict their oldest bucket on overflow; the survivor set is the
// newest `capacity` buckets and the oldest survivor's rate is null
// (its predecessor is gone).
TEST(TimeSeriesStoreTest, RetentionWraparound) {
  TimeSeriesStore store(SmallOptions());
  for (int i = 0; i < 10; ++i) {
    store.Record("c", SeriesKind::kCounter, i * kSecond,
                 static_cast<double>(10 * (i + 1)));
  }
  const auto fine = store.SeriesJson("c", kSecond, -1);
  ASSERT_TRUE(fine.has_value());
  EXPECT_NE(
      fine->find("\"points\":[[6,70,null],[7,80,10],[8,90,10],[9,100,10]]"),
      std::string::npos)
      << *fine;
  // The 10s tier saw every observation in a single bucket.
  const auto coarse = store.SeriesJson("c", 10 * kSecond, -1);
  ASSERT_TRUE(coarse.has_value());
  EXPECT_NE(coarse->find("\"points\":[[0,100,null]]"), std::string::npos)
      << *coarse;
}

// A counter that decreases was reset: the rate re-bases at zero instead
// of going negative.
TEST(TimeSeriesStoreTest, CounterResetRebasesRate) {
  TimeSeriesStore store(SmallOptions());
  store.Record("c", SeriesKind::kCounter, 0, 10.0);
  store.Record("c", SeriesKind::kCounter, kSecond, 14.0);
  store.Record("c", SeriesKind::kCounter, 2 * kSecond, 4.0);  // reset
  const auto json = store.SeriesJson("c", kSecond, -1);
  ASSERT_TRUE(json.has_value());
  EXPECT_NE(json->find("\"points\":[[0,10,null],[1,14,4],[2,4,4]]"),
            std::string::npos)
      << *json;
}

// `since` drops points at or before the cursor without disturbing the
// rate derivation (the rate still uses the full ring, so pagination
// never changes a point's bytes).
TEST(TimeSeriesStoreTest, SinceFilterIsPaginationStable) {
  TimeSeriesStore store(SmallOptions());
  for (int i = 0; i < 4; ++i) {
    store.Record("c", SeriesKind::kCounter, i * kSecond,
                 static_cast<double>(i * 3));
  }
  const auto all = store.SeriesJson("c", kSecond, -1);
  const auto tail = store.SeriesJson("c", kSecond, kSecond);
  ASSERT_TRUE(all.has_value());
  ASSERT_TRUE(tail.has_value());
  EXPECT_NE(all->find("[2,6,3]"), std::string::npos) << *all;
  EXPECT_NE(tail->find("[2,6,3]"), std::string::npos) << *tail;
  EXPECT_EQ(tail->find("[1,3,3]"), std::string::npos) << *tail;
}

TEST(TimeSeriesStoreTest, MaxSeriesCapCountsDrops) {
  TimeSeriesOptions options = SmallOptions();
  options.max_series = 2;
  TimeSeriesStore store(options);
  store.Record("a", SeriesKind::kGauge, 0, 1.0);
  store.Record("b", SeriesKind::kGauge, 0, 1.0);
  store.Record("c", SeriesKind::kGauge, 0, 1.0);  // refused
  store.Record("c", SeriesKind::kGauge, kSecond, 2.0);  // refused again
  store.Record("a", SeriesKind::kGauge, kSecond, 2.0);  // existing: fine
  EXPECT_EQ(store.series_count(), 2u);
  EXPECT_EQ(store.dropped_series(), 2u);
  EXPECT_FALSE(store.SeriesJson("c", kSecond, -1).has_value());
}

TEST(HistogramQuantileTest, InterpolatesWithinTheRankBucket) {
  HistogramSnapshot h;
  h.bounds = {1.0, 2.0, 4.0};
  h.counts = {0, 10, 0, 0};  // all mass in (1, 2]
  h.total_count = 10;
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 1.0), 2.0);
}

TEST(HistogramQuantileTest, InfBucketClampsAndEmptyIsZero) {
  HistogramSnapshot empty;
  empty.bounds = {1.0};
  empty.counts = {0, 0};
  EXPECT_DOUBLE_EQ(HistogramQuantile(empty, 0.5), 0.0);

  HistogramSnapshot inf;
  inf.bounds = {1.0, 2.0};
  inf.counts = {0, 0, 5};  // all mass past the last finite bound
  inf.total_count = 5;
  EXPECT_DOUBLE_EQ(HistogramQuantile(inf, 0.99), 2.0);
  // Out-of-range q clamps instead of reading out of bounds.
  EXPECT_DOUBLE_EQ(HistogramQuantile(inf, 7.0), 2.0);
}

TEST(TimeSeriesStoreTest, SampleExpandsHistogramsIntoDerivedSeries) {
  MetricsRegistry registry;
  const MetricId c = registry.Counter("reqs_total");
  const MetricId h = registry.Histogram("lat_seconds", {1.0, 2.0, 4.0});
  registry.Add(c, 3);
  registry.Observe(h, 1.5);
  registry.Observe(h, 1.5);
  TimeSeriesStore store(SmallOptions());
  store.Sample(registry, 5 * kSecond);
  EXPECT_EQ(store.last_sample(), 5 * kSecond);
  const auto count = store.SeriesJson("lat_seconds:count", kSecond, -1);
  ASSERT_TRUE(count.has_value());
  EXPECT_NE(count->find("\"kind\":\"counter\""), std::string::npos) << *count;
  EXPECT_NE(count->find("[5,2,null]"), std::string::npos) << *count;
  const auto p50 = store.SeriesJson("lat_seconds:p50", kSecond, -1);
  ASSERT_TRUE(p50.has_value());
  EXPECT_NE(p50->find("[5,1.5,1.5,1.5]"), std::string::npos) << *p50;
  const auto sum = store.SeriesJson("lat_seconds:sum", kSecond, -1);
  ASSERT_TRUE(sum.has_value());
  EXPECT_NE(sum->find("[5,3,3,3]"), std::string::npos) << *sum;
  ASSERT_TRUE(store.SeriesJson("reqs_total", kSecond, -1).has_value());
}

TEST(TimeSeriesStoreTest, ExportRestoreRoundTripsBytes) {
  TimeSeriesStore store(SmallOptions());
  for (int i = 0; i < 7; ++i) {
    store.Record("c", SeriesKind::kCounter, i * kSecond,
                 static_cast<double>(i * i));
    store.Record("g", SeriesKind::kGauge, i * kSecond, 10.0 - i);
  }
  TimeSeriesStore copy(SmallOptions());
  std::string error;
  ASSERT_TRUE(copy.Restore(store.Export(), &error)) << error;
  EXPECT_EQ(copy.ListJson(), store.ListJson());
  for (const char* name : {"c", "g"}) {
    for (const std::int64_t res : {kSecond, 10 * kSecond}) {
      EXPECT_EQ(copy.SeriesJson(name, res, -1), store.SeriesJson(name, res, -1))
          << name << " @ " << res;
    }
  }
}

TEST(TimeSeriesStoreTest, RestoreRejectsBadState) {
  TimeSeriesStore store(SmallOptions());
  store.Record("c", SeriesKind::kCounter, 0, 1.0);
  std::string error;

  // Tier shape differing from the store's configuration.
  TimeSeriesStore other({{{kSecond, 99}}, 8});
  EXPECT_FALSE(other.Restore(store.Export(), &error));
  EXPECT_NE(error.find("tier"), std::string::npos) << error;

  // Structural violations caught by Validate.
  {
    auto p = store.Export();
    p.series[0].tiers[0][0].t = 17;  // not bucket-aligned
    EXPECT_FALSE(TimeSeriesStore::Validate(p).empty());
    EXPECT_FALSE(store.Restore(std::move(p), &error));
  }
  {
    auto p = store.Export();
    p.series[0].tiers[0].resize(5);  // over the tier's capacity of 4
    for (int i = 0; i < 5; ++i) p.series[0].tiers[0][i].t = i * kSecond;
    EXPECT_FALSE(TimeSeriesStore::Validate(p).empty());
  }
  {
    auto p = store.Export();
    p.series[0].kind = 7;  // no such SeriesKind
    EXPECT_FALSE(TimeSeriesStore::Validate(p).empty());
  }
  {
    auto p = store.Export();
    p.series.push_back(p.series[0]);  // duplicate name
    EXPECT_FALSE(TimeSeriesStore::Validate(p).empty());
  }

  // The store is untouched by every failed restore above.
  EXPECT_TRUE(store.SeriesJson("c", kSecond, -1).has_value());

  // An empty persisted state (no tiers) clears the history.
  TimeSeriesStore cleared(SmallOptions());
  cleared.Record("c", SeriesKind::kCounter, 0, 1.0);
  ASSERT_TRUE(cleared.Restore({}, &error)) << error;
  EXPECT_EQ(cleared.series_count(), 0u);
  EXPECT_EQ(cleared.last_sample(), -1);
}

TEST(TimeSeriesStoreTest, ListJsonSortsNamesAndReportsTiers) {
  TimeSeriesStore store(SmallOptions());
  store.Record("zz", SeriesKind::kGauge, 0, 1.0);
  store.Record("aa", SeriesKind::kCounter, 0, 1.0);
  const std::string list = store.ListJson();
  EXPECT_LT(list.find("\"aa\""), list.find("\"zz\"")) << list;
  EXPECT_NE(list.find("{\"resolution_sec\":1,\"capacity\":4}"),
            std::string::npos)
      << list;
}

// The determinism contract surfaced end to end: replaying the same
// stream through LiveRunner with 1, 2, and 4 analysis threads yields
// byte-identical /api/series JSON for every counter-valued series and
// every simulated-time gauge the dashboard reads.
TEST(TimeSeriesDeterminismTest, SeriesBytesIdenticalAcrossThreadCounts) {
  workload::InternetOptions wopts;
  wopts.monitored_peers = 3;
  wopts.prefix_count = 300;
  wopts.origin_as_count = 60;
  wopts.seed = 7;
  const workload::SyntheticInternet internet(wopts);
  workload::EventStreamGenerator gen(internet, 8);
  gen.SessionReset(0, 10 * kMinute, kMinute, 20 * kSecond);
  gen.Churn(0, 30 * kMinute, 400);
  const collector::EventStream stream = gen.Take();

  const std::vector<std::string> contract = {
      "serve_events_ingested_total",
      "serve_ticks_total",
      "serve_incidents_total",
      "serve_queue_depth",
      "serve_shed_level",
      "serve_replay_position_seconds",
      "incident_detection_latency_seconds:count",
      "incident_detection_latency_seconds:p50",
      "incident_detection_latency_seconds:p90",
      "incident_detection_latency_seconds:p99",
  };

  std::vector<std::string> runs;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    // The registry is process-global; each run must start from zero for
    // its sampled values to be comparable.
    MetricsRegistry::Global().Reset();
    core::LiveOptions options;
    options.tick = 10 * kSecond;
    options.window = 5 * kMinute;
    options.pipeline.threads = threads;
    TimeSeriesStore store;
    core::IncidentLog log;
    core::LiveRunner runner(options, nullptr, &log, &store);
    runner.Run(stream);
    // The store inventory is NOT compared: wall-clock pool metrics only
    // exist when a thread pool does, so the series *set* may differ by
    // thread count — the contract covers the deterministic series' bytes.
    std::string dump;
    for (const std::string& name : contract) {
      for (const std::int64_t res : {kSecond, 10 * kSecond, 60 * kSecond}) {
        const auto json = store.SeriesJson(name, res, -1);
        ASSERT_TRUE(json.has_value()) << name;
        dump += '\n' + *json;
      }
    }
    EXPECT_GT(log.size(), 0u);
    runs.push_back(std::move(dump));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

}  // namespace
}  // namespace ranomaly::obs
