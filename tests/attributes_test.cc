#include <gtest/gtest.h>

#include "bgp/attributes.h"
#include "util/rng.h"

namespace ranomaly::bgp {
namespace {

Event MakeEvent() {
  Event e;
  e.time = 1000;
  e.peer = Ipv4Addr(128, 32, 1, 3);
  e.type = EventType::kWithdraw;
  e.prefix = *Prefix::Parse("192.96.10.0/24");
  e.attrs.nexthop = Ipv4Addr(128, 32, 0, 70);
  e.attrs.as_path = AsPath{11423, 209, 701, 1299, 5713};
  return e;
}

TEST(EventTest, ToStringMatchesFigure4Format) {
  // The paper's Fig 4 line format.
  EXPECT_EQ(MakeEvent().ToString(),
            "W 128.32.1.3 NEXT_HOP: 128.32.0.70 ASPATH: 11423 209 701 1299 "
            "5713 PREFIX: 192.96.10.0/24");
}

TEST(EventTest, ParseRoundTrip) {
  const Event e = MakeEvent();
  const auto parsed = Event::Parse(e.ToString());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->peer, e.peer);
  EXPECT_EQ(parsed->type, e.type);
  EXPECT_EQ(parsed->prefix, e.prefix);
  EXPECT_EQ(parsed->attrs.nexthop, e.attrs.nexthop);
  EXPECT_EQ(parsed->attrs.as_path, e.attrs.as_path);
}

TEST(EventTest, RoundTripWithCommunities) {
  Event e = MakeEvent();
  e.type = EventType::kAnnounce;
  e.attrs.communities.Add(Community(11423, 65350));
  e.attrs.communities.Add(Community(2152, 65297));
  const auto parsed = Event::Parse(e.ToString());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->attrs.communities, e.attrs.communities);
  EXPECT_EQ(parsed->type, EventType::kAnnounce);
}

TEST(EventTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Event::Parse(""));
  EXPECT_FALSE(Event::Parse("X 1.2.3.4 NEXT_HOP: 1.1.1.1 ASPATH: 1 PREFIX: 1.0.0.0/8"));
  EXPECT_FALSE(Event::Parse("A 1.2.3.4 ASPATH: 1 PREFIX: 1.0.0.0/8"));
  EXPECT_FALSE(Event::Parse("A 1.2.3.4 NEXT_HOP: 1.1.1.1 ASPATH: x PREFIX: 1.0.0.0/8"));
  EXPECT_FALSE(Event::Parse("A 1.2.3.4 NEXT_HOP: 1.1.1.1 ASPATH: 1 PREFIX:"));
  EXPECT_FALSE(Event::Parse("A 1.2.3.4 NEXT_HOP: 1.1.1.1 ASPATH: 1"));
}

// Property: ToString/Parse is the identity on random events.
TEST(EventTest, RandomRoundTrip) {
  util::Rng rng(77);
  for (int i = 0; i < 300; ++i) {
    Event e;
    e.peer = Ipv4Addr(static_cast<std::uint32_t>(rng.Next()));
    e.type = rng.NextBool(0.5) ? EventType::kAnnounce : EventType::kWithdraw;
    e.prefix = Prefix(Ipv4Addr(static_cast<std::uint32_t>(rng.Next())),
                      static_cast<std::uint8_t>(rng.NextBelow(33)));
    e.attrs.nexthop = Ipv4Addr(static_cast<std::uint32_t>(rng.Next()));
    const std::size_t path_len = rng.NextBelow(6);
    std::vector<AsNumber> asns;
    for (std::size_t k = 0; k < path_len; ++k) {
      asns.push_back(static_cast<AsNumber>(1 + rng.NextBelow(65000)));
    }
    e.attrs.as_path = AsPath(std::move(asns));
    if (rng.NextBool(0.4)) {
      e.attrs.communities.Add(
          Community(static_cast<std::uint16_t>(rng.NextBelow(65536)),
                    static_cast<std::uint16_t>(rng.NextBelow(65536))));
    }
    const auto parsed = Event::Parse(e.ToString());
    ASSERT_TRUE(parsed) << e.ToString();
    EXPECT_EQ(parsed->peer, e.peer);
    EXPECT_EQ(parsed->type, e.type);
    EXPECT_EQ(parsed->prefix, e.prefix);
    EXPECT_EQ(parsed->attrs.nexthop, e.attrs.nexthop);
    EXPECT_EQ(parsed->attrs.as_path, e.attrs.as_path);
    EXPECT_EQ(parsed->attrs.communities, e.attrs.communities);
  }
}

TEST(PathAttributesTest, ToStringShowsOptionalFields) {
  PathAttributes a;
  a.nexthop = Ipv4Addr(1, 1, 1, 1);
  a.as_path = AsPath{1, 2};
  EXPECT_EQ(a.ToString(), "NEXT_HOP: 1.1.1.1 ASPATH: 1 2");
  a.local_pref = 80;
  a.med = 5;
  a.communities.Add(Community(1, 2));
  const std::string s = a.ToString();
  EXPECT_NE(s.find("LOCALPREF: 80"), std::string::npos);
  EXPECT_NE(s.find("MED: 5"), std::string::npos);
  EXPECT_NE(s.find("COMMUNITY: 1:2"), std::string::npos);
}

TEST(PathAttributesTest, NeighborAs) {
  PathAttributes a;
  EXPECT_FALSE(a.NeighborAs());
  a.as_path = AsPath{7018, 13606};
  EXPECT_EQ(a.NeighborAs(), 7018u);
}

}  // namespace
}  // namespace ranomaly::bgp
