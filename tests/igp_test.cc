#include <gtest/gtest.h>

#include "igp/lsa.h"

namespace ranomaly::igp {
namespace {

Lsa MakeLsa(RouterId origin, std::uint32_t seq,
            std::vector<AdvertisedLink> links, AreaId area = kBackboneArea) {
  Lsa lsa;
  lsa.origin = origin;
  lsa.sequence = seq;
  lsa.links = std::move(links);
  lsa.area = area;
  return lsa;
}

TEST(LinkStateDbTest, InstallAndFreshness) {
  LinkStateDb db;
  EXPECT_EQ(db.Install(MakeLsa(1, 1, {{2, 10}})), LsaDisposition::kInstalledNew);
  EXPECT_EQ(db.Install(MakeLsa(1, 1, {{2, 5}})), LsaDisposition::kIgnoredStale);
  EXPECT_EQ(db.Install(MakeLsa(1, 2, {{2, 5}})),
            LsaDisposition::kInstalledNewer);
  ASSERT_NE(db.Find(kBackboneArea, 1), nullptr);
  EXPECT_EQ(db.Find(kBackboneArea, 1)->links[0].cost, 5u);
  EXPECT_EQ(db.LsaCount(), 1u);
}

TEST(LinkStateDbTest, SpfRequiresTwoWayAdjacency) {
  LinkStateDb db;
  db.Install(MakeLsa(1, 1, {{2, 10}}));
  // Router 2 does not advertise back yet: 2 unreachable.
  auto dist = db.Spf(1);
  EXPECT_FALSE(dist.contains(2));
  db.Install(MakeLsa(2, 1, {{1, 10}}));
  dist = db.Spf(1);
  ASSERT_TRUE(dist.contains(2));
  EXPECT_EQ(dist.at(2), 10u);
}

TEST(LinkStateDbTest, SpfPicksShortestPath) {
  LinkStateDb db;
  // 1 -10- 2 -10- 4 and 1 -5- 3 -5- 4: SPF must find cost 10 via 3.
  db.Install(MakeLsa(1, 1, {{2, 10}, {3, 5}}));
  db.Install(MakeLsa(2, 1, {{1, 10}, {4, 10}}));
  db.Install(MakeLsa(3, 1, {{1, 5}, {4, 5}}));
  db.Install(MakeLsa(4, 1, {{2, 10}, {3, 5}}));
  EXPECT_EQ(db.Cost(1, 4), 10u);
  EXPECT_EQ(db.Cost(4, 1), 10u);
  EXPECT_EQ(db.Cost(1, 2), 10u);
}

TEST(LinkStateDbTest, CostChangeAfterNewLsa) {
  LinkStateDb db;
  db.Install(MakeLsa(1, 1, {{2, 10}}));
  db.Install(MakeLsa(2, 1, {{1, 10}}));
  EXPECT_EQ(db.Cost(1, 2), 10u);
  // A metric change arrives as a newer LSA (what D.3 drills into).
  db.Install(MakeLsa(1, 2, {{2, 100}}));
  db.Install(MakeLsa(2, 2, {{1, 100}}));
  EXPECT_EQ(db.Cost(1, 2), 100u);
}

TEST(LinkStateDbTest, UnreachableReturnsNullopt) {
  LinkStateDb db;
  db.Install(MakeLsa(1, 1, {}));
  EXPECT_FALSE(db.Cost(1, 99));
}

TEST(LinkStateDbTest, MultiAreaStitching) {
  LinkStateDb db;
  // Area 0: 1 - 2 (ABR); area 1: 2 - 3.  Berkeley runs 4-area OSPF.
  db.Install(MakeLsa(1, 1, {{2, 1}}, 0));
  db.Install(MakeLsa(2, 1, {{1, 1}}, 0));
  db.Install(MakeLsa(2, 1, {{3, 2}}, 1));
  db.Install(MakeLsa(3, 1, {{2, 2}}, 1));
  EXPECT_EQ(db.Cost(1, 3), 3u);
  EXPECT_EQ(db.Areas().size(), 2u);
}

TEST(LsaLogTest, EventsNearWindow) {
  LsaLog log;
  using util::kSecond;
  for (int i = 0; i < 10; ++i) {
    log.Record(i * kSecond, MakeLsa(1, static_cast<std::uint32_t>(i), {}),
               LsaDisposition::kInstalledNewer);
  }
  const auto hits = log.EventsNear(5 * kSecond, 2 * kSecond);
  ASSERT_EQ(hits.size(), 5u);  // t = 3,4,5,6,7
  EXPECT_EQ(hits.front().time, 3 * kSecond);
  EXPECT_EQ(hits.back().time, 7 * kSecond);
}

TEST(LsaLogTest, EmptyWindow) {
  LsaLog log;
  log.Record(100 * util::kSecond, MakeLsa(1, 1, {}),
             LsaDisposition::kInstalledNew);
  EXPECT_TRUE(log.EventsNear(0, util::kSecond).empty());
}

}  // namespace
}  // namespace ranomaly::igp
