#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bgp/session.h"

namespace ranomaly::bgp {
namespace {

using util::kSecond;

// Drives a session to Established, returning the actions of the last step.
SessionActions Establish(SessionFsm& fsm, util::SimTime t = 0) {
  fsm.OnInput(SessionInput::kManualStart, t);
  fsm.OnInput(SessionInput::kTcpConnected, t);
  fsm.OnInput(SessionInput::kOpenReceived, t);
  return fsm.OnInput(SessionInput::kKeepaliveReceived, t);
}

TEST(SessionFsmTest, HappyPathToEstablished) {
  SessionFsm fsm;
  EXPECT_EQ(fsm.state(), SessionState::kIdle);
  fsm.OnInput(SessionInput::kManualStart, 0);
  EXPECT_EQ(fsm.state(), SessionState::kConnect);
  const auto open_actions = fsm.OnInput(SessionInput::kTcpConnected, 0);
  EXPECT_TRUE(open_actions.send_open);
  EXPECT_EQ(fsm.state(), SessionState::kOpenSent);
  const auto confirm_actions = fsm.OnInput(SessionInput::kOpenReceived, 0);
  EXPECT_TRUE(confirm_actions.send_keepalive);
  EXPECT_EQ(fsm.state(), SessionState::kOpenConfirm);
  const auto est = fsm.OnInput(SessionInput::kKeepaliveReceived, 0);
  EXPECT_TRUE(est.session_established);
  EXPECT_EQ(fsm.state(), SessionState::kEstablished);
  EXPECT_EQ(fsm.times_established(), 1u);
}

TEST(SessionFsmTest, NotificationDropsEstablishedSession) {
  SessionFsm fsm;
  Establish(fsm);
  const auto actions = fsm.OnInput(SessionInput::kNotificationReceived, 1);
  EXPECT_TRUE(actions.session_dropped);
  EXPECT_EQ(fsm.state(), SessionState::kIdle);
  EXPECT_EQ(fsm.times_dropped(), 1u);
}

TEST(SessionFsmTest, DropBeforeEstablishedIsNotCounted) {
  SessionFsm fsm;
  fsm.OnInput(SessionInput::kManualStart, 0);
  fsm.OnInput(SessionInput::kTcpConnected, 0);
  const auto actions = fsm.OnInput(SessionInput::kTcpFailed, 0);
  EXPECT_FALSE(actions.session_dropped);  // never fully up
  EXPECT_EQ(fsm.times_dropped(), 0u);
  EXPECT_EQ(fsm.state(), SessionState::kIdle);
}

TEST(SessionFsmTest, HoldTimerExpiry) {
  SessionFsm fsm(30 * kSecond);
  Establish(fsm, 0);
  EXPECT_FALSE(fsm.HoldTimerExpired(10 * kSecond));
  // Keepalives refresh the timer.
  fsm.OnInput(SessionInput::kKeepaliveReceived, 25 * kSecond);
  EXPECT_FALSE(fsm.HoldTimerExpired(40 * kSecond));
  EXPECT_TRUE(fsm.HoldTimerExpired(56 * kSecond));
  const auto actions =
      fsm.OnInput(SessionInput::kHoldTimerExpired, 56 * kSecond);
  EXPECT_TRUE(actions.session_dropped);
  EXPECT_TRUE(actions.send_notification);
  EXPECT_EQ(fsm.state(), SessionState::kIdle);
}

TEST(SessionFsmTest, UpdatesRefreshHoldTimer) {
  SessionFsm fsm(30 * kSecond);
  Establish(fsm, 0);
  fsm.OnInput(SessionInput::kUpdateReceived, 25 * kSecond);
  EXPECT_FALSE(fsm.HoldTimerExpired(50 * kSecond));
}

TEST(SessionFsmTest, ReestablishmentCounts) {
  SessionFsm fsm;
  // The Section IV-E customer: dropped and re-established once a minute.
  for (int cycle = 0; cycle < 5; ++cycle) {
    Establish(fsm, cycle * 60 * kSecond);
    fsm.OnInput(SessionInput::kNotificationReceived,
                cycle * 60 * kSecond + 30 * kSecond);
  }
  EXPECT_EQ(fsm.times_established(), 5u);
  EXPECT_EQ(fsm.times_dropped(), 5u);
}

TEST(SessionFsmTest, HoldTimerBoundaryIsNotExpired) {
  // RFC 4271: the timer fires when the interval *exceeds* the hold time.
  SessionFsm fsm(30 * kSecond);
  Establish(fsm, 0);
  EXPECT_FALSE(fsm.HoldTimerExpired(30 * kSecond));      // exactly at bound
  EXPECT_TRUE(fsm.HoldTimerExpired(30 * kSecond + 1));   // one tick past
  fsm.OnInput(SessionInput::kKeepaliveReceived, 30 * kSecond);
  EXPECT_FALSE(fsm.HoldTimerExpired(60 * kSecond));
  EXPECT_TRUE(fsm.HoldTimerExpired(60 * kSecond + 1));
}

TEST(SessionFsmTest, NotificationInEveryNonEstablishedState) {
  // kIdle: notification is a no-op and must not count a drop.
  {
    SessionFsm fsm;
    const auto actions = fsm.OnInput(SessionInput::kNotificationReceived, 0);
    EXPECT_FALSE(actions.session_dropped);
    EXPECT_EQ(fsm.state(), SessionState::kIdle);
    EXPECT_EQ(fsm.times_dropped(), 0u);
  }
  // kConnect, kOpenSent, kOpenConfirm: the handshake collapses back to
  // Idle without counting a drop (the session was never up).
  const std::vector<SessionInput> paths[] = {
      {SessionInput::kManualStart},
      {SessionInput::kManualStart, SessionInput::kTcpConnected},
      {SessionInput::kManualStart, SessionInput::kTcpConnected,
       SessionInput::kOpenReceived},
  };
  const SessionState reached[] = {SessionState::kConnect,
                                  SessionState::kOpenSent,
                                  SessionState::kOpenConfirm};
  for (int i = 0; i < 3; ++i) {
    SessionFsm fsm;
    for (const SessionInput input : paths[i]) fsm.OnInput(input, 0);
    ASSERT_EQ(fsm.state(), reached[i]);
    const auto actions = fsm.OnInput(SessionInput::kNotificationReceived, 1);
    EXPECT_FALSE(actions.session_dropped);
    EXPECT_EQ(fsm.state(), SessionState::kIdle);
    EXPECT_EQ(fsm.times_dropped(), 0u);
    EXPECT_EQ(fsm.times_established(), 0u);
  }
}

TEST(SessionFsmTest, CountersAcrossRepeatedFlapCycles) {
  // Alternate hold-timer and notification drops across many cycles; the
  // counters must track every full up/down transition and the hold timer
  // must re-arm at each establishment.
  SessionFsm fsm(30 * kSecond);
  util::SimTime t = 0;
  for (int cycle = 1; cycle <= 10; ++cycle) {
    Establish(fsm, t);
    EXPECT_EQ(fsm.times_established(), static_cast<std::uint64_t>(cycle));
    EXPECT_FALSE(fsm.HoldTimerExpired(t + 30 * kSecond));
    t += 31 * kSecond;
    if (cycle % 2 == 0) {
      ASSERT_TRUE(fsm.HoldTimerExpired(t));
      EXPECT_TRUE(fsm.OnInput(SessionInput::kHoldTimerExpired, t)
                      .session_dropped);
    } else {
      EXPECT_TRUE(fsm.OnInput(SessionInput::kNotificationReceived, t)
                      .session_dropped);
    }
    EXPECT_EQ(fsm.times_dropped(), static_cast<std::uint64_t>(cycle));
    EXPECT_EQ(fsm.state(), SessionState::kIdle);
    t += kSecond;
  }
}

TEST(SessionFsmTest, HoldExpiryIgnoredWhenIdle) {
  SessionFsm fsm;
  const auto actions = fsm.OnInput(SessionInput::kHoldTimerExpired, 0);
  EXPECT_FALSE(actions.session_dropped);
  EXPECT_FALSE(actions.send_notification);
  EXPECT_FALSE(fsm.HoldTimerExpired(1000 * kSecond));
}

TEST(SessionFsmTest, CollisionShortcutFromConnect) {
  SessionFsm fsm;
  fsm.OnInput(SessionInput::kManualStart, 0);
  const auto actions = fsm.OnInput(SessionInput::kOpenReceived, 0);
  EXPECT_TRUE(actions.send_open);
  EXPECT_TRUE(actions.send_keepalive);
  EXPECT_EQ(fsm.state(), SessionState::kOpenConfirm);
}

TEST(SessionFsmTest, StateNames) {
  EXPECT_STREQ(ToString(SessionState::kEstablished), "Established");
  EXPECT_STREQ(ToString(SessionInput::kHoldTimerExpired), "HoldTimerExpired");
}

}  // namespace
}  // namespace ranomaly::bgp
