#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/pipeline.h"
#include "obs/metrics.h"
#include "workload/eventgen.h"

namespace ranomaly::core {
namespace {

using util::kMinute;
using util::kSecond;

// The event-derived subset of a metrics snapshot: counters and integer
// histograms.  Gauges (last-write-wins) and *_seconds histograms
// (wall-clock) are metering only and excluded from the determinism
// contract (DESIGN.md).
std::vector<std::tuple<std::string, std::uint64_t, std::vector<std::uint64_t>>>
DeterministicMetrics(const std::vector<obs::MetricSnapshot>& snapshot) {
  std::vector<
      std::tuple<std::string, std::uint64_t, std::vector<std::uint64_t>>>
      out;
  for (const obs::MetricSnapshot& m : snapshot) {
    if (m.kind == obs::MetricKind::kGauge) continue;
    if (m.name.ends_with("_seconds")) continue;
    out.emplace_back(m.name, m.counter, m.histogram.counts);
  }
  return out;
}

workload::SyntheticInternet SmallInternet() {
  workload::InternetOptions options;
  options.monitored_peers = 3;
  options.nexthops_per_peer = 2;
  options.tier1_count = 4;
  options.transit_count = 10;
  options.origin_as_count = 50;
  options.prefix_count = 300;
  options.seed = 23;
  return workload::SyntheticInternet(options);
}

TEST(PipelineTest, DetectsSessionResetSpike) {
  const auto internet = SmallInternet();
  workload::EventStreamGenerator gen(internet, 1);
  // Quiet background plus one reset burst.
  gen.Churn(0, 60 * kMinute, 200);
  gen.SessionReset(0, 30 * kMinute, kMinute, 20 * kSecond);
  const auto stream = gen.Take();

  const Pipeline pipeline;
  const auto incidents = pipeline.Analyze(stream);
  ASSERT_FALSE(incidents.empty());
  // The biggest incident is the reset (split per session by the stem:
  // the peer-nexthop pair is the session location).
  const Incident& top = incidents[0];
  EXPECT_EQ(top.kind, IncidentKind::kSessionReset);
  EXPECT_GT(top.event_count, 250u);
  EXPECT_GE(top.evidence.single_peer_fraction, 0.8);
  EXPECT_GE(top.evidence.final_announce_fraction, 0.9);
  EXPECT_FALSE(top.summary.empty());
}

TEST(PipelineTest, DetectsLowGradeOscillationWithoutSpike) {
  // The Section IV-E/IV-F shape: steady grass + a persistent per-prefix
  // flap that no rate detector would flag, caught by the long window.
  const auto internet = SmallInternet();
  workload::EventStreamGenerator gen(internet, 2);
  gen.Churn(0, 2 * util::kHour, 400);
  gen.PrefixOscillation(11, 0, 2 * util::kHour, 15 * kSecond);
  const auto stream = gen.Take();

  const Pipeline pipeline;
  const auto incidents = pipeline.Analyze(stream);
  ASSERT_FALSE(incidents.empty());
  const Incident& top = incidents[0];
  // Correlation may pull a few bystander prefixes sharing the oscillating
  // route's path into the component; the dominant-prefix evidence still
  // marks it as a single-prefix flap.
  EXPECT_GE(top.evidence.dominant_prefix_fraction, 0.8);
  EXPECT_TRUE(top.kind == IncidentKind::kRouteFlap ||
              top.kind == IncidentKind::kMedOscillation)
      << ToString(top.kind);
  EXPECT_GT(top.evidence.cycles_per_prefix, 4.0);
}

TEST(PipelineTest, DetectsPathChangeAfterTier1Failover) {
  const auto internet = SmallInternet();
  workload::EventStreamGenerator gen(internet, 3);
  gen.Tier1Failover(0, 1, 10 * kMinute, kMinute);
  const auto stream = gen.Take();

  const Pipeline pipeline;
  const auto incidents = pipeline.Analyze(stream);
  ASSERT_FALSE(incidents.empty());
  const Incident& top = incidents[0];
  EXPECT_GE(top.prefix_count, 10u);
  EXPECT_LT(top.evidence.restored_fraction, 0.5);
  EXPECT_TRUE(top.kind == IncidentKind::kPathChange ||
              top.kind == IncidentKind::kRouteLeak)
      << ToString(top.kind);
}

TEST(PipelineTest, EmptyStreamYieldsNothing) {
  const Pipeline pipeline;
  EXPECT_TRUE(pipeline.Analyze(collector::EventStream{}).empty());
}

TEST(PipelineTest, DeduplicatesAcrossPasses) {
  // A spike that both passes see must appear once.
  const auto internet = SmallInternet();
  workload::EventStreamGenerator gen(internet, 4);
  gen.SessionReset(1, 10 * kMinute, kMinute, 20 * kSecond);
  const auto stream = gen.Take();

  const Pipeline pipeline;
  const auto incidents = pipeline.Analyze(stream);
  std::set<std::string> stems;
  for (const auto& inc : incidents) {
    EXPECT_TRUE(stems.insert(inc.stem_label).second)
        << "duplicate stem " << inc.stem_label;
  }
}

// --- classifier unit behaviour ------------------------------------------

TEST(ClassifierTest, MedOscillationNeedsMedAndCycles) {
  IncidentEvidence e;
  e.cycles_per_prefix = 100.0;
  e.med_present = true;
  EXPECT_EQ(Pipeline::Classify(e, 1), IncidentKind::kMedOscillation);
  e.med_present = false;
  EXPECT_EQ(Pipeline::Classify(e, 1), IncidentKind::kRouteFlap);
  e.cycles_per_prefix = 1.0;
  EXPECT_NE(Pipeline::Classify(e, 1), IncidentKind::kRouteFlap);
}

TEST(ClassifierTest, LeakNeedsGrowthAndNewAses) {
  IncidentEvidence e;
  e.path_growth = 3.0;
  e.new_as_count = 4;
  EXPECT_EQ(Pipeline::Classify(e, 50), IncidentKind::kRouteLeak);
  e.new_as_count = 0;
  EXPECT_NE(Pipeline::Classify(e, 50), IncidentKind::kRouteLeak);
  e.new_as_count = 4;
  e.path_growth = 0.0;
  EXPECT_NE(Pipeline::Classify(e, 50), IncidentKind::kRouteLeak);
}

TEST(ClassifierTest, ResetNeedsRestoration) {
  IncidentEvidence e;
  e.withdraw_fraction = 0.5;
  e.restored_fraction = 1.0;
  e.final_announce_fraction = 1.0;
  e.single_peer_fraction = 1.0;
  EXPECT_EQ(Pipeline::Classify(e, 100), IncidentKind::kSessionReset);
  e.restored_fraction = 0.1;
  EXPECT_NE(Pipeline::Classify(e, 100), IncidentKind::kSessionReset);
}

TEST(EvidenceTest, ExtractsWithdrawFractionAndCycles) {
  using bgp::Event;
  using bgp::EventType;
  std::vector<Event> events;
  stemming::Component component;
  for (int i = 0; i < 6; ++i) {
    Event e;
    e.time = i * kSecond;
    e.peer = bgp::Ipv4Addr(1, 0, 0, 1);
    e.type = i % 2 == 0 ? EventType::kWithdraw : EventType::kAnnounce;
    e.prefix = *bgp::Prefix::Parse("4.5.0.0/16");
    e.attrs.as_path = bgp::AsPath{1, 2};
    e.attrs.med = 5;
    events.push_back(e);
    component.event_indices.push_back(i);
  }
  component.prefixes = {*bgp::Prefix::Parse("4.5.0.0/16")};
  const auto evidence = Pipeline::ExtractEvidence(events, component);
  EXPECT_DOUBLE_EQ(evidence.withdraw_fraction, 0.5);
  EXPECT_DOUBLE_EQ(evidence.single_peer_fraction, 1.0);
  EXPECT_TRUE(evidence.med_present);
  EXPECT_NEAR(evidence.cycles_per_prefix, 2.5, 1e-9);  // 5 transitions / 2
  EXPECT_DOUBLE_EQ(evidence.restored_fraction, 1.0);
  EXPECT_DOUBLE_EQ(evidence.final_announce_fraction, 1.0);
  EXPECT_DOUBLE_EQ(evidence.dominant_prefix_fraction, 1.0);
  EXPECT_EQ(evidence.new_as_count, 0u);
}

// The determinism contract at pipeline level: the threaded analysis
// (parallel spike windows + sharded stemming) must produce the same
// incidents as threads=1, byte for byte, on a stream mixing several
// anomaly kinds.
TEST(PipelineTest, ThreadedAnalysisMatchesSerial) {
  const auto internet = SmallInternet();
  workload::EventStreamGenerator gen(internet, 5);
  gen.Churn(0, 2 * util::kHour, 600);
  gen.SessionReset(0, 20 * kMinute, kMinute, 20 * kSecond);
  gen.SessionReset(2, 70 * kMinute, kMinute, 20 * kSecond);
  gen.Tier1Failover(0, 1, 100 * kMinute, kMinute);
  gen.PrefixOscillation(11, 0, 2 * util::kHour, 20 * kSecond);
  const auto stream = gen.Take();

  auto& registry = obs::MetricsRegistry::Global();
  PipelineOptions serial_options;
  serial_options.threads = 1;
  const Pipeline serial(serial_options);
  registry.Reset();
  const auto expected = serial.Analyze(stream);
  ASSERT_FALSE(expected.empty());
  const auto expected_metrics = DeterministicMetrics(registry.Snapshot());

  for (const std::size_t threads : {2u, 4u, 8u}) {
    PipelineOptions options;
    options.threads = threads;
    const Pipeline pipeline(options);
    registry.Reset();
    const auto actual = pipeline.Analyze(stream);
    ASSERT_EQ(actual.size(), expected.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].kind, expected[i].kind);
      EXPECT_EQ(actual[i].begin, expected[i].begin);
      EXPECT_EQ(actual[i].end, expected[i].end);
      EXPECT_EQ(actual[i].event_count, expected[i].event_count);
      EXPECT_EQ(actual[i].event_fraction, expected[i].event_fraction);
      EXPECT_EQ(actual[i].prefix_count, expected[i].prefix_count);
      EXPECT_EQ(actual[i].stem_key, expected[i].stem_key);
      EXPECT_EQ(actual[i].stem_label, expected[i].stem_label);
      EXPECT_EQ(actual[i].top_sequence, expected[i].top_sequence);
      EXPECT_EQ(actual[i].summary, expected[i].summary);
      EXPECT_EQ(actual[i].component.event_indices,
                expected[i].component.event_indices);
    }
    // The perf metrics flowed through the threaded path, and every
    // event-derived metric (counters and integer histograms; wall-clock
    // excluded) is bit-identical to the serial run.
    EXPECT_GT(registry.CounterValue("stemming_events_encoded_total"), 0u);
    EXPECT_EQ(DeterministicMetrics(registry.Snapshot()), expected_metrics)
        << "threads=" << threads;
  }
}

// Incidents for the same stem found by a spike window and the long
// window dedup on symbol identity, not on the formatted label.
TEST(PipelineTest, DedupKeysOnStemSymbolsAcrossWindows) {
  const auto internet = SmallInternet();
  workload::EventStreamGenerator gen(internet, 6);
  gen.Churn(0, 60 * kMinute, 200);
  gen.SessionReset(0, 30 * kMinute, kMinute, 20 * kSecond);
  const auto stream = gen.Take();

  const Pipeline pipeline;
  const auto incidents = pipeline.Analyze(stream);
  ASSERT_FALSE(incidents.empty());
  std::set<std::pair<std::uint64_t, std::uint64_t>> keys;
  for (const Incident& inc : incidents) {
    EXPECT_NE(inc.stem_key, (std::pair<std::uint64_t, std::uint64_t>{0, 0}));
    EXPECT_TRUE(keys.insert(inc.stem_key).second)
        << "duplicate stem " << inc.stem_label;
  }
}

}  // namespace
}  // namespace ranomaly::core
