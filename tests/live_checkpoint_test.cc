// Analysis-tier checkpoint/restore: encode/decode round-trips, loud
// section-named rejection of corruption, crash/resume determinism (a
// killed-and-restarted replay produces a bit-identical incident stream),
// and the overload degradation ladder.
#include "core/live_checkpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "collector/checkpoint.h"
#include "core/live.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/timeseries.h"
#include "util/rng.h"
#include "workload/eventgen.h"

namespace ranomaly::core {
namespace {

namespace fs = std::filesystem;
using util::kMinute;
using util::kSecond;

// A capture with one session-reset avalanche plus background churn.
collector::EventStream ResetCapture() {
  workload::InternetOptions options;
  options.monitored_peers = 3;
  options.prefix_count = 300;
  options.origin_as_count = 60;
  options.seed = 7;
  const workload::SyntheticInternet internet(options);
  workload::EventStreamGenerator gen(internet, 8);
  gen.SessionReset(0, 10 * kMinute, kMinute, 20 * kSecond);
  gen.Churn(0, 30 * kMinute, 400);
  return gen.Take();
}

LiveOptions BaseOptions() {
  LiveOptions options;
  options.tick = 10 * kSecond;
  options.window = 5 * kMinute;
  options.slo_target_sec = 30.0;
  return options;
}

struct RunResult {
  LiveStats stats;
  std::string incidents_json;
};

// Runs the stream through a fresh runner; stop_after_ticks > 0 simulates
// an orderly shutdown at that tick boundary (the SIGTERM drain path).
RunResult RunLive(const LiveOptions& options,
                  const collector::EventStream& stream, IncidentLog* log,
                  std::uint64_t stop_after_ticks = 0,
                  obs::TimeSeriesStore* series = nullptr) {
  // The registry is process-global; series-identity assertions need each
  // run's sampled values to start from zero.
  obs::MetricsRegistry::Global().Reset();
  obs::HealthRegistry health;
  std::atomic<bool> keep_going{true};
  LiveRunner runner(options, &health, log, series);
  RunResult result;
  result.stats = runner.Run(
      stream, &keep_going, [&](const LiveStats& s) {
        if (stop_after_ticks > 0 && s.ticks >= stop_after_ticks) {
          keep_going.store(false);
        }
      });
  result.incidents_json = log == nullptr ? "" : log->ToJson(0);
  return result;
}

// A small but fully-populated state for direct encode/decode tests.
LiveCheckpointState SampleState() {
  LiveCheckpointState st;
  st.t0 = 0;
  st.next_event = 42;
  st.stats.ticks = 7;
  st.stats.events_ingested = 42;
  st.stats.incidents = 1;
  st.stats.incidents_within_slo = 1;
  st.stats.clock = 70 * kSecond;
  st.stats.events_shed = 3;
  st.stats.shed_transitions = 2;
  st.shed_level = 1;
  st.calm_ticks = 1;
  st.arrival_index = 40;
  st.tracer_suspended = true;
  st.tracer_was_enabled = true;
  st.shed_windows.push_back(ShedWindow{20 * kSecond, 50 * kSecond, true});
  const std::uint64_t as_sym = (std::uint64_t{3} << 56) | 64500;  // kAs
  st.seen_stems.push_back({as_sym, as_sym + 1});
  st.gaps.push_back(
      LiveGap{bgp::Ipv4Addr(0x0a000001), 30 * kSecond, 40 * kSecond, true});
  PeerBoard::Persisted peer;
  peer.row.peer = bgp::Ipv4Addr(0x0a000001);
  peer.row.announces = 40;
  peer.row.withdraws = 2;
  peer.row.first_seen = 0;
  peer.row.last_seen = 69 * kSecond;
  peer.row.last_gap = 30 * kSecond;
  peer.gap_sec = 10.0;
  st.peers.push_back(peer);
  // In-flight range [40, 42): stream event 40 in the window, 41 queued.
  st.flow_start = 40;
  st.flow = {1, 2};
  IncidentLog::Entry entry;
  entry.seq = 1;
  entry.incident.kind = IncidentKind::kSessionReset;
  entry.incident.begin = 10 * kSecond;
  entry.incident.end = 15 * kSecond;
  entry.incident.event_count = 12;
  entry.incident.prefix_count = 6;
  entry.incident.stem_key = {as_sym, as_sym + 1};
  entry.incident.stem_label = "AS64500 - AS64501";
  entry.incident.summary = "session reset";
  entry.incident.detected_at = 20 * kSecond;
  entry.incident.detection_latency_sec = 10.0;
  st.incidents.push_back(entry);
  st.latency_counts.assign(DetectionLatencyBounds().size() + 1, 0);
  st.latency_counts[3] = 1;  // 10.0 falls in the <=10 bucket
  st.series_store.tiers = {
      {kSecond, 600}, {10 * kSecond, 720}, {60 * kSecond, 1440}};
  st.series_store.last_sample = 70 * kSecond;
  obs::TimeSeriesStore::PersistedSeries series;
  series.name = "serve_events_ingested_total";
  series.kind = 0;  // counter
  series.tiers.resize(3);
  series.tiers[0] = {{60 * kSecond, 30.0, 30.0, 30.0},
                     {70 * kSecond, 42.0, 42.0, 42.0}};
  series.tiers[1] = {{70 * kSecond, 42.0, 42.0, 42.0}};
  series.tiers[2] = {{60 * kSecond, 42.0, 30.0, 42.0}};
  st.series_store.series.push_back(std::move(series));
  st.provenance.caps = obs::ProvenanceCaps{};  // a ledger was attached
  obs::IncidentProvenance prov;
  prov.seq = 1;
  prov.stem_first = as_sym;
  prov.stem_second = as_sym + 1;
  prov.stem = "AS64500 - AS64501";
  prov.kind = "session-reset";
  prov.path = {"live:tick 2", "window:stemming",
               "component:AS64500 - AS64501", "classify:session-reset"};
  prov.window_events = 40;
  prov.component_events = 12;
  prov.component_weight = 11.5;
  prov.events_total = 12;
  obs::ProvenanceEvent pe;
  pe.stream_index = 17;
  pe.time_sec = 12.5;
  pe.type = "A";
  pe.peer = "10.0.0.1";
  pe.prefix = "192.0.2.0/24";
  pe.admission = 1;
  prov.events.push_back(std::move(pe));
  obs::ProvenanceClass pc;
  pc.id = 0;
  pc.weight = 1.0;
  pc.score = 1.0;
  pc.sequence = "peer 10.0.0.1 nexthop 10.1.0.1 AS64500 192.0.2.0/24";
  prov.classes.push_back(std::move(pc));
  prov.classes_total = 1;
  prov.stages = {{"burst-to-ingest", 5.0},
                 {"ingest-to-detect", 5.0},
                 {"total", 10.0}};
  prov.trace_tick = 2;
  st.provenance.records.push_back(std::move(prov));
  return st;
}

// A checkpoint cut at a quiet tick boundary: zero events in flight (the
// FLOW range butts up against the LIVE cursor with count 0), an empty
// incident log, and an all-zero latency histogram.
LiveCheckpointState BoundaryState() {
  LiveCheckpointState st;
  st.t0 = 0;
  st.next_event = 42;
  st.stats.ticks = 7;
  st.stats.events_ingested = 42;
  st.stats.clock = 70 * kSecond;
  st.arrival_index = 42;
  st.flow_start = 42;  // == next_event: nothing in flight
  st.latency_counts.assign(DetectionLatencyBounds().size() + 1, 0);
  return st;
}

std::string TempPath(const char* name) {
  return (fs::temp_directory_path() /
          (std::string("ranomaly_live_ckpt_") + name))
      .string();
}

TEST(LiveCheckpointTest, EncodeDecodeRoundTripsEverySection) {
  const LiveCheckpointState st = SampleState();
  collector::Checkpoint ck;
  EncodeLiveState(st, ck);
  EXPECT_EQ(ck.time, st.stats.clock);
  EXPECT_EQ(ck.event_offset, st.next_event);
  ASSERT_EQ(ck.sections.size(), 10u);

  // Through the full serialized format too.
  std::stringstream ss;
  ASSERT_TRUE(collector::SaveCheckpoint(ck, ss));
  const auto loaded = collector::LoadCheckpoint(ss);
  ASSERT_TRUE(loaded.has_value());

  LiveCheckpointState out;
  std::string error;
  ASSERT_TRUE(DecodeLiveState(*loaded, &out, &error)) << error;
  EXPECT_EQ(out.t0, st.t0);
  EXPECT_EQ(out.next_event, st.next_event);
  EXPECT_EQ(out.stats.ticks, st.stats.ticks);
  EXPECT_EQ(out.stats.events_ingested, st.stats.events_ingested);
  EXPECT_EQ(out.stats.clock, st.stats.clock);
  EXPECT_EQ(out.stats.events_shed, st.stats.events_shed);
  EXPECT_TRUE(out.stats.restored);
  EXPECT_EQ(out.shed_level, st.shed_level);
  EXPECT_EQ(out.arrival_index, st.arrival_index);
  EXPECT_TRUE(out.tracer_suspended);
  ASSERT_EQ(out.shed_windows.size(), 1u);
  EXPECT_EQ(out.shed_windows[0].begin, st.shed_windows[0].begin);
  EXPECT_EQ(out.seen_stems, st.seen_stems);
  ASSERT_EQ(out.gaps.size(), 1u);
  EXPECT_EQ(out.gaps[0].peer.value(), st.gaps[0].peer.value());
  ASSERT_EQ(out.peers.size(), 1u);
  EXPECT_EQ(out.peers[0].row.announces, 40u);
  EXPECT_DOUBLE_EQ(out.peers[0].gap_sec, 10.0);
  EXPECT_EQ(out.flow_start, st.flow_start);
  EXPECT_EQ(out.flow, st.flow);
  EXPECT_EQ(out.stats.queue_depth, 1u);  // one class-2 entry
  ASSERT_EQ(out.incidents.size(), 1u);
  EXPECT_EQ(out.incidents[0].incident.stem_label, "AS64500 - AS64501");
  EXPECT_DOUBLE_EQ(out.incidents[0].incident.detection_latency_sec, 10.0);
  EXPECT_EQ(out.latency_counts, st.latency_counts);
  ASSERT_EQ(out.series_store.tiers.size(), 3u);
  EXPECT_EQ(out.series_store.last_sample, 70 * kSecond);
  ASSERT_EQ(out.series_store.series.size(), 1u);
  EXPECT_EQ(out.series_store.series[0].name, "serve_events_ingested_total");
  ASSERT_EQ(out.series_store.series[0].tiers[0].size(), 2u);
  EXPECT_EQ(out.series_store.series[0].tiers[0][1].t, 70 * kSecond);
  EXPECT_DOUBLE_EQ(out.series_store.series[0].tiers[0][1].value, 42.0);
  EXPECT_DOUBLE_EQ(out.series_store.series[0].tiers[2][0].min, 30.0);
  EXPECT_EQ(out.provenance.caps, st.provenance.caps);
  EXPECT_EQ(out.provenance.evicted, st.provenance.evicted);
  ASSERT_EQ(out.provenance.records.size(), 1u);
  EXPECT_EQ(out.provenance.records[0], st.provenance.records[0]);
}

TEST(LiveCheckpointTest, DeterministicBytes) {
  const LiveCheckpointState st = SampleState();
  collector::Checkpoint a, b;
  EncodeLiveState(st, a);
  EncodeLiveState(st, b);
  std::stringstream sa, sb;
  ASSERT_TRUE(collector::SaveCheckpoint(a, sa));
  ASSERT_TRUE(collector::SaveCheckpoint(b, sb));
  EXPECT_EQ(sa.str(), sb.str());
}

// Every rejection must name the failing section — no silent partial
// restore, and no guessing which state was bad.
TEST(LiveCheckpointTest, RejectionNamesTheFailingSection) {
  const auto decode_error = [](collector::Checkpoint ck) {
    LiveCheckpointState out;
    std::string error;
    EXPECT_FALSE(DecodeLiveState(ck, &out, &error));
    return error;
  };
  const auto tampered = [](const char* tag,
                           const std::function<void(std::string&)>& fn) {
    collector::Checkpoint ck;
    EncodeLiveState(SampleState(), ck);
    for (auto& s : ck.sections) {
      if (s.tag == tag) fn(s.bytes);
    }
    return ck;
  };

  // Missing section.
  {
    collector::Checkpoint ck;
    EncodeLiveState(SampleState(), ck);
    ck.sections.erase(ck.sections.begin() + 1);  // SHED
    EXPECT_NE(decode_error(std::move(ck)).find("SHED"), std::string::npos);
  }
  // Truncated section.
  EXPECT_NE(decode_error(tampered("PEER", [](std::string& b) {
              b.resize(b.size() / 2);
            })).find("PEER"),
            std::string::npos);
  // Invalid stem symbol (kind byte zeroed-out is not a tagged symbol).
  EXPECT_NE(decode_error(tampered("STEM", [](std::string& b) {
              b[b.size() - 1] = 0x7f;  // high byte of the last raw symbol
            })).find("STEM"),
            std::string::npos);
  // Non-contiguous incident sequence.
  EXPECT_NE(decode_error(tampered("INCD", [](std::string& b) {
              b[9] = 5;  // the u64 seq of entry 0 (after version + count)
            })).find("INCD"),
            std::string::npos);
  // Histogram counts disagreeing with the incident log.
  EXPECT_NE(decode_error(tampered("SLOH", [](std::string& b) {
              b[b.size() - 1] ^= 1;  // bump the overflow bucket
            })).find("SLOH"),
            std::string::npos);
  // Unsupported section layout version.
  EXPECT_NE(decode_error(tampered("GAPS", [](std::string& b) {
              b[0] = 9;
            })).find("GAPS"),
            std::string::npos);
  // Reserved admission class in the FLOW bit-packing.
  EXPECT_NE(decode_error(tampered("FLOW", [](std::string& b) {
              b[b.size() - 1] = 0x03;  // entry 0 -> class 3
            })).find("FLOW"),
            std::string::npos);
  // FLOW range detached from the LIVE cursor.
  EXPECT_NE(decode_error(tampered("FLOW", [](std::string& b) {
              b[1] ^= 1;  // low byte of flow_start
            })).find("FLOW"),
            std::string::npos);
  // Truncated series store.
  EXPECT_NE(decode_error(tampered("SERS", [](std::string& b) {
              b.resize(b.size() / 2);
            })).find("SERS"),
            std::string::npos);
  // Unsupported SERS layout version.
  EXPECT_NE(decode_error(tampered("SERS", [](std::string& b) {
              b[0] = 9;
            })).find("SERS"),
            std::string::npos);
  // Truncated provenance ledger.
  EXPECT_NE(decode_error(tampered("PROV", [](std::string& b) {
              b.resize(b.size() / 2);
            })).find("PROV"),
            std::string::npos);
  // Unsupported PROV layout version.
  EXPECT_NE(decode_error(tampered("PROV", [](std::string& b) {
              b[0] = 9;
            })).find("PROV"),
            std::string::npos);
  // Provenance record seq diverging from the incident log (the u64 seq
  // of record 0 sits after version + caps + evicted + count = 25 bytes).
  EXPECT_NE(decode_error(tampered("PROV", [](std::string& b) {
              b[25] = 5;
            })).find("PROV"),
            std::string::npos);
}

// PROV semantic violations that survive byte-level parsing must still
// be loud: evidence claiming a different incident than INCD logged,
// counts disagreeing with the log, caps abuse, and per-record invariant
// breaks.
TEST(LiveCheckpointTest, ProvenanceViolationsAreRejected) {
  const auto decode_error = [](const collector::Checkpoint& ck) {
    LiveCheckpointState out;
    std::string error;
    EXPECT_FALSE(DecodeLiveState(ck, &out, &error));
    return error;
  };
  const auto encoded = [](const LiveCheckpointState& st) {
    collector::Checkpoint ck;
    EncodeLiveState(st, ck);
    return ck;
  };
  {
    // Stem key disagreeing with the INCD entry it claims to explain.
    LiveCheckpointState st = SampleState();
    st.provenance.records[0].stem_first ^= 1;
    const std::string error = decode_error(encoded(st));
    EXPECT_NE(error.find("PROV"), std::string::npos) << error;
    EXPECT_NE(error.find("stem key"), std::string::npos) << error;
  }
  {
    // Record + evicted count disagreeing with the incident log.
    LiveCheckpointState st = SampleState();
    st.provenance.records.clear();
    const std::string error = decode_error(encoded(st));
    EXPECT_NE(error.find("PROV"), std::string::npos) << error;
    EXPECT_NE(error.find("incident log"), std::string::npos) << error;
  }
  {
    // The zero-caps "no ledger" sentinel may not carry records.
    LiveCheckpointState st = SampleState();
    st.provenance.caps = {0, 0, 0};
    const std::string error = decode_error(encoded(st));
    EXPECT_NE(error.find("PROV"), std::string::npos) << error;
  }
  {
    // Caps beyond the hard bounds.
    LiveCheckpointState st = SampleState();
    st.provenance.caps.max_incidents = obs::kMaxProvenanceIncidents + 1;
    const std::string error = decode_error(encoded(st));
    EXPECT_NE(error.find("PROV"), std::string::npos) << error;
  }
  {
    // Reserved admission class on a sampled event.
    LiveCheckpointState st = SampleState();
    st.provenance.records[0].events[0].admission = 2;
    const std::string error = decode_error(encoded(st));
    EXPECT_NE(error.find("PROV"), std::string::npos) << error;
  }
  {
    // Class ids must be in first-occurrence order.
    LiveCheckpointState st = SampleState();
    st.provenance.records[0].classes[0].id = 3;
    const std::string error = decode_error(encoded(st));
    EXPECT_NE(error.find("PROV"), std::string::npos) << error;
  }
  {
    // More sampled events than the record claims contributed.
    LiveCheckpointState st = SampleState();
    st.provenance.records[0].events_total = 0;
    const std::string error = decode_error(encoded(st));
    EXPECT_NE(error.find("PROV"), std::string::npos) << error;
  }
  {
    // A component cannot be larger than the window it came from.
    LiveCheckpointState st = SampleState();
    st.provenance.records[0].component_events =
        st.provenance.records[0].window_events + 1;
    const std::string error = decode_error(encoded(st));
    EXPECT_NE(error.find("PROV"), std::string::npos) << error;
  }
}

// SERS semantic violations that survive byte-level parsing must still be
// loud: a sample stamped after the tick boundary, a point off the bucket
// grid, and an overfull ring.
TEST(LiveCheckpointTest, SeriesStoreViolationsAreRejected) {
  const auto decode_error = [](const collector::Checkpoint& ck) {
    LiveCheckpointState out;
    std::string error;
    EXPECT_FALSE(DecodeLiveState(ck, &out, &error));
    return error;
  };
  const auto encoded = [](const LiveCheckpointState& st) {
    collector::Checkpoint ck;
    EncodeLiveState(st, ck);
    return ck;
  };
  {
    LiveCheckpointState st = SampleState();
    st.series_store.last_sample = st.stats.clock + 1;
    const std::string error = decode_error(encoded(st));
    EXPECT_NE(error.find("SERS"), std::string::npos) << error;
    EXPECT_NE(error.find("after the tick boundary"), std::string::npos)
        << error;
  }
  {
    LiveCheckpointState st = SampleState();
    st.series_store.series[0].tiers[0][0].t = 17;  // off the 1s grid
    const std::string error = decode_error(encoded(st));
    EXPECT_NE(error.find("SERS"), std::string::npos) << error;
  }
  {
    LiveCheckpointState st = SampleState();
    auto& ring = st.series_store.series[0].tiers[1];
    ring.clear();
    for (int i = 0; i < 721; ++i) {  // capacity is 720
      ring.push_back({i * 10 * kSecond, 1.0, 1.0, 1.0});
    }
    const std::string error = decode_error(encoded(st));
    EXPECT_NE(error.find("SERS"), std::string::npos) << error;
  }
  {
    LiveCheckpointState st = SampleState();
    st.series_store.series[0].kind = 7;  // no such SeriesKind
    const std::string error = decode_error(encoded(st));
    EXPECT_NE(error.find("SERS"), std::string::npos) << error;
  }
}

// The quiet-boundary shape (FLOW count 0, empty incident log, all-zero
// SLOH) is what every orderly shutdown writes; it must round-trip
// exactly, not just the fully-populated SampleState.
TEST(LiveCheckpointTest, FlowBoundaryWithNothingInFlightRoundTrips) {
  const LiveCheckpointState st = BoundaryState();
  collector::Checkpoint ck;
  EncodeLiveState(st, ck);
  std::stringstream ss;
  ASSERT_TRUE(collector::SaveCheckpoint(ck, ss));
  const auto loaded = collector::LoadCheckpoint(ss);
  ASSERT_TRUE(loaded.has_value());
  LiveCheckpointState out;
  std::string error;
  ASSERT_TRUE(DecodeLiveState(*loaded, &out, &error)) << error;
  EXPECT_EQ(out.next_event, st.next_event);
  EXPECT_EQ(out.flow_start, out.next_event);
  EXPECT_TRUE(out.flow.empty());
  EXPECT_EQ(out.stats.queue_depth, 0u);
  EXPECT_TRUE(out.incidents.empty());
  EXPECT_EQ(out.latency_counts, st.latency_counts);
}

// Torture cases for the FLOW section edges: a zero-count range detached
// from the LIVE cursor, bytes past a whole number of packed groups, and
// nonzero bits in the final byte's padding must all be loud rejections.
TEST(LiveCheckpointTest, FlowBoundaryViolationsAreRejected) {
  const auto decode_error = [](const collector::Checkpoint& ck) {
    LiveCheckpointState out;
    std::string error;
    EXPECT_FALSE(DecodeLiveState(ck, &out, &error));
    return error;
  };
  const auto tampered_flow = [](const LiveCheckpointState& st,
                                const std::function<void(std::string&)>& fn) {
    collector::Checkpoint ck;
    EncodeLiveState(st, ck);
    for (auto& s : ck.sections) {
      if (s.tag == "FLOW") fn(s.bytes);
    }
    return ck;
  };

  // Empty range that does not butt up against the cursor: with count 0,
  // flow_start must equal next_event exactly.
  {
    const std::string error = decode_error(
        tampered_flow(BoundaryState(), [](std::string& b) { b[1] ^= 1; }));
    EXPECT_NE(error.find("FLOW"), std::string::npos) << error;
    EXPECT_NE(error.find("disagrees with the LIVE cursor"),
              std::string::npos)
        << error;
  }
  // count == 0 means zero packed bytes; a stray trailing byte is not a
  // legitimate partial group.
  {
    const std::string error = decode_error(tampered_flow(
        BoundaryState(), [](std::string& b) { b.push_back('\0'); }));
    EXPECT_NE(error.find("FLOW"), std::string::npos) << error;
    EXPECT_NE(error.find("trailing bytes"), std::string::npos) << error;
  }
  // SampleState carries two in-flight entries, so the final packed byte
  // has six padding bits that must stay zero.
  {
    const std::string error = decode_error(tampered_flow(
        SampleState(),
        [](std::string& b) { b[b.size() - 1] |= 0xF0; }));
    EXPECT_NE(error.find("FLOW"), std::string::npos) << error;
    EXPECT_NE(error.find("nonzero padding"), std::string::npos) << error;
  }
}

// The tentpole guarantee: kill at a tick boundary, restart from the
// checkpoint, and the incident stream is bit-identical to a run that was
// never interrupted — including `/incidents?since=` JSON.
TEST(LiveCheckpointTest, ResumedRunIsBitIdenticalToUninterruptedRun) {
  const collector::EventStream stream = ResetCapture();
  const LiveOptions plain = BaseOptions();

  IncidentLog uninterrupted;
  obs::TimeSeriesStore want_store;
  const RunResult want = RunLive(plain, stream, &uninterrupted, 0, &want_store);
  ASSERT_GT(want.stats.incidents, 0u) << "workload produced no incidents";

  const std::string path = TempPath("resume");
  fs::remove(path);
  LiveOptions durable = plain;
  durable.checkpoint_path = path;
  durable.checkpoint_every_ticks = 4;

  // First life: stopped after 6 ticks; the final checkpoint lands at the
  // boundary the drain finished on.
  IncidentLog first_life;
  obs::TimeSeriesStore first_store;
  const RunResult partial = RunLive(durable, stream, &first_life, 6,
                                    &first_store);
  EXPECT_FALSE(partial.stats.restored);
  EXPECT_LT(partial.stats.events_ingested, want.stats.events_ingested);
  ASSERT_TRUE(fs::exists(path));

  // Second life: restores and replays forward to the same end state.
  IncidentLog second_life;
  obs::TimeSeriesStore second_store;
  const RunResult resumed = RunLive(durable, stream, &second_life, 0,
                                    &second_store);
  EXPECT_TRUE(resumed.stats.restored);
  EXPECT_EQ(resumed.stats.ticks, want.stats.ticks);
  EXPECT_EQ(resumed.stats.events_ingested, want.stats.events_ingested);
  EXPECT_EQ(resumed.stats.incidents, want.stats.incidents);
  EXPECT_EQ(resumed.stats.incidents_within_slo,
            want.stats.incidents_within_slo);
  EXPECT_EQ(resumed.incidents_json, want.incidents_json);
  // The dashboard history crossed the kill: the SERS section seeded the
  // second life's rings, and its post-restore samples continued exactly
  // where an uninterrupted run would have been — byte-identical
  // /api/series JSON for every determinism-contract series.
  EXPECT_GT(second_store.series_count(), 0u);
  for (const char* name :
       {"serve_events_ingested_total", "serve_ticks_total",
        "serve_incidents_total", "serve_replay_position_seconds",
        "incident_detection_latency_seconds:count",
        "incident_detection_latency_seconds:p90"}) {
    for (const std::int64_t res : {kSecond, 10 * kSecond, 60 * kSecond}) {
      const auto got = second_store.SeriesJson(name, res, -1);
      const auto expected = want_store.SeriesJson(name, res, -1);
      ASSERT_TRUE(got.has_value()) << name;
      EXPECT_EQ(*got, *expected) << name << " @ " << res;
    }
  }
  fs::remove(path);
}

// Restore across several successive kills (each life advances a little)
// still converges to the uninterrupted incident stream.
TEST(LiveCheckpointTest, RepeatedKillsStillConverge) {
  const collector::EventStream stream = ResetCapture();
  IncidentLog uninterrupted;
  const RunResult want = RunLive(BaseOptions(), stream, &uninterrupted);

  const std::string path = TempPath("repeated");
  fs::remove(path);
  LiveOptions durable = BaseOptions();
  durable.checkpoint_path = path;
  durable.checkpoint_every_ticks = 2;

  RunResult last;
  for (int life = 0; life < 6; ++life) {
    IncidentLog log;
    last = RunLive(durable, stream, &log, 17);  // dies young every time
    if (last.stats.ticks >= want.stats.ticks) break;
  }
  IncidentLog log;
  last = RunLive(durable, stream, &log);
  EXPECT_EQ(last.incidents_json, want.incidents_json);
  fs::remove(path);
}

TEST(LiveCheckpointTest, CorruptFileFallsBackToFreshReplayLoudly) {
  const collector::EventStream stream = ResetCapture();
  IncidentLog fresh;
  const RunResult want = RunLive(BaseOptions(), stream, &fresh);

  const std::string path = TempPath("corrupt");
  {
    std::ofstream os(path, std::ios::binary);
    os << "RNC1 but not really: twenty bytes of junk follow ...........";
  }
  LiveOptions durable = BaseOptions();
  durable.checkpoint_path = path;
  const std::uint64_t failures_before =
      obs::MetricsRegistry::Global().CounterValue(
          "serve_restore_failures_total");
  IncidentLog log;
  const RunResult got = RunLive(durable, stream, &log);
  EXPECT_FALSE(got.stats.restored);
  EXPECT_EQ(got.incidents_json, want.incidents_json);
  EXPECT_GT(obs::MetricsRegistry::Global().CounterValue(
                "serve_restore_failures_total"),
            failures_before);
  fs::remove(path);
}

TEST(LiveCheckpointTest, CheckpointFromForeignStreamIsRejected) {
  const collector::EventStream stream = ResetCapture();
  const std::string path = TempPath("foreign");
  fs::remove(path);

  // Cut a checkpoint from a different (shifted) stream.
  workload::InternetOptions options;
  options.seed = 99;
  const workload::SyntheticInternet internet(options);
  workload::EventStreamGenerator gen(internet, 9);
  gen.Churn(5 * kMinute, 20 * kMinute, 200);
  const collector::EventStream foreign = gen.Take();
  LiveOptions durable = BaseOptions();
  durable.checkpoint_path = path;
  durable.checkpoint_every_ticks = 4;
  {
    IncidentLog log;
    RunLive(durable, foreign, &log);
  }
  ASSERT_TRUE(fs::exists(path));

  IncidentLog fresh;
  const RunResult want = RunLive(BaseOptions(), stream, &fresh);
  IncidentLog log;
  const RunResult got = RunLive(durable, stream, &log);
  EXPECT_FALSE(got.stats.restored);  // t0 mismatch -> fresh replay
  EXPECT_EQ(got.incidents_json, want.incidents_json);
  fs::remove(path);
}

// Torture: every single-bit flip and every truncation of a real live
// checkpoint file must be rejected (CRC, framing, or section validation)
// — never a silent partial restore, never a crash.
TEST(LiveCheckpointTest, TortureEveryBitFlipAndTruncationIsRejected) {
  const LiveCheckpointState st = SampleState();
  collector::Checkpoint ck;
  EncodeLiveState(st, ck);
  std::stringstream ss;
  ASSERT_TRUE(collector::SaveCheckpoint(ck, ss));
  const std::string good = ss.str();

  const auto rejects = [](const std::string& bytes) {
    std::stringstream is(bytes);
    const auto loaded = collector::LoadCheckpoint(is);
    if (!loaded.has_value()) return true;  // framing/CRC caught it
    LiveCheckpointState out;
    std::string error;
    const bool ok = DecodeLiveState(*loaded, &out, &error);
    EXPECT_TRUE(ok || !error.empty());  // failures always carry a reason
    return !ok;
  };

  // The unmodified file must load (sanity for the harness itself).
  {
    std::stringstream is(good);
    const auto loaded = collector::LoadCheckpoint(is);
    ASSERT_TRUE(loaded.has_value());
    LiveCheckpointState out;
    std::string error;
    ASSERT_TRUE(DecodeLiveState(*loaded, &out, &error)) << error;
  }

  util::Rng rng(20260807);
  for (int round = 0; round < 400; ++round) {
    std::string bad = good;
    const std::size_t byte = rng.NextBelow(bad.size());
    bad[byte] = static_cast<char>(bad[byte] ^ (1u << rng.NextBelow(8)));
    EXPECT_TRUE(rejects(bad)) << "bit flip in byte " << byte
                              << " was accepted";
  }
  for (int round = 0; round < 200; ++round) {
    std::string bad = good.substr(0, rng.NextBelow(good.size()));
    EXPECT_TRUE(rejects(bad)) << "truncation to " << bad.size()
                              << " bytes was accepted";
  }
}

// ---------------------------------------------------------------------------
// Overload / degradation ladder

TEST(LiveShedTest, BurstDrivesLadderUpAndHysteresisBringsItDown) {
  // Hand-built stream: light background, then a burst that outruns the
  // service rate, then a long calm tail.  Arrival arithmetic is chosen so
  // the fill fraction crosses the L1, L2, and L3 watermarks on distinct
  // ticks (no stage is skipped).
  collector::EventStream stream;
  const auto add = [&stream](util::SimTime t, std::uint32_t salt) {
    bgp::Event e;
    e.time = t;
    e.peer = bgp::Ipv4Addr(0x0a000001);
    e.type = bgp::EventType::kAnnounce;
    e.prefix = bgp::Prefix(bgp::Ipv4Addr(0xc0000000 + (salt << 8)), 24);
    e.attrs.nexthop = bgp::Ipv4Addr(0x0a010001);
    e.attrs.as_path = bgp::AsPath({100, 200 + salt % 7});
    stream.Append(e);
  };
  std::uint32_t salt = 0;
  for (int tick = 0; tick < 60; ++tick) {
    const util::SimTime base = tick * 10 * kSecond;
    const int arrivals = (tick >= 5 && tick < 11) ? 80 : 1;  // the burst
    for (int i = 0; i < arrivals; ++i) {
      add(base + i * (9 * kSecond) / arrivals, salt++);
    }
  }

  LiveOptions options = BaseOptions();
  options.shed.queue_capacity = 300;
  options.shed.service_rate = 20;
  options.shed.recovery_ticks = 2;
  options.shed.sample_stride = 4;

  obs::HealthRegistry health;
  IncidentLog log;
  LiveRunner runner(options, &health, &log);
  std::vector<int> levels;
  std::uint64_t max_depth = 0;
  bool saw_ingest_degraded = false;
  const LiveStats stats =
      runner.Run(stream, nullptr, [&](const LiveStats& s) {
        levels.push_back(s.shed_level);
        max_depth = std::max(max_depth, s.queue_depth);
        if (s.shed_level > 0) {
          for (const auto& c : health.Snapshot()) {
            if (c.name == "ingest" &&
                c.state == obs::HealthState::kDegraded &&
                c.reason.find("load shed") != std::string::npos) {
              saw_ingest_degraded = true;
            }
          }
        }
      });

  // The ladder passed through every stage on the way up...
  for (const int stage : {1, 2, 3}) {
    EXPECT_NE(std::find(levels.begin(), levels.end(), stage), levels.end())
        << "ladder never reached L" << stage;
  }
  // ...never skipped a stage...
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LE(levels[i] - levels[i - 1], 1) << "escalation skipped a stage";
  }
  // ...and recovered fully once the burst drained.
  EXPECT_EQ(levels.back(), 0) << "ladder never recovered";
  EXPECT_EQ(stats.shed_level, 0);
  // Hysteresis: recovery takes at least recovery_ticks per stage.
  const auto first_l3 = std::find(levels.begin(), levels.end(), 3);
  const auto back_to_0 = std::find(first_l3, levels.end(), 0);
  ASSERT_NE(first_l3, levels.end());
  ASSERT_NE(back_to_0, levels.end());
  EXPECT_GE(back_to_0 - first_l3,
            static_cast<std::ptrdiff_t>(3 * options.shed.recovery_ticks));

  EXPECT_LE(max_depth, options.shed.queue_capacity)
      << "the queue bound was exceeded";
  EXPECT_GT(stats.events_shed, 0u) << "L3 never sampled anything out";
  EXPECT_GE(stats.shed_transitions, 6u);  // 3 up + 3 down
  EXPECT_TRUE(saw_ingest_degraded);
  // Every ingested-or-shed arrival is accounted for.
  EXPECT_EQ(stats.events_ingested, stream.size());
}

TEST(LiveShedTest, BackpressureOffIsByteIdenticalToPlainReplay) {
  const collector::EventStream stream = ResetCapture();
  IncidentLog plain, shed_off;
  const RunResult a = RunLive(BaseOptions(), stream, &plain);
  LiveOptions options = BaseOptions();
  options.shed.queue_capacity = 0;  // explicit: disabled
  const RunResult b = RunLive(options, stream, &shed_off);
  EXPECT_EQ(a.incidents_json, b.incidents_json);
  EXPECT_EQ(a.stats.ticks, b.stats.ticks);
  EXPECT_EQ(b.stats.events_shed, 0u);
}

TEST(LiveShedTest, ShedStateSurvivesRestart) {
  // Kill the runner while the ladder is elevated; the restored run must
  // continue from the same ladder state and still converge with the
  // uninterrupted run's incident stream.
  collector::EventStream stream;
  const auto add = [&stream](util::SimTime t, std::uint32_t salt) {
    bgp::Event e;
    e.time = t;
    e.peer = bgp::Ipv4Addr(0x0a000002);
    e.type = bgp::EventType::kAnnounce;
    e.prefix = bgp::Prefix(bgp::Ipv4Addr(0xc6000000 + (salt << 8)), 24);
    e.attrs.nexthop = bgp::Ipv4Addr(0x0a010002);
    e.attrs.as_path = bgp::AsPath({100, 300 + salt % 5});
    stream.Append(e);
  };
  std::uint32_t salt = 0;
  for (int tick = 0; tick < 40; ++tick) {
    const int arrivals = (tick >= 3 && tick < 9) ? 80 : 1;
    for (int i = 0; i < arrivals; ++i) {
      add(tick * 10 * kSecond + i * (9 * kSecond) / arrivals, salt++);
    }
  }
  LiveOptions options = BaseOptions();
  options.shed.queue_capacity = 300;
  options.shed.service_rate = 20;
  options.shed.recovery_ticks = 2;

  IncidentLog uninterrupted;
  const RunResult want = RunLive(options, stream, &uninterrupted);

  const std::string path = TempPath("shed_restart");
  fs::remove(path);
  LiveOptions durable = options;
  durable.checkpoint_path = path;
  durable.checkpoint_every_ticks = 1;
  {
    IncidentLog log;
    const RunResult first = RunLive(durable, stream, &log, 8);
    EXPECT_GT(first.stats.shed_level, 0) << "kill did not land mid-overload";
  }
  IncidentLog log;
  const RunResult resumed = RunLive(durable, stream, &log);
  EXPECT_TRUE(resumed.stats.restored);
  EXPECT_EQ(resumed.incidents_json, want.incidents_json);
  EXPECT_EQ(resumed.stats.events_shed, want.stats.events_shed);
  EXPECT_EQ(resumed.stats.shed_transitions, want.stats.shed_transitions);
  fs::remove(path);
}

}  // namespace
}  // namespace ranomaly::core
