#include <gtest/gtest.h>

#include "collector/collector.h"
#include "core/pipeline.h"
#include "stemming/stemming.h"
#include "tamp/animation.h"
#include "workload/ispanon.h"

namespace ranomaly::workload {
namespace {

using bgp::Ipv4Addr;
using util::kMinute;
using util::kSecond;

IspAnonOptions SmallOptions() {
  IspAnonOptions options;
  options.pop_count = 3;
  options.customers_per_pop = 2;
  options.prefixes_per_customer = 3;
  options.tier1_count = 3;
  return options;
}

TEST(IspAnonTest, ConvergesWithCustomerRoutes) {
  const IspAnonNet net = BuildIspAnon(SmallOptions());
  net::Simulator sim(net.topology, 1);
  collector::Collector collector;
  collector.AttachTo(sim, net.core_rrs);
  net.SeedRoutes(sim);
  sim.Start();
  // MED PoPs can keep oscillating; run a bounded warmup instead of
  // demanding quiescence.
  sim.Run(2 * kMinute);
  // Every customer prefix is visible at the reflector mesh.
  EXPECT_GE(collector.PrefixCount(), net.customer_prefixes.size());
}

TEST(IspAnonTest, CustomerFailsOverToNapPaths) {
  // Case IV-E mechanics: direct customer path (1 hop) vs NAP backup
  // (3 AS hops) — when the direct session dies, the backup appears.
  IspAnonOptions options = SmallOptions();
  options.with_med_scenario = false;  // isolate the flap machinery
  const IspAnonNet net = BuildIspAnon(options);
  net::Simulator sim(net.topology, 2);
  collector::Collector collector;
  collector.AttachTo(sim, net.core_rrs);
  net.SeedRoutes(sim);
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(5 * kMinute));

  // Converged: the direct path wins (customer LOCAL_PREF).
  const auto* rr0 = &sim.RibOf(net.core_rrs[0]);
  const auto* direct = rr0->Best(net.flap_prefix);
  ASSERT_NE(direct, nullptr);
  EXPECT_EQ(direct->attrs.as_path.Length(), 1u);

  // Kill the direct session: a 3-hop path via a tier-1 + NAP takes over.
  sim.ScheduleLinkDown(net.flap_link, sim.now() + kSecond);
  ASSERT_TRUE(sim.RunToQuiescence(sim.now() + 5 * kMinute));
  const auto* backup = rr0->Best(net.flap_prefix);
  ASSERT_NE(backup, nullptr);
  EXPECT_EQ(backup->attrs.as_path.Length(), 3u);  // tier1, NAP, customer

  // Session restored: back to the 1-hop direct path.
  sim.ScheduleLinkUp(net.flap_link, sim.now() + kSecond);
  ASSERT_TRUE(sim.RunToQuiescence(sim.now() + 5 * kMinute));
  EXPECT_EQ(rr0->Best(net.flap_prefix)->attrs.as_path.Length(), 1u);
}

TEST(IspAnonTest, ContinuousFlapGeneratesLowGradeChurn) {
  // Case IV-E: ~1 flap/minute; each flap generates a burst of events at
  // the RR mesh (paper: ~200 events/flap at 67-RR scale).
  IspAnonOptions options = SmallOptions();
  options.with_med_scenario = false;
  const IspAnonNet net = BuildIspAnon(options);
  net::Simulator sim(net.topology, 3);
  collector::Collector collector;
  collector.AttachTo(sim, net.core_rrs);
  net.SeedRoutes(sim);
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(5 * kMinute));
  const std::size_t baseline = collector.events().size();

  const util::SimTime start = sim.now();
  InjectCustomerFlaps(sim, net, start + kMinute, 10 * kMinute,
                      10 * kSecond, 50 * kSecond);
  sim.Run(start + 12 * kMinute);

  const std::size_t flap_events = collector.events().size() - baseline;
  // 10 flap cycles; each produces events on several RRs for the customer
  // prefix (down + failover + up + restore).
  EXPECT_GE(flap_events, 10 * 4u);

  // Stemming over the whole window: the flap prefix is the top component.
  const auto window = collector.events().Window(start, sim.now());
  const auto result = stemming::Stem(window);
  ASSERT_FALSE(result.components.empty());
  ASSERT_EQ(result.components[0].prefixes.size(), 1u);
  EXPECT_EQ(result.components[0].prefixes[0], net.flap_prefix);
}

TEST(IspAnonTest, MedOscillationFlapsCore1Edge) {
  // Case IV-F: the Core2-side AS2 route coming and going makes the Core1
  // reflectors flip their best path for 4.5.0.0/16.
  IspAnonOptions options = SmallOptions();
  options.with_flapping_customer = false;
  const IspAnonNet net = BuildIspAnon(options);
  net::Simulator sim(net.topology, 4);
  collector::Collector collector;
  collector.AttachTo(sim, {net.core1a, net.core1b, net.core2a, net.core2b});
  net.SeedRoutes(sim);
  sim.Start();
  sim.Run(kMinute);
  const std::size_t baseline = collector.events().size();

  const util::SimTime start = sim.now() + kSecond;
  // 1 ms period over 0.5 s: 500 announce/withdraw cycles at Core2.
  InjectMedOscillation(sim, net, start, start + 500 * util::kMillisecond,
                       util::kMillisecond);
  sim.Run(start + 2 * kSecond);

  // The oscillation floods the mesh with events for the single prefix.
  std::size_t med_events = 0;
  std::size_t total = 0;
  for (std::size_t i = baseline; i < collector.events().size(); ++i) {
    ++total;
    if (collector.events()[i].prefix == net.med_prefix) ++med_events;
  }
  ASSERT_GT(total, 0u);
  // Section IV-F: one prefix dominating the ISP's iBGP traffic.
  EXPECT_GT(static_cast<double>(med_events) / static_cast<double>(total),
            0.9);
  EXPECT_GE(med_events, 500u);

  // Stemming at a *short* timescale still finds it as the strongest
  // component (the paper's closing claim of IV-F).
  const auto window = collector.events().Window(start, sim.now());
  const auto result = stemming::Stem(window);
  ASSERT_FALSE(result.components.empty());
  ASSERT_EQ(result.components[0].prefixes.size(), 1u);
  EXPECT_EQ(result.components[0].prefixes[0], net.med_prefix);

  // And the pipeline classifies it as a MED oscillation.
  core::Pipeline pipeline;
  const auto incidents = pipeline.AnalyzeWindow(window);
  ASSERT_FALSE(incidents.empty());
  EXPECT_EQ(incidents[0].kind, core::IncidentKind::kMedOscillation)
      << incidents[0].summary;
}

TEST(IspAnonTest, MedAnimationShowsFlappingEdge) {
  // The Fig 3 snapshot: the core1-b -> 10.3.4.5 edge flaps between
  // carrying and not carrying 4.5.0.0/16.
  IspAnonOptions options = SmallOptions();
  options.with_flapping_customer = false;
  const IspAnonNet net = BuildIspAnon(options);
  net::Simulator sim(net.topology, 6);
  collector::Collector collector;
  collector.AttachTo(sim, {net.core1a, net.core1b, net.core2a, net.core2b});
  net.SeedRoutes(sim);
  sim.Start();
  sim.Run(kMinute);

  const util::SimTime start = sim.now() + kSecond;
  const std::size_t first_event = collector.events().size();
  InjectMedOscillation(sim, net, start, start + 500 * util::kMillisecond,
                       2 * util::kMillisecond);
  sim.Run(start + 2 * kSecond);

  // Animate only the oscillation window, starting from the converged
  // snapshot... the collector's current snapshot is post-incident, so
  // replay: build the animation from an empty graph over the incident's
  // events and track the Fig 3 edge.
  std::vector<bgp::Event> window(
      collector.events().events().begin() +
          static_cast<std::ptrdiff_t>(first_event),
      collector.events().events().end());
  ASSERT_FALSE(window.empty());
  tamp::Animator animator({}, tamp::AnimationOptions{});
  animator.TrackEdge(tamp::PeerNode(Ipv4Addr(10, 0, 0, 2)),      // core1-b
                     tamp::NexthopNode(Ipv4Addr(10, 3, 4, 5)));  // AS2 pop1
  animator.Play(window);
  const tamp::EdgePlot plot = animator.TrackedPlot();
  // The tracked edge's prefix count is an impulse train: sometimes 1,
  // sometimes 0 — "flapping between carrying and not carrying".
  const auto mn = *std::min_element(plot.weights.begin(), plot.weights.end());
  const auto mx = *std::max_element(plot.weights.begin(), plot.weights.end());
  EXPECT_EQ(mn, 0u);
  EXPECT_EQ(mx, 1u);
}

}  // namespace
}  // namespace ranomaly::workload
