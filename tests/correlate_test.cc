#include <gtest/gtest.h>

#include "core/correlate.h"
#include "core/pipeline.h"

namespace ranomaly::core {
namespace {

using bgp::Community;
using bgp::Event;
using bgp::EventType;
using bgp::Ipv4Addr;
using bgp::Prefix;
using util::kSecond;

// A small incident whose events carry the CalREN ISP tag.
struct Fixture {
  std::vector<Event> events;
  Incident incident;

  Fixture() {
    for (int i = 0; i < 4; ++i) {
      Event e;
      e.time = i * kSecond;
      e.peer = Ipv4Addr(128, 32, 1, 3);
      e.type = i % 2 == 0 ? EventType::kWithdraw : EventType::kAnnounce;
      e.prefix = Prefix(Ipv4Addr(60, static_cast<std::uint8_t>(i / 2), 0, 0), 16);
      e.attrs.as_path = bgp::AsPath{11423, 209};
      e.attrs.communities.Add(Community(11423, 65350));
      events.push_back(e);
      incident.component.event_indices.push_back(i);
    }
    incident.component.prefixes = {*Prefix::Parse("60.0.0.0/16"),
                                   *Prefix::Parse("60.1.0.0/16")};
    incident.begin = 0;
    incident.end = 3 * kSecond;
  }
};

const char* kR13Config = R"(
router bgp 25
 neighbor 128.32.0.66 remote-as 11423
 neighbor 128.32.0.66 route-map CALREN-IN in
ip community-list ISP permit 11423:65350
route-map CALREN-IN permit 10
 match community ISP
 set local-preference 80
)";

TEST(PolicyCorrelationTest, FindsLocalPrefClauseForCommunity) {
  const Fixture fx;
  const auto config = net::RouterConfig::Parse(kR13Config);
  ASSERT_TRUE(config);
  const NamedConfig named{"128.32.1.3", &*config};
  const auto findings =
      CorrelatePolicies(fx.incident, fx.events, std::span(&named, 1));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].community, Community(11423, 65350));
  EXPECT_EQ(findings[0].router_name, "128.32.1.3");
  EXPECT_EQ(findings[0].route_map_name, "CALREN-IN");
  EXPECT_NE(findings[0].action.find("local-preference 80"),
            std::string::npos);
}

TEST(PolicyCorrelationTest, NoFindingsForUnrelatedCommunity) {
  Fixture fx;
  for (auto& e : fx.events) {
    e.attrs.communities = bgp::CommunitySet{Community(9, 9)};
  }
  const auto config = net::RouterConfig::Parse(kR13Config);
  ASSERT_TRUE(config);
  const NamedConfig named{"128.32.1.3", &*config};
  EXPECT_TRUE(
      CorrelatePolicies(fx.incident, fx.events, std::span(&named, 1)).empty());
}

TEST(PolicyCorrelationTest, MultipleConfigsSearched) {
  const Fixture fx;
  const auto c1 = net::RouterConfig::Parse(kR13Config);
  const auto c2 = net::RouterConfig::Parse(kR13Config);
  ASSERT_TRUE(c1 && c2);
  const std::vector<NamedConfig> configs = {{"r1", &*c1}, {"r2", &*c2}};
  EXPECT_EQ(CorrelatePolicies(fx.incident, fx.events, configs).size(), 2u);
}

TEST(TrafficImpactTest, SumsVolumesAndCountsElephants) {
  const Fixture fx;
  const std::vector<Prefix> prefixes = {
      *Prefix::Parse("60.0.0.0/16"), *Prefix::Parse("60.1.0.0/16"),
      *Prefix::Parse("70.0.0.0/16")};
  traffic::TrafficMatrix matrix(prefixes);
  matrix.AddFlow({0, Ipv4Addr(60, 0, 1, 1), 9000});   // elephant
  matrix.AddFlow({0, Ipv4Addr(60, 1, 1, 1), 500});
  matrix.AddFlow({0, Ipv4Addr(70, 0, 1, 1), 500});
  const TrafficImpact impact = AssessTrafficImpact(fx.incident, matrix, 0.8);
  EXPECT_EQ(impact.bytes, 9500u);
  EXPECT_NEAR(impact.volume_fraction, 9500.0 / 10000.0, 1e-9);
  EXPECT_EQ(impact.elephant_prefixes, 1u);
}

TEST(IgpCorrelationTest, PullsLsasAroundIncident) {
  const Fixture fx;
  igp::LsaLog log;
  igp::Lsa lsa;
  lsa.origin = 7;
  lsa.sequence = 2;
  log.Record(kSecond, lsa, igp::LsaDisposition::kInstalledNewer);
  log.Record(500 * kSecond, lsa, igp::LsaDisposition::kInstalledNewer);

  const IgpCorrelation correlation = CorrelateIgp(fx.incident, log, 10 * kSecond);
  ASSERT_EQ(correlation.lsa_events.size(), 1u);
  EXPECT_EQ(correlation.lsa_events[0].time, kSecond);
  EXPECT_TRUE(correlation.igp_active);
}

TEST(IgpCorrelationTest, QuietIgpReportsInactive) {
  const Fixture fx;
  igp::LsaLog log;
  const IgpCorrelation correlation = CorrelateIgp(fx.incident, log);
  EXPECT_TRUE(correlation.lsa_events.empty());
  EXPECT_FALSE(correlation.igp_active);
}

TEST(IgpCorrelationTest, StaleLsasDoNotCountAsActivity) {
  const Fixture fx;
  igp::LsaLog log;
  igp::Lsa lsa;
  log.Record(kSecond, lsa, igp::LsaDisposition::kIgnoredStale);
  const IgpCorrelation correlation = CorrelateIgp(fx.incident, log);
  EXPECT_FALSE(correlation.igp_active);
  EXPECT_EQ(correlation.lsa_events.size(), 1u);
}

}  // namespace
}  // namespace ranomaly::core
