#include <gtest/gtest.h>

#include "tamp/layout.h"

namespace ranomaly::tamp {
namespace {

using bgp::AsPath;
using bgp::Ipv4Addr;
using bgp::Prefix;
using collector::RouteEntry;

RouteEntry Route(Ipv4Addr peer, Ipv4Addr nexthop, AsPath path,
                 std::uint8_t octet) {
  RouteEntry r;
  r.peer = peer;
  r.prefix = Prefix(Ipv4Addr(10, octet, 0, 0), 16);
  r.attrs.nexthop = nexthop;
  r.attrs.as_path = std::move(path);
  return r;
}

PrunedGraph SamplePruned() {
  std::vector<RouteEntry> routes;
  const Ipv4Addr p1(10, 0, 0, 1);
  const Ipv4Addr p2(10, 0, 0, 2);
  const Ipv4Addr nh1(10, 1, 0, 1);
  const Ipv4Addr nh2(10, 1, 0, 2);
  std::uint8_t octet = 0;
  for (int i = 0; i < 5; ++i) routes.push_back(Route(p1, nh1, {1, 3}, octet++));
  for (int i = 0; i < 5; ++i) routes.push_back(Route(p1, nh2, {2, 3}, octet++));
  for (int i = 0; i < 5; ++i) routes.push_back(Route(p2, nh1, {1, 4}, octet++));
  for (int i = 0; i < 5; ++i) routes.push_back(Route(p2, nh2, {2, 4}, octet++));
  return Prune(TampGraph::FromSnapshot(routes), PruneOptions{.threshold = 0.0});
}

TEST(LayoutTest, LayersFollowDepthLeftToRight) {
  const PrunedGraph pruned = SamplePruned();
  const Layout layout = ComputeLayout(pruned);
  ASSERT_EQ(layout.nodes.size(), pruned.nodes.size());
  for (const auto& e : pruned.edges) {
    // Data flows left to right: deeper nodes sit strictly to the right.
    EXPECT_LT(layout.nodes[e.from].x, layout.nodes[e.to].x)
        << pruned.nodes[e.from].name << " -> " << pruned.nodes[e.to].name;
  }
}

TEST(LayoutTest, NoOverlappingBoxesWithinLayer) {
  const PrunedGraph pruned = SamplePruned();
  const Layout layout = ComputeLayout(pruned);
  for (std::size_t i = 0; i < pruned.nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < pruned.nodes.size(); ++j) {
      if (pruned.nodes[i].depth != pruned.nodes[j].depth) continue;
      const double gap = std::abs(layout.nodes[i].y - layout.nodes[j].y);
      EXPECT_GE(gap, layout.nodes[i].height) << i << "," << j;
    }
  }
}

TEST(LayoutTest, AllNodesInsideCanvas) {
  const PrunedGraph pruned = SamplePruned();
  const Layout layout = ComputeLayout(pruned);
  for (const auto& p : layout.nodes) {
    EXPECT_GE(p.x - p.width / 2, 0.0);
    EXPECT_GE(p.y - p.height / 2, 0.0);
    EXPECT_LE(p.x + p.width / 2, layout.width);
    EXPECT_LE(p.y + p.height / 2, layout.height);
  }
}

TEST(LayoutTest, BarycenterNoWorseThanNoIterations) {
  const PrunedGraph pruned = SamplePruned();
  LayoutOptions none;
  none.barycenter_iterations = 0;
  const auto base = CountCrossings(pruned, ComputeLayout(pruned, none));
  const auto tuned = CountCrossings(pruned, ComputeLayout(pruned));
  EXPECT_LE(tuned, base);
}

TEST(LayoutTest, WiderLabelsGetWiderBoxes) {
  PrunedGraph g;
  g.nodes.push_back({RootNode(), "x", 0});
  g.nodes.push_back({AsNode(1), "a-much-longer-node-label", 1});
  g.edges.push_back({0, 1, 1, 1.0});
  g.total_prefixes = 1;
  const Layout layout = ComputeLayout(g);
  EXPECT_GT(layout.nodes[1].width, layout.nodes[0].width);
}

TEST(LayoutTest, EmptyGraph) {
  PrunedGraph g;
  const Layout layout = ComputeLayout(g);
  EXPECT_TRUE(layout.nodes.empty());
}

}  // namespace
}  // namespace ranomaly::tamp
