#include <gtest/gtest.h>

#include "bgp/as_path.h"

namespace ranomaly::bgp {
namespace {

TEST(AsPathTest, BasicAccessors) {
  const AsPath p{11423, 209, 701};
  EXPECT_EQ(p.Length(), 3u);
  EXPECT_EQ(p.FirstHop(), 11423u);
  EXPECT_EQ(p.Origin(), 701u);
  EXPECT_TRUE(p.Contains(209));
  EXPECT_FALSE(p.Contains(7018));
}

TEST(AsPathTest, EmptyPath) {
  const AsPath p;
  EXPECT_TRUE(p.Empty());
  EXPECT_FALSE(p.FirstHop());
  EXPECT_FALSE(p.Origin());
}

TEST(AsPathTest, PrependBuildsNewPath) {
  const AsPath p{209};
  const AsPath q = p.Prepend(11423);
  EXPECT_EQ(q, (AsPath{11423, 209}));
  EXPECT_EQ(p, (AsPath{209}));  // original untouched
  EXPECT_EQ(p.Prepend(7, 3), (AsPath{7, 7, 7, 209}));
}

TEST(AsPathTest, LoopDetection) {
  EXPECT_FALSE((AsPath{1, 2, 3}).HasLoop());
  EXPECT_TRUE((AsPath{1, 2, 1}).HasLoop());
  EXPECT_TRUE((AsPath{2, 2}).HasLoop());  // prepends count as repeats here
}

TEST(AsPathTest, ToStringParseRoundTrip) {
  const AsPath p{11423, 209, 701, 1299, 5713};
  EXPECT_EQ(p.ToString(), "11423 209 701 1299 5713");
  const auto q = AsPath::Parse("11423 209 701 1299 5713");
  ASSERT_TRUE(q);
  EXPECT_EQ(*q, p);
  EXPECT_TRUE(AsPath::Parse("")->Empty());
  EXPECT_FALSE(AsPath::Parse("12 abc"));
}

TEST(AsPathHashTest, EqualPathsHashEqual) {
  const AsPathHash h;
  EXPECT_EQ(h(AsPath{1, 2, 3}), h(AsPath{1, 2, 3}));
  EXPECT_NE(h(AsPath{1, 2, 3}), h(AsPath{3, 2, 1}));
}

TEST(CommunityTest, PartsAndRoundTrip) {
  const Community c(11423, 65350);
  EXPECT_EQ(c.asn(), 11423);
  EXPECT_EQ(c.value(), 65350);
  EXPECT_EQ(c.ToString(), "11423:65350");
  const auto parsed = Community::Parse("11423:65350");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, c);
}

TEST(CommunityTest, ParseRejectsBadInput) {
  EXPECT_FALSE(Community::Parse("11423"));
  EXPECT_FALSE(Community::Parse("70000:1"));  // > 16 bit
  EXPECT_FALSE(Community::Parse("1:70000"));
  EXPECT_FALSE(Community::Parse("a:b"));
}

TEST(CommunitySetTest, SortedUniqueMembership) {
  CommunitySet s;
  s.Add(Community(2, 2));
  s.Add(Community(1, 1));
  s.Add(Community(2, 2));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(Community(1, 1)));
  EXPECT_EQ(s.ToString(), "1:1 2:2");
  EXPECT_TRUE(s.Remove(Community(1, 1)));
  EXPECT_FALSE(s.Remove(Community(1, 1)));
  EXPECT_EQ(s.size(), 1u);
}

TEST(CommunitySetTest, EqualityIsOrderInsensitive) {
  CommunitySet a{Community(1, 1), Community(2, 2)};
  CommunitySet b{Community(2, 2), Community(1, 1)};
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ranomaly::bgp
