// Incident provenance: the bounded ledger's caps/eviction behavior, the
// evidence JSON rendering (byte-golden over the hostile-name corpus the
// /varz golden uses), the thread-count byte-identity contract, and
// evidence survival across kill/restart via the PROV checkpoint section.
#include "obs/provenance.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "collector/event_stream.h"
#include "core/live.h"
#include "obs/health.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "workload/eventgen.h"

namespace ranomaly::obs {
namespace {

using util::kMinute;
using util::kSecond;

IncidentProvenance MakeRecord(std::uint64_t seq) {
  IncidentProvenance prov;
  prov.seq = seq;
  prov.stem_first = 7;
  prov.stem_second = 9;
  prov.stem = "AS1 - AS2";
  prov.kind = "session-reset";
  prov.path = {"live:tick 1", "window:stemming", "component:AS1 - AS2",
               "classify:session-reset"};
  prov.window_events = 4;
  prov.component_events = 2;
  prov.component_weight = 1.5;
  prov.events_total = 2;
  for (std::uint64_t i = 0; i < 2; ++i) {
    ProvenanceEvent pe;
    pe.stream_index = 10 + i;
    pe.time_sec = 1.0 + static_cast<double>(i);
    pe.type = "A";
    pe.peer = "10.0.0.1";
    pe.prefix = "192.0.2.0/24";
    prov.events.push_back(std::move(pe));
  }
  prov.classes_total = 1;
  ProvenanceClass pc;
  pc.weight = 2.0;
  pc.score = 1.0;
  pc.sequence = "peer 10.0.0.1 nexthop 10.1.0.1 AS1 192.0.2.0/24";
  prov.classes.push_back(std::move(pc));
  prov.stages = {{"total", 10.0}};
  prov.trace_tick = 1;
  return prov;
}

// --- ledger bounds -----------------------------------------------------------

TEST(ProvenanceLedgerTest, AttachTruncatesToCapsAndEvictsOldest) {
  ProvenanceLedger ledger(ProvenanceCaps{2, 1, 1});
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    IncidentProvenance prov = MakeRecord(seq);
    ASSERT_EQ(prov.events.size(), 2u);  // above the per-record cap of 1
    ledger.Attach(std::move(prov));
  }
  EXPECT_EQ(ledger.size(), 2u);
  EXPECT_EQ(ledger.evicted(), 1u);
  EXPECT_FALSE(ledger.EvidenceJson(1).has_value());  // evicted
  ASSERT_TRUE(ledger.EvidenceJson(2).has_value());
  ASSERT_TRUE(ledger.EvidenceJson(3).has_value());
  // Truncation kept the first (strided order) event, and the totals
  // still report the pre-truncation counts.
  const std::string body = *ledger.EvidenceJson(3);
  EXPECT_NE(body.find("\"events_total\":2"), std::string::npos) << body;
  EXPECT_NE(body.find("\"id\":10"), std::string::npos) << body;
  EXPECT_EQ(body.find("\"id\":11"), std::string::npos) << body;
  // The exported state still validates after eviction + truncation.
  EXPECT_EQ(ProvenanceLedger::Validate(ledger.Export()), "");
}

TEST(ProvenanceLedgerTest, UnknownSeqIsNotFound) {
  ProvenanceLedger ledger;
  ledger.Attach(MakeRecord(1));
  EXPECT_FALSE(ledger.EvidenceJson(0).has_value());
  EXPECT_FALSE(ledger.EvidenceJson(2).has_value());
  EXPECT_TRUE(ledger.EvidenceJson(1).has_value());
}

// A checkpoint written without a ledger (e.g. a RANOMALY_NO_PROVENANCE
// build) restores into a ledger-attached serve at incident N+1: the
// unexplained prefix counts as evicted so the contiguity invariant (and
// the next checkpoint's PROV section) stays valid.
TEST(ProvenanceLedgerTest, FirstAttachAfterBareRestoreBaselinesEviction) {
  ProvenanceLedger ledger;
  ledger.Attach(MakeRecord(5));
  EXPECT_EQ(ledger.size(), 1u);
  EXPECT_EQ(ledger.evicted(), 4u);
  EXPECT_FALSE(ledger.EvidenceJson(4).has_value());
  EXPECT_TRUE(ledger.EvidenceJson(5).has_value());
  EXPECT_EQ(ProvenanceLedger::Validate(ledger.Export()), "");
}

TEST(ProvenanceLedgerTest, ExportRestoreRoundTripsEvidenceBytes) {
  ProvenanceLedger a;
  a.Attach(MakeRecord(1));
  a.Attach(MakeRecord(2));
  ProvenanceLedger b;
  std::string error;
  ASSERT_TRUE(b.Restore(a.Export(), &error)) << error;
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(*a.EvidenceJson(1), *b.EvidenceJson(1));
  EXPECT_EQ(*a.EvidenceJson(2), *b.EvidenceJson(2));
}

TEST(ProvenanceLedgerTest, RestoreRejectsCapsMismatchAndBadState) {
  ProvenanceLedger source(ProvenanceCaps{8, 4, 2});
  source.Attach(MakeRecord(1));
  std::string error;
  ProvenanceLedger other;  // default caps != {8, 4, 2}
  EXPECT_FALSE(other.Restore(source.Export(), &error));
  EXPECT_NE(error.find("caps"), std::string::npos) << error;
  // The zero-caps sentinel restores anywhere: it just clears.
  ProvenanceLedger cleared(ProvenanceCaps{8, 4, 2});
  cleared.Attach(MakeRecord(1));
  ASSERT_TRUE(cleared.Restore(ProvenanceLedger::Persisted{}, &error)) << error;
  EXPECT_EQ(cleared.size(), 0u);
  EXPECT_EQ(cleared.evicted(), 0u);
}

// Per-field tamper torture on the persisted form: every structural
// invariant break must name a reason, and the untampered state must
// pass (sanity for the harness).
TEST(ProvenanceLedgerTest, ValidateRejectsEveryInvariantBreak) {
  ProvenanceLedger ledger;
  ledger.Attach(MakeRecord(1));
  ledger.Attach(MakeRecord(2));
  const ProvenanceLedger::Persisted good = ledger.Export();
  ASSERT_EQ(ProvenanceLedger::Validate(good), "");

  const auto reject = [&good](const char* what,
                              const std::function<void(
                                  ProvenanceLedger::Persisted&)>& tamper) {
    ProvenanceLedger::Persisted bad = good;
    tamper(bad);
    EXPECT_NE(ProvenanceLedger::Validate(bad), "") << what;
  };
  reject("zero caps with records",
         [](auto& p) { p.caps = {0, 0, 0}; });
  reject("zero caps with evicted count", [](auto& p) {
    p.caps = {0, 0, 0};
    p.records.clear();
    p.evicted = 3;
  });
  reject("max_incidents beyond hard bound",
         [](auto& p) { p.caps.max_incidents = kMaxProvenanceIncidents + 1; });
  reject("max_events beyond hard bound",
         [](auto& p) { p.caps.max_events = kMaxProvenanceEvents + 1; });
  reject("max_classes beyond hard bound",
         [](auto& p) { p.caps.max_classes = kMaxProvenanceClasses + 1; });
  reject("more records than max_incidents", [](auto& p) {
    p.caps.max_incidents = 1;
  });
  reject("seq gap", [](auto& p) { p.records[1].seq = 5; });
  reject("seq not starting at evicted + 1",
         [](auto& p) { p.evicted = 7; });
  reject("events beyond max_events", [](auto& p) {
    p.caps.max_events = 1;
  });
  reject("more sampled events than events_total",
         [](auto& p) { p.records[0].events_total = 1; });
  reject("classes beyond max_classes", [](auto& p) {
    p.caps.max_classes = 1;
    p.records[0].classes.resize(2);
    p.records[0].classes[1].id = 1;
    p.records[0].classes_total = 2;
  });
  reject("more classes than classes_total",
         [](auto& p) { p.records[0].classes_total = 0; });
  reject("component larger than window",
         [](auto& p) { p.records[0].component_events = 99; });
  reject("reserved admission class",
         [](auto& p) { p.records[0].events[0].admission = 2; });
  reject("class id out of first-occurrence order",
         [](auto& p) { p.records[0].classes[0].id = 3; });
}

// --- evidence JSON -----------------------------------------------------------

// Byte-exact golden over the hostile-name corpus the /varz golden uses
// (embedded quotes, backslashes, newlines) plus a tab and a control
// byte: every string field must be JSON-escaped, doubles render via the
// shortest-round-trip formatter, and the field order is fixed.
TEST(ProvenanceLedgerTest, EvidenceJsonGoldenEscapesHostileNames) {
  ProvenanceLedger ledger;
  IncidentProvenance prov;
  prov.seq = 1;
  prov.stem_first = 7;
  prov.stem_second = 9;
  prov.stem = "up\"link\\\n";
  prov.kind = "session\treset";
  prov.path = {"live:tick 1", "component:up\"link\\\n"};
  prov.window_events = 2;
  prov.component_events = 1;
  prov.component_weight = 1.5;
  prov.events_total = 1;
  ProvenanceEvent pe;
  pe.stream_index = 3;
  pe.time_sec = 2.5;
  pe.type = "A";
  pe.peer = "10.0.0.\x01";
  pe.prefix = "192.0.2.0/24\"";
  pe.admission = 1;
  prov.events.push_back(std::move(pe));
  prov.classes_total = 1;
  ProvenanceClass pc;
  pc.weight = 1.0;
  pc.score = 1.0;
  pc.sequence = "peer \"evil\\\" AS1";
  prov.classes.push_back(std::move(pc));
  prov.stages = {{"total\n", 0.5}};
  prov.trace_tick = 1;
  ledger.Attach(std::move(prov));

  const auto body = ledger.EvidenceJson(1);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(
      *body,
      R"json({"seq":1,"kind":"session\treset","stem":"up\"link\\\n","stem_key":[7,9],"path":["live:tick 1","component:up\"link\\\n"],"window_events":2,"component_events":1,"component_weight":1.5,"trace":{"span":"live.tick","tick":1},"stages":[{"stage":"total\n","seconds":0.5}],"events_total":1,"events":[{"id":3,"time_sec":2.5,"type":"A","peer":"10.0.0.\u0001","prefix":"192.0.2.0/24\"","admission":"shed"}],"classes_total":1,"classes":[{"id":0,"weight":1,"score":1,"sequence":"peer \"evil\\\" AS1"}]})json");
}

// The dashboard timeline feeds innerHTML-adjacent code paths in the
// browser; the server side must emit valid JSON for hostile incident
// names so the client-side escaping is the only remaining defense.
TEST(ProvenanceHandlerTest, TimelineGoldenEscapesHostileIncidentNames) {
  obs::HealthRegistry health;
  core::IncidentLog log;
  core::Incident inc;
  inc.stem_key = {7, 9};
  inc.stem_label = "up\"link\\\n";
  inc.top_sequence = "c = 1 2 \"3\"";
  inc.summary = "reset\tstorm";
  log.Append(inc);
  const auto handler = core::MakeOpsHandler(
      &obs::MetricsRegistry::Global(), &health, &log,
      core::OpsInfo{"capture.events", 2, 30.0, 10.0, 300.0});
  obs::HttpRequest request;
  request.method = "GET";
  request.path = "/api/incidents/timeline";
  request.target = request.path;
  request.version = "HTTP/1.1";
  const auto response = handler(request);
  ASSERT_EQ(response.status, 200);
  EXPECT_EQ(
      response.body,
      R"json({"t0_sec":0,"tick_sec":0,"incidents":[{"seq":1,"kind":"unknown","begin_sec":0,"end_sec":0,"detected_at_sec":0,"detection_latency_sec":-1,"stem":"up\"link\\\n","top_sequence":"c = 1 2 \"3\"","summary":"reset\tstorm","feed_degraded":false,"load_shed":false,"exemplar":{"span":"live.tick","tick":0}}],"next_since":1})json");
}

#ifndef RANOMALY_NO_PROVENANCE

// --- live replay determinism -------------------------------------------------

// The same session-reset workload the live/checkpoint tests replay.
collector::EventStream ResetCapture() {
  workload::InternetOptions options;
  options.monitored_peers = 3;
  options.prefix_count = 300;
  options.origin_as_count = 60;
  options.seed = 7;
  const workload::SyntheticInternet internet(options);
  workload::EventStreamGenerator gen(internet, 8);
  gen.SessionReset(0, 10 * kMinute, kMinute, 20 * kSecond);
  gen.Churn(0, 30 * kMinute, 400);
  return gen.Take();
}

core::LiveOptions BaseOptions() {
  core::LiveOptions options;
  options.tick = 10 * kSecond;
  options.window = 5 * kMinute;
  options.slo_target_sec = 30.0;
  return options;
}

struct EvidenceRun {
  core::LiveStats stats;
  std::vector<std::string> evidence;  // one body per logged incident
};

EvidenceRun RunWithLedger(const core::LiveOptions& options,
                          const collector::EventStream& stream,
                          std::uint64_t stop_after_ticks = 0) {
  MetricsRegistry::Global().Reset();
  core::IncidentLog log;
  ProvenanceLedger ledger;
  std::atomic<bool> keep_going{true};
  core::LiveRunner runner(options, nullptr, &log, nullptr, &ledger);
  EvidenceRun result;
  result.stats =
      runner.Run(stream, &keep_going, [&](const core::LiveStats& s) {
        if (stop_after_ticks > 0 && s.ticks >= stop_after_ticks) {
          keep_going.store(false);
        }
      });
  for (std::uint64_t seq = 1; seq <= log.size(); ++seq) {
    result.evidence.push_back(ledger.EvidenceJson(seq).value_or(
        "<missing " + std::to_string(seq) + ">"));
  }
  return result;
}

// The acceptance bar: evidence JSON is byte-identical at any
// RANOMALY_THREADS, not merely equivalent.
TEST(ProvenanceDeterminismTest, EvidenceBytesAreThreadCountInvariant) {
  const collector::EventStream stream = ResetCapture();
  std::vector<EvidenceRun> runs;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    core::LiveOptions options = BaseOptions();
    options.pipeline.threads = threads;
    runs.push_back(RunWithLedger(options, stream));
  }
  ASSERT_FALSE(runs[0].evidence.empty()) << "workload produced no incidents";
  for (const std::string& body : runs[0].evidence) {
    EXPECT_EQ(body.find("<missing"), std::string::npos) << body;
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].evidence, runs[0].evidence)
        << "thread count changed the evidence bytes";
  }
}

// Every record the live runner attaches honors the caps and carries the
// cross-stage decomposition plus sampled events with real positions.
TEST(ProvenanceDeterminismTest, LiveRecordsRespectCapsAndCarryStages) {
  const collector::EventStream stream = ResetCapture();
  MetricsRegistry::Global().Reset();
  core::IncidentLog log;
  ProvenanceLedger ledger;
  core::LiveRunner runner(BaseOptions(), nullptr, &log, nullptr, &ledger);
  runner.Run(stream);
  ASSERT_GT(log.size(), 0u);
  EXPECT_EQ(ledger.size() + ledger.evicted(), log.size());
  EXPECT_EQ(ProvenanceLedger::Validate(ledger.Export()), "");
  const ProvenanceLedger::Persisted state = ledger.Export();
  for (const IncidentProvenance& r : state.records) {
    EXPECT_FALSE(r.events.empty()) << "record " << r.seq;
    EXPECT_LE(r.events.size(), ledger.caps().max_events);
    EXPECT_LE(r.classes.size(), ledger.caps().max_classes);
    EXPECT_GE(r.events_total, r.events.size());
    ASSERT_EQ(r.stages.size(), 3u);
    EXPECT_EQ(r.stages[0].stage, "burst-to-ingest");
    EXPECT_EQ(r.stages[1].stage, "ingest-to-detect");
    EXPECT_EQ(r.stages[2].stage, "total");
    ASSERT_FALSE(r.path.empty());
    EXPECT_EQ(r.path[0].rfind("live:tick ", 0), 0u) << r.path[0];
    // Stream indices point into the capture, in strictly increasing
    // order (the strided sample preserves stream order).
    for (std::size_t i = 0; i < r.events.size(); ++i) {
      EXPECT_LT(r.events[i].stream_index, stream.size());
      if (i > 0) {
        EXPECT_GT(r.events[i].stream_index, r.events[i - 1].stream_index);
      }
    }
    // Class ids are dense and in first-occurrence order.
    for (std::size_t i = 0; i < r.classes.size(); ++i) {
      EXPECT_EQ(r.classes[i].id, i);
      EXPECT_FALSE(r.classes[i].sequence.empty());
    }
  }
}

// Kill at a tick boundary, restore from the checkpoint (PROV section
// included), replay to the end: every incident's evidence must be
// byte-identical to an uninterrupted run's.
TEST(ProvenanceDeterminismTest, EvidenceSurvivesKillAndRestartBitIdentically) {
  namespace fs = std::filesystem;
  const collector::EventStream stream = ResetCapture();
  const EvidenceRun want = RunWithLedger(BaseOptions(), stream);
  ASSERT_FALSE(want.evidence.empty());

  const std::string path =
      (fs::temp_directory_path() / "ranomaly_prov_resume").string();
  fs::remove(path);
  core::LiveOptions durable = BaseOptions();
  durable.checkpoint_path = path;
  durable.checkpoint_every_ticks = 4;

  const EvidenceRun partial = RunWithLedger(durable, stream, 6);
  EXPECT_FALSE(partial.stats.restored);
  ASSERT_TRUE(fs::exists(path));

  const EvidenceRun resumed = RunWithLedger(durable, stream);
  EXPECT_TRUE(resumed.stats.restored);
  EXPECT_EQ(resumed.evidence, want.evidence);
  fs::remove(path);
}

// The evidence endpoint end to end at the handler layer: valid id,
// unknown id, malformed id, and a server with no ledger attached.
TEST(ProvenanceHandlerTest, EvidenceEndpointGuards) {
  const collector::EventStream stream = ResetCapture();
  MetricsRegistry::Global().Reset();
  obs::HealthRegistry health;
  core::IncidentLog log;
  ProvenanceLedger ledger;
  core::LiveRunner runner(BaseOptions(), nullptr, &log, nullptr, &ledger);
  runner.Run(stream);
  ASSERT_GT(log.size(), 0u);

  const auto handler = core::MakeOpsHandler(
      &obs::MetricsRegistry::Global(), &health, &log,
      core::OpsInfo{"capture.events", 2, 30.0, 10.0, 300.0}, nullptr, false,
      &ledger);
  const auto get = [&handler](const std::string& path) {
    obs::HttpRequest request;
    request.method = "GET";
    request.path = path;
    request.target = path;
    request.version = "HTTP/1.1";
    return handler(request);
  };

  const auto ok = get("/api/incidents/1/evidence");
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.content_type, "application/json");
  EXPECT_EQ(ok.body, *ledger.EvidenceJson(1));
  const auto unknown = get("/api/incidents/999999/evidence");
  EXPECT_EQ(unknown.status, 404);
  EXPECT_NE(unknown.body.find("evicted"), std::string::npos);
  for (const char* bad :
       {"/api/incidents/-1/evidence", "/api/incidents/1x/evidence",
        "/api/incidents/+1/evidence", "/api/incidents/1.0/evidence",
        "/api/incidents/18446744073709551616/evidence"}) {
    EXPECT_EQ(get(bad).status, 400) << bad;
  }
  // No ledger attached: well-formed ids are 404 with a hint, not 500.
  const auto bare = core::MakeOpsHandler(
      &obs::MetricsRegistry::Global(), &health, &log,
      core::OpsInfo{"capture.events", 2, 30.0, 10.0, 300.0});
  obs::HttpRequest request;
  request.method = "GET";
  request.path = "/api/incidents/1/evidence";
  request.target = request.path;
  request.version = "HTTP/1.1";
  const auto none = bare(request);
  EXPECT_EQ(none.status, 404);
  EXPECT_NE(none.body.find("no provenance ledger"), std::string::npos);
}

#endif  // RANOMALY_NO_PROVENANCE

}  // namespace
}  // namespace ranomaly::obs
