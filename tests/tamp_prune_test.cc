#include <gtest/gtest.h>

#include "tamp/prune.h"

namespace ranomaly::tamp {
namespace {

using bgp::AsPath;
using bgp::Ipv4Addr;
using bgp::Prefix;
using collector::RouteEntry;

const Ipv4Addr kPeer(10, 0, 0, 1);
const Ipv4Addr kNhBig(10, 1, 0, 1);
const Ipv4Addr kNhSmall(10, 1, 0, 2);

RouteEntry Route(Ipv4Addr nexthop, AsPath path, std::uint32_t third_octet,
                 Ipv4Addr peer = kPeer) {
  RouteEntry r;
  r.peer = peer;
  r.prefix = Prefix(Ipv4Addr(10, static_cast<std::uint8_t>(third_octet >> 8),
                             static_cast<std::uint8_t>(third_octet & 0xff), 0),
                    24);
  r.attrs.nexthop = nexthop;
  r.attrs.as_path = std::move(path);
  return r;
}

// 100 prefixes via the big nexthop/AS, 2 via the small one.
TampGraph SkewedGraph() {
  std::vector<RouteEntry> routes;
  for (std::uint32_t i = 0; i < 100; ++i) {
    routes.push_back(Route(kNhBig, {100, 200}, i));
  }
  routes.push_back(Route(kNhSmall, {300}, 1000));
  routes.push_back(Route(kNhSmall, {300}, 1001));
  return TampGraph::FromSnapshot(routes);
}

TEST(PruneTest, DefaultThresholdDropsSmallBranch) {
  const TampGraph graph = SkewedGraph();
  const PrunedGraph pruned = Prune(graph, PruneOptions{.threshold = 0.05});
  // The 2-prefix branch (~2%) disappears; the 100-prefix branch stays.
  EXPECT_EQ(pruned.FindNode(NexthopNode(kNhSmall)), PrunedGraph::npos);
  EXPECT_NE(pruned.FindNode(NexthopNode(kNhBig)), PrunedGraph::npos);
  EXPECT_NE(pruned.FindNode(AsNode(200)), PrunedGraph::npos);
  EXPECT_EQ(pruned.total_prefixes, 102u);
  EXPECT_GT(pruned.pruned_edges, 0u);
}

TEST(PruneTest, ZeroThresholdKeepsEverything) {
  const TampGraph graph = SkewedGraph();
  const PrunedGraph pruned = Prune(graph, PruneOptions{.threshold = 0.0});
  EXPECT_NE(pruned.FindNode(NexthopNode(kNhSmall)), PrunedGraph::npos);
  EXPECT_EQ(pruned.edges.size(), graph.Edges().size());
}

TEST(PruneTest, HierarchicalKeepsShallowLevels) {
  // Fig 5's setting: always show peers, nexthops and neighbor ASes;
  // 5 % beyond.  The small nexthop and its AS survive; nothing deeper
  // than depth 3 that is small would.
  const TampGraph graph = SkewedGraph();
  PruneOptions options;
  options.depth_thresholds = {0.0, 0.0, 0.0, 0.0, 0.05};
  const PrunedGraph pruned = Prune(graph, options);
  EXPECT_NE(pruned.FindNode(NexthopNode(kNhSmall)), PrunedGraph::npos);
  EXPECT_NE(pruned.FindNode(AsNode(300)), PrunedGraph::npos);
}

TEST(PruneTest, HierarchicalStillPrunesDeepSmallBranches) {
  std::vector<RouteEntry> routes;
  for (std::uint32_t i = 0; i < 100; ++i) {
    routes.push_back(Route(kNhBig, {100, 200}, i));
  }
  // One deep, tiny path: depth of AS 999 is 5.
  routes.push_back(Route(kNhBig, {100, 200, 500, 999}, 2000));
  const TampGraph graph = TampGraph::FromSnapshot(routes);
  PruneOptions options;
  options.depth_thresholds = {0.0, 0.0, 0.0, 0.0, 0.05};
  const PrunedGraph pruned = Prune(graph, options);
  EXPECT_EQ(pruned.FindNode(AsNode(999)), PrunedGraph::npos);
  EXPECT_EQ(pruned.FindNode(AsNode(500)), PrunedGraph::npos);
  EXPECT_NE(pruned.FindNode(AsNode(200)), PrunedGraph::npos);
}

TEST(PruneTest, FractionsAreOfTotalPrefixes) {
  const TampGraph graph = SkewedGraph();
  const PrunedGraph pruned = Prune(graph, PruneOptions{.threshold = 0.0});
  EXPECT_NEAR(pruned.EdgeFraction(NexthopNode(kNhBig), AsNode(100)),
              100.0 / 102.0, 1e-9);
  EXPECT_NEAR(pruned.EdgeFraction(NexthopNode(kNhSmall), AsNode(300)),
              2.0 / 102.0, 1e-9);
}

TEST(PruneTest, DisconnectedSurvivorsAreDropped) {
  // An edge that passes the threshold but whose upstream was pruned must
  // not appear as a floating island.
  std::vector<RouteEntry> routes;
  for (std::uint32_t i = 0; i < 100; ++i) {
    routes.push_back(Route(kNhBig, {100}, i));
  }
  // Small branch whose deep edge is big *relative to its own subtree*:
  // nexthop-small carries 3 prefixes (3%), AS400->AS500 carries 3 too.
  for (std::uint32_t i = 0; i < 3; ++i) {
    routes.push_back(Route(kNhSmall, {400, 500}, 3000 + i));
  }
  const TampGraph graph = TampGraph::FromSnapshot(routes);
  // Threshold 2.5%: peer->nh-small (3/103 ≈ 2.9%) passes... so use 3.5%
  // to prune the first hop but the deep edge would also fail.  Force the
  // interesting case with per-depth thresholds: prune depth<=2 harshly,
  // allow everything deeper.
  PruneOptions options;
  options.depth_thresholds = {0.0, 0.0, 0.05, 0.0};
  const PrunedGraph pruned = Prune(graph, options);
  // nh-small (depth 2) was pruned, so AS400/AS500 must not dangle.
  EXPECT_EQ(pruned.FindNode(NexthopNode(kNhSmall)), PrunedGraph::npos);
  EXPECT_EQ(pruned.FindNode(AsNode(400)), PrunedGraph::npos);
  EXPECT_EQ(pruned.FindNode(AsNode(500)), PrunedGraph::npos);
}

TEST(PruneTest, EmptyGraphYieldsRootOnly) {
  const TampGraph graph;
  const PrunedGraph pruned = Prune(graph);
  ASSERT_EQ(pruned.nodes.size(), 1u);
  EXPECT_EQ(pruned.nodes[0].id, RootNode());
  EXPECT_TRUE(pruned.edges.empty());
}

TEST(PruneTest, NodesSortedByDepthThenName) {
  const TampGraph graph = SkewedGraph();
  const PrunedGraph pruned = Prune(graph, PruneOptions{.threshold = 0.0});
  for (std::size_t i = 1; i < pruned.nodes.size(); ++i) {
    EXPECT_LE(pruned.nodes[i - 1].depth, pruned.nodes[i].depth);
  }
  EXPECT_EQ(pruned.nodes[0].depth, 0u);  // root first
}

}  // namespace
}  // namespace ranomaly::tamp
