// ISSUE 1 acceptance: a feed subjected to 1% frame corruption, two forced
// session drops and a mid-run checkpoint/restore must yield the same
// incident set from core::Pipeline::Analyze as a clean run, modulo
// explicitly marked FeedGap windows — and ingestion must never abort.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "collector/checkpoint.h"
#include "collector/fault.h"
#include "core/pipeline.h"
#include "net/simulator.h"

namespace ranomaly::collector {
namespace {

using util::kMinute;
using util::kSecond;

// Two monitored edge routers in AS 25, each fed by its own provider.
// U1's 24 prefixes flap (the genuine incident); U2's 8 prefixes are the
// stable background the session drops replay during resync.
struct TestNet {
  net::Topology topology;
  net::RouterIndex e1 = 0, e2 = 0, u1 = 0, u2 = 0;
  net::LinkIndex e1_u1 = 0;
};

TestNet BuildNet() {
  TestNet net;
  net.e1 = net.topology.AddRouter(
      {"e1", bgp::Ipv4Addr(10, 25, 0, 1), 25, 0, false, {}});
  net.e2 = net.topology.AddRouter(
      {"e2", bgp::Ipv4Addr(10, 25, 0, 2), 25, 0, false, {}});
  net.u1 = net.topology.AddRouter(
      {"u1", bgp::Ipv4Addr(10, 100, 0, 1), 100, 0, false, {}});
  net.u2 = net.topology.AddRouter(
      {"u2", bgp::Ipv4Addr(10, 200, 0, 1), 200, 0, false, {}});
  net::LinkSpec internal;
  internal.a = net.e1;
  internal.b = net.e2;
  internal.b_is_as_seen_by_a = net::PeerRelation::kInternal;
  net.topology.AddLink(internal);
  net::LinkSpec up1;
  up1.a = net.e1;
  up1.b = net.u1;
  up1.b_is_as_seen_by_a = net::PeerRelation::kProvider;
  net.e1_u1 = net.topology.AddLink(up1);
  net::LinkSpec up2;
  up2.a = net.e2;
  up2.b = net.u2;
  up2.b_is_as_seen_by_a = net::PeerRelation::kProvider;
  net.topology.AddLink(up2);
  return net;
}

void OriginateAll(net::Simulator& sim, const TestNet& net) {
  for (std::uint32_t k = 1; k <= 24; ++k) {
    sim.Originate(net.u1, bgp::Prefix(bgp::Ipv4Addr(10, k, 0, 0), 16));
  }
  for (std::uint32_t j = 1; j <= 8; ++j) {
    sim.Originate(net.u2, bgp::Prefix(bgp::Ipv4Addr(20, j, 0, 0), 16));
  }
}

using IncidentKey = std::pair<int, std::string>;

std::set<IncidentKey> Keys(const std::vector<core::Incident>& incidents,
                           bool skip_degraded) {
  std::set<IncidentKey> keys;
  for (const auto& inc : incidents) {
    if (skip_degraded && inc.feed_degraded) continue;
    keys.insert({static_cast<int>(inc.kind), inc.stem_label});
  }
  return keys;
}

bool OverlapsAnyGap(const core::Incident& inc,
                    const std::vector<FeedGapWindow>& gaps) {
  for (const auto& gap : gaps) {
    if (inc.begin <= gap.end && gap.begin <= inc.end) return true;
  }
  return false;
}

TEST(FaultTest, CorruptionDropsAndRestartPreserveTheIncidentSet) {
  // --- clean reference run -------------------------------------------
  std::vector<core::Incident> clean_incidents;
  {
    TestNet net = BuildNet();
    net::Simulator sim(net.topology, 77);
    Collector collector;
    FeedSupervisor supervisor(collector);
    WireFeed feed(sim, supervisor);
    feed.Monitor(net.e1);
    feed.Monitor(net.e2);
    OriginateAll(sim, net);
    sim.Start();
    sim.ScheduleLinkFlaps(net.e1_u1, 10 * kMinute, 20 * kSecond,
                          40 * kSecond, 3);
    sim.Run(35 * kMinute);
    feed.Finish(35 * kMinute);

    EXPECT_EQ(feed.fault_stats().corrupted, 0u);
    EXPECT_EQ(supervisor.Health().quarantined_total, 0u);
    EXPECT_TRUE(FeedGapWindows(collector.events()).empty());

    core::Pipeline pipeline;
    clean_incidents = pipeline.Analyze(collector.events());
  }
  ASSERT_FALSE(clean_incidents.empty());
  bool clean_saw_flap = false;
  for (const auto& inc : clean_incidents) {
    clean_saw_flap |= inc.kind == core::IncidentKind::kSessionReset ||
                      inc.kind == core::IncidentKind::kRouteFlap;
  }
  EXPECT_TRUE(clean_saw_flap);

  // --- faulty run: 1% corruption, two drops, mid-run restart ----------
  TestNet net = BuildNet();
  net::Simulator sim(net.topology, 77);  // same sim seed: same network
  Collector col_a;
  FeedSupervisor sup_a(col_a);
  FaultOptions faults;
  faults.corrupt_probability = 0.01;
  WireFeed feed(sim, sup_a, faults, 9001);
  feed.Monitor(net.e1);
  feed.Monitor(net.e2);
  // Both drops land in quiet periods, away from the 10-13 min flap.
  feed.ScheduleSessionDrop(20 * kMinute, net.e2, kMinute);
  feed.ScheduleSessionDrop(25 * kMinute, net.e1, kMinute);
  OriginateAll(sim, net);
  sim.Start();
  sim.ScheduleLinkFlaps(net.e1_u1, 10 * kMinute, 20 * kSecond, 40 * kSecond,
                        3);
  sim.Run(15 * kMinute);

  // Checkpoint, then restore into a *fresh* collector + supervisor (a
  // collector process restart), round-tripping through the file format.
  const Checkpoint cp =
      SnapshotCollector(col_a, 15 * kMinute, col_a.events().size());
  std::stringstream file;
  ASSERT_TRUE(SaveCheckpoint(cp, file));
  const auto restored = LoadCheckpoint(file);
  ASSERT_TRUE(restored);
  Collector col_b;
  RestoreCollector(*restored, col_b);
  EXPECT_EQ(col_b.RouteCount(), cp.RouteCount());
  FeedSupervisor sup_b(col_b);
  feed.Attach(sup_b, 15 * kMinute);

  sim.Run(35 * kMinute);
  feed.Finish(35 * kMinute);

  // The harness actually injected faults and the supervisor absorbed
  // them: frames were corrupted, quarantined, and both drops resynced.
  EXPECT_GT(feed.fault_stats().frames, 200u);
  EXPECT_GT(feed.fault_stats().corrupted, 0u);
  EXPECT_GT(sup_a.Health().quarantined_total + sup_b.Health().quarantined_total,
            0u);
  EXPECT_GE(feed.resyncs_served(), 2u);

  // Stitch the two collector segments into the full persisted stream.
  EventStream combined;
  for (const auto& e : col_a.events().events()) combined.Append(e);
  for (const auto& e : col_b.events().events()) combined.Append(e);

  // Every gap the harness opened was honestly marked and closed.
  const auto gaps = FeedGapWindows(combined);
  ASSERT_EQ(gaps.size(), 2u);
  for (const auto& gap : gaps) {
    EXPECT_TRUE(gap.closed);
    EXPECT_GE(gap.begin, 20 * kMinute);
  }

  core::Pipeline pipeline;
  const auto faulty_incidents = pipeline.Analyze(combined);

  // Acceptance: same incident set modulo explicitly marked FeedGap
  // windows.  Faulty-side incidents inside a gap window are flagged
  // feed_degraded (collector outage, not network); everything else must
  // match the clean run exactly.
  std::set<IncidentKey> clean_keys;
  for (const auto& inc : clean_incidents) {
    if (OverlapsAnyGap(inc, gaps)) continue;
    clean_keys.insert({static_cast<int>(inc.kind), inc.stem_label});
  }
  const std::set<IncidentKey> faulty_keys = Keys(faulty_incidents, true);
  EXPECT_EQ(faulty_keys, clean_keys);
  for (const auto& inc : faulty_incidents) {
    if (inc.feed_degraded) {
      EXPECT_TRUE(OverlapsAnyGap(inc, gaps)) << inc.summary;
      EXPECT_NE(inc.summary.find("[feed-degraded]"), std::string::npos);
    }
  }
}

TEST(FaultTest, IngestionNeverAbortsUnderFullFaultSoup) {
  // Every fault class at once, at rates far beyond the acceptance run:
  // the stream must stay ordered and the supervisor must keep counting.
  TestNet net = BuildNet();
  net::Simulator sim(net.topology, 5);
  Collector collector;
  FeedSupervisor supervisor(collector);
  FaultOptions faults;
  faults.corrupt_probability = 0.05;
  faults.payload_bitflip_probability = 0.05;
  faults.drop_probability = 0.05;
  faults.duplicate_probability = 0.05;
  faults.reorder_probability = 0.10;
  faults.max_clock_skew = 2 * kSecond;
  WireFeed feed(sim, supervisor, faults, 1234);
  feed.Monitor(net.e1);
  feed.Monitor(net.e2);
  feed.ScheduleSessionDrop(6 * kMinute, net.e1, 30 * kSecond);
  OriginateAll(sim, net);
  sim.Start();
  sim.ScheduleLinkFlaps(net.e1_u1, 2 * kMinute, 20 * kSecond, 40 * kSecond,
                        4);
  sim.Run(10 * kMinute);
  feed.Finish(10 * kMinute);  // no throw, no abort: that is the test

  const auto& events = collector.events();
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_LE(events[i - 1].time, events[i].time) << "at event " << i;
  }
  const FaultStats& stats = feed.fault_stats();
  EXPECT_GT(stats.frames, 0u);
  EXPECT_GT(stats.corrupted + stats.payload_flipped + stats.dropped +
                stats.duplicated + stats.reordered + stats.skewed,
            0u);
  const CollectorHealth health = supervisor.Health();
  EXPECT_GT(health.events, 0u);
  EXPECT_EQ(health.quarantined_total, health.decode_errors);

  // The analysis stack downstream survives the degraded stream too.
  core::Pipeline pipeline;
  pipeline.Analyze(events);
  SUCCEED();
}

}  // namespace
}  // namespace ranomaly::collector
