#include "core/live.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/health.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "workload/eventgen.h"

namespace ranomaly::core {
namespace {

using util::kMinute;
using util::kSecond;

bgp::Event MakeEvent(util::SimTime time, const char* peer,
                     bgp::EventType type) {
  bgp::Event event;
  event.time = time;
  event.peer = *bgp::Ipv4Addr::Parse(peer);
  event.type = type;
  return event;
}

Incident MakeIncidentFor(std::uint64_t key, const std::string& label) {
  Incident inc;
  inc.stem_key = {key, key + 1};
  inc.stem_label = label;
  inc.summary = label + " summary";
  return inc;
}

// A capture with one session-reset avalanche plus background churn — the
// same workload the CLI tests analyze in batch mode.
collector::EventStream ResetCapture() {
  workload::InternetOptions options;
  options.monitored_peers = 3;
  options.prefix_count = 300;
  options.origin_as_count = 60;
  options.seed = 7;
  const workload::SyntheticInternet internet(options);
  workload::EventStreamGenerator gen(internet, 8);
  gen.SessionReset(0, 10 * kMinute, kMinute, 20 * kSecond);
  gen.Churn(0, 30 * kMinute, 400);
  return gen.Take();
}

// --- IncidentLog -------------------------------------------------------------

TEST(IncidentLogTest, SequenceNumbersAreMonotonicFromOne) {
  IncidentLog log;
  EXPECT_EQ(log.Append(MakeIncidentFor(1, "a")), 1u);
  EXPECT_EQ(log.Append(MakeIncidentFor(2, "b")), 2u);
  EXPECT_EQ(log.Append(MakeIncidentFor(3, "c")), 3u);
  EXPECT_EQ(log.size(), 3u);
}

TEST(IncidentLogTest, SinceReturnsOnlyNewerEntries) {
  IncidentLog log;
  log.Append(MakeIncidentFor(1, "a"));
  log.Append(MakeIncidentFor(2, "b"));
  log.Append(MakeIncidentFor(3, "c"));
  EXPECT_EQ(log.Since(0).size(), 3u);
  const auto tail = log.Since(1);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 2u);
  EXPECT_EQ(tail[1].seq, 3u);
  EXPECT_TRUE(log.Since(3).empty());
  EXPECT_TRUE(log.Since(999).empty());
}

TEST(IncidentLogTest, JsonCarriesResumptionCursor) {
  IncidentLog log;
  EXPECT_NE(log.ToJson(0).find("\"next_since\":0"), std::string::npos);
  log.Append(MakeIncidentFor(1, "AS1 - AS2"));
  log.Append(MakeIncidentFor(2, "AS3 - AS4"));
  const std::string all = log.ToJson(0);
  EXPECT_NE(all.find("\"seq\":1"), std::string::npos);
  EXPECT_NE(all.find("\"seq\":2"), std::string::npos);
  EXPECT_NE(all.find("\"next_since\":2"), std::string::npos);
  EXPECT_NE(all.find("AS1 - AS2"), std::string::npos);
  // Resumption: since=1 skips the first entry but keeps the cursor.
  const std::string tail = log.ToJson(1);
  EXPECT_EQ(tail.find("\"seq\":1,"), std::string::npos);
  EXPECT_NE(tail.find("\"seq\":2"), std::string::npos);
  EXPECT_NE(tail.find("\"next_since\":2"), std::string::npos);
}

TEST(IncidentLogTest, JsonEscapesSummaries) {
  IncidentLog log;
  log.Append(MakeIncidentFor(1, "bad\"label\\with\nnewline"));
  const std::string json = log.ToJson(0);
  EXPECT_NE(json.find("bad\\\"label\\\\with\\nnewline"), std::string::npos);
}

// --- PeerBoard ---------------------------------------------------------------

TEST(PeerBoardTest, TracksGapsReconnectsAndUptime) {
  PeerBoard board;
  board.Observe(MakeEvent(0, "10.0.0.1", bgp::EventType::kAnnounce));
  board.Observe(MakeEvent(1 * kSecond, "10.0.0.2", bgp::EventType::kAnnounce));
  board.Observe(MakeEvent(60 * kSecond, "10.0.0.1", bgp::EventType::kFeedGap));
  board.Observe(MakeEvent(120 * kSecond, "10.0.0.1", bgp::EventType::kResync));
  board.Observe(MakeEvent(180 * kSecond, "10.0.0.2", bgp::EventType::kFeedGap));
  board.Observe(MakeEvent(200 * kSecond, "10.0.0.1", bgp::EventType::kAnnounce));
  board.Finish(200 * kSecond);

  const auto rows = board.Rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].peer.ToString(), "10.0.0.1");
  EXPECT_FALSE(rows[0].degraded);
  EXPECT_EQ(rows[0].announces, 2u);
  EXPECT_EQ(rows[0].gaps, 1u);
  EXPECT_EQ(rows[0].reconnects, 1u);
  EXPECT_EQ(rows[0].last_gap, 60 * kSecond);
  // 200s observed minus the 60s gap.
  EXPECT_DOUBLE_EQ(rows[0].uptime_sec, 140.0);

  EXPECT_EQ(rows[1].peer.ToString(), "10.0.0.2");
  EXPECT_TRUE(rows[1].degraded);
  EXPECT_EQ(rows[1].reconnects, 0u);
  // Span 1s..200s minus the open gap 180s..200s.
  EXPECT_DOUBLE_EQ(rows[1].uptime_sec, 179.0);

  const std::string table = FormatPeerTable(rows);
  EXPECT_NE(table.find("10.0.0.1"), std::string::npos);
  EXPECT_NE(table.find("DEGRADED"), std::string::npos);
}

TEST(PeerBoardTest, DoubleGapDoesNotDoubleCount) {
  PeerBoard board;
  board.Observe(MakeEvent(0, "10.0.0.1", bgp::EventType::kFeedGap));
  board.Observe(MakeEvent(1 * kSecond, "10.0.0.1", bgp::EventType::kFeedGap));
  board.Observe(MakeEvent(2 * kSecond, "10.0.0.1", bgp::EventType::kResync));
  board.Observe(MakeEvent(3 * kSecond, "10.0.0.1", bgp::EventType::kResync));
  const auto rows = board.Rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].gaps, 1u);
  EXPECT_EQ(rows[0].reconnects, 1u);
  EXPECT_FALSE(rows[0].degraded);
}

// --- LiveRunner --------------------------------------------------------------

std::vector<std::uint64_t> LatencyBuckets() {
  for (const auto& m : obs::MetricsRegistry::Global().Snapshot()) {
    if (m.name == "incident_detection_latency_seconds") {
      return m.histogram.counts;
    }
  }
  return {};
}

TEST(LiveRunnerTest, DetectsIncidentsWithLatencyStamps) {
  const auto stream = ResetCapture();
  obs::HealthRegistry health;
  IncidentLog log;
  LiveOptions options;
  LiveRunner runner(options, &health, &log);
  const LiveStats stats = runner.Run(stream);

  EXPECT_EQ(stats.events_ingested, stream.size());
  EXPECT_GT(stats.ticks, 0u);
  ASSERT_GT(stats.incidents, 0u);
  EXPECT_EQ(log.size(), stats.incidents);
  for (const auto& entry : log.Since(0)) {
    const Incident& inc = entry.incident;
    EXPECT_GT(inc.detected_at, 0);
    EXPECT_GE(inc.detected_at, inc.begin);
    EXPECT_GE(inc.detection_latency_sec, 0.0);
    EXPECT_GE(inc.ingest_tick, inc.end);  // ingested at or after the events
  }
  // The replay finished: its component reports OK / complete and stall
  // detection is off.
  bool saw_replay = false;
  for (const auto& c : health.Snapshot()) {
    if (c.name == "replay") {
      saw_replay = true;
      EXPECT_EQ(c.state, obs::HealthState::kOk);
      EXPECT_EQ(c.reason, "replay complete");
    }
  }
  EXPECT_TRUE(saw_replay);
}

TEST(LiveRunnerTest, LatencyBucketsAreThreadCountInvariant) {
  const auto stream = ResetCapture();
  struct RunResult {
    std::vector<std::uint64_t> bucket_delta;
    std::vector<std::pair<std::string, double>> incidents;
  };
  std::vector<RunResult> results;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const auto before = LatencyBuckets();
    IncidentLog log;
    LiveOptions options;
    options.pipeline.threads = threads;
    LiveRunner runner(options, nullptr, &log);
    runner.Run(stream);
    auto after = LatencyBuckets();
    RunResult result;
    if (before.empty()) {
      result.bucket_delta = after;
    } else {
      for (std::size_t i = 0; i < after.size(); ++i) {
        after[i] -= before[i];
      }
      result.bucket_delta = after;
    }
    for (const auto& entry : log.Since(0)) {
      result.incidents.emplace_back(entry.incident.stem_label,
                                    entry.incident.detection_latency_sec);
    }
    results.push_back(std::move(result));
  }
  ASSERT_FALSE(results[0].incidents.empty());
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].bucket_delta, results[0].bucket_delta)
        << "thread count changed the latency histogram";
    EXPECT_EQ(results[i].incidents, results[0].incidents)
        << "thread count changed the incident sequence";
  }
}

TEST(LiveRunnerTest, StopsEarlyWhenToldTo) {
  const auto stream = ResetCapture();
  IncidentLog log;
  LiveRunner runner(LiveOptions{}, nullptr, &log);
  std::atomic<bool> keep_going{true};
  const LiveStats stats =
      runner.Run(stream, &keep_going, [&](const LiveStats& s) {
        if (s.ticks >= 3) keep_going.store(false);
      });
  EXPECT_EQ(stats.ticks, 3u);
  EXPECT_LT(stats.events_ingested, stream.size());
}

TEST(LiveRunnerTest, FeedGapMarksPeerDegradedInHealth) {
  collector::EventStream stream;
  stream.Append(MakeEvent(0, "10.0.0.1", bgp::EventType::kAnnounce));
  stream.Append(MakeEvent(5 * kSecond, "10.0.0.2", bgp::EventType::kAnnounce));
  stream.Append(MakeEvent(30 * kSecond, "10.0.0.2", bgp::EventType::kFeedGap));
  stream.Append(MakeEvent(60 * kSecond, "10.0.0.1", bgp::EventType::kAnnounce));

  obs::HealthRegistry health;
  LiveRunner runner(LiveOptions{}, &health, nullptr);
  runner.Run(stream);

  const auto agg = health.Aggregated();
  EXPECT_EQ(agg.state, obs::HealthState::kDegraded);
  EXPECT_NE(agg.reason.find("peer/10.0.0.2"), std::string::npos);
  EXPECT_NE(agg.reason.find("feed gap"), std::string::npos);
  for (const auto& c : health.Snapshot()) {
    if (c.name == "peer/10.0.0.1") EXPECT_EQ(c.state, obs::HealthState::kOk);
  }
}

// --- ops handler -------------------------------------------------------------

obs::HttpRequest Get(const std::string& path, const std::string& query = "") {
  obs::HttpRequest request;
  request.method = "GET";
  request.path = path;
  request.query = query;
  request.target = query.empty() ? path : path + "?" + query;
  request.version = "HTTP/1.1";
  return request;
}

class OpsHandlerTest : public ::testing::Test {
 protected:
  OpsHandlerTest()
      : handler_(MakeOpsHandler(&obs::MetricsRegistry::Global(), &health_,
                                &log_,
                                OpsInfo{"capture.events", 2, 30.0, 10.0,
                                        300.0})) {}

  obs::HealthRegistry health_;
  IncidentLog log_;
  obs::HttpServer::Handler handler_;
};

TEST_F(OpsHandlerTest, MetricsEndpointSpeaksPrometheus) {
  RANOMALY_METRIC_COUNT("ops_handler_test_counter", 1);
  const auto response = handler_(Get("/metrics"));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(response.body.find("ranomaly_ops_handler_test_counter"),
            std::string::npos);
}

TEST_F(OpsHandlerTest, VarzReportsConfigHealthAndMetrics) {
  health_.Register("replay");
  const auto response = handler_(Get("/varz"));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json");
  EXPECT_NE(response.body.find("\"stream\":\"capture.events\""),
            std::string::npos);
  EXPECT_NE(response.body.find("\"slo_target_sec\":30.000"),
            std::string::npos);
  EXPECT_NE(response.body.find("\"name\":\"replay\""), std::string::npos);
  EXPECT_NE(response.body.find("\"counters\""), std::string::npos);
}

TEST_F(OpsHandlerTest, HealthzIsAlwaysOkReadyzAggregates) {
  EXPECT_EQ(handler_(Get("/healthz")).status, 200);
  EXPECT_EQ(handler_(Get("/readyz")).status, 200);
  const auto id = health_.Register("peer/10.0.0.9");
  health_.SetState(id, obs::HealthState::kDegraded, "feed gap open since 42s");
  EXPECT_EQ(handler_(Get("/healthz")).status, 200);  // liveness unaffected
  const auto ready = handler_(Get("/readyz"));
  EXPECT_EQ(ready.status, 503);
  EXPECT_NE(ready.body.find("peer/10.0.0.9"), std::string::npos);
}

TEST_F(OpsHandlerTest, IncidentsEndpointResumes) {
  log_.Append(MakeIncidentFor(1, "a"));
  log_.Append(MakeIncidentFor(2, "b"));
  const auto all = handler_(Get("/incidents"));
  EXPECT_EQ(all.status, 200);
  EXPECT_NE(all.body.find("\"next_since\":2"), std::string::npos);
  const auto tail = handler_(Get("/incidents", "since=1"));
  EXPECT_EQ(tail.body.find("\"seq\":1,"), std::string::npos);
  EXPECT_NE(tail.body.find("\"seq\":2"), std::string::npos);
  EXPECT_EQ(handler_(Get("/incidents", "since=x")).status, 400);
  EXPECT_EQ(handler_(Get("/incidents", "since=")).status, 400);
}

// The cursor is digits-only: signs, whitespace, trailing garbage, and
// overflow are all 400 — strtoull would have coerced "-1" into 2^64-1
// (hiding every incident) and saturated "2^64" to a valid cursor.
TEST_F(OpsHandlerTest, IncidentsSinceIsStrictlyParsed) {
  log_.Append(MakeIncidentFor(1, "a"));
  for (const char* bad : {"since=+1", "since=-1", "since= 1", "since=1 ",
                          "since=1x", "since=0x10", "since=1.0",
                          "since=18446744073709551616"}) {
    EXPECT_EQ(handler_(Get("/incidents", bad)).status, 400) << bad;
  }
  // The full u64 range is a valid cursor.
  const auto max = handler_(Get("/incidents", "since=18446744073709551615"));
  EXPECT_EQ(max.status, 200);
  EXPECT_EQ(max.body.find("\"seq\":1"), std::string::npos);
}

// The dashboard timeline shares the /incidents resumption contract:
// ?since=N pages from the cursor and next_since names the new one.
TEST_F(OpsHandlerTest, TimelineSincePaginates) {
  log_.Append(MakeIncidentFor(1, "a"));
  log_.Append(MakeIncidentFor(2, "b"));
  log_.Append(MakeIncidentFor(3, "c"));
  const auto all = handler_(Get("/api/incidents/timeline"));
  EXPECT_EQ(all.status, 200);
  EXPECT_EQ(all.content_type, "application/json");
  EXPECT_NE(all.body.find("\"seq\":1,"), std::string::npos);
  EXPECT_NE(all.body.find("\"next_since\":3"), std::string::npos);
  const auto tail = handler_(Get("/api/incidents/timeline", "since=2"));
  EXPECT_EQ(tail.status, 200);
  EXPECT_EQ(tail.body.find("\"seq\":1,"), std::string::npos);
  EXPECT_EQ(tail.body.find("\"seq\":2,"), std::string::npos);
  EXPECT_NE(tail.body.find("\"seq\":3,"), std::string::npos);
  EXPECT_NE(tail.body.find("\"next_since\":3"), std::string::npos);
  // A cursor past the end is an empty page, not an error.
  const auto beyond = handler_(Get("/api/incidents/timeline", "since=999"));
  EXPECT_EQ(beyond.status, 200);
  EXPECT_EQ(beyond.body.find("\"seq\":"), std::string::npos);
  EXPECT_NE(beyond.body.find("\"next_since\":3"), std::string::npos);
}

// Digits-only, same as /incidents: signs, whitespace, trailing garbage,
// and overflow are all loud 400s, never a silently empty timeline.
TEST_F(OpsHandlerTest, TimelineSinceIsStrictlyParsed) {
  log_.Append(MakeIncidentFor(1, "a"));
  for (const char* bad : {"since=+1", "since=-1", "since= 1", "since=1 ",
                          "since=1x", "since=0x10", "since=1.0", "since=",
                          "since=18446744073709551616"}) {
    EXPECT_EQ(handler_(Get("/api/incidents/timeline", bad)).status, 400)
        << bad;
  }
  const auto max =
      handler_(Get("/api/incidents/timeline", "since=18446744073709551615"));
  EXPECT_EQ(max.status, 200);
  EXPECT_EQ(max.body.find("\"seq\":1"), std::string::npos);
}

TEST_F(OpsHandlerTest, UnknownPathIs404) {
  EXPECT_EQ(handler_(Get("/")).status, 404);
  EXPECT_EQ(handler_(Get("/metricsx")).status, 404);
}

// The TSan star witness: HTTP scrapes hammer every endpoint while the
// live replay (with its analysis thread pool and the health watchdog)
// runs.  Any unsynchronized access between the serving thread and the
// pipeline shows up here.
TEST(LiveServeTest, ConcurrentScrapesDuringReplay) {
  const auto stream = ResetCapture();
  obs::HealthRegistry health;
  health.StartWatchdog(0.01);
  IncidentLog log;
  obs::HttpServer server(MakeOpsHandler(&obs::MetricsRegistry::Global(),
                                        &health, &log,
                                        OpsInfo{"mem", 2, 30.0, 10.0, 300.0}));
  ASSERT_TRUE(server.Start(0));

  std::atomic<bool> done{false};
  std::atomic<int> scrapes{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&] {
      const char* paths[] = {"/metrics", "/varz", "/readyz",
                             "/incidents?since=0"};
      int i = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (obs::HttpGet(server.port(), paths[i++ % 4])) ++scrapes;
      }
    });
  }

  LiveOptions options;
  options.pipeline.threads = 2;
  options.heartbeat_deadline_sec = 5.0;
  LiveRunner runner(options, &health, &log);
  const LiveStats stats = runner.Run(stream);
  done.store(true, std::memory_order_release);
  for (auto& s : scrapers) s.join();
  server.Stop();
  health.StopWatchdog();

  EXPECT_GT(stats.incidents, 0u);
  EXPECT_GT(scrapes.load(), 0);
  EXPECT_GT(server.requests_total(), 0u);
}

}  // namespace
}  // namespace ranomaly::core
