#include <gtest/gtest.h>

#include "bgp/prefix.h"
#include "util/rng.h"

namespace ranomaly::bgp {
namespace {

TEST(Ipv4AddrTest, ToStringRoundTrip) {
  const Ipv4Addr a(128, 32, 1, 3);
  EXPECT_EQ(a.ToString(), "128.32.1.3");
  const auto parsed = Ipv4Addr::Parse("128.32.1.3");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, a);
}

TEST(Ipv4AddrTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Ipv4Addr::Parse(""));
  EXPECT_FALSE(Ipv4Addr::Parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::Parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::Parse("1.2.3.256"));
  EXPECT_FALSE(Ipv4Addr::Parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Addr::Parse("1.2.3.-4"));
}

TEST(Ipv4AddrTest, Ordering) {
  EXPECT_LT(Ipv4Addr(1, 2, 3, 4), Ipv4Addr(1, 2, 3, 5));
  EXPECT_LT(Ipv4Addr(1, 2, 3, 4), Ipv4Addr(2, 0, 0, 0));
}

TEST(PrefixTest, MasksHostBits) {
  const Prefix p(Ipv4Addr(1, 2, 3, 77), 24);
  EXPECT_EQ(p.ToString(), "1.2.3.0/24");
  EXPECT_EQ(p, Prefix(Ipv4Addr(1, 2, 3, 0), 24));
}

TEST(PrefixTest, ZeroLengthMatchesEverything) {
  const Prefix def(Ipv4Addr(9, 9, 9, 9), 0);
  EXPECT_EQ(def.ToString(), "0.0.0.0/0");
  EXPECT_TRUE(def.Contains(Ipv4Addr(200, 1, 1, 1)));
}

TEST(PrefixTest, ContainsAndCovers) {
  const Prefix p16(Ipv4Addr(10, 1, 0, 0), 16);
  const Prefix p24(Ipv4Addr(10, 1, 5, 0), 24);
  EXPECT_TRUE(p16.Contains(Ipv4Addr(10, 1, 200, 3)));
  EXPECT_FALSE(p16.Contains(Ipv4Addr(10, 2, 0, 0)));
  EXPECT_TRUE(p16.Covers(p24));
  EXPECT_FALSE(p24.Covers(p16));
  EXPECT_TRUE(p16.Covers(p16));
}

TEST(PrefixTest, ParseRoundTripAndErrors) {
  const auto p = Prefix::Parse("192.96.10.0/24");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->ToString(), "192.96.10.0/24");
  EXPECT_FALSE(Prefix::Parse("192.96.10.0"));
  EXPECT_FALSE(Prefix::Parse("192.96.10.0/33"));
  EXPECT_FALSE(Prefix::Parse("x/24"));
  // Host bits masked on parse.
  EXPECT_EQ(Prefix::Parse("1.2.3.4/8")->ToString(), "1.0.0.0/8");
}

TEST(PrefixTest, LengthClampedTo32) {
  const Prefix p(Ipv4Addr(1, 2, 3, 4), 40);
  EXPECT_EQ(p.length(), 32);
}

TEST(PrefixTrieTest, ExactInsertFindErase) {
  PrefixTrie<int> trie;
  const Prefix p = *Prefix::Parse("10.0.0.0/8");
  EXPECT_TRUE(trie.Insert(p, 1));
  EXPECT_FALSE(trie.Insert(p, 2));  // replace, not new
  ASSERT_NE(trie.Find(p), nullptr);
  EXPECT_EQ(*trie.Find(p), 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_TRUE(trie.Erase(p));
  EXPECT_EQ(trie.Find(p), nullptr);
  EXPECT_FALSE(trie.Erase(p));
}

TEST(PrefixTrieTest, LongestPrefixMatchPrefersSpecific) {
  PrefixTrie<int> trie;
  trie.Insert(*Prefix::Parse("10.0.0.0/8"), 8);
  trie.Insert(*Prefix::Parse("10.1.0.0/16"), 16);
  trie.Insert(*Prefix::Parse("10.1.2.0/24"), 24);

  const auto m1 = trie.Lookup(Ipv4Addr(10, 1, 2, 3));
  ASSERT_TRUE(m1);
  EXPECT_EQ(*m1->second, 24);

  const auto m2 = trie.Lookup(Ipv4Addr(10, 1, 9, 9));
  ASSERT_TRUE(m2);
  EXPECT_EQ(*m2->second, 16);

  const auto m3 = trie.Lookup(Ipv4Addr(10, 200, 0, 1));
  ASSERT_TRUE(m3);
  EXPECT_EQ(*m3->second, 8);

  EXPECT_FALSE(trie.Lookup(Ipv4Addr(11, 0, 0, 1)));
}

TEST(PrefixTrieTest, DefaultRouteCatchesAll) {
  PrefixTrie<int> trie;
  trie.Insert(*Prefix::Parse("0.0.0.0/0"), 0);
  const auto m = trie.Lookup(Ipv4Addr(203, 0, 113, 1));
  ASSERT_TRUE(m);
  EXPECT_EQ(*m->second, 0);
}

// Property: Lookup agrees with a linear scan over random tables.
TEST(PrefixTrieTest, LookupMatchesLinearScan) {
  util::Rng rng(4242);
  PrefixTrie<std::size_t> trie;
  std::vector<Prefix> table;
  for (int i = 0; i < 300; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.NextBelow(32));
    const auto b = static_cast<std::uint8_t>(rng.NextBelow(4));
    const auto len = static_cast<std::uint8_t>(8 + rng.NextBelow(17));
    const Prefix p(Ipv4Addr(a, b, static_cast<std::uint8_t>(rng.NextBelow(8)), 0), len);
    if (trie.Find(p) == nullptr) {
      trie.Insert(p, table.size());
      table.push_back(p);
    }
  }
  for (int i = 0; i < 2000; ++i) {
    const Ipv4Addr ip(static_cast<std::uint8_t>(rng.NextBelow(40)),
                      static_cast<std::uint8_t>(rng.NextBelow(6)),
                      static_cast<std::uint8_t>(rng.NextBelow(10)),
                      static_cast<std::uint8_t>(rng.NextBelow(256)));
    // Linear scan: longest prefix containing ip.
    int best_len = -1;
    std::size_t best_idx = 0;
    for (std::size_t t = 0; t < table.size(); ++t) {
      if (table[t].Contains(ip) && table[t].length() > best_len) {
        best_len = table[t].length();
        best_idx = t;
      }
    }
    const auto hit = trie.Lookup(ip);
    if (best_len < 0) {
      EXPECT_FALSE(hit);
    } else {
      ASSERT_TRUE(hit);
      EXPECT_EQ(*hit->second, best_idx);
    }
  }
}

}  // namespace
}  // namespace ranomaly::bgp
