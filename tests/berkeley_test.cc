#include <gtest/gtest.h>

#include <algorithm>

#include "collector/collector.h"
#include "core/pipeline.h"
#include "net/config.h"
#include "stemming/stemming.h"
#include "tamp/prune.h"
#include "workload/berkeley.h"

namespace ranomaly::workload {
namespace {

using bgp::Ipv4Addr;
using bgp::Prefix;
using util::kMinute;
using util::kSecond;

// One converged Berkeley network + attached collector, shared across the
// tests in this file (construction simulates full convergence).
class BerkeleyFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new BerkeleyNet(BuildBerkeley());
    sim_ = new net::Simulator(net_->topology, /*seed=*/3);
    collector_ = new collector::Collector;
    collector_->AttachTo(*sim_, net_->monitored);
    net_->SeedRoutes(*sim_);
    sim_->Start();
    converged_ = sim_->RunToQuiescence(10 * kMinute);
  }
  static void TearDownTestSuite() {
    delete collector_;
    delete sim_;
    delete net_;
    collector_ = nullptr;
    sim_ = nullptr;
    net_ = nullptr;
  }

  static BerkeleyNet* net_;
  static net::Simulator* sim_;
  static collector::Collector* collector_;
  static bool converged_;
};

BerkeleyNet* BerkeleyFixture::net_ = nullptr;
net::Simulator* BerkeleyFixture::sim_ = nullptr;
collector::Collector* BerkeleyFixture::collector_ = nullptr;
bool BerkeleyFixture::converged_ = false;

std::size_t TotalPrefixes(const BerkeleyNet& net) {
  return net.commodity_a.size() + net.commodity_b.size() +
         net.internet2.size() + net.members.size() +
         net.losnettos_prefixes.size() + net.kddi_prefixes.size() +
         net.backdoor_prefixes.size() + 1;  // + PCH's own prefix
}

TEST_F(BerkeleyFixture, ConvergesAndCoversAllPrefixes) {
  ASSERT_TRUE(converged_);
  EXPECT_EQ(collector_->PeerCount(), 4u);
  EXPECT_EQ(collector_->PrefixCount(), TotalPrefixes(*net_));
  // Berkeley saw 13 nexthops at full scale; our scaled-down build has the
  // four that matter: .66, .70, .90 and the backdoor.
  EXPECT_EQ(collector_->NexthopCount(), 4u);
}

TEST_F(BerkeleyFixture, CommodityPreferredViaRateLimitedRouter) {
  // 128.32.1.3 (LP 80) wins commodity over 128.32.1.200 (LP 70); REX
  // therefore hears commodity announcements from 128.32.1.3 with the
  // rate-limiter nexthops.
  ASSERT_TRUE(converged_);
  const auto snapshot = collector_->Snapshot();
  std::size_t from_r13_a = 0;
  std::size_t from_r13_b = 0;
  for (const auto& r : snapshot) {
    if (r.peer != Ipv4Addr(128, 32, 1, 3)) continue;
    if (r.attrs.nexthop == Ipv4Addr(128, 32, 0, 66)) ++from_r13_a;
    if (r.attrs.nexthop == Ipv4Addr(128, 32, 0, 70)) ++from_r13_b;
  }
  EXPECT_EQ(from_r13_a, net_->commodity_a.size());
  EXPECT_EQ(from_r13_b, net_->commodity_b.size());
}

TEST_F(BerkeleyFixture, Figure2ShapeCalrenQwestAbilene) {
  ASSERT_TRUE(converged_);
  const tamp::TampGraph graph =
      tamp::TampGraph::FromSnapshot(collector_->Snapshot());
  const double total = static_cast<double>(graph.UniquePrefixCount());
  ASSERT_GT(total, 0);

  // QWest carries the commodity share (~78% at our mix; paper: 80%).
  const double qwest =
      static_cast<double>(graph.EdgeWeight(tamp::AsNode(11423), tamp::AsNode(209))) / total;
  EXPECT_GT(qwest, 0.70);
  EXPECT_LT(qwest, 0.88);
  // Abilene carries the Internet2 share (~6%).
  const double abilene =
      static_cast<double>(graph.EdgeWeight(tamp::AsNode(11423), tamp::AsNode(11537))) / total;
  EXPECT_GT(abilene, 0.03);
  EXPECT_LT(abilene, 0.10);
}

TEST_F(BerkeleyFixture, LoadBalanceSplitIsSkewed) {
  // Case IV-A: the two rate limiters should have been ~40/40 but are
  // wildly uneven.
  ASSERT_TRUE(converged_);
  const tamp::TampGraph graph =
      tamp::TampGraph::FromSnapshot(collector_->Snapshot());
  const auto w66 = graph.EdgeWeight(
      tamp::PeerNode(Ipv4Addr(128, 32, 1, 3)),
      tamp::NexthopNode(Ipv4Addr(128, 32, 0, 66)));
  const auto w70 = graph.EdgeWeight(
      tamp::PeerNode(Ipv4Addr(128, 32, 1, 3)),
      tamp::NexthopNode(Ipv4Addr(128, 32, 0, 70)));
  ASSERT_GT(w70, 0u);
  EXPECT_GT(w66, 8 * w70);  // paper: 78% vs 5%
}

TEST_F(BerkeleyFixture, BackdoorVisibleOnlyWithHierarchicalPruning) {
  // Case IV-B: two backdoor prefixes via 169.229.0.157 to AT&T.
  ASSERT_TRUE(converged_);
  const tamp::TampGraph graph =
      tamp::TampGraph::FromSnapshot(collector_->Snapshot());

  const tamp::PrunedGraph flat =
      tamp::Prune(graph, tamp::PruneOptions{.threshold = 0.05});
  EXPECT_EQ(flat.FindNode(tamp::NexthopNode(Ipv4Addr(169, 229, 0, 157))),
            tamp::PrunedGraph::npos);

  tamp::PruneOptions hier;
  hier.depth_thresholds = {0.0, 0.0, 0.0, 0.0, 0.05};
  const tamp::PrunedGraph pruned = tamp::Prune(graph, hier);
  EXPECT_NE(pruned.FindNode(tamp::NexthopNode(Ipv4Addr(169, 229, 0, 157))),
            tamp::PrunedGraph::npos);
  EXPECT_NE(pruned.FindNode(tamp::AsNode(7018)), tamp::PrunedGraph::npos);
}

TEST_F(BerkeleyFixture, CommunityMistagShows32_68Split) {
  // Case IV-C: TAMP over the routes tagged 2152:65297 — only ~32% are
  // really from Los Nettos; 68% leak in from KDDI.
  ASSERT_TRUE(converged_);
  std::vector<collector::RouteEntry> tagged;
  for (const auto& r : collector_->Snapshot()) {
    if (r.attrs.communities.Contains(kLosNettosTag)) tagged.push_back(r);
  }
  ASSERT_FALSE(tagged.empty());
  const tamp::TampGraph graph = tamp::TampGraph::FromSnapshot(tagged);
  const double total = static_cast<double>(graph.UniquePrefixCount());
  const double losnettos =
      static_cast<double>(graph.EdgeWeight(tamp::AsNode(2152), tamp::AsNode(226))) / total;
  const double kddi =
      static_cast<double>(graph.EdgeWeight(tamp::AsNode(2152), tamp::AsNode(2516))) / total;
  EXPECT_NEAR(losnettos, 0.32, 0.02);
  EXPECT_NEAR(kddi, 0.68, 0.02);
}

TEST(BerkeleyLeakTest, RouteLeakMovesPrefixesAndSilencesR13) {
  // Case IV-D, full cycle: prefixes move from {128.32.1.3 -> .66 -> 209}
  // to the 6-AS-hop path via 128.32.1.200, twice, and revert.
  BerkeleyOptions options;
  options.commodity_prefixes = 150;
  options.leak_prefixes = 40;
  BerkeleyNet net = BuildBerkeley(options);
  net::Simulator sim(net.topology, 5);
  collector::Collector collector;
  collector.AttachTo(sim, net.monitored);
  net.SeedRoutes(sim);
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(10 * kMinute));
  const std::size_t baseline_events = collector.events().size();

  const util::SimTime t0 = sim.now() + kMinute;
  InjectRouteLeak(sim, net, t0, /*leak_duration=*/2 * kMinute,
                  /*gap=*/2 * kMinute, /*cycles=*/2);

  // Run through the first leak onset and check the moved state (cannot
  // demand quiescence: later cycles are already scheduled).
  sim.Run(t0 + kMinute);
  const Prefix probe = net.leakable.front();
  {
    // r13 lost the prefix entirely at REX's seat...
    bool r13_has = false;
    bool r1200_has_leak_path = false;
    for (const auto& r : collector.Snapshot()) {
      if (r.prefix != probe) continue;
      if (r.peer == Ipv4Addr(128, 32, 1, 3)) r13_has = true;
      if (r.peer == Ipv4Addr(128, 32, 1, 200) &&
          r.attrs.as_path.Contains(10927)) {
        r1200_has_leak_path = true;
      }
    }
    EXPECT_FALSE(r13_has);
    EXPECT_TRUE(r1200_has_leak_path);
  }

  // Run to the end: everything reverts.
  ASSERT_TRUE(sim.RunToQuiescence(t0 + 10 * kMinute));
  {
    bool r13_has = false;
    for (const auto& r : collector.Snapshot()) {
      if (r.prefix == probe && r.peer == Ipv4Addr(128, 32, 1, 3)) {
        r13_has = true;
      }
    }
    EXPECT_TRUE(r13_has);
  }

  // The leak generated a pile of events: >= 4 per prefix per cycle.
  const std::size_t leak_events = collector.events().size() - baseline_events;
  EXPECT_GE(leak_events, 4 * 40 * 2u);

  // Stemming on the onset window diagnoses a leak-shaped incident.
  const auto window = collector.events().Window(t0 - kSecond, t0 + kMinute);
  core::Pipeline pipeline;
  const auto incidents = pipeline.AnalyzeWindow(window);
  ASSERT_FALSE(incidents.empty());
  EXPECT_GE(incidents[0].prefix_count, 35u);
  EXPECT_EQ(incidents[0].kind, core::IncidentKind::kRouteLeak)
      << incidents[0].summary;
}

TEST(BerkeleyBuildTest, ConfigsParseAndCompile) {
  const BerkeleyNet net = BuildBerkeley();
  net::ConfigError error;
  const auto r13 = net::RouterConfig::Parse(net.r13_config_text, &error);
  ASSERT_TRUE(r13) << error.message;
  EXPECT_EQ(r13->asn(), 25u);
  const auto r1200 = net::RouterConfig::Parse(net.r1200_config_text, &error);
  ASSERT_TRUE(r1200) << error.message;
  // The paper's exact policy numbers.
  const auto uses =
      r1200->FindClausesMatchingCommunity(bgp::Community(11423, 65350));
  ASSERT_EQ(uses.size(), 1u);
  EXPECT_EQ(uses[0].clause->set_local_pref, 70u);
}

TEST(BerkeleyBuildTest, AsNamesCoverKeyPlayers) {
  const BerkeleyNet net = BuildBerkeley();
  const auto names = net.AsNames();
  const auto has = [&](bgp::AsNumber asn) {
    return std::any_of(names.begin(), names.end(),
                       [&](const auto& p) { return p.first == asn; });
  };
  EXPECT_TRUE(has(11423));
  EXPECT_TRUE(has(209));
  EXPECT_TRUE(has(11537));
  EXPECT_TRUE(has(3356));
}

}  // namespace
}  // namespace ranomaly::workload
