// workload::BuildInternetScale: serial-2 parsing diagnostics, graph
// ranking, Gao-Rexford propagation policy, and the determinism contract
// (bit-identical event streams at any thread count, and across a
// save/parse round trip of the relationship file).
#include "workload/internet_scale.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "collector/binary_io.h"
#include "net/policy.h"
#include "util/log.h"

namespace ranomaly::workload {
namespace {

std::vector<AsRelationship> Parse(const std::string& text,
                                  Serial2Diagnostics& diag) {
  std::istringstream in(text);
  return ParseSerial2(in, diag);
}

TEST(Serial2Test, ParsesWellFormedInput) {
  Serial2Diagnostics diag;
  const auto edges = Parse(
      "# a comment\n"
      "1|2|-1\n"
      "2|3|0\n"
      "10|11|-1|bgp\n",  // CAIDA as-rel2 4th "source" column is tolerated
      diag);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (AsRelationship{1, 2, -1}));
  EXPECT_EQ(edges[1], (AsRelationship{2, 3, 0}));
  EXPECT_EQ(edges[2], (AsRelationship{10, 11, -1}));
  EXPECT_EQ(diag.lines, 4u);
  EXPECT_EQ(diag.comments, 1u);
  EXPECT_EQ(diag.edges, 3u);
  EXPECT_EQ(diag.Malformed(), 0u);
  EXPECT_EQ(diag.first_bad_line, 0u);
}

TEST(Serial2Test, CountsEveryMalformationWithoutCrashing) {
  Serial2Diagnostics diag;
  const auto edges = Parse(
      "1|2|-1\n"            // 1 ok
      "garbage\n"           // 2 bad field count
      "1|2\n"               // 3 bad field count
      "x|2|-1\n"            // 4 bad asn
      "1|99999999999|0\n"   // 5 bad asn (overflows u32)
      "1|3|7\n"             // 6 bad rel
      "4|4|0\n"             // 7 self loop
      "1|2|-1\n"            // 8 duplicate
      "2|1|-1\n"            // 9 conflicting duplicate (roles swapped)
      "5|6|0\n",            // 10 ok
      diag);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (AsRelationship{1, 2, -1}));
  EXPECT_EQ(edges[1], (AsRelationship{5, 6, 0}));
  EXPECT_EQ(diag.bad_field_count, 2u);
  EXPECT_EQ(diag.bad_asn, 2u);
  EXPECT_EQ(diag.bad_rel, 1u);
  EXPECT_EQ(diag.self_loops, 1u);
  EXPECT_EQ(diag.duplicate_edges, 1u);
  EXPECT_EQ(diag.conflicting_duplicates, 1u);
  EXPECT_EQ(diag.Malformed(), 8u);
  EXPECT_EQ(diag.first_bad_line, 2u);
  EXPECT_NE(diag.Summary().find("8 malformed"), std::string::npos);
  EXPECT_NE(diag.Summary().find("first at line 2"), std::string::npos);
}

TEST(Serial2Test, WriteParseRoundTripIsVerbatim) {
  InternetScaleOptions options;
  options.as_count = 300;
  options.tier1_count = 4;
  options.mid_tier_count = 40;
  const auto edges = GenerateTopology(options);
  ASSERT_FALSE(edges.empty());

  std::ostringstream out;
  WriteSerial2(out, edges);
  Serial2Diagnostics diag;
  std::istringstream in(out.str());
  const auto reparsed = ParseSerial2(in, diag);
  EXPECT_EQ(diag.Malformed(), 0u);
  EXPECT_EQ(reparsed, edges);
}

TEST(AsGraphTest, RanksProvidersAboveCustomers) {
  // 1 -> 2 -> 3 (providers above), 3--4 peers, 5 isolated stub of 1.
  const std::vector<AsRelationship> edges = {
      {1, 2, -1}, {2, 3, -1}, {3, 4, 0}, {1, 5, -1}};
  const AsGraph g = BuildAsGraph(edges);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_EQ(g.edge_count, 4u);
  EXPECT_EQ(g.cycle_edges_dropped, 0u);
  const auto rank_of = [&](std::uint32_t asn) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (g.asns[i] == asn) return g.rank[i];
    }
    ADD_FAILURE() << "ASN " << asn << " missing";
    return 0u;
  };
  EXPECT_EQ(rank_of(3), 0u);
  EXPECT_EQ(rank_of(2), 1u);
  EXPECT_EQ(rank_of(5), 0u);
  EXPECT_EQ(rank_of(1), 2u);
  EXPECT_EQ(g.max_rank, 2u);
  // AS 1's cone: itself, 2, 3, 5.
  EXPECT_EQ(CustomerConeSize(g, 0), 4u);
}

TEST(AsGraphTest, BreaksProviderCyclesDeterministically) {
  // 1 -> 2 -> 3 -> 1 is an (impossible) provider loop; 1 -> 4 hangs a
  // legitimate stub off it.
  const std::vector<AsRelationship> edges = {
      {1, 2, -1}, {2, 3, -1}, {3, 1, -1}, {1, 4, -1}};
  const AsGraph g = BuildAsGraph(edges);
  EXPECT_GE(g.cycle_edges_dropped, 1u);
  // Every AS must still rank (no infinite loop, no dropped nodes).
  EXPECT_EQ(g.rank_members.size(), g.size());
}

TEST(AsGraphTest, IsInsensitiveToEdgeOrder) {
  InternetScaleOptions options;
  options.as_count = 200;
  options.tier1_count = 4;
  options.mid_tier_count = 30;
  auto edges = GenerateTopology(options);
  const AsGraph a = BuildAsGraph(edges);
  std::reverse(edges.begin(), edges.end());
  const AsGraph b = BuildAsGraph(edges);
  EXPECT_EQ(a.asns, b.asns);
  EXPECT_EQ(a.rank, b.rank);
  EXPECT_EQ(a.customers, b.customers);
  EXPECT_EQ(a.providers, b.providers);
  EXPECT_EQ(a.peers, b.peers);
}

TEST(PolicyModelTest, GaoRexfordExportAndPreference) {
  using net::ExportPermitted;
  using net::PreferenceRank;
  using net::Relationship;
  using net::RouteSource;
  // Own and customer routes go everywhere; peer/provider routes only
  // flow down to customers (valley-free).
  for (const auto src : {RouteSource::kSelf, RouteSource::kCustomer}) {
    EXPECT_TRUE(ExportPermitted(src, Relationship::kCustomer));
    EXPECT_TRUE(ExportPermitted(src, Relationship::kPeer));
    EXPECT_TRUE(ExportPermitted(src, Relationship::kProvider));
  }
  for (const auto src : {RouteSource::kPeer, RouteSource::kProvider}) {
    EXPECT_TRUE(ExportPermitted(src, Relationship::kCustomer));
    EXPECT_FALSE(ExportPermitted(src, Relationship::kPeer));
    EXPECT_FALSE(ExportPermitted(src, Relationship::kProvider));
  }
  EXPECT_LT(PreferenceRank(RouteSource::kSelf),
            PreferenceRank(RouteSource::kCustomer));
  EXPECT_LT(PreferenceRank(RouteSource::kCustomer),
            PreferenceRank(RouteSource::kPeer));
  EXPECT_LT(PreferenceRank(RouteSource::kPeer),
            PreferenceRank(RouteSource::kProvider));
}

InternetScaleOptions SmallOptions() {
  InternetScaleOptions options;
  options.as_count = 1500;
  options.tier1_count = 6;
  options.mid_tier_count = 120;
  options.prefix_count = 6000;
  options.monitored_peer_count = 3;
  return options;
}

std::string StreamBytes(const InternetScaleResult& result) {
  std::ostringstream out;
  EXPECT_TRUE(collector::SaveBinary(result.stream, out));
  return out.str();
}

TEST(InternetScaleTest, BuildsAFullTableWorkload) {
  std::string error;
  const auto result = BuildInternetScale(SmallOptions(), &error);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_EQ(result->as_count, 1500u);
  EXPECT_EQ(result->prefix_count, 6000u);
  // The synthetic hierarchy hangs everything off the tier-1 clique, so
  // every vantage reaches every prefix.
  EXPECT_EQ(result->route_count, 6000u * 3);
  EXPECT_GT(result->flap_count, 0u);
  EXPECT_GT(result->outage_routes, 0u);
  ASSERT_EQ(result->vantages.size(), 3u);
  for (const auto& v : result->vantages) {
    EXPECT_GT(v.customer_cone, 1u);
    EXPECT_EQ(v.routes, 6000u);
  }
  // The stream is genuinely collector-built: time-ordered, and every
  // withdrawal was augmented from the Adj-RIB-In.
  EXPECT_GT(result->stream.size(), result->route_count);
  for (std::size_t i = 1; i < result->stream.size(); ++i) {
    ASSERT_LE(result->stream[i - 1].time, result->stream[i].time);
  }
}

TEST(InternetScaleTest, StreamIsByteIdenticalAcrossThreadCounts) {
  std::string reference;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    InternetScaleOptions options = SmallOptions();
    options.threads = threads;
    std::string error;
    const auto result = BuildInternetScale(options, &error);
    ASSERT_TRUE(result.has_value()) << error;
    const std::string bytes = StreamBytes(*result);
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "thread count " << threads
                                  << " produced a different stream";
    }
  }
}

TEST(InternetScaleTest, StreamSurvivesSerial2SaveParseRoundTrip) {
  const InternetScaleOptions options = SmallOptions();
  std::string error;
  const auto direct = BuildInternetScale(options, &error);
  ASSERT_TRUE(direct.has_value()) << error;

  const std::string rel_path =
      testing::TempDir() + "/internet_scale_roundtrip.serial2";
  {
    std::ofstream rel(rel_path);
    ASSERT_TRUE(rel.is_open());
    WriteSerial2(rel, GenerateTopology(options));
  }
  InternetScaleOptions loaded_options = options;
  loaded_options.relationships_path = rel_path;
  const auto loaded = BuildInternetScale(loaded_options, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->parse.Malformed(), 0u);
  EXPECT_GT(loaded->parse.edges, 0u);
  EXPECT_EQ(StreamBytes(*loaded), StreamBytes(*direct));
}

TEST(InternetScaleTest, RejectsMissingAndUnusableInput) {
  InternetScaleOptions options = SmallOptions();
  options.relationships_path = testing::TempDir() + "/no_such_file.serial2";
  std::string error;
  EXPECT_FALSE(BuildInternetScale(options, &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);

  const std::string junk_path = testing::TempDir() + "/junk.serial2";
  {
    std::ofstream junk(junk_path);
    junk << "# nothing but comments and garbage\nnot|a\n";
  }
  options.relationships_path = junk_path;
  EXPECT_FALSE(BuildInternetScale(options, &error).has_value());
  EXPECT_NE(error.find("no usable serial-2 edges"), std::string::npos);
}

// The paper-scale acceptance point: >= 30k ASes and >= 200k prefixes
// propagated to every vantage.  Skipped under sanitizers, where the
// ~10x instrumented run does not add coverage beyond the small-scale
// determinism tests above.
#if !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define RANOMALY_SKIP_FULL_SCALE 1
#endif
#endif
#ifndef RANOMALY_SKIP_FULL_SCALE
TEST(InternetScaleTest, DefaultScaleReachesPaperMagnitude) {
  util::SetLogLevel(util::LogLevel::kError);
  std::string error;
  const auto result = BuildInternetScale(InternetScaleOptions{}, &error);
  util::SetLogLevel(util::LogLevel::kInfo);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_GE(result->as_count, 30'000u);
  EXPECT_GE(result->prefix_count, 200'000u);
  EXPECT_GE(result->route_count, 1'000'000u);
  EXPECT_GE(result->stream.size(), result->route_count);
}
#endif
#endif

}  // namespace
}  // namespace ranomaly::workload
