#include <gtest/gtest.h>

#include <set>

#include "util/flat_set.h"
#include "util/intern.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/time.h"

namespace ranomaly::util {
namespace {

// --- Rng ----------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.NextBelow(0), std::invalid_argument);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialHasRoughlyRightMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.3);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.Shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

// --- ZipfSampler ----------------------------------------------------------

TEST(ZipfTest, MassSumsToOne) {
  ZipfSampler zipf(100, 1.1);
  double total = 0.0;
  for (std::size_t i = 0; i < 100; ++i) total += zipf.Mass(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, HeadDominatesTail) {
  ZipfSampler zipf(1000, 1.1);
  // Rank 0 should outweigh rank 500 by a large factor.
  EXPECT_GT(zipf.Mass(0), 100 * zipf.Mass(500));
}

TEST(ZipfTest, SamplesFollowSkew) {
  ZipfSampler zipf(100, 1.2);
  Rng rng(5);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(ZipfTest, EmptyThrows) { EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument); }

// --- InternPool ------------------------------------------------------------

TEST(InternPoolTest, AssignsDenseIds) {
  InternPool<std::string> pool;
  EXPECT_EQ(pool.Intern("a"), 0u);
  EXPECT_EQ(pool.Intern("b"), 1u);
  EXPECT_EQ(pool.Intern("a"), 0u);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.Lookup(1), "b");
}

TEST(InternPoolTest, FindWithoutInsert) {
  InternPool<std::string> pool;
  pool.Intern("x");
  EXPECT_EQ(pool.Find("x"), 0u);
  EXPECT_EQ(pool.Find("y"), (InternPool<std::string>::kNotFound));
}

TEST(InternPoolTest, LookupOutOfRangeThrows) {
  InternPool<std::string> pool;
  EXPECT_THROW(pool.Lookup(0), std::out_of_range);
}

// --- FlatSet -----------------------------------------------------------------

TEST(FlatSetTest, InsertEraseContains) {
  FlatSet s;
  EXPECT_TRUE(s.Insert(5));
  EXPECT_TRUE(s.Insert(3));
  EXPECT_FALSE(s.Insert(5));
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Erase(3));
  EXPECT_FALSE(s.Erase(3));
  EXPECT_EQ(s.size(), 1u);
}

TEST(FlatSetTest, NormalizesInitializer) {
  const FlatSet s{5, 1, 5, 3, 1};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.values(), (std::vector<std::uint32_t>{1, 3, 5}));
}

TEST(FlatSetTest, UnionMatchesStdSet) {
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    std::set<std::uint32_t> sa, sb;
    FlatSet fa, fb;
    for (int i = 0; i < 50; ++i) {
      const auto a = static_cast<std::uint32_t>(rng.NextBelow(40));
      const auto b = static_cast<std::uint32_t>(rng.NextBelow(40));
      sa.insert(a);
      fa.Insert(a);
      sb.insert(b);
      fb.Insert(b);
    }
    std::set<std::uint32_t> su = sa;
    su.insert(sb.begin(), sb.end());
    const FlatSet fu = FlatSet::Union(fa, fb);
    EXPECT_EQ(fu.size(), su.size());
    std::size_t inter = 0;
    for (const auto x : sa) {
      if (sb.contains(x)) ++inter;
    }
    EXPECT_EQ(FlatSet::IntersectionSize(fa, fb), inter);
  }
}

TEST(FlatSetTest, DifferenceRemovesExactly) {
  FlatSet a{1, 2, 3, 4};
  const FlatSet b{2, 4, 6};
  a.DifferenceWith(b);
  EXPECT_EQ(a.values(), (std::vector<std::uint32_t>{1, 3}));
}

// --- stats -----------------------------------------------------------------

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.0);
}

TEST(StatsTest, PercentileRejectsBadInput) {
  EXPECT_THROW(Percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(Percentile({1.0}, 101), std::invalid_argument);
}

TEST(RateSeriesTest, BucketsAndSpikes) {
  RateSeries series(0, kSecond);
  // Baseline 1/sec for 10s, spike of 50 in bucket 5.
  for (int i = 0; i < 10; ++i) series.Add(i * kSecond);
  series.Add(5 * kSecond + 1, 50);
  const auto spikes = series.SpikesAbove(5.0);
  ASSERT_EQ(spikes.size(), 1u);
  EXPECT_EQ(spikes[0], 5u);
}

TEST(RateSeriesTest, ClampsEventsBeforeStartIntoFirstBucket) {
  // Mis-stamped events (before the series start) land in bucket 0 rather
  // than being dropped, and are tallied for diagnostics.
  RateSeries series(10 * kSecond, kSecond);
  series.Add(0);
  series.Add(9 * kSecond, 3);
  ASSERT_EQ(series.buckets().size(), 1u);
  EXPECT_EQ(series.buckets()[0], 4u);
  EXPECT_EQ(series.clamped(), 4u);
  // In-range events don't touch the clamp counter.
  series.Add(10 * kSecond);
  EXPECT_EQ(series.clamped(), 4u);
  EXPECT_EQ(series.buckets()[0], 5u);
}

TEST(RateSeriesTest, EmptySeriesHasNoSpikes) {
  RateSeries series(0, kSecond);
  EXPECT_TRUE(series.buckets().empty());
  EXPECT_TRUE(series.SpikesAbove(1.0).empty());
  EXPECT_EQ(series.clamped(), 0u);
}

TEST(RateSeriesTest, SingleBucketSeries) {
  RateSeries series(0, kSecond);
  series.Add(kSecond / 2, 7);
  ASSERT_EQ(series.buckets().size(), 1u);
  EXPECT_EQ(series.buckets()[0], 7u);
  // A lone bucket is its own baseline: no spike to stand out from.
  EXPECT_TRUE(series.SpikesAbove(1.0).empty());
}

// --- strings -----------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringsTest, SplitWhitespaceDropsRuns) {
  const auto parts = SplitWhitespace("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, ParseU32RejectsGarbage) {
  std::uint32_t v = 0;
  EXPECT_TRUE(ParseU32("42", v));
  EXPECT_EQ(v, 42u);
  EXPECT_FALSE(ParseU32("", v));
  EXPECT_FALSE(ParseU32("4x", v));
  EXPECT_FALSE(ParseU32("-3", v));
  EXPECT_FALSE(ParseU32("4294967296", v));  // 2^32
  EXPECT_TRUE(ParseU32("4294967295", v));
}

TEST(StringsTest, StrPrintfFormats) {
  EXPECT_EQ(StrPrintf("%d-%s", 7, "x"), "7-x");
}

// --- time ---------------------------------------------------------------------

TEST(TimeTest, FormatDurationPicksUnits) {
  EXPECT_EQ(FormatDuration(423 * kSecond), "423 sec");
  EXPECT_EQ(FormatDuration(36 * kMinute), "36.0 min");
  EXPECT_EQ(FormatDuration(static_cast<SimDuration>(7.6 * 3600) * kSecond),
            "7.6 hrs");
}

TEST(TimeTest, FormatTimeIsStable) {
  EXPECT_EQ(FormatTime(0), "[+00:00:00.000]");
  EXPECT_EQ(FormatTime(90 * kSecond + 250 * kMillisecond), "[+00:01:30.250]");
}

}  // namespace
}  // namespace ranomaly::util
