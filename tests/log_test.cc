#include <gtest/gtest.h>

#include <vector>

#include "util/log.h"

namespace ranomaly::util {
namespace {

struct Captured {
  LogLevel level;
  std::string message;
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_sink_ = SetLogSink([this](LogLevel level, const std::string& m) {
      captured_.push_back({level, m});
    });
    previous_level_ = GetLogLevel();
    SetLogLevel(LogLevel::kDebug);
  }
  void TearDown() override {
    SetLogSink(previous_sink_);
    SetLogLevel(previous_level_);
  }

  std::vector<Captured> captured_;
  LogSink previous_sink_;
  LogLevel previous_level_ = LogLevel::kWarn;
};

TEST_F(LogTest, SinkReceivesMessages) {
  Log(LogLevel::kInfo, "hello");
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].level, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].message, "hello");
}

TEST_F(LogTest, LevelFiltersBelowThreshold) {
  SetLogLevel(LogLevel::kWarn);
  Log(LogLevel::kDebug, "dropped");
  Log(LogLevel::kInfo, "dropped too");
  Log(LogLevel::kWarn, "kept");
  Log(LogLevel::kError, "kept too");
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].message, "kept");
  EXPECT_EQ(captured_[1].message, "kept too");
}

TEST_F(LogTest, MacroShortCircuitsBelowLevel) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return std::string("x");
  };
  RANOMALY_LOG(LogLevel::kDebug, expensive());
  EXPECT_EQ(evaluations, 0);  // argument not evaluated
  RANOMALY_LOG(LogLevel::kError, expensive());
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(captured_.size(), 1u);
}

TEST_F(LogTest, EveryNEmitsFirstThenEveryNth) {
  int evaluations = 0;
  auto message = [&] {
    ++evaluations;
    return std::string("noisy");
  };
  for (int i = 0; i < 12; ++i) {
    RANOMALY_LOG_EVERY_N(LogLevel::kWarn, 5, message());
  }
  // Calls 1, 5, and 10 emit; the rest pay one atomic increment and never
  // evaluate the message expression.
  ASSERT_EQ(captured_.size(), 3u);
  EXPECT_EQ(evaluations, 3);
  EXPECT_EQ(captured_[0].message, "noisy");
  EXPECT_EQ(captured_[1].message, "noisy (3 similar suppressed)");
  EXPECT_EQ(captured_[2].message, "noisy (4 similar suppressed)");
}

TEST_F(LogTest, SinkSwapReturnsPrevious) {
  bool other_called = false;
  LogSink mine = SetLogSink([&](LogLevel, const std::string&) {
    other_called = true;
  });
  Log(LogLevel::kError, "to other");
  EXPECT_TRUE(other_called);
  EXPECT_TRUE(captured_.empty());
  SetLogSink(std::move(mine));  // restore the fixture's sink
  Log(LogLevel::kError, "back");
  ASSERT_EQ(captured_.size(), 1u);
}

}  // namespace
}  // namespace ranomaly::util
