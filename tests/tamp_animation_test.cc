#include <gtest/gtest.h>

#include <algorithm>

#include "tamp/animation.h"
#include "tamp/layout.h"

namespace ranomaly::tamp {
namespace {

using bgp::AsPath;
using bgp::Event;
using bgp::EventType;
using bgp::Ipv4Addr;
using bgp::PathAttributes;
using bgp::Prefix;
using collector::RouteEntry;
using util::kSecond;

const Ipv4Addr kPeer(10, 0, 0, 1);
const Ipv4Addr kNh(10, 1, 0, 1);

PathAttributes Attrs(AsPath path = {11423, 209}) {
  PathAttributes a;
  a.nexthop = kNh;
  a.as_path = std::move(path);
  return a;
}

RouteEntry Route(std::uint8_t octet) {
  RouteEntry r;
  r.peer = kPeer;
  r.prefix = Prefix(Ipv4Addr(10, octet, 0, 0), 16);
  r.attrs = Attrs();
  return r;
}

Event MakeEvent(util::SimTime t, EventType type, std::uint8_t octet,
                PathAttributes attrs = Attrs()) {
  Event e;
  e.time = t;
  e.peer = kPeer;
  e.type = type;
  e.prefix = Prefix(Ipv4Addr(10, octet, 0, 0), 16);
  e.attrs = std::move(attrs);
  return e;
}

std::vector<RouteEntry> Snapshot(std::size_t n) {
  std::vector<RouteEntry> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Route(static_cast<std::uint8_t>(i)));
  }
  return out;
}

TEST(AnimatorTest, FixedFrameCountRegardlessOfTimerange) {
  // Paper: 30 s x 25 fps = 750 frames whether the events span seconds or
  // days.
  for (const util::SimDuration span : {10 * kSecond, 2 * util::kDay}) {
    Animator animator(Snapshot(10), AnimationOptions{});
    std::vector<Event> events;
    events.push_back(MakeEvent(0, EventType::kWithdraw, 0));
    events.push_back(MakeEvent(span, EventType::kAnnounce, 0));
    const auto result = animator.Play(events);
    EXPECT_EQ(result.frames.size(), 750u);
    EXPECT_EQ(result.total_events, 2u);
    EXPECT_EQ(result.timerange, span);
  }
}

TEST(AnimatorTest, WithdrawalsTurnEdgeBlueAndLeaveShadow) {
  Animator animator(Snapshot(10), AnimationOptions{});
  std::vector<Event> events;
  // Withdraw 5 of 10 prefixes spread over the range.
  for (int i = 0; i < 5; ++i) {
    events.push_back(
        MakeEvent(i * kSecond, EventType::kWithdraw, static_cast<std::uint8_t>(i)));
  }
  bool saw_losing_frame = false;
  const auto result = animator.Play(
      events, [&](std::size_t, const Animator::FrameStats& stats) {
        if (stats.edges_losing > 0) saw_losing_frame = true;
      });
  EXPECT_TRUE(saw_losing_frame);
  EXPECT_EQ(animator.graph().UniquePrefixCount(), 5u);

  // The pruned view decorations carry the gray shadow (max was 10).
  const PrunedGraph pruned = Prune(animator.graph(), PruneOptions{.threshold = 0.0});
  const auto decorations = animator.DecorationsFor(pruned);
  bool saw_shadow = false;
  for (const auto& d : decorations) {
    if (d.shadow_weight == 10) saw_shadow = true;
  }
  EXPECT_TRUE(saw_shadow);
}

TEST(AnimatorTest, AnnouncementsTurnEdgeGreen) {
  Animator animator(Snapshot(2), AnimationOptions{});
  std::vector<Event> events;
  for (int i = 0; i < 6; ++i) {
    events.push_back(MakeEvent(i * kSecond, EventType::kAnnounce,
                               static_cast<std::uint8_t>(10 + i)));
  }
  std::size_t gaining_frames = 0;
  animator.Play(events, [&](std::size_t, const Animator::FrameStats& s) {
    gaining_frames += s.edges_gaining > 0 ? 1 : 0;
  });
  EXPECT_GT(gaining_frames, 0u);
  EXPECT_EQ(animator.graph().UniquePrefixCount(), 8u);
}

TEST(AnimatorTest, FastFlapTurnsEdgeYellow) {
  // One prefix flapping many times within a single frame: "too fast to
  // animate".
  AnimationOptions options;
  options.flap_flips_threshold = 3;
  Animator animator(Snapshot(1), options);
  std::vector<Event> events;
  // 3000 withdraw/announce pairs: with 750 frames that is ~8 events and
  // ~7 direction changes per frame — far past the yellow threshold.
  util::SimTime t = 0;
  for (int i = 0; i < 3000; ++i) {
    events.push_back(MakeEvent(t, EventType::kWithdraw, 0));
    t += 12 * util::kMillisecond;
    events.push_back(MakeEvent(t, EventType::kAnnounce, 0));
    t += 12 * util::kMillisecond;
  }
  std::size_t flapping_frames = 0;
  animator.Play(events, [&](std::size_t, const Animator::FrameStats& s) {
    flapping_frames += s.edges_flapping > 0 ? 1 : 0;
  });
  EXPECT_GT(flapping_frames, 100u);
}

TEST(AnimatorTest, ImplicitReplacementMovesEdges) {
  // A prefix re-announced with a different AS path: the old path's edges
  // lose it, the new path's edges gain it.
  Animator animator(Snapshot(5), AnimationOptions{});
  std::vector<Event> events;
  events.push_back(
      MakeEvent(kSecond, EventType::kAnnounce, 0, Attrs({11423, 3356})));
  animator.Play(events);
  EXPECT_EQ(animator.graph().EdgeWeight(AsNode(11423), AsNode(209)), 4u);
  EXPECT_EQ(animator.graph().EdgeWeight(AsNode(11423), AsNode(3356)), 1u);
  // Total unique prefixes unchanged: it moved, it didn't vanish.
  EXPECT_EQ(animator.graph().UniquePrefixCount(), 5u);
}

TEST(AnimatorTest, TrackedEdgePlotRecordsImpulses) {
  // The Fig 3 side plot: the selected edge's prefix count per frame.
  Animator animator(Snapshot(1), AnimationOptions{});
  animator.TrackEdge(PeerNode(kPeer), NexthopNode(kNh));
  std::vector<Event> events;
  events.push_back(MakeEvent(0, EventType::kWithdraw, 0));
  events.push_back(MakeEvent(10 * kSecond, EventType::kAnnounce, 0));
  events.push_back(MakeEvent(20 * kSecond, EventType::kWithdraw, 0));
  events.push_back(MakeEvent(30 * kSecond, EventType::kAnnounce, 0));
  animator.Play(events);
  const EdgePlot plot = animator.TrackedPlot();
  EXPECT_EQ(plot.weights.size(), 750u);
  // The plot alternates between carrying (1) and not carrying (0).
  EXPECT_NE(*std::min_element(plot.weights.begin(), plot.weights.end()),
            *std::max_element(plot.weights.begin(), plot.weights.end()));
  EXPECT_NE(plot.edge_label.find("10.0.0.1"), std::string::npos);
}

TEST(AnimatorTest, ClockAdvancesMonotonically) {
  Animator animator(Snapshot(3), AnimationOptions{});
  std::vector<Event> events;
  events.push_back(MakeEvent(0, EventType::kWithdraw, 0));
  events.push_back(MakeEvent(100 * kSecond, EventType::kAnnounce, 0));
  const auto result = animator.Play(events);
  for (std::size_t i = 1; i < result.frames.size(); ++i) {
    EXPECT_GT(result.frames[i].clock, result.frames[i - 1].clock);
  }
  // All events consumed by the end.
  std::size_t total = 0;
  for (const auto& f : result.frames) total += f.events_applied;
  EXPECT_EQ(total, events.size());
}

TEST(AnimatorTest, TrackEdgesRecordsAllSeries) {
  Animator animator(Snapshot(3), AnimationOptions{});
  const EdgeKey root_peer{RootNode(), PeerNode(kPeer)};
  const EdgeKey peer_nh{PeerNode(kPeer), NexthopNode(kNh)};
  animator.TrackEdges({root_peer, peer_nh});
  std::vector<Event> events;
  events.push_back(MakeEvent(0, EventType::kWithdraw, 0));
  events.push_back(MakeEvent(10 * kSecond, EventType::kAnnounce, 0));
  animator.Play(events);
  EXPECT_EQ(animator.SeriesFor(root_peer).size(), 750u);
  EXPECT_EQ(animator.SeriesFor(peer_nh).size(), 750u);
  // Both edges dip from 3 to 2 and recover.
  EXPECT_EQ(*std::min_element(animator.SeriesFor(peer_nh).begin(),
                              animator.SeriesFor(peer_nh).end()),
            2u);
  EXPECT_EQ(animator.SeriesFor(peer_nh).back(), 3u);
  // Untracked edges return an empty series.
  EXPECT_TRUE(animator.SeriesFor(EdgeKey{AsNode(1), AsNode(2)}).empty());
}

TEST(AnimatorTest, AnimatedSvgContainsKeyframes) {
  Animator animator(Snapshot(4), AnimationOptions{});
  const auto pruned = Prune(animator.graph(), PruneOptions{.threshold = 0.0});
  std::vector<EdgeKey> keys;
  for (const auto& e : pruned.edges) {
    keys.push_back(EdgeKey{pruned.nodes[e.from].id, pruned.nodes[e.to].id});
  }
  animator.TrackEdges(keys);
  std::vector<Event> events;
  for (int i = 0; i < 4; ++i) {
    events.push_back(MakeEvent(i * kSecond, EventType::kWithdraw,
                               static_cast<std::uint8_t>(i)));
  }
  animator.Play(events);

  std::vector<std::vector<std::size_t>> series;
  for (const auto& key : keys) series.push_back(animator.SeriesFor(key));
  const auto layout = ComputeLayout(pruned);
  const std::string svg =
      RenderAnimatedSvg(pruned, layout, series, 30.0, {.title = "anim"});
  EXPECT_NE(svg.find("<animate attributeName=\"stroke-width\""),
            std::string::npos);
  EXPECT_NE(svg.find("repeatCount=\"indefinite\""), std::string::npos);
  EXPECT_NE(svg.find(ToSvgColor(EdgeColor::kBlue)), std::string::npos);
  EXPECT_NE(svg.find("dur=\"30s\""), std::string::npos);
  // Keyframe lists are frame-count long (750 values => 749 ';').
  const auto pos = svg.find("values=");
  ASSERT_NE(pos, std::string::npos);
  const auto end = svg.find('"', pos + 8);
  const std::string values = svg.substr(pos + 8, end - pos - 8);
  EXPECT_EQ(std::count(values.begin(), values.end(), ';'), 749);
}

TEST(AnimatorTest, PlayTwiceThrows) {
  Animator animator(Snapshot(1), AnimationOptions{});
  animator.Play({});
  EXPECT_THROW(animator.Play({}), std::logic_error);
}

TEST(AnimatorTest, EmptyEventStream) {
  Animator animator(Snapshot(4), AnimationOptions{});
  const auto result = animator.Play({});
  EXPECT_EQ(result.total_events, 0u);
  EXPECT_EQ(animator.graph().UniquePrefixCount(), 4u);
}

}  // namespace
}  // namespace ranomaly::tamp
