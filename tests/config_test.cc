#include <gtest/gtest.h>

#include "net/config.h"

namespace ranomaly::net {
namespace {

using bgp::Community;
using bgp::Ipv4Addr;
using bgp::Prefix;

// The paper's Section III-D.1 Berkeley configuration, spelled out.
const char* kBerkeleyR13 = R"(
! 128.32.1.3
router bgp 25
 neighbor 128.32.0.66 remote-as 11423
 neighbor 128.32.0.66 route-map CALREN-IN in
 neighbor 128.32.0.66 maximum-prefix 150000
!
ip community-list ISP permit 11423:65350
!
route-map CALREN-IN permit 10
 match community ISP
 set local-preference 80
)";

TEST(ConfigTest, ParsesBerkeleyR13) {
  ConfigError error;
  const auto config = RouterConfig::Parse(kBerkeleyR13, &error);
  ASSERT_TRUE(config) << error.message << " at line " << error.line;
  EXPECT_EQ(config->asn(), 25u);
  ASSERT_EQ(config->neighbors().size(), 1u);
  const auto& nc = config->neighbors().begin()->second;
  EXPECT_EQ(nc.remote_as, 11423u);
  EXPECT_EQ(nc.import_map_name, "CALREN-IN");
  EXPECT_EQ(nc.max_prefix_limit, 150000u);
  ASSERT_NE(config->FindRouteMap("CALREN-IN"), nullptr);
  EXPECT_EQ(config->FindCommunityList("ISP"), Community(11423, 65350));
}

TEST(ConfigTest, CompiledPolicyBehaves) {
  const auto config = RouterConfig::Parse(kBerkeleyR13);
  ASSERT_TRUE(config);
  const NeighborPolicy policy =
      config->CompileNeighborPolicy(Ipv4Addr(128, 32, 0, 66));
  EXPECT_EQ(policy.max_prefix_limit, 150000u);

  bgp::PathAttributes tagged;
  tagged.communities.Add(Community(11423, 65350));
  const auto out =
      policy.import_map.Apply(*Prefix::Parse("10.0.0.0/8"), tagged, 25);
  ASSERT_TRUE(out);
  EXPECT_EQ(out->local_pref, 80u);

  // Untagged routes hit the implicit deny: r13 filters everything else.
  bgp::PathAttributes untagged;
  EXPECT_FALSE(
      policy.import_map.Apply(*Prefix::Parse("10.0.0.0/8"), untagged, 25));
}

TEST(ConfigTest, UnknownNeighborCompilesToPassthrough) {
  const auto config = RouterConfig::Parse(kBerkeleyR13);
  ASSERT_TRUE(config);
  const NeighborPolicy policy =
      config->CompileNeighborPolicy(Ipv4Addr(9, 9, 9, 9));
  EXPECT_TRUE(policy.import_map.IsPassthrough());
  EXPECT_EQ(policy.max_prefix_limit, 0u);
}

TEST(ConfigTest, CommunityReverseQuery) {
  const auto config = RouterConfig::Parse(kBerkeleyR13);
  ASSERT_TRUE(config);
  const auto uses =
      config->FindClausesMatchingCommunity(Community(11423, 65350));
  ASSERT_EQ(uses.size(), 1u);
  EXPECT_EQ(uses[0].map_name, "CALREN-IN");
  EXPECT_EQ(uses[0].clause_index, 0u);
  ASSERT_NE(uses[0].clause, nullptr);
  EXPECT_EQ(uses[0].clause->set_local_pref, 80u);
  EXPECT_TRUE(
      config->FindClausesMatchingCommunity(Community(1, 1)).empty());
}

TEST(ConfigTest, PrefixListsAndGeLe) {
  const char* text = R"(
ip prefix-list SPLIT-A permit 0.0.0.0/1 ge 1 le 32
ip prefix-list SPLIT-A deny 208.0.0.0/4 ge 4
route-map M permit 10
 match ip address prefix-list SPLIT-A
)";
  const auto config = RouterConfig::Parse(text);
  ASSERT_TRUE(config);
  const PrefixList* list = config->FindPrefixList("SPLIT-A");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->size(), 2u);
  EXPECT_TRUE(list->Permits(*Prefix::Parse("10.0.0.0/8")));
  EXPECT_FALSE(list->Permits(*Prefix::Parse("210.0.0.0/8")));
}

TEST(ConfigTest, MedAndPrependAndDelete) {
  const char* text = R"(
ip community-list OLD permit 1:1
route-map OUT permit 10
 set metric 50
 set as-path prepend 3
 set community 2:2 additive
 set comm-list OLD delete
)";
  const auto config = RouterConfig::Parse(text);
  ASSERT_TRUE(config);
  const RouteMap* map = config->FindRouteMap("OUT");
  ASSERT_NE(map, nullptr);
  bgp::PathAttributes attrs;
  attrs.communities.Add(Community(1, 1));
  const auto out = map->Apply(*Prefix::Parse("10.0.0.0/8"), attrs, 77);
  ASSERT_TRUE(out);
  EXPECT_EQ(out->med, 50u);
  EXPECT_EQ(out->as_path, (bgp::AsPath{77, 77, 77}));
  EXPECT_TRUE(out->communities.Contains(Community(2, 2)));
  EXPECT_FALSE(out->communities.Contains(Community(1, 1)));
}

TEST(ConfigTest, BgpDecisionFlags) {
  const char* text = R"(
router bgp 1000
 bgp deterministic-med
 bgp always-compare-med
)";
  const auto config = RouterConfig::Parse(text);
  ASSERT_TRUE(config);
  EXPECT_TRUE(config->decision().deterministic_med);
  EXPECT_TRUE(config->decision().always_compare_med);
}

TEST(ConfigTest, MultiClauseOrderPreserved) {
  const char* text = R"(
ip community-list ISP permit 11423:65350
route-map IN permit 10
 match community ISP
 set local-preference 70
route-map IN permit 20
 set local-preference 100
)";
  const auto config = RouterConfig::Parse(text);
  ASSERT_TRUE(config);
  const RouteMap* map = config->FindRouteMap("IN");
  ASSERT_NE(map, nullptr);
  ASSERT_EQ(map->clauses().size(), 2u);
  EXPECT_EQ(map->clauses()[0].set_local_pref, 70u);
  EXPECT_EQ(map->clauses()[1].set_local_pref, 100u);
}

// --- error reporting -----------------------------------------------------

struct BadConfigCase {
  const char* text;
  std::size_t error_line;
};

class ConfigErrorTest : public ::testing::TestWithParam<BadConfigCase> {};

TEST_P(ConfigErrorTest, ReportsLineNumber) {
  ConfigError error;
  EXPECT_FALSE(RouterConfig::Parse(GetParam().text, &error));
  EXPECT_EQ(error.line, GetParam().error_line) << error.message;
  EXPECT_FALSE(error.message.empty());
}

INSTANTIATE_TEST_SUITE_P(
    BadConfigs, ConfigErrorTest,
    ::testing::Values(
        BadConfigCase{"router bgp\n", 1},
        BadConfigCase{"router bgp abc\n", 1},
        BadConfigCase{"router bgp 25\n neighbor 1.2.3 remote-as 1\n", 2},
        BadConfigCase{"router bgp 25\n neighbor 1.2.3.4 remote-as x\n", 2},
        BadConfigCase{"router bgp 25\n neighbor 1.2.3.4 route-map M sideways\n", 2},
        BadConfigCase{"ip prefix-list X permit notaprefix\n", 1},
        BadConfigCase{"ip community-list X permit 1:99999\n", 1},
        BadConfigCase{"route-map M permit ten\n", 1},
        BadConfigCase{"route-map M permit 10\n match community NOSUCH\n", 2},
        BadConfigCase{"route-map M permit 10\n set bogosity 9\n", 2},
        BadConfigCase{"floop\n", 1}));

TEST(ConfigTest, CommentsAndBlanksIgnored) {
  const char* text = "! comment\n\n!\nrouter bgp 25\n";
  const auto config = RouterConfig::Parse(text);
  ASSERT_TRUE(config);
  EXPECT_EQ(config->asn(), 25u);
}

}  // namespace
}  // namespace ranomaly::net
