#include "obs/health.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace ranomaly::obs {
namespace {

TEST(HealthTest, RegisterIsIdempotent) {
  HealthRegistry registry;
  const auto a = registry.Register("pipeline");
  EXPECT_EQ(registry.Register("pipeline"), a);
  EXPECT_NE(registry.Register("peer/10.0.0.1"), a);
}

TEST(HealthTest, FreshComponentIsOk) {
  HealthRegistry registry;
  registry.Register("x");
  const auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].state, HealthState::kOk);
  EXPECT_TRUE(snapshot[0].reason.empty());
  const auto agg = registry.Aggregated();
  EXPECT_EQ(agg.state, HealthState::kOk);
  EXPECT_TRUE(agg.reason.empty());
}

TEST(HealthTest, SnapshotSortsByName) {
  HealthRegistry registry;
  registry.Register("zebra");
  registry.Register("alpha");
  registry.Register("middle");
  const auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "alpha");
  EXPECT_EQ(snapshot[1].name, "middle");
  EXPECT_EQ(snapshot[2].name, "zebra");
}

TEST(HealthTest, AggregateIsWorstOfAndNamesOffenders) {
  HealthRegistry registry;
  const auto ok = registry.Register("fine");
  const auto bad = registry.Register("peer/10.0.0.2");
  const auto worse = registry.Register("pipeline");
  registry.SetState(ok, HealthState::kOk, "");
  registry.SetState(bad, HealthState::kDegraded, "feed gap open since 180s");
  auto agg = registry.Aggregated();
  EXPECT_EQ(agg.state, HealthState::kDegraded);
  EXPECT_NE(agg.reason.find("peer/10.0.0.2"), std::string::npos);
  EXPECT_NE(agg.reason.find("feed gap"), std::string::npos);
  EXPECT_EQ(agg.reason.find("fine"), std::string::npos);

  registry.SetState(worse, HealthState::kDown, "thread died");
  agg = registry.Aggregated();
  EXPECT_EQ(agg.state, HealthState::kDown);
  EXPECT_NE(agg.reason.find("pipeline: thread died"), std::string::npos);
  EXPECT_NE(agg.reason.find("peer/10.0.0.2"), std::string::npos);
}

TEST(HealthTest, StalledHeartbeatReportsDegradedLazily) {
  HealthRegistry registry;
  const auto id = registry.Register("replay");
  registry.SetHeartbeatDeadline(id, 0.05);
  registry.Heartbeat(id);
  EXPECT_EQ(registry.Snapshot()[0].state, HealthState::kOk);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  // No watchdog running: the stall check applies on read.
  const auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot[0].state, HealthState::kDegraded);
  EXPECT_NE(snapshot[0].reason.find("stalled"), std::string::npos);
  EXPECT_GT(snapshot[0].heartbeat_age_sec, 0.05);
  EXPECT_EQ(registry.Aggregated().state, HealthState::kDegraded);
  // The heartbeat resuming recovers it.
  registry.Heartbeat(id);
  EXPECT_EQ(registry.Snapshot()[0].state, HealthState::kOk);
}

TEST(HealthTest, ZeroDeadlineDisablesStallDetection) {
  HealthRegistry registry;
  const auto id = registry.Register("batch");
  registry.SetHeartbeatDeadline(id, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(registry.Snapshot()[0].state, HealthState::kOk);
  (void)id;
}

TEST(HealthTest, HeartbeatDoesNotClearExplicitDegraded) {
  HealthRegistry registry;
  const auto id = registry.Register("peer/10.0.0.1");
  registry.SetState(id, HealthState::kDegraded, "feed gap");
  registry.Heartbeat(id);
  // Heartbeat only recovers stall-detector marks, not explicit states.
  EXPECT_EQ(registry.Snapshot()[0].state, HealthState::kDegraded);
  registry.SetState(id, HealthState::kOk, "");
  EXPECT_EQ(registry.Snapshot()[0].state, HealthState::kOk);
}

TEST(HealthTest, WatchdogPersistsStallMarks) {
  HealthRegistry registry;
  const auto id = registry.Register("replay");
  registry.SetHeartbeatDeadline(id, 0.03);
  registry.StartWatchdog(0.01);
  registry.StartWatchdog(0.01);  // idempotent
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  registry.StopWatchdog();
  // The mark was persisted by the watchdog thread, so it survives into a
  // plain snapshot even after stopping.
  const auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot[0].state, HealthState::kDegraded);
  EXPECT_NE(snapshot[0].reason.find("stalled"), std::string::npos);
  // Heartbeat recovery still works on watchdog-persisted marks.
  registry.Heartbeat(id);
  EXPECT_EQ(registry.Snapshot()[0].state, HealthState::kOk);
  registry.StopWatchdog();  // idempotent
}

TEST(HealthTest, ConcurrentReadersAndWriters) {
  HealthRegistry registry;
  const auto replay = registry.Register("replay");
  registry.SetHeartbeatDeadline(replay, 0.5);
  registry.StartWatchdog(0.005);
  std::atomic<bool> done{false};
  std::thread writer([&] {
    int i = 0;
    while (!done.load()) {
      registry.Heartbeat(replay);
      const auto id = registry.Register("peer/10.0.0." + std::to_string(i % 8));
      registry.SetState(id,
                        i % 2 == 0 ? HealthState::kOk : HealthState::kDegraded,
                        i % 2 == 0 ? "" : "flap");
      ++i;
    }
  });
  for (int i = 0; i < 200; ++i) {
    (void)registry.Snapshot();
    (void)registry.Aggregated();
  }
  done.store(true);
  writer.join();
}

TEST(HealthStateTest, ToStringValues) {
  EXPECT_STREQ(ToString(HealthState::kOk), "OK");
  EXPECT_STREQ(ToString(HealthState::kDegraded), "DEGRADED");
  EXPECT_STREQ(ToString(HealthState::kDown), "DOWN");
}

}  // namespace
}  // namespace ranomaly::obs
