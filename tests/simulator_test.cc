#include <gtest/gtest.h>

#include "net/simulator.h"

namespace ranomaly::net {
namespace {

using bgp::AsPath;
using bgp::Ipv4Addr;
using bgp::Prefix;
using util::kMillisecond;
using util::kSecond;

const Prefix kP = *Prefix::Parse("192.96.10.0/24");

RouterIndex AddRouter(Topology& topo, const char* name, Ipv4Addr addr,
                      bgp::AsNumber asn, bool rr = false) {
  return topo.AddRouter(RouterSpec{name, addr, asn, 0, rr, {}});
}

LinkIndex Link(Topology& topo, RouterIndex a, RouterIndex b,
               PeerRelation b_to_a, NeighborPolicy a_policy = {},
               NeighborPolicy b_policy = {}) {
  LinkSpec l;
  l.a = a;
  l.b = b;
  l.b_is_as_seen_by_a = b_to_a;
  l.delay = kMillisecond;
  l.a_policy = std::move(a_policy);
  l.b_policy = std::move(b_policy);
  return topo.AddLink(l);
}

TEST(SimulatorTest, CustomerRouteReachesProvider) {
  Topology topo;
  const auto provider = AddRouter(topo, "prov", Ipv4Addr(10, 0, 0, 1), 100);
  const auto customer = AddRouter(topo, "cust", Ipv4Addr(10, 0, 0, 2), 200);
  Link(topo, provider, customer, PeerRelation::kCustomer);

  Simulator sim(std::move(topo));
  sim.Originate(customer, kP);
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(10 * kSecond));

  const auto* best = sim.RibOf(provider).Best(kP);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->attrs.as_path, (AsPath{200}));
  EXPECT_EQ(best->attrs.nexthop, Ipv4Addr(10, 0, 0, 2));
  EXPECT_EQ(best->attrs.local_pref, DefaultLocalPref(PeerRelation::kCustomer));
}

TEST(SimulatorTest, PathGrowsAlongChain) {
  Topology topo;
  const auto a = AddRouter(topo, "a", Ipv4Addr(1, 0, 0, 1), 100);
  const auto b = AddRouter(topo, "b", Ipv4Addr(2, 0, 0, 1), 200);
  const auto c = AddRouter(topo, "c", Ipv4Addr(3, 0, 0, 1), 300);
  Link(topo, a, b, PeerRelation::kCustomer);
  Link(topo, b, c, PeerRelation::kCustomer);

  Simulator sim(std::move(topo));
  sim.Originate(c, kP);
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(10 * kSecond));

  const auto* best = sim.RibOf(a).Best(kP);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->attrs.as_path, (AsPath{200, 300}));
  // eBGP export rewrote the nexthop at each hop.
  EXPECT_EQ(best->attrs.nexthop, Ipv4Addr(2, 0, 0, 1));
}

TEST(SimulatorTest, GaoRexfordExportGates) {
  // Hub AS with a customer, a peer and a provider: customer routes go
  // everywhere, peer/provider routes only to the customer.
  Topology topo;
  const auto hub = AddRouter(topo, "hub", Ipv4Addr(1, 0, 0, 1), 100);
  const auto cust = AddRouter(topo, "cust", Ipv4Addr(2, 0, 0, 1), 200);
  const auto peer = AddRouter(topo, "peer", Ipv4Addr(3, 0, 0, 1), 300);
  const auto prov = AddRouter(topo, "prov", Ipv4Addr(4, 0, 0, 1), 400);
  Link(topo, hub, cust, PeerRelation::kCustomer);
  Link(topo, hub, peer, PeerRelation::kPeer);
  Link(topo, hub, prov, PeerRelation::kProvider);

  const Prefix cust_p = *Prefix::Parse("10.1.0.0/16");
  const Prefix peer_p = *Prefix::Parse("10.2.0.0/16");
  const Prefix prov_p = *Prefix::Parse("10.3.0.0/16");

  Simulator sim(std::move(topo));
  sim.Originate(cust, cust_p);
  sim.Originate(peer, peer_p);
  sim.Originate(prov, prov_p);
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(10 * kSecond));

  // Customer route reaches peer and provider.
  EXPECT_NE(sim.RibOf(peer).Best(cust_p), nullptr);
  EXPECT_NE(sim.RibOf(prov).Best(cust_p), nullptr);
  // Peer route reaches the customer but NOT the provider.
  EXPECT_NE(sim.RibOf(cust).Best(peer_p), nullptr);
  EXPECT_EQ(sim.RibOf(prov).Best(peer_p), nullptr);
  // Provider route reaches the customer but NOT the peer.
  EXPECT_NE(sim.RibOf(cust).Best(prov_p), nullptr);
  EXPECT_EQ(sim.RibOf(peer).Best(prov_p), nullptr);
}

TEST(SimulatorTest, CustomerPrefersCustomerRoute) {
  // Two paths to the same prefix: via a customer and via a provider;
  // LOCAL_PREF economics must pick the customer.
  Topology topo;
  const auto hub = AddRouter(topo, "hub", Ipv4Addr(1, 0, 0, 1), 100);
  const auto cust = AddRouter(topo, "cust", Ipv4Addr(2, 0, 0, 1), 200);
  const auto prov = AddRouter(topo, "prov", Ipv4Addr(3, 0, 0, 1), 300);
  const auto origin = AddRouter(topo, "origin", Ipv4Addr(4, 0, 0, 1), 400);
  Link(topo, hub, cust, PeerRelation::kCustomer);
  Link(topo, hub, prov, PeerRelation::kProvider);
  Link(topo, cust, origin, PeerRelation::kCustomer);
  Link(topo, prov, origin, PeerRelation::kCustomer);

  Simulator sim(std::move(topo));
  sim.Originate(origin, kP);
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(10 * kSecond));

  const auto* best = sim.RibOf(hub).Best(kP);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->attrs.as_path, (AsPath{200, 400}));  // via the customer
}

TEST(SimulatorTest, LoopSuppression) {
  // Triangle of peers: routes must not loop; everyone converges on a
  // direct or 2-hop path with no AS repeated.
  Topology topo;
  const auto a = AddRouter(topo, "a", Ipv4Addr(1, 0, 0, 1), 100);
  const auto b = AddRouter(topo, "b", Ipv4Addr(2, 0, 0, 1), 200);
  const auto c = AddRouter(topo, "c", Ipv4Addr(3, 0, 0, 1), 300);
  Link(topo, a, b, PeerRelation::kCustomer);
  Link(topo, b, c, PeerRelation::kCustomer);
  Link(topo, c, a, PeerRelation::kCustomer);

  Simulator sim(std::move(topo));
  sim.Originate(a, kP);
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(10 * kSecond));

  for (const RouterIndex r : {a, b, c}) {
    const auto* best = sim.RibOf(r).Best(kP);
    ASSERT_NE(best, nullptr);
    EXPECT_FALSE(best->attrs.as_path.HasLoop());
  }
}

TEST(SimulatorTest, IbgpPreservesNexthopAndNoTransit) {
  // AS 100 routers r1, r2, r3 in a full mesh; r1 has the eBGP session.
  Topology topo;
  const auto r1 = AddRouter(topo, "r1", Ipv4Addr(1, 0, 0, 1), 100);
  const auto r2 = AddRouter(topo, "r2", Ipv4Addr(1, 0, 0, 2), 100);
  const auto r3 = AddRouter(topo, "r3", Ipv4Addr(1, 0, 0, 3), 100);
  const auto ext = AddRouter(topo, "ext", Ipv4Addr(2, 0, 0, 1), 200);
  Link(topo, r1, r2, PeerRelation::kInternal);
  Link(topo, r1, r3, PeerRelation::kInternal);
  Link(topo, r2, r3, PeerRelation::kInternal);
  Link(topo, r1, ext, PeerRelation::kCustomer);

  Simulator sim(std::move(topo));
  sim.Originate(ext, kP);
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(10 * kSecond));

  // r2 and r3 learned it over iBGP with the original nexthop.
  for (const RouterIndex r : {r2, r3}) {
    const auto* best = sim.RibOf(r).Best(kP);
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(best->attrs.nexthop, Ipv4Addr(2, 0, 0, 1));
    EXPECT_FALSE(best->ebgp);
    // LOCAL_PREF assigned at the edge rode across iBGP.
    EXPECT_EQ(best->attrs.local_pref,
              DefaultLocalPref(PeerRelation::kCustomer));
  }
}

TEST(SimulatorTest, RouteReflectionReachesClients) {
  // rr with clients c1, c2 (no client-client session): c1's eBGP route
  // must reach c2 through the reflector, with ORIGINATOR_ID set.
  Topology topo;
  const auto rr = AddRouter(topo, "rr", Ipv4Addr(1, 0, 0, 1), 100, true);
  const auto c1 = AddRouter(topo, "c1", Ipv4Addr(1, 0, 0, 2), 100);
  const auto c2 = AddRouter(topo, "c2", Ipv4Addr(1, 0, 0, 3), 100);
  const auto ext = AddRouter(topo, "ext", Ipv4Addr(2, 0, 0, 1), 200);
  {
    LinkSpec l;
    l.a = rr;
    l.b = c1;
    l.b_is_as_seen_by_a = PeerRelation::kInternal;
    l.b_is_rr_client_of_a = true;
    topo.AddLink(l);
  }
  {
    LinkSpec l;
    l.a = rr;
    l.b = c2;
    l.b_is_as_seen_by_a = PeerRelation::kInternal;
    l.b_is_rr_client_of_a = true;
    topo.AddLink(l);
  }
  Link(topo, c1, ext, PeerRelation::kCustomer);

  Simulator sim(std::move(topo));
  sim.Originate(ext, kP);
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(10 * kSecond));

  const auto* at_c2 = sim.RibOf(c2).Best(kP);
  ASSERT_NE(at_c2, nullptr);
  EXPECT_EQ(at_c2->attrs.nexthop, Ipv4Addr(2, 0, 0, 1));
  EXPECT_NE(at_c2->attrs.originator_id, 0u);
}

TEST(SimulatorTest, PlainIbgpSpeakerDoesNotReflect) {
  // r2 is NOT a reflector: c-like hub-and-spoke without RR must fail to
  // deliver (the reason full meshes / RRs exist).
  Topology topo;
  const auto mid = AddRouter(topo, "mid", Ipv4Addr(1, 0, 0, 1), 100, false);
  const auto e1 = AddRouter(topo, "e1", Ipv4Addr(1, 0, 0, 2), 100);
  const auto e2 = AddRouter(topo, "e2", Ipv4Addr(1, 0, 0, 3), 100);
  const auto ext = AddRouter(topo, "ext", Ipv4Addr(2, 0, 0, 1), 200);
  Link(topo, mid, e1, PeerRelation::kInternal);
  Link(topo, mid, e2, PeerRelation::kInternal);
  Link(topo, e1, ext, PeerRelation::kCustomer);

  Simulator sim(std::move(topo));
  sim.Originate(ext, kP);
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(10 * kSecond));

  EXPECT_NE(sim.RibOf(mid).Best(kP), nullptr);
  EXPECT_EQ(sim.RibOf(e2).Best(kP), nullptr);  // no reflection
}

TEST(SimulatorTest, SessionDownWithdrawsAndUpRestores) {
  Topology topo;
  const auto prov = AddRouter(topo, "prov", Ipv4Addr(1, 0, 0, 1), 100);
  const auto cust = AddRouter(topo, "cust", Ipv4Addr(2, 0, 0, 1), 200);
  const auto link = Link(topo, prov, cust, PeerRelation::kCustomer);

  Simulator sim(std::move(topo));
  sim.Originate(cust, kP);
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(10 * kSecond));
  ASSERT_NE(sim.RibOf(prov).Best(kP), nullptr);

  sim.ScheduleLinkDown(link, sim.now() + kSecond);
  sim.Run(sim.now() + 2 * kSecond);
  EXPECT_EQ(sim.RibOf(prov).Best(kP), nullptr);

  sim.ScheduleLinkUp(link, sim.now() + kSecond);
  ASSERT_TRUE(sim.RunToQuiescence(sim.now() + 10 * kSecond));
  EXPECT_NE(sim.RibOf(prov).Best(kP), nullptr);
  EXPECT_EQ(sim.stats().sessions_dropped, 1u);
  EXPECT_EQ(sim.stats().sessions_established, 2u);
}

TEST(SimulatorTest, MaxPrefixTearsSessionDown) {
  // The ISP-B guard from Section I: a leak beyond the limit closes the
  // session, withdrawing everything learned over it.
  Topology topo;
  const auto isp = AddRouter(topo, "isp", Ipv4Addr(1, 0, 0, 1), 100);
  const auto leaker = AddRouter(topo, "leaker", Ipv4Addr(2, 0, 0, 1), 200);
  NeighborPolicy guard;
  guard.max_prefix_limit = 10;
  const auto link =
      Link(topo, isp, leaker, PeerRelation::kCustomer, std::move(guard));

  Simulator sim(std::move(topo));
  for (int i = 0; i < 25; ++i) {
    sim.Originate(leaker,
                  Prefix(Ipv4Addr(10, static_cast<std::uint8_t>(i), 0, 0), 16));
  }
  sim.Start();
  sim.RunToQuiescence(10 * kSecond);

  EXPECT_FALSE(sim.IsLinkUp(link));
  EXPECT_GE(sim.stats().max_prefix_teardowns, 1u);
  EXPECT_EQ(sim.RibOf(isp).PrefixCount(), 0u);  // everything withdrawn
}

TEST(SimulatorTest, ImportFilterBlocksRoute) {
  Topology topo;
  const auto a = AddRouter(topo, "a", Ipv4Addr(1, 0, 0, 1), 100);
  const auto b = AddRouter(topo, "b", Ipv4Addr(2, 0, 0, 1), 200);
  NeighborPolicy filter;
  net::RouteMap deny_all("DENY");
  net::RouteMapClause deny;
  deny.permit = false;
  deny_all.AddClause(std::move(deny));
  filter.import_map = std::move(deny_all);
  Link(topo, a, b, PeerRelation::kCustomer, std::move(filter));

  Simulator sim(std::move(topo));
  sim.Originate(b, kP);
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(10 * kSecond));
  EXPECT_EQ(sim.RibOf(a).Best(kP), nullptr);
}

TEST(SimulatorTest, MraiBatchesAnnouncements) {
  // With MRAI, a rapid announce/withdraw/announce burst coalesces into
  // fewer messages on the wire than without.
  auto run_with_mrai = [&](util::SimDuration mrai) {
    Topology topo;
    const auto a = AddRouter(topo, "a", Ipv4Addr(1, 0, 0, 1), 100);
    const auto b = AddRouter(topo, "b", Ipv4Addr(2, 0, 0, 1), 200);
    LinkSpec l;
    l.a = a;
    l.b = b;
    l.b_is_as_seen_by_a = PeerRelation::kCustomer;
    l.delay = kMillisecond;
    l.b_mrai = mrai;  // b rate-limits its announcements toward a
    topo.AddLink(l);
    Simulator sim(std::move(topo));
    sim.Start();
    // 20 origination flip-flops in rapid succession.
    for (int i = 0; i < 20; ++i) {
      sim.ScheduleOriginate(i * 10 * kMillisecond, b, kP, {});
      sim.ScheduleWithdrawOrigin(i * 10 * kMillisecond + 5 * kMillisecond, b,
                                 kP);
    }
    sim.RunToQuiescence(5 * util::kMinute);
    return sim.stats().messages_delivered;
  };
  const auto without = run_with_mrai(0);
  const auto with = run_with_mrai(kSecond);
  EXPECT_LT(with, without);
}

TEST(SimulatorTest, TapsSeeBestPathChanges) {
  Topology topo;
  const auto a = AddRouter(topo, "a", Ipv4Addr(1, 0, 0, 1), 100);
  const auto b = AddRouter(topo, "b", Ipv4Addr(2, 0, 0, 1), 200);
  Link(topo, a, b, PeerRelation::kCustomer);

  Simulator sim(std::move(topo));
  std::vector<BestPathChangeView> seen;
  sim.AddBestPathTap(a, [&](const BestPathChangeView& v) { seen.push_back(v); });
  sim.Originate(b, kP);
  sim.Start();
  sim.RunToQuiescence(10 * kSecond);

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].prefix, kP);
  ASSERT_TRUE(seen[0].new_best);
  EXPECT_TRUE(seen[0].new_advertisable);  // eBGP-learned
  EXPECT_FALSE(seen[0].old_best);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run = [] {
    Topology topo;
    const auto a = AddRouter(topo, "a", Ipv4Addr(1, 0, 0, 1), 100);
    const auto b = AddRouter(topo, "b", Ipv4Addr(2, 0, 0, 1), 200);
    const auto c = AddRouter(topo, "c", Ipv4Addr(3, 0, 0, 1), 300);
    Link(topo, a, b, PeerRelation::kCustomer);
    Link(topo, b, c, PeerRelation::kCustomer);
    Link(topo, c, a, PeerRelation::kCustomer);
    Simulator sim(std::move(topo), /*seed=*/5);
    for (int i = 0; i < 10; ++i) {
      sim.Originate(c, Prefix(Ipv4Addr(10, static_cast<std::uint8_t>(i), 0, 0), 16));
    }
    sim.Start();
    sim.RunToQuiescence(5 * util::kMinute);
    return sim.stats().messages_delivered;
  };
  EXPECT_EQ(run(), run());
}

TEST(SimulatorTest, WithdrawalsBypassMrai) {
  // Classic MRAI applies to announcements only: after a route vanishes,
  // the withdrawal must reach the peer immediately even while the
  // announcement side is rate-limited.
  Topology topo;
  const auto a = AddRouter(topo, "a", Ipv4Addr(1, 0, 0, 1), 100);
  const auto b = AddRouter(topo, "b", Ipv4Addr(2, 0, 0, 1), 200);
  LinkSpec l;
  l.a = a;
  l.b = b;
  l.b_is_as_seen_by_a = PeerRelation::kCustomer;
  l.delay = kMillisecond;
  l.b_mrai = 60 * kSecond;  // b rate-limits announcements toward a
  topo.AddLink(l);

  Simulator sim(std::move(topo));
  sim.Originate(b, kP);
  sim.Start();
  sim.Run(kSecond);
  ASSERT_NE(sim.RibOf(a).Best(kP), nullptr);

  // Immediately re-announce (gated by MRAI) then withdraw: the withdraw
  // must not wait the full 60 s.
  bgp::PathAttributes changed;
  changed.med = 7;
  sim.ScheduleOriginate(sim.now() + kSecond, b, kP, changed);
  sim.ScheduleWithdrawOrigin(sim.now() + 2 * kSecond, b, kP);
  sim.Run(sim.now() + 5 * kSecond);
  EXPECT_EQ(sim.RibOf(a).Best(kP), nullptr);
}

TEST(SimulatorTest, MraiGatedAnnouncementEventuallyArrives) {
  Topology topo;
  const auto a = AddRouter(topo, "a", Ipv4Addr(1, 0, 0, 1), 100);
  const auto b = AddRouter(topo, "b", Ipv4Addr(2, 0, 0, 1), 200);
  LinkSpec l;
  l.a = a;
  l.b = b;
  l.b_is_as_seen_by_a = PeerRelation::kCustomer;
  l.delay = kMillisecond;
  l.b_mrai = 30 * kSecond;
  topo.AddLink(l);

  Simulator sim(std::move(topo));
  sim.Originate(b, kP);
  sim.Start();
  sim.Run(kSecond);

  // A second announcement with new attributes within the MRAI window:
  // gated, then flushed at the window boundary.
  bgp::PathAttributes changed;
  changed.med = 9;
  sim.ScheduleOriginate(sim.now() + kSecond, b, kP, changed);
  sim.Run(sim.now() + 10 * kSecond);
  ASSERT_NE(sim.RibOf(a).Best(kP), nullptr);
  EXPECT_FALSE(sim.RibOf(a).Best(kP)->attrs.med.has_value());  // still old
  ASSERT_TRUE(sim.RunToQuiescence(sim.now() + 60 * kSecond));
  ASSERT_NE(sim.RibOf(a).Best(kP), nullptr);
  EXPECT_EQ(sim.RibOf(a).Best(kP)->attrs.med, 9u);  // flushed
}

TEST(SimulatorTest, ScheduleLinkFlapsProducesRequestedCycles) {
  Topology topo;
  const auto a = AddRouter(topo, "a", Ipv4Addr(1, 0, 0, 1), 100);
  const auto b = AddRouter(topo, "b", Ipv4Addr(2, 0, 0, 1), 200);
  const auto link = Link(topo, a, b, PeerRelation::kCustomer);
  Simulator sim(std::move(topo));
  sim.Originate(b, kP);
  sim.Start();
  sim.Run(kSecond);
  sim.ScheduleLinkFlaps(link, sim.now() + kSecond, 2 * kSecond, 3 * kSecond,
                        4);
  ASSERT_TRUE(sim.RunToQuiescence(sim.now() + 5 * util::kMinute));
  EXPECT_EQ(sim.stats().sessions_dropped, 4u);
  EXPECT_EQ(sim.stats().sessions_established, 5u);  // initial + 4 recoveries
  EXPECT_NE(sim.RibOf(a).Best(kP), nullptr);        // ends up
}

TEST(SimulatorTest, ReestablishedSessionRelearnsEverything) {
  // Down/up with multiple prefixes: after recovery the peer's table is
  // byte-identical to before.
  Topology topo;
  const auto a = AddRouter(topo, "a", Ipv4Addr(1, 0, 0, 1), 100);
  const auto b = AddRouter(topo, "b", Ipv4Addr(2, 0, 0, 1), 200);
  const auto link = Link(topo, a, b, PeerRelation::kCustomer);
  Simulator sim(std::move(topo));
  std::vector<Prefix> prefixes;
  for (std::uint8_t i = 0; i < 10; ++i) {
    prefixes.push_back(Prefix(Ipv4Addr(10, i, 0, 0), 16));
    sim.Originate(b, prefixes.back());
  }
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(kSecond * 10));
  EXPECT_EQ(sim.RibOf(a).PrefixCount(), 10u);

  sim.ScheduleLinkDown(link, sim.now() + kSecond);
  sim.ScheduleLinkUp(link, sim.now() + 2 * kSecond);
  ASSERT_TRUE(sim.RunToQuiescence(sim.now() + util::kMinute));
  EXPECT_EQ(sim.RibOf(a).PrefixCount(), 10u);
  for (const auto& p : prefixes) {
    ASSERT_NE(sim.RibOf(a).Best(p), nullptr);
    EXPECT_EQ(sim.RibOf(a).Best(p)->attrs.as_path, (AsPath{200}));
  }
}

TEST(TopologyTest, ValidatesLinks) {
  Topology topo;
  const auto a = AddRouter(topo, "a", Ipv4Addr(1, 0, 0, 1), 100);
  const auto b = AddRouter(topo, "b", Ipv4Addr(2, 0, 0, 1), 100);
  LinkSpec self;
  self.a = a;
  self.b = a;
  EXPECT_THROW(topo.AddLink(self), std::invalid_argument);
  LinkSpec wrong_rel;
  wrong_rel.a = a;
  wrong_rel.b = b;
  wrong_rel.b_is_as_seen_by_a = PeerRelation::kPeer;  // same AS => internal
  EXPECT_THROW(topo.AddLink(wrong_rel), std::invalid_argument);
}

TEST(TopologyTest, ReverseRelation) {
  EXPECT_EQ(Topology::Reverse(PeerRelation::kCustomer),
            PeerRelation::kProvider);
  EXPECT_EQ(Topology::Reverse(PeerRelation::kProvider),
            PeerRelation::kCustomer);
  EXPECT_EQ(Topology::Reverse(PeerRelation::kPeer), PeerRelation::kPeer);
  EXPECT_EQ(Topology::Reverse(PeerRelation::kInternal),
            PeerRelation::kInternal);
}

}  // namespace
}  // namespace ranomaly::net
