#include <gtest/gtest.h>

#include "collector/collector.h"
#include "core/moas.h"
#include "net/simulator.h"

namespace ranomaly::core {
namespace {

using bgp::AsPath;
using bgp::Ipv4Addr;
using bgp::PathAttributes;
using bgp::Prefix;
using util::kMinute;
using util::kSecond;

PathAttributes Via(AsPath path) {
  PathAttributes a;
  a.nexthop = Ipv4Addr(10, 0, 0, 1);
  a.as_path = std::move(path);
  return a;
}

const Prefix kVictim = *Prefix::Parse("192.0.2.0/24");

TEST(MoasDetectorTest, NewOriginOnEstablishedPrefixIsMoas) {
  MoasDetector detector;
  EXPECT_FALSE(detector.OnAnnounce(0, kVictim, Via({100, 200})));
  // Same origin later: fine.
  EXPECT_FALSE(detector.OnAnnounce(kMinute, kVictim, Via({101, 200})));
  // A different origin after the baseline: hijack-shaped.
  const auto conflict =
      detector.OnAnnounce(30 * kMinute, kVictim, Via({100, 666}));
  ASSERT_TRUE(conflict);
  EXPECT_EQ(conflict->kind, OriginConflictKind::kMoas);
  EXPECT_EQ(conflict->new_origin, 666u);
  EXPECT_EQ(conflict->established_origins, std::set<bgp::AsNumber>{200});
  EXPECT_NE(conflict->ToString().find("AS666"), std::string::npos);
}

TEST(MoasDetectorTest, BaselineMultiOriginIsLegit) {
  // Anycast-style prefixes announce from several origins from the start;
  // both seen within the baseline period => no conflict, ever after.
  MoasDetector detector;
  EXPECT_FALSE(detector.OnAnnounce(0, kVictim, Via({100, 200})));
  EXPECT_FALSE(detector.OnAnnounce(kMinute, kVictim, Via({100, 201})));
  EXPECT_FALSE(detector.OnAnnounce(60 * kMinute, kVictim, Via({100, 200})));
  EXPECT_FALSE(detector.OnAnnounce(61 * kMinute, kVictim, Via({100, 201})));
  EXPECT_EQ(detector.OriginsOf(kVictim),
            (std::set<bgp::AsNumber>{200, 201}));
}

TEST(MoasDetectorTest, MoreSpecificForeignOriginIsSubMoas) {
  MoasDetector detector;
  detector.OnAnnounce(0, *Prefix::Parse("192.0.0.0/16"), Via({100, 200}));
  const auto conflict = detector.OnAnnounce(
      30 * kMinute, *Prefix::Parse("192.0.2.0/24"), Via({100, 666}));
  ASSERT_TRUE(conflict);
  EXPECT_EQ(conflict->kind, OriginConflictKind::kSubMoas);
  EXPECT_EQ(conflict->established_prefix, *Prefix::Parse("192.0.0.0/16"));
  EXPECT_EQ(conflict->new_origin, 666u);
}

TEST(MoasDetectorTest, MoreSpecificSameOriginIsFine) {
  // Traffic engineering: the owner de-aggregating its own block.
  MoasDetector detector;
  detector.OnAnnounce(0, *Prefix::Parse("192.0.0.0/16"), Via({100, 200}));
  EXPECT_FALSE(detector.OnAnnounce(30 * kMinute,
                                   *Prefix::Parse("192.0.2.0/24"),
                                   Via({101, 200})));
}

TEST(MoasDetectorTest, OriginTtlExpiresOldOwners) {
  MoasDetector::Options options;
  options.origin_ttl = util::kDay;
  MoasDetector detector(options);
  detector.OnAnnounce(0, kVictim, Via({100, 200}));
  // Two days later AS300 takes over: flagged once (200 still on record
  // until the TTL sweep)...
  const auto first =
      detector.OnAnnounce(2 * util::kDay, kVictim, Via({100, 300}));
  ASSERT_TRUE(first);
  // ...but after the takeover, AS300 alone is the owner: a later 300
  // announcement is clean, and the old origin has aged out.
  EXPECT_FALSE(detector.OnAnnounce(3 * util::kDay, kVictim, Via({100, 300})));
  EXPECT_EQ(detector.OriginsOf(kVictim), std::set<bgp::AsNumber>{300});
}

TEST(MoasDetectorTest, EmptyPathIgnored) {
  MoasDetector detector;
  EXPECT_FALSE(detector.OnAnnounce(0, kVictim, Via({})));
  EXPECT_EQ(detector.TrackedPrefixes(), 0u);
}

// End to end: a hijacker AS announces a victim's prefix into a small
// internet; the collector feed drives the detector.
TEST(MoasIntegrationTest, HijackDetectedThroughSimulator) {
  net::Topology topo;
  auto router = [&](const char* name, Ipv4Addr addr, bgp::AsNumber asn) {
    return topo.AddRouter(net::RouterSpec{name, addr, asn, 0, false, {}});
  };
  const auto edge = router("edge", Ipv4Addr(10, 0, 0, 1), 65000);
  const auto isp = router("isp", Ipv4Addr(20, 0, 0, 1), 100);
  const auto victim = router("victim", Ipv4Addr(30, 0, 0, 1), 200);
  const auto hijacker = router("hijacker", Ipv4Addr(40, 0, 0, 1), 666);
  auto link = [&](net::RouterIndex a, net::RouterIndex b,
                  net::PeerRelation rel) {
    net::LinkSpec l;
    l.a = a;
    l.b = b;
    l.b_is_as_seen_by_a = rel;
    return topo.AddLink(l);
  };
  link(edge, isp, net::PeerRelation::kProvider);
  link(isp, victim, net::PeerRelation::kCustomer);
  link(isp, hijacker, net::PeerRelation::kCustomer);

  net::Simulator sim(std::move(topo));
  collector::Collector rex;
  rex.AttachTo(sim, {edge});
  sim.Originate(victim, kVictim);
  sim.Start();
  sim.RunToQuiescence(5 * kMinute);

  // The hijack: AS666 announces a more-specific of the victim's prefix
  // (longest-prefix match steals the traffic - the 1.2.3.0/24 typo story
  // from the paper's introduction).
  const Prefix more_specific = *Prefix::Parse("192.0.2.128/25");
  sim.ScheduleOriginate(sim.now() + 30 * kMinute, hijacker, more_specific);
  sim.RunToQuiescence(sim.now() + 60 * kMinute);

  MoasDetector detector;
  for (const auto& e : rex.events().events()) {
    if (e.type == bgp::EventType::kAnnounce) {
      detector.OnAnnounce(e.time, e.prefix, e.attrs);
    }
  }
  ASSERT_EQ(detector.conflicts().size(), 1u);
  const auto& conflict = detector.conflicts()[0];
  EXPECT_EQ(conflict.kind, OriginConflictKind::kSubMoas);
  EXPECT_EQ(conflict.prefix, more_specific);
  EXPECT_EQ(conflict.new_origin, 666u);
  EXPECT_EQ(conflict.established_prefix, kVictim);
}

}  // namespace
}  // namespace ranomaly::core
