#include <gtest/gtest.h>

#include "bgp/codec.h"
#include "util/rng.h"

namespace ranomaly::bgp {
namespace {

UpdateMessage SampleUpdate() {
  UpdateMessage u;
  u.withdrawn = {*Prefix::Parse("10.1.0.0/16"), *Prefix::Parse("10.2.3.0/24")};
  PathAttributes a;
  a.nexthop = Ipv4Addr(192, 0, 2, 1);
  a.as_path = AsPath{11423, 209, 701};
  a.origin = Origin::kIgp;
  a.local_pref = 120;
  a.med = 50;
  a.communities.Add(Community(11423, 65350));
  a.communities.Add(Community(2152, 65297));
  u.attrs = a;
  u.nlri = {*Prefix::Parse("192.96.10.0/24"), *Prefix::Parse("62.80.64.0/20")};
  return u;
}

TEST(CodecTest, UpdateRoundTrip) {
  const UpdateMessage u = SampleUpdate();
  const auto wire = EncodeUpdate(u);
  const auto decoded = DecodeMessage(wire);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->type, MessageType::kUpdate);
  EXPECT_EQ(decoded->bytes_consumed, wire.size());
  EXPECT_EQ(decoded->update.withdrawn, u.withdrawn);
  EXPECT_EQ(decoded->update.nlri, u.nlri);
  ASSERT_TRUE(decoded->update.attrs);
  EXPECT_EQ(decoded->update.attrs->nexthop, u.attrs->nexthop);
  EXPECT_EQ(decoded->update.attrs->as_path, u.attrs->as_path);
  EXPECT_EQ(decoded->update.attrs->local_pref, u.attrs->local_pref);
  EXPECT_EQ(decoded->update.attrs->med, u.attrs->med);
  EXPECT_EQ(decoded->update.attrs->communities, u.attrs->communities);
}

TEST(CodecTest, WithdrawOnlyUpdate) {
  UpdateMessage u;
  u.withdrawn = {*Prefix::Parse("10.0.0.0/8")};
  const auto wire = EncodeUpdate(u);
  const auto decoded = DecodeMessage(wire);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->update.nlri.empty());
  EXPECT_FALSE(decoded->update.attrs);
  EXPECT_EQ(decoded->update.withdrawn, u.withdrawn);
}

TEST(CodecTest, KeepaliveRoundTrip) {
  const auto wire = EncodeKeepalive();
  EXPECT_EQ(wire.size(), 19u);
  const auto decoded = DecodeMessage(wire);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->type, MessageType::kKeepalive);
}

TEST(CodecTest, NlriWithoutAttrsThrows) {
  UpdateMessage u;
  u.nlri = {*Prefix::Parse("10.0.0.0/8")};
  EXPECT_THROW(EncodeUpdate(u), std::invalid_argument);
}

TEST(CodecTest, FourByteAsnRejected) {
  UpdateMessage u;
  PathAttributes a;
  a.as_path = AsPath{70000};  // does not fit the 2-octet wire format
  u.attrs = a;
  u.nlri = {*Prefix::Parse("10.0.0.0/8")};
  EXPECT_THROW(EncodeUpdate(u), std::invalid_argument);
}

TEST(CodecTest, RejectsBadMarker) {
  auto wire = EncodeKeepalive();
  wire[3] = 0x00;
  EXPECT_FALSE(DecodeMessage(wire));
}

TEST(CodecTest, RejectsTruncation) {
  auto wire = EncodeUpdate(SampleUpdate());
  for (std::size_t cut = 1; cut < 20; ++cut) {
    std::vector<std::uint8_t> shorter(wire.begin(),
                                      wire.end() - static_cast<long>(cut));
    EXPECT_FALSE(DecodeMessage(shorter)) << "cut=" << cut;
  }
}

TEST(CodecTest, RejectsCorruptLength) {
  auto wire = EncodeKeepalive();
  wire[16] = 0xff;  // absurd length
  wire[17] = 0xff;
  EXPECT_FALSE(DecodeMessage(wire));
}

TEST(CodecTest, FuzzDecodeNeverCrashes) {
  util::Rng rng(1234);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> junk(rng.NextBelow(80));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.Next());
    // Make the marker valid half of the time to reach deeper code.
    if (rng.NextBool(0.5)) {
      for (std::size_t k = 0; k < std::min<std::size_t>(16, junk.size()); ++k) {
        junk[k] = 0xff;
      }
    }
    DecodeMessage(junk);  // must not crash or hang
  }
  SUCCEED();
}

// Hand-assembles an UPDATE whose framing is valid but whose attribute
// block is whatever the test says (for RFC 7606 downgrade cases).
std::vector<std::uint8_t> RawUpdate(const std::vector<std::uint8_t>& attrs,
                                    const std::vector<std::uint8_t>& nlri) {
  std::vector<std::uint8_t> wire(16, 0xff);  // marker
  const std::size_t length = 19 + 2 + 2 + attrs.size() + nlri.size();
  wire.push_back(static_cast<std::uint8_t>(length >> 8));
  wire.push_back(static_cast<std::uint8_t>(length & 0xff));
  wire.push_back(2);  // type = UPDATE
  wire.push_back(0);  // withdrawn routes length = 0
  wire.push_back(0);
  wire.push_back(static_cast<std::uint8_t>(attrs.size() >> 8));
  wire.push_back(static_cast<std::uint8_t>(attrs.size() & 0xff));
  wire.insert(wire.end(), attrs.begin(), attrs.end());
  wire.insert(wire.end(), nlri.begin(), nlri.end());
  return wire;
}

TEST(CodecTest, TolerantDecodeDowngradesMalformedAttributes) {
  // Attribute block truncated mid-attribute; NLRI intact.  RFC 7606:
  // salvage the NLRI as treat-as-withdraw instead of killing the session.
  const auto wire = RawUpdate({0x40, 0x01}, {24, 192, 96, 10});
  EXPECT_FALSE(DecodeMessage(wire));
  const TolerantDecodeResult tolerant = DecodeMessageTolerant(wire);
  ASSERT_EQ(tolerant.status, DecodeStatus::kAttributeError);
  EXPECT_FALSE(tolerant.result.update.attrs);
  ASSERT_EQ(tolerant.result.update.nlri.size(), 1u);
  EXPECT_EQ(tolerant.result.update.nlri[0], *Prefix::Parse("192.96.10.0/24"));
  EXPECT_EQ(tolerant.result.bytes_consumed, wire.size());
}

TEST(CodecTest, TolerantDecodeMissingNexthopIsAttributeError) {
  // Well-formed attributes but no NEXT_HOP while NLRI is present: the
  // routes are unusable and must be treated as withdrawn.
  // ORIGIN (flags 0x40, type 1, len 1, IGP) + AS_PATH (0x40, 2, len 0).
  const auto wire =
      RawUpdate({0x40, 0x01, 0x01, 0x00, 0x40, 0x02, 0x00}, {8, 10});
  const TolerantDecodeResult tolerant = DecodeMessageTolerant(wire);
  ASSERT_EQ(tolerant.status, DecodeStatus::kAttributeError);
  ASSERT_EQ(tolerant.result.update.nlri.size(), 1u);
  EXPECT_EQ(tolerant.result.update.nlri[0], *Prefix::Parse("10.0.0.0/8"));
}

TEST(CodecTest, TolerantDecodeFramingErrors) {
  auto marker = EncodeUpdate(SampleUpdate());
  marker[5] ^= 0x10;
  EXPECT_EQ(DecodeMessageTolerant(marker).status, DecodeStatus::kFramingError);
  auto cut = EncodeUpdate(SampleUpdate());
  cut.resize(cut.size() - 3);
  EXPECT_EQ(DecodeMessageTolerant(cut).status, DecodeStatus::kFramingError);
  EXPECT_EQ(DecodeMessageTolerant(EncodeKeepalive()).status, DecodeStatus::kOk);
}

// Satellite (ISSUE 1): seeded truncations and bit flips over valid
// UPDATEs must never crash, over-read, or report bytes_consumed past the
// buffer — in either decoder.
TEST(CodecTest, DeterministicCorruptionNeverOverReads) {
  util::Rng rng(20260806);
  const auto base = EncodeUpdate(SampleUpdate());
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::uint8_t> wire = base;
    if (rng.NextBool(0.5)) {
      wire.resize(rng.NextBelow(wire.size() + 1));  // truncate (maybe to 0)
    }
    const std::size_t flips = rng.NextBelow(4);
    for (std::size_t k = 0; k < flips && !wire.empty(); ++k) {
      wire[rng.NextBelow(wire.size())] ^=
          static_cast<std::uint8_t>(1u << rng.NextBelow(8));
    }
    const auto strict = DecodeMessage(wire);
    if (strict) {
      EXPECT_LE(strict->bytes_consumed, wire.size());
    }
    const TolerantDecodeResult tolerant = DecodeMessageTolerant(wire);
    if (tolerant.status != DecodeStatus::kFramingError) {
      EXPECT_LE(tolerant.result.bytes_consumed, wire.size());
    }
  }
}

// Property: random well-formed updates round-trip exactly.
TEST(CodecTest, RandomRoundTrip) {
  util::Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    UpdateMessage u;
    const std::size_t nw = rng.NextBelow(4);
    for (std::size_t k = 0; k < nw; ++k) {
      u.withdrawn.push_back(
          Prefix(Ipv4Addr(static_cast<std::uint32_t>(rng.Next())),
                 static_cast<std::uint8_t>(rng.NextBelow(33))));
    }
    if (rng.NextBool(0.8)) {
      PathAttributes a;
      a.nexthop = Ipv4Addr(static_cast<std::uint32_t>(rng.Next()));
      std::vector<AsNumber> asns;
      for (std::size_t k = 0; k < rng.NextBelow(6); ++k) {
        asns.push_back(static_cast<AsNumber>(1 + rng.NextBelow(65000)));
      }
      a.as_path = AsPath(std::move(asns));
      if (rng.NextBool(0.5)) a.med = static_cast<std::uint32_t>(rng.Next());
      a.local_pref = static_cast<std::uint32_t>(rng.NextBelow(500));
      u.attrs = a;
      const std::size_t nn = rng.NextBelow(4);
      for (std::size_t k = 0; k < nn; ++k) {
        u.nlri.push_back(
            Prefix(Ipv4Addr(static_cast<std::uint32_t>(rng.Next())),
                   static_cast<std::uint8_t>(rng.NextBelow(33))));
      }
    }
    const auto wire = EncodeUpdate(u);
    const auto decoded = DecodeMessage(wire);
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->update.withdrawn, u.withdrawn);
    EXPECT_EQ(decoded->update.nlri, u.nlri);
    if (u.attrs) {
      ASSERT_TRUE(decoded->update.attrs);
      EXPECT_EQ(decoded->update.attrs->as_path, u.attrs->as_path);
      EXPECT_EQ(decoded->update.attrs->med, u.attrs->med);
    }
  }
}

}  // namespace
}  // namespace ranomaly::bgp
