#include <gtest/gtest.h>

#include "collector/collector.h"
#include "core/pipeline.h"
#include "stemming/stemming.h"
#include "workload/rfc3345.h"

namespace ranomaly::workload {
namespace {

using util::kSecond;

TEST(Rfc3345Test, SequentialMedOscillatesForever) {
  const Rfc3345Net net = BuildRfc3345(/*deterministic_med=*/false);
  net::Simulator sim(net.topology, 1);
  net.SeedRoutes(sim);
  sim.Start();
  // The network must NOT converge: the preference cycle keeps the
  // reflectors exchanging updates indefinitely.
  EXPECT_FALSE(sim.RunToQuiescence(30 * kSecond));
  // And it is genuinely churning, not just slow: thousands of best-path
  // changes for one prefix in 30 simulated seconds.
  EXPECT_GT(sim.stats().best_path_changes, 1'000u);
}

TEST(Rfc3345Test, DeterministicMedConverges) {
  const Rfc3345Net net = BuildRfc3345(/*deterministic_med=*/true);
  net::Simulator sim(net.topology, 1);
  net.SeedRoutes(sim);
  sim.Start();
  // The RFC 3345 mitigation: order-independent MED evaluation converges.
  EXPECT_TRUE(sim.RunToQuiescence(30 * kSecond));
  // Every reflector holds a best route for the contested prefix.
  for (const net::RouterIndex rr : {net.rr1, net.rr2, net.rr3}) {
    EXPECT_NE(sim.RibOf(rr).Best(net.prefix), nullptr);
  }
}

TEST(Rfc3345Test, OscillationIsDeterministicallyReproducible) {
  auto run = [] {
    const Rfc3345Net net = BuildRfc3345(false);
    net::Simulator sim(net.topology, 1);
    net.SeedRoutes(sim);
    sim.Start();
    sim.RunToQuiescence(10 * kSecond);
    return sim.stats().best_path_changes;
  };
  EXPECT_EQ(run(), run());
}

TEST(Rfc3345Test, CollectorSeesSinglePrefixDominance) {
  // The Section IV-F observable: one prefix generating more iBGP traffic
  // than everything else combined; Stemming names it at a short
  // timescale; the pipeline classifies the MED oscillation.
  const Rfc3345Net net = BuildRfc3345(false);
  net::Simulator sim(net.topology, 1);
  collector::Collector rex;
  rex.AttachTo(sim, {net.rr1, net.rr2, net.rr3});
  net.SeedRoutes(sim);
  sim.Start();
  sim.RunToQuiescence(10 * kSecond);

  ASSERT_GT(rex.events().size(), 100u);
  std::size_t med_prefix_events = 0;
  for (const auto& e : rex.events().events()) {
    if (e.prefix == net.prefix) ++med_prefix_events;
  }
  EXPECT_EQ(med_prefix_events, rex.events().size());  // only one prefix here

  const auto result = stemming::Stem(rex.events().events());
  ASSERT_FALSE(result.components.empty());
  ASSERT_EQ(result.components[0].prefixes.size(), 1u);
  EXPECT_EQ(result.components[0].prefixes[0], net.prefix);

  core::Pipeline pipeline;
  const auto incidents = pipeline.AnalyzeWindow(rex.events().events());
  ASSERT_FALSE(incidents.empty());
  EXPECT_EQ(incidents[0].kind, core::IncidentKind::kMedOscillation)
      << incidents[0].summary;
}

TEST(Rfc3345Test, AlwaysCompareMedAlsoConverges) {
  // The other classic mitigation: comparing MED across neighbor ASes
  // restores a total order (at the cost of policy semantics).
  Rfc3345Net net = BuildRfc3345(false);
  net::Topology patched;
  for (std::size_t i = 0; i < net.topology.RouterCount(); ++i) {
    net::RouterSpec spec = net.topology.router(static_cast<net::RouterIndex>(i));
    spec.decision.always_compare_med = true;
    patched.AddRouter(std::move(spec));
  }
  for (std::size_t i = 0; i < net.topology.LinkCount(); ++i) {
    patched.AddLink(net.topology.link(static_cast<net::LinkIndex>(i)));
  }
  net::Simulator sim(std::move(patched), 1);
  net.SeedRoutes(sim);
  sim.Start();
  EXPECT_TRUE(sim.RunToQuiescence(30 * kSecond));
}

}  // namespace
}  // namespace ranomaly::workload
