#include <gtest/gtest.h>

#include "net/policy.h"

namespace ranomaly::net {
namespace {

using bgp::AsPath;
using bgp::Community;
using bgp::Ipv4Addr;
using bgp::PathAttributes;
using bgp::Prefix;

const Prefix kP = *Prefix::Parse("10.1.2.0/24");

PathAttributes Attrs() {
  PathAttributes a;
  a.nexthop = Ipv4Addr(1, 1, 1, 1);
  a.as_path = AsPath{11423, 209};
  return a;
}

// --- PrefixRule / PrefixList ------------------------------------------------

TEST(PrefixRuleTest, ExactMatchWithoutGeLe) {
  PrefixRule rule{*Prefix::Parse("10.1.2.0/24"), 0, 0, true};
  EXPECT_TRUE(rule.Matches(*Prefix::Parse("10.1.2.0/24")));
  EXPECT_FALSE(rule.Matches(*Prefix::Parse("10.1.2.0/25")));
  EXPECT_FALSE(rule.Matches(*Prefix::Parse("10.1.0.0/16")));
}

TEST(PrefixRuleTest, GeLeRange) {
  PrefixRule rule{*Prefix::Parse("10.0.0.0/8"), 16, 24, true};
  EXPECT_TRUE(rule.Matches(*Prefix::Parse("10.1.0.0/16")));
  EXPECT_TRUE(rule.Matches(*Prefix::Parse("10.1.2.0/24")));
  EXPECT_FALSE(rule.Matches(*Prefix::Parse("10.0.0.0/8")));    // too short
  EXPECT_FALSE(rule.Matches(*Prefix::Parse("10.1.2.0/25")));   // too long
  EXPECT_FALSE(rule.Matches(*Prefix::Parse("11.1.0.0/16")));   // outside
}

TEST(PrefixListTest, FirstMatchWinsImplicitDeny) {
  PrefixList list;
  list.Add(PrefixRule{*Prefix::Parse("10.1.0.0/16"), 16, 32, false});  // deny
  list.Add(PrefixRule{*Prefix::Parse("10.0.0.0/8"), 8, 32, true});
  EXPECT_FALSE(list.Permits(*Prefix::Parse("10.1.2.0/24")));  // denied first
  EXPECT_TRUE(list.Permits(*Prefix::Parse("10.9.0.0/16")));
  EXPECT_FALSE(list.Permits(*Prefix::Parse("192.168.0.0/16")));  // implicit
}

// --- RouteMap ------------------------------------------------------------

TEST(RouteMapTest, PassthroughWhenEmpty) {
  const RouteMap map;
  const auto out = map.Apply(kP, Attrs(), 25);
  ASSERT_TRUE(out);
  EXPECT_EQ(out->as_path, Attrs().as_path);
}

TEST(RouteMapTest, ImplicitDenyAtEnd) {
  RouteMap map("M");
  RouteMapClause clause;
  clause.match_community = Community(11423, 65350);
  map.AddClause(std::move(clause));
  EXPECT_FALSE(map.Apply(kP, Attrs(), 25));  // no tag => falls off => deny
}

TEST(RouteMapTest, MatchCommunitySetsLocalPref) {
  RouteMap map("M");
  RouteMapClause clause;
  clause.match_community = Community(11423, 65350);
  clause.set_local_pref = 80;
  map.AddClause(std::move(clause));
  auto attrs = Attrs();
  attrs.communities.Add(Community(11423, 65350));
  const auto out = map.Apply(kP, attrs, 25);
  ASSERT_TRUE(out);
  EXPECT_EQ(out->local_pref, 80u);
}

TEST(RouteMapTest, DenyClauseRejects) {
  RouteMap map("M");
  RouteMapClause deny;
  deny.permit = false;
  deny.match_as_in_path = 666;
  map.AddClause(std::move(deny));
  RouteMapClause permit;
  map.AddClause(std::move(permit));

  auto bad = Attrs();
  bad.as_path = AsPath{11423, 666, 3};
  EXPECT_FALSE(map.Apply(kP, bad, 25));
  EXPECT_TRUE(map.Apply(kP, Attrs(), 25));
}

TEST(RouteMapTest, FirstMatchingClauseApplies) {
  // The Berkeley r1200 shape: ISP tag -> LP 70; everything else -> LP 100.
  RouteMap map("CALREN-ALL-IN");
  RouteMapClause isp;
  isp.match_community = Community(11423, 65350);
  isp.set_local_pref = 70;
  map.AddClause(std::move(isp));
  RouteMapClause rest;
  rest.set_local_pref = 100;
  map.AddClause(std::move(rest));

  auto commodity = Attrs();
  commodity.communities.Add(Community(11423, 65350));
  EXPECT_EQ(map.Apply(kP, commodity, 25)->local_pref, 70u);
  EXPECT_EQ(map.Apply(kP, Attrs(), 25)->local_pref, 100u);
}

TEST(RouteMapTest, SetAndDeleteCommunities) {
  RouteMap map("M");
  RouteMapClause clause;
  clause.set_communities = {Community(1, 1), Community(2, 2)};
  clause.delete_communities = {Community(3, 3)};
  map.AddClause(std::move(clause));
  auto attrs = Attrs();
  attrs.communities.Add(Community(3, 3));
  const auto out = map.Apply(kP, attrs, 25);
  ASSERT_TRUE(out);
  EXPECT_TRUE(out->communities.Contains(Community(1, 1)));
  EXPECT_TRUE(out->communities.Contains(Community(2, 2)));
  EXPECT_FALSE(out->communities.Contains(Community(3, 3)));
}

TEST(RouteMapTest, PrependUsesOwnAs) {
  RouteMap map("M");
  RouteMapClause clause;
  clause.prepend_count = 2;
  map.AddClause(std::move(clause));
  const auto out = map.Apply(kP, Attrs(), 25);
  ASSERT_TRUE(out);
  EXPECT_EQ(out->as_path, (AsPath{25, 25, 11423, 209}));
}

TEST(RouteMapTest, MatchEmptyAsPath) {
  // The "advertise only locally originated routes" export policy.
  RouteMap map("LOCAL-ONLY");
  RouteMapClause clause;
  clause.match_empty_as_path = true;
  map.AddClause(std::move(clause));
  PathAttributes local;
  EXPECT_TRUE(map.Apply(kP, local, 25));
  EXPECT_FALSE(map.Apply(kP, Attrs(), 25));
}

TEST(RouteMapTest, MatchPrefixList) {
  RouteMap map("M");
  RouteMapClause clause;
  PrefixList list;
  list.Add(PrefixRule{*Prefix::Parse("10.0.0.0/8"), 8, 32, true});
  clause.match_prefix_list = std::move(list);
  map.AddClause(std::move(clause));
  EXPECT_TRUE(map.Apply(*Prefix::Parse("10.5.0.0/16"), Attrs(), 25));
  EXPECT_FALSE(map.Apply(*Prefix::Parse("192.168.0.0/16"), Attrs(), 25));
}

TEST(RouteMapTest, AllMatchConditionsMustHold) {
  RouteMap map("M");
  RouteMapClause clause;
  clause.match_community = Community(1, 1);
  clause.match_as_in_path = 209;
  map.AddClause(std::move(clause));
  auto attrs = Attrs();  // has AS209 but not the community
  EXPECT_FALSE(map.Apply(kP, attrs, 25));
  attrs.communities.Add(Community(1, 1));
  EXPECT_TRUE(map.Apply(kP, attrs, 25));
}

}  // namespace
}  // namespace ranomaly::net
