#include <gtest/gtest.h>

#include "workload/eventgen.h"

namespace ranomaly::workload {
namespace {

using bgp::EventType;
using util::kMinute;
using util::kSecond;

InternetOptions SmallInternet() {
  InternetOptions options;
  options.monitored_peers = 3;
  options.nexthops_per_peer = 2;
  options.tier1_count = 4;
  options.transit_count = 10;
  options.origin_as_count = 50;
  options.prefix_count = 400;
  options.seed = 17;
  return options;
}

TEST(SyntheticInternetTest, ScalesMatchOptions) {
  const SyntheticInternet internet(SmallInternet());
  EXPECT_EQ(internet.prefixes().size(), 400u);
  EXPECT_EQ(internet.peers().size(), 3u);
  EXPECT_EQ(internet.nexthops().size(), 6u);
  // coverage 0.95 over 3 peers: roughly 3*0.95*400 routes.
  EXPECT_NEAR(static_cast<double>(internet.routes().size()), 3 * 0.95 * 400,
              120);
}

TEST(SyntheticInternetTest, PathsStartWithLocalAs) {
  const SyntheticInternet internet(SmallInternet());
  for (const auto& route : internet.routes()) {
    ASSERT_GE(route.attrs.as_path.Length(), 3u);
    EXPECT_EQ(route.attrs.as_path.FirstHop(),
              internet.options().local_as);
  }
}

TEST(SyntheticInternetTest, DeterministicPerSeed) {
  const SyntheticInternet a(SmallInternet());
  const SyntheticInternet b(SmallInternet());
  ASSERT_EQ(a.routes().size(), b.routes().size());
  for (std::size_t i = 0; i < a.routes().size(); ++i) {
    EXPECT_EQ(a.routes()[i].prefix, b.routes()[i].prefix);
    EXPECT_EQ(a.routes()[i].attrs.as_path, b.routes()[i].attrs.as_path);
  }
}

TEST(EventStreamGeneratorTest, StreamIsTimeOrdered) {
  const SyntheticInternet internet(SmallInternet());
  EventStreamGenerator gen(internet, 1);
  gen.SessionReset(0, 10 * kSecond, kMinute, 30 * kSecond);
  gen.Churn(0, 10 * kMinute, 200);
  const auto stream = gen.Take();
  for (std::size_t i = 1; i < stream.size(); ++i) {
    EXPECT_LE(stream[i - 1].time, stream[i].time);
  }
  EXPECT_EQ(gen.PendingEvents(), 0u);
}

TEST(EventStreamGeneratorTest, SessionResetWithdrawsAndRestores) {
  const SyntheticInternet internet(SmallInternet());
  EventStreamGenerator gen(internet, 2);
  gen.SessionReset(1, 0, kMinute, 10 * kSecond, /*exploration=*/0.0);
  const auto stream = gen.Take();

  // Every route of peer 1 contributes one withdrawal and one announce.
  std::size_t peer1_routes = 0;
  for (const auto& r : internet.routes()) {
    if (r.peer == internet.peers()[1]) ++peer1_routes;
  }
  EXPECT_EQ(stream.size(), 2 * peer1_routes);

  std::size_t withdraws = 0;
  for (const auto& e : stream.events()) {
    EXPECT_EQ(e.peer, internet.peers()[1]);
    if (e.type == EventType::kWithdraw) {
      ++withdraws;
      EXPECT_FALSE(e.attrs.as_path.Empty());  // augmented withdrawal
    }
  }
  EXPECT_EQ(withdraws, peer1_routes);
}

TEST(EventStreamGeneratorTest, ExplorationAddsEvents) {
  const SyntheticInternet internet(SmallInternet());
  EventStreamGenerator plain(internet, 3);
  plain.SessionReset(0, 0, kMinute, 10 * kSecond, 0.0);
  const auto base = plain.Take().size();

  EventStreamGenerator exploring(internet, 3);
  exploring.SessionReset(0, 0, kMinute, 10 * kSecond, 1.0);
  const auto with = exploring.Take().size();
  // Path exploration: each withdrawal becomes announce+withdraw.
  EXPECT_GT(with, base);
}

TEST(EventStreamGeneratorTest, Tier1FailoverMovesSharedPaths) {
  const SyntheticInternet internet(SmallInternet());
  EventStreamGenerator gen(internet, 4);
  gen.Tier1Failover(0, 1, 0, 30 * kSecond);
  const auto stream = gen.Take();
  ASSERT_GT(stream.size(), 0u);
  // Withdrawals name the failed tier-1, announcements the alternate.
  const bgp::AsNumber failed = internet.PathVia(0, 0, 0).asns()[1];
  const bgp::AsNumber alternate = internet.PathVia(1, 0, 0).asns()[1];
  for (const auto& e : stream.events()) {
    if (e.type == EventType::kWithdraw) {
      EXPECT_EQ(e.attrs.as_path.asns()[1], failed);
    } else {
      EXPECT_EQ(e.attrs.as_path.asns()[1], alternate);
    }
  }
}

TEST(EventStreamGeneratorTest, PrefixOscillationAlternates) {
  const SyntheticInternet internet(SmallInternet());
  EventStreamGenerator gen(internet, 5);
  gen.PrefixOscillation(7, 0, kMinute, kSecond);
  const auto stream = gen.Take();
  // Every route of the prefix flaps each cycle (the whole mesh sees it).
  std::size_t route_count = 0;
  for (const auto& r : internet.routes()) {
    if (r.prefix == internet.prefixes()[7]) ++route_count;
  }
  ASSERT_GE(route_count, 1u);
  ASSERT_GE(stream.size(), 100 * route_count);  // ~60 cycles x 2 x routes
  std::size_t withdraws = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].prefix, internet.prefixes()[7]);
    if (stream[i].type == EventType::kWithdraw) ++withdraws;
  }
  EXPECT_EQ(withdraws * 2, stream.size());  // strict W/A alternation per route
}

TEST(EventStreamGeneratorTest, ChurnStaysInInterval) {
  const SyntheticInternet internet(SmallInternet());
  EventStreamGenerator gen(internet, 6);
  gen.Churn(kMinute, 2 * kMinute, 100);
  const auto stream = gen.Take();
  EXPECT_GE(stream.events().front().time, kMinute);
  // Re-announcements land up to 30s past the interval end.
  EXPECT_LE(stream.events().back().time, 2 * kMinute + 31 * kSecond);
}

TEST(EventStreamGeneratorTest, ChurnRejectsEmptyInterval) {
  const SyntheticInternet internet(SmallInternet());
  EventStreamGenerator gen(internet, 7);
  EXPECT_THROW(gen.Churn(kMinute, kMinute, 10), std::invalid_argument);
}

}  // namespace
}  // namespace ranomaly::workload
