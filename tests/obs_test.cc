#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace ranomaly::obs {
namespace {

// --- metrics registry --------------------------------------------------------

TEST(MetricsTest, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  const MetricId h = registry.Histogram("h", {1.0, 2.0, 4.0});
  // One value per interesting position: inside a bucket, exactly on a
  // bound (counts in that bound's bucket: le semantics), and past the
  // last bound (+Inf bucket).
  for (const double v : {0.5, 1.0, 1.5, 2.0, 4.0, 5.0}) {
    registry.Observe(h, v);
  }
  const auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  const HistogramSnapshot& hist = snapshot[0].histogram;
  ASSERT_EQ(hist.bounds, (std::vector<double>{1.0, 2.0, 4.0}));
  EXPECT_EQ(hist.counts, (std::vector<std::uint64_t>{2, 2, 1, 1}));
  EXPECT_EQ(hist.total_count, 6u);
  EXPECT_DOUBLE_EQ(hist.sum, 14.0);
}

TEST(MetricsTest, ExponentialBoundsAscend) {
  const auto bounds = ExponentialBounds(1e-6, 4.0, 14);
  ASSERT_EQ(bounds.size(), 14u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-6);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
    EXPECT_DOUBLE_EQ(bounds[i], bounds[i - 1] * 4.0);
  }
  EXPECT_EQ(TimeBounds(), bounds);
}

TEST(MetricsTest, RegistrationIsIdempotentButKindChecked) {
  MetricsRegistry registry;
  const MetricId c = registry.Counter("x");
  EXPECT_EQ(registry.Counter("x"), c);
  EXPECT_THROW(registry.Gauge("x"), std::logic_error);
  EXPECT_THROW(registry.Histogram("x", {1.0}), std::logic_error);
  const MetricId h = registry.Histogram("y", {1.0, 2.0});
  EXPECT_EQ(registry.Histogram("y", {1.0, 2.0}), h);
  // Same name, different bounds: a bug at the call site.
  EXPECT_THROW(registry.Histogram("y", {1.0, 3.0}), std::logic_error);
  EXPECT_THROW(registry.Counter(""), std::invalid_argument);
  EXPECT_THROW(registry.Histogram("z", {}), std::invalid_argument);
  EXPECT_THROW(registry.Histogram("z", {2.0, 1.0}), std::invalid_argument);
}

TEST(MetricsTest, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry registry;
  const MetricId c = registry.Counter("c");
  registry.Add(c, 5);
  registry.Reset();
  EXPECT_EQ(registry.CounterValue("c"), 0u);
  registry.Add(c, 2);
  EXPECT_EQ(registry.CounterValue("c"), 2u);
}

// The tentpole determinism property at registry level: counters and
// histogram bucket counts merged from thread-local shards are
// bit-identical no matter how many workers did the writing.
TEST(MetricsTest, ShardMergeIsDeterministicAcrossThreadCounts) {
  constexpr std::size_t kItems = 500;
  std::vector<std::vector<MetricSnapshot>> runs;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    auto registry = std::make_unique<MetricsRegistry>();
    const MetricId c = registry->Counter("work_total");
    const MetricId h = registry->Histogram("work_size", {2.0, 8.0, 32.0});
    {
      util::ThreadPool pool(threads);
      pool.ParallelFor(kItems, [&](std::size_t i) {
        registry->Add(c, i);
        registry->Observe(h, static_cast<double>(i % 64));
      });
    }  // pool joins; worker shards retire into the registry
    runs.push_back(registry->Snapshot());
    EXPECT_EQ(registry->CounterValue("work_total"),
              kItems * (kItems - 1) / 2);
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t m = 0; m < runs[0].size(); ++m) {
      EXPECT_EQ(runs[r][m].name, runs[0][m].name);
      EXPECT_EQ(runs[r][m].counter, runs[0][m].counter);
      EXPECT_EQ(runs[r][m].histogram.counts, runs[0][m].histogram.counts);
      EXPECT_EQ(runs[r][m].histogram.total_count,
                runs[0][m].histogram.total_count);
    }
  }
}

TEST(MetricsTest, PooledJobRecordsUtilizationAndJobTimes) {
  // A pooled (non-inline) ParallelFor must leave the pool-health
  // instrumentation behind: a pool_utilization gauge in (0, 1] and
  // populated pool_job_seconds / pool_busy_seconds histograms.  All
  // three are wall-derived (gauge + *_seconds), so they are exempt from
  // — and must stay out of — the cross-thread-count determinism set.
  auto& registry = MetricsRegistry::Global();
  registry.Reset();
  {
    util::ThreadPool pool(2);
    std::atomic<std::uint64_t> sink{0};
    pool.ParallelFor(64, [&](std::size_t i) {
      std::uint64_t x = i;
      for (int k = 0; k < 1000; ++k) x = x * 6364136223846793005ULL + 1;
      sink.fetch_add(x, std::memory_order_relaxed);
    });
  }
  const MetricSnapshot* utilization = nullptr;
  const MetricSnapshot* job_seconds = nullptr;
  const MetricSnapshot* busy_seconds = nullptr;
  const auto snapshot = registry.Snapshot();
  for (const MetricSnapshot& m : snapshot) {
    if (m.name == "pool_utilization") utilization = &m;
    if (m.name == "pool_job_seconds") job_seconds = &m;
    if (m.name == "pool_busy_seconds") busy_seconds = &m;
  }
  ASSERT_NE(utilization, nullptr);
  EXPECT_EQ(utilization->kind, MetricKind::kGauge);
  EXPECT_GT(utilization->gauge, 0.0);
  EXPECT_LE(utilization->gauge, 1.0);
  ASSERT_NE(job_seconds, nullptr);
  EXPECT_GE(job_seconds->histogram.total_count, 1u);
  ASSERT_NE(busy_seconds, nullptr);
  EXPECT_GE(busy_seconds->histogram.total_count, 1u);
}

TEST(MetricsTest, PrometheusExpositionShape) {
  MetricsRegistry registry;
  registry.Add(registry.Counter("events_total"), 3);
  registry.Set(registry.Gauge("depth"), 2.5);
  const MetricId h = registry.Histogram("latency", {0.5, 1.0});
  registry.Observe(h, 0.25);
  registry.Observe(h, 2.0);
  const std::string text = registry.ToPrometheus();
  EXPECT_NE(text.find("# TYPE ranomaly_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("ranomaly_events_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ranomaly_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ranomaly_latency histogram"),
            std::string::npos);
  EXPECT_NE(text.find("ranomaly_latency_bucket{le=\"0.5\"} 1"),
            std::string::npos);
  // Buckets are cumulative; +Inf equals _count.
  EXPECT_NE(text.find("ranomaly_latency_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("ranomaly_latency_count 2"), std::string::npos);
}

TEST(MetricsTest, PromEscapeHandlesSpecials) {
  EXPECT_EQ(PromEscape("plain"), "plain");
  EXPECT_EQ(PromEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(PromEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(PromEscape("a\nb"), "a\\nb");
  EXPECT_EQ(PromLabels({{"job", "x\"y"}, {"peer", "10.0.0.1"}}),
            "{job=\"x\\\"y\",peer=\"10.0.0.1\"}");
}

// Golden-file check of the whole exposition: escaped label values, # HELP
// and # TYPE exactly once per family (including a family whose plain
// name sorts between another family's labeled series), labeled
// histograms merging with le, and exact value formatting.
TEST(MetricsTest, PrometheusExpositionGolden) {
  MetricsRegistry registry;
  registry.SetHelp("scrapes_total", "Scrapes by\nsource \"path\\dir\".");
  registry.SetHelp("lat", "Latency.");
  registry.Add(
      registry.Counter("scrapes_total" +
                       PromLabels({{"job", "a\\b\"c\nd"}})),
      1);
  registry.Add(
      registry.Counter("scrapes_total" + PromLabels({{"job", "plain"}})), 2);
  registry.Counter("scrapes_total_errors");  // interleaves with the family
  registry.Set(registry.Gauge("depth"), 1.5);
  const MetricId h = registry.Histogram(
      "lat" + PromLabels({{"stage", "s1"}}), {1.0, 2.0});
  registry.Observe(h, 0.5);
  registry.Observe(h, 3.0);

  const std::string expected = R"PROM(# TYPE ranomaly_depth gauge
ranomaly_depth 1.5
# HELP ranomaly_lat Latency.
# TYPE ranomaly_lat histogram
ranomaly_lat_bucket{stage="s1",le="1"} 1
ranomaly_lat_bucket{stage="s1",le="2"} 1
ranomaly_lat_bucket{stage="s1",le="+Inf"} 2
ranomaly_lat_sum{stage="s1"} 3.5
ranomaly_lat_count{stage="s1"} 2
# TYPE ranomaly_scrapes_total_errors counter
ranomaly_scrapes_total_errors 0
# HELP ranomaly_scrapes_total Scrapes by\nsource "path\\dir".
# TYPE ranomaly_scrapes_total counter
ranomaly_scrapes_total{job="a\\b\"c\nd"} 1
ranomaly_scrapes_total{job="plain"} 2
)PROM";
  EXPECT_EQ(registry.ToPrometheus(), expected);
}

// le labels must round-trip exactly: bare %g's 6 significant digits
// collapsed the default detection-latency bounds (1.048576 printed as
// "1.04858"), so a scraper re-parsing the label saw a bucket edge the
// histogram never used.
TEST(MetricsTest, BucketLabelsRoundTripExactly) {
  MetricsRegistry registry;
  const std::vector<double> bounds = ExponentialBounds(1e-6, 4.0, 14);
  const MetricId h = registry.Histogram("detect_lat", bounds);
  registry.Observe(h, 0.5);
  const std::string text = registry.ToPrometheus();

  // Every bound appears as an le label whose text parses back to the
  // exact double, and all labels are distinct.
  std::set<std::string> labels;
  for (const double bound : bounds) {
    const std::size_t start = text.find("le=\"");
    ASSERT_NE(start, std::string::npos);
    bool found = false;
    for (std::size_t pos = start; pos != std::string::npos;
         pos = text.find("le=\"", pos + 4)) {
      const std::size_t end = text.find('"', pos + 4);
      ASSERT_NE(end, std::string::npos);
      const std::string label = text.substr(pos + 4, end - pos - 4);
      if (label == "+Inf") continue;
      if (std::strtod(label.c_str(), nullptr) == bound) {
        labels.insert(label);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "no le label round-trips to bound " << bound;
  }
  EXPECT_EQ(labels.size(), bounds.size());

  // Golden spot-checks: short bounds stay in their shortest form, and
  // the 6-digit-lossy bound now prints all its digits.
  EXPECT_NE(text.find("le=\"1.6e-05\""), std::string::npos);
  EXPECT_NE(text.find("le=\"1.048576\""), std::string::npos);
  EXPECT_NE(text.find("le=\"67.108864\""), std::string::npos);
  EXPECT_EQ(text.find("le=\"1.04858\""), std::string::npos);

  // Round integers keep their plain form: 10 must not become "1e+01"
  // just because precision 1 happens to round-trip first.
  const MetricId plain =
      registry.Histogram("plain_bounds", {1.0, 10.0, 100.0});
  registry.Observe(plain, 3.0);
  const std::string plain_text = registry.ToPrometheus();
  EXPECT_NE(plain_text.find("ranomaly_plain_bounds_bucket{le=\"10\"}"),
            std::string::npos);
  EXPECT_NE(plain_text.find("ranomaly_plain_bounds_bucket{le=\"100\"}"),
            std::string::npos);
  EXPECT_EQ(plain_text.find("le=\"1e+01\""), std::string::npos);
}

// Cumulative bucket counts must be monotonically non-decreasing up to
// +Inf == _count, whatever the observation pattern.
TEST(MetricsTest, PrometheusBucketsAreCumulativeMonotone) {
  MetricsRegistry registry;
  const MetricId h =
      registry.Histogram("mono", ExponentialBounds(0.001, 2.0, 10));
  for (int i = 0; i < 100; ++i) registry.Observe(h, 0.0009 * (i % 7) * (i % 11));
  const std::string text = registry.ToPrometheus();
  std::uint64_t previous = 0;
  std::size_t buckets = 0;
  for (std::size_t pos = text.find("ranomaly_mono_bucket{");
       pos != std::string::npos;
       pos = text.find("ranomaly_mono_bucket{", pos + 1)) {
    const std::size_t space = text.find(' ', pos);
    ASSERT_NE(space, std::string::npos);
    const std::uint64_t count = std::stoull(text.substr(space + 1));
    EXPECT_GE(count, previous);
    previous = count;
    ++buckets;
  }
  EXPECT_EQ(buckets, 11u);  // 10 bounds + +Inf
  EXPECT_EQ(previous, 100u);
}

TEST(MetricsTest, VarzJsonShape) {
  MetricsRegistry registry;
  registry.Add(registry.Counter("events_total"), 7);
  registry.Set(registry.Gauge("depth"), 2.5);
  const MetricId h = registry.Histogram("lat", {1.0});
  registry.Observe(h, 0.5);
  const std::string json = ToVarzJson(registry.Snapshot());
  EXPECT_NE(json.find("\"counters\":{\"events_total\":7"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"depth\":2.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lat\":{\"bounds\":[1]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
}

// Byte-exact golden for the full /varz payload over the two historical
// invalid-JSON vectors: metric names embedding Prometheus-escaped label
// values (backslashes and double quotes that must be JSON-escaped
// again) and non-finite gauges (JSON has no Inf/NaN literal — they must
// render as null, not `inf`/`nan` which no parser accepts).
TEST(MetricsTest, VarzJsonGoldenEscapesHostileNamesAndNonFinite) {
  MetricsRegistry registry;
  registry.Add(registry.Counter("events_total"), 7);
  // PromEscape turns the value `up"link\<newline>` into `up\"link\\\n`,
  // so the registered *name* carries backslashes and quotes.
  const std::string hostile =
      "peer_state" + PromLabels({{"peer", "up\"link\\\n"}});
  registry.Set(registry.Gauge(hostile), 1.0);
  registry.Set(registry.Gauge("spike"),
               std::numeric_limits<double>::infinity());
  registry.Set(registry.Gauge("hole"),
               std::numeric_limits<double>::quiet_NaN());
  const MetricId h = registry.Histogram("lat", {0.5, 1.0});
  registry.Observe(h, 0.25);
  registry.SetHelp("events_total", "Events \"ingested\"\nsince start");

  const std::string json =
      ToVarzJson(registry.Snapshot(), registry.HelpSnapshot());
  EXPECT_EQ(
      json,
      R"json({"counters":{"events_total":7},"gauges":{"hole":null,"peer_state{peer=\"up\\\"link\\\\\\n\"}":1,"spike":null},"histograms":{"lat":{"bounds":[0.5,1],"counts":[1,0,0],"count":1,"sum":0.25}},"help":{"events_total":"Events \"ingested\"\nsince start"}})json");
}

TEST(MetricsTest, JsonDoubleShortestRoundTrip) {
  EXPECT_EQ(JsonDouble(0.0), "0");
  EXPECT_EQ(JsonDouble(2.5), "2.5");
  EXPECT_EQ(JsonDouble(0.1), "0.1");
  EXPECT_EQ(JsonDouble(-3.0), "-3");
  EXPECT_EQ(JsonDouble(1e300), "1e+300");
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonDouble(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::quiet_NaN()), "null");
}

// --- tracer ------------------------------------------------------------------

// Pulls `"key":` string/number fields out of one exported JSON line.
std::string JsonField(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  std::size_t begin = pos + needle.size();
  std::size_t end;
  if (line[begin] == '"') {
    ++begin;
    end = line.find('"', begin);
  } else {
    end = line.find_first_of(",}", begin);
  }
  return line.substr(begin, end - begin);
}

TEST(TraceTest, SpansNestAndBalancePerThread) {
  Tracer& tracer = Tracer::Global();
  tracer.Reset();
  tracer.SetEnabled(true);
  {
    TraceSpan outer("outer");
    outer.Annotate("k", std::uint64_t{7});
    {
      TraceSpan inner("inner");
      inner.Annotate("label", "va\"lue");
    }
    TraceSpan sibling("sibling");
  }
  {
    util::ThreadPool pool(2);
    pool.ParallelFor(8, [](std::size_t) { TraceSpan span("chunk"); });
  }
  tracer.SetEnabled(false);
  const std::string jsonl = tracer.ExportJsonl();

  // Replay the stream: every E must close the innermost open B of the
  // same thread, and every stack must be empty at the end.
  std::map<std::string, std::vector<std::string>> stacks;  // tid -> names
  std::size_t events = 0;
  std::istringstream lines(jsonl);
  for (std::string line; std::getline(lines, line);) {
    ++events;
    ASSERT_EQ(line.front(), '{') << line;
    ASSERT_EQ(line.back(), '}') << line;
    const std::string name = JsonField(line, "name");
    const std::string ph = JsonField(line, "ph");
    const std::string tid = JsonField(line, "tid");
    ASSERT_FALSE(name.empty());
    ASSERT_FALSE(tid.empty());
    auto& stack = stacks[tid];
    if (ph == "B") {
      stack.push_back(name);
    } else {
      ASSERT_EQ(ph, "E") << line;
      ASSERT_FALSE(stack.empty()) << "E without B: " << line;
      EXPECT_EQ(stack.back(), name) << "mis-nested: " << line;
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
  // outer/inner/sibling (3 B + 3 E) plus pool.parallel_for and one
  // chunk span per item.
  EXPECT_GE(events, 2 * (3 + 1 + 8));
  EXPECT_NE(jsonl.find("\"k\":7"), std::string::npos);
  EXPECT_NE(jsonl.find("\"label\":\"va\\\"lue\""), std::string::npos);
  EXPECT_EQ(tracer.DroppedCount(), 0u);
  tracer.Reset();
}

TEST(TraceTest, ChromeJsonIsWellFormedAndNamesThreads) {
  Tracer& tracer = Tracer::Global();
  tracer.Reset();
  tracer.SetEnabled(true);
  tracer.SetCurrentThreadName("main-test");
  { TraceSpan span("solo"); }
  // An unclosed B must get a synthetic E in the export.
  tracer.RecordBegin("open");
  tracer.SetEnabled(false);
  const std::string json = tracer.ExportChromeJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("main-test"), std::string::npos);
  // B and E phases balance even with the dangling span.
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"ph\":\"B\"", pos)) != std::string::npos; ++pos) {
    ++begins;
  }
  for (std::size_t pos = 0;
       (pos = json.find("\"ph\":\"E\"", pos)) != std::string::npos; ++pos) {
    ++ends;
  }
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(begins, ends);
  tracer.Reset();
}

TEST(TraceTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Reset();
  ASSERT_FALSE(tracer.enabled());
  { TraceSpan span("invisible"); }
  EXPECT_EQ(tracer.ExportJsonl(), "");
}

}  // namespace
}  // namespace ranomaly::obs
