#include <gtest/gtest.h>

#include <sstream>

#include "collector/binary_io.h"
#include "util/rng.h"
#include "workload/eventgen.h"

namespace ranomaly::collector {
namespace {

using bgp::AsPath;
using bgp::Community;
using bgp::Event;
using bgp::EventType;
using bgp::Ipv4Addr;
using bgp::Prefix;

EventStream SampleStream() {
  EventStream stream;
  Event a;
  a.time = 1'000'000;
  a.peer = Ipv4Addr(128, 32, 1, 3);
  a.type = EventType::kAnnounce;
  a.prefix = *Prefix::Parse("192.96.10.0/24");
  a.attrs.nexthop = Ipv4Addr(128, 32, 0, 66);
  a.attrs.as_path = AsPath{11423, 209, 701};
  a.attrs.local_pref = 80;
  a.attrs.med = 42;
  a.attrs.origin = bgp::Origin::kEgp;
  a.attrs.originator_id = 7;
  a.attrs.communities.Add(Community(11423, 65350));
  a.attrs.communities.Add(Community(2152, 65297));
  stream.Append(a);
  Event w;
  w.time = 2'000'000;
  w.peer = Ipv4Addr(128, 32, 1, 200);
  w.type = EventType::kWithdraw;
  w.prefix = *Prefix::Parse("62.80.64.0/20");
  w.attrs.nexthop = Ipv4Addr(128, 32, 0, 90);
  w.attrs.as_path = AsPath{};
  stream.Append(w);
  return stream;
}

TEST(BinaryIoTest, RoundTripPreservesEverything) {
  const EventStream stream = SampleStream();
  std::stringstream ss;
  ASSERT_TRUE(SaveBinary(stream, ss));
  const auto loaded = LoadBinary(ss);
  ASSERT_TRUE(loaded);
  ASSERT_EQ(loaded->size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const Event& x = stream[i];
    const Event& y = (*loaded)[i];
    EXPECT_EQ(x.time, y.time);
    EXPECT_EQ(x.peer, y.peer);
    EXPECT_EQ(x.type, y.type);
    EXPECT_EQ(x.prefix, y.prefix);
    EXPECT_EQ(x.attrs, y.attrs);
  }
}

TEST(BinaryIoTest, RejectsBadMagic) {
  std::stringstream ss("XXXXgarbage");
  EXPECT_FALSE(LoadBinary(ss));
}

TEST(BinaryIoTest, RejectsTruncationAtEveryByte) {
  const EventStream stream = SampleStream();
  std::stringstream ss;
  ASSERT_TRUE(SaveBinary(stream, ss));
  const std::string full = ss.str();
  // Truncate at every third byte position, which sweeps across every
  // field boundary in the two sample events.
  for (std::size_t cut = 0; cut < full.size(); cut += 3) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_FALSE(LoadBinary(truncated)) << "cut=" << cut;
  }
}

TEST(BinaryIoTest, RejectsCorruptEnumValues) {
  const EventStream stream = SampleStream();
  std::stringstream ss;
  ASSERT_TRUE(SaveBinary(stream, ss));
  std::string data = ss.str();
  // Event type byte is at offset 4 (magic) + 8 (count) + 8 (time) + 4 (peer).
  data[4 + 8 + 8 + 4] = 9;
  std::stringstream corrupted(data);
  EXPECT_FALSE(LoadBinary(corrupted));
}

TEST(BinaryIoTest, EmptyStreamRoundTrips) {
  std::stringstream ss;
  ASSERT_TRUE(SaveBinary(EventStream{}, ss));
  const auto loaded = LoadBinary(ss);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->size(), 0u);
}

TEST(BinaryIoTest, LargeGeneratedStreamRoundTripsAndIsCompact) {
  workload::InternetOptions options;
  options.monitored_peers = 4;
  options.prefix_count = 2'000;
  options.origin_as_count = 300;
  options.seed = 3;
  const workload::SyntheticInternet internet(options);
  workload::EventStreamGenerator gen(internet, 4);
  gen.SessionReset(0, util::kMinute, util::kMinute, 30 * util::kSecond);
  const auto stream = gen.Take();
  ASSERT_GT(stream.size(), 1'000u);

  std::stringstream binary;
  ASSERT_TRUE(SaveBinary(stream, binary));
  std::stringstream text;
  stream.SaveText(text);
  // The point of the format: substantially smaller than the text form
  // (~45 bytes/event vs ~90+).
  EXPECT_LT(binary.str().size(), text.str().size() * 7 / 10);

  const auto loaded = LoadBinary(binary);
  ASSERT_TRUE(loaded);
  ASSERT_EQ(loaded->size(), stream.size());
  EXPECT_EQ((*loaded)[stream.size() - 1].attrs,
            stream[stream.size() - 1].attrs);
}

TEST(BinaryIoTest, MarkerEventsRoundTrip) {
  EventStream stream;
  Event gap;
  gap.time = 1'000'000;
  gap.peer = Ipv4Addr(128, 32, 1, 3);
  gap.type = EventType::kFeedGap;
  stream.Append(gap);
  Event sync = gap;
  sync.time = 5'000'000;
  sync.type = EventType::kResync;
  stream.Append(sync);

  std::stringstream binary;
  ASSERT_TRUE(SaveBinary(stream, binary));
  const auto loaded = LoadBinary(binary);
  ASSERT_TRUE(loaded);
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].type, EventType::kFeedGap);
  EXPECT_EQ((*loaded)[1].type, EventType::kResync);
  EXPECT_EQ((*loaded)[1].peer, gap.peer);

  // The text format round-trips the same markers as GAP/SYNC lines.
  std::stringstream text;
  stream.SaveText(text);
  EXPECT_NE(text.str().find("GAP"), std::string::npos);
  const auto from_text = EventStream::LoadText(text);
  ASSERT_TRUE(from_text);
  ASSERT_EQ(from_text->size(), 2u);
  EXPECT_EQ((*from_text)[0].type, EventType::kFeedGap);
  EXPECT_EQ((*from_text)[1].type, EventType::kResync);
}

TEST(BinaryIoTest, DiagnosticsReportBadEnumWithLocation) {
  const EventStream stream = SampleStream();
  std::stringstream ss;
  ASSERT_TRUE(SaveBinary(stream, ss));
  std::string data = ss.str();
  // Event type byte is at offset 4 (magic) + 8 (count) + 8 (time) + 4 (peer);
  // the loader detects it after consuming the fixed 18-byte field group.
  data[4 + 8 + 8 + 4] = 9;
  std::stringstream corrupted(data);
  LoadDiagnostics diag;
  EXPECT_FALSE(LoadBinary(corrupted, diag));
  EXPECT_EQ(diag.error, LoadError::kBadEnum);
  EXPECT_EQ(diag.event_index, 0u);
  EXPECT_EQ(diag.byte_offset, 4u + 8u + 18u);
  EXPECT_NE(diag.ToString().find("bad enum"), std::string::npos);
  EXPECT_NE(diag.ToString().find("byte 30"), std::string::npos);
}

TEST(BinaryIoTest, DiagnosticsReportTruncationInSecondEvent) {
  const EventStream stream = SampleStream();
  std::stringstream ss;
  ASSERT_TRUE(SaveBinary(stream, ss));
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() - 4));
  LoadDiagnostics diag;
  EXPECT_FALSE(LoadBinary(truncated, diag));
  EXPECT_EQ(diag.error, LoadError::kTruncated);
  EXPECT_EQ(diag.event_index, 1u);
  EXPECT_GT(diag.byte_offset, 30u);
}

TEST(BinaryIoTest, DiagnosticsReportOutOfOrder) {
  const EventStream stream = SampleStream();
  std::stringstream ss;
  ASSERT_TRUE(SaveBinary(stream, ss));
  std::string data = ss.str();
  // Inflate the first event's timestamp (little-endian i64 at offset 12)
  // so the second event regresses.
  data[17] = 0x40;
  std::stringstream corrupted(data);
  LoadDiagnostics diag;
  EXPECT_FALSE(LoadBinary(corrupted, diag));
  EXPECT_EQ(diag.error, LoadError::kOutOfOrder);
  EXPECT_EQ(diag.event_index, 1u);
}

TEST(BinaryIoTest, DiagnosticsCleanOnSuccess) {
  const EventStream stream = SampleStream();
  std::stringstream ss;
  ASSERT_TRUE(SaveBinary(stream, ss));
  LoadDiagnostics diag;
  diag.error = LoadError::kBadMagic;  // stale value must be overwritten
  EXPECT_TRUE(LoadBinary(ss, diag));
  EXPECT_EQ(diag.error, LoadError::kNone);
}

TEST(BinaryIoTest, FuzzNeverCrashes) {
  util::Rng rng(99);
  for (int round = 0; round < 500; ++round) {
    std::string junk(rng.NextBelow(200), '\0');
    for (auto& ch : junk) ch = static_cast<char>(rng.Next());
    if (rng.NextBool(0.5) && junk.size() >= 4) {
      junk[0] = 'R';
      junk[1] = 'N';
      junk[2] = 'E';
      junk[3] = '1';
    }
    std::stringstream ss(junk);
    LoadBinary(ss);  // must not crash; huge counts must not OOM
  }
  SUCCEED();
}

}  // namespace
}  // namespace ranomaly::collector
