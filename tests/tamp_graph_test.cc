#include <gtest/gtest.h>

#include "tamp/graph.h"

namespace ranomaly::tamp {
namespace {

using bgp::AsPath;
using bgp::Ipv4Addr;
using bgp::Prefix;
using collector::RouteEntry;

RouteEntry Route(Ipv4Addr peer, Ipv4Addr nexthop, AsPath path,
                 const char* prefix) {
  RouteEntry r;
  r.peer = peer;
  r.prefix = *Prefix::Parse(prefix);
  r.attrs.nexthop = nexthop;
  r.attrs.as_path = std::move(path);
  return r;
}

const Ipv4Addr kX(10, 0, 0, 1);
const Ipv4Addr kY(10, 0, 0, 2);
const Ipv4Addr kNexthopA(10, 1, 0, 1);
const Ipv4Addr kNexthopB(10, 1, 0, 2);

// The paper's Figure 1: routers X and Y each know four prefixes through
// NexthopA-AS1; the merged edge weight must be 4 (unique prefixes), not 6.
std::vector<RouteEntry> Figure1Routes() {
  return {
      // Router X.
      Route(kX, kNexthopA, {1}, "1.2.1.0/24"),
      Route(kX, kNexthopA, {1}, "1.2.2.0/24"),
      Route(kX, kNexthopA, {1, 2}, "1.2.3.0/24"),
      Route(kX, kNexthopB, {3}, "1.3.1.0/24"),
      // Router Y: overlaps X on 1.2.1.0/24 and 1.2.2.0/24.
      Route(kY, kNexthopA, {1}, "1.2.1.0/24"),
      Route(kY, kNexthopA, {1}, "1.2.2.0/24"),
      Route(kY, kNexthopA, {1, 2}, "1.2.4.0/24"),
  };
}

TEST(TampGraphTest, Figure1ExampleUniquePrefixMerge) {
  const TampGraph graph = TampGraph::FromSnapshot(Figure1Routes());
  // NexthopA -> AS1 carries 4 unique prefixes (1.2.1, 1.2.2, 1.2.3,
  // 1.2.4), not 6 — the paper's exact example.
  EXPECT_EQ(graph.EdgeWeight(NexthopNode(kNexthopA), AsNode(1)), 4u);
  // AS1 -> AS2 carries the two /24 learned through AS2.
  EXPECT_EQ(graph.EdgeWeight(AsNode(1), AsNode(2)), 2u);
  // Per-router first-hop edges keep their own counts.
  EXPECT_EQ(graph.EdgeWeight(PeerNode(kX), NexthopNode(kNexthopA)), 3u);
  EXPECT_EQ(graph.EdgeWeight(PeerNode(kY), NexthopNode(kNexthopA)), 3u);
  EXPECT_EQ(graph.EdgeWeight(RootNode(), PeerNode(kX)), 4u);
  EXPECT_EQ(graph.EdgeWeight(RootNode(), PeerNode(kY)), 3u);
  EXPECT_EQ(graph.UniquePrefixCount(), 5u);
  EXPECT_EQ(graph.RouteCount(), 7u);
}

TEST(TampGraphTest, RemoveRouteRestoresPreviousState) {
  TampGraph graph;
  const auto routes = Figure1Routes();
  for (const auto& r : routes) graph.AddRoute(r);
  const auto before = graph.EdgeWeight(NexthopNode(kNexthopA), AsNode(1));

  // Removing Y's 1.2.1.0/24 must NOT change the unique count (X still
  // carries it)...
  graph.RemoveRoute(routes[4]);
  EXPECT_EQ(graph.EdgeWeight(NexthopNode(kNexthopA), AsNode(1)), before);
  // ...but removing X's copy too drops it.
  graph.RemoveRoute(routes[0]);
  EXPECT_EQ(graph.EdgeWeight(NexthopNode(kNexthopA), AsNode(1)), before - 1);
  EXPECT_EQ(graph.UniquePrefixCount(), 4u);
}

TEST(TampGraphTest, AddRemoveAllLeavesEmptyGraph) {
  TampGraph graph;
  const auto routes = Figure1Routes();
  for (const auto& r : routes) graph.AddRoute(r);
  for (const auto& r : routes) graph.RemoveRoute(r);
  EXPECT_EQ(graph.UniquePrefixCount(), 0u);
  EXPECT_EQ(graph.RouteCount(), 0u);
  EXPECT_TRUE(graph.Edges().empty());
}

TEST(TampGraphTest, RemoveUnknownRouteIsNoop) {
  TampGraph graph;
  graph.AddRoute(Figure1Routes()[0]);
  graph.RemoveRoute(Route(kY, kNexthopB, {9}, "9.9.9.0/24"));
  EXPECT_EQ(graph.RouteCount(), 1u);
}

TEST(TampGraphTest, PrependCollapsesToSingleNode) {
  TampGraph graph;
  graph.AddRoute(Route(kX, kNexthopA, {7, 7, 7, 8}, "10.0.0.0/8"));
  // No self-edge 7->7; the path is nexthop -> AS7 -> AS8.
  EXPECT_EQ(graph.EdgeWeight(AsNode(7), AsNode(7)), 0u);
  EXPECT_EQ(graph.EdgeWeight(AsNode(7), AsNode(8)), 1u);
  EXPECT_EQ(graph.EdgeWeight(NexthopNode(kNexthopA), AsNode(7)), 1u);
}

TEST(TampGraphTest, PrefixLeavesOptional) {
  TampGraph::Options options;
  options.include_prefix_leaves = true;
  TampGraph graph(options);
  graph.AddRoute(Route(kX, kNexthopA, {1}, "1.2.3.0/24"));
  bool saw_prefix_leaf = false;
  for (const auto& e : graph.Edges()) {
    if (e.to.kind == NodeKind::kPrefix) saw_prefix_leaf = true;
  }
  EXPECT_TRUE(saw_prefix_leaf);

  TampGraph bare;
  bare.AddRoute(Route(kX, kNexthopA, {1}, "1.2.3.0/24"));
  for (const auto& e : bare.Edges()) {
    EXPECT_NE(e.to.kind, NodeKind::kPrefix);
  }
}

TEST(TampGraphTest, EdgeCarriesSpecificPrefix) {
  const TampGraph graph = TampGraph::FromSnapshot(Figure1Routes());
  EXPECT_TRUE(graph.EdgeCarries(NexthopNode(kNexthopA), AsNode(1),
                                *Prefix::Parse("1.2.3.0/24")));
  EXPECT_FALSE(graph.EdgeCarries(NexthopNode(kNexthopB), AsNode(3),
                                 *Prefix::Parse("1.2.3.0/24")));
  EXPECT_FALSE(graph.EdgeCarries(NexthopNode(kNexthopA), AsNode(1),
                                 *Prefix::Parse("99.9.9.0/24")));
}

TEST(TampGraphTest, NodeNamesAndAsLabels) {
  TampGraph::Options options;
  options.root_name = "Berkeley";
  TampGraph graph(options);
  graph.AddRoute(Route(kX, kNexthopA, {209}, "1.2.3.0/24"));
  EXPECT_EQ(graph.NodeName(RootNode()), "Berkeley");
  EXPECT_EQ(graph.NodeName(PeerNode(kX)), "10.0.0.1");
  EXPECT_EQ(graph.NodeName(AsNode(209)), "AS209");
  graph.SetAsName(209, "QWest");
  EXPECT_EQ(graph.NodeName(AsNode(209)), "QWest (209)");
}

TEST(TampGraphTest, EmptyAsPathRoute) {
  // A locally originated / directly connected route: nexthop is the leaf.
  TampGraph graph;
  graph.AddRoute(Route(kX, kNexthopA, {}, "10.0.0.0/8"));
  EXPECT_EQ(graph.EdgeWeight(RootNode(), PeerNode(kX)), 1u);
  EXPECT_EQ(graph.EdgeWeight(PeerNode(kX), NexthopNode(kNexthopA)), 1u);
  EXPECT_EQ(graph.Edges().size(), 2u);
}

TEST(TampGraphTest, SubsetSelectionByCaller) {
  // TAMP maps *any* set of routes (paper: e.g. routes tagged with one
  // community).  The caller filters; the graph just reflects the subset.
  auto routes = Figure1Routes();
  std::vector<RouteEntry> only_x;
  for (const auto& r : routes) {
    if (r.peer == kX) only_x.push_back(r);
  }
  const TampGraph graph = TampGraph::FromSnapshot(only_x);
  EXPECT_EQ(graph.EdgeWeight(RootNode(), PeerNode(kY)), 0u);
  EXPECT_EQ(graph.UniquePrefixCount(), 4u);
}

}  // namespace
}  // namespace ranomaly::tamp
