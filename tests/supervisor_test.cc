#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bgp/codec.h"
#include "collector/supervisor.h"

namespace ranomaly::collector {
namespace {

using bgp::AsPath;
using bgp::EventType;
using bgp::Ipv4Addr;
using bgp::PathAttributes;
using bgp::Prefix;
using bgp::UpdateMessage;
using util::kSecond;

const Ipv4Addr kPeer(128, 32, 1, 3);
const Prefix kP1 = *Prefix::Parse("192.96.10.0/24");
const Prefix kP2 = *Prefix::Parse("62.80.64.0/20");

PathAttributes Attrs(AsPath path) {
  PathAttributes a;
  a.nexthop = Ipv4Addr(128, 32, 0, 66);
  a.as_path = std::move(path);
  return a;
}

std::vector<std::uint8_t> Announce(const Prefix& prefix,
                                   PathAttributes attrs = Attrs({11423, 209})) {
  UpdateMessage u;
  u.attrs = std::move(attrs);
  u.nlri = {prefix};
  return bgp::EncodeUpdate(u);
}

std::vector<std::uint8_t> Withdraw(const Prefix& prefix) {
  UpdateMessage u;
  u.withdrawn = {prefix};
  return bgp::EncodeUpdate(u);
}

std::vector<std::uint8_t> Notification() {
  std::vector<std::uint8_t> wire(16, 0xff);
  wire.push_back(0);
  wire.push_back(19);
  wire.push_back(3);  // NOTIFICATION
  return wire;
}

// Framing-valid UPDATE with a truncated attribute block and one salvageable
// NLRI prefix (the RFC 7606 treat-as-withdraw shape).
std::vector<std::uint8_t> AttrErrorUpdate() {
  std::vector<std::uint8_t> wire(16, 0xff);
  const std::vector<std::uint8_t> attrs = {0x40, 0x01};       // cut mid-attr
  const std::vector<std::uint8_t> nlri = {24, 192, 96, 10};   // 192.96.10.0/24
  const std::size_t length = 19 + 2 + 2 + attrs.size() + nlri.size();
  wire.push_back(static_cast<std::uint8_t>(length >> 8));
  wire.push_back(static_cast<std::uint8_t>(length & 0xff));
  wire.push_back(2);
  wire.push_back(0);
  wire.push_back(0);
  wire.push_back(static_cast<std::uint8_t>(attrs.size() >> 8));
  wire.push_back(static_cast<std::uint8_t>(attrs.size() & 0xff));
  wire.insert(wire.end(), attrs.begin(), attrs.end());
  wire.insert(wire.end(), nlri.begin(), nlri.end());
  return wire;
}

SupervisorOptions ShortHold() {
  SupervisorOptions o;
  o.hold_time = 30 * kSecond;
  o.backoff_jitter = 0.0;  // exact retry times in tests
  return o;
}

TEST(FeedSupervisorTest, EstablishesAndIngestsUpdates) {
  Collector collector;
  FeedSupervisor sup(collector);
  sup.AddPeer(kPeer);
  EXPECT_TRUE(sup.IsEstablished(kPeer));

  sup.OnFrame(kSecond, kPeer, Announce(kP1));
  sup.OnFrame(2 * kSecond, kPeer, Withdraw(kP1));
  ASSERT_EQ(collector.events().size(), 2u);
  EXPECT_EQ(collector.events()[0].type, EventType::kAnnounce);
  EXPECT_EQ(collector.events()[1].type, EventType::kWithdraw);
  // The withdrawal was augmented from the Adj-RIB-In.
  EXPECT_EQ(collector.events()[1].attrs.as_path, (AsPath{11423, 209}));
}

TEST(FeedSupervisorTest, GarbageIsQuarantinedNeverFatal) {
  Collector collector;
  FeedSupervisor sup(collector);
  sup.AddPeer(kPeer);
  sup.OnFrame(kSecond, kPeer, Announce(kP1));

  std::vector<std::uint8_t> junk = {0xde, 0xad, 0xbe, 0xef};
  sup.OnFrame(2 * kSecond, kPeer, junk);
  auto truncated = Announce(kP2);
  truncated.resize(truncated.size() / 2);
  sup.OnFrame(3 * kSecond, kPeer, truncated);

  EXPECT_TRUE(sup.IsEstablished(kPeer));  // a bad octet stream never kills us
  ASSERT_EQ(sup.quarantine().size(), 2u);
  EXPECT_EQ(sup.quarantine()[0].frame, junk);
  EXPECT_EQ(sup.quarantine()[0].peer, kPeer);
  const CollectorHealth health = sup.Health();
  EXPECT_EQ(health.decode_errors, 2u);
  EXPECT_EQ(health.quarantined_total, 2u);
  EXPECT_EQ(health.peers.at(kPeer).decode_errors, 2u);
  // The good route survived, the truncated one never landed.
  EXPECT_EQ(collector.PeerRoutes(kPeer).size(), 1u);
}

TEST(FeedSupervisorTest, QuarantineRingIsCapped) {
  Collector collector;
  SupervisorOptions options;
  options.quarantine_capacity = 4;
  FeedSupervisor sup(collector, options);
  sup.AddPeer(kPeer);
  for (int i = 0; i < 10; ++i) {
    sup.OnFrame(i * kSecond, kPeer,
                {static_cast<std::uint8_t>(i), 0xff, 0xff});
  }
  EXPECT_EQ(sup.quarantine().size(), 4u);
  EXPECT_EQ(sup.Health().quarantined_total, 10u);
  // Oldest evidence aged out: the ring holds frames 6..9.
  EXPECT_EQ(sup.quarantine().front().frame[0], 6u);
}

TEST(FeedSupervisorTest, AttributeErrorDowngradedToWithdraw) {
  Collector collector;
  FeedSupervisor sup(collector);
  sup.AddPeer(kPeer);
  sup.OnFrame(kSecond, kPeer, Announce(kP1));  // kP1 == 192.96.10.0/24
  ASSERT_EQ(collector.PeerRoutes(kPeer).size(), 1u);

  sup.OnFrame(2 * kSecond, kPeer, AttrErrorUpdate());
  EXPECT_TRUE(sup.IsEstablished(kPeer));  // RFC 7606: session survives
  EXPECT_EQ(collector.PeerRoutes(kPeer).size(), 0u);  // route withdrawn
  const CollectorHealth health = sup.Health();
  EXPECT_EQ(health.treat_as_withdraw, 1u);
  EXPECT_EQ(health.decode_errors, 0u);  // downgraded, not quarantined
  EXPECT_EQ(collector.events().back().type, EventType::kWithdraw);
}

TEST(FeedSupervisorTest, GarbageDoesNotRefreshHoldTimer) {
  Collector collector;
  FeedSupervisor sup(collector, ShortHold());
  sup.AddPeer(kPeer);
  sup.OnFrame(0, kPeer, Announce(kP1));
  // Only garbage for the next 31 seconds: garbage is not proof of life.
  sup.OnFrame(29 * kSecond, kPeer, {0x00, 0x01, 0x02});
  sup.OnTick(31 * kSecond);
  EXPECT_FALSE(sup.IsEstablished(kPeer));
  EXPECT_TRUE(sup.collector().IsPeerStale(kPeer));
}

TEST(FeedSupervisorTest, HoldExpiryMarksGapKeepsRoutesWarm) {
  Collector collector;
  FeedSupervisor sup(collector, ShortHold());
  sup.AddPeer(kPeer);
  sup.OnFrame(0, kPeer, Announce(kP1));
  sup.OnTick(31 * kSecond);

  EXPECT_FALSE(sup.IsEstablished(kPeer));
  EXPECT_TRUE(sup.collector().IsPeerStale(kPeer));
  // Routes stay warm (stale) rather than being flushed.
  EXPECT_EQ(collector.PeerRoutes(kPeer).size(), 1u);
  EXPECT_EQ(collector.events().back().type, EventType::kFeedGap);
  EXPECT_GT(sup.RetryAt(kPeer), 31 * kSecond);
}

TEST(FeedSupervisorTest, ResyncSweepsUnrefreshedAndClosesGap) {
  Collector collector;
  FeedSupervisor sup(collector, ShortHold());
  sup.AddPeer(kPeer);
  sup.OnFrame(0, kPeer, Announce(kP1));
  sup.OnFrame(kSecond, kPeer, Announce(kP2, Attrs({11423, 701})));
  sup.OnTick(40 * kSecond);  // hold expiry -> gap
  ASSERT_FALSE(sup.IsEstablished(kPeer));

  const util::SimTime retry = sup.RetryAt(kPeer);
  EXPECT_FALSE(sup.TakeResyncRequest(kPeer));  // nothing requested yet
  sup.OnTick(retry);
  ASSERT_TRUE(sup.IsEstablished(kPeer));
  EXPECT_TRUE(sup.TakeResyncRequest(kPeer));
  EXPECT_FALSE(sup.TakeResyncRequest(kPeer));  // exactly once

  // The replay refreshes only kP1: kP2 disappeared during the outage.
  sup.OnFrame(retry, kPeer, Announce(kP1));
  sup.OnResyncComplete(retry, kPeer);

  EXPECT_FALSE(sup.collector().IsPeerStale(kPeer));
  const auto routes = collector.PeerRoutes(kPeer);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].first, kP1);
  // Stream shape: ... GAP, replay announce, sweep withdraw, SYNC.
  const auto& events = collector.events();
  ASSERT_GE(events.size(), 4u);
  EXPECT_EQ(events[events.size() - 1].type, EventType::kResync);
  EXPECT_EQ(events[events.size() - 2].type, EventType::kWithdraw);
  EXPECT_EQ(events[events.size() - 2].prefix, kP2);
  // The sweep withdrawal is augmented like any other.
  EXPECT_EQ(events[events.size() - 2].attrs.as_path, (AsPath{11423, 701}));

  const auto gaps = FeedGapWindows(collector.events());
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_TRUE(gaps[0].closed);
  EXPECT_EQ(gaps[0].end, retry);
}

TEST(FeedSupervisorTest, BackoffDoublesAndResetsAfterResync) {
  Collector collector;
  SupervisorOptions options = ShortHold();
  options.backoff_initial = kSecond;
  options.backoff_max = 8 * kSecond;
  FeedSupervisor sup(collector, options);
  sup.AddPeer(kPeer);
  sup.OnFrame(0, kPeer, Announce(kP1));

  // Repeated failures without a completed resync: 1s, 2s, 4s, 8s, 8s.
  util::SimTime now = 31 * kSecond;
  sup.OnTick(now);  // hold expiry
  const util::SimDuration expected[] = {kSecond, 2 * kSecond, 4 * kSecond,
                                        8 * kSecond, 8 * kSecond};
  for (const util::SimDuration want : expected) {
    ASSERT_FALSE(sup.IsEstablished(kPeer));
    EXPECT_EQ(sup.RetryAt(kPeer) - now, want);
    now = sup.RetryAt(kPeer);
    sup.OnTick(now);  // re-establish...
    ASSERT_TRUE(sup.IsEstablished(kPeer));
    sup.OnFrame(now, kPeer, Notification());  // ...and fail again
  }

  // A completed resync resets the backoff to the initial delay.
  now = sup.RetryAt(kPeer);
  sup.OnTick(now);
  ASSERT_TRUE(sup.TakeResyncRequest(kPeer));
  sup.OnFrame(now, kPeer, Announce(kP1));
  sup.OnResyncComplete(now, kPeer);
  sup.OnFrame(now, kPeer, Notification());
  EXPECT_EQ(sup.RetryAt(kPeer) - now, kSecond);
}

TEST(FeedSupervisorTest, TransportDownIgnoresFramesUntilUp) {
  Collector collector;
  FeedSupervisor sup(collector, ShortHold());
  sup.AddPeer(kPeer);
  sup.OnFrame(0, kPeer, Announce(kP1));

  sup.OnTransportDown(5 * kSecond, kPeer);
  EXPECT_FALSE(sup.IsEstablished(kPeer));
  EXPECT_TRUE(sup.collector().IsPeerStale(kPeer));
  sup.OnFrame(6 * kSecond, kPeer, Announce(kP2));  // lost: TCP is down
  EXPECT_EQ(collector.PeerRoutes(kPeer).size(), 1u);

  // No reconnection while the transport stays down, however long we wait.
  sup.OnTick(1000 * kSecond);
  EXPECT_FALSE(sup.IsEstablished(kPeer));

  sup.OnTransportUp(2000 * kSecond, kPeer);
  sup.OnTick(2000 * kSecond);
  EXPECT_TRUE(sup.IsEstablished(kPeer));
  EXPECT_TRUE(sup.TakeResyncRequest(kPeer));
}

TEST(FeedSupervisorTest, SilentGapDetectedBeforeHoldExpiry) {
  Collector collector;
  SupervisorOptions options;
  options.hold_time = 90 * kSecond;
  options.silent_gap = 10 * kSecond;
  FeedSupervisor sup(collector, options);
  sup.AddPeer(kPeer);
  sup.OnFrame(0, kPeer, Announce(kP1));
  sup.OnTick(9 * kSecond);
  EXPECT_TRUE(sup.IsEstablished(kPeer));
  sup.OnTick(11 * kSecond);  // wedged-but-open session
  EXPECT_FALSE(sup.IsEstablished(kPeer));
  EXPECT_TRUE(sup.collector().IsPeerStale(kPeer));
}

TEST(FeedSupervisorTest, HealthMergesSupervisorCounters) {
  Collector collector;
  FeedSupervisor sup(collector);
  sup.AddPeer(kPeer);
  sup.OnFrame(0, kPeer, Announce(kP1));
  sup.OnFrame(kSecond, kPeer, {0xbad & 0xff});
  sup.OnFrame(2 * kSecond, kPeer, AttrErrorUpdate());

  const CollectorHealth health = sup.Health();
  EXPECT_EQ(health.events, 2u);  // announce + treat-as-withdraw withdrawal
  EXPECT_EQ(health.quarantine_depth, 1u);
  EXPECT_EQ(health.decode_errors, 1u);
  EXPECT_EQ(health.treat_as_withdraw, 1u);
  const std::string text = health.ToString();
  EXPECT_NE(text.find("quarantine=1/1"), std::string::npos) << text;
  EXPECT_NE(text.find("128.32.1.3"), std::string::npos) << text;
}

}  // namespace
}  // namespace ranomaly::collector
