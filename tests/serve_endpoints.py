#!/usr/bin/env python3
"""End-to-end check of the `ranomaly serve` operations surface.

Spawns a short-lived serve instance on an ephemeral port, exercises every
endpoint over real HTTP, checks the /incidents resumption contract, then
interrupts a trace-wrapped serve and verifies the trace file is loadable
JSON (the SIGINT flush path).

Usage: serve_endpoints.py /path/to/ranomaly
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

CAPTURE = """\
0 A 10.0.0.1 NEXT_HOP: 10.1.0.1 ASPATH: 100 200 PREFIX: 192.0.2.0/24
1000000 A 10.0.0.2 NEXT_HOP: 10.1.0.2 ASPATH: 100 300 PREFIX: 198.51.100.0/24
60000000 GAP 10.0.0.1
120000000 SYNC 10.0.0.1
180000000 GAP 10.0.0.2
200000000 A 10.0.0.1 NEXT_HOP: 10.1.0.1 ASPATH: 100 200 PREFIX: 192.0.2.0/24
"""

def incident_capture():
    """A capture that actually produces incidents: background churn plus
    two withdraw/re-announce avalanches (the session-reset signature) —
    one compressed at 120s, one spread over a minute at 300s so at
    least the slow one is detected even if the burst is shed."""
    lines = []
    for i in range(300):
        lines.append((i * 2_000_000,
                      f"A 10.0.0.2 NEXT_HOP: 10.1.0.2 ASPATH: 100 "
                      f"{300 + i % 9} PREFIX: 198.51.{i % 100}.0/24"))
    for i in range(120):
        prefix = f"10.0.{i % 250}.0/24"
        lines.append((120_000_000 + i * 40_000,
                      f"W 10.0.0.1 NEXT_HOP: 10.1.0.1 ASPATH: 100 200 "
                      f"PREFIX: {prefix}"))
        lines.append((126_000_000 + i * 40_000,
                      f"A 10.0.0.1 NEXT_HOP: 10.1.0.1 ASPATH: 100 200 "
                      f"PREFIX: {prefix}"))
    for i in range(120):
        prefix = f"20.0.{i % 250}.0/24"
        lines.append((300_000_000 + i * 250_000,
                      f"W 10.0.0.4 NEXT_HOP: 10.1.0.4 ASPATH: 100 400 "
                      f"PREFIX: {prefix}"))
        lines.append((335_000_000 + i * 250_000,
                      f"A 10.0.0.4 NEXT_HOP: 10.1.0.4 ASPATH: 100 400 "
                      f"PREFIX: {prefix}"))
    lines.sort(key=lambda pair: pair[0])
    return "".join(f"{t_us} {rest}\n" for t_us, rest in lines)


FAILURES = []


def check(cond, message):
    if cond:
        print(f"ok: {message}")
    else:
        FAILURES.append(message)
        print(f"FAIL: {message}")


def fetch(port, path, timeout=5):
    """Returns (status, body) without raising on HTTP error statuses."""
    url = f"http://127.0.0.1:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


def fetch_full(port, path, timeout=5):
    """Returns (status, headers, body); headers is a case-insensitive map."""
    url = f"http://127.0.0.1:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read().decode()


def spawn_serve(binary, capture, extra=()):
    process = subprocess.Popen(
        [binary, "serve", capture, "--pace-ms", "100", "--tick-sec", "10",
         *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    line = process.stdout.readline()
    prefix = "serving on 127.0.0.1:"
    if not line.startswith(prefix):
        process.kill()
        raise RuntimeError(f"unexpected serve banner: {line!r}")
    return process, int(line[len(prefix):].strip())


def stop(process, sig=signal.SIGINT, timeout=10):
    process.send_signal(sig)
    try:
        return process.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        return process.wait()


def test_endpoints(binary, capture):
    process, port = spawn_serve(binary, capture)
    try:
        status, body = fetch(port, "/healthz")
        check(status == 200 and body.strip() == "ok", "/healthz answers ok")

        status, body = fetch(port, "/metrics")
        check(status == 200 and "ranomaly_serve_ticks_total" in body,
              "/metrics speaks Prometheus with serve counters")
        check("# TYPE ranomaly_incident_detection_latency_seconds histogram"
              in body, "/metrics exposes the detection latency histogram")

        status, body = fetch(port, "/varz")
        varz = json.loads(body)
        check(status == 200 and "config" in varz and "health" in varz
              and "metrics" in varz, "/varz is well-formed JSON")
        check(varz["config"]["slo_target_sec"] == 30.0,
              "/varz reports the SLO target")

        status, body = fetch(port, "/incidents?since=0")
        incidents = json.loads(body)
        check(status == 200 and "incidents" in incidents
              and "next_since" in incidents, "/incidents is well-formed JSON")
        cursor = incidents["next_since"]
        status, body = fetch(port, f"/incidents?since={cursor}")
        check(status == 200 and json.loads(body)["incidents"] == [],
              "/incidents resumes from next_since with no duplicates")

        status, _ = fetch(port, "/incidents?since=notanumber")
        check(status == 400, "/incidents rejects a malformed since")

        # The cursor is digits-only: signs, whitespace, trailing garbage,
        # and overflow must all be loud 400s, never silent coercion.
        for bad in ("%2B1", "-1", "%201", "1x", "0x10",
                    "18446744073709551616"):
            status, _ = fetch(port, f"/incidents?since={bad}")
            check(status == 400, f"/incidents rejects since={bad}")
        status, _ = fetch(port, "/incidents?since=18446744073709551615")
        check(status == 200, "/incidents accepts the full u64 cursor range")

        status, _ = fetch(port, "/nosuch")
        check(status == 404, "unknown paths 404")

        # The capture ends with an open feed gap on 10.0.0.2; once the
        # replay passes it, readiness must flip DEGRADED naming the peer.
        # (An earlier transient gap on 10.0.0.1 also 503s mid-replay, so
        # poll until the body names the right peer.)
        deadline = time.monotonic() + 30
        ready_status, ready_body = 0, ""
        while time.monotonic() < deadline:
            ready_status, ready_body = fetch(port, "/readyz")
            if ready_status == 503 and "peer/10.0.0.2" in ready_body:
                break
            time.sleep(0.2)
        check(ready_status == 503 and "peer/10.0.0.2" in ready_body,
              f"/readyz flips DEGRADED naming the gapped peer "
              f"(got {ready_status}: {ready_body.strip()!r})")
        check(fetch(port, "/healthz")[0] == 200,
              "/healthz stays 200 while degraded")
    finally:
        code = stop(process)
    check(code == 0, f"serve exits cleanly on SIGINT (code {code})")


def test_dashboard_and_series(binary, capture):
    """The embedded dashboard and its /api/* JSON feeds.  `capture` must
    produce incidents (see incident_capture)."""
    process, port = spawn_serve(binary, capture, extra=("--dashboard",))
    first_seq, serve_evidence = None, ""
    try:
        status, headers, body = fetch_full(port, "/dashboard")
        check(status == 200, "/dashboard answers 200")
        check(headers.get("Content-Type", "").startswith("text/html"),
              "/dashboard is text/html")
        check(headers.get("Cache-Control") == "no-store",
              "/dashboard forbids caching")
        check("<svg" in body and "/api/series" in body,
              "/dashboard embeds the SVG charts and polls /api/series")
        check("http://" not in body and "https://" not in body
              and "<script src" not in body and "<link" not in body,
              "/dashboard loads zero external resources")

        # The store samples at tick boundaries; with --pace-ms 100 the
        # first tick lands within a second.  Poll until it shows up.
        deadline = time.monotonic() + 30
        listing = {}
        while time.monotonic() < deadline:
            status, headers, body = fetch_full(port, "/api/series")
            listing = json.loads(body)
            if any(s["name"] == "serve_ticks_total"
                   for s in listing.get("series", [])):
                break
            time.sleep(0.2)
        check(status == 200 and headers.get("Content-Type", "")
              .startswith("application/json"),
              "/api/series listing is application/json")
        check(headers.get("Cache-Control") == "no-store",
              "/api/series forbids caching")
        check([t["resolution_sec"] for t in listing["tiers"]] == [1, 10, 60],
              "/api/series reports the 1s/10s/60s retention tiers")
        names = {s["name"] for s in listing["series"]}
        check({"serve_ticks_total", "serve_events_ingested_total",
               "serve_queue_depth"} <= names,
              f"/api/series lists the serve series (got {sorted(names)[:5]}...)")

        status, _, body = fetch_full(
            port, "/api/series?name=serve_ticks_total&res=1")
        series = json.loads(body)
        check(status == 200 and series["kind"] == "counter"
              and len(series["points"]) > 0,
              "/api/series?name= returns counter points")
        t_last = series["points"][-1][0]
        status, _, body = fetch_full(
            port, f"/api/series?name=serve_ticks_total&res=1&since={t_last}")
        check(status == 200
              and all(p[0] >= t_last for p in json.loads(body)["points"]),
              "/api/series honors the since= cursor")

        status, _, _ = fetch_full(port, "/api/series?name=nosuch")
        check(status == 404, "/api/series 404s an unknown series name")
        status, _, _ = fetch_full(
            port, "/api/series?name=serve_ticks_total&res=7")
        check(status == 400, "/api/series 400s an unconfigured resolution")
        status, _, _ = fetch_full(
            port, "/api/series?name=serve_ticks_total&since=bogus")
        check(status == 400, "/api/series 400s a malformed since")

        status, headers, body = fetch_full(port, "/api/incidents/timeline")
        timeline = json.loads(body)
        check(status == 200 and "incidents" in timeline
              and "t0_sec" in timeline and "tick_sec" in timeline,
              "/api/incidents/timeline is well-formed JSON")
        check(headers.get("Cache-Control") == "no-store",
              "/api/incidents/timeline forbids caching")

        # The capture's GAP/SYNC churn produces session-reset incidents
        # once the replay covers them; each must carry a trace exemplar.
        deadline = time.monotonic() + 30
        incidents = []
        while time.monotonic() < deadline:
            _, _, body = fetch_full(port, "/api/incidents/timeline")
            incidents = json.loads(body)["incidents"]
            if incidents:
                break
            time.sleep(0.2)
        check(len(incidents) > 0, "timeline reports replay incidents")
        if incidents:
            first = incidents[0]
            check(first["exemplar"]["span"] == "live.tick"
                  and isinstance(first["exemplar"]["tick"], int),
                  "timeline incidents carry a live.tick trace exemplar")

        # The timeline shares the /incidents resumption contract.
        _, _, body = fetch_full(port, "/api/incidents/timeline")
        cursor = json.loads(body)["next_since"]
        status, _, body = fetch_full(
            port, f"/api/incidents/timeline?since={cursor}")
        check(status == 200 and json.loads(body)["incidents"] == [],
              "timeline resumes from next_since with no duplicates")
        status, _, body = fetch_full(port, "/api/incidents/timeline?since=1")
        page = json.loads(body)
        check(status == 200
              and all(i["seq"] >= 2 for i in page["incidents"]),
              "timeline ?since=1 skips the first incident")
        for bad in ("-1", "1x", "%2B1", "bogus", "18446744073709551616"):
            status, _, _ = fetch_full(
                port, f"/api/incidents/timeline?since={bad}")
            check(status == 400, f"timeline rejects since={bad}")

        # The evidence drill-down: valid id, unknown id, malformed id.
        if incidents:
            first_seq = incidents[0]["seq"]
            status, headers, body = fetch_full(
                port, f"/api/incidents/{first_seq}/evidence")
            check(status == 200 and headers.get("Content-Type", "")
                  .startswith("application/json"),
                  "/api/incidents/<id>/evidence answers JSON")
            evidence = json.loads(body)
            check(evidence.get("seq") == first_seq
                  and len(evidence.get("events", [])) > 0
                  and len(evidence.get("stages", [])) > 0
                  and evidence.get("trace", {}).get("span") == "live.tick",
                  "evidence carries sampled events, stages, and the trace "
                  "exemplar")
            serve_evidence = body
        status, _, _ = fetch_full(port, "/api/incidents/999999/evidence")
        check(status == 404, "unknown incident id is a 404")
        for bad in ("-1", "abc", "1x"):
            status, _, _ = fetch_full(port, f"/api/incidents/{bad}/evidence")
            check(status == 400, f"malformed incident id {bad!r} is a 400")
    finally:
        code = stop(process)
    check(code == 0, f"dashboard serve exits cleanly on SIGINT (code {code})")

    # `ranomaly explain` replays offline with the same live options the
    # serve above used and must print the exact same evidence bytes.
    if first_seq is not None:
        explain = subprocess.run(
            [binary, "explain", capture, "--incident", str(first_seq),
             "--tick-sec", "10"],
            capture_output=True, text=True, timeout=120)
        check(explain.returncode == 0,
              f"ranomaly explain exits 0 (code {explain.returncode})")
        check(explain.stdout.strip() == serve_evidence.strip(),
              "explain output is byte-identical to the serve evidence JSON")
        unknown = subprocess.run(
            [binary, "explain", capture, "--incident", "999999",
             "--tick-sec", "10"],
            capture_output=True, text=True, timeout=120)
        check(unknown.returncode != 0 and "unknown incident" in unknown.stderr,
              "explain fails loudly for an unknown incident id")


def test_dashboard_off_by_default(binary, capture):
    process, port = spawn_serve(binary, capture)
    try:
        status, _, _ = fetch_full(port, "/dashboard")
        check(status == 404, "/dashboard is 404 without --dashboard")
        status, _, _ = fetch_full(port, "/api/series")
        check(status == 200, "/api/series is always on")
    finally:
        stop(process)


def test_trace_interrupt(binary, capture, workdir):
    trace_path = os.path.join(workdir, "serve_trace.json")
    process = subprocess.Popen(
        [binary, "trace", "--out", trace_path, "--", "serve", capture,
         "--pace-ms", "200", "--tick-sec", "10"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    process.stdout.readline()  # wait for the serving banner
    time.sleep(0.5)
    code = stop(process)
    check(code in (0, 130), f"interrupted trace-wrapped serve exits (code {code})")
    check(os.path.exists(trace_path), "trace file exists after SIGINT")
    check(not os.path.exists(trace_path + ".tmp"),
          "no temp file lingers after finalize")
    with open(trace_path) as handle:
        trace = json.load(handle)
    check("traceEvents" in trace and len(trace["traceEvents"]) > 0,
          "interrupted trace is loadable JSON with events")


def test_graceful_drain_and_restore(binary, capture, workdir):
    """SIGTERM mid-replay must drain: exit 0, cut a final checkpoint, and
    a restart from that checkpoint must announce the resume."""
    checkpoint = os.path.join(workdir, "serve.ckpt")
    process, _port = spawn_serve(
        binary, capture,
        extra=("--checkpoint", checkpoint, "--checkpoint-every-ticks", "4"))
    time.sleep(0.5)  # a few paced ticks into the replay
    process.send_signal(signal.SIGTERM)
    try:
        out = process.communicate(timeout=20)[0]
    except subprocess.TimeoutExpired:
        process.kill()
        out = process.communicate()[0]
    check(process.returncode == 0,
          f"SIGTERM drains with exit 0 (code {process.returncode})")
    check("drained cleanly: final checkpoint durable" in out,
          "drain banner confirms the final checkpoint")
    check(os.path.exists(checkpoint), "checkpoint file exists after drain")
    check(not os.path.exists(checkpoint + ".tmp"),
          "no checkpoint temp file lingers after drain")

    process, _port = spawn_serve(
        binary, capture,
        extra=("--checkpoint", checkpoint, "--exit-after-replay"))
    out = process.communicate(timeout=60)[0]
    check(process.returncode == 0, "restarted serve replays to completion")
    check("restored from checkpoint: resumed at tick" in out,
          f"restart announces the checkpoint resume (got {out!r})")


def main():
    if len(sys.argv) != 2:
        print("usage: serve_endpoints.py /path/to/ranomaly")
        return 2
    binary = sys.argv[1]
    with tempfile.TemporaryDirectory(prefix="ranomaly_serve_test_") as workdir:
        capture = os.path.join(workdir, "capture.events")
        with open(capture, "w") as handle:
            handle.write(CAPTURE)
        bursty = os.path.join(workdir, "bursty.events")
        with open(bursty, "w") as handle:
            handle.write(incident_capture())
        test_endpoints(binary, capture)
        test_dashboard_and_series(binary, bursty)
        test_dashboard_off_by_default(binary, capture)
        test_trace_interrupt(binary, capture, workdir)
        test_graceful_drain_and_restore(binary, capture, workdir)
    if FAILURES:
        print(f"{len(FAILURES)} check(s) failed")
        return 1
    print("all serve endpoint checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
