// The full Section III-D.3 loop: a live link-state database supplies the
// IGP costs the BGP decision process uses; an LSA metric change triggers
// the BGP scanner, moves the best path ("hot potato"), produces collector
// events, and the incident's IGP drill-down finds the causal LSA.
#include <gtest/gtest.h>

#include <memory>

#include "collector/collector.h"
#include "core/correlate.h"
#include "core/pipeline.h"
#include "igp/lsa.h"
#include "net/simulator.h"

namespace ranomaly {
namespace {

using bgp::Ipv4Addr;
using bgp::Prefix;
using util::kMinute;
using util::kSecond;

const Prefix kP = *Prefix::Parse("198.51.100.0/24");

// Router ids in the IGP: 1 = the monitored core, 2 = exit A, 3 = exit B.
constexpr igp::RouterId kCore = 1;
constexpr igp::RouterId kExitA = 2;
constexpr igp::RouterId kExitB = 3;

struct HotPotatoFixture {
  std::shared_ptr<igp::LinkStateDb> lsdb = std::make_shared<igp::LinkStateDb>();
  igp::LsaLog lsa_log;
  net::Topology topo;
  net::RouterIndex core = 0, exit_a = 0, exit_b = 0, ext_a = 0, ext_b = 0;

  HotPotatoFixture() {
    // Baseline IGP: core-exitA cost 5, core-exitB cost 10.
    Install(0, igp::Lsa{kCore, 0, 1, {{kExitA, 5}, {kExitB, 10}}});
    Install(0, igp::Lsa{kExitA, 0, 1, {{kCore, 5}}});
    Install(0, igp::Lsa{kExitB, 0, 1, {{kCore, 10}}});

    // BGP: the core hears kP from both exits over iBGP; the decision tie
    // falls through to IGP cost, computed live from the shared LSDB.
    net::RouterSpec core_spec{"core", Ipv4Addr(10, 0, 0, 1), 100, 0, true, {}};
    auto db = lsdb;
    core_spec.decision.igp_cost = [db](Ipv4Addr nexthop) -> std::uint32_t {
      const igp::RouterId exit =
          nexthop == Ipv4Addr(20, 0, 0, 1) ? kExitA : kExitB;
      return db->Cost(kCore, exit).value_or(1000);
    };
    core = topo.AddRouter(std::move(core_spec));
    exit_a = topo.AddRouter(
        net::RouterSpec{"exit-a", Ipv4Addr(10, 0, 0, 2), 100, 0, false, {}});
    exit_b = topo.AddRouter(
        net::RouterSpec{"exit-b", Ipv4Addr(10, 0, 0, 3), 100, 0, false, {}});
    ext_a = topo.AddRouter(
        net::RouterSpec{"ext-a", Ipv4Addr(20, 0, 0, 1), 200, 0, false, {}});
    ext_b = topo.AddRouter(
        net::RouterSpec{"ext-b", Ipv4Addr(20, 0, 0, 2), 200, 0, false, {}});
    Link(core, exit_a, net::PeerRelation::kInternal, true);
    Link(core, exit_b, net::PeerRelation::kInternal, true);
    Link(exit_a, ext_a, net::PeerRelation::kPeer);
    Link(exit_b, ext_b, net::PeerRelation::kPeer);
  }

  void Install(util::SimTime t, const igp::Lsa& lsa) {
    lsa_log.Record(t, lsa, lsdb->Install(lsa));
  }

  void Link(net::RouterIndex a, net::RouterIndex b, net::PeerRelation rel,
            bool client = false) {
    net::LinkSpec l;
    l.a = a;
    l.b = b;
    l.b_is_as_seen_by_a = rel;
    l.b_is_rr_client_of_a = client;
    topo.AddLink(l);
  }
};

TEST(IgpIntegrationTest, LsaMetricChangeMovesBgpBestPath) {
  HotPotatoFixture fx;
  net::Simulator sim(fx.topo);
  collector::Collector rex;
  rex.AttachTo(sim, {fx.core});
  sim.Originate(fx.ext_a, kP);
  sim.Originate(fx.ext_b, kP);
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(5 * kMinute));

  // Hot potato: exit A is closer (5 < 10).
  const auto* best = sim.RibOf(fx.core).Best(kP);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->attrs.nexthop, Ipv4Addr(20, 0, 0, 1));

  // The IGP event: core-exitA link cost jumps to 50 (new LSA), and the
  // BGP scanner runs.
  const util::SimTime igp_change_at = sim.now() + kMinute;
  sim.Run(igp_change_at);
  fx.Install(igp_change_at,
             igp::Lsa{kCore, 0, 2, {{kExitA, 50}, {kExitB, 10}}});
  fx.Install(igp_change_at, igp::Lsa{kExitA, 0, 2, {{kCore, 50}}});
  sim.OnIgpChange(fx.core);
  ASSERT_TRUE(sim.RunToQuiescence(sim.now() + 5 * kMinute));

  // The best moved to exit B purely because of the IGP.
  best = sim.RibOf(fx.core).Best(kP);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->attrs.nexthop, Ipv4Addr(20, 0, 0, 2));

  // The collector saw the implicit replacement...
  ASSERT_GE(rex.events().size(), 2u);
  const auto& last = rex.events().back();
  EXPECT_EQ(last.type, bgp::EventType::kAnnounce);
  EXPECT_EQ(last.attrs.nexthop, Ipv4Addr(20, 0, 0, 2));

  // ...and the D.3 drill-down around that event finds the causal LSAs.
  core::Incident incident;
  incident.begin = last.time;
  incident.end = last.time;
  const auto correlation = core::CorrelateIgp(incident, fx.lsa_log, kSecond);
  EXPECT_TRUE(correlation.igp_active);
  ASSERT_GE(correlation.lsa_events.size(), 2u);
  EXPECT_EQ(correlation.lsa_events[0].lsa.sequence, 2u);
}

TEST(IgpIntegrationTest, NoOpIgpChangeIsSilent) {
  HotPotatoFixture fx;
  net::Simulator sim(fx.topo);
  collector::Collector rex;
  rex.AttachTo(sim, {fx.core});
  sim.Originate(fx.ext_a, kP);
  sim.Originate(fx.ext_b, kP);
  sim.Start();
  ASSERT_TRUE(sim.RunToQuiescence(5 * kMinute));
  const std::size_t baseline = rex.events().size();

  // A scanner run without any IGP change must produce nothing.
  sim.OnIgpChange(fx.core);
  ASSERT_TRUE(sim.RunToQuiescence(sim.now() + kMinute));
  EXPECT_EQ(rex.events().size(), baseline);
}

}  // namespace
}  // namespace ranomaly
