#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "collector/checkpoint.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace ranomaly::collector {
namespace {

namespace fs = std::filesystem;
using bgp::AsPath;
using bgp::EventType;
using bgp::Ipv4Addr;
using bgp::PathAttributes;
using bgp::Prefix;
using util::kSecond;

const Ipv4Addr kPeerA(128, 32, 1, 3);
const Ipv4Addr kPeerB(128, 32, 1, 200);

PathAttributes Attrs(AsPath path) {
  PathAttributes a;
  a.nexthop = Ipv4Addr(128, 32, 0, 66);
  a.as_path = std::move(path);
  a.local_pref = 80;
  a.communities.Add(bgp::Community(11423, 65350));
  return a;
}

// A collector with two peers, several routes, and one open feed gap.
Collector PopulatedCollector() {
  Collector collector;
  collector.OnAnnounce(kSecond, kPeerA, *Prefix::Parse("192.96.10.0/24"),
                       Attrs({11423, 209}));
  collector.OnAnnounce(2 * kSecond, kPeerA, *Prefix::Parse("62.80.64.0/20"),
                       Attrs({11423, 701, 3561}));
  collector.OnAnnounce(3 * kSecond, kPeerB, *Prefix::Parse("10.1.0.0/16"),
                       Attrs({11423, 2152}));
  collector.OnMarker(4 * kSecond, kPeerB, EventType::kFeedGap);  // B stale
  return collector;
}

TEST(CheckpointTest, SnapshotCapturesTablesAndStaleness) {
  const Collector collector = PopulatedCollector();
  const Checkpoint cp =
      SnapshotCollector(collector, 5 * kSecond, collector.events().size());
  EXPECT_EQ(cp.time, 5 * kSecond);
  EXPECT_EQ(cp.event_offset, 4u);
  EXPECT_EQ(cp.RouteCount(), 3u);
  ASSERT_EQ(cp.peers.size(), 2u);
  // Sorted by peer address: .3 before .200.
  EXPECT_EQ(cp.peers[0].peer, kPeerA);
  EXPECT_FALSE(cp.peers[0].stale);
  EXPECT_EQ(cp.peers[0].routes.size(), 2u);
  EXPECT_EQ(cp.peers[1].peer, kPeerB);
  EXPECT_TRUE(cp.peers[1].stale);
}

TEST(CheckpointTest, StreamRoundTripPreservesEverything) {
  const Collector collector = PopulatedCollector();
  const Checkpoint cp = SnapshotCollector(collector, 5 * kSecond, 4);
  std::stringstream ss;
  ASSERT_TRUE(SaveCheckpoint(cp, ss));
  const auto loaded = LoadCheckpoint(ss);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->time, cp.time);
  EXPECT_EQ(loaded->event_offset, cp.event_offset);
  ASSERT_EQ(loaded->peers.size(), cp.peers.size());
  for (std::size_t i = 0; i < cp.peers.size(); ++i) {
    EXPECT_EQ(loaded->peers[i].peer, cp.peers[i].peer);
    EXPECT_EQ(loaded->peers[i].stale, cp.peers[i].stale);
    ASSERT_EQ(loaded->peers[i].routes.size(), cp.peers[i].routes.size());
    for (std::size_t r = 0; r < cp.peers[i].routes.size(); ++r) {
      EXPECT_EQ(loaded->peers[i].routes[r].first, cp.peers[i].routes[r].first);
      EXPECT_EQ(loaded->peers[i].routes[r].second,
                cp.peers[i].routes[r].second);
    }
  }
}

TEST(CheckpointTest, SnapshotsAreByteIdentical) {
  // Route iteration order must not leak into the file (rename-safe
  // dedup, reproducible fault runs): same state => same bytes.
  const Collector a = PopulatedCollector();
  const Collector b = PopulatedCollector();
  std::stringstream sa, sb;
  ASSERT_TRUE(SaveCheckpoint(SnapshotCollector(a, kSecond, 4), sa));
  ASSERT_TRUE(SaveCheckpoint(SnapshotCollector(b, kSecond, 4), sb));
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(CheckpointTest, RestoreWarmStartsWithoutEventsAndKeepsStaleHonest) {
  const Collector source = PopulatedCollector();
  const Checkpoint cp = SnapshotCollector(source, 5 * kSecond, 4);

  Collector restored;
  RestoreCollector(cp, restored);
  EXPECT_EQ(restored.RouteCount(), 3u);
  EXPECT_EQ(restored.PeerRoutes(kPeerA).size(), 2u);
  EXPECT_EQ(restored.PeerRoutes(kPeerB).size(), 1u);
  EXPECT_FALSE(restored.IsPeerStale(kPeerA));
  // The gap that was open at snapshot time survives the restart: the
  // restored collector re-marks the peer stale with a kFeedGap marker.
  EXPECT_TRUE(restored.IsPeerStale(kPeerB));
  ASSERT_EQ(restored.events().size(), 1u);
  EXPECT_EQ(restored.events()[0].type, EventType::kFeedGap);
  EXPECT_EQ(restored.events()[0].peer, kPeerB);
  EXPECT_EQ(restored.events()[0].time, cp.time);
}

std::string Serialized() {
  const Collector collector = PopulatedCollector();
  std::stringstream ss;
  SaveCheckpoint(SnapshotCollector(collector, 5 * kSecond, 4), ss);
  return ss.str();
}

TEST(CheckpointTest, RejectsBadMagic) {
  std::string data = Serialized();
  data[0] = 'X';
  std::stringstream ss(data);
  LoadDiagnostics diag;
  EXPECT_FALSE(LoadCheckpoint(ss, &diag));
  EXPECT_EQ(diag.error, LoadError::kBadMagic);
}

TEST(CheckpointTest, RejectsUnknownVersion) {
  std::string data = Serialized();
  data[4] = 9;  // u32 version immediately after the magic (1 and 2 are real)
  std::stringstream ss(data);
  LoadDiagnostics diag;
  EXPECT_FALSE(LoadCheckpoint(ss, &diag));
  EXPECT_EQ(diag.error, LoadError::kBadVersion);
}

TEST(CheckpointTest, RelabelingV1AsV2IsNotSilentlyAccepted) {
  // A v1 payload stamped as v2 lacks the section table; the reader must
  // fail (truncated) rather than inventing an empty table.
  std::string data = Serialized();
  data[4] = 2;
  std::stringstream ss(data);
  LoadDiagnostics diag;
  EXPECT_FALSE(LoadCheckpoint(ss, &diag));
}

TEST(CheckpointTest, DetectsPayloadCorruptionViaCrc) {
  std::string data = Serialized();
  // Flip one bit in the middle of the payload; the structure may still
  // parse, so only the checksum catches it.
  data[data.size() / 2] ^= 0x01;
  std::stringstream ss(data);
  LoadDiagnostics diag;
  EXPECT_FALSE(LoadCheckpoint(ss, &diag));
  EXPECT_EQ(diag.error, LoadError::kBadChecksum);
  EXPECT_NE(diag.ToString().find("checksum"), std::string::npos)
      << diag.ToString();
}

TEST(CheckpointTest, DetectsTornWriteViaTruncation) {
  const std::string full = Serialized();
  // Every truncation point must fail loudly (torn write / partial copy).
  for (std::size_t cut = 0; cut < full.size(); cut += 5) {
    std::stringstream ss(full.substr(0, cut));
    LoadDiagnostics diag;
    EXPECT_FALSE(LoadCheckpoint(ss, &diag)) << "cut=" << cut;
    EXPECT_NE(diag.error, LoadError::kNone) << "cut=" << cut;
  }
}

TEST(CheckpointTest, FuzzNeverCrashesOrOverAllocates) {
  util::Rng rng(4242);
  const std::string valid = Serialized();
  for (int round = 0; round < 500; ++round) {
    std::string junk = valid;
    const std::size_t flips = 1 + rng.NextBelow(8);
    for (std::size_t k = 0; k < flips; ++k) {
      junk[rng.NextBelow(junk.size())] ^=
          static_cast<char>(1 << rng.NextBelow(8));
    }
    if (rng.NextBool(0.3)) junk.resize(rng.NextBelow(junk.size() + 1));
    std::stringstream ss(junk);
    LoadCheckpoint(ss);  // must not crash; huge sizes must not OOM
  }
  SUCCEED();
}

class CheckpointFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ranomaly_ckpt_" + std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }
  fs::path dir_;
};

TEST_F(CheckpointFileTest, AtomicOverwriteLeavesNoTemporary) {
  const Collector collector = PopulatedCollector();
  const std::string path = Path("rib.ckpt");
  ASSERT_TRUE(
      WriteCheckpointFile(SnapshotCollector(collector, kSecond, 1), path));
  // Overwrite with a later snapshot; the reader must see the new one and
  // the temporary sibling must be gone.
  ASSERT_TRUE(
      WriteCheckpointFile(SnapshotCollector(collector, 9 * kSecond, 4), path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  const auto loaded = ReadCheckpointFile(path);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->time, 9 * kSecond);
  EXPECT_EQ(loaded->event_offset, 4u);
}

TEST_F(CheckpointFileTest, DurableWriteFsyncsFileAndDirectory) {
  // Regression: the original WriteCheckpointFile renamed without
  // fsyncing, so a power loss could commit a zero-length checkpoint.
  // The durable path must fsync both the temp file and its directory —
  // at least two fsyncs per successful write.
  auto& reg = obs::MetricsRegistry::Global();
  const std::uint64_t before = reg.CounterValue("checkpoint_fsyncs_total");
  const Collector collector = PopulatedCollector();
  ASSERT_TRUE(WriteCheckpointFile(SnapshotCollector(collector, kSecond, 4),
                                  Path("rib.ckpt")));
  EXPECT_GE(reg.CounterValue("checkpoint_fsyncs_total"), before + 2);
}

TEST_F(CheckpointFileTest, ShortWriteFaultLeavesPreviousCheckpointIntact) {
  const Collector collector = PopulatedCollector();
  const std::string path = Path("rib.ckpt");
  ASSERT_TRUE(
      WriteCheckpointFile(SnapshotCollector(collector, kSecond, 1), path));

  // Every possible short write (disk full / torn write at any byte) must
  // fail the commit and leave the old snapshot readable.
  for (const std::int64_t cut : {std::int64_t{0}, std::int64_t{5},
                                 std::int64_t{40}}) {
    SetCheckpointWriteFaultHook(
        [cut](std::size_t) -> std::int64_t { return cut; });
    EXPECT_FALSE(WriteCheckpointFile(
        SnapshotCollector(collector, 9 * kSecond, 4), path))
        << "cut=" << cut;
    SetCheckpointWriteFaultHook(nullptr);
    EXPECT_FALSE(fs::exists(path + ".tmp")) << "cut=" << cut;
    const auto loaded = ReadCheckpointFile(path);
    ASSERT_TRUE(loaded) << "cut=" << cut;
    EXPECT_EQ(loaded->time, kSecond) << "cut=" << cut;
  }

  // With the hook cleared the next write commits normally.
  ASSERT_TRUE(
      WriteCheckpointFile(SnapshotCollector(collector, 9 * kSecond, 4), path));
  const auto loaded = ReadCheckpointFile(path);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->time, 9 * kSecond);
}

TEST_F(CheckpointFileTest, MissingFileIsNullopt) {
  LoadDiagnostics diag;
  EXPECT_FALSE(ReadCheckpointFile(Path("absent.ckpt"), &diag));
}

TEST_F(CheckpointFileTest, CorruptFileRefusedWithDiagnostics) {
  const Collector collector = PopulatedCollector();
  const std::string path = Path("rib.ckpt");
  ASSERT_TRUE(
      WriteCheckpointFile(SnapshotCollector(collector, kSecond, 4), path));
  // Flip a payload byte on disk.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(24);
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(24);
  byte = static_cast<char>(byte ^ 0x40);
  f.write(&byte, 1);
  f.close();

  LoadDiagnostics diag;
  EXPECT_FALSE(ReadCheckpointFile(path, &diag));
  EXPECT_NE(diag.error, LoadError::kNone);
}

}  // namespace
}  // namespace ranomaly::collector
