#include <gtest/gtest.h>

#include "bgp/rib.h"

namespace ranomaly::bgp {
namespace {

PathAttributes Attrs(Ipv4Addr nexthop, AsPath path,
                     std::uint32_t local_pref = kDefaultLocalPref) {
  PathAttributes a;
  a.nexthop = nexthop;
  a.as_path = std::move(path);
  a.local_pref = local_pref;
  return a;
}

RouteCandidate Cand(Ipv4Addr peer, PathAttributes attrs, bool ebgp = true,
                    std::uint32_t router_id = 1) {
  RouteCandidate c;
  c.peer = peer;
  c.attrs = std::move(attrs);
  c.ebgp = ebgp;
  c.peer_router_id = router_id;
  return c;
}

const Prefix kP = *Prefix::Parse("192.96.10.0/24");

// --- AdjRibIn -------------------------------------------------------------

TEST(AdjRibInTest, AnnounceReturnsReplacedAttrs) {
  AdjRibIn rib;
  EXPECT_FALSE(rib.Announce(kP, Attrs(Ipv4Addr(1, 1, 1, 1), {1})));
  const auto old = rib.Announce(kP, Attrs(Ipv4Addr(2, 2, 2, 2), {2}));
  ASSERT_TRUE(old);  // implicit withdrawal recovered
  EXPECT_EQ(old->nexthop, Ipv4Addr(1, 1, 1, 1));
  EXPECT_EQ(rib.size(), 1u);
}

TEST(AdjRibInTest, WithdrawRecoversAttributes) {
  AdjRibIn rib;
  rib.Announce(kP, Attrs(Ipv4Addr(1, 1, 1, 1), {11423, 209}));
  const auto old = rib.Withdraw(kP);
  ASSERT_TRUE(old);  // the REX augmentation
  EXPECT_EQ(old->as_path, (AsPath{11423, 209}));
  EXPECT_FALSE(rib.Withdraw(kP));
  EXPECT_TRUE(rib.empty());
}

TEST(AdjRibInTest, ClearReturnsEverything) {
  AdjRibIn rib;
  rib.Announce(kP, Attrs(Ipv4Addr(1, 1, 1, 1), {1}));
  rib.Announce(*Prefix::Parse("10.0.0.0/8"), Attrs(Ipv4Addr(1, 1, 1, 1), {2}));
  const auto all = rib.Clear();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_TRUE(rib.empty());
}

// --- decision process steps -------------------------------------------------

TEST(DecisionTest, HigherLocalPrefWins) {
  const DecisionConfig config;
  const auto a = Cand(Ipv4Addr(1, 0, 0, 1), Attrs({}, {1, 2, 3}, 120));
  const auto b = Cand(Ipv4Addr(2, 0, 0, 1), Attrs({}, {9}, 80));
  EXPECT_LT(CompareIgnoringMed(a, b, config), 0);  // LP beats path length
}

TEST(DecisionTest, ShorterPathWinsAtEqualLocalPref) {
  const DecisionConfig config;
  const auto a = Cand(Ipv4Addr(1, 0, 0, 1), Attrs({}, {1, 2}));
  const auto b = Cand(Ipv4Addr(2, 0, 0, 1), Attrs({}, {1}));
  EXPECT_GT(CompareIgnoringMed(a, b, config), 0);
}

TEST(DecisionTest, LowerOriginWins) {
  const DecisionConfig config;
  auto a = Cand(Ipv4Addr(1, 0, 0, 1), Attrs({}, {1}));
  auto b = Cand(Ipv4Addr(2, 0, 0, 1), Attrs({}, {2}));
  a.attrs.origin = Origin::kIncomplete;
  b.attrs.origin = Origin::kIgp;
  EXPECT_GT(CompareIgnoringMed(a, b, config), 0);
}

TEST(DecisionTest, EbgpBeatsIbgp) {
  const DecisionConfig config;
  const auto a = Cand(Ipv4Addr(1, 0, 0, 1), Attrs({}, {1}), /*ebgp=*/false);
  const auto b = Cand(Ipv4Addr(2, 0, 0, 1), Attrs({}, {2}), /*ebgp=*/true);
  EXPECT_GT(CompareIgnoringMed(a, b, config), 0);
}

TEST(DecisionTest, IgpCostBreaksTie) {
  DecisionConfig config;
  config.igp_cost = [](Ipv4Addr nh) { return nh == Ipv4Addr(1, 0, 0, 1) ? 10u : 5u; };
  const auto a = Cand(Ipv4Addr(9, 9, 9, 9), Attrs(Ipv4Addr(1, 0, 0, 1), {1}));
  const auto b = Cand(Ipv4Addr(8, 8, 8, 8), Attrs(Ipv4Addr(2, 0, 0, 1), {2}));
  EXPECT_GT(CompareIgnoringMed(a, b, config), 0);  // b has lower IGP cost
}

TEST(DecisionTest, RouterIdFinalTiebreak) {
  const DecisionConfig config;
  const auto a = Cand(Ipv4Addr(1, 0, 0, 1), Attrs({}, {1}), true, 200);
  const auto b = Cand(Ipv4Addr(2, 0, 0, 1), Attrs({}, {2}), true, 100);
  EXPECT_GT(CompareIgnoringMed(a, b, config), 0);
}

// --- MED semantics -----------------------------------------------------------

TEST(MedTest, ComparedOnlyWithinNeighborAs) {
  const DecisionConfig config;
  auto a = Cand(Ipv4Addr(1, 0, 0, 1), Attrs({}, {7, 1}));
  auto b = Cand(Ipv4Addr(2, 0, 0, 1), Attrs({}, {7, 2}));
  a.attrs.med = 10;
  b.attrs.med = 5;
  EXPECT_GT(CompareMed(a, b, config), 0);  // same neighbor AS 7: b wins

  auto c = Cand(Ipv4Addr(3, 0, 0, 1), Attrs({}, {8, 2}));
  c.attrs.med = 0;
  EXPECT_EQ(CompareMed(a, c, config), 0);  // different neighbor AS: no MED
}

TEST(MedTest, AlwaysCompareMedFlag) {
  DecisionConfig config;
  config.always_compare_med = true;
  auto a = Cand(Ipv4Addr(1, 0, 0, 1), Attrs({}, {7, 1}));
  auto b = Cand(Ipv4Addr(2, 0, 0, 1), Attrs({}, {8, 2}));
  a.attrs.med = 10;
  b.attrs.med = 5;
  EXPECT_GT(CompareMed(a, b, config), 0);
}

TEST(MedTest, MissingMedTreatedAsBestByDefault) {
  const DecisionConfig config;
  auto a = Cand(Ipv4Addr(1, 0, 0, 1), Attrs({}, {7, 1}));
  auto b = Cand(Ipv4Addr(2, 0, 0, 1), Attrs({}, {7, 2}));
  b.attrs.med = 5;
  EXPECT_LT(CompareMed(a, b, config), 0);  // missing MED = 0 beats 5

  DecisionConfig worst;
  worst.missing_med_as_best = false;
  EXPECT_GT(CompareMed(a, b, worst), 0);
}

// The RFC 3345 seed: three candidates with no total order make the
// sequential (order-dependent) selection disagree with itself across
// orderings, while deterministic-med is order-invariant.
TEST(MedTest, SequentialSelectionIsOrderDependent) {
  DecisionConfig config;  // deterministic_med = false
  config.igp_cost = [](Ipv4Addr nh) -> std::uint32_t {
    if (nh == Ipv4Addr(1, 0, 0, 1)) return 1;   // r_B1: closest
    if (nh == Ipv4Addr(2, 0, 0, 1)) return 2;   // r_C: middle
    return 3;                                   // r_B0: farthest
  };
  auto r_b1 = Cand(Ipv4Addr(1, 0, 0, 1), Attrs(Ipv4Addr(1, 0, 0, 1), {7, 9}));
  r_b1.attrs.med = 1;
  auto r_c = Cand(Ipv4Addr(2, 0, 0, 1), Attrs(Ipv4Addr(2, 0, 0, 1), {8, 9}));
  auto r_b0 = Cand(Ipv4Addr(3, 0, 0, 1), Attrs(Ipv4Addr(3, 0, 0, 1), {7, 9}));
  r_b0.attrs.med = 0;

  // Cycle: r_b0 beats r_b1 (MED), r_b1 beats r_c (IGP), r_c beats r_b0 (IGP).
  const std::vector<RouteCandidate> order_a{r_b1, r_c, r_b0};
  const std::vector<RouteCandidate> order_b{r_c, r_b0, r_b1};
  const auto pick1 = SelectBest(order_a, config);
  const auto pick2 = SelectBest(order_b, config);
  ASSERT_TRUE(pick1);
  ASSERT_TRUE(pick2);
  // The winners differ by scan order — the root of RFC 3345 oscillation.
  EXPECT_NE(order_a[*pick1].peer, order_b[*pick2].peer);

  // deterministic-med removes the order dependence.
  config.deterministic_med = true;
  const auto d1 = SelectBest(order_a, config);
  const auto d2 = SelectBest(order_b, config);
  ASSERT_TRUE(d1);
  ASSERT_TRUE(d2);
  EXPECT_EQ(order_a[*d1].peer, order_b[*d2].peer);
}

// --- LocRib ---------------------------------------------------------------

TEST(LocRibTest, UpdateTracksBestChanges) {
  LocRib rib;
  const auto change1 = rib.Update(
      Ipv4Addr(1, 0, 0, 1), kP, Cand(Ipv4Addr(1, 0, 0, 1), Attrs({}, {1, 2})));
  EXPECT_TRUE(change1.Changed());
  EXPECT_FALSE(change1.old_best);
  ASSERT_TRUE(change1.new_best);

  // Better (shorter) route from another peer takes over.
  const auto change2 = rib.Update(
      Ipv4Addr(2, 0, 0, 1), kP, Cand(Ipv4Addr(2, 0, 0, 1), Attrs({}, {9})));
  EXPECT_TRUE(change2.Changed());
  EXPECT_EQ(change2.new_best->peer, Ipv4Addr(2, 0, 0, 1));

  // Worse route arriving does not change the best.
  const auto change3 = rib.Update(
      Ipv4Addr(3, 0, 0, 1), kP,
      Cand(Ipv4Addr(3, 0, 0, 1), Attrs({}, {5, 6, 7})));
  EXPECT_FALSE(change3.Changed());

  EXPECT_EQ(rib.RouteCount(), 3u);
  EXPECT_EQ(rib.PrefixCount(), 1u);

  // Withdrawing the best falls back to the next.
  const auto change4 = rib.Update(Ipv4Addr(2, 0, 0, 1), kP, std::nullopt);
  EXPECT_TRUE(change4.Changed());
  EXPECT_EQ(change4.new_best->peer, Ipv4Addr(1, 0, 0, 1));
}

TEST(LocRibTest, LastRouteRemovalEmptiesPrefix) {
  LocRib rib;
  rib.Update(Ipv4Addr(1, 0, 0, 1), kP,
             Cand(Ipv4Addr(1, 0, 0, 1), Attrs({}, {1})));
  const auto change = rib.Update(Ipv4Addr(1, 0, 0, 1), kP, std::nullopt);
  EXPECT_TRUE(change.Changed());
  EXPECT_FALSE(change.new_best);
  EXPECT_EQ(rib.PrefixCount(), 0u);
  EXPECT_EQ(rib.Best(kP), nullptr);
}

TEST(LocRibTest, ReplaceInPlaceKeepsSinglecandidate) {
  LocRib rib;
  rib.Update(Ipv4Addr(1, 0, 0, 1), kP,
             Cand(Ipv4Addr(1, 0, 0, 1), Attrs({}, {1})));
  rib.Update(Ipv4Addr(1, 0, 0, 1), kP,
             Cand(Ipv4Addr(1, 0, 0, 1), Attrs({}, {1, 2})));
  EXPECT_EQ(rib.RouteCount(), 1u);
  EXPECT_EQ(rib.Best(kP)->attrs.as_path, (AsPath{1, 2}));
}

TEST(LocRibTest, WithdrawUnknownIsNoop) {
  LocRib rib;
  const auto change = rib.Update(Ipv4Addr(1, 0, 0, 1), kP, std::nullopt);
  EXPECT_FALSE(change.Changed());
}

}  // namespace
}  // namespace ranomaly::bgp
