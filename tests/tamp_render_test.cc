#include <gtest/gtest.h>

#include "tamp/render.h"

namespace ranomaly::tamp {
namespace {

using bgp::AsPath;
using bgp::Ipv4Addr;
using bgp::Prefix;
using collector::RouteEntry;

PrunedGraph SamplePruned() {
  std::vector<RouteEntry> routes;
  for (std::uint8_t i = 0; i < 20; ++i) {
    RouteEntry r;
    r.peer = Ipv4Addr(10, 0, 0, 1);
    r.prefix = Prefix(Ipv4Addr(10, i, 0, 0), 16);
    r.attrs.nexthop = Ipv4Addr(10, 1, 0, 1);
    r.attrs.as_path = AsPath{11423, 209};
    routes.push_back(r);
  }
  return Prune(TampGraph::FromSnapshot(routes));
}

TEST(RenderSvgTest, ContainsNodesEdgesAndPercentages) {
  const PrunedGraph pruned = SamplePruned();
  const Layout layout = ComputeLayout(pruned);
  RenderOptions options;
  options.title = "Berkeley's BGP";
  const std::string svg = RenderSvg(pruned, layout, options);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("AS209"), std::string::npos);
  EXPECT_NE(svg.find("10.1.0.1"), std::string::npos);
  EXPECT_NE(svg.find("100%"), std::string::npos);
  EXPECT_NE(svg.find("Berkeley&apos;s") == std::string::npos
                ? svg.find("Berkeley's")
                : svg.find("Berkeley&apos;s"),
            std::string::npos);
  // One <line> per edge at least, one <rect> per node + background.
  std::size_t lines = 0;
  for (std::size_t pos = svg.find("<line"); pos != std::string::npos;
       pos = svg.find("<line", pos + 1)) {
    ++lines;
  }
  EXPECT_GE(lines, pruned.edges.size());
}

TEST(RenderSvgTest, EscapesXmlInTitles) {
  const PrunedGraph pruned = SamplePruned();
  const Layout layout = ComputeLayout(pruned);
  RenderOptions options;
  options.title = "a<b&c>d";
  const std::string svg = RenderSvg(pruned, layout, options);
  EXPECT_EQ(svg.find("a<b&c>d"), std::string::npos);
  EXPECT_NE(svg.find("a&lt;b&amp;c&gt;d"), std::string::npos);
}

TEST(RenderAnimationTest, FrameShowsClockColorsAndShadow) {
  const PrunedGraph pruned = SamplePruned();
  const Layout layout = ComputeLayout(pruned);
  std::vector<EdgeDecoration> decorations(pruned.edges.size());
  if (!decorations.empty()) {
    decorations[0].color = EdgeColor::kYellow;
    decorations[0].shadow_weight = pruned.edges[0].weight * 2;
  }
  EdgePlot plot;
  plot.edge_label = "core1-b -> 10.3.4.5";
  plot.weights = {1, 0, 1, 0, 1};
  const std::string svg = RenderAnimationFrameSvg(
      pruned, layout, decorations, 90 * util::kSecond + 250 * util::kMillisecond,
      plot);
  EXPECT_NE(svg.find("clock [+00:01:30.250]"), std::string::npos);
  EXPECT_NE(svg.find(ToSvgColor(EdgeColor::kYellow)), std::string::npos);
  EXPECT_NE(svg.find("#b0b0b0"), std::string::npos);  // the gray shadow
  EXPECT_NE(svg.find("core1-b -&gt; 10.3.4.5"), std::string::npos);
}

TEST(RenderAnimationTest, NoPlotPanelWithoutPlot) {
  const PrunedGraph pruned = SamplePruned();
  const Layout layout = ComputeLayout(pruned);
  const std::string svg = RenderAnimationFrameSvg(
      pruned, layout, {}, 0, std::nullopt);
  EXPECT_EQ(svg.find("#c03020"), std::string::npos);  // no impulse marks
  EXPECT_NE(svg.find("clock"), std::string::npos);
}

TEST(RenderDotTest, EmitsGraphvizSyntax) {
  const PrunedGraph pruned = SamplePruned();
  const std::string dot = RenderDot(pruned);
  EXPECT_NE(dot.find("digraph tamp {"), std::string::npos);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("penwidth"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(EdgeColorTest, DistinctSvgColors) {
  EXPECT_STRNE(ToSvgColor(EdgeColor::kBlue), ToSvgColor(EdgeColor::kGreen));
  EXPECT_STRNE(ToSvgColor(EdgeColor::kYellow), ToSvgColor(EdgeColor::kBlack));
}

}  // namespace
}  // namespace ranomaly::tamp
