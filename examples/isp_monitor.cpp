// A real-time-style monitoring loop at a Tier-1 ISP (the deployment shape
// of paper Section V): step the network in 5-minute intervals, run the
// analysis pipeline over each new window plus a long-window pass, print
// incidents as they are detected, and drill down into the IGP log
// (Section III-D.3) around anything suspicious.
//
// Injected behind the scenes: the IV-E flapping customer and one IGP
// metric change, to give the monitor something to find.
//
// Build & run:  ./build/examples/isp_monitor
#include <cstdio>

#include "collector/collector.h"
#include "core/correlate.h"
#include "core/monitor.h"
#include "core/pipeline.h"
#include "igp/lsa.h"
#include "workload/ispanon.h"

using namespace ranomaly;
using util::kMinute;
using util::kSecond;

int main() {
  workload::IspAnonOptions options;
  options.pop_count = 4;
  options.customers_per_pop = 4;
  options.with_med_scenario = false;
  workload::IspAnonNet net = workload::BuildIspAnon(options);
  net::Simulator sim(net.topology, 8);
  collector::Collector rex;
  rex.AttachTo(sim, net.core_rrs);
  net.SeedRoutes(sim);
  sim.Start();
  sim.RunToQuiescence(5 * kMinute);
  std::printf("ISP monitor up: %zu core reflectors, %zu prefixes\n\n",
              net.core_rrs.size(), rex.PrefixCount());

  // The synchronized IGP feed (paper: REX holds passive IGP adjacencies).
  igp::LsaLog lsa_log;
  igp::LinkStateDb lsdb;
  auto record_lsa = [&](util::SimTime t, const igp::Lsa& lsa) {
    lsa_log.Record(t, lsa, lsdb.Install(lsa));
  };
  // Baseline IGP: a ring over the PoP reflectors.
  for (std::uint32_t r = 0; r < 4; ++r) {
    record_lsa(sim.now(), igp::Lsa{r + 1, 0, 1,
                                   {{(r + 1) % 4 + 1, 10}, {(r + 3) % 4 + 1, 10}}});
  }

  // Trouble starts at +10 min: the IV-E customer flap, plus an IGP metric
  // change at +12 min that REX should surface during drill-down.
  const util::SimTime t0 = sim.now();
  InjectCustomerFlaps(sim, net, t0 + 10 * kMinute, 20 * kMinute,
                      10 * kSecond, 50 * kSecond);
  bool lsa_injected = false;

  // The monitor encapsulates the operations loop: spike-scale analysis of
  // each poll's fresh events, a periodic long-window pass, and alert
  // deduplication so the persistent flap pages once per interval.
  core::RealTimeMonitor::Options monitor_options;
  monitor_options.long_pass_every = 15 * kMinute;
  monitor_options.realert_interval = 30 * kMinute;
  core::RealTimeMonitor monitor(monitor_options);

  bool found_flap = false;
  std::size_t previous = 0;
  for (int step = 1; step <= 7; ++step) {
    const util::SimTime until = t0 + step * 5 * kMinute;
    sim.Run(until);
    if (!lsa_injected && sim.now() >= t0 + 12 * kMinute) {
      record_lsa(t0 + 12 * kMinute,
                 igp::Lsa{1, 0, 2, {{2, 500}, {4, 10}}});  // metric change
      lsa_injected = true;
    }

    const std::size_t fresh = rex.events().size() - previous;
    previous = rex.events().size();
    std::printf("[t=%4.0f min] %zu new events",
                util::ToSeconds(sim.now() - t0) / 60.0, fresh);

    const auto alerts = monitor.Poll(rex.events());
    if (alerts.empty()) {
      std::printf(" - quiet\n");
    } else {
      std::printf("\n");
      for (const auto& incident : alerts) {
        std::printf("    ALERT %s\n", incident.summary.c_str());
        for (const auto& p : incident.component.prefixes) {
          if (p == net.flap_prefix) found_flap = true;
        }
        // D.3: anything happening in the IGP around this incident?
        const auto igp_corr = core::CorrelateIgp(incident, lsa_log, kMinute);
        if (igp_corr.igp_active) {
          std::printf("      IGP drill-down: %zu LSA event(s) near the "
                      "incident — check interior routing too\n",
                      igp_corr.lsa_events.size());
        }
      }
    }
  }

  std::printf("\nmonitor: %zu polls, %zu alerts raised, %zu duplicate "
              "alerts suppressed\n",
              monitor.polls(), monitor.alerts_raised(),
              monitor.alerts_suppressed());
  std::printf("persistent customer flap (%s) identified: %s\n",
              net.flap_prefix.ToString().c_str(),
              found_flap ? "YES" : "no");
  return found_flap ? 0 : 1;
}
