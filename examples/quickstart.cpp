// Quickstart: the whole pipeline in ~100 lines.
//
//   1. Describe a small internetwork (one monitored AS, two upstreams,
//      some origin ASes with prefixes).
//   2. Simulate BGP until it converges, with the collector passively
//      iBGP-peering with the monitored routers (the paper's REX).
//   3. Break something (a session reset), let BGP converge again.
//   4. Ask the analysis pipeline what happened.
//   5. Draw the TAMP picture of the routing state.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <fstream>

#include "collector/collector.h"
#include "core/pipeline.h"
#include "tamp/layout.h"
#include "tamp/prune.h"
#include "tamp/render.h"

using namespace ranomaly;
using bgp::Ipv4Addr;
using bgp::Prefix;
using util::kMinute;
using util::kSecond;

int main() {
  // --- 1. the network ----------------------------------------------------
  net::Topology topo;
  auto router = [&](const char* name, Ipv4Addr addr, bgp::AsNumber asn) {
    return topo.AddRouter(net::RouterSpec{name, addr, asn, 0, false, {}});
  };
  // Our AS (65000): two edge routers, iBGP-meshed.
  const auto edge1 = router("edge1", Ipv4Addr(10, 0, 0, 1), 65000);
  const auto edge2 = router("edge2", Ipv4Addr(10, 0, 0, 2), 65000);
  // Two upstream providers and three customers-of-the-internet.
  const auto isp_a = router("isp-a", Ipv4Addr(20, 0, 0, 1), 100);
  const auto isp_b = router("isp-b", Ipv4Addr(30, 0, 0, 1), 200);
  const auto origin1 = router("origin1", Ipv4Addr(40, 0, 0, 1), 3001);
  const auto origin2 = router("origin2", Ipv4Addr(40, 0, 0, 2), 3002);
  const auto origin3 = router("origin3", Ipv4Addr(40, 0, 0, 3), 3003);

  auto link = [&](net::RouterIndex a, net::RouterIndex b,
                  net::PeerRelation rel) {
    net::LinkSpec l;
    l.a = a;
    l.b = b;
    l.b_is_as_seen_by_a = rel;
    return topo.AddLink(l);
  };
  link(edge1, edge2, net::PeerRelation::kInternal);
  const auto uplink_a = link(edge1, isp_a, net::PeerRelation::kProvider);
  link(edge2, isp_b, net::PeerRelation::kProvider);
  link(isp_a, origin1, net::PeerRelation::kCustomer);
  link(isp_a, origin2, net::PeerRelation::kCustomer);
  link(isp_b, origin2, net::PeerRelation::kCustomer);
  link(isp_b, origin3, net::PeerRelation::kCustomer);

  // --- 2. simulate + collect ---------------------------------------------
  net::Simulator sim(std::move(topo));
  collector::Collector rex;  // our REX
  rex.AttachTo(sim, {edge1, edge2});

  // Each origin announces a handful of prefixes.
  for (std::uint8_t i = 0; i < 10; ++i) {
    sim.Originate(origin1, Prefix(Ipv4Addr(41, i, 0, 0), 16));
    sim.Originate(origin2, Prefix(Ipv4Addr(42, i, 0, 0), 16));
    sim.Originate(origin3, Prefix(Ipv4Addr(43, i, 0, 0), 16));
  }
  sim.Start();
  sim.RunToQuiescence(5 * kMinute);
  std::printf("converged: %zu routes over %zu prefixes at the collector\n",
              rex.RouteCount(), rex.PrefixCount());

  // --- 3. break something ---------------------------------------------------
  // Bounce the edge1<->isp-a session: everything learned over it is
  // withdrawn, re-explored, and re-learned.
  const util::SimTime trouble_begins = sim.now() + kMinute;
  sim.ScheduleLinkDown(uplink_a, trouble_begins);
  sim.ScheduleLinkUp(uplink_a, trouble_begins + kMinute);
  sim.RunToQuiescence(sim.now() + 10 * kMinute);
  std::printf("after the reset: %zu events captured\n", rex.events().size());

  // --- 4. what happened? ---------------------------------------------------
  // Analyze the window around the trouble (the initial table transfer is
  // not part of the incident).
  core::Pipeline pipeline;
  const auto window =
      rex.events().Window(trouble_begins - kSecond, sim.now());
  const auto incidents = pipeline.AnalyzeWindow(window);
  std::printf("\nincidents:\n");
  for (const auto& incident : incidents) {
    std::printf("  %s\n", incident.summary.c_str());
  }

  // --- 5. draw it ---------------------------------------------------------
  auto graph = tamp::TampGraph::FromSnapshot(rex.Snapshot(),
                                             {.root_name = "my-as"});
  const auto pruned = tamp::Prune(graph, {.threshold = 0.05});
  const auto layout = tamp::ComputeLayout(pruned);
  std::ofstream("quickstart.svg")
      << tamp::RenderSvg(pruned, layout, {.title = "quickstart: my AS"});
  std::printf("\nwrote quickstart.svg (%zu nodes, %zu edges)\n",
              pruned.nodes.size(), pruned.edges.size());
  return incidents.empty() ? 1 : 0;
}
