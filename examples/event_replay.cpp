// Offline analysis of a recorded event stream.
//
// Usage:
//   ./build/examples/event_replay               # record + replay a demo
//   ./build/examples/event_replay FILE          # analyze an existing file
//
// The on-disk format is the paper's Fig 4 line format with a leading
// microsecond timestamp, e.g.:
//
//   1000000 W 128.32.1.3 NEXT_HOP: 128.32.0.70 ASPATH: 11423 209 701
//       PREFIX: 192.96.10.0/24   (one event per line; wrapped here)
//
// The tool stems the stream, prints the component table, and writes a
// TAMP picture of the post-replay routing state.
#include <cstdio>
#include <fstream>

#include "core/pipeline.h"
#include "tamp/animation.h"
#include "tamp/layout.h"
#include "tamp/render.h"
#include "workload/eventgen.h"

using namespace ranomaly;
using util::kMinute;

namespace {

// Produces a demo capture: churn + a tier-1 failover + a reset.
void WriteDemoCapture(const char* path) {
  workload::InternetOptions net_options;
  net_options.monitored_peers = 4;
  net_options.prefix_count = 1'500;
  net_options.origin_as_count = 300;
  net_options.seed = 5;
  const workload::SyntheticInternet internet(net_options);
  workload::EventStreamGenerator gen(internet, 6);
  gen.Churn(0, 60 * kMinute, 3'000);
  gen.SessionReset(1, 20 * kMinute, kMinute, 20 * util::kSecond);
  gen.Tier1Failover(0, 2, 40 * kMinute, kMinute);
  const auto stream = gen.Take();
  std::ofstream out(path);
  stream.SaveText(out);
  std::printf("recorded %zu events to %s\n", stream.size(), path);
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = "event_replay_demo.events";
  if (argc > 1) {
    path = argv[1];
  } else {
    WriteDemoCapture(path);
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  const auto stream = collector::EventStream::LoadText(in);
  if (!stream) {
    std::fprintf(stderr, "parse error in %s\n", path);
    return 1;
  }
  std::printf("loaded %zu events covering %s\n", stream->size(),
              util::FormatDuration(stream->TimeRange()).c_str());

  // Rate overview + spikes.
  const auto spikes = collector::DetectSpikes(*stream, kMinute, 5.0);
  std::printf("spikes above 5x mean rate: %zu\n", spikes.size());
  for (const auto& spike : spikes) {
    std::printf("  [%s .. %s] %llu events\n",
                util::FormatTime(spike.begin).c_str(),
                util::FormatTime(spike.end).c_str(),
                static_cast<unsigned long long>(spike.event_count));
  }

  // Incident analysis.
  core::Pipeline pipeline;
  const auto incidents = pipeline.Analyze(*stream);
  std::printf("\nincidents:\n");
  for (const auto& incident : incidents) {
    std::printf("  %s\n", incident.summary.c_str());
  }

  // Replay into a TAMP animation from a cold start and render the final
  // state as a picture.
  tamp::Animator animator({}, tamp::AnimationOptions{});
  const auto result = animator.Play(stream->events());
  std::printf("\nanimation: %zu frames over %s\n", result.frames.size(),
              util::FormatDuration(result.timerange).c_str());
  const auto pruned = tamp::Prune(animator.graph(), {.threshold = 0.03});
  const auto layout = tamp::ComputeLayout(pruned);
  std::ofstream("event_replay.svg")
      << tamp::RenderSvg(pruned, layout, {.title = path});
  std::printf("wrote event_replay.svg (%zu nodes, %zu edges)\n",
              pruned.nodes.size(), pruned.edges.size());
  return 0;
}
