// The four Berkeley case studies of paper Section IV, driven end to end:
//
//   IV-A  Load Balancing Unbalanced  — the skewed rate-limiter split
//   IV-B  Backdoor routes           — hierarchical pruning finds them
//   IV-C  BGP community mis-tagging — TAMP over one community's routes
//   IV-D  Peer leaking routes       — Stemming + policy correlation (D.1)
//
// Build & run:  ./build/examples/berkeley_case_studies
#include <cstdio>
#include <fstream>

#include "collector/collector.h"
#include "core/correlate.h"
#include "core/pipeline.h"
#include "tamp/layout.h"
#include "tamp/prune.h"
#include "tamp/render.h"
#include "traffic/traffic.h"
#include "workload/berkeley.h"

using namespace ranomaly;
using bgp::Ipv4Addr;
using util::kMinute;
using util::kSecond;

int main() {
  std::printf("building the Berkeley network (Aug-Dec 2003 shape)...\n");
  workload::BerkeleyNet net = workload::BuildBerkeley();
  net::Simulator sim(net.topology, 3);
  collector::Collector rex;
  rex.AttachTo(sim, net.monitored);
  net.SeedRoutes(sim);
  sim.Start();
  if (!sim.RunToQuiescence(10 * kMinute)) {
    std::printf("failed to converge\n");
    return 1;
  }
  std::printf("converged: %zu routes, %zu prefixes, %zu nexthops, 4 edge "
              "routers\n\n",
              rex.RouteCount(), rex.PrefixCount(), rex.NexthopCount());

  auto graph = tamp::TampGraph::FromSnapshot(rex.Snapshot(),
                                             {.root_name = "Berkeley"});
  for (const auto& [asn, name] : net.AsNames()) graph.SetAsName(asn, name);
  const double total = static_cast<double>(graph.UniquePrefixCount());

  // --- IV-A: Load Balancing Unbalanced -----------------------------------
  std::printf("--- IV-A: Load Balancing Unbalanced ---\n");
  const auto w66 = graph.EdgeWeight(
      tamp::PeerNode(Ipv4Addr(128, 32, 1, 3)),
      tamp::NexthopNode(Ipv4Addr(128, 32, 0, 66)));
  const auto w70 = graph.EdgeWeight(
      tamp::PeerNode(Ipv4Addr(128, 32, 1, 3)),
      tamp::NexthopNode(Ipv4Addr(128, 32, 0, 70)));
  std::printf("rate limiter 128.32.0.66 carries %4.1f%%, 128.32.0.70 only "
              "%4.1f%% (intended: ~40/40)\n",
              100.0 * static_cast<double>(w66) / total,
              100.0 * static_cast<double>(w70) / total);

  // The Section III-D.2 refinement: how bad is it in *bytes*?
  std::vector<bgp::Prefix> all = net.commodity_a;
  all.insert(all.end(), net.commodity_b.begin(), net.commodity_b.end());
  traffic::FlowGenerator flows(all, {}, 99);
  traffic::TrafficMatrix matrix(all);
  for (int i = 0; i < 100'000; ++i) matrix.AddFlow(flows.Next());
  const auto report =
      traffic::EvaluateSplit(matrix, net.commodity_a, net.commodity_b);
  std::printf("with elephant/mice traffic: %4.1f%% of prefixes but %4.1f%% "
              "of bytes on the .66 side\n",
              report.PrefixFractionA() * 100.0,
              report.ByteFractionA() * 100.0);
  // The D.2 remedy: plan the split from measured volumes instead of
  // trial-and-error address halving.
  const auto planned = traffic::ComputeBalancedSplit(matrix, all);
  std::printf("volume-planned split: %4.1f%% of bytes on side A (no "
              "trial-and-error)\n\n",
              planned.report.ByteFractionA() * 100.0);

  // --- IV-B: Backdoor routes -----------------------------------------------
  std::printf("--- IV-B: Backdoor routes ---\n");
  tamp::PruneOptions hier;
  hier.depth_thresholds = {0.0, 0.0, 0.0, 0.0, 0.05};
  const auto pruned = tamp::Prune(graph, hier);
  const auto backdoor_weight = graph.EdgeWeight(
      tamp::NexthopNode(Ipv4Addr(169, 229, 0, 157)), tamp::AsNode(7018));
  std::printf("hierarchical pruning shows %zu backdoor prefix(es) via "
              "128.32.1.222 -> 169.229.0.157 -> AT&T\n",
              backdoor_weight);
  {
    const auto layout = tamp::ComputeLayout(pruned);
    std::ofstream("berkeley_hierarchical.svg") << tamp::RenderSvg(
        pruned, layout, {.title = "Berkeley, hierarchical pruning"});
    std::printf("wrote berkeley_hierarchical.svg\n\n");
  }

  // --- IV-C: community mis-tagging ----------------------------------------
  std::printf("--- IV-C: community 2152:65297 mis-tagging ---\n");
  std::vector<collector::RouteEntry> tagged;
  for (const auto& r : rex.Snapshot()) {
    if (r.attrs.communities.Contains(workload::kLosNettosTag)) {
      tagged.push_back(r);
    }
  }
  auto tag_graph = tamp::TampGraph::FromSnapshot(tagged);
  for (const auto& [asn, name] : net.AsNames()) tag_graph.SetAsName(asn, name);
  const double tag_total = static_cast<double>(tag_graph.UniquePrefixCount());
  std::printf("%4.1f%% of tagged prefixes really come from Los Nettos; "
              "%4.1f%% from KDDI (mis-tagged)\n\n",
              100.0 * static_cast<double>(tag_graph.EdgeWeight(
                          tamp::AsNode(2152), tamp::AsNode(226))) / tag_total,
              100.0 * static_cast<double>(tag_graph.EdgeWeight(
                          tamp::AsNode(2152), tamp::AsNode(2516))) / tag_total);

  // --- IV-D: peer leaking routes -------------------------------------------
  std::printf("--- IV-D: peer leaking routes ---\n");
  const util::SimTime t0 = sim.now() + kMinute;
  workload::InjectRouteLeak(sim, net, t0, 2 * kMinute, 2 * kMinute, 2);
  sim.RunToQuiescence(t0 + 20 * kMinute);

  core::Pipeline pipeline;
  const auto window = rex.events().Window(t0 - kSecond, t0 + kMinute);
  const auto incidents = pipeline.AnalyzeWindow(window);
  if (incidents.empty()) {
    std::printf("no incident found\n");
    return 1;
  }
  std::printf("detected: %s\n", incidents[0].summary.c_str());

  // D.1: correlate with the routers' parsed configurations.
  const auto r13_cfg = net::RouterConfig::Parse(net.r13_config_text);
  const auto r1200_cfg = net::RouterConfig::Parse(net.r1200_config_text);
  const std::vector<core::NamedConfig> configs = {
      {"128.32.1.3", &*r13_cfg}, {"128.32.1.200", &*r1200_cfg}};
  for (const auto& f : core::CorrelatePolicies(incidents[0], window, configs)) {
    std::printf("policy correlation: community %s matches %s clause %zu of "
                "route-map %s on %s (%s)\n",
                f.community.ToString().c_str(), "match", f.clause_index + 1,
                f.route_map_name.c_str(), f.router_name.c_str(),
                f.action.c_str());
  }
  std::printf(
      "=> the withdrawn routes carried 11423:65350; 128.32.1.3 only accepts\n"
      "   that tag (LP 80), so when the leak displaced the QWest routes it\n"
      "   silently bypassed both rate limiters — the paper's IV-D story.\n");
  return 0;
}
