#!/usr/bin/env bash
# Runs the stemming-opt benchmark and distils BENCH_stemming.json:
# ns/op per workload size for the legacy and arena stemmers, the serial
# speedup per row, and the 1/2/4-thread curve at 330k events.
#
# Usage:
#   tools/run_bench.sh [--quick] [--build-dir DIR] [--out FILE]
#
#   --quick      trimmed run (12k rows + thread curve, short min_time);
#                writes into the build dir instead of the repo root.
#                This is what the `bench_smoke` ctest entry runs.
#   --build-dir  cmake build directory (default: <repo>/build)
#   --out        output JSON path (default: <repo>/BENCH_stemming.json,
#                or <build>/BENCH_stemming_quick.json with --quick)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
quick=0
out=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) quick=1; shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --out) out="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

bench="$build_dir/bench/bench_stemming_opt"
if [[ ! -x "$bench" ]]; then
  echo "building bench_stemming_opt in $build_dir ..." >&2
  cmake --build "$build_dir" --target bench_stemming_opt
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

if [[ "$quick" -eq 1 ]]; then
  [[ -n "$out" ]] || out="$build_dir/BENCH_stemming_quick.json"
  # 12k rows only, plus the thread curve's 1-thread point; short runs.
  "$bench" \
    --benchmark_filter='/(12000|1)$' \
    --benchmark_min_time=0.05 \
    --benchmark_format=json > "$raw"
else
  [[ -n "$out" ]] || out="$repo_root/BENCH_stemming.json"
  "$bench" --benchmark_format=json > "$raw"
fi

python3 - "$raw" "$out" "$quick" <<'EOF'
import json
import sys

raw_path, out_path, quick = sys.argv[1], sys.argv[2], sys.argv[3] == "1"
with open(raw_path) as f:
    report = json.load(f)

runs = {}
for b in report["benchmarks"]:
    if b.get("run_type", "iteration") != "iteration":
        continue
    ns = b["real_time"]
    unit = b.get("time_unit", "ns")
    ns *= {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
    runs[b["name"]] = {"ns_per_op": ns, "counters": {
        k: v for k, v in b.items()
        if k in ("events", "components", "threads")}}

def ns(name):
    return runs[name]["ns_per_op"] if name in runs else None

rows = []
for size in (12_000, 57_000, 330_000):
    legacy = ns(f"BM_StemmingLegacy/{size}")
    arena = ns(f"BM_StemmingArena/{size}")
    if legacy is None and arena is None:
        continue
    row = {"events": size, "legacy_ns_per_op": legacy,
           "arena_ns_per_op": arena}
    if legacy is not None and arena is not None and arena > 0:
        row["speedup"] = legacy / arena
    rows.append(row)

parallel = []
for threads in (1, 2, 4):
    t = ns(f"BM_StemmingArenaThreads/{threads}")
    if t is not None:
        parallel.append({"threads": threads, "ns_per_op": t})

result = {
    "benchmark": "bench_stemming_opt",
    "workload": "BerkeleyScale(23000) SpikeEvents, Table I stemming rows",
    "mode": "quick" if quick else "full",
    "rows": rows,
    "parallel_330k": parallel,
}
big = next((r for r in rows if r["events"] == 330_000 and "speedup" in r),
           None)
if big is not None:
    result["serial_speedup_330k"] = big["speedup"]

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

for r in rows:
    s = f'  {r["events"]:>7} events: '
    if r["legacy_ns_per_op"] is not None:
        s += f'legacy {r["legacy_ns_per_op"] / 1e6:.1f} ms  '
    if r["arena_ns_per_op"] is not None:
        s += f'arena {r["arena_ns_per_op"] / 1e6:.1f} ms  '
    if "speedup" in r:
        s += f'speedup {r["speedup"]:.1f}x'
    print(s)
for p in parallel:
    print(f'  330k @ {p["threads"]} thread(s): {p["ns_per_op"] / 1e6:.1f} ms')

if not rows and not parallel:
    sys.exit("no benchmark rows parsed")
if not quick and big is not None and big["speedup"] < 5.0:
    sys.exit(f'serial speedup at 330k is {big["speedup"]:.2f}x, below the '
             "5x target")
print(f"wrote {out_path}")
EOF
