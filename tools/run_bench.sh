#!/usr/bin/env bash
# Runs the stemming-opt benchmark and distils BENCH_stemming.json:
# ns/op per workload size for the legacy and arena stemmers, the serial
# speedup per row, and the 1/2/4-thread curve at 330k events.
#
# Usage:
#   tools/run_bench.sh [--quick|--overhead|--serve-overhead|--dashboard-overhead|--checkpoint-overhead|--provenance-overhead|--throughput|--internet]
#                      [--build-dir DIR]
#                      [--out FILE]
#
#   --quick      trimmed run (12k rows + thread curve, short min_time);
#                writes into the build dir instead of the repo root.
#                This is what the `bench_smoke` ctest entry runs.
#                Composes with --throughput (trimmed events/thread set).
#   --overhead   measures instrumentation overhead: benchmarks the
#                normal build against a -DRANOMALY_NO_TRACING=ON build
#                (configured into <build>-notrace) on the quick workload
#                and appends an `instrumentation_overhead` row to the
#                output JSON (budget: <= 5%, see docs/OBSERVABILITY.md).
#   --serve-overhead
#                measures what a 1 Hz /metrics + /varz scraper costs the
#                analysis pipeline (bench_serve_overhead --paired) with
#                the quiet-pair/min-over-rounds process-CPU estimator
#                and appends a `serve_overhead` row to the output JSON
#                (budget: <= 3%, see docs/OBSERVABILITY.md).
#   --dashboard-overhead
#                measures what a 1 Hz dashboard poller (/dashboard +
#                /api/series + /api/incidents/timeline) costs the
#                analysis pipeline (bench_dashboard_overhead --paired;
#                both sides feed the time-series store, so sampling is
#                baseline, not overhead) with the same estimator and
#                appends a `dashboard_overhead` row to the output JSON
#                (budget: <= 3%, see docs/OBSERVABILITY.md).
#   --throughput measures end-to-end ingest-to-incident throughput
#                (bench_throughput --json) at 1/2/4/8 analysis threads
#                and appends a `throughput_events_per_sec` row to the
#                output JSON; fails if the incident stream is not
#                byte-identical across thread counts.  This is the
#                trajectory row toward the 1M events/s target.
#   --internet   measures the same end-to-end replay over the
#                internet-scale workload (workload::BuildInternetScale:
#                32k ASes, 210k prefixes, a ~1M-route table dump plus
#                churn) and appends an `internet_scale_throughput` row;
#                like --throughput it fails unless the incident stream
#                is byte-identical across thread counts.  Composes with
#                --quick (4k ASes / 20k prefixes, fewer reps).
#   --checkpoint-overhead
#                measures what periodic analysis-tier checkpointing (an
#                RNC1 v2 snapshot every 16 ticks, the serve default)
#                costs a live replay (bench_checkpoint_overhead) and
#                appends a `checkpoint_overhead` row to the output JSON
#                (budget: <= 3%, see docs/FORMATS.md and
#                docs/OBSERVABILITY.md).
#   --provenance-overhead
#                measures what per-incident evidence capture (the
#                obs::ProvenanceLedger behind `ranomaly explain` and
#                /api/incidents/<id>/evidence) costs a live replay
#                (bench_provenance_overhead --paired) with the same
#                quiet-pair/min-over-rounds process-CPU estimator and
#                appends a `provenance_overhead` row to the output JSON
#                (budget: <= 3%, see docs/OBSERVABILITY.md).  Composes
#                with --quick (fewer pairs, one round, build-dir output)
#                — the `bench_smoke_provenance` ctest entry.
#   --build-dir  cmake build directory (default: <repo>/build)
#   --out        output JSON path (default: <repo>/BENCH_stemming.json,
#                or <build>/BENCH_stemming_quick.json with --quick)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
quick=0
overhead=0
serve_overhead=0
dashboard_overhead=0
checkpoint_overhead=0
provenance_overhead=0
throughput=0
internet=0
out=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) quick=1; shift ;;
    --overhead) overhead=1; shift ;;
    --serve-overhead) serve_overhead=1; shift ;;
    --dashboard-overhead) dashboard_overhead=1; shift ;;
    --checkpoint-overhead) checkpoint_overhead=1; shift ;;
    --provenance-overhead) provenance_overhead=1; shift ;;
    --throughput) throughput=1; shift ;;
    --internet) internet=1; shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --out) out="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [[ "$throughput" -eq 1 ]]; then
  tbench="$build_dir/bench/bench_throughput"
  if [[ ! -x "$tbench" ]]; then
    echo "building bench_throughput in $build_dir ..." >&2
    cmake --build "$build_dir" --target bench_throughput -j"$(nproc)"
  fi
  if [[ "$quick" -eq 1 ]]; then
    [[ -n "$out" ]] || out="$build_dir/BENCH_stemming_quick.json"
    args=(--json --events 40000 --reps 1 --threads 1,2)
  else
    [[ -n "$out" ]] || out="$repo_root/BENCH_stemming.json"
    args=(--json --events 200000 --reps 2 --threads 1,2,4,8)
  fi
  raw="$(mktemp)"
  trap 'rm -f "$raw"' EXIT
  # The bench replays the full serve path (tick ingest -> windowed
  # analysis -> incident log) once per (thread count, rep) and keeps
  # each count's fastest run; it also diffs the incident stream across
  # thread counts and exits non-zero on any byte difference, so this
  # row doubles as an end-to-end determinism check.
  "$tbench" "${args[@]}" > "$raw"
  python3 - "$raw" "$out" <<'EOF'
import json
import os
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    report = json.load(f)
if not report.get("incident_streams_identical", False):
    sys.exit("incident streams differ across thread counts")
row = {
    "benchmark": "bench_throughput",
    "workload": "SessionReset + Churn live replay, 10s tick / 5min window",
    "target_events_per_sec": 1_000_000,
    "host_cpus": report["host_cpus"],
    "events": report["events"],
    "incident_streams_identical": True,
    "rows": report["rows"],
}
result = {}
if os.path.exists(out_path):
    with open(out_path) as f:
        result = json.load(f)
result["throughput_events_per_sec"] = row
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
for r in report["rows"]:
    print(f'  {r["threads"]} thread(s): {r["events_per_sec"]:>10,.0f} '
          f'events/s ({r["seconds"]:.2f} s, {r["incidents"]} incidents)')
best = max(r["events_per_sec"] for r in report["rows"])
print(f'  best {best:,.0f} events/s of the {row["target_events_per_sec"]:,} '
      f'events/s target on a {row["host_cpus"]}-CPU host')
print(f"updated {out_path}")
EOF
  exit 0
fi

if [[ "$internet" -eq 1 ]]; then
  tbench="$build_dir/bench/bench_throughput"
  if [[ ! -x "$tbench" ]]; then
    echo "building bench_throughput in $build_dir ..." >&2
    cmake --build "$build_dir" --target bench_throughput -j"$(nproc)"
  fi
  if [[ "$quick" -eq 1 ]]; then
    [[ -n "$out" ]] || out="$build_dir/BENCH_stemming_quick.json"
    args=(--json --internet --ases 4000 --prefixes 20000 --peers 3
          --reps 1 --threads 1,2)
    workload="BuildInternetScale(4k ASes, 20k prefixes, 3 vantages)"
  else
    [[ -n "$out" ]] || out="$repo_root/BENCH_stemming.json"
    args=(--json --internet --ases 32000 --prefixes 210000 --peers 5
          --reps 2 --threads 1,2,4,8)
    workload="BuildInternetScale(32k ASes, 210k prefixes, 5 vantages)"
  fi
  raw="$(mktemp)"
  trap 'rm -f "$raw"' EXIT
  # Same harness as --throughput (full serve path, best-of-reps per
  # thread count, byte-identical incident streams enforced), but over
  # the Gao-Rexford table-dump workload: a full-table regime instead of
  # churn-dominated replay.
  "$tbench" "${args[@]}" > "$raw"
  python3 - "$raw" "$out" "$workload" <<'EOF'
import json
import os
import sys

raw_path, out_path, workload = sys.argv[1], sys.argv[2], sys.argv[3]
with open(raw_path) as f:
    report = json.load(f)
if not report.get("incident_streams_identical", False):
    sys.exit("incident streams differ across thread counts")
row = {
    "benchmark": "bench_throughput --internet",
    "workload": workload + " live replay, 10s tick / 5min window",
    "target_events_per_sec": 1_000_000,
    "host_cpus": report["host_cpus"],
    "events": report["events"],
    "incident_streams_identical": True,
    "rows": report["rows"],
}
result = {}
if os.path.exists(out_path):
    with open(out_path) as f:
        result = json.load(f)
result["internet_scale_throughput"] = row
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
for r in report["rows"]:
    print(f'  {r["threads"]} thread(s): {r["events_per_sec"]:>10,.0f} '
          f'events/s ({r["seconds"]:.2f} s, {r["incidents"]} incidents)')
best = max(r["events_per_sec"] for r in report["rows"])
print(f'  best {best:,.0f} events/s of the {row["target_events_per_sec"]:,} '
      f'events/s target on a {row["host_cpus"]}-CPU host')
print(f"updated {out_path}")
EOF
  exit 0
fi

if [[ "$serve_overhead" -eq 1 ]]; then
  [[ -n "$out" ]] || out="$repo_root/BENCH_stemming.json"
  sbench="$build_dir/bench/bench_serve_overhead"
  if [[ ! -x "$sbench" ]]; then
    echo "building bench_serve_overhead in $build_dir ..." >&2
    cmake --build "$build_dir" --target bench_serve_overhead -j"$(nproc)"
  fi
  # Same estimator as --checkpoint-overhead: (bare, scraped) analysis
  # batches run back to back in ONE process, alternating which side
  # goes first, each timed with a process-CPU-clock delta.  The quiet
  # pairs — combined time within 15% of the observed floor — ran in the
  # least contaminated regime, their ratio cancels the load the two
  # adjacent halves shared, and the minimum over time-separated rounds
  # dodges box-wide pressure stretches.  The previous separate-process
  # comparison reported a *negative* overhead (-5%) because the bare
  # and scraped processes landed in different load regimes.
  python3 - "$sbench" "$out" <<'EOF'
import json
import statistics
import os
import subprocess
import sys

sbench, out_path = sys.argv[1], sys.argv[2]

pairs = 10

def measure():
    proc = subprocess.run([sbench, "--paired", str(pairs)],
                          check=True, capture_output=True, text=True)
    report = json.loads(proc.stdout)
    floor = min(p["bare_ns"] + p["scraped_ns"] for p in report["pairs"])
    quiet = [p for p in report["pairs"]
             if p["bare_ns"] + p["scraped_ns"] <= floor * 1.15]
    if len(quiet) < 3:  # loaded box: median over 2 pairs is a coin flip
        quiet = sorted(report["pairs"],
                       key=lambda p: p["bare_ns"] + p["scraped_ns"])[:3]
    ratio = statistics.median(p["scraped_ns"] / p["bare_ns"] for p in quiet)
    iters = report["iters_per_side"]
    return {
        "bare_ns_per_op": statistics.median(
            p["bare_ns"] for p in quiet) / iters,
        "scraped_ns_per_op": statistics.median(
            p["scraped_ns"] for p in quiet) / iters,
        "overhead_fraction": ratio - 1.0,
        "quiet_pairs": len(quiet),
    }

# True overhead is >= 0 and load inflates the ratio, so smaller is
# closer to the truth — but a *negative* reading is residual noise of
# that magnitude around zero, not a better measurement, so rounds
# compete on |overhead| and the loop stops once a round lands within
# the noise floor of zero.
rounds = []
for _ in range(3):
    rounds.append(measure())
    if abs(rounds[-1]["overhead_fraction"]) <= 0.015:
        break
best = min(rounds, key=lambda r: abs(r["overhead_fraction"]))
row = {
    "benchmark": "bench_serve_overhead",
    **best,
    "pairs": pairs,
    "rounds": len(rounds),
    "round_overheads": [r["overhead_fraction"] for r in rounds],
    "estimator": "min_abs_over_rounds_of_median_quiet_pair_ratio",
    "metric": "process_cpu_time",
}
result = {}
if os.path.exists(out_path):
    with open(out_path) as f:
        result = json.load(f)
result["serve_overhead"] = row
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
budget = 0.03
verdict = "within" if row["overhead_fraction"] <= budget else "OVER"
print(f'  analyze (process CPU, {row["quiet_pairs"]} quiet of {pairs} '
      f'interleaved pairs, best of {len(rounds)} round(s)): bare '
      f'{row["bare_ns_per_op"] / 1e6:.2f} ms, with 1 Hz scraper '
      f'{row["scraped_ns_per_op"] / 1e6:.2f} ms, overhead '
      f'{row["overhead_fraction"] * 100:+.1f}% ({verdict} the '
      f'{budget * 100:.0f}% budget)')
print(f"updated {out_path}")
EOF
  exit 0
fi

if [[ "$dashboard_overhead" -eq 1 ]]; then
  [[ -n "$out" ]] || out="$repo_root/BENCH_stemming.json"
  dbench="$build_dir/bench/bench_dashboard_overhead"
  if [[ ! -x "$dbench" ]]; then
    echo "building bench_dashboard_overhead in $build_dir ..." >&2
    cmake --build "$build_dir" --target bench_dashboard_overhead -j"$(nproc)"
  fi
  # Same quiet-pair/min-over-rounds process-CPU estimator as
  # --serve-overhead; the polled side swaps the Prometheus scraper for
  # a dashboard tab's request rotation, and both sides sample the
  # time-series store every iteration (sampling happens at every serve
  # tick regardless of watchers, so it belongs to the baseline).
  python3 - "$dbench" "$out" <<'EOF'
import json
import statistics
import os
import subprocess
import sys

dbench, out_path = sys.argv[1], sys.argv[2]

pairs = 10

def measure():
    proc = subprocess.run([dbench, "--paired", str(pairs)],
                          check=True, capture_output=True, text=True)
    report = json.loads(proc.stdout)
    floor = min(p["bare_ns"] + p["scraped_ns"] for p in report["pairs"])
    quiet = [p for p in report["pairs"]
             if p["bare_ns"] + p["scraped_ns"] <= floor * 1.15]
    if len(quiet) < 3:  # loaded box: median over 2 pairs is a coin flip
        quiet = sorted(report["pairs"],
                       key=lambda p: p["bare_ns"] + p["scraped_ns"])[:3]
    ratio = statistics.median(p["scraped_ns"] / p["bare_ns"] for p in quiet)
    iters = report["iters_per_side"]
    return {
        "bare_ns_per_op": statistics.median(
            p["bare_ns"] for p in quiet) / iters,
        "polled_ns_per_op": statistics.median(
            p["scraped_ns"] for p in quiet) / iters,
        "overhead_fraction": ratio - 1.0,
        "quiet_pairs": len(quiet),
    }

rounds = []
for _ in range(3):
    rounds.append(measure())
    if abs(rounds[-1]["overhead_fraction"]) <= 0.015:
        break
best = min(rounds, key=lambda r: abs(r["overhead_fraction"]))
row = {
    "benchmark": "bench_dashboard_overhead",
    **best,
    "pairs": pairs,
    "rounds": len(rounds),
    "round_overheads": [r["overhead_fraction"] for r in rounds],
    "estimator": "min_abs_over_rounds_of_median_quiet_pair_ratio",
    "metric": "process_cpu_time",
}
result = {}
if os.path.exists(out_path):
    with open(out_path) as f:
        result = json.load(f)
result["dashboard_overhead"] = row
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
budget = 0.03
verdict = "within" if row["overhead_fraction"] <= budget else "OVER"
print(f'  analyze (process CPU, {row["quiet_pairs"]} quiet of {pairs} '
      f'interleaved pairs, best of {len(rounds)} round(s)): bare '
      f'{row["bare_ns_per_op"] / 1e6:.2f} ms, with 1 Hz dashboard '
      f'poller {row["polled_ns_per_op"] / 1e6:.2f} ms, overhead '
      f'{row["overhead_fraction"] * 100:+.1f}% ({verdict} the '
      f'{budget * 100:.0f}% budget)')
print(f"updated {out_path}")
EOF
  exit 0
fi

if [[ "$checkpoint_overhead" -eq 1 ]]; then
  [[ -n "$out" ]] || out="$repo_root/BENCH_stemming.json"
  cbench="$build_dir/bench/bench_checkpoint_overhead"
  if [[ ! -x "$cbench" ]]; then
    echo "building bench_checkpoint_overhead in $build_dir ..." >&2
    cmake --build "$build_dir" --target bench_checkpoint_overhead -j"$(nproc)"
  fi
  # The bench binary's --paired mode runs (bare, checkpointed) replay
  # pairs back to back in ONE process, alternating which side goes
  # first, and times each replay with a process-CPU-clock delta.
  # Interference on a shared box (CPU steal, interrupts, cache
  # pollution) only ever *inflates* process CPU time and shifts on a
  # multi-second scale, so the pairs whose combined time sits at the
  # observed floor ran in the quietest regime and are the least
  # contaminated; within such a pair the ratio cancels whatever load
  # the two adjacent halves shared.  The row reports the median ratio
  # over the quiet pairs (within 15% of the floor), minimized over up
  # to three time-separated rounds to dodge stretches of box-wide I/O
  # pressure that inflate every fsync.  Comparing
  # separate bare and checkpointed processes instead was observed to
  # land the two sides in load regimes differing by 60%, burying a
  # few-percent effect under any estimator.
  python3 - "$cbench" "$out" <<'EOF'
import json
import statistics
import os
import subprocess
import sys

cbench, out_path = sys.argv[1], sys.argv[2]

pairs = 24

def measure():
    proc = subprocess.run([cbench, "--paired", str(pairs)],
                          check=True, capture_output=True, text=True)
    report = json.loads(proc.stdout)
    floor = min(p["bare_ns"] + p["checkpointed_ns"]
                for p in report["pairs"])
    quiet = [p for p in report["pairs"]
             if p["bare_ns"] + p["checkpointed_ns"] <= floor * 1.15]
    ratio = statistics.median(
        p["checkpointed_ns"] / p["bare_ns"] for p in quiet)
    return {
        "bare_ns_per_op": statistics.median(p["bare_ns"] for p in quiet),
        "checkpointed_ns_per_op": statistics.median(
            p["checkpointed_ns"] for p in quiet),
        "overhead_fraction": ratio - 1.0,
        "quiet_pairs": len(quiet),
    }

# Box-wide I/O pressure can make every fsync's kernel-side work
# expensive for minutes at a stretch, inflating a whole round; like
# CPU interference it only ever *adds* cost, so the minimum over
# time-separated rounds estimates the uncontaminated overhead.  Stop
# early once a round is evidently clean.
# True overhead is >= 0 and load inflates the ratio, so smaller is
# closer to the truth — but a *negative* reading is residual noise of
# that magnitude around zero, not a better measurement, so rounds
# compete on |overhead| and the loop stops once a round lands within
# the noise floor of zero.
rounds = []
for _ in range(3):
    rounds.append(measure())
    if abs(rounds[-1]["overhead_fraction"]) <= 0.015:
        break
best = min(rounds, key=lambda r: abs(r["overhead_fraction"]))
row = {
    "benchmark": "bench_checkpoint_overhead",
    **best,
    "pairs": pairs,
    "rounds": len(rounds),
    "round_overheads": [r["overhead_fraction"] for r in rounds],
    "estimator": "min_abs_over_rounds_of_median_quiet_pair_ratio",
    "metric": "process_cpu_time",
}
result = {}
if os.path.exists(out_path):
    with open(out_path) as f:
        result = json.load(f)
result["checkpoint_overhead"] = row
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
budget = 0.03
verdict = "within" if row["overhead_fraction"] <= budget else "OVER"
print(f'  live replay (process CPU, {row["quiet_pairs"]} quiet of {pairs} '
      f'interleaved pairs, best of {len(rounds)} round(s)): bare '
      f'{row["bare_ns_per_op"] / 1e6:.2f} ms, checkpointing every 16 ticks '
      f'{row["checkpointed_ns_per_op"] / 1e6:.2f} ms, overhead '
      f'{row["overhead_fraction"] * 100:+.1f}% ({verdict} the '
      f'{budget * 100:.0f}% budget)')
print(f"updated {out_path}")
EOF
  exit 0
fi

if [[ "$provenance_overhead" -eq 1 ]]; then
  if [[ "$quick" -eq 1 ]]; then
    [[ -n "$out" ]] || out="$build_dir/BENCH_stemming_quick.json"
    pairs=6
    max_rounds=1
  else
    [[ -n "$out" ]] || out="$repo_root/BENCH_stemming.json"
    pairs=24
    max_rounds=3
  fi
  pbench="$build_dir/bench/bench_provenance_overhead"
  if [[ ! -x "$pbench" ]]; then
    echo "building bench_provenance_overhead in $build_dir ..." >&2
    cmake --build "$build_dir" --target bench_provenance_overhead -j"$(nproc)"
  fi
  # Same estimator as --checkpoint-overhead: (bare, provenance) replay
  # pairs back to back in ONE process, alternating which side goes
  # first, each replay timed with a process-CPU-clock delta; the row
  # reports the median ratio over the quiet pairs (combined time within
  # 15% of the observed floor), minimized over up to three
  # time-separated rounds.  See that block's comment for why paired
  # single-process ratios are the only estimator that survives a
  # shared box.
  python3 - "$pbench" "$out" "$pairs" "$max_rounds" <<'EOF'
import json
import statistics
import os
import subprocess
import sys

pbench, out_path = sys.argv[1], sys.argv[2]
pairs, max_rounds = int(sys.argv[3]), int(sys.argv[4])

def measure():
    proc = subprocess.run([pbench, "--paired", str(pairs)],
                          check=True, capture_output=True, text=True)
    report = json.loads(proc.stdout)
    floor = min(p["bare_ns"] + p["provenance_ns"]
                for p in report["pairs"])
    quiet = [p for p in report["pairs"]
             if p["bare_ns"] + p["provenance_ns"] <= floor * 1.15]
    ratio = statistics.median(
        p["provenance_ns"] / p["bare_ns"] for p in quiet)
    return {
        "bare_ns_per_op": statistics.median(p["bare_ns"] for p in quiet),
        "provenance_ns_per_op": statistics.median(
            p["provenance_ns"] for p in quiet),
        "overhead_fraction": ratio - 1.0,
        "quiet_pairs": len(quiet),
    }

# True overhead is >= 0 and load only inflates the ratio, so smaller is
# closer to the truth — but a *negative* reading is residual noise of
# that magnitude around zero, not a better measurement, so rounds
# compete on |overhead| and the loop stops once a round lands within
# the noise floor of zero.
rounds = []
for _ in range(max_rounds):
    rounds.append(measure())
    if abs(rounds[-1]["overhead_fraction"]) <= 0.015:
        break
best = min(rounds, key=lambda r: abs(r["overhead_fraction"]))
row = {
    "benchmark": "bench_provenance_overhead",
    **best,
    "pairs": pairs,
    "rounds": len(rounds),
    "round_overheads": [r["overhead_fraction"] for r in rounds],
    "estimator": "min_abs_over_rounds_of_median_quiet_pair_ratio",
    "metric": "process_cpu_time",
}
result = {}
if os.path.exists(out_path):
    with open(out_path) as f:
        result = json.load(f)
result["provenance_overhead"] = row
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
budget = 0.03
verdict = "within" if row["overhead_fraction"] <= budget else "OVER"
print(f'  live replay (process CPU, {row["quiet_pairs"]} quiet of {pairs} '
      f'interleaved pairs, best of {len(rounds)} round(s)): bare '
      f'{row["bare_ns_per_op"] / 1e6:.2f} ms, with evidence capture '
      f'{row["provenance_ns_per_op"] / 1e6:.2f} ms, overhead '
      f'{row["overhead_fraction"] * 100:+.1f}% ({verdict} the '
      f'{budget * 100:.0f}% budget)')
print(f"updated {out_path}")
EOF
  exit 0
fi

bench="$build_dir/bench/bench_stemming_opt"
if [[ ! -x "$bench" ]]; then
  echo "building bench_stemming_opt in $build_dir ..." >&2
  cmake --build "$build_dir" --target bench_stemming_opt
fi

if [[ "$overhead" -eq 1 ]]; then
  [[ -n "$out" ]] || out="$repo_root/BENCH_stemming.json"
  notrace_dir="${build_dir}-notrace"
  if [[ ! -x "$notrace_dir/bench/bench_stemming_opt" ]]; then
    echo "configuring NO_TRACING build in $notrace_dir ..." >&2
    # Mirror the traced build's type so the comparison isolates the
    # instrumentation, not the optimization level.
    build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[A-Z]*=//p' \
      "$build_dir/CMakeCache.txt" 2>/dev/null || true)"
    cmake -B "$notrace_dir" -S "$repo_root" \
      -DCMAKE_BUILD_TYPE="$build_type" \
      -DRANOMALY_NO_TRACING=ON > /dev/null
    cmake --build "$notrace_dir" --target bench_stemming_opt -j"$(nproc)" \
      > /dev/null
  fi
  raw_dir="$(mktemp -d)"
  trap 'rm -rf "$raw_dir"' EXIT
  filter='BM_StemmingArena/12000$'
  # In-process repetition medians are stable on a shared box where
  # process-to-process drift dwarfs the effect being measured; two
  # alternating passes per binary, best median wins.
  for rep in 1 2; do
    if (( rep % 2 )); then order="traced notrace"; else order="notrace traced"; fi
    for pass in $order; do
      if [[ "$pass" == traced ]]; then b="$bench";
      else b="$notrace_dir/bench/bench_stemming_opt"; fi
      "$b" --benchmark_filter="$filter" --benchmark_min_time=0.1 \
        --benchmark_repetitions=8 --benchmark_report_aggregates_only=true \
        --benchmark_format=json > "$raw_dir/$pass.$rep.json"
    done
  done
  python3 - "$raw_dir" "$out" <<'EOF'
import glob
import json
import os
import sys

raw_dir, out_path = sys.argv[1], sys.argv[2]

def median_ns_per_op(pattern):
    best = None
    name = None
    for path in glob.glob(pattern):
        with open(path) as f:
            report = json.load(f)
        for b in report["benchmarks"]:
            if b.get("aggregate_name") != "median":
                continue
            scale = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}[
                b.get("time_unit", "ns")]
            ns = b["real_time"] * scale
            if best is None or ns < best:
                best = ns
                name = b["run_name"]
    if best is None:
        sys.exit(f"no median aggregate matched {pattern}")
    return name, best

name, traced = median_ns_per_op(os.path.join(raw_dir, "traced.*.json"))
_, notrace = median_ns_per_op(os.path.join(raw_dir, "notrace.*.json"))
row = {
    "benchmark": name,
    "traced_ns_per_op": traced,
    "no_tracing_ns_per_op": notrace,
    "overhead_fraction": traced / notrace - 1.0,
}
result = {}
if os.path.exists(out_path):
    with open(out_path) as f:
        result = json.load(f)
result["instrumentation_overhead"] = row
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f'  {name}: traced {row["traced_ns_per_op"] / 1e6:.2f} ms, '
      f'no-tracing {row["no_tracing_ns_per_op"] / 1e6:.2f} ms, '
      f'overhead {row["overhead_fraction"] * 100:+.1f}%')
print(f"updated {out_path}")
EOF
  exit 0
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

if [[ "$quick" -eq 1 ]]; then
  [[ -n "$out" ]] || out="$build_dir/BENCH_stemming_quick.json"
  # 12k rows only, plus the thread curve's 1-thread point; short runs.
  "$bench" \
    --benchmark_filter='/(12000|1)$' \
    --benchmark_min_time=0.05 \
    --benchmark_format=json > "$raw"
else
  [[ -n "$out" ]] || out="$repo_root/BENCH_stemming.json"
  "$bench" --benchmark_format=json > "$raw"
fi

python3 - "$raw" "$out" "$quick" <<'EOF'
import json
import os
import sys

raw_path, out_path, quick = sys.argv[1], sys.argv[2], sys.argv[3] == "1"
with open(raw_path) as f:
    report = json.load(f)

runs = {}
for b in report["benchmarks"]:
    if b.get("run_type", "iteration") != "iteration":
        continue
    scale = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}[
        b.get("time_unit", "ns")]
    runs[b["name"]] = {"ns_per_op": b["real_time"] * scale,
                       "cpu_ns_per_op": b["cpu_time"] * scale,
                       "counters": {
                           k: v for k, v in b.items()
                           if k in ("events", "components", "threads")}}

def ns(name):
    return runs[name]["ns_per_op"] if name in runs else None

def cpu_ns(name):
    return runs[name]["cpu_ns_per_op"] if name in runs else None

rows = []
for size in (12_000, 57_000, 330_000):
    legacy = ns(f"BM_StemmingLegacy/{size}")
    arena = ns(f"BM_StemmingArena/{size}")
    if legacy is None and arena is None:
        continue
    row = {"events": size, "legacy_ns_per_op": legacy,
           "arena_ns_per_op": arena}
    if legacy is not None and arena is not None and arena > 0:
        row["speedup"] = legacy / arena
    rows.append(row)

# Wall time per point plus the *main thread's* CPU time: on a host
# with fewer CPUs than threads, every thread count time-slices one
# core and wall time cannot improve — but the main-thread CPU curve
# still shows how much of the work moved to the workers, which is
# what a multi-CPU host would turn into wall-time speedup.
parallel = []
for threads in (1, 2, 4, 8):
    name = f"BM_StemmingArenaThreads/{threads}"
    t = ns(name)
    if t is not None:
        parallel.append({"threads": threads, "ns_per_op": t,
                         "main_thread_cpu_ns_per_op": cpu_ns(name)})

# Merge into the existing file: the overhead and throughput rows are
# produced by separate invocations and must survive a re-run of the
# main benchmark.
result = {}
if os.path.exists(out_path):
    with open(out_path) as f:
        result = json.load(f)
result.update({
    "benchmark": "bench_stemming_opt",
    "workload": "BerkeleyScale(23000) SpikeEvents, Table I stemming rows",
    "mode": "quick" if quick else "full",
    "host_cpus": os.cpu_count(),
    "rows": rows,
    "parallel_330k": parallel,
})
big = next((r for r in rows if r["events"] == 330_000 and "speedup" in r),
           None)
if big is not None:
    result["serial_speedup_330k"] = big["speedup"]

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

for r in rows:
    s = f'  {r["events"]:>7} events: '
    if r["legacy_ns_per_op"] is not None:
        s += f'legacy {r["legacy_ns_per_op"] / 1e6:.1f} ms  '
    if r["arena_ns_per_op"] is not None:
        s += f'arena {r["arena_ns_per_op"] / 1e6:.1f} ms  '
    if "speedup" in r:
        s += f'speedup {r["speedup"]:.1f}x'
    print(s)
for p in parallel:
    print(f'  330k @ {p["threads"]} thread(s): {p["ns_per_op"] / 1e6:.1f} ms '
          f'wall, {p["main_thread_cpu_ns_per_op"] / 1e6:.1f} ms '
          f'main-thread CPU')

if not rows and not parallel:
    sys.exit("no benchmark rows parsed")
if not quick and big is not None and big["speedup"] < 5.0:
    sys.exit(f'serial speedup at 330k is {big["speedup"]:.2f}x, below the '
             "5x target")
print(f"wrote {out_path}")
EOF
