#include "tools/cli.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>

#include "collector/binary_io.h"
#include "collector/event_stream.h"
#include "core/live.h"
#include "core/moas.h"
#include "core/pipeline.h"
#include "obs/health.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "tamp/animation.h"
#include "tamp/layout.h"
#include "tamp/prune.h"
#include "tamp/render.h"
#include "util/strings.h"
#include "workload/internet_scale.h"

namespace ranomaly::tools {
namespace {

constexpr int kOk = 0;
constexpr int kFailure = 1;
constexpr int kUsage = 2;

const char* kUsageText = R"(usage: ranomaly <command> [options]

commands:
  analyze <stream> [--spike-bucket-sec N] [--spike-factor F] [--include-unknown]
  picture <stream> --out FILE.svg [--dot FILE.dot] [--threshold PCT]
                   [--hierarchical] [--title TEXT]
  animate <stream> --out-dir DIR [--every N] [--smil FILE.svg]
  convert <in> <out> --to text|binary
  moas    <stream>
  stats   <stream> [--analyze]
  metrics <stream> [--prom]
  serve   <stream> [--port N] [--tick-sec S] [--window-sec S] [--slo-sec S]
                   [--pace-ms M] [--watchdog-sec S] [--exit-after-replay]
                   [--checkpoint FILE] [--checkpoint-every-ticks N]
                   [--queue-capacity N] [--service-rate N] [--dashboard]
  series  <stream> [--name NAME] [--res SEC] [--since SEC]
                   [--tick-sec S] [--window-sec S]
  explain <stream> --incident N [--tick-sec S] [--window-sec S] [--slo-sec S]
                   [--queue-capacity N] [--service-rate N]
  peers   <stream>
  internet --out FILE [--format text|binary] [--relationships FILE]
           [--save-relationships FILE] [--ases N] [--prefixes N] [--peers N]
           [--seed N] [--flap-fraction F] [--threads N]
  trace   --out FILE.json [--jsonl FILE.jsonl] [--] <command> [options]

stream files use the text (one event per line) or binary (RNE1) format;
the format is detected automatically.

stats --analyze also runs the analysis pipeline and reports where the
time goes (events encoded, symbols interned, bigram table sizes, wall
seconds per stage); thread count follows RANOMALY_THREADS.

metrics runs the full pipeline over the stream and dumps every metric
on the process registry — aligned text by default, Prometheus
exposition format with --prom (docs/OBSERVABILITY.md lists the names).

serve replays the stream through the analysis pipeline in --tick-sec
batches over a sliding --window-sec window and exposes the operations
endpoints on 127.0.0.1 (--port 0 picks an ephemeral port, printed on
startup): /metrics /varz /healthz /readyz /incidents?since=N, plus the
dashboard history endpoints /api/series?name=&res=&since=,
/api/incidents/timeline?since=N, and the per-incident evidence drill-down
/api/incidents/<id>/evidence.  --dashboard additionally serves the embedded
single-file HTML operations dashboard at /dashboard (sparklines,
degradation ladder, SLO percentiles, peer health, incident timeline —
no external resources, docs/OBSERVABILITY.md).  --pace-ms
sleeps that many wall milliseconds per simulated tick; after the replay
the server keeps answering until SIGINT/SIGTERM unless
--exit-after-replay is given (docs/OBSERVABILITY.md, Operations).
--checkpoint FILE makes the daemon crash-safe: it restores the full
analysis state from FILE at startup (if present and valid) and persists
it there every --checkpoint-every-ticks ticks plus once on exit, so a
killed daemon resumes with a bit-identical incident stream.
--queue-capacity N bounds the ingest queue and arms the overload
degradation ladder; --service-rate caps events analyzed per tick.
SIGTERM drains gracefully: /readyz flips false, the in-flight tick
finishes, the final checkpoint is cut, and the process exits 0
(docs/FORMATS.md, docs/OBSERVABILITY.md).

internet builds the internet-scale workload: it loads --relationships
(CAIDA serial-2 "asn1|asn2|rel" text) or synthesizes a topology of
--ases ASes, propagates routes Gao-Rexford-style to --peers monitored
vantages, and writes the resulting table-dump + churn event stream to
--out (binary RNE1 by default).  --save-relationships writes the
(possibly generated) serial-2 edges back out; the stream is
bit-identical at any RANOMALY_THREADS (docs/FORMATS.md, Serial-2).

series replays the stream offline through the same tick replay `serve`
runs and prints the retained dashboard history as JSON — the store
inventory by default, or one series with --name (--res picks a
downsample tier in seconds, --since drops points at or before that
simulated second).  The output is byte-identical to what a `serve` of
the same stream answers on /api/series, at any RANOMALY_THREADS.

explain replays the stream offline through the same tick replay `serve`
runs and prints the provenance evidence for incident --incident N — the
sampled contributing raw events, the stem classes involved, the
correlation path, and the per-stage detection timings — as JSON.  Pass
the same --tick-sec/--window-sec/--slo-sec/--queue-capacity/
--service-rate a `serve` of the stream used and the output is
byte-identical to that server's /api/incidents/N/evidence, at any
RANOMALY_THREADS (docs/OBSERVABILITY.md, Explaining incidents).

peers prints the per-peer feed scoreboard (state, uptime, reconnects,
gaps) computed from the stream's GAP/SYNC markers — the same health
facts `serve` exposes on /readyz.

trace runs any other command with span tracing enabled and writes
Chrome trace_event JSON (load at https://ui.perfetto.dev) to --out,
plus an optional JSONL stream to --jsonl.  The files are finalized via
atomic rename, and SIGINT/SIGTERM flushes them before exiting, so an
interrupted run still yields a loadable trace.
)";

// Simple flag parser: positionals + --key value + --bool-flag.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  std::vector<std::string> flags;

  bool HasFlag(const std::string& name) const {
    return std::find(flags.begin(), flags.end(), name) != flags.end();
  }
  std::optional<std::string> Option(const std::string& name) const {
    const auto it = options.find(name);
    if (it == options.end()) return std::nullopt;
    return it->second;
  }
};

// Flags that take no value.
const char* kBooleanFlags[] = {"--include-unknown", "--hierarchical",
                               "--analyze", "--prom", "--exit-after-replay",
                               "--dashboard"};

std::optional<Args> ParseArgs(const std::vector<std::string>& argv,
                              std::ostream& err) {
  Args args;
  for (std::size_t i = 0; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a.rfind("--", 0) != 0) {
      args.positional.push_back(a);
      continue;
    }
    bool boolean = false;
    for (const char* f : kBooleanFlags) {
      if (a == f) boolean = true;
    }
    if (boolean) {
      args.flags.push_back(a);
    } else {
      if (i + 1 >= argv.size()) {
        err << "missing value for " << a << "\n";
        return std::nullopt;
      }
      args.options[a] = argv[++i];
    }
  }
  return args;
}

std::optional<collector::EventStream> LoadStream(const std::string& path,
                                                 std::ostream& err) {
  obs::TraceSpan span("cli.load_stream");
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err << "cannot open " << path << "\n";
    return std::nullopt;
  }
  // Binary streams start with the RNE1 magic; otherwise assume text.
  char magic[4] = {};
  in.read(magic, 4);
  in.clear();
  in.seekg(0);
  std::optional<collector::EventStream> stream;
  if (std::string_view(magic, 4) == "RNE1") {
    collector::LoadDiagnostics diag;
    stream = collector::LoadBinary(in, diag);
    if (!stream) {
      err << "parse error in " << path << ": " << diag.ToString() << "\n";
    }
  } else {
    stream = collector::EventStream::LoadText(in);
    if (!stream) err << "parse error in " << path << "\n";
  }
  return stream;
}

double ParseDouble(const std::string& s, double fallback) {
  try {
    return std::stod(s);
  } catch (...) {
    return fallback;
  }
}

int CmdAnalyze(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "analyze: expected one stream file\n";
    return kUsage;
  }
  const auto stream = LoadStream(args.positional[1], err);
  if (!stream) return kFailure;

  core::PipelineOptions options;
  if (const auto v = args.Option("--spike-bucket-sec")) {
    options.spike_bucket =
        static_cast<util::SimDuration>(ParseDouble(*v, 60.0)) * util::kSecond;
  }
  if (const auto v = args.Option("--spike-factor")) {
    options.spike_factor = ParseDouble(*v, 5.0);
  }
  options.include_unknown = args.HasFlag("--include-unknown");

  out << "stream: " << stream->size() << " events over "
      << util::FormatDuration(stream->TimeRange()) << "\n";
  const auto spikes = collector::DetectSpikes(*stream, options.spike_bucket,
                                              options.spike_factor);
  out << "spikes: " << spikes.size() << "\n";

  const core::Pipeline pipeline(options);
  const auto incidents = pipeline.Analyze(*stream);
  out << "incidents: " << incidents.size() << "\n";
  for (const auto& incident : incidents) {
    out << "  " << incident.summary << "\n";
    out << "    s' = [" << incident.top_sequence << "]\n";
  }
  return kOk;
}

int CmdPicture(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "picture: expected one stream file\n";
    return kUsage;
  }
  const auto svg_path = args.Option("--out");
  if (!svg_path) {
    err << "picture: --out FILE.svg is required\n";
    return kUsage;
  }
  const auto stream = LoadStream(args.positional[1], err);
  if (!stream) return kFailure;

  tamp::Animator animator({}, tamp::AnimationOptions{});
  animator.Play(stream->events());

  tamp::PruneOptions prune;
  prune.threshold = ParseDouble(args.Option("--threshold").value_or("5"), 5.0) /
                    100.0;
  if (args.HasFlag("--hierarchical")) {
    prune.depth_thresholds = {0.0, 0.0, 0.0, 0.0, prune.threshold};
  }
  const auto pruned = tamp::Prune(animator.graph(), prune);
  const auto layout = tamp::ComputeLayout(pruned);
  tamp::RenderOptions render;
  render.title = args.Option("--title").value_or(args.positional[1]);

  std::ofstream svg(*svg_path);
  if (!svg) {
    err << "cannot write " << *svg_path << "\n";
    return kFailure;
  }
  svg << tamp::RenderSvg(pruned, layout, render);
  out << "wrote " << *svg_path << " (" << pruned.nodes.size() << " nodes, "
      << pruned.edges.size() << " edges, " << pruned.total_prefixes
      << " prefixes)\n";

  if (const auto dot_path = args.Option("--dot")) {
    std::ofstream dot(*dot_path);
    if (!dot) {
      err << "cannot write " << *dot_path << "\n";
      return kFailure;
    }
    dot << tamp::RenderDot(pruned, render);
    out << "wrote " << *dot_path << "\n";
  }
  return kOk;
}

int CmdAnimate(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "animate: expected one stream file\n";
    return kUsage;
  }
  const auto dir = args.Option("--out-dir");
  if (!dir) {
    err << "animate: --out-dir DIR is required\n";
    return kUsage;
  }
  const std::size_t every = static_cast<std::size_t>(
      ParseDouble(args.Option("--every").value_or("25"), 25.0));
  if (every == 0) {
    err << "animate: --every must be >= 1\n";
    return kUsage;
  }
  const auto stream = LoadStream(args.positional[1], err);
  if (!stream) return kFailure;

  std::error_code ec;
  std::filesystem::create_directories(*dir, ec);
  if (ec) {
    err << "cannot create " << *dir << ": " << ec.message() << "\n";
    return kFailure;
  }

  // For the SMIL output we need the final structure up front: replay once
  // to learn it, then track those edges in the real pass.
  std::vector<tamp::EdgeKey> smil_edges;
  tamp::PrunedGraph smil_pruned;
  const auto smil_path = args.Option("--smil");
  if (smil_path) {
    tamp::Animator scout({}, tamp::AnimationOptions{});
    scout.Play(stream->events());
    smil_pruned = tamp::Prune(scout.graph(), {.threshold = 0.05});
    for (const auto& e : smil_pruned.edges) {
      smil_edges.push_back(tamp::EdgeKey{smil_pruned.nodes[e.from].id,
                                         smil_pruned.nodes[e.to].id});
    }
  }

  tamp::Animator animator({}, tamp::AnimationOptions{});
  animator.TrackEdges(smil_edges);
  std::size_t written = 0;
  bool write_failed = false;
  animator.Play(stream->events(), [&](std::size_t frame,
                                      const tamp::Animator::FrameStats& stats) {
    if (frame % every != 0) return;
    const auto pruned = tamp::Prune(animator.graph(), {.threshold = 0.05});
    const auto layout = tamp::ComputeLayout(pruned);
    const std::string path =
        *dir + util::StrPrintf("/frame_%04zu.svg", frame);
    std::ofstream file(path);
    if (!file) {
      write_failed = true;
      return;
    }
    file << tamp::RenderAnimationFrameSvg(
        pruned, layout, animator.DecorationsFor(pruned), stats.clock,
        std::nullopt);
    ++written;
  });
  if (write_failed) {
    err << "failed writing frames under " << *dir << "\n";
    return kFailure;
  }
  out << "wrote " << written << " frames to " << *dir << "\n";

  if (smil_path) {
    std::vector<std::vector<std::size_t>> series;
    for (const auto& key : smil_edges) {
      series.push_back(animator.SeriesFor(key));
    }
    const auto layout = tamp::ComputeLayout(smil_pruned);
    std::ofstream file(*smil_path);
    if (!file) {
      err << "cannot write " << *smil_path << "\n";
      return kFailure;
    }
    file << tamp::RenderAnimatedSvg(smil_pruned, layout, series, 30.0,
                                    {.title = args.positional[1]});
    out << "wrote " << *smil_path << " (SMIL loop)\n";
  }
  return kOk;
}

int CmdConvert(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 3) {
    err << "convert: expected input and output files\n";
    return kUsage;
  }
  const auto to = args.Option("--to");
  if (!to || (*to != "text" && *to != "binary")) {
    err << "convert: --to text|binary is required\n";
    return kUsage;
  }
  const auto stream = LoadStream(args.positional[1], err);
  if (!stream) return kFailure;
  std::ofstream file(args.positional[2], std::ios::binary);
  if (!file) {
    err << "cannot write " << args.positional[2] << "\n";
    return kFailure;
  }
  if (*to == "text") {
    stream->SaveText(file);
  } else if (!collector::SaveBinary(*stream, file)) {
    err << "write error on " << args.positional[2] << "\n";
    return kFailure;
  }
  out << "wrote " << stream->size() << " events to " << args.positional[2]
      << " (" << *to << ")\n";
  return kOk;
}

int CmdInternet(const Args& args, std::ostream& out, std::ostream& err) {
  const auto out_path = args.Option("--out");
  if (!out_path) {
    err << "internet: --out FILE is required\n";
    return kUsage;
  }
  const auto format = args.Option("--format").value_or("binary");
  if (format != "text" && format != "binary") {
    err << "internet: --format text|binary\n";
    return kUsage;
  }

  workload::InternetScaleOptions options;
  if (const auto v = args.Option("--relationships")) options.relationships_path = *v;
  const auto size_opt = [&](const char* flag, std::size_t& field) -> bool {
    const auto v = args.Option(flag);
    if (!v) return true;
    std::uint64_t parsed = 0;
    if (!util::ParseU64(*v, parsed)) {
      err << "internet: " << flag << " wants a non-negative integer, got '"
          << *v << "'\n";
      return false;
    }
    field = static_cast<std::size_t>(parsed);
    return true;
  };
  std::size_t seed = options.seed;
  if (!size_opt("--ases", options.as_count) ||
      !size_opt("--prefixes", options.prefix_count) ||
      !size_opt("--peers", options.monitored_peer_count) ||
      !size_opt("--threads", options.threads) || !size_opt("--seed", seed)) {
    return kUsage;
  }
  options.seed = seed;
  if (const auto v = args.Option("--flap-fraction")) {
    options.flap_fraction = ParseDouble(*v, options.flap_fraction);
  }

  std::string error;
  const auto result = workload::BuildInternetScale(options, &error);
  if (!result) {
    err << "internet: " << error << "\n";
    return kFailure;
  }

  if (const auto rel_out = args.Option("--save-relationships")) {
    if (!options.relationships_path.empty()) {
      err << "internet: --save-relationships only applies to generated "
             "topologies\n";
      return kUsage;
    }
    // Round-trippable: reloading this file with --relationships rebuilds
    // the same graph (the generator is only needed once).
    const auto edges = workload::GenerateTopology(options);
    std::ofstream rel_file(*rel_out);
    if (!rel_file) {
      err << "cannot write " << *rel_out << "\n";
      return kFailure;
    }
    workload::WriteSerial2(rel_file, edges);
  }

  std::ofstream file(*out_path, std::ios::binary);
  if (!file) {
    err << "cannot write " << *out_path << "\n";
    return kFailure;
  }
  if (format == "text") {
    result->stream.SaveText(file);
  } else if (!collector::SaveBinary(result->stream, file)) {
    err << "write error on " << *out_path << "\n";
    return kFailure;
  }
  out << result->Summary() << "\n";
  for (const auto& v : result->vantages) {
    out << "  vantage AS" << v.asn << " via " << v.peer.ToString() << ": "
        << v.routes << " routes, customer cone " << v.customer_cone << "\n";
  }
  out << "wrote " << result->stream.size() << " events to " << *out_path
      << " (" << format << ")\n";
  return kOk;
}

int CmdMoas(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "moas: expected one stream file\n";
    return kUsage;
  }
  const auto stream = LoadStream(args.positional[1], err);
  if (!stream) return kFailure;
  core::MoasDetector detector;
  for (const auto& e : stream->events()) {
    if (e.type == bgp::EventType::kAnnounce) {
      detector.OnAnnounce(e.time, e.prefix, e.attrs);
    }
  }
  out << "tracked prefixes: " << detector.TrackedPrefixes() << "\n";
  out << "origin conflicts: " << detector.conflicts().size() << "\n";
  for (const auto& conflict : detector.conflicts()) {
    out << "  " << util::FormatTime(conflict.time) << " "
        << conflict.ToString() << "\n";
  }
  return kOk;
}

int CmdStats(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "stats: expected one stream file\n";
    return kUsage;
  }
  const auto stream = LoadStream(args.positional[1], err);
  if (!stream) return kFailure;

  struct PeerStats {
    std::size_t announces = 0;
    std::size_t withdraws = 0;
    std::size_t markers = 0;
  };
  std::map<std::uint32_t, PeerStats> per_peer;
  std::size_t announces = 0;
  std::size_t withdraws = 0;
  std::size_t markers = 0;
  for (const auto& e : stream->events()) {
    auto& p = per_peer[e.peer.value()];
    if (e.type == bgp::EventType::kAnnounce) {
      ++p.announces;
      ++announces;
    } else if (e.type == bgp::EventType::kWithdraw) {
      ++p.withdraws;
      ++withdraws;
    } else {
      ++p.markers;
      ++markers;
    }
  }
  out << "events:    " << stream->size() << "\n";
  out << "announces: " << announces << "\n";
  out << "withdraws: " << withdraws << "\n";
  if (markers > 0) out << "markers:   " << markers << "\n";
  out << "timerange: " << util::FormatDuration(stream->TimeRange()) << "\n";
  out << "peers:     " << per_peer.size() << "\n";
  for (const auto& [peer, stats] : per_peer) {
    out << "  " << bgp::Ipv4Addr(peer).ToString() << "  A=" << stats.announces
        << " W=" << stats.withdraws;
    if (stats.markers > 0) out << " M=" << stats.markers;
    out << "\n";
  }
  // Degraded-feed accounting: windows where the collection layer lost or
  // resynchronized a peer's feed (GAP/SYNC markers).
  const auto gaps = collector::FeedGapWindows(*stream);
  if (!gaps.empty()) {
    out << "feed gaps: " << gaps.size() << "\n";
    for (const auto& gap : gaps) {
      out << "  " << bgp::Ipv4Addr(gap.peer).ToString() << "  "
          << util::FormatTime(gap.begin) << " -> "
          << util::FormatTime(gap.end)
          << (gap.closed ? "" : " (never resynced)") << "\n";
    }
  }
  // Analysis-stage perf breakdown: run the pipeline (its stage metrics
  // accumulate on the process registry) and print the pipeline_*,
  // stemming_*, and pool_* slice of the snapshot.  The pool_utilization
  // gauge and the stemming_*_parallel_fraction gauges are the scaling
  // diagnostics: utilization well below 1.0 means lanes starved,
  // parallel fraction well below 1.0 means the stage is Amdahl-bound.
  if (args.HasFlag("--analyze")) {
    const core::Pipeline pipeline{core::PipelineOptions{}};
    pipeline.Analyze(*stream);
    out << "analysis stages (threads=" << util::ThreadPool::DefaultThreadCount()
        << "):\n";
    std::vector<obs::MetricSnapshot> stages;
    for (auto& m : obs::MetricsRegistry::Global().Snapshot()) {
      if (m.name.starts_with("pipeline_") || m.name.starts_with("stemming_") ||
          m.name.starts_with("pool_")) {
        stages.push_back(std::move(m));
      }
    }
    std::istringstream lines(obs::FormatSnapshot(stages));
    for (std::string line; std::getline(lines, line);) {
      out << "  " << line << "\n";
    }
  }
  return kOk;
}

int CmdMetrics(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "metrics: expected one stream file\n";
    return kUsage;
  }
  const auto stream = LoadStream(args.positional[1], err);
  if (!stream) return kFailure;
  const core::Pipeline pipeline{core::PipelineOptions{}};
  pipeline.Analyze(*stream);
  auto& registry = obs::MetricsRegistry::Global();
  out << (args.HasFlag("--prom") ? registry.ToPrometheus()
                                 : registry.ToText());
  return kOk;
}

// Async-signal-safe stop flag for the long-running commands (serve, and
// trace's flush-on-interrupt).  The handler only sets an atomic; the
// commands poll it.
std::atomic<bool> g_stop_requested{false};

void HandleStopSignal(int) {
  g_stop_requested.store(true, std::memory_order_relaxed);
}

// Installs SIGINT/SIGTERM handlers that set g_stop_requested; restores
// the previous handlers (and clears the flag) on destruction so tests
// can run commands back to back in one process.
class ScopedSignalTrap {
 public:
  ScopedSignalTrap() {
    g_stop_requested.store(false, std::memory_order_relaxed);
    struct sigaction action = {};
    action.sa_handler = HandleStopSignal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGINT, &action, &old_int_);
    sigaction(SIGTERM, &action, &old_term_);
  }
  ~ScopedSignalTrap() {
    sigaction(SIGINT, &old_int_, nullptr);
    sigaction(SIGTERM, &old_term_, nullptr);
    g_stop_requested.store(false, std::memory_order_relaxed);
  }
  ScopedSignalTrap(const ScopedSignalTrap&) = delete;
  ScopedSignalTrap& operator=(const ScopedSignalTrap&) = delete;

  static bool StopRequested() {
    return g_stop_requested.load(std::memory_order_relaxed);
  }

 private:
  struct sigaction old_int_ = {};
  struct sigaction old_term_ = {};
};

// serve <stream> — the long-running operations daemon: tick replay of
// the stream through the pipeline plus the HTTP exposition endpoints.
int CmdServe(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "serve: expected one stream file\n";
    return kUsage;
  }
  const auto stream = LoadStream(args.positional[1], err);
  if (!stream) return kFailure;

  core::LiveOptions options;
  options.tick = util::FromSeconds(
      ParseDouble(args.Option("--tick-sec").value_or("10"), 10.0));
  options.window = util::FromSeconds(
      ParseDouble(args.Option("--window-sec").value_or("300"), 300.0));
  options.slo_target_sec =
      ParseDouble(args.Option("--slo-sec").value_or("30"), 30.0);
  if (options.tick <= 0 || options.window <= 0) {
    err << "serve: --tick-sec and --window-sec must be positive\n";
    return kUsage;
  }
  const double watchdog_sec =
      ParseDouble(args.Option("--watchdog-sec").value_or("5"), 5.0);
  options.heartbeat_deadline_sec = watchdog_sec;
  const int pace_ms = static_cast<int>(
      ParseDouble(args.Option("--pace-ms").value_or("0"), 0.0));
  const int port_arg = static_cast<int>(
      ParseDouble(args.Option("--port").value_or("0"), 0.0));
  if (port_arg < 0 || port_arg > 65535) {
    err << "serve: --port must be in [0, 65535]\n";
    return kUsage;
  }
  // Durability: --checkpoint enables restore-on-start plus periodic and
  // final (graceful-drain) snapshots.
  options.checkpoint_path = args.Option("--checkpoint").value_or("");
  options.checkpoint_every_ticks = static_cast<std::uint64_t>(ParseDouble(
      args.Option("--checkpoint-every-ticks").value_or("16"), 16.0));
  // Backpressure: --queue-capacity turns on the bounded ingest queue and
  // the degradation ladder; --service-rate caps per-tick analysis intake.
  options.shed.queue_capacity = static_cast<std::size_t>(
      ParseDouble(args.Option("--queue-capacity").value_or("0"), 0.0));
  options.shed.service_rate = static_cast<std::size_t>(
      ParseDouble(args.Option("--service-rate").value_or("0"), 0.0));

  obs::HealthRegistry health;
  core::IncidentLog incidents;
  if (watchdog_sec > 0) health.StartWatchdog(watchdog_sec / 2);

  core::OpsInfo info;
  info.stream_path = args.positional[1];
  info.threads = util::ThreadPool::DefaultThreadCount();
  info.slo_target_sec = options.slo_target_sec;
  info.tick_sec = util::ToSeconds(options.tick);
  info.window_sec = util::ToSeconds(options.window);
  info.checkpoint_path = options.checkpoint_path;
  info.queue_capacity = options.shed.queue_capacity;
  info.t0 = stream->empty() ? 0 : stream->events().front().time;
  info.tick = options.tick;

  obs::TimeSeriesStore series_store;
  obs::ProvenanceLedger provenance_ledger;
  const bool dashboard = args.HasFlag("--dashboard");
  obs::HttpServer server(core::MakeOpsHandler(
      &obs::MetricsRegistry::Global(), &health, &incidents, info,
      &series_store, dashboard, &provenance_ledger));
  std::string error;
  if (!server.Start(static_cast<std::uint16_t>(port_arg), &error)) {
    err << "serve: " << error << "\n";
    return kFailure;
  }
  // Tests and scrapers parse this line for the (possibly ephemeral) port.
  out << "serving on 127.0.0.1:" << server.port() << std::endl;
  if (dashboard) {
    out << "dashboard at http://127.0.0.1:" << server.port() << "/dashboard"
        << std::endl;
  }

  ScopedSignalTrap trap;
  std::atomic<bool> keep_going{true};
  const obs::HealthRegistry::ComponentId serve_id = health.Register("serve");
  const auto start_drain = [&health, serve_id, &keep_going]() {
    // Graceful drain: readiness goes false first, so load balancers stop
    // routing while the in-flight tick finishes and the final checkpoint
    // is cut; liveness (/healthz) stays green throughout.
    keep_going.store(false, std::memory_order_relaxed);
    health.SetState(serve_id, obs::HealthState::kDown,
                    "draining: stop requested");
  };
  core::LiveRunner runner(options, &health, &incidents, &series_store,
                          &provenance_ledger);
  const core::LiveStats stats =
      runner.Run(*stream, &keep_going, [&](const core::LiveStats&) {
        if (pace_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(pace_ms));
        }
        if (ScopedSignalTrap::StopRequested() &&
            keep_going.load(std::memory_order_relaxed)) {
          start_drain();
        }
      });
  if (stats.restored) {
    out << "restored from checkpoint: resumed at tick " << stats.ticks
        << std::endl;
  }
  out << "replay done: " << stats.events_ingested << " events, "
      << stats.ticks << " ticks, " << stats.incidents << " incidents ("
      << stats.incidents_within_slo << " within "
      << options.slo_target_sec << "s SLO)" << std::endl;
  if (stats.events_shed > 0 || stats.shed_transitions > 0) {
    out << "overload ladder: " << stats.events_shed << " events shed, "
        << stats.shed_transitions << " transitions, final level L"
        << stats.shed_level << std::endl;
  }

  if (!args.HasFlag("--exit-after-replay")) {
    while (!ScopedSignalTrap::StopRequested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  if (ScopedSignalTrap::StopRequested()) {
    if (keep_going.load(std::memory_order_relaxed)) start_drain();
    out << "drained cleanly"
        << (options.checkpoint_path.empty() ? "" : ": final checkpoint durable")
        << std::endl;
  }
  health.StopWatchdog();
  server.Stop();
  out << "served " << server.requests_total() << " requests ("
      << server.rejected_total() << " rejected)\n";
  return kOk;
}

// series <stream> — offline replay into the dashboard time-series
// store; prints the same JSON `serve` answers on /api/series, so the
// retained history is scriptable without standing up a daemon.
int CmdSeries(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "series: expected one stream file\n";
    return kUsage;
  }
  const auto stream = LoadStream(args.positional[1], err);
  if (!stream) return kFailure;
  core::LiveOptions options;
  options.tick = util::FromSeconds(
      ParseDouble(args.Option("--tick-sec").value_or("10"), 10.0));
  options.window = util::FromSeconds(
      ParseDouble(args.Option("--window-sec").value_or("300"), 300.0));
  if (options.tick <= 0 || options.window <= 0) {
    err << "series: --tick-sec and --window-sec must be positive\n";
    return kUsage;
  }
  obs::TimeSeriesStore store;
  core::LiveRunner runner(options, nullptr, nullptr, &store);
  runner.Run(*stream);
  const auto name = args.Option("--name");
  if (!name.has_value()) {
    out << store.ListJson() << "\n";
    return kOk;
  }
  std::int64_t res_us = store.options().tiers.front().resolution_us;
  if (const auto res = args.Option("--res")) {
    res_us = util::FromSeconds(ParseDouble(*res, 0.0));
    if (!store.HasTier(res_us)) {
      err << "series: no downsample tier at --res " << *res
          << " seconds (run without --name to list the tiers)\n";
      return kUsage;
    }
  }
  std::int64_t since_us = -1;
  if (const auto since = args.Option("--since")) {
    since_us = util::FromSeconds(ParseDouble(*since, 0.0));
  }
  const auto body = store.SeriesJson(*name, res_us, since_us);
  if (!body.has_value()) {
    err << "series: unknown series " << *name
        << " (run without --name to list the names)\n";
    return kFailure;
  }
  out << *body << "\n";
  return kOk;
}

// explain <stream> --incident N — offline replay into a provenance
// ledger; prints the same evidence JSON `serve` answers on
// /api/incidents/N/evidence (byte-identical given the same live
// options, at any RANOMALY_THREADS).
int CmdExplain(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "explain: expected one stream file\n";
    return kUsage;
  }
  const auto incident_text = args.Option("--incident");
  if (!incident_text.has_value()) {
    err << "explain: --incident N is required\n";
    return kUsage;
  }
  std::uint64_t incident_seq = 0;
  if (!util::ParseU64(*incident_text, incident_seq)) {
    err << "explain: bad --incident " << *incident_text
        << ": want a non-negative integer\n";
    return kUsage;
  }
  const auto stream = LoadStream(args.positional[1], err);
  if (!stream) return kFailure;

  core::LiveOptions options;
  options.tick = util::FromSeconds(
      ParseDouble(args.Option("--tick-sec").value_or("10"), 10.0));
  options.window = util::FromSeconds(
      ParseDouble(args.Option("--window-sec").value_or("300"), 300.0));
  options.slo_target_sec =
      ParseDouble(args.Option("--slo-sec").value_or("30"), 30.0);
  if (options.tick <= 0 || options.window <= 0) {
    err << "explain: --tick-sec and --window-sec must be positive\n";
    return kUsage;
  }
  options.shed.queue_capacity = static_cast<std::size_t>(
      ParseDouble(args.Option("--queue-capacity").value_or("0"), 0.0));
  options.shed.service_rate = static_cast<std::size_t>(
      ParseDouble(args.Option("--service-rate").value_or("0"), 0.0));

  core::IncidentLog incidents;
  obs::ProvenanceLedger ledger;
  core::LiveRunner runner(options, nullptr, &incidents, nullptr, &ledger);
  runner.Run(*stream);
  const auto body = ledger.EvidenceJson(incident_seq);
  if (!body.has_value()) {
    err << "explain: unknown incident " << incident_seq
        << " (or its evidence was evicted); the replay logged "
        << incidents.size() << " incidents\n";
    return kFailure;
  }
  out << *body << "\n";
  return kOk;
}

// peers <stream> — per-peer feed health scoreboard.
int CmdPeers(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "peers: expected one stream file\n";
    return kUsage;
  }
  const auto stream = LoadStream(args.positional[1], err);
  if (!stream) return kFailure;
  core::PeerBoard board;
  for (const auto& event : stream->events()) board.Observe(event);
  if (!stream->empty()) board.Finish(stream->back().time);
  const auto rows = board.Rows();
  out << FormatPeerTable(rows);
  std::size_t degraded = 0;
  for (const auto& row : rows) degraded += row.degraded ? 1 : 0;
  out << rows.size() << " peers, " << degraded << " degraded\n";
  return kOk;
}

// trace --out FILE.json [--jsonl FILE.jsonl] [--] <command...> — runs the
// wrapped command with the tracer on and exports the spans.  Parsed by
// hand (before ParseArgs) so the wrapped command's own flags pass
// through untouched.
int CmdTrace(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  std::string json_path;
  std::string jsonl_path;
  std::size_t i = 1;
  for (; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size()) {
      json_path = args[++i];
    } else if (args[i] == "--jsonl" && i + 1 < args.size()) {
      jsonl_path = args[++i];
    } else if (args[i] == "--") {
      ++i;
      break;
    } else {
      break;
    }
  }
  if (json_path.empty() || i >= args.size()) {
    err << "trace: --out FILE.json and a command to run are required\n";
    return kUsage;
  }
  const std::vector<std::string> wrapped(args.begin() +
                                             static_cast<std::ptrdiff_t>(i),
                                         args.end());
  auto& tracer = obs::Tracer::Global();
  tracer.Reset();
  tracer.SetEnabled(true);

  // Writes the exports to `<path>.tmp` and atomically renames them into
  // place, so a reader (or a signal arriving mid-write) never sees a
  // truncated file.  Export is thread-safe against concurrent recording.
  const auto export_trace = [&](std::ostream* status_out) -> bool {
    const std::string json_tmp = json_path + ".tmp";
    {
      std::ofstream json(json_tmp, std::ios::trunc);
      if (!json) return false;
      json << tracer.ExportChromeJson();
      if (!json.good()) return false;
    }
    std::error_code ec;
    std::filesystem::rename(json_tmp, json_path, ec);
    if (ec) return false;
    if (status_out != nullptr) {
      *status_out << "wrote trace to " << json_path;
      if (tracer.DroppedCount() > 0) {
        *status_out << " (" << tracer.DroppedCount() << " events dropped)";
      }
      *status_out << "\n";
    }
    if (!jsonl_path.empty()) {
      const std::string jsonl_tmp = jsonl_path + ".tmp";
      {
        std::ofstream jsonl(jsonl_tmp, std::ios::trunc);
        if (!jsonl) return false;
        jsonl << tracer.ExportJsonl();
        if (!jsonl.good()) return false;
      }
      std::filesystem::rename(jsonl_tmp, jsonl_path, ec);
      if (ec) return false;
      if (status_out != nullptr) {
        *status_out << "wrote trace events to " << jsonl_path << "\n";
      }
    }
    return true;
  };

  // SIGINT/SIGTERM must still yield a loadable trace: a watcher thread
  // polls the trap and, on a stop request, flushes what the tracer has
  // and exits with the conventional interrupted status.  _Exit skips
  // static destructors — the wrapped command may be mid-flight on other
  // threads, and the files are already renamed into place.
  ScopedSignalTrap trap;
  std::atomic<bool> wrapped_done{false};
  std::thread watcher([&] {
    while (!wrapped_done.load(std::memory_order_acquire)) {
      if (ScopedSignalTrap::StopRequested()) {
        export_trace(nullptr);
        std::_Exit(130);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  const int status = RunCli(wrapped, out, err);
  wrapped_done.store(true, std::memory_order_release);
  watcher.join();
  tracer.SetEnabled(false);

  if (!export_trace(&out)) {
    err << "cannot write " << json_path << "\n";
    return kFailure;
  }
  return status;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  if (args.empty()) {
    err << kUsageText;
    return kUsage;
  }
  // trace wraps another command; its arguments must not be re-parsed here.
  if (args[0] == "trace") return CmdTrace(args, out, err);
  const auto parsed = ParseArgs(args, err);
  if (!parsed) return kUsage;
  const std::string& command = args[0];
  if (command == "analyze") return CmdAnalyze(*parsed, out, err);
  if (command == "picture") return CmdPicture(*parsed, out, err);
  if (command == "animate") return CmdAnimate(*parsed, out, err);
  if (command == "convert") return CmdConvert(*parsed, out, err);
  if (command == "moas") return CmdMoas(*parsed, out, err);
  if (command == "stats") return CmdStats(*parsed, out, err);
  if (command == "metrics") return CmdMetrics(*parsed, out, err);
  if (command == "serve") return CmdServe(*parsed, out, err);
  if (command == "series") return CmdSeries(*parsed, out, err);
  if (command == "explain") return CmdExplain(*parsed, out, err);
  if (command == "peers") return CmdPeers(*parsed, out, err);
  if (command == "internet") return CmdInternet(*parsed, out, err);
  err << "unknown command: " << command << "\n" << kUsageText;
  return kUsage;
}

}  // namespace ranomaly::tools
