// The `ranomaly` command-line tool, as a library so tests can drive it
// in-process.
//
// Subcommands (over event-stream files in the text or binary format —
// detected automatically on load):
//
//   ranomaly analyze <stream>  [--spike-bucket-sec N] [--spike-factor F]
//                              [--include-unknown]
//       run the full pipeline and print classified incidents
//
//   ranomaly picture <stream>  --out FILE.svg [--dot FILE.dot]
//                              [--threshold PCT] [--hierarchical]
//                              [--title TEXT]
//       replay the stream into a TAMP graph and render it
//
//   ranomaly animate <stream>  --out-dir DIR [--every N]
//       replay into the 750-frame animation, writing every Nth frame as
//       DIR/frame_XXXX.svg
//
//   ranomaly convert <in> <out> --to text|binary
//       transcode between the serialization formats
//
//   ranomaly moas <stream>
//       scan announcements for MOAS / subMOAS origin conflicts
//
//   ranomaly stats <stream>
//       per-peer and whole-stream summary counts
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ranomaly::tools {

// Runs one invocation; argv excludes the program name.  Returns the
// process exit code (0 success, 1 runtime failure, 2 usage error).
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace ranomaly::tools
