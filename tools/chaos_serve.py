#!/usr/bin/env python3
"""Crash-restart chaos harness for `ranomaly serve`.

Proves the analysis-tier checkpoint/restore contract end to end against
the real binary: a daemon that is SIGKILLed mid-tick (repeatedly), that
suffers injected checkpoint write faults (short writes / disk full via
RANOMALY_CHAOS_CHECKPOINT), and that ingests a bursty feed with a
stalled peer, still converges to an incident stream identical to an
uninterrupted run — at every RANOMALY_THREADS setting tested.

Usage: chaos_serve.py /path/to/ranomaly
"""

import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

FAILURES = []

SERVE_FLAGS = ["--tick-sec", "10", "--window-sec", "120", "--slo-sec", "60",
               "--watchdog-sec", "0", "--queue-capacity", "150",
               "--service-rate", "40"]


def check(cond, message):
    if cond:
        print(f"ok: {message}")
    else:
        FAILURES.append(message)
        print(f"FAIL: {message}")


def fetch(port, path, timeout=5):
    url = f"http://127.0.0.1:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


def make_stream(path):
    """A bursty capture: background churn from one peer, a stalled peer
    (GAP with a late SYNC), and a mass withdraw/re-announce avalanche
    from another — enough arrivals per tick to drive the overload
    ladder through its stages at the capacity SERVE_FLAGS configures."""
    lines = []

    def announce(t_us, peer, nexthop, aspath, prefix):
        lines.append((t_us, f"A {peer} NEXT_HOP: {nexthop} "
                            f"ASPATH: {aspath} PREFIX: {prefix}"))

    def withdraw(t_us, peer, nexthop, aspath, prefix):
        lines.append((t_us, f"W {peer} NEXT_HOP: {nexthop} "
                            f"ASPATH: {aspath} PREFIX: {prefix}"))

    # Background churn: a steady announce every 2 simulated seconds.
    for i in range(300):
        announce(i * 2_000_000, "10.0.0.2", "10.1.0.2",
                 f"100 {300 + i % 9}", f"198.51.{i % 100}.0/24")
    # Stalled peer: goes dark at 100s, resyncs at 400s.
    lines.append((100_000_000, "GAP 10.0.0.3"))
    lines.append((400_000_000, "SYNC 10.0.0.3"))
    # Avalanche: peer 10.0.0.1 withdraws 120 prefixes in under 5s at
    # 120s and re-announces them all at 126s — a session-reset signature
    # whose ~240 arrivals land inside two 10s ticks, several times the
    # service rate, driving the ladder up (and past the queue bound).
    for i in range(120):
        prefix = f"10.{i // 250}.{i % 250}.0/24"
        withdraw(120_000_000 + i * 40_000, "10.0.0.1", "10.1.0.1",
                 "100 200", prefix)
        announce(126_000_000 + i * 40_000, "10.0.0.1", "10.1.0.1",
                 "100 200", prefix)
    # A second, slower session reset at 300s, after the ladder has
    # recovered: spread over a minute it stays under the service rate,
    # so its incident is detected (the compressed burst above may shed
    # its own signal — that is the point of the ladder).
    for i in range(120):
        prefix = f"20.{i // 250}.{i % 250}.0/24"
        withdraw(300_000_000 + i * 250_000, "10.0.0.4", "10.1.0.4",
                 "100 400", prefix)
        announce(335_000_000 + i * 250_000, "10.0.0.4", "10.1.0.4",
                 "100 400", prefix)
    lines.sort(key=lambda pair: pair[0])
    with open(path, "w") as f:
        for t_us, rest in lines:
            f.write(f"{t_us} {rest}\n")


def spawn_serve(binary, capture, checkpoint, pace_ms, threads, env_extra=()):
    env = dict(os.environ)
    env["RANOMALY_THREADS"] = str(threads)
    env.update(dict(env_extra))
    process = subprocess.Popen(
        [binary, "serve", capture, "--pace-ms", str(pace_ms),
         "--checkpoint", checkpoint, "--checkpoint-every-ticks", "4",
         *SERVE_FLAGS],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    line = process.stdout.readline()
    prefix = "serving on 127.0.0.1:"
    if not line.startswith(prefix):
        process.kill()
        raise RuntimeError(f"unexpected serve banner: {line!r}")
    return process, int(line[len(prefix):])


def run_to_completion(binary, capture, checkpoint, threads, env_extra=()):
    """Runs serve until the replay finishes, grabs the incident stream
    and every incident's provenance evidence over HTTP, drains with
    SIGTERM, and returns (incidents, evidence, exit_code, stdout_tail)."""
    process, port = spawn_serve(binary, capture, checkpoint, pace_ms=2,
                                threads=threads, env_extra=env_extra)
    tail = []
    evidence = None
    try:
        for line in process.stdout:
            tail.append(line)
            if line.startswith("replay done:"):
                break
        status, body = fetch(port, "/incidents?since=0")
        incidents = json.loads(body)["incidents"] if status == 200 else None
        if incidents:
            evidence = []
            for inc in incidents:
                status, body = fetch(
                    port, f"/api/incidents/{inc['seq']}/evidence")
                evidence.append(body if status == 200 else f"<{status}>")
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
        # Drain the rest through the same buffered file object the line
        # iterator used: communicate() reads the raw fd and would drop
        # any lines the iterator had already read ahead into its buffer.
        tail.append(process.stdout.read() or "")
    return incidents, evidence, process.returncode, "".join(tail)


def kill_mid_replay(binary, capture, checkpoint, threads, delay, env_extra=()):
    """Spawns a paced serve and SIGKILLs it mid-tick after `delay` s."""
    process, _port = spawn_serve(binary, capture, checkpoint, pace_ms=15,
                                 threads=threads, env_extra=env_extra)
    time.sleep(delay)
    process.kill()
    process.communicate()


def strip_degradation(incidents):
    """Incident identity modulo the marked feed-gap / load-shed flags."""
    out = []
    for inc in incidents:
        inc = dict(inc)
        inc.pop("feed_degraded", None)
        inc.pop("load_shed", None)
        inc["summary"] = (inc.get("summary", "")
                          .replace(" [feed-degraded]", "")
                          .replace(" [load-shed]", ""))
        out.append(inc)
    return out


def main():
    if len(sys.argv) != 2:
        print("usage: chaos_serve.py /path/to/ranomaly")
        return 2
    binary = sys.argv[1]
    rng = random.Random(20260807)

    with tempfile.TemporaryDirectory(prefix="ranomaly_chaos_") as tmp:
        capture = os.path.join(tmp, "capture.txt")
        make_stream(capture)

        # Uninterrupted ground truth (single-threaded, no chaos).
        baseline_ck = os.path.join(tmp, "baseline.ckpt")
        baseline, baseline_ev, code, out = run_to_completion(
            binary, capture, baseline_ck, threads=1)
        check(baseline is not None, "baseline run served /incidents")
        check(code == 0, f"baseline run drained with exit 0 (got {code})")
        check(baseline and len(baseline) > 0,
              f"baseline produced incidents ({len(baseline or [])})")
        check(baseline_ev is not None
              and all(body.startswith("{") for body in baseline_ev),
              "baseline served provenance evidence for every incident")
        check("drained cleanly" in out, "baseline printed the drain banner")
        check("overload ladder:" in out,
              "the burst engaged the degradation ladder")

        for threads in (1, 2, 4):
            ck = os.path.join(tmp, f"chaos_t{threads}.ckpt")
            # Life 1-3: SIGKILL mid-tick at random points, one life with
            # checkpoint write faults injected (short write / disk full).
            for life in range(3):
                env_extra = ()
                if life == 1:
                    env_extra = (("RANOMALY_CHAOS_CHECKPOINT", "0.5:77"),)
                kill_mid_replay(binary, capture, ck, threads,
                                delay=0.1 + rng.random() * 0.5,
                                env_extra=env_extra)
            # Final life: clean run to completion from whatever survived.
            incidents, evidence, code, out = run_to_completion(
                binary, capture, ck, threads=threads)
            check(incidents is not None,
                  f"threads={threads}: final life served /incidents")
            check(code == 0,
                  f"threads={threads}: final life exited 0 (got {code})")
            if incidents is None:
                continue
            check(incidents == baseline,
                  f"threads={threads}: incident stream bit-identical to the "
                  f"uninterrupted baseline after 3 kills + write faults")
            check(evidence == baseline_ev,
                  f"threads={threads}: per-incident evidence bytes identical "
                  f"to the uninterrupted baseline")
            if incidents != baseline:
                check(strip_degradation(incidents) ==
                      strip_degradation(baseline),
                      f"threads={threads}: identical modulo degradation "
                      f"marks")
                print("baseline:", json.dumps(baseline, indent=1)[:2000])
                print("chaos:   ", json.dumps(incidents, indent=1)[:2000])

    if FAILURES:
        print(f"\n{len(FAILURES)} failure(s):")
        for message in FAILURES:
            print(f"  - {message}")
        return 1
    print("\nall chaos checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
