#include "obs/http_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "obs/metrics.h"

namespace ranomaly::obs {
namespace {

// Hex digit value, -1 if not hex.
int HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string PercentDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size() && HexVal(s[i + 1]) >= 0 &&
        HexVal(s[i + 2]) >= 0) {
      out += static_cast<char>(HexVal(s[i + 1]) * 16 + HexVal(s[i + 2]));
      i += 2;
    } else if (s[i] == '+') {
      out += ' ';
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool ValidMethodToken(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (c < 'A' || c > 'Z') return false;
  }
  return true;
}

// Writes the whole buffer; returns false on error (peer gone).
bool SendAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 414: return "URI Too Long";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::optional<std::string> HttpRequest::QueryParam(
    std::string_view name) const {
  std::string_view rest = query;
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    const std::string_view key =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (PercentDecode(key) == name) {
      return eq == std::string_view::npos
                 ? std::string{}
                 : PercentDecode(pair.substr(eq + 1));
    }
  }
  return std::nullopt;
}

std::optional<std::string> HttpRequest::Header(std::string_view name) const {
  const std::string lowered = ToLower(name);
  for (const auto& [key, value] : headers) {
    if (key == lowered) return value;
  }
  return std::nullopt;
}

HttpServer::HttpServer(Handler handler) : handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

bool HttpServer::Start(std::uint16_t port, std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + std::strerror(errno);
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "server already running";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return fail("bind");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) < 0) return fail("listen");
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Start() may have failed after a previous run; nothing to join.
    if (thread_.joinable()) thread_.join();
    return;
  }
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::AcceptLoop() {
  // Poll with a short timeout so Stop() is observed promptly; accept only
  // when the listen socket is readable, so the loop never blocks forever.
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/250);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket is gone; nothing left to serve
    }
    if (ready == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void HttpServer::SendResponse(int fd, const HttpResponse& response,
                              bool head_only) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusReason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  // HEAD advertises the exact length of the body it suppresses (RFC
  // 9110: the same Content-Length GET would send).
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  // Every endpoint reports live state; a cached 200 is a wrong answer.
  out += "Cache-Control: no-store\r\n";
  if (response.status == 405) out += "Allow: GET, HEAD\r\n";
  out += "Connection: close\r\n\r\n";
  if (!head_only) out += response.body;
  SendAll(fd, out);
}

void HttpServer::HandleConnection(int fd) {
  timeval tv{};
  tv.tv_sec = limits_.recv_timeout_ms / 1000;
  tv.tv_usec = (limits_.recv_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  auto reject = [&](int status, std::string_view why) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    RANOMALY_METRIC_COUNT("http_requests_rejected_total", 1);
    SendResponse(fd, HttpResponse{status, "text/plain; charset=utf-8",
                                  std::string(why) + "\n"},
                 /*head_only=*/false);
  };

  // Read until the blank line ending the header block, or a limit trips.
  // Request bodies are not supported (no endpoint takes one).
  std::string buf;
  std::size_t header_end = std::string::npos;
  char chunk[2048];
  while (header_end == std::string::npos) {
    if (buf.size() > limits_.max_header_bytes) {
      reject(431, "header block too large");
      return;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return;  // timeout, reset, or EOF before a full request
    buf.append(chunk, static_cast<std::size_t>(n));
    header_end = buf.find("\r\n\r\n");
    // Tolerate bare-LF clients for the terminator search.
    if (header_end == std::string::npos) header_end = buf.find("\n\n");
  }

  const std::string_view head = std::string_view(buf).substr(0, header_end);
  const std::size_t line_end = head.find('\n');
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.remove_suffix(1);
  }
  if (request_line.size() > limits_.max_request_line) {
    reject(414, "request line too long");
    return;
  }

  // METHOD SP target SP HTTP/x.y — exactly three space-separated parts.
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    reject(400, "malformed request line");
    return;
  }
  HttpRequest request;
  request.method = std::string(request_line.substr(0, sp1));
  request.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  request.version = std::string(request_line.substr(sp2 + 1));
  if (!ValidMethodToken(request.method) || request.target.empty() ||
      request.target[0] != '/') {
    reject(400, "malformed request line");
    return;
  }
  if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
    reject(505, "unsupported HTTP version");
    return;
  }
  if (request.method != "GET" && request.method != "HEAD") {
    reject(405, "method not allowed");
    return;
  }

  // Header lines after the request line.
  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 1;
  while (pos < head.size()) {
    std::size_t eol = head.find('\n', pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      reject(400, "malformed header line");
      return;
    }
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    request.headers.emplace_back(ToLower(line.substr(0, colon)),
                                 std::string(value));
    if (request.headers.size() > limits_.max_headers) {
      reject(431, "too many headers");
      return;
    }
  }

  const std::size_t qmark = request.target.find('?');
  request.path = PercentDecode(qmark == std::string::npos
                                   ? std::string_view(request.target)
                                   : std::string_view(request.target)
                                         .substr(0, qmark));
  request.query =
      qmark == std::string::npos ? "" : request.target.substr(qmark + 1);

  requests_.fetch_add(1, std::memory_order_relaxed);
  RANOMALY_METRIC_COUNT("http_requests_total", 1);
  HttpResponse response;
  try {
    response = handler_(request);
  } catch (const std::exception& e) {
    response = HttpResponse{500, "text/plain; charset=utf-8",
                            std::string("handler error: ") + e.what() + "\n"};
  } catch (...) {
    response = HttpResponse{500, "text/plain; charset=utf-8",
                            "handler error\n"};
  }
  SendResponse(fd, response, request.method == "HEAD");
}

std::optional<std::string> HttpGet(std::uint16_t port, std::string_view path,
                                   int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return std::nullopt;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return std::nullopt;
  }
  const std::string request = "GET " + std::string(path) +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  if (!SendAll(fd, request)) {
    ::close(fd);
    return std::nullopt;
  }
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (response.empty()) return std::nullopt;
  return response;
}

}  // namespace ranomaly::obs
