#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

namespace ranomaly::obs {
namespace {

// Floor division for bucket starts; sim times are non-negative in
// practice, but a negative timestamp must still land in the bucket
// containing it, not the one above.
std::int64_t BucketStart(std::int64_t t, std::int64_t resolution) {
  std::int64_t q = t / resolution;
  if (t % resolution != 0 && t < 0) --q;
  return q * resolution;
}

std::string EscapeName(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string SecondsJson(std::int64_t us) {
  return JsonDouble(static_cast<double>(us) / 1e6);
}

}  // namespace

const char* ToString(SeriesKind kind) {
  return kind == SeriesKind::kCounter ? "counter" : "gauge";
}

double HistogramQuantile(const HistogramSnapshot& histogram, double q) {
  if (histogram.total_count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(histogram.total_count);
  std::uint64_t cumulative = 0;
  double lower = 0.0;
  for (std::size_t b = 0; b < histogram.bounds.size(); ++b) {
    const std::uint64_t in_bucket = histogram.counts[b];
    if (static_cast<double>(cumulative + in_bucket) >= target &&
        in_bucket > 0) {
      const double upper = histogram.bounds[b];
      const double within =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, within));
    }
    cumulative += in_bucket;
    lower = histogram.bounds[b];
  }
  // The rank falls in the +Inf bucket: clamp to the largest finite bound.
  return histogram.bounds.empty() ? 0.0 : histogram.bounds.back();
}

TimeSeriesStore::TimeSeriesStore(TimeSeriesOptions options)
    : options_(std::move(options)) {}

TimeSeriesStore::Series* TimeSeriesStore::FindOrCreateLocked(
    std::string_view name, SeriesKind kind) {
  if (const auto it = index_.find(std::string(name)); it != index_.end()) {
    return &series_[it->second];
  }
  if (series_.size() >= options_.max_series) {
    ++dropped_series_;
    return nullptr;
  }
  Series s;
  s.name = std::string(name);
  s.kind = kind;
  s.tiers.resize(options_.tiers.size());
  index_.emplace(s.name, series_.size());
  series_.push_back(std::move(s));
  return &series_.back();
}

void TimeSeriesStore::RecordLocked(Series& series, std::int64_t t,
                                   double value) {
  for (std::size_t i = 0; i < options_.tiers.size(); ++i) {
    const TierSpec& tier = options_.tiers[i];
    std::vector<SeriesPoint>& ring = series.tiers[i];
    const std::int64_t bucket = BucketStart(t, tier.resolution_us);
    if (ring.empty() || bucket > ring.back().t) {
      ring.push_back(SeriesPoint{bucket, value, value, value});
      if (ring.size() > tier.capacity) ring.erase(ring.begin());
    } else {
      // Same bucket (or a late sample): fold into the newest point.
      SeriesPoint& p = ring.back();
      p.value = value;
      p.min = std::min(p.min, value);
      p.max = std::max(p.max, value);
    }
  }
}

void TimeSeriesStore::Record(std::string_view name, SeriesKind kind,
                             std::int64_t t, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Series* s = FindOrCreateLocked(name, kind)) RecordLocked(*s, t, value);
  last_sample_ = std::max(last_sample_, t);
}

void TimeSeriesStore::Sample(const MetricsRegistry& registry, std::int64_t t) {
  const std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  for (const MetricSnapshot& m : snapshot) {
    switch (m.kind) {
      case MetricKind::kCounter:
        if (Series* s = FindOrCreateLocked(m.name, SeriesKind::kCounter)) {
          RecordLocked(*s, t, static_cast<double>(m.counter));
        }
        break;
      case MetricKind::kGauge:
        if (Series* s = FindOrCreateLocked(m.name, SeriesKind::kGauge)) {
          RecordLocked(*s, t, m.gauge);
        }
        break;
      case MetricKind::kHistogram: {
        const auto derived = [&](const char* suffix, SeriesKind kind,
                                 double value) {
          if (Series* s = FindOrCreateLocked(m.name + suffix, kind)) {
            RecordLocked(*s, t, value);
          }
        };
        derived(":count", SeriesKind::kCounter,
                static_cast<double>(m.histogram.total_count));
        derived(":sum", SeriesKind::kGauge, m.histogram.sum);
        derived(":p50", SeriesKind::kGauge,
                HistogramQuantile(m.histogram, 0.50));
        derived(":p90", SeriesKind::kGauge,
                HistogramQuantile(m.histogram, 0.90));
        derived(":p99", SeriesKind::kGauge,
                HistogramQuantile(m.histogram, 0.99));
        break;
      }
    }
  }
  last_sample_ = std::max(last_sample_, t);
}

std::size_t TimeSeriesStore::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

std::uint64_t TimeSeriesStore::dropped_series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_series_;
}

std::int64_t TimeSeriesStore::last_sample() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_sample_;
}

bool TimeSeriesStore::HasTier(std::int64_t resolution_us) const {
  for (const TierSpec& tier : options_.tiers) {
    if (tier.resolution_us == resolution_us) return true;
  }
  return false;
}

std::string TimeSeriesStore::ListJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"tiers\":[";
  for (std::size_t i = 0; i < options_.tiers.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"resolution_sec\":" +
           SecondsJson(options_.tiers[i].resolution_us) +
           ",\"capacity\":" + std::to_string(options_.tiers[i].capacity) + "}";
  }
  out += "],\"last_sample_sec\":";
  out += last_sample_ < 0 ? std::string("null") : SecondsJson(last_sample_);
  out += ",\"dropped_series\":" + std::to_string(dropped_series_);
  out += ",\"series\":[";
  std::vector<const Series*> sorted;
  sorted.reserve(series_.size());
  for (const Series& s : series_) sorted.push_back(&s);
  std::sort(sorted.begin(), sorted.end(),
            [](const Series* a, const Series* b) { return a->name < b->name; });
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"name\":\"" + EscapeName(sorted[i]->name) + "\",\"kind\":\"" +
           ToString(sorted[i]->kind) + "\"}";
  }
  out += "]}";
  return out;
}

std::optional<std::string> TimeSeriesStore::SeriesJson(
    std::string_view name, std::int64_t resolution_us,
    std::int64_t since_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  std::size_t tier = options_.tiers.size();
  for (std::size_t i = 0; i < options_.tiers.size(); ++i) {
    if (options_.tiers[i].resolution_us == resolution_us) tier = i;
  }
  if (tier == options_.tiers.size()) return std::nullopt;
  const Series& s = series_[it->second];
  const std::vector<SeriesPoint>& ring = s.tiers[tier];

  std::string out = "{\"name\":\"" + EscapeName(s.name) + "\",\"kind\":\"" +
                    ToString(s.kind) + "\",\"resolution_sec\":" +
                    SecondsJson(resolution_us) + ",\"points\":[";
  bool first = true;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const SeriesPoint& p = ring[i];
    if (p.t <= since_us) continue;
    if (!first) out += ',';
    first = false;
    out += "[" + SecondsJson(p.t) + "," + JsonDouble(p.value);
    if (s.kind == SeriesKind::kCounter) {
      // Rate is derived against the previous bucket *in the ring* (not
      // the since-filtered view), so pagination never changes a value.
      if (i == 0) {
        out += ",null";
      } else {
        const SeriesPoint& prev = ring[i - 1];
        const double dt = static_cast<double>(p.t - prev.t) / 1e6;
        // A counter that went backwards was reset; the new cumulative
        // value is the best lower bound on what accrued since.
        const double dv =
            p.value >= prev.value ? p.value - prev.value : p.value;
        out += "," + JsonDouble(dv / dt);
      }
    } else {
      out += "," + JsonDouble(p.min) + "," + JsonDouble(p.max);
    }
    out += "]";
  }
  out += "]}";
  return out;
}

TimeSeriesStore::Persisted TimeSeriesStore::Export() const {
  std::lock_guard<std::mutex> lock(mu_);
  Persisted p;
  p.tiers = options_.tiers;
  p.last_sample = last_sample_;
  p.dropped_series = dropped_series_;
  p.series.reserve(series_.size());
  for (const Series& s : series_) {
    p.series.push_back(PersistedSeries{
        s.name, static_cast<std::uint8_t>(s.kind), s.tiers});
  }
  return p;
}

std::string TimeSeriesStore::Validate(const Persisted& p) {
  if (p.tiers.empty()) {
    if (!p.series.empty()) return "series without tiers";
    return "";
  }
  if (p.tiers.size() > 16) return "implausible tier count";
  for (std::size_t i = 0; i < p.tiers.size(); ++i) {
    if (p.tiers[i].resolution_us <= 0) return "non-positive tier resolution";
    if (p.tiers[i].capacity == 0) return "zero tier capacity";
    if (i > 0 && p.tiers[i].resolution_us <= p.tiers[i - 1].resolution_us) {
      return "tier resolutions not ascending";
    }
  }
  std::set<std::string_view> names;
  for (std::size_t si = 0; si < p.series.size(); ++si) {
    const PersistedSeries& s = p.series[si];
    const std::string where = "series " + std::to_string(si);
    if (s.name.empty()) return where + ": empty name";
    if (!names.insert(s.name).second) return where + ": duplicate name";
    if (s.kind > 1) return where + ": bad kind";
    if (s.tiers.size() != p.tiers.size()) return where + ": tier shape";
    for (std::size_t ti = 0; ti < s.tiers.size(); ++ti) {
      const std::vector<SeriesPoint>& ring = s.tiers[ti];
      const std::string tier_where = where + " tier " + std::to_string(ti);
      if (ring.size() > p.tiers[ti].capacity) {
        return tier_where + ": overfull ring";
      }
      for (std::size_t pi = 0; pi < ring.size(); ++pi) {
        const SeriesPoint& pt = ring[pi];
        if (pt.t % p.tiers[ti].resolution_us != 0) {
          return tier_where + ": t not bucket-aligned";
        }
        if (pi > 0 && pt.t <= ring[pi - 1].t) {
          return tier_where + ": t not strictly increasing";
        }
        if (!std::isfinite(pt.value) || !std::isfinite(pt.min) ||
            !std::isfinite(pt.max)) {
          return tier_where + ": non-finite point";
        }
        if (pt.min > pt.value || pt.value > pt.max) {
          return tier_where + ": min/value/max out of order";
        }
      }
    }
  }
  return "";
}

bool TimeSeriesStore::Restore(Persisted p, std::string* error) {
  const auto fail = [error](std::string why) {
    if (error != nullptr) *error = std::move(why);
    return false;
  };
  if (const std::string why = Validate(p); !why.empty()) return fail(why);
  std::lock_guard<std::mutex> lock(mu_);
  if (!p.tiers.empty() && p.tiers != options_.tiers) {
    return fail("tier shape differs from the configured tiers");
  }
  if (p.series.size() > options_.max_series) {
    return fail("more series than the configured cap");
  }
  series_.clear();
  index_.clear();
  for (PersistedSeries& ps : p.series) {
    Series s;
    s.name = std::move(ps.name);
    s.kind = static_cast<SeriesKind>(ps.kind);
    s.tiers = std::move(ps.tiers);
    if (s.tiers.empty()) s.tiers.resize(options_.tiers.size());
    index_.emplace(s.name, series_.size());
    series_.push_back(std::move(s));
  }
  last_sample_ = p.tiers.empty() ? -1 : p.last_sample;
  dropped_series_ = p.tiers.empty() ? 0 : p.dropped_series;
  return true;
}

}  // namespace ranomaly::obs
