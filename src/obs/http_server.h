// Embedded HTTP/1.1 exposition server for the live operations surface
// (`ranomaly serve`): a blocking accept loop on one dedicated thread,
// standard library + POSIX sockets only, no third-party dependencies.
//
// Scope is deliberately narrow — GET/HEAD, `Connection: close`, loopback
// bind — because the only clients are Prometheus scrapers, curl, and the
// tests.  Robustness is not narrow: malformed request lines, oversized
// headers, slow clients, and handler exceptions all produce clean HTTP
// error responses (or a timed-out close) instead of wedging the accept
// thread.  Stop() is idempotent and joins the thread, so a server can be
// torn down mid-scrape under TSan without reports.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace ranomaly::obs {

struct HttpRequest {
  std::string method;   // "GET", "HEAD"
  std::string target;   // raw request target, e.g. "/incidents?since=3"
  std::string path;     // target up to '?', percent-decoded
  std::string query;    // raw query string after '?', "" if none
  std::string version;  // "HTTP/1.0" or "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;  // name lowercased

  // First value of `name` in the query string (percent-decoded); nullopt
  // if the parameter is absent.
  std::optional<std::string> QueryParam(std::string_view name) const;
  // First header value by (case-insensitive) name.
  std::optional<std::string> Header(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

const char* StatusReason(int status);

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Limits {
    std::size_t max_request_line = 4096;   // bytes, 414 beyond
    std::size_t max_header_bytes = 16384;  // request line + headers, 431 beyond
    std::size_t max_headers = 100;         // header count, 431 beyond
    int recv_timeout_ms = 5000;            // slow client: close the socket
  };

  explicit HttpServer(Handler handler);
  ~HttpServer();  // calls Stop()
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Must be called before Start().
  void set_limits(const Limits& limits) { limits_ = limits; }

  // Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts the
  // accept thread.  Returns false with `*error` filled on failure.
  bool Start(std::uint16_t port, std::string* error = nullptr);

  // Stops accepting, joins the accept thread, closes the socket.
  // Idempotent; safe to call while a request is in flight.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const { return port_; }

  // Served = handler ran (any status); rejected = protocol-level 4xx/5xx
  // produced by the server itself (parse errors, limits, bad method).
  std::uint64_t requests_total() const {
    return requests_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected_total() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  // Sends a complete response (headers + body unless HEAD) on `fd`.
  void SendResponse(int fd, const HttpResponse& response, bool head_only);

  Handler handler_;
  Limits limits_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

// Minimal blocking HTTP GET against 127.0.0.1:`port` for tests and the
// bench scraper: sends the request, reads until the peer closes, returns
// the raw response (status line + headers + body), or nullopt on
// connect/IO failure.
std::optional<std::string> HttpGet(std::uint16_t port, std::string_view path,
                                   int timeout_ms = 2000);

}  // namespace ranomaly::obs
