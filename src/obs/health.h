// Component health model for the live operations surface.
//
// Each long-lived piece of the system (a peer's feed session, the replay
// pipeline, the HTTP server itself) registers a named component and
// reports OK / DEGRADED / DOWN with a human-readable reason.  Components
// that are supposed to make steady progress additionally Heartbeat(); a
// component whose heartbeat stalls past its deadline is reported
// DEGRADED — both lazily (every Snapshot()/Aggregated() applies the
// check, so readiness is correct even with no watchdog running) and
// eagerly by an optional watchdog thread that persists the mark so the
// stall shows up in state dumps and metrics.
//
// `/readyz` is Aggregated(): worst-of across components, with the
// offending components named in the reason.  Liveness (`/healthz`) is
// *not* derived from this registry — a process that can answer HTTP is
// alive; readiness is the statement that its feeds and pipeline are
// healthy.
//
// Standard-library-only, mutex-guarded, safe to read from the HTTP
// thread while the replay thread writes.  Heartbeat ages use the wall
// (steady) clock: health is metering, never algorithm input (DESIGN.md
// determinism rule).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace ranomaly::obs {

enum class HealthState : std::uint8_t { kOk = 0, kDegraded = 1, kDown = 2 };

const char* ToString(HealthState state);

class HealthRegistry {
 public:
  using ComponentId = std::size_t;

  HealthRegistry() = default;
  ~HealthRegistry();  // stops the watchdog
  HealthRegistry(const HealthRegistry&) = delete;
  HealthRegistry& operator=(const HealthRegistry&) = delete;

  // Register-or-find by name.  A fresh component starts kOk with an
  // empty reason and a heartbeat stamped "now".
  ComponentId Register(std::string_view name);

  void SetState(ComponentId id, HealthState state, std::string reason);
  // Stamps the component's heartbeat; if the component was marked
  // DEGRADED *by the stall detector* (not by SetState), it recovers to OK.
  void Heartbeat(ComponentId id);
  // A heartbeat older than `seconds` reports the component DEGRADED.
  // 0 disables stall detection for the component (the default).
  void SetHeartbeatDeadline(ComponentId id, double seconds);

  struct ComponentStatus {
    std::string name;
    HealthState state = HealthState::kOk;
    std::string reason;
    double heartbeat_age_sec = 0.0;  // 0 when stall detection is off
  };

  // All components sorted by name, with the stall check applied.
  std::vector<ComponentStatus> Snapshot() const;

  struct Aggregate {
    HealthState state = HealthState::kOk;
    std::string reason;  // "" when OK; else "name: reason; name: reason"
  };

  // Worst-of over Snapshot(); the reason names every non-OK component.
  Aggregate Aggregated() const;

  // Starts a background thread that applies the stall check every
  // `interval_sec` and *persists* DEGRADED marks (so a stall is visible
  // in stored state, not just computed views).  Idempotent.
  void StartWatchdog(double interval_sec);
  void StopWatchdog();

 private:
  struct Component {
    std::string name;
    HealthState state = HealthState::kOk;
    std::string reason;
    std::int64_t last_heartbeat_ns = 0;
    double deadline_sec = 0.0;
    bool stall_marked = false;  // DEGRADED set by the stall detector
  };

  // Effective state of one component at `now_ns` (applies the stall
  // check without mutating).  Caller holds mu_.
  static ComponentStatus StatusOf(const Component& c, std::int64_t now_ns);
  void WatchdogLoop(double interval_sec);

  mutable std::mutex mu_;
  std::vector<Component> components_;  // id = index; registration order
  std::thread watchdog_;
  bool watchdog_running_ = false;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
};

}  // namespace ranomaly::obs
