#include "obs/health.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/metrics.h"

namespace ranomaly::obs {
namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string StallReason(double age_sec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "heartbeat stalled for %.1fs", age_sec);
  return buf;
}

}  // namespace

const char* ToString(HealthState state) {
  switch (state) {
    case HealthState::kOk: return "OK";
    case HealthState::kDegraded: return "DEGRADED";
    case HealthState::kDown: return "DOWN";
  }
  return "?";
}

HealthRegistry::~HealthRegistry() { StopWatchdog(); }

HealthRegistry::ComponentId HealthRegistry::Register(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i].name == name) return i;
  }
  Component c;
  c.name = std::string(name);
  c.last_heartbeat_ns = NowNs();
  components_.push_back(std::move(c));
  return components_.size() - 1;
}

void HealthRegistry::SetState(ComponentId id, HealthState state,
                              std::string reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= components_.size()) return;
  Component& c = components_[id];
  c.state = state;
  c.reason = std::move(reason);
  c.stall_marked = false;  // explicit state overrides the stall detector
}

void HealthRegistry::Heartbeat(ComponentId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= components_.size()) return;
  Component& c = components_[id];
  c.last_heartbeat_ns = NowNs();
  if (c.stall_marked) {
    // Only the stall detector's mark self-heals; an operator-visible
    // DOWN/DEGRADED set through SetState needs an explicit recovery.
    c.state = HealthState::kOk;
    c.reason.clear();
    c.stall_marked = false;
  }
}

void HealthRegistry::SetHeartbeatDeadline(ComponentId id, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= components_.size()) return;
  components_[id].deadline_sec = seconds;
}

HealthRegistry::ComponentStatus HealthRegistry::StatusOf(
    const Component& c, std::int64_t now_ns) {
  ComponentStatus status;
  status.name = c.name;
  status.state = c.state;
  status.reason = c.reason;
  if (c.deadline_sec > 0.0) {
    status.heartbeat_age_sec =
        static_cast<double>(now_ns - c.last_heartbeat_ns) / 1e9;
    if (status.heartbeat_age_sec > c.deadline_sec &&
        status.state == HealthState::kOk) {
      status.state = HealthState::kDegraded;
      status.reason = StallReason(status.heartbeat_age_sec);
    }
  }
  return status;
}

std::vector<HealthRegistry::ComponentStatus> HealthRegistry::Snapshot() const {
  const std::int64_t now = NowNs();
  std::vector<ComponentStatus> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(components_.size());
    for (const Component& c : components_) out.push_back(StatusOf(c, now));
  }
  std::sort(out.begin(), out.end(),
            [](const ComponentStatus& a, const ComponentStatus& b) {
              return a.name < b.name;
            });
  return out;
}

HealthRegistry::Aggregate HealthRegistry::Aggregated() const {
  Aggregate agg;
  for (const ComponentStatus& c : Snapshot()) {
    if (c.state == HealthState::kOk) continue;
    if (static_cast<int>(c.state) > static_cast<int>(agg.state)) {
      agg.state = c.state;
    }
    if (!agg.reason.empty()) agg.reason += "; ";
    agg.reason += c.name + ": " + c.reason;
  }
  return agg;
}

void HealthRegistry::StartWatchdog(double interval_sec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (watchdog_running_) return;
  watchdog_running_ = true;
  watchdog_stop_ = false;
  watchdog_ = std::thread([this, interval_sec] { WatchdogLoop(interval_sec); });
}

void HealthRegistry::StopWatchdog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!watchdog_running_) return;
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  watchdog_.join();
  std::lock_guard<std::mutex> lock(mu_);
  watchdog_running_ = false;
}

void HealthRegistry::WatchdogLoop(double interval_sec) {
  const auto interval = std::chrono::duration<double>(interval_sec);
  std::unique_lock<std::mutex> lock(mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, interval, [this] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    const std::int64_t now = NowNs();
    for (Component& c : components_) {
      if (c.deadline_sec <= 0.0 || c.state != HealthState::kOk) continue;
      const double age =
          static_cast<double>(now - c.last_heartbeat_ns) / 1e9;
      if (age > c.deadline_sec) {
        c.state = HealthState::kDegraded;
        c.reason = StallReason(age);
        c.stall_marked = true;
        RANOMALY_METRIC_COUNT("health_watchdog_stalls_total", 1);
      }
    }
  }
}

}  // namespace ranomaly::obs
