// Process-wide metrics registry: monotonic counters, gauges, and
// fixed-bucket histograms.
//
// Hot-path writes go to thread-local shards (lock-free relaxed atomics
// for counters, an uncontended per-shard mutex for histograms), so
// instrumenting the analysis fan-out never serializes the thread pool.
// Snapshots merge the shards in a fixed order and report metrics sorted
// by name, so output is deterministic regardless of which thread did
// what.  Counter values and integer histogram bucket counts are sums of
// integers — associative — so they are bit-identical for any
// RANOMALY_THREADS setting (the DESIGN.md determinism contract); gauges
// (last write wins) and *_seconds histograms (wall clock) are metering
// only and excluded from that contract.
//
// This library is standard-library-only (no ranomaly deps): it sits
// below util so even util::ThreadPool can be instrumented.
//
// Building with -DRANOMALY_NO_TRACING=ON compiles the RANOMALY_METRIC_*
// macros (and TraceSpan bodies, trace.h) down to nothing; the registry
// API itself stays available so tools still link.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ranomaly::obs {

// Identifies a registered metric; encodes the kind so the hot path
// never needs a name lookup.  Obtain from Counter()/Gauge()/Histogram()
// and cache (the RANOMALY_METRIC_* macros cache in a function-local
// static).
using MetricId = std::uint32_t;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

// Upper bucket bounds for wall-second histograms: 1us .. ~100s,
// quadrupling.  The implicit final bucket is +Inf.
std::vector<double> TimeBounds();

// `count` bounds starting at `first`, each `factor` times the previous.
std::vector<double> ExponentialBounds(double first, double factor,
                                      std::size_t count);

struct HistogramSnapshot {
  std::vector<double> bounds;           // ascending upper bounds
  std::vector<std::uint64_t> counts;    // bounds.size() + 1; last = +Inf
  std::uint64_t total_count = 0;
  double sum = 0.0;
};

struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;
  double gauge = 0.0;
  HistogramSnapshot histogram;
};

// Aligned "name value" text lines for a snapshot (the `ranomaly
// metrics` default output).  Exposed so callers can filter a snapshot
// before formatting (`stats --analyze`).
std::string FormatSnapshot(const std::vector<MetricSnapshot>& snapshot);

// Full JSON rendering of a snapshot (the `/varz` payload): counters,
// gauges, and histograms with their bucket bounds/counts/sum.  Names
// (which may embed hostile label values) are JSON-escaped; non-finite
// doubles render as `null` (JSON has no Inf/NaN literals).
std::string ToVarzJson(const std::vector<MetricSnapshot>& snapshot);

// Same, plus a "help" object of family -> help text (both escaped);
// pass MetricsRegistry::HelpSnapshot().
std::string ToVarzJson(
    const std::vector<MetricSnapshot>& snapshot,
    const std::vector<std::pair<std::string, std::string>>& help);

// The shortest decimal rendering that parses back to exactly `v` — the
// stable double formatting for JSON payloads (/varz, /api/series), so
// deterministic state renders to deterministic bytes.  Non-finite
// values render as `null`.
std::string JsonDouble(double v);

// Prometheus label-value escaping: backslash, double quote, and newline
// become \\, \", and \n per the exposition format.
std::string PromEscape(std::string_view value);

// Builds a `{key="value",...}` label block with escaped values, for
// embedding labels in a registered metric name:
//   Gauge("health_component_state" + PromLabels({{"component", name}}))
// The part before '{' is the metric *family*; exposition emits # TYPE /
// # HELP once per family.  Families must be kind-consistent.
std::string PromLabels(
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every RANOMALY_METRIC_* site records into.
  // Never destroyed (leaked on purpose: instrumented code may run during
  // static destruction).
  static MetricsRegistry& Global();

  // Register-or-find by name.  Re-registering an existing name returns
  // the existing id; the kind (and, for histograms, bounds) must match.
  MetricId Counter(std::string_view name);
  MetricId Gauge(std::string_view name);
  MetricId Histogram(std::string_view name, std::vector<double> bounds);

  // Help text for a metric family (the name without any `{...}` label
  // block and without the "ranomaly_" exposition prefix); emitted as a
  // `# HELP` line before the family's `# TYPE`.  Last write wins.
  void SetHelp(std::string_view family, std::string_view help);

  // Hot-path recording.  Add/Observe write this thread's shard only;
  // Set is last-write-wins on a shared atomic.
  void Add(MetricId id, std::uint64_t delta = 1);
  void Set(MetricId id, double value);
  void Observe(MetricId id, double value);

  // Merged view of all shards (live and retired), sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;
  // Every registered help text, sorted by family.
  std::vector<std::pair<std::string, std::string>> HelpSnapshot() const;
  std::string ToText() const;
  // Prometheus exposition text; every name gets the "ranomaly_" prefix.
  std::string ToPrometheus() const;

  // Zeroes every value (registrations survive).  Callers must ensure no
  // concurrent writers: this is for tests and CLI runs, not steady state.
  void Reset();

  // Test convenience: the merged value of a counter, 0 if unregistered.
  std::uint64_t CounterValue(std::string_view name) const;

  struct Shard;  // opaque; public so the thread-exit hook can name it

  // Internal (called from the thread-exit hook): folds a departing
  // thread's shard into the retired totals and frees it.
  void RetireThreadShard(Shard* shard);

 private:
  struct Impl;
  Shard& LocalShard();
  MetricId Register(std::string_view name, MetricKind kind,
                    std::vector<double> bounds);

  std::unique_ptr<Impl> impl_;
};

}  // namespace ranomaly::obs

// Convenience macros: register once per call site (thread-safe
// function-local static), then record.  Compiled out entirely under
// RANOMALY_NO_TRACING.
#ifndef RANOMALY_NO_TRACING

#define RANOMALY_METRIC_COUNT(name, delta)                                 \
  do {                                                                     \
    static const ::ranomaly::obs::MetricId ranomaly_metric_id_ =           \
        ::ranomaly::obs::MetricsRegistry::Global().Counter(name);          \
    ::ranomaly::obs::MetricsRegistry::Global().Add(ranomaly_metric_id_,    \
                                                   (delta));               \
  } while (0)

#define RANOMALY_METRIC_SET(name, value)                                   \
  do {                                                                     \
    static const ::ranomaly::obs::MetricId ranomaly_metric_id_ =           \
        ::ranomaly::obs::MetricsRegistry::Global().Gauge(name);            \
    ::ranomaly::obs::MetricsRegistry::Global().Set(ranomaly_metric_id_,    \
                                                   (value));               \
  } while (0)

// `bounds` is any std::vector<double> expression, e.g. TimeBounds();
// evaluated once per call site.
#define RANOMALY_METRIC_OBSERVE(name, bounds, value)                       \
  do {                                                                     \
    static const ::ranomaly::obs::MetricId ranomaly_metric_id_ =           \
        ::ranomaly::obs::MetricsRegistry::Global().Histogram(name,         \
                                                             (bounds));    \
    ::ranomaly::obs::MetricsRegistry::Global().Observe(ranomaly_metric_id_,\
                                                       (value));           \
  } while (0)

#else  // RANOMALY_NO_TRACING

#define RANOMALY_METRIC_COUNT(name, delta) \
  do {                                     \
  } while (0)
#define RANOMALY_METRIC_SET(name, value) \
  do {                                   \
  } while (0)
#define RANOMALY_METRIC_OBSERVE(name, bounds, value) \
  do {                                               \
  } while (0)

#endif  // RANOMALY_NO_TRACING
