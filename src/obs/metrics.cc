#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_map>

namespace ranomaly::obs {
namespace {

constexpr std::uint32_t kKindShift = 30;
constexpr std::uint32_t kSlotMask = (1u << kKindShift) - 1;

MetricId MakeId(MetricKind kind, std::uint32_t slot) {
  return (static_cast<std::uint32_t>(kind) << kKindShift) | slot;
}

MetricKind KindOf(MetricId id) {
  return static_cast<MetricKind>(id >> kKindShift);
}

std::uint32_t SlotOf(MetricId id) { return id & kSlotMask; }

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// Shortest decimal form that parses back to exactly `v` ("0.001",
// "1.048576", "4e-06").  Bare %g truncates to 6 significant digits,
// which is lossy for exponential bucket bounds (1.048576 -> "1.04858"):
// two distinct bounds can then print identically, and a scraper that
// re-parses the `le` label attributes samples to a different bucket
// edge than the one the histogram actually used.
std::string FormatBound(double v) {
  // Shortest %g rendering that parses back to the exact double.  Length
  // is not monotonic in precision (%.1g turns 10 into "1e+01" while
  // %.2g gives "10"), so scan all precisions and keep the shortest.
  char best[64] = "";
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) != v) continue;
    if (best[0] == '\0' || std::strlen(buf) < std::strlen(best)) {
      std::memcpy(best, buf, sizeof(buf));
    }
  }
  return best[0] == '\0' ? buf : best;
}

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Splits a registered name into its family (before any '{') and the raw
// label block including braces ("" if unlabeled).
std::pair<std::string_view, std::string_view> SplitFamily(
    std::string_view name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos) return {name, {}};
  return {name.substr(0, brace), name.substr(brace)};
}

}  // namespace

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "null";
  return FormatBound(v);
}

std::string PromEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string PromLabels(
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += PromEscape(value);
    out += '"';
  }
  out += '}';
  return out;
}

std::vector<double> ExponentialBounds(double first, double factor,
                                      std::size_t count) {
  if (first <= 0.0 || factor <= 1.0) {
    throw std::invalid_argument("ExponentialBounds: need first>0, factor>1");
  }
  std::vector<double> bounds;
  bounds.reserve(count);
  double v = first;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

std::vector<double> TimeBounds() {
  // 1us quadrupling to ~268s: 14 bounds spanning every stage this code
  // meters, in exactly-representable powers of four.
  return ExponentialBounds(1e-6, 4.0, 14);
}

// ---------------------------------------------------------------------------
// Storage

namespace {

// A shard's counter cells.  Only the owning thread writes; growth
// republishes a bigger array (the superseded one is retired, not freed,
// so a concurrent snapshot can finish its reads).
struct CounterCells {
  explicit CounterCells(std::size_t n)
      : cap(n), v(new std::atomic<std::uint64_t>[n]) {
    for (std::size_t i = 0; i < n; ++i) v[i].store(0, std::memory_order_relaxed);
  }
  std::size_t cap;
  std::unique_ptr<std::atomic<std::uint64_t>[]> v;
};

// Per-shard state of one histogram; guarded by the shard's hist_mu
// (uncontended: the owner records, snapshots read rarely).
struct HistCells {
  const std::vector<double>* bounds = nullptr;  // registry-owned, stable
  std::vector<std::uint64_t> buckets;           // bounds->size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
};

void RecordHist(HistCells& hc, double value) {
  const std::vector<double>& bounds = *hc.bounds;
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  ++hc.buckets[idx];
  ++hc.count;
  hc.sum += value;
}

struct RetiredHist {
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
};

}  // namespace

struct MetricsRegistry::Shard {
  std::atomic<CounterCells*> cells{nullptr};
  // Every counter array this shard ever published, newest last; old
  // generations stay alive so a concurrent snapshot can finish reading.
  std::vector<std::unique_ptr<CounterCells>> superseded;
  std::mutex hist_mu;
  std::vector<HistCells> hists;  // indexed by histogram slot
};

struct MetricsRegistry::Impl {
  std::uint64_t registry_id = 0;
  mutable std::mutex mu;

  std::map<std::string, MetricId, std::less<>> by_name;
  std::map<std::string, std::string, std::less<>> help_by_family;
  std::vector<std::string> counter_names;  // slot -> name
  std::vector<std::string> gauge_names;
  std::deque<std::atomic<double>> gauges;  // deque: stable references
  std::vector<std::string> hist_names;
  struct HistInfo {
    std::vector<double> bounds;
  };
  std::deque<HistInfo> hists;  // deque: bounds addresses stay valid

  std::vector<std::unique_ptr<Shard>> shards;  // live thread shards
  std::vector<std::uint64_t> retired_counters;
  std::vector<RetiredHist> retired_hists;
};

// ---------------------------------------------------------------------------
// Thread-local shard table and registry liveness.
//
// A thread's shards are owned by their registries; the thread-local
// table only caches (registry id -> shard).  Ids are never reused, so a
// stale entry for a destroyed registry can never be matched, and the
// exit hook checks liveness under the global lock before touching the
// owner.  The lock and table leak deliberately: thread_local
// destructors may run after static destruction begins.

namespace {

struct TlsEntry {
  std::uint64_t registry_id;
  MetricsRegistry::Shard* shard;
};

std::mutex& LiveMu() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::unordered_map<std::uint64_t, MetricsRegistry*>& LiveRegistries() {
  static auto* map = new std::unordered_map<std::uint64_t, MetricsRegistry*>;
  return *map;
}

std::uint64_t NextRegistryId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

struct TlsShards {
  std::vector<TlsEntry> entries;
  ~TlsShards() {
    std::lock_guard<std::mutex> lock(LiveMu());
    auto& live = LiveRegistries();
    for (const TlsEntry& e : entries) {
      const auto it = live.find(e.registry_id);
      if (it != live.end()) it->second->RetireThreadShard(e.shard);
    }
  }
};

thread_local TlsShards g_tls_shards;

}  // namespace

// ---------------------------------------------------------------------------
// Registry

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>()) {
  impl_->registry_id = NextRegistryId();
  std::lock_guard<std::mutex> lock(LiveMu());
  LiveRegistries().emplace(impl_->registry_id, this);
}

MetricsRegistry::~MetricsRegistry() {
  {
    std::lock_guard<std::mutex> lock(LiveMu());
    LiveRegistries().erase(impl_->registry_id);
  }
  // Shards (and their cells) die with impl_; other threads' stale tls
  // entries can no longer match this registry's id.
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry;  // leaked on purpose
  return *global;
}

MetricId MetricsRegistry::Register(std::string_view name, MetricKind kind,
                                   std::vector<double> bounds) {
  if (name.empty()) throw std::invalid_argument("metric name must not be empty");
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->by_name.find(name);
  if (it != impl_->by_name.end()) {
    if (KindOf(it->second) != kind) {
      throw std::logic_error("metric '" + std::string(name) +
                             "' re-registered with a different kind");
    }
    if (kind == MetricKind::kHistogram &&
        impl_->hists[SlotOf(it->second)].bounds != bounds) {
      throw std::logic_error("histogram '" + std::string(name) +
                             "' re-registered with different bounds");
    }
    return it->second;
  }
  std::uint32_t slot = 0;
  switch (kind) {
    case MetricKind::kCounter:
      slot = static_cast<std::uint32_t>(impl_->counter_names.size());
      impl_->counter_names.emplace_back(name);
      impl_->retired_counters.push_back(0);
      break;
    case MetricKind::kGauge:
      slot = static_cast<std::uint32_t>(impl_->gauge_names.size());
      impl_->gauge_names.emplace_back(name);
      impl_->gauges.emplace_back(0.0);
      break;
    case MetricKind::kHistogram: {
      if (bounds.empty() ||
          !std::is_sorted(bounds.begin(), bounds.end(),
                          std::less_equal<double>())) {
        throw std::invalid_argument(
            "histogram bounds must be non-empty and strictly ascending");
      }
      slot = static_cast<std::uint32_t>(impl_->hist_names.size());
      impl_->hist_names.emplace_back(name);
      RetiredHist retired;
      retired.buckets.assign(bounds.size() + 1, 0);
      impl_->retired_hists.push_back(std::move(retired));
      impl_->hists.push_back(Impl::HistInfo{std::move(bounds)});
      break;
    }
  }
  const MetricId id = MakeId(kind, slot);
  impl_->by_name.emplace(std::string(name), id);
  return id;
}

MetricId MetricsRegistry::Counter(std::string_view name) {
  return Register(name, MetricKind::kCounter, {});
}

MetricId MetricsRegistry::Gauge(std::string_view name) {
  return Register(name, MetricKind::kGauge, {});
}

MetricId MetricsRegistry::Histogram(std::string_view name,
                                    std::vector<double> bounds) {
  return Register(name, MetricKind::kHistogram, std::move(bounds));
}

void MetricsRegistry::SetHelp(std::string_view family, std::string_view help) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->help_by_family[std::string(family)] = std::string(help);
}

MetricsRegistry::Shard& MetricsRegistry::LocalShard() {
  for (const TlsEntry& e : g_tls_shards.entries) {
    if (e.registry_id == impl_->registry_id) return *e.shard;
  }
  auto shard = std::make_unique<Shard>();
  Shard* raw = shard.get();
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shards.push_back(std::move(shard));
  }
  g_tls_shards.entries.push_back(TlsEntry{impl_->registry_id, raw});
  return *raw;
}

void MetricsRegistry::Add(MetricId id, std::uint64_t delta) {
  const std::uint32_t slot = SlotOf(id);
  Shard& s = LocalShard();
  CounterCells* cells = s.cells.load(std::memory_order_relaxed);
  if (cells == nullptr || slot >= cells->cap) {
    // Owner-only growth: copy into a bigger array, retire the old one
    // (a concurrent snapshot may still be reading it), publish.
    std::size_t cap = cells != nullptr ? cells->cap : 64;
    while (cap <= slot) cap *= 2;
    auto grown = std::make_unique<CounterCells>(cap);
    if (cells != nullptr) {
      for (std::size_t i = 0; i < cells->cap; ++i) {
        grown->v[i].store(cells->v[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      }
    }
    CounterCells* raw = grown.get();
    s.superseded.push_back(std::move(grown));  // owns every generation
    s.cells.store(raw, std::memory_order_release);
  }
  cells = s.cells.load(std::memory_order_relaxed);
  cells->v[slot].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::Set(MetricId id, double value) {
  const std::uint32_t slot = SlotOf(id);
  // Gauges are rare (a handful of Set calls per run): a registry-lock
  // write keeps the deque safe against concurrent registration growth.
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (slot < impl_->gauges.size()) {
    impl_->gauges[slot].store(value, std::memory_order_relaxed);
  }
}

void MetricsRegistry::Observe(MetricId id, double value) {
  const std::uint32_t slot = SlotOf(id);
  Shard& s = LocalShard();
  {
    std::lock_guard<std::mutex> lock(s.hist_mu);
    if (slot < s.hists.size() && s.hists[slot].bounds != nullptr) {
      RecordHist(s.hists[slot], value);
      return;
    }
  }
  // First observation of this histogram on this thread: fetch the
  // registry-owned bounds (stable deque storage) outside hist_mu so the
  // mu -> hist_mu lock order of Snapshot() is never inverted.
  const std::vector<double>* bounds = nullptr;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (slot >= impl_->hists.size()) return;  // unknown id: ignore
    bounds = &impl_->hists[slot].bounds;
  }
  std::lock_guard<std::mutex> lock(s.hist_mu);
  if (slot >= s.hists.size()) s.hists.resize(slot + 1);
  HistCells& hc = s.hists[slot];
  if (hc.bounds == nullptr) {
    hc.bounds = bounds;
    hc.buckets.assign(bounds->size() + 1, 0);
  }
  RecordHist(hc, value);
}

void MetricsRegistry::RetireThreadShard(Shard* shard) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (CounterCells* cells = shard->cells.load(std::memory_order_acquire)) {
    const std::size_t n =
        std::min(cells->cap, impl_->retired_counters.size());
    for (std::size_t i = 0; i < n; ++i) {
      impl_->retired_counters[i] +=
          cells->v[i].load(std::memory_order_relaxed);
    }
  }
  {
    std::lock_guard<std::mutex> hist_lock(shard->hist_mu);
    for (std::size_t h = 0; h < shard->hists.size(); ++h) {
      const HistCells& hc = shard->hists[h];
      if (hc.bounds == nullptr || h >= impl_->retired_hists.size()) continue;
      RetiredHist& r = impl_->retired_hists[h];
      for (std::size_t b = 0; b < hc.buckets.size(); ++b) {
        r.buckets[b] += hc.buckets[b];
      }
      r.count += hc.count;
      r.sum += hc.sum;
    }
  }
  const auto it = std::find_if(
      impl_->shards.begin(), impl_->shards.end(),
      [shard](const std::unique_ptr<Shard>& s) { return s.get() == shard; });
  if (it != impl_->shards.end()) impl_->shards.erase(it);
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<MetricSnapshot> out;
  out.reserve(impl_->by_name.size());
  for (const auto& [name, id] : impl_->by_name) {  // map: sorted by name
    MetricSnapshot m;
    m.name = name;
    m.kind = KindOf(id);
    const std::uint32_t slot = SlotOf(id);
    switch (m.kind) {
      case MetricKind::kCounter: {
        std::uint64_t total = impl_->retired_counters[slot];
        for (const auto& shard : impl_->shards) {
          if (CounterCells* cells =
                  shard->cells.load(std::memory_order_acquire)) {
            if (slot < cells->cap) {
              total += cells->v[slot].load(std::memory_order_relaxed);
            }
          }
        }
        m.counter = total;
        break;
      }
      case MetricKind::kGauge:
        m.gauge = impl_->gauges[slot].load(std::memory_order_relaxed);
        break;
      case MetricKind::kHistogram: {
        const RetiredHist& retired = impl_->retired_hists[slot];
        m.histogram.bounds = impl_->hists[slot].bounds;
        m.histogram.counts = retired.buckets;
        m.histogram.total_count = retired.count;
        m.histogram.sum = retired.sum;
        for (const auto& shard : impl_->shards) {
          std::lock_guard<std::mutex> hist_lock(shard->hist_mu);
          if (slot >= shard->hists.size()) continue;
          const HistCells& hc = shard->hists[slot];
          if (hc.bounds == nullptr) continue;
          for (std::size_t b = 0; b < hc.buckets.size(); ++b) {
            m.histogram.counts[b] += hc.buckets[b];
          }
          m.histogram.total_count += hc.count;
          m.histogram.sum += hc.sum;
        }
        break;
      }
    }
    out.push_back(std::move(m));
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::fill(impl_->retired_counters.begin(), impl_->retired_counters.end(),
            0);
  for (RetiredHist& r : impl_->retired_hists) {
    std::fill(r.buckets.begin(), r.buckets.end(), 0);
    r.count = 0;
    r.sum = 0.0;
  }
  for (auto& gauge : impl_->gauges) gauge.store(0.0, std::memory_order_relaxed);
  for (const auto& shard : impl_->shards) {
    if (CounterCells* cells = shard->cells.load(std::memory_order_acquire)) {
      for (std::size_t i = 0; i < cells->cap; ++i) {
        cells->v[i].store(0, std::memory_order_relaxed);
      }
    }
    std::lock_guard<std::mutex> hist_lock(shard->hist_mu);
    for (HistCells& hc : shard->hists) {
      std::fill(hc.buckets.begin(), hc.buckets.end(), 0);
      hc.count = 0;
      hc.sum = 0.0;
    }
  }
}

std::uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  for (const MetricSnapshot& m : Snapshot()) {
    if (m.name == name && m.kind == MetricKind::kCounter) return m.counter;
  }
  return 0;
}

std::string FormatSnapshot(const std::vector<MetricSnapshot>& snapshot) {
  std::size_t width = 0;
  for (const MetricSnapshot& m : snapshot) {
    width = std::max(width, m.name.size());
  }
  std::string out;
  for (const MetricSnapshot& m : snapshot) {
    out += m.name;
    out.append(width - m.name.size() + 2, ' ');
    switch (m.kind) {
      case MetricKind::kCounter:
        out += std::to_string(m.counter);
        break;
      case MetricKind::kGauge:
        out += FormatDouble(m.gauge);
        break;
      case MetricKind::kHistogram: {
        out += "count=" + std::to_string(m.histogram.total_count);
        out += " sum=" + FormatDouble(m.histogram.sum);
        out += " [";
        for (std::size_t b = 0; b < m.histogram.counts.size(); ++b) {
          if (b > 0) out += ' ';
          out += b < m.histogram.bounds.size()
                     ? "le" + FormatBound(m.histogram.bounds[b])
                     : std::string("inf");
          out += ':';
          out += std::to_string(m.histogram.counts[b]);
        }
        out += "]";
        break;
      }
    }
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::ToText() const { return FormatSnapshot(Snapshot()); }

std::string MetricsRegistry::ToPrometheus() const {
  // Registered names may embed a `{key="value"}` label block (built with
  // PromLabels, so values are already escaped); the part before '{' is
  // the metric family.  # HELP (when registered) and # TYPE are emitted
  // exactly once per family, before its first sample — a set, not an
  // adjacency check, because name sorting interleaves families
  // ("foo_x" sorts between "foo" and "foo{...}").
  std::map<std::string, std::string> help;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    help = {impl_->help_by_family.begin(), impl_->help_by_family.end()};
  }
  std::string out;
  std::set<std::string, std::less<>> emitted_families;
  for (const MetricSnapshot& m : Snapshot()) {
    const auto [family, labels] = SplitFamily(m.name);
    const std::string prom_family = "ranomaly_" + std::string(family);
    if (emitted_families.insert(prom_family).second) {
      const auto it = help.find(std::string(family));
      if (it != help.end() && !it->second.empty()) {
        // # HELP escaping: backslash and newline only (not quotes).
        std::string text;
        for (const char c : it->second) {
          if (c == '\\') text += "\\\\";
          else if (c == '\n') text += "\\n";
          else text += c;
        }
        out += "# HELP " + prom_family + " " + text + "\n";
      }
      const char* type = m.kind == MetricKind::kCounter    ? "counter"
                         : m.kind == MetricKind::kGauge    ? "gauge"
                                                           : "histogram";
      out += "# TYPE " + prom_family + " " + type + "\n";
    }
    switch (m.kind) {
      case MetricKind::kCounter:
        out += prom_family + std::string(labels) + " " +
               std::to_string(m.counter) + "\n";
        break;
      case MetricKind::kGauge:
        out += prom_family + std::string(labels) + " " +
               FormatDouble(m.gauge) + "\n";
        break;
      case MetricKind::kHistogram: {
        // A histogram's own labels merge with the le bucket label.
        const std::string inner =
            labels.empty()
                ? std::string{}
                : std::string(labels.substr(1, labels.size() - 2)) + ",";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < m.histogram.bounds.size(); ++b) {
          cumulative += m.histogram.counts[b];
          out += prom_family + "_bucket{" + inner + "le=\"" +
                 FormatBound(m.histogram.bounds[b]) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += prom_family + "_bucket{" + inner + "le=\"+Inf\"} " +
               std::to_string(m.histogram.total_count) + "\n";
        out += prom_family + "_sum" + std::string(labels) + " " +
               FormatDouble(m.histogram.sum) + "\n";
        out += prom_family + "_count" + std::string(labels) + " " +
               std::to_string(m.histogram.total_count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string ToVarzJson(const std::vector<MetricSnapshot>& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const MetricSnapshot& m : snapshot) {
    if (m.kind != MetricKind::kCounter) continue;
    if (!first) out += ',';
    first = false;
    out += "\"" + EscapeJson(m.name) + "\":" + std::to_string(m.counter);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const MetricSnapshot& m : snapshot) {
    if (m.kind != MetricKind::kGauge) continue;
    if (!first) out += ',';
    first = false;
    out += "\"" + EscapeJson(m.name) + "\":" + JsonDouble(m.gauge);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const MetricSnapshot& m : snapshot) {
    if (m.kind != MetricKind::kHistogram) continue;
    if (!first) out += ',';
    first = false;
    out += "\"" + EscapeJson(m.name) + "\":{\"bounds\":[";
    for (std::size_t b = 0; b < m.histogram.bounds.size(); ++b) {
      if (b > 0) out += ',';
      out += FormatBound(m.histogram.bounds[b]);
    }
    out += "],\"counts\":[";
    for (std::size_t b = 0; b < m.histogram.counts.size(); ++b) {
      if (b > 0) out += ',';
      out += std::to_string(m.histogram.counts[b]);
    }
    out += "],\"count\":" + std::to_string(m.histogram.total_count);
    out += ",\"sum\":" + JsonDouble(m.histogram.sum) + "}";
  }
  out += "}}";
  return out;
}

std::string ToVarzJson(
    const std::vector<MetricSnapshot>& snapshot,
    const std::vector<std::pair<std::string, std::string>>& help) {
  std::string out = ToVarzJson(snapshot);
  // Splice the help object in before the closing brace; both family
  // names and help texts are operator-supplied and must be escaped.
  out.pop_back();
  out += ",\"help\":{";
  bool first = true;
  for (const auto& [family, text] : help) {
    if (!first) out += ',';
    first = false;
    out += "\"" + EscapeJson(family) + "\":\"" + EscapeJson(text) + "\"";
  }
  out += "}}";
  return out;
}

std::vector<std::pair<std::string, std::string>>
MetricsRegistry::HelpSnapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return {impl_->help_by_family.begin(), impl_->help_by_family.end()};
}

}  // namespace ranomaly::obs
