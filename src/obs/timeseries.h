// Bounded-memory, multi-resolution time-series store: the history
// behind the `ranomaly serve` dashboard (/api/series, /dashboard).
//
// The store self-samples a MetricsRegistry at tick boundaries on the
// replay thread, so every retained point is stamped with *simulated*
// time and the retained history inherits the registry's determinism
// contract: counter-valued series (and gauges whose inputs are
// simulated time) are bit-identical for any RANOMALY_THREADS setting,
// while wall-clock histograms and pool gauges stay metering-only
// (retained faithfully, excluded from the byte-identity contract —
// docs/OBSERVABILITY.md, Dashboard).
//
// Memory is bounded by construction: a fixed set of downsample tiers
// (default 1s x 600, 10s x 720, 60s x 1440 points), each a ring that
// evicts its oldest bucket on overflow, and a hard cap on the number of
// distinct series (further names are counted as dropped, never stored).
// Samples land in the bucket containing their timestamp; re-samples
// within a bucket overwrite the last value and widen min/max, so a
// coarse tier is a true downsample of the fine one.
//
// Derivations happen at render time, never at sample time:
//   counters    cumulative value per bucket; per-point rate/s derived
//               from the previous bucket in the tier, with counter
//               resets (value decreased) re-based at zero
//   gauges      last value per bucket plus bucket min/max
//   histograms  expanded at sample time into derived series
//               name:count (counter), name:sum and name:p50/p90/p99
//               (gauges, linear-interpolation quantiles)
//
// Export/Restore round-trips the full state for the RNC1 SERS section
// (docs/FORMATS.md), so `serve --checkpoint` restarts resume with
// byte-identical /api/series responses.
//
// Standard-library-only, like metrics.h.  Thread-safe: the replay
// thread samples while the HTTP thread renders.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace ranomaly::obs {

enum class SeriesKind : std::uint8_t { kCounter = 0, kGauge = 1 };

const char* ToString(SeriesKind kind);

// One finalized (or still-filling) downsample bucket.
struct SeriesPoint {
  std::int64_t t = 0;   // bucket start, microseconds of simulated time
  double value = 0.0;   // counter: cumulative at bucket close; gauge: last
  double min = 0.0;     // bucket-wide extrema (== value for counters)
  double max = 0.0;
};

struct TierSpec {
  std::int64_t resolution_us = 0;  // bucket width, microseconds
  std::uint32_t capacity = 0;      // ring size in buckets
  bool operator==(const TierSpec&) const = default;
};

struct TimeSeriesOptions {
  // Ascending resolutions; defaults retain 10 min at 1s, 2 h at 10s,
  // and 24 h at 60s — ~66 KiB per series, all tiers included.
  std::vector<TierSpec> tiers = {
      {1'000'000, 600},
      {10'000'000, 720},
      {60'000'000, 1440},
  };
  std::size_t max_series = 1024;
};

// Linear-interpolation quantile over histogram buckets (the
// `histogram_quantile` convention): finds the bucket containing rank
// q * total_count and interpolates within its [previous bound, bound]
// span.  The +Inf bucket clamps to the largest finite bound.  Returns
// 0 for an empty histogram; `q` is clamped to [0, 1].
double HistogramQuantile(const HistogramSnapshot& histogram, double q);

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(TimeSeriesOptions options = {});

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  // Folds a full registry snapshot into the tiers at simulated time `t`
  // (microseconds): counters and gauges verbatim, histograms expanded
  // into their :count/:sum/:p50/:p90/:p99 derived series.
  void Sample(const MetricsRegistry& registry, std::int64_t t);

  // Direct ingestion of one observation (tests, non-registry series).
  // Re-registering a name with a different kind keeps the first kind.
  void Record(std::string_view name, SeriesKind kind, std::int64_t t,
              double value);

  std::size_t series_count() const;
  std::uint64_t dropped_series() const;  // names refused at max_series
  std::int64_t last_sample() const;      // -1 before the first sample

  bool HasTier(std::int64_t resolution_us) const;

  // {"tiers":[...],"last_sample_sec":T,"dropped_series":N,
  //  "series":[{"name":...,"kind":...},...]} — names sorted.
  std::string ListJson() const;

  // {"name":...,"kind":...,"resolution_sec":R,"points":[...]} with
  // points strictly after `since_us`.  Counter points are
  // [t_sec,value,rate_per_sec] (rate null for the ring's oldest
  // bucket); gauge points are [t_sec,value,min,max].  nullopt when the
  // name is unknown (callers check HasTier first for a 400-vs-404
  // distinction).  Deterministic bytes for equal state.
  std::optional<std::string> SeriesJson(std::string_view name,
                                        std::int64_t resolution_us,
                                        std::int64_t since_us) const;

  // Checkpoint state (the RNC1 SERS section).  Series ride in
  // first-seen order so restore preserves max_series admission.
  struct PersistedSeries {
    std::string name;
    std::uint8_t kind = 0;
    std::vector<std::vector<SeriesPoint>> tiers;  // oldest -> newest
  };
  struct Persisted {
    std::vector<TierSpec> tiers;
    std::int64_t last_sample = -1;
    std::uint64_t dropped_series = 0;
    std::vector<PersistedSeries> series;
  };
  Persisted Export() const;

  // Structural validation shared by Restore and the checkpoint decoder:
  // returns "" or a reason ("series 2 tier 0: t not bucket-aligned").
  static std::string Validate(const Persisted& p);

  // Replaces the whole store.  Fails (store untouched, *error set) if
  // Validate rejects `p` or its tier shape differs from this store's
  // options; an empty `p` (no tiers) just clears the history.
  bool Restore(Persisted p, std::string* error);

  const TimeSeriesOptions& options() const { return options_; }

 private:
  struct Series {
    std::string name;
    SeriesKind kind = SeriesKind::kCounter;
    std::vector<std::vector<SeriesPoint>> tiers;
  };

  Series* FindOrCreateLocked(std::string_view name, SeriesKind kind);
  void RecordLocked(Series& series, std::int64_t t, double value);

  mutable std::mutex mu_;
  TimeSeriesOptions options_;
  std::vector<Series> series_;  // first-seen order
  std::unordered_map<std::string, std::size_t> index_;
  std::int64_t last_sample_ = -1;
  std::uint64_t dropped_series_ = 0;
};

}  // namespace ranomaly::obs
