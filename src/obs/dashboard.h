// The /dashboard asset: one self-contained HTML document (inline CSS,
// inline vanilla JS, inline SVG rendering) served by `ranomaly serve
// --dashboard`.  It polls only same-origin JSON endpoints
// (/api/series, /api/incidents/timeline, /varz) — zero external
// resource fetches, so it renders on an air-gapped operator box.
#pragma once

namespace ranomaly::obs {

const char* DashboardHtml();

}  // namespace ranomaly::obs
