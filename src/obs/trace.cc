#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

namespace ranomaly::obs {
namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatMicros(std::uint64_t ts_ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(ts_ns) / 1000.0);
  return buf;
}

struct TraceEvent {
  const char* name = nullptr;
  char phase = 'B';
  std::uint64_t ts_ns = 0;
  std::string args;  // end events only
};

struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::size_t capacity = 0;
  mutable std::mutex mu;
  std::string thread_name;
  std::vector<TraceEvent> ring;  // grows to capacity, then wraps
  std::size_t next = 0;          // overwrite cursor once full
  std::uint64_t dropped = 0;
};

struct TlsTraceEntry {
  std::uint64_t tracer_id;
  ThreadBuffer* buffer;
};

// Buffers are owned by the tracer and never freed before it, so the
// thread-local cache needs no exit hook: ids are never reused, a stale
// entry simply never matches again.
thread_local std::vector<TlsTraceEntry> g_tls_buffers;

std::uint64_t NextTracerId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

struct Tracer::Impl {
  std::uint64_t tracer_id = 0;
  mutable std::mutex mu;  // buffer list, capacity
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::size_t capacity = 1 << 16;
  std::atomic<std::int64_t> epoch_ns{NowNs()};

  ThreadBuffer& LocalBuffer() {
    for (const TlsTraceEntry& e : g_tls_buffers) {
      if (e.tracer_id == tracer_id) return *e.buffer;
    }
    auto buffer = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = buffer.get();
    {
      std::lock_guard<std::mutex> lock(mu);
      raw->tid = static_cast<std::uint32_t>(buffers.size() + 1);
      raw->capacity = capacity;
      buffers.push_back(std::move(buffer));
    }
    g_tls_buffers.push_back(TlsTraceEntry{tracer_id, raw});
    return *raw;
  }

  void Record(const char* name, char phase, std::string&& args) {
    const std::uint64_t ts = static_cast<std::uint64_t>(
        NowNs() - epoch_ns.load(std::memory_order_relaxed));
    ThreadBuffer& buf = LocalBuffer();
    TraceEvent event;
    event.name = name;
    event.phase = phase;
    event.ts_ns = ts;
    event.args = std::move(args);
    std::lock_guard<std::mutex> lock(buf.mu);
    if (buf.ring.size() < buf.capacity) {
      buf.ring.push_back(std::move(event));
    } else {
      buf.ring[buf.next] = std::move(event);
      buf.next = (buf.next + 1) % buf.capacity;
      ++buf.dropped;
    }
  }

  // One thread's events, oldest first, sanitized so B/E always balance:
  // ends whose begin was overwritten are dropped; begins still open at
  // export time get a synthetic end at the last seen timestamp.
  std::vector<TraceEvent> SanitizedEvents(const ThreadBuffer& buf) const {
    std::vector<TraceEvent> ordered;
    {
      std::lock_guard<std::mutex> lock(buf.mu);
      ordered.reserve(buf.ring.size());
      const std::size_t n = buf.ring.size();
      const std::size_t start = n < buf.capacity ? 0 : buf.next;
      for (std::size_t i = 0; i < n; ++i) {
        ordered.push_back(buf.ring[(start + i) % n]);
      }
    }
    std::vector<TraceEvent> out;
    out.reserve(ordered.size());
    std::vector<const char*> open;
    std::uint64_t last_ts = 0;
    for (TraceEvent& event : ordered) {
      last_ts = event.ts_ns;
      if (event.phase == 'B') {
        open.push_back(event.name);
        out.push_back(std::move(event));
      } else if (!open.empty()) {
        open.pop_back();
        out.push_back(std::move(event));
      }
      // else: end of a span whose begin was overwritten — drop it.
    }
    while (!open.empty()) {
      TraceEvent synthetic;
      synthetic.name = open.back();
      synthetic.phase = 'E';
      synthetic.ts_ns = last_ts;
      open.pop_back();
      out.push_back(std::move(synthetic));
    }
    return out;
  }
};

Tracer::Tracer() : impl_(std::make_unique<Impl>()) {
  impl_->tracer_id = NextTracerId();
}

Tracer::~Tracer() = default;

Tracer& Tracer::Global() {
  static Tracer* global = new Tracer;  // leaked on purpose
  return *global;
}

void Tracer::SetEnabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& buffer : impl_->buffers) {
    std::lock_guard<std::mutex> buf_lock(buffer->mu);
    buffer->ring.clear();
    buffer->next = 0;
    buffer->dropped = 0;
  }
  impl_->epoch_ns.store(NowNs(), std::memory_order_relaxed);
}

void Tracer::SetThreadCapacity(std::size_t events) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->capacity = events == 0 ? 1 : events;
}

void Tracer::SetCurrentThreadName(std::string name) {
  ThreadBuffer& buf = impl_->LocalBuffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.thread_name = std::move(name);
}

std::uint64_t Tracer::DroppedCount() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::uint64_t dropped = 0;
  for (const auto& buffer : impl_->buffers) {
    std::lock_guard<std::mutex> buf_lock(buffer->mu);
    dropped += buffer->dropped;
  }
  return dropped;
}

void Tracer::RecordBegin(const char* name) {
  impl_->Record(name, 'B', std::string());
}

void Tracer::RecordEnd(const char* name, std::string&& args_json) {
  impl_->Record(name, 'E', std::move(args_json));
}

std::string Tracer::ExportChromeJson() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto append = [&](const std::string& line) {
    if (!first) out += ',';
    first = false;
    out += "\n";
    out += line;
  };
  for (const auto& buffer : impl_->buffers) {
    {
      std::lock_guard<std::mutex> buf_lock(buffer->mu);
      if (!buffer->thread_name.empty()) {
        append("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
               std::to_string(buffer->tid) + ",\"args\":{\"name\":\"" +
               EscapeJson(buffer->thread_name) + "\"}}");
      }
    }
    for (const TraceEvent& event : impl_->SanitizedEvents(*buffer)) {
      std::string line = "{\"name\":\"" + EscapeJson(event.name) +
                         "\",\"cat\":\"ranomaly\",\"ph\":\"";
      line += event.phase;
      line += "\",\"pid\":1,\"tid\":" + std::to_string(buffer->tid) +
              ",\"ts\":" + FormatMicros(event.ts_ns);
      if (!event.args.empty()) line += ",\"args\":{" + event.args + "}";
      line += "}";
      append(line);
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string Tracer::ExportJsonl() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out;
  for (const auto& buffer : impl_->buffers) {
    for (const TraceEvent& event : impl_->SanitizedEvents(*buffer)) {
      out += "{\"name\":\"" + EscapeJson(event.name) + "\",\"ph\":\"";
      out += event.phase;
      out += "\",\"tid\":" + std::to_string(buffer->tid) +
             ",\"ts_us\":" + FormatMicros(event.ts_ns);
      if (!event.args.empty()) out += ",\"args\":{" + event.args + "}";
      out += "}\n";
    }
  }
  return out;
}

#ifndef RANOMALY_NO_TRACING

void TraceSpan::Annotate(std::string_view key, std::string_view value) {
  if (name_ == nullptr) return;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += EscapeJson(key);
  args_ += "\":\"";
  args_ += EscapeJson(value);
  args_ += '"';
}

void TraceSpan::Annotate(std::string_view key, std::uint64_t value) {
  if (name_ == nullptr) return;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += EscapeJson(key);
  args_ += "\":";
  args_ += std::to_string(value);
}

void TraceSpan::Annotate(std::string_view key, double value) {
  if (name_ == nullptr) return;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += EscapeJson(key);
  args_ += "\":";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  args_ += buf;
}

#endif  // RANOMALY_NO_TRACING

}  // namespace ranomaly::obs
