// Scoped span tracing with per-thread ring buffers.
//
// A TraceSpan records a Chrome trace_event "B" (begin) at construction
// and an "E" (end) at destruction; nesting follows scope nesting, so
// parent/child structure falls out of B/E pairing.  Annotate() attaches
// key=value arguments to the end event.  Recording is ~one relaxed
// atomic load when the tracer is disabled (the default), and the spans
// compile to empty structs under -DRANOMALY_NO_TRACING=ON.
//
// Events land in a fixed-capacity ring per thread (oldest overwritten;
// the drop count is kept so truncation is visible).  Export produces
// Chrome trace_event JSON — load it at https://ui.perfetto.dev or
// chrome://tracing — or a JSONL stream (one event per line) for tests.
// Timestamps are wall-clock nanoseconds from a steady clock: metering
// only, never algorithm input (DESIGN.md determinism rule).
//
// Standard-library-only, like metrics.h: usable from every layer
// including util.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace ranomaly::obs {

class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // The process-wide tracer every TraceSpan records into.  Leaked, like
  // MetricsRegistry::Global().
  static Tracer& Global();

  void SetEnabled(bool on);
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Drops all buffered events and restarts the timestamp epoch.
  void Reset();

  // Events kept per thread before the ring overwrites the oldest.
  // Applies to buffers created after the call; default 65536.
  void SetThreadCapacity(std::size_t events);

  // Names the calling thread in exported metadata ("pool-worker-3").
  void SetCurrentThreadName(std::string name);

  // Chrome trace_event JSON ({"traceEvents":[...]}).  Buffers are
  // sanitized per thread: an E whose B was overwritten is dropped, and
  // a still-open B gets a synthetic E at the buffer's last timestamp,
  // so exported B/E pairs always balance.
  std::string ExportChromeJson() const;

  // One sanitized event per line: {"name":..,"ph":"B"|"E","tid":N,
  // "ts_us":..,"args":{..}}.
  std::string ExportJsonl() const;

  // Events lost to ring overwrites since the last Reset().
  std::uint64_t DroppedCount() const;

  // Span internals.
  void RecordBegin(const char* name);
  void RecordEnd(const char* name, std::string&& args_json);

 private:
  struct Impl;
  std::atomic<bool> enabled_{false};
  std::unique_ptr<Impl> impl_;
};

// RAII span.  The name must be a string literal (stored by pointer).
class TraceSpan {
 public:
#ifndef RANOMALY_NO_TRACING
  explicit TraceSpan(const char* name) {
    Tracer& tracer = Tracer::Global();
    if (tracer.enabled()) {
      name_ = name;
      tracer.RecordBegin(name);
    }
  }
  ~TraceSpan() { End(); }
  // Ends the span before scope exit (for phases inside one function);
  // the destructor then does nothing.
  void End() {
    if (name_ != nullptr) {
      Tracer::Global().RecordEnd(name_, std::move(args_));
      name_ = nullptr;
    }
  }
  void Annotate(std::string_view key, std::string_view value);
  void Annotate(std::string_view key, std::uint64_t value);
  void Annotate(std::string_view key, double value);
#else
  explicit TraceSpan(const char*) {}
  ~TraceSpan() = default;
  void End() {}
  void Annotate(std::string_view, std::string_view) {}
  void Annotate(std::string_view, std::uint64_t) {}
  void Annotate(std::string_view, double) {}
#endif

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
#ifndef RANOMALY_NO_TRACING
  const char* name_ = nullptr;
  std::string args_;  // accumulated `"key":value` pairs
#endif
};

}  // namespace ranomaly::obs
