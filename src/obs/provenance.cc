#include "obs/provenance.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "obs/metrics.h"

namespace ranomaly::obs {
namespace {

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* AdmissionName(std::uint8_t admission) {
  return admission == 1 ? "shed" : "direct";
}

}  // namespace

ProvenanceLedger::ProvenanceLedger(ProvenanceCaps caps) : caps_(caps) {}

void ProvenanceLedger::Attach(IncidentProvenance record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.empty() && record.seq > evicted_ + 1) {
    // A runner restored from a checkpoint written without a ledger (or
    // by a RANOMALY_NO_PROVENANCE build) resumes at seq N+1: treat the
    // unexplained prefix as evicted so the contiguity invariant holds.
    evicted_ = record.seq - 1;
  }
  if (record.events.size() > caps_.max_events) {
    record.events.resize(caps_.max_events);
  }
  if (record.classes.size() > caps_.max_classes) {
    record.classes.resize(caps_.max_classes);
  }
  records_.push_back(std::move(record));
  while (records_.size() > caps_.max_incidents) {
    records_.pop_front();
    ++evicted_;
  }
}

std::size_t ProvenanceLedger::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::uint64_t ProvenanceLedger::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

std::optional<std::string> ProvenanceLedger::EvidenceJson(
    std::uint64_t seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::lower_bound(
      records_.begin(), records_.end(), seq,
      [](const IncidentProvenance& r, std::uint64_t s) { return r.seq < s; });
  if (it == records_.end() || it->seq != seq) return std::nullopt;
  const IncidentProvenance& r = *it;

  std::string out = "{\"seq\":" + std::to_string(r.seq);
  out += ",\"kind\":\"" + EscapeJson(r.kind) + "\"";
  out += ",\"stem\":\"" + EscapeJson(r.stem) + "\"";
  out += ",\"stem_key\":[" + std::to_string(r.stem_first) + "," +
         std::to_string(r.stem_second) + "]";
  out += ",\"path\":[";
  for (std::size_t i = 0; i < r.path.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"" + EscapeJson(r.path[i]) + "\"";
  }
  out += "]";
  out += ",\"window_events\":" + std::to_string(r.window_events);
  out += ",\"component_events\":" + std::to_string(r.component_events);
  out += ",\"component_weight\":" + JsonDouble(r.component_weight);
  out += ",\"trace\":{\"span\":\"live.tick\",\"tick\":" +
         std::to_string(r.trace_tick) + "}";
  out += ",\"stages\":[";
  for (std::size_t i = 0; i < r.stages.size(); ++i) {
    if (i != 0) out += ",";
    out += "{\"stage\":\"" + EscapeJson(r.stages[i].stage) +
           "\",\"seconds\":" + JsonDouble(r.stages[i].seconds) + "}";
  }
  out += "]";
  out += ",\"events_total\":" + std::to_string(r.events_total);
  out += ",\"events\":[";
  for (std::size_t i = 0; i < r.events.size(); ++i) {
    const ProvenanceEvent& e = r.events[i];
    if (i != 0) out += ",";
    out += "{\"id\":" + std::to_string(e.stream_index);
    out += ",\"time_sec\":" + JsonDouble(e.time_sec);
    out += ",\"type\":\"" + EscapeJson(e.type) + "\"";
    out += ",\"peer\":\"" + EscapeJson(e.peer) + "\"";
    out += ",\"prefix\":\"" + EscapeJson(e.prefix) + "\"";
    out += ",\"admission\":\"";
    out += AdmissionName(e.admission);
    out += "\"}";
  }
  out += "]";
  out += ",\"classes_total\":" + std::to_string(r.classes_total);
  out += ",\"classes\":[";
  for (std::size_t i = 0; i < r.classes.size(); ++i) {
    const ProvenanceClass& c = r.classes[i];
    if (i != 0) out += ",";
    out += "{\"id\":" + std::to_string(c.id);
    out += ",\"weight\":" + JsonDouble(c.weight);
    out += ",\"score\":" + JsonDouble(c.score);
    out += ",\"sequence\":\"" + EscapeJson(c.sequence) + "\"}";
  }
  out += "]}";
  return out;
}

ProvenanceLedger::Persisted ProvenanceLedger::Export() const {
  std::lock_guard<std::mutex> lock(mu_);
  Persisted p;
  p.caps = caps_;
  p.evicted = evicted_;
  p.records.assign(records_.begin(), records_.end());
  return p;
}

std::string ProvenanceLedger::Validate(const Persisted& p) {
  const ProvenanceCaps& caps = p.caps;
  if (caps == ProvenanceCaps{0, 0, 0}) {
    // "No ledger attached" sentinel: nothing may ride along.
    if (p.evicted != 0) return "zero caps with nonzero evicted count";
    if (!p.records.empty()) return "zero caps with records";
    return "";
  }
  if (caps.max_incidents == 0 || caps.max_incidents > kMaxProvenanceIncidents)
    return "max_incidents out of range";
  if (caps.max_events == 0 || caps.max_events > kMaxProvenanceEvents)
    return "max_events out of range";
  if (caps.max_classes == 0 || caps.max_classes > kMaxProvenanceClasses)
    return "max_classes out of range";
  if (p.records.size() > caps.max_incidents)
    return "more records than max_incidents";
  for (std::size_t i = 0; i < p.records.size(); ++i) {
    const IncidentProvenance& r = p.records[i];
    const std::string where = "record " + std::to_string(i) + ": ";
    if (r.seq != p.evicted + i + 1) return where + "seq not contiguous";
    if (r.events.size() > caps.max_events)
      return where + "sampled events exceed max_events";
    if (r.events.size() > r.events_total)
      return where + "more sampled events than events_total";
    if (r.classes.size() > caps.max_classes)
      return where + "classes exceed max_classes";
    if (r.classes.size() > r.classes_total)
      return where + "more classes than classes_total";
    if (r.component_events > r.window_events)
      return where + "component larger than its window";
    for (std::size_t j = 0; j < r.events.size(); ++j) {
      if (r.events[j].admission > 1)
        return where + "event " + std::to_string(j) + " bad admission class";
    }
    for (std::size_t j = 0; j < r.classes.size(); ++j) {
      if (r.classes[j].id != j)
        return where + "class " + std::to_string(j) + " id out of order";
    }
  }
  return "";
}

bool ProvenanceLedger::Restore(Persisted p, std::string* error) {
  const std::string reason = Validate(p);
  if (!reason.empty()) {
    if (error != nullptr) *error = reason;
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!(p.caps == ProvenanceCaps{0, 0, 0}) && !(p.caps == caps_)) {
    if (error != nullptr) *error = "caps differ from this ledger's";
    return false;
  }
  records_.assign(std::make_move_iterator(p.records.begin()),
                  std::make_move_iterator(p.records.end()));
  evicted_ = p.caps == ProvenanceCaps{0, 0, 0} ? 0 : p.evicted;
  return true;
}

}  // namespace ranomaly::obs
