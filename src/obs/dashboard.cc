#include "obs/dashboard.h"

namespace ranomaly::obs {

// Kept as one raw string so the binary is the deployment unit: no asset
// directory, no CDN, no build-time bundler.  Everything below speaks
// only to the serve daemon's own JSON endpoints.
const char* DashboardHtml() {
  return R"rndash(<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>ranomaly live operations</title>
<style>
  :root { --ok:#2e7d32; --warn:#e6a700; --bad:#c62828; --ink:#1c2733;
          --dim:#5f6b76; --line:#d7dde3; --card:#ffffff; --bg:#f2f4f6;
          --accent:#1565c0; }
  body { font:14px/1.45 system-ui,sans-serif; margin:0; background:var(--bg);
         color:var(--ink); }
  header { display:flex; align-items:baseline; gap:16px; padding:12px 20px;
           background:var(--card); border-bottom:1px solid var(--line); }
  header h1 { font-size:17px; margin:0; }
  header .meta { color:var(--dim); font-size:12px; }
  header button { margin-left:auto; font:inherit; padding:2px 10px; }
  main { padding:16px 20px; max-width:1180px; margin:0 auto; }
  .grid { display:grid; grid-template-columns:repeat(auto-fill,minmax(250px,1fr));
          gap:12px; margin-bottom:16px; }
  .card { background:var(--card); border:1px solid var(--line);
          border-radius:6px; padding:10px 12px; }
  .card h2 { font-size:12px; font-weight:600; color:var(--dim); margin:0 0 4px;
             text-transform:uppercase; letter-spacing:.04em; }
  .card .big { font-size:22px; font-variant-numeric:tabular-nums; }
  .card .unit { font-size:12px; color:var(--dim); }
  .ladder { display:inline-block; padding:3px 14px; border-radius:4px;
            color:#fff; font-weight:700; font-size:18px; }
  .peers { display:flex; flex-wrap:wrap; gap:6px; }
  .peer { padding:2px 8px; border-radius:10px; font-size:12px; color:#fff; }
  svg.spark { width:100%; height:44px; display:block; }
  svg.tl { width:100%; height:84px; display:block; }
  #drill { white-space:pre-wrap; font:12px/1.5 ui-monospace,monospace;
           color:var(--ink); min-height:3em; }
  .err { color:var(--bad); font-size:12px; }
  a.inc { cursor:pointer; }
</style>
</head>
<body>
<header>
  <h1>ranomaly live operations</h1>
  <span class="meta" id="pos">replay position: &ndash;</span>
  <span class="meta err" id="err"></span>
  <button id="pause">pause</button>
</header>
<main>
  <div class="grid" id="cards"></div>
  <div class="grid">
    <div class="card" style="grid-column:1/-1">
      <h2>per-peer feed health</h2>
      <div class="peers" id="peers">&ndash;</div>
    </div>
  </div>
  <div class="card" style="margin-bottom:12px">
    <h2>incident timeline (click an incident for detail)</h2>
    <svg class="tl" id="timeline" preserveAspectRatio="none"></svg>
  </div>
  <div class="card">
    <h2>incident drilldown</h2>
    <div id="drill">select an incident above</div>
  </div>
</main>
<script>
"use strict";
const REFRESH_MS = 1000;
const CHARTS = [
  {name:"serve_events_ingested_total", label:"ingest rate", mode:"rate", unit:"ev/s"},
  {name:"serve_incidents_total", label:"incident rate", mode:"rate", unit:"inc/s"},
  {name:"serve_events_shed_total", label:"shed rate", mode:"rate", unit:"ev/s"},
  {name:"serve_queue_depth", label:"queue depth", mode:"value", unit:"events"},
  {name:"incident_detection_latency_seconds:p50", label:"detection latency p50", mode:"value", unit:"s"},
  {name:"incident_detection_latency_seconds:p90", label:"detection latency p90", mode:"value", unit:"s"},
  {name:"incident_detection_latency_seconds:p99", label:"detection latency p99", mode:"value", unit:"s"},
];
const LEVEL_COLOR = ["var(--ok)","var(--warn)","#e07b00","var(--bad)"];
const KIND_COLOR = {"session-reset":"#c62828", "route-leak":"#6a1b9a",
  "path-change":"#1565c0", "route-flap":"#e07b00",
  "med-oscillation":"#00838f", "unknown":"#5f6b76"};
let paused = false, resSec = null, incidents = [];

function esc(s) {
  return String(s).replace(/[&<>"]/g,
      c => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));
}
async function getJson(path) {
  const r = await fetch(path, {cache:"no-store"});
  if (!r.ok) throw new Error(path + " -> " + r.status);
  return r.json();
}
function values(series) {
  const out = [];
  for (const p of series.points) {
    const v = series.kind === "counter" && CHARTS_MODE(series) === "rate"
        ? p[2] : p[1];
    if (v !== null && v !== undefined) out.push({t:p[0], v:v});
  }
  return out;
}
function CHARTS_MODE(series) {
  const c = CHARTS.find(c => c.name === series.name);
  return c ? c.mode : "value";
}
function sparkline(pts) {
  if (pts.length === 0) return "<svg class=\"spark\"></svg>";
  const t0 = pts[0].t, t1 = pts[pts.length - 1].t || t0 + 1;
  let vmax = 0;
  for (const p of pts) vmax = Math.max(vmax, p.v);
  if (vmax <= 0) vmax = 1;
  const W = 240, H = 44, span = Math.max(1e-9, t1 - t0);
  const coords = pts.map(p =>
      ((p.t - t0) / span * W).toFixed(1) + "," +
      (H - 3 - p.v / vmax * (H - 8)).toFixed(1));
  return "<svg class=\"spark\" viewBox=\"0 0 " + W + " " + H + "\"" +
      " preserveAspectRatio=\"none\"><polyline fill=\"none\"" +
      " stroke=\"var(--accent)\" stroke-width=\"1.5\" points=\"" +
      coords.join(" ") + "\"/></svg>";
}
function fmt(v) {
  if (v === null || v === undefined) return "–";
  if (Math.abs(v) >= 1000) return Math.round(v).toLocaleString("en-US");
  return (Math.round(v * 100) / 100).toString();
}
function renderCards(byName, level) {
  const cards = [];
  cards.push("<div class=\"card\"><h2>degradation ladder</h2>" +
      "<span class=\"ladder\" style=\"background:" +
      LEVEL_COLOR[level] + "\">L" + level + "</span>" +
      "<span class=\"unit\"> " + ["nominal","tracing suspended",
      "cadence halved","sampling arrivals"][level] + "</span></div>");
  for (const c of CHARTS) {
    const s = byName[c.name];
    const pts = s ? values(s) : [];
    const last = pts.length ? pts[pts.length - 1].v : null;
    cards.push("<div class=\"card\"><h2>" + esc(c.label) + "</h2>" +
        "<span class=\"big\">" + fmt(last) + "</span>" +
        " <span class=\"unit\">" + esc(c.unit) + "</span>" + sparkline(pts) +
        "</div>");
  }
  document.getElementById("cards").innerHTML = cards.join("");
}
function renderPeers(components) {
  const chips = [];
  for (const c of components) {
    if (!c.name.startsWith("peer/")) continue;
    const color = c.state === "OK" ? "var(--ok)" :
        c.state === "DEGRADED" ? "var(--warn)" : "var(--bad)";
    chips.push("<span class=\"peer\" style=\"background:" + color +
        "\" title=\"" + esc(c.reason || c.state) + "\">" +
        esc(c.name.slice(5)) + "</span>");
  }
  document.getElementById("peers").innerHTML =
      chips.length ? chips.join("") : "no peers observed yet";
}
function renderTimeline(tl) {
  incidents = tl.incidents;
  const svg = document.getElementById("timeline");
  if (incidents.length === 0) {
    svg.innerHTML = "<text x=\"8\" y=\"46\" fill=\"var(--dim)\"" +
        " font-size=\"12\">no incidents yet</text>";
    return;
  }
  const t0 = tl.t0_sec;
  let t1 = t0 + 1;
  for (const i of incidents) t1 = Math.max(t1, i.end_sec, i.detected_at_sec);
  const W = 1100, H = 84, span = t1 - t0;
  const x = t => 4 + (t - t0) / span * (W - 8);
  const parts = ["<line x1=\"0\" y1=\"70\" x2=\"" + W +
      "\" y2=\"70\" stroke=\"var(--line)\"/>"];
  incidents.forEach((inc, idx) => {
    const color = KIND_COLOR[inc.kind] || KIND_COLOR["unknown"];
    const x0 = x(inc.begin_sec), x1 = Math.max(x0 + 3, x(inc.end_sec));
    const y = 14 + (idx % 4) * 13;
    parts.push("<g class=\"inc\" onclick=\"drill(" + idx + ")\">" +
        "<rect x=\"" + x0.toFixed(1) + "\" y=\"" + y + "\" width=\"" +
        (x1 - x0).toFixed(1) + "\" height=\"10\" rx=\"2\" fill=\"" + color +
        "\"><title>#" + esc(inc.seq) + " " + esc(inc.kind) + "</title></rect>" +
        "<line x1=\"" + x(inc.detected_at_sec).toFixed(1) + "\" y1=\"" + y +
        "\" x2=\"" + x(inc.detected_at_sec).toFixed(1) + "\" y2=\"70\"" +
        " stroke=\"" + color + "\" stroke-dasharray=\"2 2\"/></g>");
  });
  svg.setAttribute("viewBox", "0 0 " + W + " " + H);
  svg.innerHTML = parts.join("");
}
function drill(idx) {
  const inc = incidents[idx];
  if (!inc) return;
  const base =
      "#" + inc.seq + "  " + inc.kind + "\n" +
      "stem:     " + inc.stem + "\n" +
      "raw s':   " + inc.top_sequence + "\n" +
      "summary:  " + inc.summary + "\n" +
      "span:     " + inc.begin_sec + "s .. " + inc.end_sec +
      "s, detected at " + inc.detected_at_sec + "s (latency " +
      inc.detection_latency_sec + "s)\n" +
      "flags:    feed_degraded=" + inc.feed_degraded +
      " load_shed=" + inc.load_shed + "\n" +
      "exemplar: trace span " + inc.exemplar.span + " tick #" +
      inc.exemplar.tick + " (run under `ranomaly trace` and search the " +
      "Chrome trace for this slice)";
  const el = document.getElementById("drill");
  el.textContent = base + "\n\nevidence: loading …";
  fetch("/api/incidents/" + encodeURIComponent(inc.seq) + "/evidence",
        {cache:"no-store"})
    .then(r => r.ok ? r.json() : Promise.reject(new Error("HTTP " + r.status)))
    .then(ev => { el.textContent = base + "\n\n" + evidenceText(ev); })
    .catch(e => {
      el.textContent = base + "\n\nevidence: unavailable (" +
          String(e.message || e) + ")";
    });
}
function evidenceText(ev) {
  const lines = ["evidence (trace span " + ev.trace.span + " tick #" +
      ev.trace.tick + ")"];
  lines.push("path:     " + ev.path.join("  →  "));
  lines.push("window:   " + ev.component_events + " of " + ev.window_events +
      " analyzed events in the component (weight " + ev.component_weight +
      ")");
  for (const s of ev.stages) {
    lines.push("stage:    " + s.stage + "  " + s.seconds + "s");
  }
  lines.push("events (" + ev.events.length + " of " + ev.events_total +
      " contributing, deterministic stride):");
  for (const e of ev.events) {
    lines.push("  #" + e.id + "  t=" + e.time_sec + "s  " + e.type + "  " +
        e.peer + "  " + e.prefix + "  [" + e.admission + "]");
  }
  lines.push("classes (" + ev.classes.length + " of " + ev.classes_total +
      " distinct):");
  for (const c of ev.classes) {
    lines.push("  #" + c.id + "  weight=" + c.weight + "  score=" + c.score +
        "  " + c.sequence);
  }
  return lines.join("\n");
}
async function tick() {
  if (paused) return;
  try {
    if (resSec === null) {
      const list = await getJson("/api/series");
      resSec = list.tiers.length ? list.tiers[0].resolution_sec : 1;
    }
    const byName = {};
    const wanted = CHARTS.map(c => c.name).concat(["serve_shed_level"]);
    await Promise.all(wanted.map(async name => {
      try {
        byName[name] = await getJson("/api/series?name=" +
            encodeURIComponent(name) + "&res=" + resSec);
      } catch (e) { /* series appears once first observed */ }
    }));
    const varz = await getJson("/varz");
    const tl = await getJson("/api/incidents/timeline");
    const level = lastValue(byName.serve_shed_level);
    renderCards(byName, Math.max(0, Math.min(3, Math.round(level || 0))));
    renderPeers(varz.health.components || []);
    renderTimeline(tl);
    const pos = varz.metrics.gauges["serve_replay_position_seconds"];
    document.getElementById("pos").textContent =
        "replay position: " + (pos === undefined ? "–" : pos + "s");
    document.getElementById("err").textContent = "";
  } catch (e) {
    document.getElementById("err").textContent = String(e);
  }
}
function lastValue(series) {
  if (!series || series.points.length === 0) return 0;
  return series.points[series.points.length - 1][1];
}
document.getElementById("pause").onclick = () => {
  paused = !paused;
  document.getElementById("pause").textContent = paused ? "resume" : "pause";
};
tick();
setInterval(tick, REFRESH_MS);
</script>
</body>
</html>
)rndash";
}

}  // namespace ranomaly::obs
