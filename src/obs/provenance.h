// Bounded-memory per-incident provenance ledger: the evidence behind
// "explain this incident" (/api/incidents/<id>/evidence, the dashboard
// drill-down panel, and `ranomaly explain`).
//
// The pipeline populates one record per incident as it detects: a
// deterministic strided sample of the contributing raw events (stream
// event id, peer, prefix, simulated time, admission class), the
// distinct stem classes among those events (id, weight, representative
// sequence, score), the correlation path the detection took, and a
// per-stage detection-latency decomposition in *simulated* seconds.
// Wall-clock timings stay in the tracer; the record instead carries the
// `live.tick` TraceSpan annotation (`trace_tick`) that links it to the
// span covering the detecting tick, so everything in the ledger — and
// therefore the rendered evidence JSON — is bit-identical at any
// RANOMALY_THREADS setting.
//
// Memory is bounded by construction: per-record caps on sampled events
// and classes (enforced at Attach by truncation) and a cap on retained
// records (oldest incident evicted first, counted, never silently).
// The caps ride in the RNC1 PROV checkpoint section (docs/FORMATS.md)
// so a restore re-validates them, and the decode cross-checks every
// record's incident-id linkage against the INCD log.
//
// Standard-library-only, like metrics.h.  Thread-safe: the replay
// thread attaches while the HTTP thread renders.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace ranomaly::obs {

// One sampled contributing raw event.  `stream_index` is the event's
// 0-based position in the source capture — `ranomaly explain` and the
// scorer resolve it back to the raw update.  `admission` records how
// the live runner admitted it: 0 = direct, 1 = inside a load-shed
// window (the event survived deterministic sampling, so counts around
// it are lower bounds).
struct ProvenanceEvent {
  std::uint64_t stream_index = 0;
  double time_sec = 0.0;  // simulated seconds
  std::string type;       // "A" / "W"
  std::string peer;
  std::string prefix;
  std::uint8_t admission = 0;
  bool operator==(const ProvenanceEvent&) const = default;
};

// One distinct (peer, nexthop, as-path, prefix) sequence class among
// the sampled contributing events.  `id` numbers classes in
// first-occurrence order within the sample; `weight` counts sampled
// events in the class and `score` is its fraction of the sample.
struct ProvenanceClass {
  std::uint32_t id = 0;
  double weight = 0.0;
  double score = 0.0;
  std::string sequence;  // rendered like StemmingResult::SequenceLabel
  bool operator==(const ProvenanceClass&) const = default;
};

// One stage of the detection-latency decomposition, in simulated
// seconds (deterministic; wall timings live in the trace file).
struct ProvenanceStage {
  std::string stage;
  double seconds = 0.0;
  bool operator==(const ProvenanceStage&) const = default;
};

struct IncidentProvenance {
  std::uint64_t seq = 0;  // IncidentLog sequence number (1-based)
  // Stem identity as raw tagged symbol values — the PROV decoder
  // cross-checks these against the INCD log's entry for `seq`.
  std::uint64_t stem_first = 0;
  std::uint64_t stem_second = 0;
  std::string stem;  // formatted stem label
  std::string kind;  // classified incident kind
  // The correlation path taken, outermost hop first, e.g.
  // ["live:tick 12", "window:stemming", "component:AS1 - AS2",
  //  "classify:session-reset"].
  std::vector<std::string> path;
  std::uint64_t window_events = 0;     // analyzed window size at detection
  std::uint64_t component_events = 0;  // events the component claimed
  double component_weight = 0.0;       // weighted class mass (s' score)
  std::uint64_t events_total = 0;      // contributing events before sampling
  std::vector<ProvenanceEvent> events;
  std::uint64_t classes_total = 0;     // distinct classes in the sample
  std::vector<ProvenanceClass> classes;
  std::vector<ProvenanceStage> stages;
  std::uint64_t trace_tick = 0;  // live.tick span annotation value
  bool operator==(const IncidentProvenance&) const = default;
};

// Hard bounds on the caps themselves (Validate rejects beyond these).
inline constexpr std::uint32_t kMaxProvenanceIncidents = 65536;
inline constexpr std::uint32_t kMaxProvenanceEvents = 4096;
inline constexpr std::uint32_t kMaxProvenanceClasses = 4096;

struct ProvenanceCaps {
  std::uint32_t max_incidents = 512;  // retained records (oldest evicted)
  std::uint32_t max_events = 32;      // sampled events per record
  std::uint32_t max_classes = 16;     // classes per record
  bool operator==(const ProvenanceCaps&) const = default;
};

class ProvenanceLedger {
 public:
  explicit ProvenanceLedger(ProvenanceCaps caps = {});

  ProvenanceLedger(const ProvenanceLedger&) = delete;
  ProvenanceLedger& operator=(const ProvenanceLedger&) = delete;

  // Adds one record, truncating its events/classes to the caps and
  // evicting the oldest record (counted) beyond max_incidents.  Records
  // must arrive in strictly increasing `seq` order starting at 1 — the
  // incident log's append order guarantees it.
  void Attach(IncidentProvenance record);

  std::size_t size() const;
  std::uint64_t evicted() const;

  // The evidence JSON for one incident, or nullopt when the seq is
  // unknown or its record was evicted (callers map that to 404; a
  // malformed id never reaches the ledger).  Deterministic bytes for
  // equal state.
  std::optional<std::string> EvidenceJson(std::uint64_t seq) const;

  // Checkpoint state (the RNC1 PROV section).  Zeroed caps with no
  // records mean "no ledger was attached" and restore to empty — the
  // default, so a runner without a ledger encodes the sentinel.
  struct Persisted {
    ProvenanceCaps caps{0, 0, 0};
    std::uint64_t evicted = 0;
    std::vector<IncidentProvenance> records;  // oldest -> newest
  };
  Persisted Export() const;

  // Structural validation shared by Restore and the checkpoint decoder:
  // returns "" or a reason ("record 2: seq not contiguous").  Enforces
  // the caps (and their hard bounds), strictly contiguous seqs starting
  // at evicted + 1, and per-record sample/class counts within caps.
  static std::string Validate(const Persisted& p);

  // Replaces the ledger.  Fails (ledger untouched, *error set) if
  // Validate rejects `p` or its caps differ from this ledger's; an
  // empty zero-caps `p` just clears the ledger.
  bool Restore(Persisted p, std::string* error);

  const ProvenanceCaps& caps() const { return caps_; }

 private:
  mutable std::mutex mu_;
  ProvenanceCaps caps_;
  std::deque<IncidentProvenance> records_;  // oldest -> newest
  std::uint64_t evicted_ = 0;
};

}  // namespace ranomaly::obs
