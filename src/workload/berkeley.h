// The Berkeley scenario — paper Section II & case studies IV-A..IV-D.
//
// A faithful model of the U.C. Berkeley site of Aug-Dec 2003:
//
//   * four BGP edge routers (128.32.1.3, .200, .222, .10) in AS25 with an
//     iBGP full mesh, monitored by the collector;
//   * upstream CalREN (AS11423) with the three Berkeley-facing nexthops
//     128.32.0.66 / .70 (rate-limited commodity paths to 128.32.1.3) and
//     128.32.0.90 (the unlimited path to 128.32.1.200), plus a core
//     router peering with QWest (AS209) and Abilene (AS11537);
//   * CalREN-2 (AS11422, the mid-consolidation second AS) with its own
//     QWest session and a peering to Packet Clearing House (AS10927) that
//     is misconfigured as a customer session — the root cause that lets
//     the IV-D route leak in;
//   * CENIC (AS2152) with Los Nettos (AS226) and KDDI (AS2516) behind it,
//     tagging 2152:65297 — correctly on Los Nettos routes and, when the
//     mis-tag option is on, wrongly on KDDI routes too (IV-C);
//   * commodity prefixes reached through tier-1s behind QWest
//     (701/1239/7018/1299/3356), split onto the two rate limiters by
//     CalREN communities 11423:65401/65402 — with the skewed split of
//     IV-A baked into the split prefix-lists;
//   * an AT&T (AS7018) backdoor session on 128.32.1.222 via nexthop
//     169.229.0.157 carrying two prefixes (IV-B);
//   * the community policies of Section III-D.1 on 128.32.1.3 and
//     128.32.1.200, built by *parsing their IOS-style configs* through
//     net::RouterConfig.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/prefix.h"
#include "net/simulator.h"
#include "net/topology.h"
#include "util/time.h"

namespace ranomaly::workload {

// The CalREN/CENIC community plan (values from the paper).
inline constexpr bgp::Community kCommodityTag{11423, 65350};
inline constexpr bgp::Community kMemberTag{11423, 65300};
inline constexpr bgp::Community kSplitATag{11423, 65401};
inline constexpr bgp::Community kSplitBTag{11423, 65402};
inline constexpr bgp::Community kLosNettosTag{2152, 65297};

struct BerkeleyOptions {
  std::size_t commodity_prefixes = 400;
  std::size_t internet2_prefixes = 30;
  std::size_t member_prefixes = 30;
  std::size_t losnettos_prefixes = 16;
  std::size_t kddi_prefixes = 34;  // ~32%/68% of the 2152:65297 tag (IV-C)
  // IV-C: when true, CENIC wrongly tags KDDI routes with 2152:65297.
  bool mistag_kddi = true;
  // IV-B: the AT&T backdoor on 128.32.1.222.
  bool with_backdoor = true;
  // IV-D: how many commodity prefixes PCH leaks when injected.
  std::size_t leak_prefixes = 100;
  std::uint64_t seed = 7;
};

struct BerkeleyNet {
  net::Topology topology;

  // Berkeley AS25 edge routers (the monitored iBGP peers).
  net::RouterIndex r13 = 0;    // 128.32.1.3, commodity / rate-limited
  net::RouterIndex r1200 = 0;  // 128.32.1.200, everything / unlimited
  net::RouterIndex r1222 = 0;  // 128.32.1.222, backdoor to AT&T
  net::RouterIndex r110 = 0;   // 128.32.1.10, fourth edge router
  std::vector<net::RouterIndex> monitored;

  // CalREN AS11423.
  net::RouterIndex c66 = 0;    // 128.32.0.66 (rate limiter A)
  net::RouterIndex c70 = 0;    // 128.32.0.70 (rate limiter B)
  net::RouterIndex c90 = 0;    // 128.32.0.90 (unlimited)
  net::RouterIndex ccore = 0;

  net::RouterIndex c11422 = 0;  // CalREN-2 AS11422
  net::RouterIndex cenic = 0;   // AS2152
  net::RouterIndex qwest = 0;   // AS209
  net::RouterIndex abilene = 0; // AS11537
  net::RouterIndex losnettos = 0;  // AS226
  net::RouterIndex kddi = 0;       // AS2516
  net::RouterIndex att_backdoor = 0;  // AS7018, address 169.229.0.157
  net::RouterIndex pch = 0;           // AS10927, the leaking peer
  std::vector<net::RouterIndex> tier1s;  // behind QWest

  // Links the injectors and tests need.
  net::LinkIndex link_r13_c66 = 0;
  net::LinkIndex link_r13_c70 = 0;
  net::LinkIndex link_r1200_c90 = 0;
  net::LinkIndex link_r1222_att = 0;
  net::LinkIndex link_c11422_pch = 0;

  // Prefix sets.
  std::vector<bgp::Prefix> commodity_a;  // split onto 128.32.0.66
  std::vector<bgp::Prefix> commodity_b;  // split onto 128.32.0.70
  std::vector<bgp::Prefix> internet2;
  std::vector<bgp::Prefix> members;
  std::vector<bgp::Prefix> losnettos_prefixes;
  std::vector<bgp::Prefix> kddi_prefixes;
  std::vector<bgp::Prefix> backdoor_prefixes;
  std::vector<bgp::Prefix> leakable;  // subset of commodity_a PCH can leak

  // Per-prefix origination plan: (router, prefix, seed attributes).
  struct Origination {
    net::RouterIndex router = 0;
    bgp::Prefix prefix;
    bgp::PathAttributes attrs;
  };
  std::vector<Origination> originations;

  // IOS-style configuration texts for the D.1 policy correlator.
  std::string r13_config_text;
  std::string r1200_config_text;

  // Installs every origination into a simulator (call before Start()).
  void SeedRoutes(net::Simulator& sim) const;

  // Friendly AS names for TAMP pictures ("QWest (209)" etc.).
  std::vector<std::pair<bgp::AsNumber, std::string>> AsNames() const;
};

BerkeleyNet BuildBerkeley(const BerkeleyOptions& options = {});

// IV-D injector: PCH announces `net.leakable` with the long
// {1909 195 2152 3356} path, holds for `leak_duration`, withdraws, and
// repeats `cycles` times with `gap` between cycles.
void InjectRouteLeak(net::Simulator& sim, const BerkeleyNet& net,
                     util::SimTime first_at, util::SimDuration leak_duration,
                     util::SimDuration gap, std::size_t cycles);

}  // namespace ranomaly::workload
