#include "workload/eventgen.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace ranomaly::workload {

EventStreamGenerator::EventStreamGenerator(const SyntheticInternet& internet,
                                           std::uint64_t seed)
    : internet_(internet), rng_(seed) {
  routes_by_peer_.resize(internet_.peers().size());
  std::unordered_map<std::uint32_t, std::size_t> peer_index;
  for (std::size_t p = 0; p < internet_.peers().size(); ++p) {
    peer_index[internet_.peers()[p].value()] = p;
  }
  const auto& routes = internet_.routes();
  for (std::size_t i = 0; i < routes.size(); ++i) {
    routes_by_peer_[peer_index.at(routes[i].peer.value())].push_back(i);
  }
}

void EventStreamGenerator::Announce(util::SimTime t,
                                    const collector::RouteEntry& route) {
  bgp::Event e;
  e.time = t;
  e.peer = route.peer;
  e.type = bgp::EventType::kAnnounce;
  e.prefix = route.prefix;
  e.attrs = route.attrs;
  events_.push_back(std::move(e));
}

void EventStreamGenerator::Withdraw(util::SimTime t,
                                    const collector::RouteEntry& route) {
  bgp::Event e;
  e.time = t;
  e.peer = route.peer;
  e.type = bgp::EventType::kWithdraw;
  e.prefix = route.prefix;
  e.attrs = route.attrs;  // augmented old attributes
  events_.push_back(std::move(e));
}

void EventStreamGenerator::SessionReset(std::size_t peer_index,
                                        util::SimTime at,
                                        util::SimDuration down_for,
                                        util::SimDuration convergence_spread,
                                        double exploration_probability) {
  const auto& route_ids = routes_by_peer_.at(peer_index);
  const auto& routes = internet_.routes();
  const auto& opts = internet_.options();
  for (const std::size_t id : route_ids) {
    const collector::RouteEntry& route = routes[id];
    const util::SimTime base =
        at + static_cast<util::SimDuration>(
                 rng_.NextBelow(static_cast<std::uint64_t>(
                     std::max<util::SimDuration>(1, convergence_spread))));
    // Path exploration: before the final withdrawal the router may try an
    // alternate (longer) path it briefly believes in.
    if (rng_.NextBool(exploration_probability)) {
      collector::RouteEntry explore = route;
      const std::size_t alt_t1 = rng_.NextBelow(opts.tier1_count);
      explore.attrs.as_path =
          internet_.PathVia(alt_t1, alt_t1 + 1, id % opts.origin_as_count)
              .Prepend(opts.local_as, 1);  // longer path
      Announce(base, explore);
      Withdraw(base + util::kSecond / 2, explore);
    } else {
      Withdraw(base, route);
    }
    // Re-announcement after the session re-establishes.
    const util::SimTime back =
        at + down_for +
        static_cast<util::SimDuration>(rng_.NextBelow(
            static_cast<std::uint64_t>(
                std::max<util::SimDuration>(1, convergence_spread))));
    Announce(back, route);
  }
}

void EventStreamGenerator::Tier1Failover(std::size_t tier1_index,
                                         std::size_t alternate_index,
                                         util::SimTime at,
                                         util::SimDuration convergence_spread) {
  const auto& routes = internet_.routes();
  const auto& opts = internet_.options();
  const bgp::AsNumber failed =
      internet_.PathVia(tier1_index, 0, 0).asns().at(1);
  for (std::size_t id = 0; id < routes.size(); ++id) {
    const collector::RouteEntry& route = routes[id];
    const auto& asns = route.attrs.as_path.asns();
    if (asns.size() < 2 || asns[1] != failed) continue;
    const util::SimTime base =
        at + static_cast<util::SimDuration>(rng_.NextBelow(
                 static_cast<std::uint64_t>(
                     std::max<util::SimDuration>(1, convergence_spread))));
    Withdraw(base, route);
    collector::RouteEntry alt = route;
    alt.attrs.as_path = internet_.PathVia(
        alternate_index, id % opts.transit_count, id % opts.origin_as_count);
    Announce(base + util::kSecond, alt);
  }
}

void EventStreamGenerator::Churn(util::SimTime begin, util::SimTime end,
                                 std::size_t count) {
  if (end <= begin) throw std::invalid_argument("Churn: empty interval");
  const auto& routes = internet_.routes();
  if (routes.empty()) return;
  for (std::size_t i = 0; i < count / 2; ++i) {
    const std::size_t id = rng_.NextBelow(routes.size());
    const util::SimTime t =
        begin + static_cast<util::SimDuration>(
                    rng_.NextBelow(static_cast<std::uint64_t>(end - begin)));
    Withdraw(t, routes[id]);
    Announce(t + 30 * util::kSecond, routes[id]);
  }
}

void EventStreamGenerator::PrefixOscillation(std::size_t prefix_index,
                                             util::SimTime begin,
                                             util::SimTime end,
                                             util::SimDuration period) {
  if (period <= 0) throw std::invalid_argument("PrefixOscillation: period");
  // Every monitored peer's route flaps: one upstream instability is seen
  // by the whole mesh (the Section IV-E shape, where each flap produced
  // ~200 events across the 67 reflectors).
  const auto& routes = internet_.routes();
  const bgp::Prefix prefix = internet_.prefixes().at(prefix_index);
  std::vector<const collector::RouteEntry*> flapping;
  for (const auto& r : routes) {
    if (r.prefix == prefix) flapping.push_back(&r);
  }
  if (flapping.empty()) return;
  for (util::SimTime t = begin; t + period / 2 < end; t += period) {
    for (const auto* route : flapping) {
      Withdraw(t, *route);
      Announce(t + period / 2, *route);
    }
  }
}

const collector::RouteEntry* EventStreamGenerator::RouteOf(
    std::size_t peer_index, std::size_t prefix_index) const {
  const bgp::Prefix prefix = internet_.prefixes().at(prefix_index);
  for (const std::size_t id : routes_by_peer_.at(peer_index)) {
    if (internet_.routes()[id].prefix == prefix) {
      return &internet_.routes()[id];
    }
  }
  return nullptr;
}

collector::EventStream EventStreamGenerator::Take() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const bgp::Event& a, const bgp::Event& b) {
                     return a.time < b.time;
                   });
  collector::EventStream stream;
  for (auto& e : events_) stream.Append(std::move(e));
  events_.clear();
  return stream;
}

}  // namespace ranomaly::workload
