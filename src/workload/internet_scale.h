// Internet-scale AS-topology workload: CAIDA serial-2 relationships in,
// a collector event stream with millions of routes out.
//
// The paper's headline datasets are real BGP feeds covering hundreds of
// thousands of prefixes; the scaled meshes in internet.h stop an order
// of magnitude short.  This generator closes the gap: it loads (or
// synthesizes) an AS-relationship graph in CAIDA's serial-2 format
// ("asn1|asn2|rel", rel -1 = asn1 is the provider of asn2, 0 = peers),
// ranks the graph by customer-cone depth, propagates a beacon from each
// monitored vantage AS Gao-Rexford-style — customer routes up, one peer
// crossing, provider routes down, each rank's ASes processed as one
// deterministic ThreadPool wave — and reverses the resulting per-AS best
// paths into the full-table announcements a route collector peered with
// those vantages would record.  The events are pushed through the real
// collection layer (collector::ApplyFeed), so withdrawals are augmented
// from the Adj-RIB-In and peer health is accounted exactly as in a live
// deployment.
//
// Determinism: every wave writes only its own rank's slots and reads
// only settled ranks, the peer crossing double-buffers, and event
// emission is chunked with in-order merges — the output stream is
// bit-identical at any RANOMALY_THREADS (the PR 7 shard/merge contract).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "collector/event_stream.h"
#include "util/time.h"

namespace ranomaly::workload {

// One AS-relationship edge in CAIDA serial-2 terms.
struct AsRelationship {
  std::uint32_t asn1 = 0;
  std::uint32_t asn2 = 0;
  std::int8_t rel = 0;  // -1: asn1 is the provider of asn2; 0: peers

  friend bool operator==(const AsRelationship&, const AsRelationship&) =
      default;
};

// Parse accounting for serial-2 input, in the LoadBinary-diagnostics
// idiom of PR 1: malformed lines are counted by failure mode,
// rate-limit-logged with their line numbers, and surfaced in a summary —
// never a crash, never a silent drop.
struct Serial2Diagnostics {
  std::size_t lines = 0;          // total lines read
  std::size_t comments = 0;       // '#' comment lines
  std::size_t edges = 0;          // well-formed, deduplicated edges kept
  std::size_t bad_field_count = 0;   // not exactly asn1|asn2|rel
  std::size_t bad_asn = 0;           // non-integer or > 2^32-1 ASN
  std::size_t bad_rel = 0;           // rel other than -1 or 0
  std::size_t self_loops = 0;        // asn1 == asn2
  std::size_t duplicate_edges = 0;   // same pair, same relationship
  std::size_t conflicting_duplicates = 0;  // same pair, different rel
  std::size_t first_bad_line = 0;    // 1-based; 0 = clean parse

  std::size_t Malformed() const {
    return bad_field_count + bad_asn + bad_rel + self_loops +
           duplicate_edges + conflicting_duplicates;
  }
  // "120001 lines: 119988 edges, 2 comments, 11 malformed (3 bad ASN,
  //  ...; first at line 17)"
  std::string Summary() const;
};

// Parses serial-2 text.  Malformed lines are dropped loudly (counted in
// `diag`, rate-limit-logged with line numbers); duplicate pairs keep
// their first relationship.  Returns the edges in file order.
std::vector<AsRelationship> ParseSerial2(std::istream& is,
                                         Serial2Diagnostics& diag);

// Writes edges as serial-2 text (with a '#' header comment), the exact
// format ParseSerial2 accepts — save/parse round-trips reproduce the
// edge list verbatim.
void WriteSerial2(std::ostream& os, std::span<const AsRelationship> edges);

struct InternetScaleOptions {
  // When set, relationships are loaded from this serial-2 file instead
  // of being synthesized.
  std::string relationships_path;

  // --- synthetic-topology knobs (ignored when loading from a file) ----
  std::size_t as_count = 32'000;
  std::size_t tier1_count = 12;      // provider-free clique at the top
  std::size_t mid_tier_count = 1'400;  // transit ASes below the clique
  std::uint64_t seed = 42;

  // --- workload knobs -------------------------------------------------
  std::size_t prefix_count = 210'000;      // spread over all ASes
  std::size_t monitored_peer_count = 5;    // vantages, largest cones first
  util::SimDuration table_dump_duration = 10 * util::kMinute;
  // Background churn: this fraction of routes flaps (withdraw +
  // re-announce) during the post-dump window — the Section IV-E "grass".
  double flap_fraction = 0.05;
  util::SimDuration churn_duration = 20 * util::kMinute;
  // Structured anomaly: a contiguous block of origin ASes covering
  // roughly this fraction of prefixes fails (withdrawals at every
  // vantage) and heals a few minutes later — the stemmable incident.
  double outage_fraction = 0.02;
  // Single-prefix persistent oscillation (Section IV-F), one cycle per
  // 30 s of the churn window; 0 disables.
  std::size_t oscillating_prefixes = 1;
  // Analysis threads for the propagation waves; 0 = RANOMALY_THREADS.
  std::size_t threads = 0;
};

// The relationship graph in dense-index form (index = rank of the ASN in
// ascending order), with CSR adjacency split by role and the
// customer-cone wave ranking the propagation runs on.
struct AsGraph {
  std::vector<std::uint32_t> asns;  // dense index -> ASN, ascending

  // CSR neighbor lists (dense indices), each sorted by neighbor ASN.
  std::vector<std::uint32_t> customer_offsets, customers;
  std::vector<std::uint32_t> provider_offsets, providers;
  std::vector<std::uint32_t> peer_offsets, peers;

  // Wave rank: 0 for customer-free stubs, 1 + max(rank of customers)
  // otherwise, so every provider outranks each of its customers.
  std::vector<std::uint32_t> rank;
  // AS indices grouped by rank: wave r is rank_members[rank_offsets[r]
  // .. rank_offsets[r+1]).
  std::vector<std::uint32_t> rank_offsets;
  std::vector<std::uint32_t> rank_members;
  std::size_t max_rank = 0;

  std::size_t edge_count = 0;
  // Provider loops (impossible in a sane economy, present in malformed
  // inputs) are broken deterministically; the dropped edges are counted.
  std::size_t cycle_edges_dropped = 0;

  std::size_t size() const { return asns.size(); }
  std::span<const std::uint32_t> CustomersOf(std::size_t i) const {
    return {customers.data() + customer_offsets[i],
            customers.data() + customer_offsets[i + 1]};
  }
  std::span<const std::uint32_t> ProvidersOf(std::size_t i) const {
    return {providers.data() + provider_offsets[i],
            providers.data() + provider_offsets[i + 1]};
  }
  std::span<const std::uint32_t> PeersOf(std::size_t i) const {
    return {peers.data() + peer_offsets[i],
            peers.data() + peer_offsets[i + 1]};
  }
};

// Builds the dense graph from an edge list (order-insensitive: the dense
// indexing sorts by ASN, so any permutation of the same edges yields the
// same graph).
AsGraph BuildAsGraph(std::span<const AsRelationship> edges);

// Number of ASes in `as_index`'s customer cone (itself included) — the
// CAIDA ranking metric; BFS over customer edges.
std::size_t CustomerConeSize(const AsGraph& graph, std::size_t as_index);

// Synthesizes a serial-2 edge list with the internet's shape: a tier-1
// peering clique, a multi-homed transit hierarchy, stub leaves, and
// same-tier peering — deterministic for a given options.seed.
std::vector<AsRelationship> GenerateTopology(
    const InternetScaleOptions& options);

// One monitored vantage: the AS a collector session peers with.
struct VantageInfo {
  std::uint32_t asn = 0;
  bgp::Ipv4Addr peer;            // the collector-facing session address
  std::size_t customer_cone = 0;
  std::size_t routes = 0;        // reachable prefixes at this vantage
};

struct InternetScaleResult {
  collector::EventStream stream;
  Serial2Diagnostics parse;  // zero edges when synthesized directly
  std::vector<VantageInfo> vantages;

  std::size_t as_count = 0;
  std::size_t edge_count = 0;
  std::size_t cycle_edges_dropped = 0;
  std::size_t max_rank = 0;
  std::size_t prefix_count = 0;  // distinct prefixes announced
  std::size_t route_count = 0;   // (vantage, prefix) routes in the dump
  std::size_t flap_count = 0;    // churn flaps emitted
  std::size_t outage_routes = 0; // routes withdrawn by the outage

  std::string Summary() const;
};

// The tentpole: load-or-generate the topology, rank it, propagate
// Gao-Rexford beacons from every vantage in deterministic rank waves,
// and emit the table dump + churn + outage through the collection layer.
// Returns nullopt (with `*error` set) when a relationships file cannot
// be opened or parses to an unusable graph.
std::optional<InternetScaleResult> BuildInternetScale(
    const InternetScaleOptions& options, std::string* error = nullptr);

}  // namespace ranomaly::workload
