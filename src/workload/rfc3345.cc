#include "workload/rfc3345.h"

namespace ranomaly::workload {
namespace {

using bgp::Ipv4Addr;
using bgp::Prefix;
using net::LinkSpec;
using net::PeerRelation;
using net::RouterSpec;

constexpr bgp::AsNumber kIspAs = 1000;
constexpr bgp::AsNumber kAsB = 200;
constexpr bgp::AsNumber kAsC = 300;

const Ipv4Addr kNexthopB1(20, 0, 0, 1);  // MED 1 exit
const Ipv4Addr kNexthopB0(20, 0, 0, 2);  // MED 0 exit
const Ipv4Addr kNexthopC(30, 0, 0, 1);   // AS-C exit

// Cluster 3's IGP view closes the preference cycle: the b0 exit is far
// (cost 6) while b1 and c are near (cost 1).  Everyone else is
// equidistant.  Found by exhaustive search over the cost grid; any matrix
// with this shape oscillates.
std::uint32_t Cluster3Cost(Ipv4Addr nexthop) {
  return nexthop == kNexthopB0 ? 6 : 1;
}

}  // namespace

void Rfc3345Net::SeedRoutes(net::Simulator& sim) const {
  for (const Origination& o : originations) {
    sim.Originate(o.router, o.prefix, o.attrs);
  }
}

Rfc3345Net BuildRfc3345(bool deterministic_med) {
  Rfc3345Net net;
  net::Topology& topo = net.topology;
  net.prefix = Prefix(Ipv4Addr(4, 5, 0, 0), 16);

  auto internal_router = [&](const char* name, Ipv4Addr addr, bool rr,
                             bool cluster3) {
    RouterSpec spec{name, addr, kIspAs, 0, rr, {}};
    spec.decision.deterministic_med = deterministic_med;
    if (cluster3) spec.decision.igp_cost = Cluster3Cost;
    return topo.AddRouter(std::move(spec));
  };
  net.rr1 = internal_router("rr1", Ipv4Addr(10, 0, 0, 1), true, false);
  net.rr2 = internal_router("rr2", Ipv4Addr(10, 0, 0, 2), true, false);
  net.rr3 = internal_router("rr3", Ipv4Addr(10, 0, 0, 3), true, true);
  net.border1 = internal_router("border1", Ipv4Addr(10, 0, 1, 1), false, false);
  net.border2 = internal_router("border2", Ipv4Addr(10, 0, 1, 2), false, false);
  net.border3 = internal_router("border3", Ipv4Addr(10, 0, 1, 3), false, true);

  net.ext_b1 = topo.AddRouter(RouterSpec{"ext-b1", kNexthopB1, kAsB, 0, false, {}});
  net.ext_b0 = topo.AddRouter(RouterSpec{"ext-b0", kNexthopB0, kAsB, 0, false, {}});
  net.ext_c = topo.AddRouter(RouterSpec{"ext-c", kNexthopC, kAsC, 0, false, {}});

  auto link = [&](net::RouterIndex a, net::RouterIndex b, PeerRelation rel,
                  bool b_client_of_a = false) {
    LinkSpec l;
    l.a = a;
    l.b = b;
    l.b_is_as_seen_by_a = rel;
    l.b_is_rr_client_of_a = b_client_of_a;
    l.delay = util::kMillisecond;
    return topo.AddLink(l);
  };
  link(net.rr1, net.rr2, PeerRelation::kInternal);
  link(net.rr1, net.rr3, PeerRelation::kInternal);
  link(net.rr2, net.rr3, PeerRelation::kInternal);
  link(net.rr1, net.border1, PeerRelation::kInternal, true);
  link(net.rr2, net.border2, PeerRelation::kInternal, true);
  link(net.rr3, net.border3, PeerRelation::kInternal, true);
  link(net.border1, net.ext_b1, PeerRelation::kPeer);
  link(net.border2, net.ext_b0, PeerRelation::kPeer);
  link(net.border3, net.ext_c, PeerRelation::kPeer);

  bgp::PathAttributes med1;
  med1.med = 1;
  net.originations.push_back({net.ext_b1, net.prefix, med1});
  bgp::PathAttributes med0;
  med0.med = 0;
  net.originations.push_back({net.ext_b0, net.prefix, med0});
  net.originations.push_back({net.ext_c, net.prefix, {}});
  return net;
}

}  // namespace ranomaly::workload
