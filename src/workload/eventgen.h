// Synthetic BGP event streams over a SyntheticInternet route table.
//
// These generators produce the event mixes of the paper's Table I and
// Fig 8 at full scale: session-reset bursts (mass withdrawal + path
// exploration + re-announcement), path failovers across an AS edge,
// low-grade background churn ("the grass"), and single-prefix persistent
// oscillation.  All events carry attributes (the REX augmentation), are
// time-ordered, and are deterministic for a given seed.
#pragma once

#include <cstdint>
#include <vector>

#include "collector/event_stream.h"
#include "workload/internet.h"

namespace ranomaly::workload {

class EventStreamGenerator {
 public:
  EventStreamGenerator(const SyntheticInternet& internet, std::uint64_t seed);

  // --- building blocks; each appends into the stream -------------------

  // A session reset seen from `peer_index`: every route of that peer is
  // withdrawn (with some path-exploration re-announcements of alternate
  // paths before the final withdrawal), then after `down_for` the session
  // re-establishes and all routes are re-announced.  This is the paper's
  // Section I reset avalanche.
  void SessionReset(std::size_t peer_index, util::SimTime at,
                    util::SimDuration down_for,
                    util::SimDuration convergence_spread,
                    double exploration_probability = 0.4);

  // A failover of every route whose path traverses the given tier-1: the
  // routes are withdrawn and re-announced via an alternate tier-1.  The
  // shared path segment makes Stemming converge on the failed edge.
  void Tier1Failover(std::size_t tier1_index, std::size_t alternate_index,
                     util::SimTime at, util::SimDuration convergence_spread);

  // Background churn: `count` random single-prefix flaps (withdraw then
  // re-announce) spread uniformly over [begin, end).
  void Churn(util::SimTime begin, util::SimTime end, std::size_t count);

  // Persistent oscillation of one prefix at `period`: each cycle is one
  // withdrawal plus one announcement from the same peer (Section IV-F's
  // low-grade killer signal).
  void PrefixOscillation(std::size_t prefix_index, util::SimTime begin,
                         util::SimTime end, util::SimDuration period);

  // Finalizes: sorts the accumulated events by time and returns the
  // stream (the generator is then empty).
  collector::EventStream Take();

  std::size_t PendingEvents() const { return events_.size(); }

 private:
  const collector::RouteEntry* RouteOf(std::size_t peer_index,
                                       std::size_t prefix_index) const;
  void Announce(util::SimTime t, const collector::RouteEntry& route);
  void Withdraw(util::SimTime t, const collector::RouteEntry& route);

  const SyntheticInternet& internet_;
  util::Rng rng_;
  std::vector<bgp::Event> events_;
  // routes indexed per peer for fast per-peer sweeps
  std::vector<std::vector<std::size_t>> routes_by_peer_;
};

}  // namespace ranomaly::workload
