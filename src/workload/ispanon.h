// The ISP-Anon scenario — paper Section II & case studies IV-E / IV-F.
//
// A Tier-1-like ISP (all identifiers anonymized, as in the paper): PoPs
// each with a core route reflector pair and access routers as their
// clients, the core RR mesh fully meshed and monitored by the collector.
// Regular customers originate prefixes behind access routers; tier-1
// peers connect at different PoPs.
//
// Two incidents are wired in:
//
//   * IV-E continuous customer flap: one customer has a direct session
//     (next hop 1.0.0.1) that drops and re-establishes about once a
//     minute, plus a backup path via a NAP that connects to every other
//     tier-1 — so each PoP independently fails over to a different
//     3-AS-hop alternate, ~200 events per flap, for as long as the flap
//     injector runs.
//
//   * IV-F persistent MED oscillation on 4.5.0.0/16: AS2 connects in both
//     core PoPs with different MEDs, AS1 in PoP 1 only; ISP-Anon accepts
//     MEDs from AS2; with order-dependent (non-deterministic) MED
//     evaluation the Core1 reflectors flip their best path every time the
//     Core2 reflectors' AS2 route comes and goes.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/prefix.h"
#include "net/simulator.h"
#include "net/topology.h"
#include "util/time.h"

namespace ranomaly::workload {

struct IspAnonOptions {
  std::size_t pop_count = 4;          // PoPs beyond the two MED PoPs
  std::size_t customers_per_pop = 4;  // regular customers
  std::size_t prefixes_per_customer = 6;
  std::size_t tier1_count = 4;
  bool with_flapping_customer = true;
  bool with_med_scenario = true;
  std::uint64_t seed = 11;
};

struct IspAnonNet {
  net::Topology topology;

  // Monitored core route reflectors (one pair per PoP, mesh-connected).
  std::vector<net::RouterIndex> core_rrs;
  // Access routers per PoP (RR clients).
  std::vector<net::RouterIndex> access;

  // IV-E flapping customer.
  net::RouterIndex flap_customer = 0;  // address 1.0.0.1
  net::LinkIndex flap_link = 0;        // the direct session that flaps
  net::RouterIndex nap = 0;
  std::vector<net::RouterIndex> tier1s;
  bgp::Prefix flap_prefix;

  // IV-F MED oscillation.
  net::RouterIndex core1a = 0, core1b = 0;  // PoP 1 reflectors
  net::RouterIndex core2a = 0, core2b = 0;  // PoP 2 reflectors
  net::RouterIndex as1_router = 0;          // AS1, PoP 1
  net::RouterIndex as2_pop1 = 0;            // AS2 router, nexthop 10.3.4.5
  net::RouterIndex as2_pop2 = 0;            // AS2 router at PoP 2
  bgp::Prefix med_prefix;                   // 4.5.0.0/16

  // All customer prefixes (background routing table).
  std::vector<bgp::Prefix> customer_prefixes;

  struct Origination {
    net::RouterIndex router = 0;
    bgp::Prefix prefix;
    bgp::PathAttributes attrs;
  };
  std::vector<Origination> originations;

  void SeedRoutes(net::Simulator& sim) const;
};

IspAnonNet BuildIspAnon(const IspAnonOptions& options = {});

// IV-E: flap the customer's direct session: down for `down_for`, up for
// `up_for`, repeated over [start, start + duration).
void InjectCustomerFlaps(net::Simulator& sim, const IspAnonNet& net,
                         util::SimTime start, util::SimDuration duration,
                         util::SimDuration down_for = 10 * util::kSecond,
                         util::SimDuration up_for = 50 * util::kSecond);

// IV-F: drive the Core2-side AS2 announcement on/off at `period` (one
// announce + one withdraw per period) over [start, end).  The Core1
// reflectors' best-path flips then emerge from the decision process.
void InjectMedOscillation(net::Simulator& sim, const IspAnonNet& net,
                          util::SimTime start, util::SimTime end,
                          util::SimDuration period);

}  // namespace ranomaly::workload
