#include "workload/internet.h"

#include <stdexcept>

namespace ranomaly::workload {

SyntheticInternet::SyntheticInternet(InternetOptions options)
    : options_(options) {
  if (options_.prefix_count == 0 || options_.monitored_peers == 0 ||
      options_.tier1_count == 0 || options_.transit_count == 0 ||
      options_.origin_as_count == 0) {
    throw std::invalid_argument("SyntheticInternet: zero-sized dimension");
  }
  util::Rng rng(options_.seed);

  // AS numbering: tier-1s in 100.., transits in 1000.., origins in 10000..
  for (std::size_t i = 0; i < options_.tier1_count; ++i) {
    tier1_.push_back(static_cast<bgp::AsNumber>(100 + i));
  }
  for (std::size_t i = 0; i < options_.transit_count; ++i) {
    transit_.push_back(static_cast<bgp::AsNumber>(1000 + i));
  }
  for (std::size_t i = 0; i < options_.origin_as_count; ++i) {
    origins_.push_back(static_cast<bgp::AsNumber>(10000 + i));
  }

  // Monitored peers: 10.0.0.x; nexthops: 10.1.p.n.
  for (std::size_t p = 0; p < options_.monitored_peers; ++p) {
    peers_.push_back(bgp::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(p + 1)));
    for (std::size_t n = 0; n < options_.nexthops_per_peer; ++n) {
      nexthops_.push_back(bgp::Ipv4Addr(10, 1, static_cast<std::uint8_t>(p),
                                        static_cast<std::uint8_t>(n + 1)));
    }
  }

  // Prefixes: spread across 1.0.0.0 - 223.255.255.0 as /24s (and /20s for
  // a fraction, mirroring the real mix).
  prefixes_.reserve(options_.prefix_count);
  for (std::size_t i = 0; i < options_.prefix_count; ++i) {
    const auto a = static_cast<std::uint8_t>(1 + rng.NextBelow(223));
    const auto b = static_cast<std::uint8_t>(rng.NextBelow(256));
    const auto c = static_cast<std::uint8_t>(rng.NextBelow(256));
    const std::uint8_t len = rng.NextBool(0.85) ? 24 : 20;
    const bgp::Prefix prefix(bgp::Ipv4Addr(a, b, c, 0), len);
    prefixes_.push_back(prefix);
  }

  // Each prefix gets a home origin AS, a home transit, and a home tier-1;
  // each monitored peer routes to it through (usually) the same exit but
  // occasionally a different one, giving the path diversity real tables
  // have.
  routes_.reserve(static_cast<std::size_t>(
      static_cast<double>(options_.prefix_count) *
      static_cast<double>(options_.monitored_peers) * options_.peer_coverage));
  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    const std::size_t origin = i % origins_.size();
    const std::size_t home_transit = origin % transit_.size();
    const std::size_t home_tier1 = home_transit % tier1_.size();
    for (std::size_t p = 0; p < peers_.size(); ++p) {
      if (!rng.NextBool(options_.peer_coverage)) continue;
      // 10% of routes exit via an alternate tier-1 (path diversity).
      const std::size_t t1 = rng.NextBool(0.9)
                                 ? home_tier1
                                 : rng.NextBelow(tier1_.size());
      collector::RouteEntry route;
      route.peer = peers_[p];
      route.prefix = prefixes_[i];
      const std::size_t nh =
          p * options_.nexthops_per_peer + t1 % options_.nexthops_per_peer;
      route.attrs.nexthop = nexthops_[nh];
      route.attrs.as_path = PathVia(t1, home_transit, origin);
      routes_.push_back(std::move(route));
    }
  }
}

bgp::AsPath SyntheticInternet::PathVia(std::size_t tier1_index,
                                       std::size_t transit_index,
                                       std::size_t origin_index) const {
  std::vector<bgp::AsNumber> asns;
  asns.reserve(4);
  asns.push_back(options_.local_as);
  asns.push_back(tier1_.at(tier1_index % tier1_.size()));
  asns.push_back(transit_.at(transit_index % transit_.size()));
  asns.push_back(origins_.at(origin_index % origins_.size()));
  return bgp::AsPath(std::move(asns));
}

}  // namespace ranomaly::workload
