#include "workload/internet_scale.h"

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "collector/collector.h"
#include "collector/feed.h"
#include "net/policy.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace ranomaly::workload {
namespace {

using util::LogLevel;

constexpr std::uint32_t kNoParent = 0xffffffffu;

// Canonical undirected pair key for edge dedup.
std::uint64_t PairKey(std::uint32_t a, std::uint32_t b) {
  const std::uint32_t lo = a < b ? a : b;
  const std::uint32_t hi = a < b ? b : a;
  return (std::uint64_t{lo} << 32) | hi;
}

// Canonical relationship of a pair: 0 peers, 1 lower-ASN side is the
// provider, 2 higher-ASN side is the provider.  Distinguishing 1 from 2
// is what lets a duplicate line with the roles swapped be flagged as a
// *conflict* rather than a plain repeat.
std::uint8_t PairRel(const AsRelationship& e) {
  if (e.rel == 0) return 0;
  return e.asn1 < e.asn2 ? 1 : 2;
}

// Per-AS best route toward the vantage. cls is RouteSource+1; 0 = none.
struct Route {
  std::uint32_t parent = kNoParent;
  std::uint16_t len = 0;
  std::uint8_t cls = 0;
};

constexpr std::uint8_t kClsNone = 0;

std::uint8_t ClsOf(net::RouteSource source) {
  return static_cast<std::uint8_t>(source) + 1;
}
net::RouteSource SourceOf(std::uint8_t cls) {
  return static_cast<net::RouteSource>(cls - 1);
}

// Independent per-slot generator: a pure function of (seed, salt, slot),
// so churn decisions are identical no matter which thread or chunk asks.
util::Rng SlotRng(std::uint64_t seed, std::uint64_t salt, std::uint64_t slot) {
  return util::Rng(seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^
                   (slot * 0xbf58476d1ce4e5b9ULL + 0x94d049bb133111ebULL));
}

}  // namespace

std::string Serial2Diagnostics::Summary() const {
  std::string s = util::StrPrintf("%zu lines: %zu edges, %zu comments, %zu malformed",
                                  lines, edges, comments, Malformed());
  if (Malformed() > 0) {
    s += util::StrPrintf(
        " (%zu bad fields, %zu bad ASN, %zu bad rel, %zu self-loops, "
        "%zu duplicates, %zu conflicting duplicates; first at line %zu)",
        bad_field_count, bad_asn, bad_rel, self_loops, duplicate_edges,
        conflicting_duplicates, first_bad_line);
  }
  return s;
}

std::vector<AsRelationship> ParseSerial2(std::istream& is,
                                         Serial2Diagnostics& diag) {
  diag = Serial2Diagnostics{};
  std::vector<AsRelationship> edges;
  std::unordered_map<std::uint64_t, std::uint8_t> seen;
  std::string line;
  std::size_t lineno = 0;
  const auto bad = [&](std::size_t& counter) {
    ++counter;
    if (diag.first_bad_line == 0) diag.first_bad_line = lineno;
  };
  while (std::getline(is, line)) {
    ++lineno;
    ++diag.lines;
    const std::string_view sv = util::Trim(line);
    if (sv.empty()) continue;
    if (sv.front() == '#') {
      ++diag.comments;
      continue;
    }
    const auto fields = util::Split(sv, '|');
    // Real CAIDA as-rel2 files carry a 4th "source" column; accept and
    // ignore it.
    if (fields.size() != 3 && fields.size() != 4) {
      bad(diag.bad_field_count);
      RANOMALY_LOG_EVERY_N(
          LogLevel::kWarn, 1000,
          util::StrPrintf("serial-2 line %zu: want asn1|asn2|rel, got %zu field(s)",
                          lineno, fields.size()));
      continue;
    }
    std::uint32_t asn1 = 0;
    std::uint32_t asn2 = 0;
    if (!util::ParseU32(util::Trim(fields[0]), asn1) ||
        !util::ParseU32(util::Trim(fields[1]), asn2)) {
      bad(diag.bad_asn);
      RANOMALY_LOG_EVERY_N(
          LogLevel::kWarn, 1000,
          util::StrPrintf("serial-2 line %zu: ASN is not a 32-bit integer", lineno));
      continue;
    }
    const std::string_view rel_sv = util::Trim(fields[2]);
    std::int8_t rel = 0;
    if (rel_sv == "-1") {
      rel = -1;
    } else if (rel_sv != "0") {
      bad(diag.bad_rel);
      RANOMALY_LOG_EVERY_N(
          LogLevel::kWarn, 1000,
          util::StrPrintf("serial-2 line %zu: rel must be -1 or 0", lineno));
      continue;
    }
    if (asn1 == asn2) {
      bad(diag.self_loops);
      RANOMALY_LOG_EVERY_N(
          LogLevel::kWarn, 1000,
          util::StrPrintf("serial-2 line %zu: self-loop on AS %u", lineno, asn1));
      continue;
    }
    const AsRelationship edge{asn1, asn2, rel};
    const auto [it, inserted] = seen.emplace(PairKey(asn1, asn2), PairRel(edge));
    if (!inserted) {
      if (it->second == PairRel(edge)) {
        bad(diag.duplicate_edges);
        RANOMALY_LOG_EVERY_N(
            LogLevel::kWarn, 1000,
            util::StrPrintf("serial-2 line %zu: duplicate edge %u|%u", lineno,
                            asn1, asn2));
      } else {
        bad(diag.conflicting_duplicates);
        RANOMALY_LOG_EVERY_N(
            LogLevel::kWarn, 1000,
            util::StrPrintf(
                "serial-2 line %zu: edge %u|%u conflicts with an earlier "
                "relationship for the same pair (keeping the first)",
                lineno, asn1, asn2));
      }
      continue;
    }
    edges.push_back(edge);
    ++diag.edges;
  }
  return edges;
}

void WriteSerial2(std::ostream& os, std::span<const AsRelationship> edges) {
  os << "# serial-2 AS relationships: asn1|asn2|rel "
        "(-1: asn1 is the provider of asn2, 0: peers)\n";
  for (const AsRelationship& e : edges) {
    os << e.asn1 << '|' << e.asn2 << '|' << static_cast<int>(e.rel) << '\n';
  }
}

AsGraph BuildAsGraph(std::span<const AsRelationship> edges) {
  AsGraph g;
  g.asns.reserve(edges.size());
  for (const AsRelationship& e : edges) {
    g.asns.push_back(e.asn1);
    g.asns.push_back(e.asn2);
  }
  std::sort(g.asns.begin(), g.asns.end());
  g.asns.erase(std::unique(g.asns.begin(), g.asns.end()), g.asns.end());
  const std::size_t n = g.asns.size();

  std::unordered_map<std::uint32_t, std::uint32_t> index;
  index.reserve(n);
  for (std::size_t i = 0; i < n; ++i) index.emplace(g.asns[i], i);

  std::vector<std::vector<std::uint32_t>> cust(n), prov(n), peer(n);
  for (const AsRelationship& e : edges) {
    const std::uint32_t a = index.at(e.asn1);
    const std::uint32_t b = index.at(e.asn2);
    if (e.rel == 0) {
      peer[a].push_back(b);
      peer[b].push_back(a);
    } else {
      cust[a].push_back(b);  // asn1 is the provider of asn2
      prov[b].push_back(a);
    }
  }
  // Dense indices ascend with ASN, so sorting by index is sorting by
  // neighbor ASN; unique() tolerates repeated input edges.
  const auto dedup = [](std::vector<std::vector<std::uint32_t>>& adj) {
    for (auto& v : adj) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    }
  };
  dedup(cust);
  dedup(prov);
  dedup(peer);

  // Kahn over customer->provider edges: a node ranks once every customer
  // has.  Provider cycles leave nodes unranked; each pass drops the
  // provider edges internal to the unranked set (deterministically, and
  // counted) and re-runs until everything ranks.
  std::vector<std::uint32_t> rank(n, 0);
  std::vector<char> ranked(n, 0);
  const auto kahn = [&]() -> std::size_t {
    std::fill(rank.begin(), rank.end(), 0);
    std::fill(ranked.begin(), ranked.end(), 0);
    std::vector<std::uint32_t> pending(n);
    std::vector<std::uint32_t> queue;
    queue.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      pending[i] = static_cast<std::uint32_t>(cust[i].size());
      if (pending[i] == 0) {
        ranked[i] = 1;
        queue.push_back(static_cast<std::uint32_t>(i));
      }
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::uint32_t i = queue[head];
      for (const std::uint32_t p : prov[i]) {
        rank[p] = std::max(rank[p], rank[i] + 1);
        if (--pending[p] == 0) {
          ranked[p] = 1;
          queue.push_back(p);
        }
      }
    }
    return queue.size();
  };

  std::size_t done = kahn();
  while (done < n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (ranked[i]) continue;
      auto& pv = prov[i];
      std::size_t w = 0;
      for (std::size_t k = 0; k < pv.size(); ++k) {
        const std::uint32_t p = pv[k];
        if (!ranked[p]) {
          ++g.cycle_edges_dropped;
          auto& cv = cust[p];
          cv.erase(std::find(cv.begin(), cv.end(), static_cast<std::uint32_t>(i)));
        } else {
          pv[w++] = pv[k];
        }
      }
      pv.resize(w);
    }
    done = kahn();
  }

  const auto to_csr = [n](const std::vector<std::vector<std::uint32_t>>& adj,
                          std::vector<std::uint32_t>& offsets,
                          std::vector<std::uint32_t>& flat) {
    offsets.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      offsets[i + 1] = offsets[i] + static_cast<std::uint32_t>(adj[i].size());
    }
    flat.reserve(offsets[n]);
    for (std::size_t i = 0; i < n; ++i) {
      flat.insert(flat.end(), adj[i].begin(), adj[i].end());
    }
  };
  to_csr(cust, g.customer_offsets, g.customers);
  to_csr(prov, g.provider_offsets, g.providers);
  to_csr(peer, g.peer_offsets, g.peers);
  g.edge_count = g.customers.size() + g.peers.size() / 2;

  g.max_rank = 0;
  for (std::size_t i = 0; i < n; ++i) g.max_rank = std::max<std::size_t>(g.max_rank, rank[i]);
  // Counting sort by rank, ascending index within a rank.
  g.rank_offsets.assign(g.max_rank + 2, 0);
  for (std::size_t i = 0; i < n; ++i) ++g.rank_offsets[rank[i] + 1];
  for (std::size_t r = 0; r + 1 < g.rank_offsets.size(); ++r) {
    g.rank_offsets[r + 1] += g.rank_offsets[r];
  }
  g.rank_members.resize(n);
  std::vector<std::uint32_t> cursor(g.rank_offsets.begin(),
                                    g.rank_offsets.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    g.rank_members[cursor[rank[i]]++] = static_cast<std::uint32_t>(i);
  }
  g.rank = std::move(rank);
  return g;
}

std::size_t CustomerConeSize(const AsGraph& graph, std::size_t as_index) {
  std::vector<char> visited(graph.size(), 0);
  std::vector<std::uint32_t> stack{static_cast<std::uint32_t>(as_index)};
  visited[as_index] = 1;
  std::size_t count = 0;
  while (!stack.empty()) {
    const std::uint32_t i = stack.back();
    stack.pop_back();
    ++count;
    for (const std::uint32_t c : graph.CustomersOf(i)) {
      if (!visited[c]) {
        visited[c] = 1;
        stack.push_back(c);
      }
    }
  }
  return count;
}

std::vector<AsRelationship> GenerateTopology(
    const InternetScaleOptions& options) {
  const std::size_t n = std::max<std::size_t>(options.as_count, 4);
  const std::size_t tier1 =
      std::min(std::max<std::size_t>(options.tier1_count, 1), n);
  const std::size_t mid = std::min(options.mid_tier_count, n - tier1);
  const std::size_t mid_begin = tier1;
  const std::size_t mid_end = tier1 + mid;

  util::Rng rng(options.seed);
  // Scrambled ASN assignment: structural index carries no ASN-order
  // information, which is exactly what BuildAsGraph must not rely on.
  std::vector<std::uint32_t> asn(n);
  for (std::size_t i = 0; i < n; ++i) asn[i] = static_cast<std::uint32_t>(100 + i);
  rng.Shuffle(asn);

  std::vector<AsRelationship> edges;
  std::unordered_set<std::uint64_t> seen;
  const auto add = [&](std::size_t a, std::size_t b, std::int8_t rel) {
    if (a == b) return;
    if (!seen.insert(PairKey(asn[a], asn[b])).second) return;
    edges.push_back({asn[a], asn[b], rel});
  };

  // Tier-1 clique: the provider-free top, fully peered.
  for (std::size_t a = 0; a < tier1; ++a) {
    for (std::size_t b = a + 1; b < tier1; ++b) add(a, b, 0);
  }
  // Transit tier: multi-homed to the clique and (preferentially) to
  // earlier, bigger transits — earlier index never buys from later, so
  // the synthetic hierarchy is acyclic by construction.
  for (std::size_t i = mid_begin; i < mid_end; ++i) {
    const std::size_t providers =
        1 + (rng.NextBool(0.7) ? 1 : 0) + (rng.NextBool(0.25) ? 1 : 0);
    for (std::size_t k = 0; k < providers; ++k) {
      std::size_t p;
      if (i < mid_begin + mid / 10 || i == mid_begin || rng.NextBool(0.25)) {
        p = rng.NextBelow(tier1);
      } else {
        const double u = rng.NextDouble();
        p = mid_begin +
            static_cast<std::size_t>(u * u * static_cast<double>(i - mid_begin));
      }
      add(p, i, -1);
    }
  }
  // Same-tier transit peering.
  for (std::size_t i = mid_begin; i < mid_end && mid > 1; ++i) {
    const std::size_t want = 1 + (rng.NextBool(0.5) ? 1 : 0);
    for (std::size_t k = 0; k < want; ++k) {
      add(i, mid_begin + rng.NextBelow(mid), 0);
    }
  }
  // Stubs: one to three transit (rarely tier-1) providers, occasional
  // stub-stub peering for rank-0 peer-wave coverage.
  for (std::size_t i = mid_end; i < n; ++i) {
    const std::size_t providers =
        1 + (rng.NextBool(0.4) ? 1 : 0) + (rng.NextBool(0.1) ? 1 : 0);
    for (std::size_t k = 0; k < providers; ++k) {
      std::size_t p;
      if (mid == 0 || rng.NextBool(0.03)) {
        p = rng.NextBelow(tier1);
      } else {
        const double u = rng.NextDouble();
        p = mid_begin + static_cast<std::size_t>(u * u * static_cast<double>(mid));
        if (p >= mid_end) p = mid_end - 1;
      }
      add(p, i, -1);
    }
    if (mid_end < n && rng.NextBool(0.05)) {
      add(i, mid_end + rng.NextBelow(n - mid_end), 0);
    }
  }
  return edges;
}

namespace {

// Gao-Rexford propagation of vantage `v`'s beacon across the graph, in
// three phases of rank-flattened waves:
//   up:   customer routes climb provider links, rank 1..max ascending —
//         wave r reads only ranks < r, already settled;
//   peer: one crossing, double-buffered (candidates computed against the
//         frozen post-up state, merged in a second pass that writes only
//         its own slots) — no thread ever reads a slot another writes;
//   down: provider routes descend, rank max..0 descending — wave r reads
//         only ranks > r.
// Every wave writes routes[x] for x in its own rank only, so the result
// is independent of thread count and chunking by construction.
void Propagate(const AsGraph& g, std::size_t vantage, util::ThreadPool& pool,
               std::vector<Route>& routes) {
  const std::size_t n = g.size();
  constexpr std::size_t kGrain = 256;
  routes.assign(n, Route{});
  routes[vantage] = Route{kNoParent, 0, ClsOf(net::RouteSource::kSelf)};

  const auto wave = [&](std::size_t r, const std::function<void(std::uint32_t)>& fn) {
    const std::uint32_t begin = g.rank_offsets[r];
    const std::size_t count = g.rank_offsets[r + 1] - begin;
    pool.ParallelFor(util::ThreadPool::ChunksFor(count, kGrain),
                     [&](std::size_t chunk) {
                       const auto [lo, hi] =
                           util::ThreadPool::ChunkRange(count, kGrain, chunk);
                       for (std::size_t s = lo; s < hi; ++s) {
                         fn(g.rank_members[begin + s]);
                       }
                     });
  };

  for (std::size_t r = 1; r <= g.max_rank; ++r) {
    wave(r, [&](std::uint32_t x) {
      if (x == vantage) return;
      Route best;
      for (const std::uint32_t c : g.CustomersOf(x)) {
        const Route& rc = routes[c];
        if (rc.cls == kClsNone) continue;
        if (!net::ExportPermitted(SourceOf(rc.cls), net::Relationship::kProvider)) {
          continue;
        }
        const std::uint16_t len = static_cast<std::uint16_t>(rc.len + 1);
        // Customers are ASN-sorted, so strict < keeps the lowest ASN on ties.
        if (best.cls == kClsNone || len < best.len) {
          best = Route{c, len, ClsOf(net::RouteSource::kCustomer)};
        }
      }
      if (best.cls != kClsNone) routes[x] = best;
    });
  }

  std::vector<Route> cand(n);
  pool.ParallelFor(util::ThreadPool::ChunksFor(n, 1024), [&](std::size_t chunk) {
    const auto [lo, hi] = util::ThreadPool::ChunkRange(n, 1024, chunk);
    for (std::size_t x = lo; x < hi; ++x) {
      if (routes[x].cls != kClsNone) continue;  // customer/self beats peer
      Route best;
      for (const std::uint32_t p : g.PeersOf(x)) {
        const Route& rp = routes[p];
        if (rp.cls == kClsNone) continue;
        if (!net::ExportPermitted(SourceOf(rp.cls), net::Relationship::kPeer)) {
          continue;
        }
        const std::uint16_t len = static_cast<std::uint16_t>(rp.len + 1);
        if (best.cls == kClsNone || len < best.len) {
          best = Route{p, len, ClsOf(net::RouteSource::kPeer)};
        }
      }
      cand[x] = best;
    }
  });
  pool.ParallelFor(util::ThreadPool::ChunksFor(n, 4096), [&](std::size_t chunk) {
    const auto [lo, hi] = util::ThreadPool::ChunkRange(n, 4096, chunk);
    for (std::size_t x = lo; x < hi; ++x) {
      if (routes[x].cls == kClsNone && cand[x].cls != kClsNone) {
        routes[x] = cand[x];
      }
    }
  });

  for (std::size_t r = g.max_rank + 1; r-- > 0;) {
    wave(r, [&](std::uint32_t x) {
      if (routes[x].cls != kClsNone) return;  // anything beats provider
      Route best;
      for (const std::uint32_t p : g.ProvidersOf(x)) {
        const Route& rp = routes[p];
        if (rp.cls == kClsNone) continue;
        if (!net::ExportPermitted(SourceOf(rp.cls), net::Relationship::kCustomer)) {
          continue;
        }
        const std::uint16_t len = static_cast<std::uint16_t>(rp.len + 1);
        if (best.cls == kClsNone || len < best.len) {
          best = Route{p, len, ClsOf(net::RouteSource::kProvider)};
        }
      }
      if (best.cls != kClsNone) routes[x] = best;
    });
  }
}

// The AS path the collector sees from the vantage for a prefix
// originated at `origin`: the parent chain origin -> vantage, reversed
// (receiving edge first).  Empty when the chain is broken (defensive —
// cannot happen for a route the propagation produced).
bgp::AsPath PathTo(const AsGraph& g, const std::vector<Route>& routes,
                   std::size_t origin) {
  std::vector<bgp::AsNumber> chain;
  std::uint32_t x = static_cast<std::uint32_t>(origin);
  for (int hop = 0; hop < 64; ++hop) {
    chain.push_back(g.asns[x]);
    if (routes[x].cls == ClsOf(net::RouteSource::kSelf)) {
      std::reverse(chain.begin(), chain.end());
      return bgp::AsPath(std::move(chain));
    }
    x = routes[x].parent;
    if (x == kNoParent || x >= g.size()) break;
  }
  return bgp::AsPath{};
}

// Vantages = the `want` largest customer cones, picked among the
// highest-ranked ASes (ties broken by ascending ASN at every step).
std::vector<std::size_t> PickVantages(const AsGraph& g, std::size_t want) {
  const std::size_t n = g.size();
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (g.rank[a] != g.rank[b]) return g.rank[a] > g.rank[b];
              return a < b;  // index order == ASN order
            });
  const std::size_t pool_size = std::min(n, std::max(want * 4, want));
  struct Cand {
    std::uint32_t idx;
    std::size_t cone;
  };
  std::vector<Cand> cands;
  cands.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    cands.push_back({order[i], CustomerConeSize(g, order[i])});
  }
  std::stable_sort(cands.begin(), cands.end(),
                   [](const Cand& a, const Cand& b) { return a.cone > b.cone; });
  std::vector<std::size_t> out;
  out.reserve(want);
  for (std::size_t i = 0; i < want && i < cands.size(); ++i) {
    out.push_back(cands[i].idx);
  }
  return out;
}

}  // namespace

std::string InternetScaleResult::Summary() const {
  return util::StrPrintf(
      "%zu ASes, %zu edges (%zu cycle edges dropped), max rank %zu; "
      "%zu vantages; %zu prefixes, %zu routes; %zu events "
      "(%zu flaps, %zu outage routes)",
      as_count, edge_count, cycle_edges_dropped, max_rank, vantages.size(),
      prefix_count, route_count, stream.size(), flap_count, outage_routes);
}

std::optional<InternetScaleResult> BuildInternetScale(
    const InternetScaleOptions& options, std::string* error) {
  const auto fail = [&](std::string msg) -> std::optional<InternetScaleResult> {
    RANOMALY_LOG(LogLevel::kError, msg);
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };

  InternetScaleResult result;
  std::vector<AsRelationship> edges;
  if (!options.relationships_path.empty()) {
    std::ifstream in(options.relationships_path);
    if (!in) {
      return fail("cannot open AS-relationship file: " +
                  options.relationships_path);
    }
    edges = ParseSerial2(in, result.parse);
    RANOMALY_LOG(result.parse.Malformed() > 0 ? LogLevel::kWarn : LogLevel::kInfo,
                 options.relationships_path + ": " + result.parse.Summary());
    if (edges.empty()) {
      return fail(options.relationships_path + ": no usable serial-2 edges (" +
                  result.parse.Summary() + ")");
    }
  } else {
    edges = GenerateTopology(options);
  }

  const AsGraph graph = BuildAsGraph(edges);
  if (graph.size() < 2) return fail("AS graph needs at least two ASes");
  if (graph.cycle_edges_dropped > 0) {
    RANOMALY_LOG(LogLevel::kWarn,
                 util::StrPrintf("AS graph: broke provider cycles by dropping "
                                 "%zu edge(s)",
                                 graph.cycle_edges_dropped));
  }
  result.as_count = graph.size();
  result.edge_count = graph.edge_count;
  result.cycle_edges_dropped = graph.cycle_edges_dropped;
  result.max_rank = graph.max_rank;

  // Collector peer addresses are 10.0.0.<1+i>; cap keeps them one octet.
  const std::size_t want = std::max<std::size_t>(
      1, std::min({options.monitored_peer_count, graph.size(), std::size_t{250}}));
  const std::vector<std::size_t> vantage_idx = PickVantages(graph, want);
  const std::size_t V = vantage_idx.size();

  util::ThreadPool pool(options.threads);
  std::vector<std::vector<Route>> routes(V);
  for (std::size_t vi = 0; vi < V; ++vi) {
    Propagate(graph, vantage_idx[vi], pool, routes[vi]);
  }
  result.vantages.resize(V);
  for (std::size_t vi = 0; vi < V; ++vi) {
    VantageInfo& info = result.vantages[vi];
    info.asn = graph.asns[vantage_idx[vi]];
    info.peer = bgp::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(1 + vi));
    info.customer_cone = CustomerConeSize(graph, vantage_idx[vi]);
  }

  // 210k /24s starting at 11.0.0.0 stay far below the address-space cap;
  // clamp so absurd requests cannot wrap the 32-bit base.
  std::size_t P = std::max<std::size_t>(options.prefix_count, 1);
  if (P > 4'000'000) {
    RANOMALY_LOG(LogLevel::kWarn,
                 util::StrPrintf("prefix_count clamped from %zu to 4000000", P));
    P = 4'000'000;
  }
  const std::size_t n = graph.size();
  const auto origin_of = [n, P](std::size_t j) { return j * n / P; };
  const auto prefix_of = [](std::size_t j) {
    return bgp::Prefix(
        bgp::Ipv4Addr(0x0B000000u + static_cast<std::uint32_t>(j) * 256u), 24);
  };

  const util::SimTime t0 = util::kSecond;
  const util::SimDuration dump =
      std::max<util::SimDuration>(options.table_dump_duration, 1);
  const util::SimDuration churn =
      std::max<util::SimDuration>(options.churn_duration, 1);
  const util::SimTime churn_begin = t0 + dump + util::kSecond;
  const util::SimTime churn_end = churn_begin + churn;
  const std::size_t total_slots = P * V;

  std::size_t out_lo = P;
  std::size_t out_hi = P;
  if (options.outage_fraction > 0) {
    out_lo = static_cast<std::size_t>(static_cast<double>(P) * 0.55);
    out_hi = std::min(
        P, out_lo + std::max<std::size_t>(
                        1, static_cast<std::size_t>(static_cast<double>(P) *
                                                    options.outage_fraction)));
  }
  const util::SimTime outage_start = churn_begin + churn * 2 / 5;
  const util::SimTime outage_heal = outage_start + churn / 4;

  // Feed ops, generated prefix-chunk-parallel and merged in chunk order:
  // every op's timing and content is a pure function of (options, slot).
  constexpr std::size_t kGenGrain = 2048;
  const std::size_t chunks = util::ThreadPool::ChunksFor(P, kGenGrain);
  std::vector<std::vector<collector::FeedOp>> chunk_ops(chunks);
  struct GenCounts {
    std::uint64_t prefixes = 0;
    std::uint64_t routes = 0;
    std::uint64_t flaps = 0;
    std::uint64_t outage = 0;
  };
  std::vector<GenCounts> chunk_counts(chunks);

  pool.ParallelFor(chunks, [&](std::size_t chunk) {
    const auto [jlo, jhi] = util::ThreadPool::ChunkRange(P, kGenGrain, chunk);
    auto& ops = chunk_ops[chunk];
    GenCounts& counts = chunk_counts[chunk];
    ops.reserve((jhi - jlo) * V + 16);
    for (std::size_t j = jlo; j < jhi; ++j) {
      const std::size_t origin = origin_of(j);
      const bgp::Prefix pfx = prefix_of(j);
      bool announced = false;
      for (std::size_t vi = 0; vi < V; ++vi) {
        if (routes[vi][origin].cls == kClsNone) continue;
        bgp::AsPath path = PathTo(graph, routes[vi], origin);
        if (path.Empty()) continue;
        const std::size_t slot = j * V + vi;
        const bgp::Ipv4Addr peer = result.vantages[vi].peer;
        const util::SimTime t_dump =
            t0 + static_cast<util::SimTime>(
                     static_cast<std::uint64_t>(slot) *
                     static_cast<std::uint64_t>(dump) / total_slots);

        bgp::PathAttributes attrs;
        attrs.nexthop =
            bgp::Ipv4Addr(10, 1, static_cast<std::uint8_t>(vi), 1);
        attrs.as_path = std::move(path);
        ops.push_back({t_dump, peer, bgp::EventType::kAnnounce, pfx, attrs});
        announced = true;
        ++counts.routes;

        const bool in_outage = j >= out_lo && j < out_hi;
        const bool oscillating = j < options.oscillating_prefixes && vi == 0;
        if (!in_outage && !oscillating && options.flap_fraction > 0) {
          util::Rng fr = SlotRng(options.seed, 0xF1A9, slot);
          if (fr.NextBool(options.flap_fraction)) {
            const util::SimTime tw =
                churn_begin +
                static_cast<util::SimTime>(fr.NextBelow(std::max<std::uint64_t>(
                    1, static_cast<std::uint64_t>(churn) * 3 / 4)));
            const util::SimTime ta = std::min<util::SimTime>(
                churn_end,
                tw + util::kSecond +
                    static_cast<util::SimTime>(fr.NextBelow(
                        static_cast<std::uint64_t>(30 * util::kSecond))));
            ops.push_back({tw, peer, bgp::EventType::kWithdraw, pfx, {}});
            ops.push_back({ta, peer, bgp::EventType::kAnnounce, pfx, attrs});
            ++counts.flaps;
          }
        }
        if (in_outage) {
          util::Rng orr = SlotRng(options.seed, 0x0074, slot);
          const auto jitter = [&orr] {
            return static_cast<util::SimTime>(
                orr.NextBelow(static_cast<std::uint64_t>(2 * util::kSecond)));
          };
          ops.push_back({outage_start + jitter(), peer,
                         bgp::EventType::kWithdraw, pfx, {}});
          ops.push_back({outage_heal + jitter(), peer,
                         bgp::EventType::kAnnounce, pfx, attrs});
          ++counts.outage;
        }
        if (oscillating) {
          // Announce-announce oscillation: the route alternates between
          // the dump path and a prepended alternate every 15 s.
          bgp::PathAttributes alt = attrs;
          alt.as_path = attrs.as_path.Prepend(result.vantages[vi].asn, 2);
          alt.med = 10;
          const util::SimDuration half = 15 * util::kSecond;
          for (util::SimTime t = churn_begin; t + half < churn_end;
               t += 2 * half) {
            ops.push_back({t, peer, bgp::EventType::kAnnounce, pfx, alt});
            ops.push_back({t + half, peer, bgp::EventType::kAnnounce, pfx, attrs});
          }
        }
      }
      if (announced) ++counts.prefixes;
    }
  });

  std::size_t total_ops = 0;
  for (const auto& c : chunk_ops) total_ops += c.size();
  std::vector<collector::FeedOp> ops;
  ops.reserve(total_ops);
  for (auto& c : chunk_ops) {
    ops.insert(ops.end(), std::make_move_iterator(c.begin()),
               std::make_move_iterator(c.end()));
    c.clear();
    c.shrink_to_fit();
  }
  for (const GenCounts& c : chunk_counts) {
    result.prefix_count += c.prefixes;
    result.route_count += c.routes;
    result.flap_count += c.flaps;
    result.outage_routes += c.outage;
  }
  for (std::size_t vi = 0; vi < V; ++vi) {
    std::size_t reach = 0;
    for (std::size_t j = 0; j < P; ++j) {
      if (routes[vi][origin_of(j)].cls != kClsNone) ++reach;
    }
    result.vantages[vi].routes = reach;
  }

  collector::SortFeed(ops);
  collector::Collector coll;
  collector::ApplyFeed(coll, std::move(ops));
  result.stream = std::move(coll.mutable_events());
  RANOMALY_LOG(LogLevel::kInfo, "internet-scale workload: " + result.Summary());
  return result;
}

}  // namespace ranomaly::workload
