// Synthetic internet route tables.
//
// Table I of the paper runs TAMP and Stemming over route tables and event
// streams far larger than a case-study simulation needs (up to 1.5 M
// routes and 1 M events).  This generator synthesizes tables with the
// statistical shape of the paper's datasets directly — a tiered AS
// topology (Tier-1 clique, regional transits, origin stubs), multiple
// monitored peers with multiple nexthops, realistic path lengths — so the
// algorithms see inputs of the right scale and structure without
// simulating a million-router internet.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/as_path.h"
#include "bgp/prefix.h"
#include "collector/collector.h"
#include "util/rng.h"

namespace ranomaly::workload {

struct InternetOptions {
  std::size_t monitored_peers = 4;   // edge routers / RRs feeding events
  std::size_t nexthops_per_peer = 3;
  std::size_t tier1_count = 8;
  std::size_t transit_count = 60;
  std::size_t origin_as_count = 800;
  std::size_t prefix_count = 12'600;
  // Each monitored peer holds a route to (roughly) this fraction of the
  // prefixes; >1 peer gives the multi-route tables of the paper
  // (Berkeley: 23k routes over 12.6k prefixes).
  double peer_coverage = 0.95;
  bgp::AsNumber local_as = 11423;  // the first AS in every path
  std::uint64_t seed = 42;
};

// The generated universe: addresses, AS tiers, and the route table.
class SyntheticInternet {
 public:
  explicit SyntheticInternet(InternetOptions options);

  // All routes across the monitored peers, the TAMP/Collector row format.
  const std::vector<collector::RouteEntry>& routes() const { return routes_; }
  const std::vector<bgp::Prefix>& prefixes() const { return prefixes_; }
  const std::vector<bgp::Ipv4Addr>& peers() const { return peers_; }
  const std::vector<bgp::Ipv4Addr>& nexthops() const { return nexthops_; }

  // The AS path used by a given (origin index) through a given tier-1.
  // Exposed for event generators that need consistent alternates.
  bgp::AsPath PathVia(std::size_t tier1_index, std::size_t transit_index,
                      std::size_t origin_index) const;

  const InternetOptions& options() const { return options_; }

 private:
  InternetOptions options_;
  std::vector<bgp::Prefix> prefixes_;
  std::vector<bgp::Ipv4Addr> peers_;
  std::vector<bgp::Ipv4Addr> nexthops_;  // peer-major order
  std::vector<bgp::AsNumber> tier1_;
  std::vector<bgp::AsNumber> transit_;
  std::vector<bgp::AsNumber> origins_;
  std::vector<collector::RouteEntry> routes_;
};

}  // namespace ranomaly::workload
