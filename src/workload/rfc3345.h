// The RFC 3345 persistent MED route oscillation, *emergent*.
//
// Section IV-F of the paper observes the oscillation; RFC 3345 explains
// its mechanism: with route reflection, per-neighbor-AS MED comparison
// and order-dependent (non-deterministic) best-path evaluation, a set of
// three routes with no total order — b0 beats b1 on MED, b1 beats c on
// IGP cost, c beats b0 on IGP cost — makes the reflectors chase each
// other's advertisements forever.
//
// This scenario wires the minimal three-cluster instance: reflectors
// rr1/rr2/rr3, one border client each, AS-B announcing the prefix with
// MED 1 (cluster 1) and MED 0 (cluster 2), AS-C announcing it without a
// MED (cluster 3), and the IGP cost asymmetry at cluster 3 that closes
// the preference cycle.  Under the default (sequential, order-dependent)
// decision process the simulator genuinely never converges; flipping
// `deterministic_med` — the RFC's recommended mitigation — converges it
// immediately.  Nothing is scripted: the churn is produced entirely by
// the BGP machinery.
#pragma once

#include "bgp/prefix.h"
#include "net/simulator.h"
#include "net/topology.h"

namespace ranomaly::workload {

struct Rfc3345Net {
  net::Topology topology;
  net::RouterIndex rr1 = 0, rr2 = 0, rr3 = 0;   // the reflector mesh
  net::RouterIndex border1 = 0, border2 = 0, border3 = 0;  // their clients
  net::RouterIndex ext_b1 = 0;  // AS-B, announces with MED 1 (cluster 1)
  net::RouterIndex ext_b0 = 0;  // AS-B, announces with MED 0 (cluster 2)
  net::RouterIndex ext_c = 0;   // AS-C, no MED (cluster 3)
  bgp::Prefix prefix;           // the contested prefix (4.5.0.0/16)

  struct Origination {
    net::RouterIndex router = 0;
    bgp::Prefix prefix;
    bgp::PathAttributes attrs;
  };
  std::vector<Origination> originations;

  void SeedRoutes(net::Simulator& sim) const;
};

// `deterministic_med` selects the decision-process mode on every AS-1000
// router: false reproduces the oscillation, true (the RFC 3345 fix)
// converges.
Rfc3345Net BuildRfc3345(bool deterministic_med);

}  // namespace ranomaly::workload
