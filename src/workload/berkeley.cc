#include "workload/berkeley.h"

#include <stdexcept>

#include "net/config.h"
#include "util/rng.h"

namespace ranomaly::workload {
namespace {

using bgp::AsNumber;
using bgp::Community;
using bgp::Ipv4Addr;
using bgp::Prefix;
using net::LinkSpec;
using net::PeerRelation;
using net::RouterSpec;

constexpr AsNumber kBerkeleyAs = 25;
constexpr AsNumber kCalrenAs = 11423;
constexpr AsNumber kCalren2As = 11422;
constexpr AsNumber kCenicAs = 2152;
constexpr AsNumber kQwestAs = 209;
constexpr AsNumber kAbileneAs = 11537;
constexpr AsNumber kLosNettosAs = 226;
constexpr AsNumber kKddiAs = 2516;
constexpr AsNumber kAttAs = 7018;
constexpr AsNumber kPchAs = 10927;

// The tier-1s behind QWest that the paper's Fig 4 paths traverse.
struct Tier1Info {
  AsNumber asn;
  const char* name;
  Ipv4Addr address;
};
const Tier1Info kTier1s[] = {
    {701, "UUNET", Ipv4Addr(137, 39, 0, 1)},
    {1239, "Sprint", Ipv4Addr(144, 228, 0, 1)},
    {7018, "ATT", Ipv4Addr(12, 0, 0, 1)},
    {1299, "Telia", Ipv4Addr(213, 248, 0, 1)},
    {3356, "Level3", Ipv4Addr(4, 68, 0, 1)},
};

// The commodity split: CalREN intends an even split onto the two rate
// limiters, but the SPLIT-A prefix list covers first octets 1-207 and
// SPLIT-B only 208-223 — the IV-A misconfiguration (~93 % / ~7 %).
bool InSplitA(const Prefix& p) { return (p.addr().value() >> 24) <= 207; }

net::PrefixList SplitAList() {
  net::PrefixList list;
  list.Add(net::PrefixRule{Prefix(Ipv4Addr(0, 0, 0, 0), 1), 1, 32, true});
  list.Add(net::PrefixRule{Prefix(Ipv4Addr(128, 0, 0, 0), 2), 2, 32, true});
  list.Add(net::PrefixRule{Prefix(Ipv4Addr(192, 0, 0, 0), 4), 4, 32, true});
  return list;
}

// Route-map helpers.
net::RouteMap PermitCommunity(std::string name, Community match) {
  net::RouteMap map(std::move(name));
  net::RouteMapClause clause;
  clause.match_community = match;
  map.AddClause(std::move(clause));
  return map;
}

net::RouteMap TagAll(std::string name, std::vector<Community> tags) {
  net::RouteMap map(std::move(name));
  net::RouteMapClause clause;
  clause.set_communities = std::move(tags);
  map.AddClause(std::move(clause));
  return map;
}

// CalREN core import from QWest: commodity tag + split tag by prefix list.
net::RouteMap QwestImportMap(std::string name) {
  net::RouteMap map(std::move(name));
  net::RouteMapClause a;
  a.match_prefix_list = SplitAList();
  a.set_communities = {kCommodityTag, kSplitATag};
  map.AddClause(std::move(a));
  net::RouteMapClause b;
  b.set_communities = {kCommodityTag, kSplitBTag};
  map.AddClause(std::move(b));
  return map;
}

const char* kR13Config = R"(! 128.32.1.3 - commodity edge router, rate-limited paths
router bgp 25
 neighbor 128.32.0.66 remote-as 11423
 neighbor 128.32.0.66 route-map CALREN-COMMODITY-IN in
 neighbor 128.32.0.70 remote-as 11423
 neighbor 128.32.0.70 route-map CALREN-COMMODITY-IN in
!
ip community-list ISP permit 11423:65350
!
route-map CALREN-COMMODITY-IN permit 10
 match community ISP
 set local-preference 80
)";

const char* kR1200Config = R"(! 128.32.1.200 - unlimited edge router
router bgp 25
 neighbor 128.32.0.90 remote-as 11423
 neighbor 128.32.0.90 route-map CALREN-ALL-IN in
!
ip community-list ISP permit 11423:65350
!
route-map CALREN-ALL-IN permit 10
 match community ISP
 set local-preference 70
route-map CALREN-ALL-IN permit 20
 set local-preference 100
)";

Prefix RandomPrefix(util::Rng& rng) {
  const auto a = static_cast<std::uint8_t>(1 + rng.NextBelow(223));
  const auto b = static_cast<std::uint8_t>(rng.NextBelow(256));
  const auto c = static_cast<std::uint8_t>(rng.NextBelow(256));
  return Prefix(Ipv4Addr(a, b, c, 0), 24);
}

}  // namespace

void BerkeleyNet::SeedRoutes(net::Simulator& sim) const {
  for (const Origination& o : originations) {
    sim.Originate(o.router, o.prefix, o.attrs);
  }
}

std::vector<std::pair<AsNumber, std::string>> BerkeleyNet::AsNames() const {
  std::vector<std::pair<AsNumber, std::string>> names = {
      {kBerkeleyAs, "Berkeley"}, {kCalrenAs, "CalREN"},
      {kCalren2As, "CalREN-2"},  {kCenicAs, "CENIC"},
      {kQwestAs, "QWest"},       {kAbileneAs, "Abilene"},
      {kLosNettosAs, "LosNettos"}, {kKddiAs, "KDDI"},
      {kAttAs, "ATT"},           {kPchAs, "PCH"},
  };
  for (const auto& t : kTier1s) names.emplace_back(t.asn, t.name);
  return names;
}

BerkeleyNet BuildBerkeley(const BerkeleyOptions& options) {
  BerkeleyNet net;
  util::Rng rng(options.seed);
  net::Topology& topo = net.topology;

  auto add_router = [&](const char* name, Ipv4Addr addr, AsNumber asn) {
    return topo.AddRouter(RouterSpec{name, addr, asn, 0, false, {}});
  };

  // --- routers ----------------------------------------------------------
  net.r13 = add_router("128.32.1.3", Ipv4Addr(128, 32, 1, 3), kBerkeleyAs);
  net.r1200 = add_router("128.32.1.200", Ipv4Addr(128, 32, 1, 200), kBerkeleyAs);
  net.r1222 = add_router("128.32.1.222", Ipv4Addr(128, 32, 1, 222), kBerkeleyAs);
  net.r110 = add_router("128.32.1.10", Ipv4Addr(128, 32, 1, 10), kBerkeleyAs);
  net.monitored = {net.r13, net.r1200, net.r1222, net.r110};

  net.c66 = add_router("128.32.0.66", Ipv4Addr(128, 32, 0, 66), kCalrenAs);
  net.c70 = add_router("128.32.0.70", Ipv4Addr(128, 32, 0, 70), kCalrenAs);
  net.c90 = add_router("128.32.0.90", Ipv4Addr(128, 32, 0, 90), kCalrenAs);
  net.ccore = add_router("calren-core", Ipv4Addr(137, 164, 0, 1), kCalrenAs);

  net.c11422 = add_router("calren2", Ipv4Addr(137, 164, 1, 1), kCalren2As);
  net.cenic = add_router("cenic", Ipv4Addr(137, 164, 2, 1), kCenicAs);
  net.qwest = add_router("qwest", Ipv4Addr(205, 171, 0, 1), kQwestAs);
  net.abilene = add_router("abilene", Ipv4Addr(198, 32, 8, 1), kAbileneAs);
  net.losnettos = add_router("losnettos", Ipv4Addr(198, 32, 146, 1), kLosNettosAs);
  net.kddi = add_router("kddi", Ipv4Addr(203, 181, 248, 1), kKddiAs);
  net.pch = add_router("pch", Ipv4Addr(198, 32, 176, 1), kPchAs);
  if (options.with_backdoor) {
    net.att_backdoor =
        add_router("att-backdoor", Ipv4Addr(169, 229, 0, 157), kAttAs);
  }
  for (const auto& t : kTier1s) {
    net.tier1s.push_back(add_router(t.name, t.address, t.asn));
  }

  // --- iBGP meshes --------------------------------------------------------
  auto ibgp = [&](net::RouterIndex a, net::RouterIndex b) {
    LinkSpec l;
    l.a = a;
    l.b = b;
    l.b_is_as_seen_by_a = PeerRelation::kInternal;
    l.delay = util::kMillisecond;
    return topo.AddLink(l);
  };
  const net::RouterIndex berkeley_routers[] = {net.r13, net.r1200, net.r1222,
                                               net.r110};
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      ibgp(berkeley_routers[i], berkeley_routers[j]);
    }
  }
  const net::RouterIndex calren_routers[] = {net.c66, net.c70, net.c90,
                                             net.ccore};
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      ibgp(calren_routers[i], calren_routers[j]);
    }
  }

  // --- Berkeley <-> CalREN eBGP, policies compiled from IOS configs ------
  net.r13_config_text = kR13Config;
  net.r1200_config_text = kR1200Config;
  net::ConfigError error;
  const auto r13_config = net::RouterConfig::Parse(kR13Config, &error);
  if (!r13_config) {
    throw std::logic_error("BuildBerkeley: r13 config: " + error.message);
  }
  const auto r1200_config = net::RouterConfig::Parse(kR1200Config, &error);
  if (!r1200_config) {
    throw std::logic_error("BuildBerkeley: r1200 config: " + error.message);
  }

  auto ebgp = [&](net::RouterIndex a, net::RouterIndex b,
                  PeerRelation b_to_a, net::NeighborPolicy a_policy = {},
                  net::NeighborPolicy b_policy = {}) {
    LinkSpec l;
    l.a = a;
    l.b = b;
    l.b_is_as_seen_by_a = b_to_a;
    l.delay = 5 * util::kMillisecond;
    l.a_policy = std::move(a_policy);
    l.b_policy = std::move(b_policy);
    return topo.AddLink(l);
  };

  {  // r13 -- c66 / c70: import from parsed config; CalREN exports split.
    net::NeighborPolicy r13_from_c66 =
        r13_config->CompileNeighborPolicy(Ipv4Addr(128, 32, 0, 66));
    net::NeighborPolicy c66_to_r13;
    c66_to_r13.export_map = PermitCommunity("TO-BERKELEY-A", kSplitATag);
    net.link_r13_c66 = ebgp(net.r13, net.c66, PeerRelation::kProvider,
                            std::move(r13_from_c66), std::move(c66_to_r13));

    net::NeighborPolicy r13_from_c70 =
        r13_config->CompileNeighborPolicy(Ipv4Addr(128, 32, 0, 70));
    net::NeighborPolicy c70_to_r13;
    c70_to_r13.export_map = PermitCommunity("TO-BERKELEY-B", kSplitBTag);
    net.link_r13_c70 = ebgp(net.r13, net.c70, PeerRelation::kProvider,
                            std::move(r13_from_c70), std::move(c70_to_r13));
  }
  {  // r1200 -- c90: everything, LP 70/100 from the parsed config.
    net::NeighborPolicy r1200_from_c90 =
        r1200_config->CompileNeighborPolicy(Ipv4Addr(128, 32, 0, 90));
    net.link_r1200_c90 = ebgp(net.r1200, net.c90, PeerRelation::kProvider,
                              std::move(r1200_from_c90), {});
  }
  {  // r110 -- c66: commodity only, LP 75.
    net::NeighborPolicy r110_from_c66;
    net::RouteMap in("CALREN-R110-IN");
    net::RouteMapClause c;
    c.match_community = kCommodityTag;
    c.set_local_pref = 75;
    in.AddClause(std::move(c));
    r110_from_c66.import_map = std::move(in);
    net::NeighborPolicy c66_to_r110;
    c66_to_r110.export_map = PermitCommunity("TO-R110", kSplitATag);
    ebgp(net.r110, net.c66, PeerRelation::kProvider, std::move(r110_from_c66),
         std::move(c66_to_r110));
  }
  if (options.with_backdoor) {  // r1222 -- AT&T backdoor (IV-B)
    net.link_r1222_att =
        ebgp(net.r1222, net.att_backdoor, PeerRelation::kPeer, {}, {});
  }

  // --- CalREN upstream ----------------------------------------------------
  {  // ccore -- qwest (provider): tag commodity + split at import.
    net::NeighborPolicy ccore_from_qwest;
    ccore_from_qwest.import_map = QwestImportMap("QWEST-IN");
    ebgp(net.ccore, net.qwest, PeerRelation::kProvider,
         std::move(ccore_from_qwest), {});
  }
  {  // ccore -- abilene (peer): tag as member/I2 routes.
    net::NeighborPolicy ccore_from_abilene;
    ccore_from_abilene.import_map = TagAll("ABILENE-IN", {kMemberTag});
    ebgp(net.ccore, net.abilene, PeerRelation::kPeer,
         std::move(ccore_from_abilene), {});
  }
  {  // ccore -- c11422 (customer/sibling AS): its QWest transit routes are
     // a backup (LOCAL_PREF 70, below the direct QWest session's 80), but
     // routes 11422 originates or hears from its own customers — which is
     // exactly what the PCH leak looks like — are preferred at 110.  This
     // is the "CalREN's local preferences" that let the IV-D leak win.
    net::RouteMap in("CALREN2-IN");
    net::RouteMapClause transit;
    transit.match_community = kCommodityTag;
    transit.set_local_pref = 70;
    in.AddClause(std::move(transit));
    net::RouteMapClause own;
    own.set_local_pref = 110;
    own.set_communities = {kMemberTag};
    in.AddClause(std::move(own));
    net::NeighborPolicy ccore_from_c11422;
    ccore_from_c11422.import_map = std::move(in);
    ebgp(net.ccore, net.c11422, PeerRelation::kCustomer,
         std::move(ccore_from_c11422), {});
  }
  {  // ccore -- cenic (customer): member routes (Los Nettos, KDDI, members).
    net::NeighborPolicy ccore_from_cenic;
    ccore_from_cenic.import_map = TagAll("CENIC-IN", {kMemberTag});
    ebgp(net.ccore, net.cenic, PeerRelation::kCustomer,
         std::move(ccore_from_cenic), {});
  }
  {  // c11422 -- qwest (provider): same commodity tagging as ccore.
    net::NeighborPolicy c11422_from_qwest;
    c11422_from_qwest.import_map = QwestImportMap("QWEST-IN-11422");
    ebgp(net.c11422, net.qwest, PeerRelation::kProvider,
         std::move(c11422_from_qwest), {});
  }
  // c11422 -- pch: misconfigured as a *customer* session (the IV-D root
  // cause): leaked routes get customer LOCAL_PREF and are re-exported
  // upstream.
  net.link_c11422_pch =
      ebgp(net.c11422, net.pch, PeerRelation::kCustomer, {}, {});

  // --- CENIC members ------------------------------------------------------
  {  // cenic -- losnettos: tagged 2152:65297 (correct per the paper).
    net::NeighborPolicy cenic_from_ln;
    cenic_from_ln.import_map = TagAll("LOSNETTOS-IN", {kLosNettosTag});
    ebgp(net.cenic, net.losnettos, PeerRelation::kCustomer,
         std::move(cenic_from_ln), {});
  }
  {  // cenic -- kddi: mis-tagged with 2152:65297 when the option is on.
    net::NeighborPolicy cenic_from_kddi;
    if (options.mistag_kddi) {
      cenic_from_kddi.import_map = TagAll("KDDI-IN", {kLosNettosTag});
    }
    ebgp(net.cenic, net.kddi, PeerRelation::kCustomer,
         std::move(cenic_from_kddi), {});
  }

  // --- tier-1s behind QWest ----------------------------------------------
  for (const net::RouterIndex t1 : net.tier1s) {
    ebgp(net.qwest, t1, PeerRelation::kPeer, {}, {});
  }

  // --- prefixes & originations ---------------------------------------------
  auto originate = [&](net::RouterIndex router, const Prefix& prefix,
                       bgp::AsPath seed_path = {},
                       std::vector<Community> tags = {}) {
    BerkeleyNet::Origination o;
    o.router = router;
    o.prefix = prefix;
    o.attrs.as_path = std::move(seed_path);
    for (const Community c : tags) o.attrs.communities.Add(c);
    net.originations.push_back(std::move(o));
  };

  // Commodity prefixes: originated behind the tier-1s with stub origins,
  // giving "209 <tier1> <stub>" paths at CalREN.
  for (std::size_t i = 0; i < options.commodity_prefixes; ++i) {
    const Prefix p = RandomPrefix(rng);
    const std::size_t t1 = i % net.tier1s.size();
    const auto stub_as = static_cast<AsNumber>(20000 + i % 500);
    originate(net.tier1s[t1], p, bgp::AsPath{stub_as});
    if (InSplitA(p)) {
      net.commodity_a.push_back(p);
    } else {
      net.commodity_b.push_back(p);
    }
  }
  // Internet2 prefixes behind Abilene (university stubs).
  for (std::size_t i = 0; i < options.internet2_prefixes; ++i) {
    const Prefix p(Ipv4Addr(192, 12, static_cast<std::uint8_t>(i), 0), 24);
    originate(net.abilene, p,
              bgp::AsPath{static_cast<AsNumber>(30000 + i % 64)});
    net.internet2.push_back(p);
  }
  // CalREN member prefixes behind CENIC (untagged members).
  for (std::size_t i = 0; i < options.member_prefixes; ++i) {
    const Prefix p(Ipv4Addr(137, 110, static_cast<std::uint8_t>(i), 0), 24);
    originate(net.cenic, p,
              bgp::AsPath{static_cast<AsNumber>(31000 + i % 64)});
    net.members.push_back(p);
  }
  // Los Nettos and KDDI prefixes (the 2152:65297 population, IV-C).
  for (std::size_t i = 0; i < options.losnettos_prefixes; ++i) {
    const Prefix p(Ipv4Addr(198, 4, static_cast<std::uint8_t>(i), 0), 24);
    originate(net.losnettos, p);
    net.losnettos_prefixes.push_back(p);
  }
  for (std::size_t i = 0; i < options.kddi_prefixes; ++i) {
    const Prefix p(Ipv4Addr(203, 232, static_cast<std::uint8_t>(i), 0), 24);
    originate(net.kddi, p);
    net.kddi_prefixes.push_back(p);
  }
  // The two backdoor prefixes (IV-B).
  if (options.with_backdoor) {
    net.backdoor_prefixes = {Prefix(Ipv4Addr(12, 100, 1, 0), 24),
                             Prefix(Ipv4Addr(12, 100, 2, 0), 24)};
    for (const Prefix& p : net.backdoor_prefixes) {
      originate(net.att_backdoor, p);
    }
  }
  // PCH's own legitimate prefix.
  originate(net.pch, Prefix(Ipv4Addr(198, 32, 176, 0), 24));

  // Leakable subset of split-A commodity prefixes (IV-D).
  const std::size_t leak_n =
      std::min(options.leak_prefixes, net.commodity_a.size());
  net.leakable.assign(net.commodity_a.begin(),
                      net.commodity_a.begin() +
                          static_cast<std::ptrdiff_t>(leak_n));

  return net;
}

void InjectRouteLeak(net::Simulator& sim, const BerkeleyNet& net,
                     util::SimTime first_at, util::SimDuration leak_duration,
                     util::SimDuration gap, std::size_t cycles) {
  // The leaked path the paper shows: PCH heard these prefixes via
  // {1909 195 2152 3356} and passes them on.
  const bgp::AsPath leak_path{1909, 195, 2152, 3356};
  util::SimTime t = first_at;
  for (std::size_t c = 0; c < cycles; ++c) {
    for (const Prefix& p : net.leakable) {
      bgp::PathAttributes attrs;
      attrs.as_path = leak_path;
      sim.ScheduleOriginate(t, net.pch, p, attrs);
      sim.ScheduleWithdrawOrigin(t + leak_duration, net.pch, p);
    }
    t += leak_duration + gap;
  }
}

}  // namespace ranomaly::workload
