#include "workload/ispanon.h"

#include <stdexcept>
#include <string>

namespace ranomaly::workload {
namespace {

using bgp::AsNumber;
using bgp::Ipv4Addr;
using bgp::Prefix;
using net::LinkSpec;
using net::PeerRelation;
using net::RouterSpec;

constexpr AsNumber kIspAs = 1000;
constexpr AsNumber kAs1 = 2101;      // the IV-F AS1
constexpr AsNumber kAs2 = 2102;      // the IV-F AS2 (MED sender)
constexpr AsNumber kNapAs = 4999;
constexpr AsNumber kFlapCustomerAs = 3999;

}  // namespace

void IspAnonNet::SeedRoutes(net::Simulator& sim) const {
  for (const Origination& o : originations) {
    sim.Originate(o.router, o.prefix, o.attrs);
  }
}

IspAnonNet BuildIspAnon(const IspAnonOptions& options) {
  if (options.pop_count == 0) {
    throw std::invalid_argument("BuildIspAnon: need at least one PoP");
  }
  IspAnonNet net;
  net::Topology& topo = net.topology;

  auto add_router = [&](std::string name, Ipv4Addr addr, AsNumber asn,
                        bool rr = false) {
    return topo.AddRouter(RouterSpec{std::move(name), addr, asn, 0, rr, {}});
  };
  auto ibgp = [&](net::RouterIndex a, net::RouterIndex b, bool b_client_of_a) {
    LinkSpec l;
    l.a = a;
    l.b = b;
    l.b_is_as_seen_by_a = PeerRelation::kInternal;
    l.delay = 2 * util::kMillisecond;
    l.b_is_rr_client_of_a = b_client_of_a;
    return topo.AddLink(l);
  };
  auto ebgp = [&](net::RouterIndex a, net::RouterIndex b,
                  PeerRelation b_to_a) {
    LinkSpec l;
    l.a = a;
    l.b = b;
    l.b_is_as_seen_by_a = b_to_a;
    l.delay = 5 * util::kMillisecond;
    return topo.AddLink(l);
  };

  // --- MED PoPs (IV-F): two reflector pairs ------------------------------
  if (options.with_med_scenario) {
    net.core1a = add_router("core1-a", Ipv4Addr(10, 0, 0, 1), kIspAs, true);
    net.core1b = add_router("core1-b", Ipv4Addr(10, 0, 0, 2), kIspAs, true);
    net.core2a = add_router("core2-a", Ipv4Addr(10, 0, 1, 1), kIspAs, true);
    net.core2b = add_router("core2-b", Ipv4Addr(10, 0, 1, 2), kIspAs, true);
    net.core_rrs = {net.core1a, net.core1b, net.core2a, net.core2b};
  }

  // --- regular PoPs -------------------------------------------------------
  // Hot-potato IGP costs: a PoP's routers are close (cost 1) to the
  // tier-1 exits that peer at their own PoP and far (cost 10) from remote
  // exits.  This is what makes each PoP independently fail over to a
  // *different* alternate in IV-E ("each makes an independent decision").
  const std::size_t pop_count = options.pop_count;
  auto pop_igp_cost = [pop_count](std::size_t pop) {
    return [pop, pop_count](Ipv4Addr nexthop) -> std::uint32_t {
      const std::uint32_t v = nexthop.value();
      if ((v >> 24) == 20) {  // tier-1 peering addresses are 20.t.0.1
        const std::size_t t = (v >> 16) & 0xff;
        return t % pop_count == pop ? 1 : 10;
      }
      return 5;
    };
  };
  for (std::size_t p = 0; p < options.pop_count; ++p) {
    RouterSpec rr_spec{"pop" + std::to_string(p) + "-rr",
                       Ipv4Addr(10, 0, static_cast<std::uint8_t>(2 + p), 1),
                       kIspAs, 0, true, {}};
    rr_spec.decision.igp_cost = pop_igp_cost(p);
    const auto rr = topo.AddRouter(std::move(rr_spec));
    net.core_rrs.push_back(rr);
    RouterSpec acc_spec{"pop" + std::to_string(p) + "-acc",
                        Ipv4Addr(10, 2, static_cast<std::uint8_t>(p), 1),
                        kIspAs, 0, false, {}};
    acc_spec.decision.igp_cost = pop_igp_cost(p);
    const auto acc = topo.AddRouter(std::move(acc_spec));
    net.access.push_back(acc);
    ibgp(rr, acc, /*b_client_of_a=*/true);
  }

  // Core RR full mesh (non-client sessions).
  for (std::size_t i = 0; i < net.core_rrs.size(); ++i) {
    for (std::size_t j = i + 1; j < net.core_rrs.size(); ++j) {
      ibgp(net.core_rrs[i], net.core_rrs[j], /*b_client_of_a=*/false);
    }
  }

  // --- tier-1 peers --------------------------------------------------------
  for (std::size_t t = 0; t < options.tier1_count; ++t) {
    const auto t1 = add_router("tier1-" + std::string(1, static_cast<char>('A' + t)),
                               Ipv4Addr(20, static_cast<std::uint8_t>(t), 0, 1),
                               static_cast<AsNumber>(2001 + t));
    net.tier1s.push_back(t1);
    // Each tier-1 peers with the ISP at a different PoP's access router.
    ebgp(net.access[t % net.access.size()], t1, PeerRelation::kPeer);
  }

  // --- regular customers ----------------------------------------------------
  std::size_t customer_id = 0;
  for (std::size_t p = 0; p < options.pop_count; ++p) {
    for (std::size_t c = 0; c < options.customers_per_pop; ++c) {
      const auto cust = add_router(
          "cust" + std::to_string(customer_id),
          Ipv4Addr(172, 16, static_cast<std::uint8_t>(customer_id), 1),
          static_cast<AsNumber>(3000 + customer_id));
      ebgp(net.access[p], cust, PeerRelation::kCustomer);
      for (std::size_t k = 0; k < options.prefixes_per_customer; ++k) {
        const Prefix prefix(
            Ipv4Addr(60, static_cast<std::uint8_t>(customer_id),
                     static_cast<std::uint8_t>(k), 0),
            24);
        net.customer_prefixes.push_back(prefix);
        net.originations.push_back({cust, prefix, {}});
      }
      ++customer_id;
    }
  }

  // --- IV-E: the flapping customer ------------------------------------------
  if (options.with_flapping_customer) {
    net.flap_customer =
        add_router("flap-customer", Ipv4Addr(1, 0, 0, 1), kFlapCustomerAs);
    net.nap = add_router("nap", Ipv4Addr(198, 32, 200, 1), kNapAs);
    // The direct (flaky) session at PoP 0.
    net.flap_link = ebgp(net.access[0], net.flap_customer,
                         PeerRelation::kCustomer);
    // The backup: customer -> NAP -> every tier-1 -> ISP.
    ebgp(net.nap, net.flap_customer, PeerRelation::kCustomer);
    for (const net::RouterIndex t1 : net.tier1s) {
      ebgp(t1, net.nap, PeerRelation::kCustomer);
    }
    net.flap_prefix = Prefix(Ipv4Addr(1, 0, 0, 0), 22);
    net.originations.push_back({net.flap_customer, net.flap_prefix, {}});
  }

  // --- IV-F: AS1 / AS2 and 4.5.0.0/16 ---------------------------------------
  if (options.with_med_scenario) {
    net.med_prefix = Prefix(Ipv4Addr(4, 5, 0, 0), 16);
    net.as1_router = add_router("as1", Ipv4Addr(10, 9, 1, 1), kAs1);
    net.as2_pop1 = add_router("as2-pop1", Ipv4Addr(10, 3, 4, 5), kAs2);
    net.as2_pop2 = add_router("as2-pop2", Ipv4Addr(10, 6, 4, 5), kAs2);
    // AS1 connects in PoP 1 only; AS2 in both PoPs.
    ebgp(net.core1a, net.as1_router, PeerRelation::kPeer);
    ebgp(net.core1b, net.as1_router, PeerRelation::kPeer);
    ebgp(net.core1a, net.as2_pop1, PeerRelation::kPeer);
    ebgp(net.core1b, net.as2_pop1, PeerRelation::kPeer);
    ebgp(net.core2a, net.as2_pop2, PeerRelation::kPeer);
    ebgp(net.core2b, net.as2_pop2, PeerRelation::kPeer);

    bgp::PathAttributes as1_attrs;  // no MED (different AS anyway)
    net.originations.push_back({net.as1_router, net.med_prefix, as1_attrs});
    bgp::PathAttributes as2_pop1_attrs;
    as2_pop1_attrs.med = 10;  // worse MED at PoP 1
    net.originations.push_back({net.as2_pop1, net.med_prefix, as2_pop1_attrs});
    bgp::PathAttributes as2_pop2_attrs;
    as2_pop2_attrs.med = 5;  // better MED at PoP 2
    net.originations.push_back({net.as2_pop2, net.med_prefix, as2_pop2_attrs});
  }

  return net;
}

void InjectCustomerFlaps(net::Simulator& sim, const IspAnonNet& net,
                         util::SimTime start, util::SimDuration duration,
                         util::SimDuration down_for,
                         util::SimDuration up_for) {
  const std::size_t cycles = static_cast<std::size_t>(
      duration / std::max<util::SimDuration>(1, down_for + up_for));
  sim.ScheduleLinkFlaps(net.flap_link, start, down_for, up_for, cycles);
}

void InjectMedOscillation(net::Simulator& sim, const IspAnonNet& net,
                          util::SimTime start, util::SimTime end,
                          util::SimDuration period) {
  if (period <= 1) throw std::invalid_argument("InjectMedOscillation: period");
  bgp::PathAttributes attrs;
  attrs.med = 5;
  for (util::SimTime t = start; t + period / 2 < end; t += period) {
    sim.ScheduleWithdrawOrigin(t, net.as2_pop2, net.med_prefix);
    sim.ScheduleOriginate(t + period / 2, net.as2_pop2, net.med_prefix, attrs);
  }
}

}  // namespace ranomaly::workload
