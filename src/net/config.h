// A Cisco IOS-like router-configuration grammar and parser.
//
// Section III-D.1 integrates router configuration files with the event
// analysis: routing policies (LOCAL_PREF from community tags, filters)
// live only in configs, never in BGP messages, so diagnosing incidents
// like the Section IV-D rate-limiter bypass requires correlating the two.
// This module parses a realistic config subset into the policy engine's
// structures and supports the reverse queries the correlator needs.
//
// Supported statements (see tests/net/config_test.cc for full examples):
//
//   router bgp <asn>
//    bgp deterministic-med
//    bgp always-compare-med
//    neighbor <ip> remote-as <asn>
//    neighbor <ip> route-map <name> in|out
//    neighbor <ip> maximum-prefix <n>
//   ip prefix-list <name> permit|deny <a.b.c.d/len> [ge <n>] [le <n>]
//   ip community-list <name> permit <asn:value>
//   route-map <name> permit|deny <seq>
//    match community <community-list-name>
//    match ip address prefix-list <prefix-list-name>
//    match as-path-contains <asn>
//    match empty-as-path
//    set local-preference <n>
//    set metric <n>
//    set community <asn:value> additive
//    set comm-list <name> delete
//    set as-path prepend <count>
//
// Comment lines start with '!' and blank lines are ignored.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/prefix.h"
#include "bgp/rib.h"
#include "net/policy.h"

namespace ranomaly::net {

struct NeighborConfig {
  bgp::AsNumber remote_as = 0;
  std::string import_map_name;  // empty => passthrough
  std::string export_map_name;
  std::uint32_t max_prefix_limit = 0;
};

// A parse error with 1-based line number and message.
struct ConfigError {
  std::size_t line = 0;
  std::string message;
};

// The parsed form of one router's configuration.
class RouterConfig {
 public:
  bgp::AsNumber asn() const { return asn_; }
  const bgp::DecisionConfig& decision() const { return decision_; }

  const std::map<bgp::Ipv4Addr, NeighborConfig>& neighbors() const {
    return neighbors_;
  }

  const RouteMap* FindRouteMap(std::string_view name) const;
  const PrefixList* FindPrefixList(std::string_view name) const;
  // A community list here is a single community value (the paper's
  // policies are all single-tag); returns nullopt if unknown.
  std::optional<bgp::Community> FindCommunityList(std::string_view name) const;

  // Resolves a neighbor's route-map names into an executable policy.
  // Unknown map names behave as passthrough (IOS applies nothing).
  NeighborPolicy CompileNeighborPolicy(bgp::Ipv4Addr neighbor) const;

  // Reverse query for the D.1 correlator: all (map name, clause index)
  // pairs whose match condition involves `community`.
  struct CommunityUse {
    std::string map_name;
    std::size_t clause_index = 0;
    const RouteMapClause* clause = nullptr;
  };
  std::vector<CommunityUse> FindClausesMatchingCommunity(
      bgp::Community community) const;

  // Parses a config text.  On failure returns nullopt and fills `error`.
  static std::optional<RouterConfig> Parse(std::string_view text,
                                           ConfigError* error = nullptr);

 private:
  bgp::AsNumber asn_ = 0;
  bgp::DecisionConfig decision_;
  std::map<bgp::Ipv4Addr, NeighborConfig> neighbors_;
  std::map<std::string, RouteMap, std::less<>> route_maps_;
  std::map<std::string, PrefixList, std::less<>> prefix_lists_;
  std::map<std::string, bgp::Community, std::less<>> community_lists_;
};

}  // namespace ranomaly::net
