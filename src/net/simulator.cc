#include "net/simulator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ranomaly::net {
namespace {

bgp::Community RelationTag(PeerRelation relation) {
  switch (relation) {
    case PeerRelation::kCustomer: return kEnteredViaCustomer;
    case PeerRelation::kPeer: return kEnteredViaPeer;
    case PeerRelation::kProvider: return kEnteredViaProvider;
    case PeerRelation::kInternal: break;
  }
  throw std::logic_error("RelationTag: internal sessions are not tagged");
}

void StripReservedTags(bgp::CommunitySet& communities) {
  communities.Remove(kEnteredViaCustomer);
  communities.Remove(kEnteredViaPeer);
  communities.Remove(kEnteredViaProvider);
}

bool HasAnyReservedTag(const bgp::CommunitySet& communities) {
  return communities.Contains(kEnteredViaCustomer) ||
         communities.Contains(kEnteredViaPeer) ||
         communities.Contains(kEnteredViaProvider);
}

}  // namespace

Simulator::Simulator(Topology topology, std::uint64_t seed)
    : topology_(std::move(topology)), rng_(seed) {
  routers_.reserve(topology_.RouterCount());
  for (std::size_t i = 0; i < topology_.RouterCount(); ++i) {
    RouterState state;
    state.loc_rib = bgp::LocRib(
        topology_.router(static_cast<RouterIndex>(i)).decision);
    routers_.push_back(std::move(state));
  }
  link_up_.assign(topology_.LinkCount(), false);
  for (std::size_t li = 0; li < topology_.LinkCount(); ++li) {
    const LinkSpec& l = topology_.link(static_cast<LinkIndex>(li));
    PeerState a_side;
    a_side.peer = l.b;
    a_side.link = static_cast<LinkIndex>(li);
    a_side.relation = l.b_is_as_seen_by_a;
    a_side.policy = l.a_policy;
    a_side.mrai = l.a_mrai;
    a_side.rr_client = l.b_is_rr_client_of_a;
    routers_[l.a].peers.push_back(std::move(a_side));

    PeerState b_side;
    b_side.peer = l.a;
    b_side.link = static_cast<LinkIndex>(li);
    b_side.relation = Topology::Reverse(l.b_is_as_seen_by_a);
    b_side.policy = l.b_policy;
    b_side.mrai = l.b_mrai;
    b_side.rr_client = l.a_is_rr_client_of_b;
    routers_[l.b].peers.push_back(std::move(b_side));
  }
}

void Simulator::Push(QueueItem item) {
  item.seq = seq_++;
  queue_.push(std::move(item));
}

Simulator::PeerState* Simulator::FindPeerState(RouterIndex router,
                                               RouterIndex neighbor) {
  for (PeerState& p : routers_.at(router).peers) {
    if (p.peer == neighbor) return &p;
  }
  return nullptr;
}

Simulator::PeerState* Simulator::FindPeerStateByAddress(RouterIndex router,
                                                        bgp::Ipv4Addr addr) {
  for (PeerState& p : routers_.at(router).peers) {
    if (topology_.router(p.peer).address == addr) return &p;
  }
  return nullptr;
}

void Simulator::Originate(RouterIndex router, const bgp::Prefix& prefix,
                          bgp::PathAttributes attrs) {
  DoOriginate(router, prefix, std::move(attrs));
}

void Simulator::WithdrawOrigin(RouterIndex router, const bgp::Prefix& prefix) {
  DoWithdrawOrigin(router, prefix);
}

void Simulator::ScheduleOriginate(util::SimTime at, RouterIndex router,
                                  const bgp::Prefix& prefix,
                                  bgp::PathAttributes attrs) {
  QueueItem item;
  item.time = at;
  item.kind = QueueItem::Kind::kOriginate;
  item.to = router;
  item.prefix = prefix;
  item.attrs = std::move(attrs);
  Push(std::move(item));
}

void Simulator::ScheduleWithdrawOrigin(util::SimTime at, RouterIndex router,
                                       const bgp::Prefix& prefix) {
  QueueItem item;
  item.time = at;
  item.kind = QueueItem::Kind::kWithdrawOrigin;
  item.to = router;
  item.prefix = prefix;
  Push(std::move(item));
}

void Simulator::ScheduleLinkDown(LinkIndex link, util::SimTime at) {
  QueueItem item;
  item.time = at;
  item.kind = QueueItem::Kind::kLinkDown;
  item.link = link;
  Push(std::move(item));
}

void Simulator::ScheduleLinkUp(LinkIndex link, util::SimTime at) {
  QueueItem item;
  item.time = at;
  item.kind = QueueItem::Kind::kLinkUp;
  item.link = link;
  Push(std::move(item));
}

void Simulator::ScheduleLinkFlaps(LinkIndex link, util::SimTime start,
                                  util::SimDuration down_for,
                                  util::SimDuration up_for,
                                  std::size_t cycles) {
  util::SimTime t = start;
  for (std::size_t i = 0; i < cycles; ++i) {
    ScheduleLinkDown(link, t);
    ScheduleLinkUp(link, t + down_for);
    t += down_for + up_for;
  }
}

bool Simulator::IsLinkUp(LinkIndex link) const { return link_up_.at(link); }

void Simulator::Start() {
  if (started_) throw std::logic_error("Simulator::Start called twice");
  started_ = true;
  for (std::size_t li = 0; li < topology_.LinkCount(); ++li) {
    if (topology_.link(static_cast<LinkIndex>(li)).initially_up) {
      DoLinkUp(static_cast<LinkIndex>(li));
    }
  }
}

void Simulator::Run(util::SimTime until) {
  if (!started_) throw std::logic_error("Simulator::Run before Start");
  while (!queue_.empty() && queue_.top().time <= until) {
    QueueItem item = queue_.top();
    queue_.pop();
    now_ = std::max(now_, item.time);
    Dispatch(item);
  }
  now_ = std::max(now_, until);
}

bool Simulator::RunToQuiescence(util::SimTime max_time) {
  if (!started_) throw std::logic_error("Simulator::Run before Start");
  while (!queue_.empty() && queue_.top().time <= max_time) {
    QueueItem item = queue_.top();
    queue_.pop();
    now_ = std::max(now_, item.time);
    Dispatch(item);
  }
  return queue_.empty();
}

void Simulator::Dispatch(const QueueItem& item) {
  switch (item.kind) {
    case QueueItem::Kind::kDeliverUpdate:
      DeliverUpdate(item);
      break;
    case QueueItem::Kind::kLinkUp:
      DoLinkUp(item.link);
      break;
    case QueueItem::Kind::kLinkDown:
      DoLinkDown(item.link);
      break;
    case QueueItem::Kind::kMraiFlush: {
      PeerState* ps = FindPeerState(item.to, item.from);
      if (ps != nullptr) {
        ps->flush_scheduled = false;
        FlushPeer(item.to, *ps);
      }
      break;
    }
    case QueueItem::Kind::kOriginate:
      DoOriginate(item.to, item.prefix, item.attrs);
      break;
    case QueueItem::Kind::kWithdrawOrigin:
      DoWithdrawOrigin(item.to, item.prefix);
      break;
    case QueueItem::Kind::kDampingReuse:
      HandleDampingReuse(item);
      break;
  }
}

void Simulator::DoLinkUp(LinkIndex link) {
  if (link_up_.at(link)) return;
  link_up_[link] = true;
  ++stats_.sessions_established;
  const LinkSpec& l = topology_.link(link);
  const RouterIndex ends[2] = {l.a, l.b};
  for (RouterIndex r : ends) {
    for (PeerState& p : routers_[r].peers) {
      if (p.link == link) {
        p.up = true;
        p.next_send_allowed = now_;
      }
    }
  }
  // Full table exchange: each side advertises its current best routes.
  for (RouterIndex r : ends) {
    PeerState* p = nullptr;
    for (PeerState& ps : routers_[r].peers) {
      if (ps.link == link) p = &ps;
    }
    if (p == nullptr) continue;
    std::vector<bgp::Prefix> prefixes;
    routers_[r].loc_rib.ForEach(
        [&](const bgp::Prefix& prefix, const auto&, auto) {
          prefixes.push_back(prefix);
        });
    for (const bgp::Prefix& prefix : prefixes) {
      EnqueueToPeer(r, *p, prefix, ComputeExport(r, *p, prefix));
    }
  }
}

void Simulator::DoLinkDown(LinkIndex link) {
  if (!link_up_.at(link)) return;
  link_up_[link] = false;
  ++stats_.sessions_dropped;
  const LinkSpec& l = topology_.link(link);
  const RouterIndex ends[2] = {l.a, l.b};
  for (RouterIndex r : ends) {
    for (PeerState& p : routers_[r].peers) {
      if (p.link != link) continue;
      p.up = false;
      p.pending.clear();
      p.adj_out.clear();
      const bgp::Ipv4Addr peer_addr = topology_.router(p.peer).address;
      // Everything learned over this session is withdrawn (paper Section
      // I: a reset forces explicit withdrawal of all the peer's routes),
      // and each counts as a flap for RFC 2439 damping.
      auto lost = p.adj_in.Clear();
      for (auto& [prefix, attrs] : lost) {
        ApplyWithdrawPenalty(p, prefix);
        const bgp::BestPathChange change =
            routers_[r].loc_rib.Update(peer_addr, prefix, std::nullopt);
        if (change.Changed()) {
          NotifyTaps(r, prefix, change);
          PropagateBestChange(r, prefix);
        }
      }
    }
  }
}

void Simulator::DoOriginate(RouterIndex router, const bgp::Prefix& prefix,
                            bgp::PathAttributes attrs) {
  const RouterSpec& me = topology_.router(router);
  if (attrs.nexthop == bgp::Ipv4Addr()) attrs.nexthop = me.address;
  routers_[router].originated[prefix] = attrs;
  bgp::RouteCandidate cand;
  cand.peer = me.address;
  cand.attrs = std::move(attrs);
  cand.ebgp = false;
  cand.peer_router_id = me.router_id;
  const bgp::BestPathChange change =
      routers_[router].loc_rib.Update(me.address, prefix, std::move(cand));
  if (change.Changed()) {
    NotifyTaps(router, prefix, change);
    PropagateBestChange(router, prefix);
  }
}

void Simulator::DoWithdrawOrigin(RouterIndex router,
                                 const bgp::Prefix& prefix) {
  const RouterSpec& me = topology_.router(router);
  if (routers_[router].originated.erase(prefix) == 0) return;
  const bgp::BestPathChange change =
      routers_[router].loc_rib.Update(me.address, prefix, std::nullopt);
  if (change.Changed()) {
    NotifyTaps(router, prefix, change);
    PropagateBestChange(router, prefix);
  }
}

void Simulator::DeliverUpdate(const QueueItem& item) {
  if (!link_up_.at(item.link)) return;  // lost with the session
  PeerState* ps = nullptr;
  for (PeerState& p : routers_.at(item.to).peers) {
    if (p.link == item.link && p.peer == item.from) ps = &p;
  }
  if (ps == nullptr || !ps->up) return;
  ++stats_.messages_delivered;
  for (const RouteChange& change : item.changes) {
    if (!ps->up) break;  // a max-prefix teardown mid-message
    ++stats_.updates_delivered;
    ApplyChange(item.to, *ps, change);
  }
}

void Simulator::ApplyWithdrawPenalty(PeerState& peer_state,
                                     const bgp::Prefix& prefix) {
  // RFC 2439: every withdrawal of a route we actually held adds penalty,
  // whether it arrived explicitly or via session loss.
  if (!peer_state.policy.damping.enabled) return;
  const DampingConfig& config = peer_state.policy.damping;
  DampState& state = peer_state.damping[prefix];
  DecayPenalty(config, state, now_);
  state.penalty = std::min(config.max_penalty,
                           state.penalty + config.withdraw_penalty);
  state.pending.reset();  // nothing to reuse once withdrawn
  if (!state.suppressed && state.penalty >= config.suppress_threshold) {
    state.suppressed = true;
  }
}

void Simulator::WithdrawFromPeer(RouterIndex router, PeerState& peer_state,
                                 const bgp::Prefix& prefix) {
  if (peer_state.adj_in.Find(prefix) != nullptr) {
    ApplyWithdrawPenalty(peer_state, prefix);
  }
  const auto old = peer_state.adj_in.Withdraw(prefix);
  if (!old) return;
  const bgp::Ipv4Addr peer_addr = topology_.router(peer_state.peer).address;
  const bgp::BestPathChange change =
      routers_[router].loc_rib.Update(peer_addr, prefix, std::nullopt);
  if (change.Changed()) {
    NotifyTaps(router, prefix, change);
    PropagateBestChange(router, prefix);
  }
}

void Simulator::DecayPenalty(const DampingConfig& config, DampState& state,
                             util::SimTime now) {
  if (now <= state.last_update) return;
  const double half_lives =
      static_cast<double>(now - state.last_update) /
      static_cast<double>(config.half_life);
  state.penalty *= std::exp2(-half_lives);
  state.last_update = now;
}

void Simulator::HandleDampingReuse(const QueueItem& item) {
  PeerState* ps = FindPeerState(item.to, item.from);
  if (ps == nullptr) return;
  const auto it = ps->damping.find(item.prefix);
  if (it == ps->damping.end()) return;
  DampState& state = it->second;
  if (!state.suppressed) return;
  const DampingConfig& config = ps->policy.damping;
  DecayPenalty(config, state, now_);
  if (state.penalty > config.reuse_threshold) {
    // More flaps arrived since this timer was set; try again later.
    QueueItem retry;
    retry.time = now_ + config.half_life;
    retry.kind = QueueItem::Kind::kDampingReuse;
    retry.to = item.to;
    retry.from = item.from;
    retry.prefix = item.prefix;
    Push(std::move(retry));
    return;
  }
  state.suppressed = false;
  ++stats_.routes_reused;
  if (state.pending && ps->up) {
    bgp::PathAttributes attrs = std::move(*state.pending);
    state.pending.reset();
    InstallRoute(item.to, *ps, item.prefix, std::move(attrs));
  }
}

void Simulator::InstallRoute(RouterIndex router, PeerState& peer_state,
                             const bgp::Prefix& prefix,
                             bgp::PathAttributes attrs) {
  const bool ebgp = peer_state.relation != PeerRelation::kInternal;
  peer_state.adj_in.Announce(prefix, attrs);

  if (peer_state.policy.max_prefix_limit != 0 &&
      peer_state.adj_in.size() > peer_state.policy.max_prefix_limit) {
    // The guard the paper's ISP-B had: too many routes on one session
    // closes the session rather than melting the router.
    ++stats_.max_prefix_teardowns;
    DoLinkDown(peer_state.link);
    return;
  }

  bgp::RouteCandidate cand;
  cand.peer = topology_.router(peer_state.peer).address;
  cand.attrs = std::move(attrs);
  cand.ebgp = ebgp;
  cand.peer_router_id = topology_.router(peer_state.peer).router_id;
  const bgp::BestPathChange change =
      routers_[router].loc_rib.Update(cand.peer, prefix, std::move(cand));
  if (change.Changed()) {
    NotifyTaps(router, prefix, change);
    PropagateBestChange(router, prefix);
  }
}

void Simulator::ApplyChange(RouterIndex router, PeerState& peer_state,
                            const RouteChange& route_change) {
  const RouterSpec& me = topology_.router(router);
  if (!route_change.attrs) {
    WithdrawFromPeer(router, peer_state, route_change.prefix);
    return;
  }

  bgp::PathAttributes in = *route_change.attrs;
  const bool ebgp = peer_state.relation != PeerRelation::kInternal;

  // Receiver-side AS-path loop detection.
  if (ebgp && in.as_path.Contains(me.asn)) {
    ++stats_.loop_suppressed;
    WithdrawFromPeer(router, peer_state, route_change.prefix);
    return;
  }
  // Route-reflection loop detection.
  if (in.originator_id != 0 && in.originator_id == me.router_id) {
    WithdrawFromPeer(router, peer_state, route_change.prefix);
    return;
  }

  if (ebgp) {
    in.local_pref = DefaultLocalPref(peer_state.relation);
    in.originator_id = 0;
    StripReservedTags(in.communities);  // do not trust external tags
  }

  auto imported =
      peer_state.policy.import_map.Apply(route_change.prefix, in, me.asn);
  if (!imported) {
    WithdrawFromPeer(router, peer_state, route_change.prefix);
    return;
  }
  if (ebgp) imported->communities.Add(RelationTag(peer_state.relation));

  // RFC 2439 gate: a suppressed route's announcements are withheld until
  // the penalty decays below the reuse threshold.
  if (peer_state.policy.damping.enabled) {
    const DampingConfig& config = peer_state.policy.damping;
    const auto dit = peer_state.damping.find(route_change.prefix);
    if (dit != peer_state.damping.end() && dit->second.suppressed) {
      DampState& state = dit->second;
      DecayPenalty(config, state, now_);
      if (state.penalty > config.reuse_threshold) {
        state.pending = std::move(*imported);
        ++stats_.routes_damped;
        // Schedule the reuse check for when the penalty will have
        // decayed to the threshold.
        const double half_lives =
            std::log2(state.penalty / config.reuse_threshold);
        QueueItem reuse;
        reuse.time = now_ + static_cast<util::SimDuration>(
                                half_lives *
                                static_cast<double>(config.half_life)) +
                     1;
        reuse.kind = QueueItem::Kind::kDampingReuse;
        reuse.to = router;
        reuse.from = peer_state.peer;
        reuse.prefix = route_change.prefix;
        Push(std::move(reuse));
        return;
      }
      state.suppressed = false;
      ++stats_.routes_reused;
    }
  }

  InstallRoute(router, peer_state, route_change.prefix, std::move(*imported));
}

void Simulator::PropagateBestChange(RouterIndex router,
                                    const bgp::Prefix& prefix) {
  for (PeerState& p : routers_[router].peers) {
    if (!p.up) continue;
    EnqueueToPeer(router, p, prefix, ComputeExport(router, p, prefix));
  }
}

std::optional<bgp::PathAttributes> Simulator::ComputeExport(
    RouterIndex router, const PeerState& peer, const bgp::Prefix& prefix) {
  const bgp::RouteCandidate* best = routers_[router].loc_rib.Best(prefix);
  if (best == nullptr) return std::nullopt;
  const RouterSpec& me = topology_.router(router);
  const RouterSpec& them = topology_.router(peer.peer);

  const bool self_originated = best->peer == me.address;
  const bool learned_ebgp = best->ebgp;
  const bool internal_session = peer.relation == PeerRelation::kInternal;

  if (internal_session) {
    // Never echo a route back to the iBGP session it came from.
    if (!self_originated && them.address == best->peer) return std::nullopt;
    if (!self_originated && !learned_ebgp) {
      // iBGP-learned: plain speakers do not re-advertise over iBGP.
      if (!me.route_reflector) return std::nullopt;
      const PeerState* source = nullptr;
      for (const PeerState& p : routers_[router].peers) {
        if (topology_.router(p.peer).address == best->peer) source = &p;
      }
      const bool from_client = source != nullptr && source->rr_client;
      // Reflect client routes to everyone; non-client routes to clients.
      if (!from_client && !peer.rr_client) return std::nullopt;
    }
  } else {
    // Gao-Rexford export gate, driven by the reserved entry tags.
    const bool entered_via_customer =
        best->attrs.communities.Contains(kEnteredViaCustomer);
    const bool untagged = !HasAnyReservedTag(best->attrs.communities);
    const bool exportable = self_originated || entered_via_customer ||
                            untagged ||
                            peer.relation == PeerRelation::kCustomer;
    if (!exportable) return std::nullopt;
    // Sender-side loop avoidance.
    if (best->attrs.as_path.Contains(them.asn)) {
      ++stats_.loop_suppressed;
      return std::nullopt;
    }
  }

  bgp::PathAttributes out = best->attrs;
  if (!internal_session) {
    out.local_pref = bgp::kDefaultLocalPref;  // LOCAL_PREF is iBGP-only
    // MED is non-transitive: received MEDs stop here; only MEDs this AS
    // itself assigns (origination or export policy) cross the boundary.
    if (!self_originated) out.med.reset();
    StripReservedTags(out.communities);
    out.originator_id = 0;
  }

  auto mapped = peer.policy.export_map.Apply(prefix, out, me.asn);
  if (!mapped) return std::nullopt;
  out = std::move(*mapped);

  if (!internal_session) {
    out.as_path = out.as_path.Prepend(me.asn);
    out.nexthop = me.address;
  } else if (me.route_reflector && !self_originated && !learned_ebgp &&
             out.originator_id == 0) {
    out.originator_id = best->peer_router_id;
  }
  return out;
}

void Simulator::EnqueueToPeer(RouterIndex router, PeerState& peer,
                              const bgp::Prefix& prefix,
                              std::optional<bgp::PathAttributes> attrs) {
  const auto pit = peer.pending.find(prefix);
  if (pit != peer.pending.end()) {
    if (pit->second == attrs) return;
    pit->second = std::move(attrs);
  } else {
    const auto oit = peer.adj_out.find(prefix);
    const bool currently_advertised = oit != peer.adj_out.end();
    if (!attrs && !currently_advertised) return;
    if (attrs && currently_advertised && oit->second == *attrs) return;
    peer.pending.emplace(prefix, std::move(attrs));
  }
  FlushPeer(router, peer);
}

void Simulator::FlushPeer(RouterIndex router, PeerState& peer) {
  if (!peer.up || peer.pending.empty()) return;
  const bool can_send_all = peer.mrai == 0 || now_ >= peer.next_send_allowed;

  std::vector<RouteChange> batch;
  for (auto it = peer.pending.begin(); it != peer.pending.end();) {
    const bool is_withdraw = !it->second.has_value();
    // Withdrawals are never rate-limited (classic MRAI applies to
    // announcements only).
    if (!can_send_all && !is_withdraw) {
      ++it;
      continue;
    }
    const auto oit = peer.adj_out.find(it->first);
    const bool currently = oit != peer.adj_out.end();
    const bool noop = is_withdraw ? !currently
                                  : (currently && oit->second == *it->second);
    if (!noop) {
      batch.push_back(RouteChange{it->first, it->second});
      if (is_withdraw) {
        peer.adj_out.erase(it->first);
      } else {
        peer.adj_out[it->first] = *it->second;
      }
    }
    it = peer.pending.erase(it);
  }

  if (!batch.empty()) {
    const LinkSpec& l = topology_.link(peer.link);
    QueueItem item;
    item.time = now_ + l.delay;
    item.kind = QueueItem::Kind::kDeliverUpdate;
    item.to = peer.peer;
    item.from = router;
    item.link = peer.link;
    item.changes = std::move(batch);
    Push(std::move(item));
    if (can_send_all && peer.mrai > 0) {
      peer.next_send_allowed = now_ + peer.mrai;
    }
  }

  if (!peer.pending.empty() && !peer.flush_scheduled) {
    peer.flush_scheduled = true;
    QueueItem item;
    item.time = peer.next_send_allowed;
    item.kind = QueueItem::Kind::kMraiFlush;
    item.to = router;
    item.from = peer.peer;
    Push(std::move(item));
  }
}

void Simulator::OnIgpChange(RouterIndex router) {
  for (auto& [prefix, change] : routers_.at(router).loc_rib.ReselectAll()) {
    NotifyTaps(router, prefix, change);
    PropagateBestChange(router, prefix);
  }
}

void Simulator::NotifyTaps(RouterIndex router, const bgp::Prefix& prefix,
                           const bgp::BestPathChange& change) {
  ++stats_.best_path_changes;
  if (routers_[router].taps.empty()) return;
  const RouterSpec& me = topology_.router(router);
  const auto advertisable = [&](const std::optional<bgp::RouteCandidate>& c) {
    if (!c) return false;
    if (c->ebgp || c->peer == me.address) return true;  // eBGP or local
    // The collector peers as a *client* of route reflectors ("the routers
    // passed REX their full routes", paper Section II), and reflectors
    // reflect everything — client- or non-client-learned — to clients.
    // Only a plain iBGP speaker hides its iBGP-learned best paths.
    return me.route_reflector;
  };
  BestPathChangeView view;
  view.time = now_;
  view.router = router;
  view.prefix = prefix;
  view.old_best = change.old_best;
  view.new_best = change.new_best;
  view.old_advertisable = advertisable(change.old_best);
  view.new_advertisable = advertisable(change.new_best);
  for (const BestPathTap& tap : routers_[router].taps) tap(view);
}

void Simulator::AddBestPathTap(RouterIndex router, BestPathTap tap) {
  routers_.at(router).taps.push_back(std::move(tap));
}

const bgp::LocRib& Simulator::RibOf(RouterIndex router) const {
  return routers_.at(router).loc_rib;
}

const bgp::AdjRibIn* Simulator::AdjRibInOf(RouterIndex router,
                                           RouterIndex neighbor) const {
  for (const PeerState& p : routers_.at(router).peers) {
    if (p.peer == neighbor) return &p.adj_in;
  }
  return nullptr;
}

}  // namespace ranomaly::net
