// Router- and AS-level topology description consumed by the simulator.
//
// The unit is a BGP router.  External ASes are usually modeled as one
// router each; the viewpoint AS (Berkeley's campus, ISP-Anon's backbone)
// has as many routers as the scenario needs, connected by iBGP and
// optionally organized under route reflectors.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/prefix.h"
#include "bgp/rib.h"
#include "net/policy.h"
#include "util/time.h"

namespace ranomaly::net {

using RouterIndex = std::uint32_t;
using LinkIndex = std::uint32_t;

// Business relationship of the *far* router from the near router's point
// of view, driving Gao-Rexford default policies: customers are preferred
// and re-exported to everyone; peer/provider routes only flow to
// customers.  kInternal marks iBGP.
enum class PeerRelation : std::uint8_t {
  kCustomer,
  kPeer,
  kProvider,
  kInternal,
};

const char* ToString(PeerRelation relation);

// Default LOCAL_PREF assigned at import for each relation when no
// explicit policy overrides it (the standard prefer-customer economics).
std::uint32_t DefaultLocalPref(PeerRelation relation);

struct RouterSpec {
  std::string name;
  bgp::Ipv4Addr address;   // peering/loopback address; also event "peer" id
  bgp::AsNumber asn = 0;
  std::uint32_t router_id = 0;  // decision-process tiebreak; default: address
  bool route_reflector = false;
  bgp::DecisionConfig decision;
};

// One BGP adjacency.  Policy and MRAI are per direction: `a_*` fields are
// what router `a` applies on this session.
struct LinkSpec {
  RouterIndex a = 0;
  RouterIndex b = 0;
  PeerRelation b_is_as_seen_by_a = PeerRelation::kPeer;  // b's role to a
  util::SimDuration delay = 10 * util::kMillisecond;
  util::SimDuration a_mrai = 0;  // min advertisement interval, a -> b
  util::SimDuration b_mrai = 0;
  NeighborPolicy a_policy;  // a's import/export/max-prefix toward b
  NeighborPolicy b_policy;
  bool b_is_rr_client_of_a = false;
  bool a_is_rr_client_of_b = false;
  bool initially_up = true;
};

class Topology {
 public:
  RouterIndex AddRouter(RouterSpec spec);
  LinkIndex AddLink(LinkSpec spec);

  const RouterSpec& router(RouterIndex i) const { return routers_.at(i); }
  const LinkSpec& link(LinkIndex i) const { return links_.at(i); }
  LinkSpec& mutable_link(LinkIndex i) { return links_.at(i); }

  std::size_t RouterCount() const { return routers_.size(); }
  std::size_t LinkCount() const { return links_.size(); }

  std::optional<RouterIndex> FindRouterByName(std::string_view name) const;
  std::optional<RouterIndex> FindRouterByAddress(bgp::Ipv4Addr addr) const;
  std::optional<LinkIndex> FindLink(RouterIndex a, RouterIndex b) const;

  // The inverse relation as seen from b's side.
  static PeerRelation Reverse(PeerRelation relation);

 private:
  std::vector<RouterSpec> routers_;
  std::vector<LinkSpec> links_;
};

}  // namespace ranomaly::net
