// Discrete-event BGP simulator.
//
// Substitutes for the live networks the paper measured: it implements the
// actual protocol machinery — per-peer Adj-RIB-In/Out, the decision
// process, iBGP/eBGP export rules with route reflection, Gao-Rexford
// relationship policies, route-maps, MRAI batching, sender-side loop
// avoidance, session up/down semantics with full-table exchange, and
// max-prefix teardown — so that the event streams observed by the
// collector have the structure of real BGP: bursts on resets, path
// exploration on withdrawals, low-grade churn from flapping sessions, and
// genuine MED oscillation from the non-transitive decision process.
//
// Entry-relation bookkeeping: at eBGP import every route is tagged with a
// reserved community (65535:1 customer, 65535:2 peer, 65535:3 provider),
// exactly as production ISPs do; the tag rides iBGP to the far edge where
// the Gao-Rexford export gate reads it, and is stripped on eBGP export.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/attributes.h"
#include "bgp/prefix.h"
#include "bgp/rib.h"
#include "net/topology.h"
#include "util/rng.h"
#include "util/time.h"

namespace ranomaly::net {

// Reserved communities used internally to mark how a route entered the AS.
inline constexpr bgp::Community kEnteredViaCustomer{65535, 1};
inline constexpr bgp::Community kEnteredViaPeer{65535, 2};
inline constexpr bgp::Community kEnteredViaProvider{65535, 3};

// Observation hook: router `router`'s best path for `prefix` changed.
// This is exactly what an iBGP peer of that router (e.g. the REX
// collector) would learn.  `new_best` empty means withdrawal.
//
// The `*_advertisable` flags say whether the route would actually be sent
// to an iBGP peer: plain speakers only pass on eBGP-learned and local
// routes; route reflectors additionally pass on client-learned routes.
// A best path moving to a non-advertisable route looks like a withdrawal
// from the collector's seat.
struct BestPathChangeView {
  util::SimTime time = 0;
  RouterIndex router = 0;
  bgp::Prefix prefix;
  std::optional<bgp::RouteCandidate> old_best;
  std::optional<bgp::RouteCandidate> new_best;
  bool old_advertisable = false;
  bool new_advertisable = false;
};

using BestPathTap = std::function<void(const BestPathChangeView&)>;

class Simulator {
 public:
  explicit Simulator(Topology topology, std::uint64_t seed = 1);

  const Topology& topology() const { return topology_; }
  util::SimTime now() const { return now_; }

  // --- route origination ----------------------------------------------
  // Installs a locally originated route at `router` and propagates.
  // `attrs.as_path` should normally be empty (it is the origin).
  void Originate(RouterIndex router, const bgp::Prefix& prefix,
                 bgp::PathAttributes attrs = {});
  void WithdrawOrigin(RouterIndex router, const bgp::Prefix& prefix);

  // Scheduled variants (take effect during Run at the given time).
  void ScheduleOriginate(util::SimTime at, RouterIndex router,
                         const bgp::Prefix& prefix,
                         bgp::PathAttributes attrs = {});
  void ScheduleWithdrawOrigin(util::SimTime at, RouterIndex router,
                              const bgp::Prefix& prefix);

  // --- session control --------------------------------------------------
  void ScheduleLinkDown(LinkIndex link, util::SimTime at);
  void ScheduleLinkUp(LinkIndex link, util::SimTime at);

  // Repeated down/up cycles: down at start, up after `down_for`, down
  // again after a further `up_for`, ... `cycles` times.  This drives the
  // Section IV-E continuous customer flap.
  void ScheduleLinkFlaps(LinkIndex link, util::SimTime start,
                         util::SimDuration down_for, util::SimDuration up_for,
                         std::size_t cycles);

  bool IsLinkUp(LinkIndex link) const;

  // --- execution ---------------------------------------------------------
  // Brings up all initially-up sessions and exchanges initial tables.
  // Must be called once before Run.
  void Start();

  // Processes queued events with time <= until; advances now() to at
  // least `until` (idempotent if the queue is already drained).
  void Run(util::SimTime until);

  // Runs until the queue drains or `max_time` is reached; returns true if
  // the network converged (queue drained).
  bool RunToQuiescence(util::SimTime max_time);

  bool QueueEmpty() const { return queue_.empty(); }

  // --- IGP coupling --------------------------------------------------------
  // Re-runs best-path selection on `router` (its BGP scanner) after an
  // IGP change made its `DecisionConfig::igp_cost` return new values;
  // best-path changes are tapped and propagated like any other.  Section
  // III-D.3: "a change in IGP such as link metric can cause a router to
  // reselect a different BGP best route."
  void OnIgpChange(RouterIndex router);

  // --- observation -------------------------------------------------------
  // Tap best-path changes at one router (pass to the Collector).
  void AddBestPathTap(RouterIndex router, BestPathTap tap);

  const bgp::LocRib& RibOf(RouterIndex router) const;
  // The Adj-RIB-In at `router` for the given neighbor, if adjacent.
  const bgp::AdjRibIn* AdjRibInOf(RouterIndex router,
                                  RouterIndex neighbor) const;

  struct Stats {
    std::uint64_t updates_delivered = 0;     // per-prefix changes received
    std::uint64_t messages_delivered = 0;    // batched UPDATE messages
    std::uint64_t best_path_changes = 0;
    std::uint64_t sessions_established = 0;
    std::uint64_t sessions_dropped = 0;
    std::uint64_t max_prefix_teardowns = 0;
    std::uint64_t loop_suppressed = 0;
    std::uint64_t routes_damped = 0;   // announcements withheld (RFC 2439)
    std::uint64_t routes_reused = 0;   // suppressed routes released
  };
  const Stats& stats() const { return stats_; }

 private:
  // RFC 2439 per-(peer, prefix) flap-damping state.
  struct DampState {
    double penalty = 0.0;
    util::SimTime last_update = 0;
    bool suppressed = false;
    // The latest (post-import) announcement withheld while suppressed.
    std::optional<bgp::PathAttributes> pending;
  };

  // One direction of a link, owned by the near router.
  struct PeerState {
    RouterIndex peer = 0;
    LinkIndex link = 0;
    PeerRelation relation = PeerRelation::kPeer;  // peer's role to me
    NeighborPolicy policy;
    util::SimDuration mrai = 0;
    bool rr_client = false;  // the peer is my route-reflector client
    bool up = false;
    bgp::AdjRibIn adj_in;
    std::unordered_map<bgp::Prefix, bgp::PathAttributes, bgp::PrefixHash>
        adj_out;
    // MRAI machinery: pending per-prefix changes and the earliest time the
    // next batch may be sent.
    std::unordered_map<bgp::Prefix, std::optional<bgp::PathAttributes>,
                       bgp::PrefixHash>
        pending;
    util::SimTime next_send_allowed = 0;
    bool flush_scheduled = false;
    std::unordered_map<bgp::Prefix, DampState, bgp::PrefixHash> damping;
  };

  struct RouterState {
    bgp::LocRib loc_rib;
    std::vector<PeerState> peers;
    std::unordered_map<bgp::Prefix, bgp::PathAttributes, bgp::PrefixHash>
        originated;
    std::vector<BestPathTap> taps;
  };

  // A per-prefix route change carried inside an UPDATE.
  struct RouteChange {
    bgp::Prefix prefix;
    std::optional<bgp::PathAttributes> attrs;  // empty => withdraw
  };

  struct QueueItem {
    util::SimTime time = 0;
    std::uint64_t seq = 0;
    enum class Kind : std::uint8_t {
      kDeliverUpdate,
      kLinkUp,
      kLinkDown,
      kMraiFlush,
      kOriginate,
      kWithdrawOrigin,
      kDampingReuse,
    } kind = Kind::kDeliverUpdate;
    RouterIndex to = 0;         // receiving router (updates/flush/originate)
    RouterIndex from = 0;       // sending router (updates); peer for flush
    LinkIndex link = 0;
    std::vector<RouteChange> changes;
    bgp::Prefix prefix;               // originate/withdraw-origin
    bgp::PathAttributes attrs;        // originate

    friend bool operator>(const QueueItem& a, const QueueItem& b) {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  void Push(QueueItem item);
  void Dispatch(const QueueItem& item);

  PeerState* FindPeerState(RouterIndex router, RouterIndex neighbor);
  PeerState* FindPeerStateByAddress(RouterIndex router, bgp::Ipv4Addr addr);

  void DoLinkUp(LinkIndex link);
  void DoLinkDown(LinkIndex link);
  void DoOriginate(RouterIndex router, const bgp::Prefix& prefix,
                   bgp::PathAttributes attrs);
  void DoWithdrawOrigin(RouterIndex router, const bgp::Prefix& prefix);
  void DeliverUpdate(const QueueItem& item);

  // Applies one received route change at `router` from `peer_state`.
  void ApplyChange(RouterIndex router, PeerState& peer_state,
                   const RouteChange& change);

  // Installs an (already imported, damping-cleared) route into the
  // Adj-RIB-In and Loc-RIB and propagates any best change.
  void InstallRoute(RouterIndex router, PeerState& peer_state,
                    const bgp::Prefix& prefix, bgp::PathAttributes attrs);

  // Decays `state`'s penalty to `now` (RFC 2439 exponential decay).
  static void DecayPenalty(const DampingConfig& config, DampState& state,
                           util::SimTime now);
  // Charges one flap's worth of penalty against (peer, prefix).
  void ApplyWithdrawPenalty(PeerState& peer_state, const bgp::Prefix& prefix);
  void HandleDampingReuse(const QueueItem& item);

  // Removes the peer's route for `prefix` (if present) and propagates.
  void WithdrawFromPeer(RouterIndex router, PeerState& peer_state,
                        const bgp::Prefix& prefix);

  // Recomputes exports of `prefix` from `router` to every eligible peer
  // after a best-path change.
  void PropagateBestChange(RouterIndex router, const bgp::Prefix& prefix);

  // Computes what `router` would advertise to `peer` for its current best
  // route of `prefix` (nullopt => nothing / withdraw).
  std::optional<bgp::PathAttributes> ComputeExport(RouterIndex router,
                                                   const PeerState& peer,
                                                   const bgp::Prefix& prefix);

  // Queues a per-prefix change on the session toward `peer`, respecting
  // MRAI (withdrawals flush immediately, announcements may batch).
  void EnqueueToPeer(RouterIndex router, PeerState& peer,
                     const bgp::Prefix& prefix,
                     std::optional<bgp::PathAttributes> attrs);

  void FlushPeer(RouterIndex router, PeerState& peer);

  void NotifyTaps(RouterIndex router, const bgp::Prefix& prefix,
                  const bgp::BestPathChange& change);

  Topology topology_;
  util::Rng rng_;
  std::vector<RouterState> routers_;
  std::vector<bool> link_up_;
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>
      queue_;
  util::SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  bool started_ = false;
  Stats stats_;
};

}  // namespace ranomaly::net
