#include "net/policy.h"

namespace ranomaly::net {

bool PrefixRule::Matches(const bgp::Prefix& p) const {
  if (ge == 0 && le == 0) return p == prefix;
  if (!prefix.Covers(p)) return false;
  const std::uint8_t lo = ge == 0 ? prefix.length() : ge;
  const std::uint8_t hi = le == 0 ? 32 : le;
  return p.length() >= lo && p.length() <= hi;
}

bool PrefixList::Permits(const bgp::Prefix& p) const {
  for (const PrefixRule& rule : rules_) {
    if (rule.Matches(p)) return rule.permit;
  }
  return false;
}

bool RouteMapClause::Matches(const bgp::Prefix& prefix,
                             const bgp::PathAttributes& attrs) const {
  if (match_community && !attrs.communities.Contains(*match_community)) {
    return false;
  }
  if (match_prefix_list && !match_prefix_list->Permits(prefix)) return false;
  if (match_as_in_path && !attrs.as_path.Contains(*match_as_in_path)) {
    return false;
  }
  if (match_as_path_pattern &&
      !match_as_path_pattern->Matches(attrs.as_path)) {
    return false;
  }
  if (match_empty_as_path && !attrs.as_path.Empty()) return false;
  return true;
}

std::optional<bgp::PathAttributes> RouteMap::Apply(
    const bgp::Prefix& prefix, const bgp::PathAttributes& attrs,
    bgp::AsNumber own_as) const {
  if (IsPassthrough()) return attrs;
  for (const RouteMapClause& clause : clauses_) {
    if (!clause.Matches(prefix, attrs)) continue;
    if (!clause.permit) return std::nullopt;
    bgp::PathAttributes out = attrs;
    if (clause.set_local_pref) out.local_pref = *clause.set_local_pref;
    if (clause.set_med) out.med = *clause.set_med;
    for (bgp::Community c : clause.set_communities) out.communities.Add(c);
    for (bgp::Community c : clause.delete_communities) out.communities.Remove(c);
    if (clause.prepend_count > 0) {
      out.as_path = out.as_path.Prepend(own_as, clause.prepend_count);
    }
    return out;
  }
  return std::nullopt;  // implicit deny
}

const char* ToString(Relationship relationship) {
  switch (relationship) {
    case Relationship::kCustomer: return "customer";
    case Relationship::kPeer: return "peer";
    case Relationship::kProvider: return "provider";
  }
  return "?";
}

const char* ToString(RouteSource source) {
  switch (source) {
    case RouteSource::kSelf: return "self";
    case RouteSource::kCustomer: return "customer";
    case RouteSource::kPeer: return "peer";
    case RouteSource::kProvider: return "provider";
  }
  return "?";
}

bool ExportPermitted(RouteSource source, Relationship neighbor) {
  // Own and customer routes earn money on every link; peer and provider
  // routes only flow down to customers.
  if (source == RouteSource::kSelf || source == RouteSource::kCustomer) {
    return true;
  }
  return neighbor == Relationship::kCustomer;
}

int PreferenceRank(RouteSource source) {
  switch (source) {
    case RouteSource::kSelf: return 0;
    case RouteSource::kCustomer: return 1;
    case RouteSource::kPeer: return 2;
    case RouteSource::kProvider: return 3;
  }
  return 4;
}

}  // namespace ranomaly::net
