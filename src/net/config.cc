#include "net/config.h"

#include <algorithm>

#include "util/strings.h"

namespace ranomaly::net {
namespace {

using util::ParseU32;
using util::SplitWhitespace;
using util::Trim;

// Parser context: which block ("router bgp" / "route-map") we are inside.
enum class Block { kNone, kRouterBgp, kRouteMap };

struct Parser {
  RouterConfig* config;
  std::map<std::string, RouteMap, std::less<>>* route_maps;
  std::map<std::string, PrefixList, std::less<>>* prefix_lists;
  std::map<std::string, bgp::Community, std::less<>>* community_lists;
};

std::string Str(std::string_view sv) { return std::string(sv); }

}  // namespace

const RouteMap* RouterConfig::FindRouteMap(std::string_view name) const {
  const auto it = route_maps_.find(name);
  return it == route_maps_.end() ? nullptr : &it->second;
}

const PrefixList* RouterConfig::FindPrefixList(std::string_view name) const {
  const auto it = prefix_lists_.find(name);
  return it == prefix_lists_.end() ? nullptr : &it->second;
}

std::optional<bgp::Community> RouterConfig::FindCommunityList(
    std::string_view name) const {
  const auto it = community_lists_.find(name);
  if (it == community_lists_.end()) return std::nullopt;
  return it->second;
}

NeighborPolicy RouterConfig::CompileNeighborPolicy(
    bgp::Ipv4Addr neighbor) const {
  NeighborPolicy policy;
  const auto it = neighbors_.find(neighbor);
  if (it == neighbors_.end()) return policy;
  const NeighborConfig& nc = it->second;
  if (const RouteMap* m = FindRouteMap(nc.import_map_name)) {
    policy.import_map = *m;
  }
  if (const RouteMap* m = FindRouteMap(nc.export_map_name)) {
    policy.export_map = *m;
  }
  policy.max_prefix_limit = nc.max_prefix_limit;
  return policy;
}

std::vector<RouterConfig::CommunityUse>
RouterConfig::FindClausesMatchingCommunity(bgp::Community community) const {
  std::vector<CommunityUse> uses;
  for (const auto& [name, map] : route_maps_) {
    const auto& clauses = map.clauses();
    for (std::size_t i = 0; i < clauses.size(); ++i) {
      if (clauses[i].match_community == community) {
        uses.push_back(CommunityUse{name, i, &clauses[i]});
      }
    }
  }
  return uses;
}

std::optional<RouterConfig> RouterConfig::Parse(std::string_view text,
                                                ConfigError* error) {
  RouterConfig config;
  Block block = Block::kNone;
  RouteMap* current_map = nullptr;
  RouteMapClause* current_clause = nullptr;

  auto fail = [&](std::size_t line, std::string message)
      -> std::optional<RouterConfig> {
    if (error != nullptr) *error = ConfigError{line, std::move(message)};
    return std::nullopt;
  };

  const auto lines = util::Split(text, '\n');
  for (std::size_t ln = 0; ln < lines.size(); ++ln) {
    const std::size_t line_no = ln + 1;
    const std::string_view raw = lines[ln];
    const std::string_view line = Trim(raw);
    if (line.empty() || line[0] == '!') {
      // '!' also terminates blocks in IOS style.
      if (!line.empty()) {
        block = Block::kNone;
        current_map = nullptr;
        current_clause = nullptr;
      }
      continue;
    }
    const auto tok = SplitWhitespace(line);

    // --- top-level statements ---
    if (tok[0] == "router") {
      if (tok.size() != 3 || tok[1] != "bgp") {
        return fail(line_no, "expected: router bgp <asn>");
      }
      std::uint32_t asn = 0;
      if (!ParseU32(tok[2], asn)) return fail(line_no, "bad ASN");
      config.asn_ = asn;
      block = Block::kRouterBgp;
      continue;
    }

    if (tok[0] == "ip" && tok.size() >= 2 && tok[1] == "prefix-list") {
      // ip prefix-list NAME permit|deny PFX [ge N] [le N]
      if (tok.size() < 5) return fail(line_no, "short prefix-list statement");
      PrefixRule rule;
      if (tok[3] == "permit") {
        rule.permit = true;
      } else if (tok[3] == "deny") {
        rule.permit = false;
      } else {
        return fail(line_no, "expected permit|deny");
      }
      const auto pfx = bgp::Prefix::Parse(tok[4]);
      if (!pfx) return fail(line_no, "bad prefix");
      rule.prefix = *pfx;
      std::size_t i = 5;
      while (i + 1 < tok.size() + 1 && i < tok.size()) {
        std::uint32_t v = 0;
        if (i + 1 >= tok.size() || !ParseU32(tok[i + 1], v) || v > 32) {
          return fail(line_no, "bad ge/le");
        }
        if (tok[i] == "ge") {
          rule.ge = static_cast<std::uint8_t>(v);
        } else if (tok[i] == "le") {
          rule.le = static_cast<std::uint8_t>(v);
        } else {
          return fail(line_no, "unknown prefix-list option");
        }
        i += 2;
      }
      config.prefix_lists_[Str(tok[2])].Add(rule);
      continue;
    }

    if (tok[0] == "ip" && tok.size() >= 2 && tok[1] == "community-list") {
      // ip community-list NAME permit ASN:VAL
      if (tok.size() != 5 || tok[3] != "permit") {
        return fail(line_no, "expected: ip community-list <name> permit <c>");
      }
      const auto c = bgp::Community::Parse(tok[4]);
      if (!c) return fail(line_no, "bad community");
      config.community_lists_[Str(tok[2])] = *c;
      continue;
    }

    if (tok[0] == "route-map") {
      // route-map NAME permit|deny SEQ
      if (tok.size() != 4) return fail(line_no, "expected: route-map <name> permit|deny <seq>");
      RouteMapClause clause;
      if (tok[2] == "permit") {
        clause.permit = true;
      } else if (tok[2] == "deny") {
        clause.permit = false;
      } else {
        return fail(line_no, "expected permit|deny");
      }
      std::uint32_t seq = 0;
      if (!ParseU32(tok[3], seq)) return fail(line_no, "bad sequence number");
      auto [it, inserted] =
          config.route_maps_.try_emplace(Str(tok[1]), RouteMap(Str(tok[1])));
      current_map = &it->second;
      current_map->AddClause(std::move(clause));
      current_clause = &current_map->MutableLastClause();
      block = Block::kRouteMap;
      continue;
    }

    // --- statements inside "router bgp" ---
    if (block == Block::kRouterBgp) {
      if (tok[0] == "bgp" && tok.size() == 2) {
        if (tok[1] == "deterministic-med") {
          config.decision_.deterministic_med = true;
          continue;
        }
        if (tok[1] == "always-compare-med") {
          config.decision_.always_compare_med = true;
          continue;
        }
        return fail(line_no, "unknown bgp option");
      }
      if (tok[0] == "neighbor" && tok.size() >= 3) {
        const auto addr = bgp::Ipv4Addr::Parse(tok[1]);
        if (!addr) return fail(line_no, "bad neighbor address");
        NeighborConfig& nc = config.neighbors_[*addr];
        if (tok[2] == "remote-as" && tok.size() == 4) {
          std::uint32_t asn = 0;
          if (!ParseU32(tok[3], asn)) return fail(line_no, "bad remote-as");
          nc.remote_as = asn;
          continue;
        }
        if (tok[2] == "route-map" && tok.size() == 5) {
          if (tok[4] == "in") {
            nc.import_map_name = Str(tok[3]);
          } else if (tok[4] == "out") {
            nc.export_map_name = Str(tok[3]);
          } else {
            return fail(line_no, "expected in|out");
          }
          continue;
        }
        if (tok[2] == "maximum-prefix" && tok.size() == 4) {
          std::uint32_t n = 0;
          if (!ParseU32(tok[3], n)) return fail(line_no, "bad maximum-prefix");
          nc.max_prefix_limit = n;
          continue;
        }
        return fail(line_no, "unknown neighbor statement");
      }
      return fail(line_no, "unknown statement in router bgp block");
    }

    // --- statements inside "route-map" ---
    if (block == Block::kRouteMap && current_clause != nullptr) {
      if (tok[0] == "match") {
        if (tok.size() == 3 && tok[1] == "community") {
          const auto c = config.community_lists_.find(tok[2]);
          if (c == config.community_lists_.end()) {
            return fail(line_no, "unknown community-list");
          }
          current_clause->match_community = c->second;
          continue;
        }
        if (tok.size() == 5 && tok[1] == "ip" && tok[2] == "address" &&
            tok[3] == "prefix-list") {
          const auto pl = config.prefix_lists_.find(tok[4]);
          if (pl == config.prefix_lists_.end()) {
            return fail(line_no, "unknown prefix-list");
          }
          current_clause->match_prefix_list = pl->second;
          continue;
        }
        if (tok.size() == 3 && tok[1] == "as-path-contains") {
          std::uint32_t asn = 0;
          if (!ParseU32(tok[2], asn)) return fail(line_no, "bad ASN");
          current_clause->match_as_in_path = asn;
          continue;
        }
        if (tok.size() == 3 && tok[1] == "as-path") {
          auto pattern = bgp::AsPathPattern::Parse(tok[2]);
          if (!pattern) return fail(line_no, "bad as-path pattern");
          current_clause->match_as_path_pattern = std::move(*pattern);
          continue;
        }
        if (tok.size() == 2 && tok[1] == "empty-as-path") {
          current_clause->match_empty_as_path = true;
          continue;
        }
        return fail(line_no, "unknown match statement");
      }
      if (tok[0] == "set") {
        if (tok.size() == 3 && tok[1] == "local-preference") {
          std::uint32_t v = 0;
          if (!ParseU32(tok[2], v)) return fail(line_no, "bad local-preference");
          current_clause->set_local_pref = v;
          continue;
        }
        if (tok.size() == 3 && tok[1] == "metric") {
          std::uint32_t v = 0;
          if (!ParseU32(tok[2], v)) return fail(line_no, "bad metric");
          current_clause->set_med = v;
          continue;
        }
        if (tok.size() >= 3 && tok[1] == "community") {
          const auto c = bgp::Community::Parse(tok[2]);
          if (!c) return fail(line_no, "bad community");
          current_clause->set_communities.push_back(*c);
          continue;
        }
        if (tok.size() == 4 && tok[1] == "comm-list" && tok[3] == "delete") {
          const auto c = config.community_lists_.find(tok[2]);
          if (c == config.community_lists_.end()) {
            return fail(line_no, "unknown community-list");
          }
          current_clause->delete_communities.push_back(c->second);
          continue;
        }
        if (tok.size() == 4 && tok[1] == "as-path" && tok[2] == "prepend") {
          std::uint32_t n = 0;
          if (!ParseU32(tok[3], n) || n > 255) {
            return fail(line_no, "bad prepend count");
          }
          current_clause->prepend_count = static_cast<std::uint8_t>(n);
          continue;
        }
        return fail(line_no, "unknown set statement");
      }
      return fail(line_no, "unknown statement in route-map block");
    }

    return fail(line_no, "unknown top-level statement");
  }

  return config;
}

}  // namespace ranomaly::net
