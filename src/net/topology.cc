#include "net/topology.h"

#include <stdexcept>

namespace ranomaly::net {

const char* ToString(PeerRelation relation) {
  switch (relation) {
    case PeerRelation::kCustomer: return "customer";
    case PeerRelation::kPeer: return "peer";
    case PeerRelation::kProvider: return "provider";
    case PeerRelation::kInternal: return "internal";
  }
  return "?";
}

std::uint32_t DefaultLocalPref(PeerRelation relation) {
  switch (relation) {
    case PeerRelation::kCustomer: return 120;
    case PeerRelation::kPeer: return 100;
    case PeerRelation::kProvider: return 80;
    case PeerRelation::kInternal: return bgp::kDefaultLocalPref;
  }
  return bgp::kDefaultLocalPref;
}

RouterIndex Topology::AddRouter(RouterSpec spec) {
  if (spec.router_id == 0) spec.router_id = spec.address.value();
  routers_.push_back(std::move(spec));
  return static_cast<RouterIndex>(routers_.size() - 1);
}

LinkIndex Topology::AddLink(LinkSpec spec) {
  if (spec.a >= routers_.size() || spec.b >= routers_.size()) {
    throw std::out_of_range("Topology::AddLink: router index out of range");
  }
  if (spec.a == spec.b) {
    throw std::invalid_argument("Topology::AddLink: self-loop");
  }
  const bool internal = routers_[spec.a].asn == routers_[spec.b].asn;
  if (internal != (spec.b_is_as_seen_by_a == PeerRelation::kInternal)) {
    throw std::invalid_argument(
        "Topology::AddLink: relation must be kInternal iff same AS");
  }
  links_.push_back(std::move(spec));
  return static_cast<LinkIndex>(links_.size() - 1);
}

std::optional<RouterIndex> Topology::FindRouterByName(
    std::string_view name) const {
  for (std::size_t i = 0; i < routers_.size(); ++i) {
    if (routers_[i].name == name) return static_cast<RouterIndex>(i);
  }
  return std::nullopt;
}

std::optional<RouterIndex> Topology::FindRouterByAddress(
    bgp::Ipv4Addr addr) const {
  for (std::size_t i = 0; i < routers_.size(); ++i) {
    if (routers_[i].address == addr) return static_cast<RouterIndex>(i);
  }
  return std::nullopt;
}

std::optional<LinkIndex> Topology::FindLink(RouterIndex a,
                                            RouterIndex b) const {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const LinkSpec& l = links_[i];
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) {
      return static_cast<LinkIndex>(i);
    }
  }
  return std::nullopt;
}

PeerRelation Topology::Reverse(PeerRelation relation) {
  switch (relation) {
    case PeerRelation::kCustomer: return PeerRelation::kProvider;
    case PeerRelation::kPeer: return PeerRelation::kPeer;
    case PeerRelation::kProvider: return PeerRelation::kCustomer;
    case PeerRelation::kInternal: return PeerRelation::kInternal;
  }
  return PeerRelation::kPeer;
}

}  // namespace ranomaly::net
