// BGP routing-policy engine: route-maps, community lists, prefix lists.
//
// Policies are "the complex part of a simple protocol" (paper Section I):
// they set LOCAL_PREF from community tags, filter routes, prepend paths
// and enforce max-prefix limits.  Every case-study anomaly in Section IV
// is an interaction between routing dynamics and these constructs — e.g.
// 128.32.1.3 only accepting commodity-Internet routes tagged 11423:65350,
// which is what turns a route leak into a rate-limiter bypass.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/as_path_pattern.h"
#include "bgp/attributes.h"
#include "bgp/prefix.h"
#include "util/time.h"

namespace ranomaly::net {

// A prefix-list entry: matches `prefix` itself, or — with ge/le — any
// more-specific within the mask-length bounds, Cisco-style.
struct PrefixRule {
  bgp::Prefix prefix;
  std::uint8_t ge = 0;  // 0 => exact length
  std::uint8_t le = 0;  // 0 => exact length (unless ge set)
  bool permit = true;

  bool Matches(const bgp::Prefix& p) const;
};

class PrefixList {
 public:
  PrefixList() = default;
  explicit PrefixList(std::vector<PrefixRule> rules) : rules_(std::move(rules)) {}

  void Add(PrefixRule rule) { rules_.push_back(std::move(rule)); }

  // First matching rule decides; no match => deny (Cisco semantics).
  bool Permits(const bgp::Prefix& p) const;

  std::size_t size() const { return rules_.size(); }

 private:
  std::vector<PrefixRule> rules_;
};

// One clause of a route-map: all present match conditions must hold, then
// the set actions are applied (if the clause permits).
struct RouteMapClause {
  bool permit = true;
  // Match conditions (empty optional = unconditional).
  std::optional<bgp::Community> match_community;
  std::optional<PrefixList> match_prefix_list;
  std::optional<bgp::AsNumber> match_as_in_path;
  // Cisco-style AS-path regex ("ip as-path access-list"), e.g. "^701_".
  std::optional<bgp::AsPathPattern> match_as_path_pattern;
  bool match_empty_as_path = false;  // "locally originated only" exports
  // Set actions.
  std::optional<std::uint32_t> set_local_pref;
  std::optional<std::uint32_t> set_med;
  std::vector<bgp::Community> set_communities;
  std::vector<bgp::Community> delete_communities;
  std::uint8_t prepend_count = 0;  // prepend own AS this many times

  bool Matches(const bgp::Prefix& prefix,
               const bgp::PathAttributes& attrs) const;
};

// An ordered route-map.  Evaluation: first matching clause wins; a
// permitting clause applies its sets and accepts; a denying clause
// rejects; falling off the end rejects (Cisco's implicit deny).
class RouteMap {
 public:
  RouteMap() = default;
  explicit RouteMap(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void AddClause(RouteMapClause clause) { clauses_.push_back(std::move(clause)); }
  const std::vector<RouteMapClause>& clauses() const { return clauses_; }
  // For the config parser, which builds a clause incrementally from the
  // match/set lines that follow its "route-map" header.
  RouteMapClause& MutableLastClause() { return clauses_.back(); }

  // Applies the map.  Returns the transformed attributes if accepted,
  // nullopt if the route is filtered.  `own_as` is used by prepend.
  std::optional<bgp::PathAttributes> Apply(const bgp::Prefix& prefix,
                                           const bgp::PathAttributes& attrs,
                                           bgp::AsNumber own_as) const;

  // An empty (no-clause) map in this engine means "permit everything
  // unchanged" so that links without policy behave neutrally.
  bool IsPassthrough() const { return clauses_.empty(); }

 private:
  std::string name_;
  std::vector<RouteMapClause> clauses_;
};

// Route-flap damping (RFC 2439), the era-standard defence against
// exactly the Section IV-E pathology: each flap adds penalty, penalty
// decays exponentially, and a route whose penalty exceeds the suppress
// threshold is withheld from the decision process until it decays below
// the reuse threshold.
struct DampingConfig {
  bool enabled = false;
  double withdraw_penalty = 1000.0;
  double suppress_threshold = 2000.0;
  double reuse_threshold = 750.0;
  util::SimDuration half_life = 15 * util::kMinute;
  double max_penalty = 12000.0;
};

// --- Gao-Rexford relationship model -----------------------------------
//
// Inter-AS links carry a business relationship (CAIDA serial-2 terms:
// provider-to-customer or peer-to-peer), and the classic Gao-Rexford
// export rule — routes learned from customers go to everyone, routes
// learned from peers or providers go only to customers — is what keeps
// AS paths valley-free.  The internet-scale workload generator
// (workload::BuildInternetScale) propagates routes under exactly these
// rules; they live here because they are routing *policy*, the same
// layer as the route-maps above.

// What a neighbor is to us across one link.
enum class Relationship : std::uint8_t {
  kCustomer = 0,  // they pay us
  kPeer = 1,      // settlement-free
  kProvider = 2,  // we pay them
};

const char* ToString(Relationship relationship);

// Where we learned a route (kSelf = we originate the prefix).
enum class RouteSource : std::uint8_t {
  kSelf = 0,
  kCustomer = 1,
  kPeer = 2,
  kProvider = 3,
};

const char* ToString(RouteSource source);

// The Gao-Rexford export rule: own and customer routes are exported on
// every link; peer and provider routes only down to customers (exporting
// them anywhere else would make us free transit — the Section I route
// leak is exactly this rule being violated).
bool ExportPermitted(RouteSource source, Relationship neighbor);

// Gao-Rexford route preference: smaller is better (customer routes beat
// peer routes beat provider routes, regardless of path length).
int PreferenceRank(RouteSource source);

// Per-neighbor session policy: import/export maps + max-prefix guard +
// flap damping.
struct NeighborPolicy {
  RouteMap import_map;
  RouteMap export_map;
  // 0 = unlimited.  Exceeding it tears the session down, reproducing the
  // ISP-A/ISP-B leak meltdown of Section I.
  std::uint32_t max_prefix_limit = 0;
  DampingConfig damping;
};

}  // namespace ranomaly::net
