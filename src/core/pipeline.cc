#include "core/pipeline.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stats.h"
#include "util/strings.h"

namespace ranomaly::core {

const char* ToString(IncidentKind kind) {
  switch (kind) {
    case IncidentKind::kSessionReset: return "session-reset";
    case IncidentKind::kRouteLeak: return "route-leak";
    case IncidentKind::kPathChange: return "path-change";
    case IncidentKind::kRouteFlap: return "route-flap";
    case IncidentKind::kMedOscillation: return "med-oscillation";
    case IncidentKind::kUnknown: return "unknown";
  }
  return "?";
}

Pipeline::Pipeline(PipelineOptions options) : options_(std::move(options)) {
  const std::size_t threads = options_.threads != 0
                                  ? options_.threads
                                  : util::ThreadPool::DefaultThreadCount();
  pool_ = std::make_unique<util::ThreadPool>(threads);
  // Stemming shares the pipeline's pool for its sharded bigram count.
  options_.stemming.pool = pool_.get();
}

IncidentEvidence Pipeline::ExtractEvidence(
    std::span<const bgp::Event> events,
    const stemming::Component& component) {
  IncidentEvidence ev;
  if (component.event_indices.empty()) return ev;

  std::size_t withdraws = 0;
  std::unordered_map<std::uint32_t, std::size_t> per_peer;
  bool med = false;

  // Per-prefix first and last observation, and cycle counts.  A
  // "transition" is an announce<->withdraw flip OR an announcement whose
  // nexthop differs from the previous one: at a route reflector with full
  // visibility an oscillation shows up as implicit replacements between
  // alternatives, with few explicit withdrawals.
  struct PrefixTrack {
    bool have_first = false;
    bgp::AsPath first_path;
    bgp::AsPath last_path;
    bgp::EventType last_type = bgp::EventType::kAnnounce;
    bgp::Ipv4Addr last_nexthop;
    std::size_t transitions = 0;
    std::size_t events = 0;
  };
  std::map<bgp::Prefix, PrefixTrack> tracks;

  for (const std::size_t idx : component.event_indices) {
    const bgp::Event& e = events[idx];
    if (e.type == bgp::EventType::kWithdraw) ++withdraws;
    ++per_peer[e.peer.value()];
    if (e.attrs.med) med = true;

    PrefixTrack& t = tracks[e.prefix];
    if (!t.have_first) {
      t.have_first = true;
      t.first_path = e.attrs.as_path;
      t.last_type = e.type;
    } else if (e.type != t.last_type ||
               (e.type == bgp::EventType::kAnnounce &&
                e.attrs.nexthop != t.last_nexthop)) {
      ++t.transitions;
      t.last_type = e.type;
    }
    t.last_nexthop = e.attrs.nexthop;
    t.last_path = e.attrs.as_path;
    ++t.events;
  }

  const double n = static_cast<double>(component.event_indices.size());
  ev.withdraw_fraction = static_cast<double>(withdraws) / n;
  std::size_t busiest = 0;
  for (const auto& [peer, count] : per_peer) {
    busiest = std::max(busiest, count);
  }
  ev.single_peer_fraction = static_cast<double>(busiest) / n;
  ev.med_present = med;

  double cycles = 0.0;
  double growth = 0.0;
  std::size_t restored = 0;
  std::size_t final_announce = 0;
  std::size_t busiest_prefix_events = 0;
  std::set<bgp::AsNumber> initial_ases;
  std::set<bgp::AsNumber> final_ases;
  for (const auto& [prefix, t] : tracks) {
    if (t.events > busiest_prefix_events) ev.dominant_prefix = prefix;
    cycles += static_cast<double>(t.transitions) / 2.0;
    growth += static_cast<double>(t.last_path.Length()) -
              static_cast<double>(t.first_path.Length());
    if (t.last_path == t.first_path) ++restored;
    if (t.last_type == bgp::EventType::kAnnounce) ++final_announce;
    busiest_prefix_events = std::max(busiest_prefix_events, t.events);
    for (const bgp::AsNumber a : t.first_path.asns()) initial_ases.insert(a);
    for (const bgp::AsNumber a : t.last_path.asns()) final_ases.insert(a);
  }
  const double p = static_cast<double>(tracks.size());
  ev.cycles_per_prefix = cycles / p;
  ev.path_growth = growth / p;
  ev.restored_fraction = static_cast<double>(restored) / p;
  ev.final_announce_fraction = static_cast<double>(final_announce) / p;
  ev.dominant_prefix_fraction = static_cast<double>(busiest_prefix_events) / n;
  for (const bgp::AsNumber a : final_ases) {
    if (!initial_ases.contains(a)) ++ev.new_as_count;
  }
  return ev;
}

IncidentKind Pipeline::Classify(const IncidentEvidence& evidence,
                                std::size_t prefix_count) {
  // A single prefix (or one dominating the component) cycling many times:
  // a persistent flap; MED involvement marks the RFC 3345 pattern.
  const bool flap_shaped =
      (prefix_count <= 5 || evidence.dominant_prefix_fraction >= 0.8) &&
      evidence.cycles_per_prefix >= 4.0;
  if (flap_shaped) {
    return evidence.med_present ? IncidentKind::kMedOscillation
                                : IncidentKind::kRouteFlap;
  }
  // Many prefixes ending on much longer paths through previously unseen
  // ASes: a leak swallowed the routes.
  if (prefix_count >= 10 && evidence.path_growth >= 2.0 &&
      evidence.new_as_count >= 2) {
    return IncidentKind::kRouteLeak;
  }
  // Mass withdrawal from (mostly) one peer, then the routes come back:
  // a session reset seen from inside.
  if (evidence.withdraw_fraction >= 0.3 &&
      evidence.single_peer_fraction >= 0.5 &&
      evidence.final_announce_fraction >= 0.9 &&
      evidence.restored_fraction >= 0.5) {
    return IncidentKind::kSessionReset;
  }
  // Prefixes moved somewhere else and stayed there.
  if (prefix_count >= 10 && evidence.restored_fraction < 0.5 &&
      evidence.final_announce_fraction >= 0.9 &&
      (std::abs(evidence.path_growth) >= 0.5 || evidence.new_as_count >= 1)) {
    return IncidentKind::kPathChange;
  }
  return IncidentKind::kUnknown;
}

#ifndef RANOMALY_NO_PROVENANCE
// Builds the incident's provenance record (obs/provenance.h): a
// deterministic strided sample of the contributing events plus the
// distinct (peer, nexthop, as-path, prefix) sequence classes among the
// sample.  Window-relative: sampled event ids index the analyzed
// window; the live runner rewrites them to stream indices before
// attaching the record to the ledger.
void Pipeline::PopulateProvenance(std::span<const bgp::Event> events,
                                  const obs::ProvenanceCaps& caps,
                                  Incident& inc) {
  obs::IncidentProvenance& prov = inc.provenance;
  const stemming::Component& component = inc.component;
  prov.stem_first = inc.stem_key.first;
  prov.stem_second = inc.stem_key.second;
  prov.stem = inc.stem_label;
  prov.kind = ToString(inc.kind);
  prov.path = {"window:stemming", "component:" + inc.stem_label,
               std::string("classify:") + ToString(inc.kind)};
  prov.window_events = events.size();
  prov.component_events = component.event_indices.size();
  prov.component_weight = component.event_weight;
  prov.events_total = component.event_indices.size();

  const std::size_t total = component.event_indices.size();
  const std::size_t take = std::min<std::size_t>(caps.max_events, total);
  prov.events.reserve(take);
  // Distinct sequence classes among the sample, keyed exactly like the
  // stemmer encodes events (consecutive AS-path prepends collapsed).
  std::vector<std::vector<std::uint32_t>> keys;
  for (std::size_t k = 0; k < take; ++k) {
    // k * total / take is strictly increasing while take <= total, so
    // the sample is evenly strided over the whole component, never just
    // its head.
    const std::size_t idx = component.event_indices[k * total / take];
    const bgp::Event& e = events[idx];
    obs::ProvenanceEvent pe;
    pe.stream_index = idx;
    pe.time_sec =
        static_cast<double>(e.time) / static_cast<double>(util::kSecond);
    pe.type = bgp::ToString(e.type);
    pe.peer = e.peer.ToString();
    pe.prefix = e.prefix.ToString();
    prov.events.push_back(std::move(pe));

    std::vector<std::uint32_t> key;
    key.push_back(e.peer.value());
    key.push_back(e.attrs.nexthop.value());
    bgp::AsNumber last_as = 0;
    bool have_last = false;
    for (const bgp::AsNumber asn : e.attrs.as_path.asns()) {
      if (have_last && asn == last_as) continue;
      key.push_back(asn);
      last_as = asn;
      have_last = true;
    }
    key.push_back(e.prefix.addr().value());
    key.push_back(e.prefix.length());
    std::size_t cls = keys.size();
    for (std::size_t j = 0; j < keys.size(); ++j) {
      if (keys[j] == key) {
        cls = j;
        break;
      }
    }
    if (cls == keys.size()) {
      keys.push_back(std::move(key));
      ++prov.classes_total;
      if (prov.classes.size() < caps.max_classes) {
        obs::ProvenanceClass pc;
        pc.id = static_cast<std::uint32_t>(prov.classes.size());
        std::string seq = "peer " + e.peer.ToString() + " nexthop " +
                          e.attrs.nexthop.ToString();
        have_last = false;
        last_as = 0;
        for (const bgp::AsNumber asn : e.attrs.as_path.asns()) {
          if (have_last && asn == last_as) continue;
          seq += " AS" + std::to_string(asn);
          last_as = asn;
          have_last = true;
        }
        seq += " " + e.prefix.ToString();
        pc.sequence = std::move(seq);
        prov.classes.push_back(std::move(pc));
      }
    }
    if (cls < prov.classes.size()) prov.classes[cls].weight += 1.0;
  }
  for (obs::ProvenanceClass& pc : prov.classes) {
    pc.score = take == 0 ? 0.0 : pc.weight / static_cast<double>(take);
  }
}
#endif  // RANOMALY_NO_PROVENANCE

Incident Pipeline::MakeIncident(std::span<const bgp::Event> events,
                                const stemming::StemmingResult& result,
                                const stemming::Component& component) const {
  Incident inc;
  inc.component = component;
  inc.event_count = component.event_indices.size();
  inc.event_fraction =
      events.empty() ? 0.0
                     : static_cast<double>(inc.event_count) /
                           static_cast<double>(events.size());
  inc.prefix_count = component.prefixes.size();
  inc.stem_key = {result.symbols.Raw(component.stem.first),
                  result.symbols.Raw(component.stem.second)};
  inc.stem_label = result.StemLabel(component);
  inc.top_sequence = result.SequenceLabel(component);
  util::SimTime begin = 0;
  util::SimTime end = 0;
  util::SimTime ingest = 0;
  bool first = true;
  for (const std::size_t idx : component.event_indices) {
    const util::SimTime t = events[idx].time;
    if (first) {
      begin = end = t;
      first = false;
    } else {
      begin = std::min(begin, t);
      end = std::max(end, t);
    }
    ingest = std::max(ingest, events[idx].ingest_tick);
  }
  inc.begin = begin;
  inc.end = end;
  inc.ingest_tick = ingest;
  inc.evidence = ExtractEvidence(events, component);
  inc.kind = Classify(inc.evidence, inc.prefix_count);
  inc.summary = util::StrPrintf(
      "%s at %s: %zu prefixes, %zu events (%.0f%% of window), over %s",
      ToString(inc.kind), inc.stem_label.c_str(), inc.prefix_count,
      inc.event_count, inc.event_fraction * 100.0,
      util::FormatDuration(inc.end - inc.begin).c_str());
  return inc;
}

std::vector<Incident> Pipeline::AnalyzeWindow(
    std::span<const bgp::Event> events) const {
  std::vector<Incident> incidents;
  // Collection-layer markers are not routing events; stem over the routing
  // events only.  (Component indices then refer to the filtered window.)
  if (std::any_of(events.begin(), events.end(), [](const bgp::Event& e) {
        return bgp::IsMarker(e.type);
      })) {
    std::vector<bgp::Event> routing;
    routing.reserve(events.size());
    for (const bgp::Event& e : events) {
      if (!bgp::IsMarker(e.type)) routing.push_back(e);
    }
    return AnalyzeWindow(routing);
  }
  if (events.empty()) return incidents;
  obs::TraceSpan span("pipeline.window");
  span.Annotate("events", static_cast<std::uint64_t>(events.size()));
  RANOMALY_METRIC_COUNT("pipeline_windows_total", 1);
  const stemming::StemmingResult result =
      stemming::Stem(events, options_.stemming);
  for (const stemming::Component& component : result.components) {
    const double fraction = static_cast<double>(component.event_indices.size()) /
                            static_cast<double>(events.size());
    if (fraction < options_.min_component_fraction) continue;
    Incident incident = MakeIncident(events, result, component);
    if (incident.kind == IncidentKind::kUnknown && !options_.include_unknown) {
      continue;  // statistically strong but operationally featureless
    }
    incidents.push_back(std::move(incident));
  }
  return incidents;
}

std::vector<Incident> Pipeline::Analyze(
    const collector::EventStream& stream) const {
  std::vector<Incident> incidents;
  if (stream.empty()) return incidents;
  obs::TraceSpan analyze_span("pipeline.analyze");
  analyze_span.Annotate("events", static_cast<std::uint64_t>(stream.size()));
  RANOMALY_METRIC_COUNT("pipeline_analyses_total", 1);
  const util::StageTimer total_timer;

  // Spike-scale pass.  Windows are independent, so they fan out across
  // the pool; per-spike results merge in spike order below, which makes
  // the output bit-identical to the serial loop regardless of thread
  // count (the determinism contract, DESIGN.md).
  const util::StageTimer spike_timer;
  obs::TraceSpan spike_span("pipeline.spike_pass");
  const auto spikes = collector::DetectSpikes(stream, options_.spike_bucket,
                                              options_.spike_factor);
  spike_span.Annotate("spikes", static_cast<std::uint64_t>(spikes.size()));
  std::vector<std::vector<Incident>> per_spike(spikes.size());
  const auto analyze_spike = [&](std::size_t i) {
    const auto window =
        stream.Window(spikes[i].begin - options_.spike_margin,
                      spikes[i].end + options_.spike_margin);
    per_spike[i] = AnalyzeWindow(window);
  };
  pool_->ParallelFor(spikes.size(), analyze_spike);
  for (std::vector<Incident>& window_incidents : per_spike) {
    for (Incident& inc : window_incidents) {
      incidents.push_back(std::move(inc));
    }
  }
  RANOMALY_METRIC_COUNT("pipeline_spike_windows_total", spikes.size());
  RANOMALY_METRIC_OBSERVE("pipeline_spike_pass_seconds", obs::TimeBounds(),
                          spike_timer.Seconds());
  spike_span.End();

  // Long-window pass over the grass: everything *outside* the spike
  // windows (spikes were handled at their own timescale above; leaving
  // them in would let their mass drown the low-grade persistent
  // anomalies this pass exists to catch).
  if (options_.long_window_pass) {
    const util::StageTimer grass_timer;
    obs::TraceSpan grass_span("pipeline.grass_pass");
    std::vector<bgp::Event> grass;
    grass.reserve(stream.size());
    // DetectSpikes returns disjoint windows sorted by begin, and events()
    // is time-ordered, so one forward sweep decides membership: advance
    // past every padded window that ends at or before the event, then the
    // event is inside a spike iff it is inside the current one.
    std::size_t next_spike = 0;
    for (const bgp::Event& e : stream.events()) {
      while (next_spike < spikes.size() &&
             e.time >= spikes[next_spike].end + options_.spike_margin) {
        ++next_spike;
      }
      const bool inside_spike =
          next_spike < spikes.size() &&
          e.time >= spikes[next_spike].begin - options_.spike_margin;
      if (!inside_spike) grass.push_back(e);
    }
    grass_span.Annotate("events", static_cast<std::uint64_t>(grass.size()));
    for (Incident& inc : AnalyzeWindow(grass)) {
      incidents.push_back(std::move(inc));
    }
    RANOMALY_METRIC_COUNT("pipeline_grass_events_total", grass.size());
    RANOMALY_METRIC_OBSERVE("pipeline_grass_pass_seconds", obs::TimeBounds(),
                            grass_timer.Seconds());
  }

  // Deduplicate by stem identity (raw tagged symbol pair — stable across
  // the windows' independent SymbolTables), keeping the larger incident.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> by_stem;
  std::vector<Incident> unique;
  for (Incident& inc : incidents) {
    const auto it = by_stem.find(inc.stem_key);
    if (it == by_stem.end()) {
      by_stem[inc.stem_key] = unique.size();
      unique.push_back(std::move(inc));
    } else if (inc.event_count > unique[it->second].event_count) {
      unique[it->second] = std::move(inc);
    }
  }
  // Largest first.
  std::sort(unique.begin(), unique.end(),
            [](const Incident& a, const Incident& b) {
              return a.event_count > b.event_count;
            });

  // Flag incidents overlapping a degraded-feed window: their evidence may
  // reflect the collector's outage (stale-sweep withdrawals, resync
  // re-announcements) rather than the network.
  const auto gaps = collector::FeedGapWindows(stream);
  for (Incident& inc : unique) {
    for (const collector::FeedGapWindow& gap : gaps) {
      if (inc.begin <= gap.end && gap.begin <= inc.end) {
        inc.feed_degraded = true;
        inc.summary += " [feed-degraded]";
        break;
      }
    }
  }
  RANOMALY_METRIC_COUNT("pipeline_incidents_total", unique.size());
  RANOMALY_METRIC_OBSERVE("pipeline_analyze_seconds", obs::TimeBounds(),
                          total_timer.Seconds());
  return unique;
}

}  // namespace ranomaly::core
