// The Section III-D data-source integrations, applied to incidents:
//
//   D.1 policy correlation  — match the communities riding an incident's
//       events against the route-map clauses of parsed router configs,
//       explaining *why* routing reacted the way it did (e.g. Berkeley's
//       LOCALPREF 80/70 tied to 11423:65350).
//   D.2 traffic impact      — weigh the incident's prefixes by measured
//       traffic volume, separating elephant incidents from mice.
//   D.3 IGP drill-down      — pull the LSA activity temporally
//       surrounding the incident from the synchronized IGP log.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/incident.h"
#include "igp/lsa.h"
#include "net/config.h"
#include "traffic/traffic.h"

namespace ranomaly::core {

// --- D.1 --------------------------------------------------------------

struct PolicyFinding {
  bgp::Community community;
  std::string router_name;     // which router's config matched
  std::string route_map_name;
  std::size_t clause_index = 0;
  // What the clause does (the operator-facing explanation).
  std::string action;  // e.g. "set local-preference 80"
};

struct NamedConfig {
  std::string router_name;
  const net::RouterConfig* config = nullptr;
};

// Correlates the communities observed on the incident's events with the
// policy clauses that match them.
std::vector<PolicyFinding> CorrelatePolicies(
    const Incident& incident, std::span<const bgp::Event> window_events,
    std::span<const NamedConfig> configs);

// --- D.2 --------------------------------------------------------------

struct TrafficImpact {
  std::uint64_t bytes = 0;       // volume currently tied to the prefixes
  double volume_fraction = 0.0;  // of total measured traffic
  std::size_t elephant_prefixes = 0;  // affected prefixes in the top-80% set
};

TrafficImpact AssessTrafficImpact(const Incident& incident,
                                  const traffic::TrafficMatrix& matrix,
                                  double elephant_volume_fraction = 0.8);

// --- D.3 --------------------------------------------------------------

struct IgpCorrelation {
  std::vector<igp::LsaEvent> lsa_events;  // within the window
  bool igp_active = false;  // any LSA installed near the incident
};

IgpCorrelation CorrelateIgp(const Incident& incident, const igp::LsaLog& log,
                            util::SimDuration radius = 30 * util::kSecond);

}  // namespace ranomaly::core
