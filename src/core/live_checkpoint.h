// Analysis-tier checkpoint state: the typed contents of the RNC1 v2
// named sections (collector/checkpoint.h) that make `ranomaly serve`
// crash-safe.  core::LiveRunner snapshots this at a tick boundary and
// encodes it; a restarted runner decodes, validates, and resumes —
// replaying forward to a bit-identical incident stream.
//
// Sections (each starts with a u8 layout version, currently 1):
//   LIVE  replay cursor: stream identity (t0), events consumed, and the
//         running LiveStats as of the tick boundary
//   SHED  degradation-ladder state: level, hysteresis counter, sampling
//         phase, tracer suspension, and the marked shed windows
//   STEM  incident dedup set — sorted raw tagged symbol pairs
//         (stemming::SymbolTable::Raw values; the cross-window stem
//         identity)
//   GAPS  live feed-gap windows (incident feed_degraded marking)
//   PEER  per-peer scoreboard rows plus open-gap bookkeeping
//   FLOW  admission outcomes for the in-flight stream range — which
//         consumed events sit in the analysis window vs. the
//         backpressure queue (2 bits each).  The event bytes are NOT
//         persisted: the stream file is the source of truth and the
//         restored runner re-reads them, so the checkpoint stays small
//         no matter how dense the feed is
//   INCD  the incident log (seq 1..N with every operator-facing field)
//   SLOH  detection-latency histogram bucket counts — redundant with
//         INCD and cross-checked against it on decode
//   SERS  the dashboard time-series store (obs/timeseries.h): tier
//         shape, then every retained ring bucket per series, so a
//         restarted `serve` answers /api/series byte-identically
//   PROV  the incident provenance ledger (obs/provenance.h): caps,
//         eviction count, then one evidence record per retained
//         incident, so a restarted `serve` answers
//         /api/incidents/<id>/evidence byte-identically.  Decode
//         re-validates the caps and cross-checks every record's seq and
//         stem key against INCD
//
// Decode is all-or-nothing: any malformed field, out-of-range value,
// missing section, or INCD/SLOH mismatch fails the whole restore with
// an error naming the offending section.  There is never a silent
// partial restore — the caller logs the error and starts fresh (the
// stream file remains the source of truth, so a cold replay converges
// to the same incident log).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "collector/checkpoint.h"
#include "core/live.h"
#include "obs/timeseries.h"

namespace ranomaly::core {

struct LiveCheckpointState {
  // LIVE
  util::SimTime t0 = 0;          // first stream event time (identity check)
  std::uint64_t next_event = 0;  // events consumed from the stream
  LiveStats stats;               // as of the tick boundary (clock = boundary)
  // SHED
  int shed_level = 0;
  std::uint64_t calm_ticks = 0;       // consecutive below-watermark ticks
  std::uint64_t arrival_index = 0;    // deterministic sampling phase
  bool tracer_suspended = false;      // L1 suspension active at snapshot
  bool tracer_was_enabled = false;    // what to restore on recovery
  std::vector<ShedWindow> shed_windows;
  // STEM
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seen_stems;
  // GAPS
  std::vector<LiveGap> gaps;
  // PEER
  std::vector<PeerBoard::Persisted> peers;
  // FLOW: one class per stream event in [flow_start, next_event) —
  // 0 = no longer in flight (marker, shed, or expired from the window),
  // 1 = in the analysis window, 2 = in the backpressure queue.  Window
  // entries always precede queue entries (FIFO admission).  The restored
  // runner rebuilds both containers by re-reading the stream; each
  // event's ingest stamp is the first tick boundary after its time, so
  // stamps are derivable and not persisted either.
  std::uint64_t flow_start = 0;
  std::vector<std::uint8_t> flow;
  // INCD
  std::vector<IncidentLog::Entry> incidents;
  // SLOH: one count per DetectionLatencyBounds() bucket plus overflow.
  std::vector<std::uint64_t> latency_counts;
  // SERS: the dashboard history (empty tiers when the runner has no
  // store attached — encoded as a zero-tier section either way).
  obs::TimeSeriesStore::Persisted series_store;
  // PROV: the provenance ledger (zeroed caps and no records when the
  // runner has no ledger attached — encoded as a section either way).
  obs::ProvenanceLedger::Persisted provenance;
};

// Renders `state` into `checkpoint`: sets time (the tick boundary) and
// event_offset (the stream cursor) and replaces the section table.
// Deterministic: the same state always yields the same bytes.
void EncodeLiveState(const LiveCheckpointState& state,
                     collector::Checkpoint& checkpoint);

// Borrowing overload for the periodic snapshot path: the incident log
// (the one remaining unbounded-growth vector, three strings per entry)
// is encoded straight from the live container instead of being copied
// into a LiveCheckpointState first.  `state.incidents` is ignored
// (callers leave it empty).  Produces byte-identical output to the
// copying overload given equal contents.
void EncodeLiveState(const LiveCheckpointState& state,
                     const std::vector<IncidentLog::Entry>& incidents,
                     collector::Checkpoint& checkpoint);

// Inverse of EncodeLiveState with full validation.  Returns false and
// sets *error ("section INCD: non-contiguous seq at entry 3") without
// touching *state's validity guarantees on any failure.
bool DecodeLiveState(const collector::Checkpoint& checkpoint,
                     LiveCheckpointState* state, std::string* error);

}  // namespace ranomaly::core
