// RealTimeMonitor: the deployment loop of paper Section V as a stateful
// object.  REX-style installations run continuously: every polling
// interval the monitor analyzes the freshly arrived events at spike
// timescale, periodically re-runs the long-window pass over recent
// history (the only way to catch the IV-E/IV-F low-grade persistent
// anomalies), and deduplicates alerts so a persistent incident pages the
// operator once per re-alert interval instead of once per poll.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "collector/event_stream.h"
#include "core/pipeline.h"

namespace ranomaly::core {

class RealTimeMonitor {
 public:
  struct Options {
    PipelineOptions pipeline;
    // Re-run the long-window pass when this much simulated time passed
    // since the previous one.
    util::SimDuration long_pass_every = util::kHour;
    // How far back the long-window pass looks.
    util::SimDuration long_window = 24 * util::kHour;
    // An incident with the same stem is not re-alerted within this long.
    util::SimDuration realert_interval = util::kHour;
  };

  RealTimeMonitor() : RealTimeMonitor(Options{}) {}
  explicit RealTimeMonitor(Options options);

  // Processes everything appended to `stream` since the previous call
  // (the stream must be the same, growing, collector stream) and returns
  // the newly raised alerts.
  std::vector<Incident> Poll(const collector::EventStream& stream);

  // Monitoring counters.
  std::size_t polls() const { return polls_; }
  std::size_t alerts_raised() const { return alerts_raised_; }
  std::size_t alerts_suppressed() const { return alerts_suppressed_; }

 private:
  // Returns true (and records the alert) if this incident should page.
  bool ShouldAlert(const Incident& incident);

  Options options_;
  Pipeline pipeline_;
  std::size_t cursor_ = 0;  // first unprocessed event index
  util::SimTime last_long_pass_ = 0;
  bool long_pass_ran_ = false;
  std::map<std::string, util::SimTime> last_alert_by_stem_;
  std::size_t polls_ = 0;
  std::size_t alerts_raised_ = 0;
  std::size_t alerts_suppressed_ = 0;
};

}  // namespace ranomaly::core
