// Incident model: a classified, operator-facing description of one
// correlated component found in the event stream.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bgp/prefix.h"
#include "obs/provenance.h"
#include "stemming/stemming.h"
#include "util/time.h"

namespace ranomaly::core {

enum class IncidentKind : std::uint8_t {
  kSessionReset,    // mass withdrawal + re-announcement from one peer
  kRouteLeak,       // prefixes moved to a longer path through new ASes
  kPathChange,      // prefixes moved to a comparable alternate path
  kRouteFlap,       // few prefixes cycling announce/withdraw repeatedly
  kMedOscillation,  // route flap whose alternatives differ in MED
  kUnknown,
};

const char* ToString(IncidentKind kind);

// Per-component evidence the classifier extracts from the events.
struct IncidentEvidence {
  double withdraw_fraction = 0.0;   // withdrawals / events
  double single_peer_fraction = 0.0;  // share of events from the busiest peer
  double cycles_per_prefix = 0.0;   // mean announce/withdraw cycles
  double path_growth = 0.0;         // mean AS-path length change (end - start)
  std::size_t new_as_count = 0;     // ASes seen in final paths, not initial
  bool med_present = false;         // any event carried a MED
  // Fraction of prefixes whose last path equals their first (came back).
  double restored_fraction = 0.0;
  // Fraction of prefixes whose final event is an announcement.
  double final_announce_fraction = 0.0;
  // Share of the component's events belonging to its busiest prefix; ~1
  // marks a single-prefix oscillation even when correlation pulled in a
  // few bystander prefixes.
  double dominant_prefix_fraction = 0.0;
  bgp::Prefix dominant_prefix;  // the busiest prefix itself
};

struct Incident {
  IncidentKind kind = IncidentKind::kUnknown;
  util::SimTime begin = 0;
  util::SimTime end = 0;
  std::size_t event_count = 0;
  double event_fraction = 0.0;  // of the analyzed window
  std::size_t prefix_count = 0;
  // Stem identity as raw tagged symbol values (SymbolTable::Raw), stable
  // across windows with independent SymbolTables; dedup keys on this, not
  // on the formatted label.
  std::pair<std::uint64_t, std::uint64_t> stem_key{0, 0};
  std::string stem_label;       // "AS11423 - AS209"
  std::string top_sequence;     // full s' rendering
  IncidentEvidence evidence;
  stemming::Component component;  // raw component (indices into the window)
  std::string summary;          // one-line operator text
  // True if the incident's time span overlaps a FeedGap window: the feed
  // itself was degraded there, so the incident may describe the
  // collector's outage rather than the network (see
  // collector::FeedGapWindows).
  bool feed_degraded = false;
  // True if the incident's time span overlaps a window where the live
  // degradation ladder was sampling events (core/live.h): counts and
  // fractions are computed from a deterministic subset of the feed, so
  // magnitudes are lower bounds there.
  bool load_shed = false;
  // Detection-latency SLO fields (live mode, core/live.h).  `ingest_tick`
  // is the latest ingest stamp among the contributing events — the
  // earliest moment the pipeline could have seen the whole component.
  // The live runner sets `detected_at` to the analysis tick that first
  // surfaced the incident and derives `detection_latency_sec` as
  // detected_at - begin (simulated seconds from the triggering burst to
  // the operator surface).  All zero / -1 in batch analysis.
  util::SimTime ingest_tick = 0;
  util::SimTime detected_at = 0;
  double detection_latency_sec = -1.0;
  // Evidence record for the provenance ledger (obs/provenance.h):
  // sampled contributing events, stem classes, and the correlation path.
  // Populated only when PipelineOptions::provenance is set (and the
  // build doesn't define RANOMALY_NO_PROVENANCE); the live runner moves
  // it into the ledger at append time, so logged incidents carry an
  // empty record.
  obs::IncidentProvenance provenance;
};

}  // namespace ranomaly::core
